// Package lunasolar's root benchmarks regenerate every table and figure of
// the paper's evaluation as testing.B benchmarks (one per artifact), plus
// end-to-end I/O microbenchmarks for each stack. The per-experiment tables
// are printed once per benchmark run; custom metrics expose the simulated
// results alongside wall-clock cost:
//
//	go test -bench=Fig6 -benchmem
//	go test -bench=. -benchmem                           # all, reduced scale
//	LUNASOLAR_FULL_BENCH=1 go test -bench=. -timeout 60m # full scale
package lunasolar

import (
	"fmt"
	"os"
	"testing"

	"lunasolar/ebs"
	"lunasolar/internal/experiments"
	"lunasolar/internal/simnet"
	"lunasolar/internal/writebench"
)

// benchOpts runs the experiment benchmarks at reduced scale so the whole
// suite fits a default `go test -bench=.` run; full-scale regeneration is
// cmd/ebsbench's job. Set LUNASOLAR_FULL_BENCH=1 (with a generous -timeout)
// to benchmark the full-scale experiments instead.
func benchOpts(b *testing.B) experiments.Options {
	full := os.Getenv("LUNASOLAR_FULL_BENCH") != ""
	return experiments.Options{Seed: 1, Quick: !full}
}

// runExperiment executes fn once per b.N and prints the regenerated table
// on the first iteration. Experiments that run share-nothing shards report
// the fleet's simulator throughput: engine events per second of shard wall
// time, and how many simulated microseconds advance per wall millisecond.
func runExperiment(b *testing.B, name string, fn func(experiments.Options) *experiments.Table) {
	b.Helper()
	opts := benchOpts(b)
	var events, simMicros, wallMs float64
	for i := 0; i < b.N; i++ {
		t := fn(opts)
		if i == 0 && !benchQuiet {
			fmt.Printf("\n%s", t.Format())
		}
		if t.Perf != nil {
			events += float64(t.Perf.Events())
			simMicros += float64(t.Perf.SimTime().Microseconds())
			wallMs += float64(t.Perf.WallTime().Nanoseconds()) / 1e6
		}
	}
	if wallMs > 0 {
		b.ReportMetric(events/(wallMs/1e3), "events/sec")
		b.ReportMetric(simMicros/wallMs, "sim-µs/wall-ms")
	}
}

// benchQuiet suppresses table printing (set by profiling runs).
var benchQuiet = false

func BenchmarkFig3Traffic(b *testing.B)       { runExperiment(b, "fig3", experiments.Fig3) }
func BenchmarkFig4Diurnal(b *testing.B)       { runExperiment(b, "fig4", experiments.Fig4) }
func BenchmarkFig5Sizes(b *testing.B)         { runExperiment(b, "fig5", experiments.Fig5) }
func BenchmarkFig6Breakdown(b *testing.B)     { runExperiment(b, "fig6", experiments.Fig6) }
func BenchmarkFig7Evolution(b *testing.B)     { runExperiment(b, "fig7", experiments.Fig7) }
func BenchmarkFig8Hangs(b *testing.B)         { runExperiment(b, "fig8", experiments.Fig8) }
func BenchmarkFig11Corruption(b *testing.B)   { runExperiment(b, "fig11", experiments.Fig11) }
func BenchmarkFig14Fio(b *testing.B)          { runExperiment(b, "fig14", experiments.Fig14) }
func BenchmarkFig15WriteLatency(b *testing.B) { runExperiment(b, "fig15", experiments.Fig15) }
func BenchmarkTable1RPC(b *testing.B)         { runExperiment(b, "table1", experiments.Table1) }
func BenchmarkTable2Failures(b *testing.B)    { runExperiment(b, "table2", experiments.Table2) }
func BenchmarkTable3Resources(b *testing.B)   { runExperiment(b, "table3", experiments.Table3) }
func BenchmarkAblations(b *testing.B)         { runExperiment(b, "ablate", experiments.Ablations) }
func BenchmarkRDMACliff(b *testing.B)         { runExperiment(b, "rdmacliff", experiments.RDMACliff) }

// BenchmarkDiurnalPacket/Hybrid run the same campaign at both fidelities;
// the events/sec and sim-µs/wall-ms ratio between them is the fast-forward
// payoff BENCH_pr8.json records.
func BenchmarkDiurnalPacket(b *testing.B) { runExperiment(b, "diurnal", experiments.Diurnal) }
func BenchmarkDiurnalHybrid(b *testing.B) {
	runExperiment(b, "diurnal", func(opts experiments.Options) *experiments.Table {
		opts.Fidelity = ebs.FidelityHybrid
		return experiments.Diurnal(opts)
	})
}

// benchIO measures simulated 4 KiB write performance per stack: b.N I/Os
// through a full cluster. Reported metrics: simulated microseconds per I/O
// (median) and the simulator's event throughput.
func benchIO(b *testing.B, fn ebs.StackKind, write bool) {
	cfg := ebs.DefaultConfig(fn)
	cfg.Fabric.RacksPerPod = 2
	cfg.ComputeServers = 1
	cfg.BlockServers = 3
	cfg.ChunkServers = 5
	c := ebs.New(cfg)
	vd := c.MustProvision(0, 256<<20, ebs.DefaultQoS())
	if !write {
		for off := uint64(0); off < 16<<20; off += 512 << 10 {
			vd.Write(off, make([]byte, 512<<10), nil)
		}
		c.Run()
	}
	payload := make([]byte, 4096)

	b.ResetTimer()
	n := 0
	var issue func()
	issue = func() {
		if n >= b.N {
			return
		}
		lba := uint64(n%4096) << 12
		n++
		if write {
			vd.Write(lba, payload, func(ebs.IOResult) { issue() })
		} else {
			vd.Read(lba, 4096, func(ebs.IOResult) { issue() })
		}
	}
	start := c.Now()
	startEvents := c.Eng.Processed()
	issue()
	c.Run()
	b.StopTimer()

	elapsed := c.Now() - start
	if b.N > 0 && elapsed > 0 {
		b.ReportMetric(float64(elapsed.Microseconds())/float64(b.N), "sim-µs/io")
		b.ReportMetric(float64(c.Eng.Processed()-startEvents)/float64(b.N), "events/io")
	}
	b.SetBytes(4096)
}

func BenchmarkKernelWrite4K(b *testing.B) { benchIO(b, ebs.KernelTCP, true) }
func BenchmarkLunaWrite4K(b *testing.B)   { benchIO(b, ebs.Luna, true) }
func BenchmarkRDMAWrite4K(b *testing.B)   { benchIO(b, ebs.RDMA, true) }
func BenchmarkSolarWrite4K(b *testing.B)  { benchIO(b, ebs.Solar, true) }
func BenchmarkSolarRead4K(b *testing.B)   { benchIO(b, ebs.Solar, false) }
func BenchmarkLunaRead4K(b *testing.B)    { benchIO(b, ebs.Luna, false) }

// benchWritePath4K measures the isolated two-host Solar write path — SA
// ingress, one-touch CRC, scatter-gather framing, fabric transit, receive
// materialisation — with the data path in either mode. Beyond wall time it
// reports how many payload memcpys each 4 KiB write costs (copies/op,
// copied-B/op) straight from the packet pool's copy accounting; the
// zero-copy run is gated at <= 1 copy per op.
func benchWritePath4K(b *testing.B, zero bool) {
	prev := simnet.ZeroCopy()
	simnet.SetZeroCopy(zero)
	defer simnet.SetZeroCopy(prev)
	r := writebench.NewRig(1)
	for i := 0; i < 64; i++ {
		r.WriteOne() // reach pool/path steady state before measuring
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := r.Snapshot()
	for i := 0; i < b.N; i++ {
		r.WriteOne()
	}
	b.StopTimer()
	d := r.Snapshot().Delta(start)
	copies := float64(d.Copies) / float64(b.N)
	b.ReportMetric(copies, "copies/op")
	b.ReportMetric(float64(d.CopiedBytes)/float64(b.N), "copied-B/op")
	b.ReportMetric(float64(d.Events)/float64(b.N), "events/op")
	b.SetBytes(4096)
	if err := r.Check(); err != nil {
		b.Fatal(err)
	}
	if zero && copies > 1 {
		b.Fatalf("zero-copy write path made %.2f payload copies/op, want <= 1", copies)
	}
}

func BenchmarkWritePath4K(b *testing.B)         { benchWritePath4K(b, true) }
func BenchmarkWritePath4KCopyPath(b *testing.B) { benchWritePath4K(b, false) }

// benchCoupled runs the partitioned write storm with the given number of
// window workers and reports the fleet's events/sec. Comparing the
// sub-benchmarks shows the coupled runner's scaling (or, on few-core
// hosts, its barrier overhead); BENCH_pr6.json records the same sweep
// with the byte-identity gate attached.
func benchCoupled(b *testing.B, workers int) {
	opts := benchOpts(b)
	opts.CoupledWorkers = workers
	var events, wallMs float64
	for i := 0; i < b.N; i++ {
		t := experiments.CoupledStorm(opts)
		if leaked := t.Perf.Leaked(); leaked != 0 {
			b.Fatalf("%d pooled packets leaked", leaked)
		}
		events += float64(t.Perf.Events())
		wallMs += float64(t.Perf.WallTime().Nanoseconds()) / 1e6
	}
	if wallMs > 0 {
		b.ReportMetric(events/(wallMs/1e3), "events/sec")
	}
}

func BenchmarkCoupled1Worker(b *testing.B)  { benchCoupled(b, 1) }
func BenchmarkCoupled2Workers(b *testing.B) { benchCoupled(b, 2) }
func BenchmarkCoupled4Workers(b *testing.B) { benchCoupled(b, 4) }
func BenchmarkCoupled8Workers(b *testing.B) { benchCoupled(b, 8) }

// BenchmarkSimulatorEventRate measures raw event-loop throughput with a
// saturating Solar workload — the simulator's own performance envelope.
func BenchmarkSimulatorEventRate(b *testing.B) {
	cfg := ebs.DefaultConfig(ebs.Solar)
	cfg.Fabric.RacksPerPod = 2
	cfg.ComputeServers = 4
	cfg.BlockServers = 3
	cfg.ChunkServers = 5
	c := ebs.New(cfg)
	var vds []*ebs.VDisk
	for i := 0; i < 4; i++ {
		vd := c.MustProvision(i, 128<<20, ebs.DefaultQoS())
		vds = append(vds, vd)
		for s := 0; s < 8; s++ {
			var issue func()
			lba := uint64(s) << 16
			issue = func() {
				vd.Write(lba, make([]byte, 4096), func(ebs.IOResult) { issue() })
			}
			issue()
		}
	}
	b.ResetTimer()
	target := c.Eng.Processed() + uint64(b.N)
	for c.Eng.Processed() < target && c.Eng.Step() {
	}
	b.StopTimer()
}
