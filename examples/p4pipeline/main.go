// P4pipeline: §4.6 of the paper made executable. The storage agent's data
// path is "essentially block reading, data computation, block writing, and
// table checking/maintaining", so it fits a P4-compatible packet pipeline —
// the property that makes Solar portable to commodity ASIC DPUs. This
// program builds the write and read pipelines, loads the match-action
// tables from a real segment table, and pushes genuine Solar packets
// through them.
package main

import (
	"fmt"

	"lunasolar/internal/crc"
	"lunasolar/internal/p4"
	"lunasolar/internal/sa"
	"lunasolar/internal/wire"
)

func main() {
	// Management plane: provision a disk and mirror its segment table into
	// the hardware Block table.
	segs := sa.NewSegmentTable()
	if err := segs.Provision(7, 16<<20, []uint32{0xA1, 0xA2, 0xA3}); err != nil {
		panic(err)
	}
	write := p4.NewSolarWritePipeline()
	write.AdmitDisk(7)
	write.LoadSegmentTable(segs, 7, 16<<20)
	fmt.Print(write.Program.Describe())

	// Data plane: one 4 KiB block as one packet, straight through the
	// match-action stages.
	payload := make([]byte, 4096)
	copy(payload, []byte("one block, one packet"))
	rpc := wire.RPC{RPCID: 11, MsgType: wire.RPCWriteReq, NumPkts: 1}
	ebs := wire.EBS{Version: wire.EBSVersion, Op: wire.OpWrite, VDisk: 7,
		LBA: 5 << 20, BlockLen: 4096}
	pkt := make([]byte, wire.RPCSize+wire.EBSSize+len(payload))
	rpc.Encode(pkt)
	ebs.Encode(pkt[wire.RPCSize:])
	copy(pkt[wire.RPCSize+wire.EBSSize:], payload)

	out, ctx, err := write.Program.Run(pkt)
	if err != nil {
		panic(err)
	}
	var outEBS wire.EBS
	outEBS.Decode(out[wire.RPCSize:])
	fmt.Printf("\nwrite: lba %#x -> segment %d on server %#x, CRC %08x (stages: %v)\n",
		5<<20, outEBS.SegmentID, ctx.Meta["server"], outEBS.BlockCRC, ctx.Trace)
	if outEBS.BlockCRC != crc.Raw(payload) {
		panic("pipeline CRC disagrees with software CRC")
	}

	// An unprovisioned disk never reaches the wire.
	badEBS := ebs
	badEBS.VDisk = 99
	bad := make([]byte, len(pkt))
	copy(bad, pkt)
	badEBS.Encode(bad[wire.RPCSize:])
	_, ctx, _ = write.Program.Run(bad)
	fmt.Printf("write to unknown disk: dropped=%v (stages: %v)\n", ctx.Dropped, ctx.Trace)

	// Read side: the Addr table is the only per-packet hardware state.
	read := p4.NewSolarReadPipeline()
	read.ExpectBlock(11, 0, 0xFEED0000)
	resp := wire.RPC{RPCID: 11, PktID: 0, MsgType: wire.RPCReadResp, NumPkts: 1}
	respEBS := wire.EBS{Version: wire.EBSVersion, Op: wire.OpRead,
		BlockLen: 4096, BlockCRC: crc.Raw(payload)}
	rpkt := make([]byte, wire.RPCSize+wire.EBSSize+len(payload))
	resp.Encode(rpkt)
	respEBS.Encode(rpkt[wire.RPCSize:])
	copy(rpkt[wire.RPCSize+wire.EBSSize:], payload)

	_, ctx, _ = read.Program.Run(rpkt)
	fmt.Printf("\nread response: dma to %#x, crc_ok=%d (stages: %v)\n",
		ctx.Meta["dma_addr"], ctx.Meta["crc_ok"], ctx.Trace)
	read.Release(11, 0)
	_, ctx, _ = read.Program.Run(rpkt)
	fmt.Printf("duplicate after release: dropped=%v — no reassembly state anywhere\n", ctx.Dropped)
}
