// Quickstart: build a Solar-era EBS cluster, provision a virtual disk,
// write and read back data, and print the latency breakdown the paper's
// Fig. 6 reports.
package main

import (
	"bytes"
	"fmt"
	"log"

	"lunasolar/ebs"
	"lunasolar/internal/trace"
)

func main() {
	// A small cluster: compute pod + storage pod behind a Clos fabric,
	// Solar on the frontend, RDMA on the backend, 3-way replication.
	cfg := ebs.DefaultConfig(ebs.Solar)
	cluster := ebs.New(cfg)

	// Provision an 8 GiB virtual disk on compute server 0 with an
	// ESSD-class service level.
	vd := cluster.MustProvision(0, 8<<30, ebs.DefaultQoS())
	fmt.Printf("provisioned vdisk %d: %d GiB on %s stack\n",
		vd.ID, vd.Size()>>30, cfg.FN)

	// Write 16 KiB (four blocks — four independent Solar packets), then
	// read it back. Everything runs in virtual time inside cluster.Run().
	payload := bytes.Repeat([]byte("lunasolar rocks "), 1024)
	vd.Write(0x10000, payload, func(w ebs.IOResult) {
		if w.Err != nil {
			log.Fatalf("write failed: %v", w.Err)
		}
		fmt.Printf("write: %v total  [SA %v | FN %v | BN %v | SSD %v]\n",
			w.Latency,
			w.Span.Get(trace.SA), w.Span.Get(trace.FN),
			w.Span.Get(trace.BN), w.Span.Get(trace.SSD))

		vd.Read(0x10000, len(payload), func(r ebs.IOResult) {
			if r.Err != nil {
				log.Fatalf("read failed: %v", r.Err)
			}
			if !bytes.Equal(r.Data, payload) {
				log.Fatal("read returned different data")
			}
			fmt.Printf("read:  %v total  [SA %v | FN %v | BN %v | SSD %v]\n",
				r.Latency,
				r.Span.Get(trace.SA), r.Span.Get(trace.FN),
				r.Span.Get(trace.BN), r.Span.Get(trace.SSD))
			fmt.Println("read-back verified: data intact across FN, replication and SSDs")
		})
	})
	cluster.Run()
}
