// Integrity: the Fig. 11 mechanism, live. An FPGA whose CRC engine flips
// bits and whose datapath corrupts blocks writes through Solar; the
// software CRC aggregation (one XOR per block on the CPU) catches and
// repairs every corruption before it reaches storage, at a fraction of a
// full software checksum's cost.
package main

import (
	"bytes"
	"fmt"

	"lunasolar/ebs"
)

func main() {
	cfg := ebs.DefaultConfig(ebs.Solar)
	cfg.Fabric.RacksPerPod = 2
	cfg.ComputeServers = 1
	cfg.BlockServers = 3
	cfg.ChunkServers = 5
	// A spectacularly bad FPGA: a third of blocks corrupted in the
	// datapath, a third of CRC computations flipped.
	cfg.DPU.Faults.DataBitFlip = 0.33
	cfg.DPU.Faults.CRCBitFlip = 0.33

	c := ebs.New(cfg)
	vd := c.MustProvision(0, 256<<20, ebs.DefaultQoS())

	const ios = 200
	payloads := make([][]byte, ios)
	done := 0
	for i := 0; i < ios; i++ {
		i := i
		payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, 8192)
		vd.Write(uint64(i)<<14, payloads[i], func(res ebs.IOResult) {
			if res.Err != nil {
				panic(res.Err)
			}
			done++
		})
	}
	c.Run()

	crcFlips, dataFlips, _ := c.Compute(0).DPU.InjectedFaults()
	fmt.Printf("wrote %d I/Os through a faulty FPGA: %d datapath corruptions, %d CRC-engine flips injected\n",
		done, dataFlips, crcFlips)

	// Read everything back and verify byte-for-byte.
	bad := 0
	verified := 0
	for i := 0; i < ios; i++ {
		i := i
		vd.Read(uint64(i)<<14, 8192, func(res ebs.IOResult) {
			verified++
			if !bytes.Equal(res.Data, payloads[i]) {
				bad++
			}
		})
	}
	c.Run()
	fmt.Printf("read back %d I/Os: %d corrupted\n", verified, bad)
	if bad == 0 {
		fmt.Println("software CRC aggregation caught and repaired every hardware fault —")
		fmt.Println("the paper's answer to FPGA bit flips (Fig. 11) without per-block software CRCs.")
	}
}
