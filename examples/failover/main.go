// Failover: the Table 2 story in one program. A ToR switch hangs (its
// links stay up, so hosts get no signal). Luna's connections are pinned to
// their 5-tuple and stall until the switch is repaired; Solar's
// consecutive-timeout path failover re-hashes onto healthy paths within
// milliseconds and no I/O goes unanswered for a second.
package main

import (
	"fmt"
	"time"

	"lunasolar/ebs"
)

func run(fn ebs.StackKind) {
	cfg := ebs.DefaultConfig(fn)
	cfg.Fabric.RacksPerPod = 2
	cfg.ComputeServers = 4
	cfg.BlockServers = 3
	cfg.ChunkServers = 5
	c := ebs.New(cfg)

	var vds []*ebs.VDisk
	for i := 0; i < c.Computes(); i++ {
		vds = append(vds, c.MustProvision(i, 256<<20, ebs.DefaultQoS()))
	}

	// Closed-loop writers, one per compute server; track in-flight start
	// times so writers wedged by the failure are visible.
	var slow, total int
	var worst time.Duration
	pending := make([]time.Duration, len(vds))
	for i, vd := range vds {
		i, vd := i, vd
		lba := uint64(i) << 20
		var issue func()
		issue = func() {
			start := c.Eng.Now()
			pending[i] = start.Duration()
			vd.Write(lba, make([]byte, 4096), func(ebs.IOResult) {
				total++
				pending[i] = -1
				d := c.Eng.Now().Sub(start)
				if d > worst {
					worst = d
				}
				if d >= time.Second {
					slow++
				}
				c.Eng.Schedule(time.Millisecond, issue)
			})
		}
		issue()
	}

	c.RunFor(200 * time.Millisecond) // healthy warmup
	healthy := total

	tor := c.Fabric.ToR(0, 0, 0, 0)
	tor.Fail() // hang: links stay up, no signal to hosts
	c.RunFor(3 * time.Second)

	stuck := 0
	for _, p := range pending {
		if p >= 0 && c.Now()-p >= time.Second {
			stuck++
		}
	}
	fmt.Printf("%-6s  healthy IOs: %4d   during 3s ToR hang: %4d completed, %d slow (>=1s), %d/%d writers wedged, worst %v\n",
		fn, healthy, total-healthy, slow, stuck, len(vds), worst.Round(time.Millisecond))
}

func main() {
	fmt.Println("hanging tor-d0p0r0-a while 4 compute servers write continuously:")
	run(ebs.Luna)
	run(ebs.Solar)
	fmt.Println("\nLuna's pinned flows stall until the switch is repaired (minutes in")
	fmt.Println("production); Solar re-hashes its UDP source ports and routes around")
	fmt.Println("the hang in milliseconds — the Table 2 result.")
}
