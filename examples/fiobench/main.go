// Fiobench: the Fig. 14 scenario as a runnable program — sweep the DPU's
// CPU cores and compare the four stacks' read throughput, watching
// Luna/RDMA/Solar* pile up against the internal-PCIe ceiling while Solar's
// offloaded data path ignores it.
package main

import (
	"fmt"
	"time"

	"lunasolar/ebs"
	"lunasolar/internal/workload"
)

func measure(fn ebs.StackKind, cores int, blockSize int) float64 {
	cfg := ebs.DefaultConfig(fn)
	cfg.Fabric.RacksPerPod = 2
	cfg.BareMetal = true
	cfg.DPU.CPUCores = cores
	cfg.ComputeServers = 1
	cfg.BlockServers = 3
	cfg.ChunkServers = 5
	c := ebs.New(cfg)
	vd := c.MustProvision(0, 512<<20, ebs.DefaultQoS())

	span := uint64(16 << 20)
	for off := uint64(0); off < span; off += 512 << 10 {
		vd.Write(off, make([]byte, 512<<10), nil)
	}
	c.Run()

	fio := workload.NewFio(c.Eng, workload.FioConfig{
		Depth: 32, BlockSize: blockSize, ReadFrac: 1, SpanBytes: span,
	}, func(write bool, lba uint64, size int, done func()) {
		vd.Read(lba, size, func(ebs.IOResult) { done() })
	})
	fio.Start()
	c.RunFor(5 * time.Millisecond)
	base := fio.Bytes
	window := 20 * time.Millisecond
	c.RunFor(window)
	fio.Stop()
	return float64(fio.Bytes-base) / window.Seconds() / 1e6
}

func main() {
	cfg := ebs.DefaultConfig(ebs.Solar)
	fmt.Printf("fio read, depth 32, 64K blocks; PCIe ceiling ~%.0f MB/s, line rate %.0f MB/s\n\n",
		cfg.DPU.PCIeBps/2/8/1e6, 2*cfg.Fabric.HostLinkBps/8/1e6)
	fmt.Printf("%-8s", "stack")
	for cores := 1; cores <= 3; cores++ {
		fmt.Printf("  %d-core MB/s", cores)
	}
	fmt.Println()
	for _, fn := range []ebs.StackKind{ebs.Luna, ebs.RDMA, ebs.SolarStar, ebs.Solar} {
		fmt.Printf("%-8s", fn)
		for cores := 1; cores <= 3; cores++ {
			fmt.Printf("  %11.0f", measure(fn, cores, 64<<10))
		}
		fmt.Println()
	}
	fmt.Println("\nSolar bypasses the DPU CPU and its internal PCIe entirely (Fig. 10c):")
	fmt.Println("its throughput neither scales with cores nor stops at the PCIe wall.")
}
