package ebs

import (
	"strings"
	"testing"

	"lunasolar/internal/simnet"
	"lunasolar/internal/stats"
	"lunasolar/internal/trace"
)

// ExportMetrics on a driven Solar cluster must include per-component
// latency histograms, network telemetry, and per-path INT summaries.
func TestClusterExportMetrics(t *testing.T) {
	prev := simnet.TelemetryEnabled()
	simnet.SetTelemetry(true)
	defer simnet.SetTelemetry(prev)

	c := testCluster(t, Solar)
	vd := c.MustProvision(0, 64<<20, DefaultQoS())
	data := fill(32<<10, 0x5a)
	vd.Write(0, data, func(res IOResult) {
		vd.Read(0, len(data), func(IOResult) {})
	})
	c.Run()

	reg := stats.NewRegistry()
	c.ExportMetrics(reg, "")
	for _, name := range []string{
		"lat/write/sa", "lat/write/fn", "lat/write/bn", "lat/write/ssd", "lat/write/e2e",
		"lat/read/e2e",
	} {
		if h := reg.Histogram(name); h == nil || h.Count() == 0 {
			t.Fatalf("missing latency histogram %q", name)
		}
	}
	if reg.Counter("chunk0/writes")+reg.Counter("chunk1/writes")+
		reg.Counter("chunk2/writes")+reg.Counter("chunk3/writes") == 0 {
		t.Fatal("no chunk-server writes exported")
	}
	// Per-path INT summaries: the compute stacks are Solar, telemetry is
	// on, and acks echo INT — at least one path must have folded hops.
	snap := reg.Snapshot()
	var intAcks float64
	var sawPath bool
	for _, m := range snap.Metrics {
		if strings.Contains(m.Name, "/acks_with_int") {
			sawPath = true
			intAcks += m.Value
		}
	}
	if !sawPath {
		t.Fatal("no per-path INT summaries exported")
	}
	if intAcks == 0 {
		t.Fatal("telemetry enabled but no acks folded INT hops")
	}
	// The export must be valid, deterministic JSON.
	var a, b strings.Builder
	if err := reg.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	reg2 := stats.NewRegistry()
	c.ExportMetrics(reg2, "")
	if err := reg2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("repeated export differs")
	}
}

// The flight recorder wires into Solar stacks and chunk servers when the
// config asks for it, and records injected anomalies.
func TestClusterFlightRecorder(t *testing.T) {
	cfg := smallConfig(Solar)
	cfg.FlightRecorderDepth = 128
	c := New(cfg)
	vd := c.MustProvision(0, 64<<20, DefaultQoS())

	// Inject loss so Solar retransmits, then let the run drain.
	for _, sw := range c.Fabric.Switches() {
		if sw.Tier() == simnet.TierSpine {
			sw.SetDropRate(0.05)
		}
	}
	data := fill(64<<10, 0x17)
	vd.Write(0, data, func(IOResult) {})
	c.Run()

	var sb strings.Builder
	n := c.DumpFlightRecorders(&sb)
	if n == 0 {
		t.Fatal("5% spine loss produced no recorded events")
	}
	if !strings.Contains(sb.String(), trace.EvRetransmit) {
		t.Fatalf("dump missing retransmit events:\n%s", sb.String())
	}

	// Depth 0 (default) means no recorders at all.
	c2 := testCluster(t, Solar)
	var sb2 strings.Builder
	if got := c2.DumpFlightRecorders(&sb2); got != 0 {
		t.Fatalf("default config dumped %d events", got)
	}
}
