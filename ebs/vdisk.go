package ebs

import (
	"fmt"
	"time"

	"lunasolar/internal/core"
	"lunasolar/internal/sa"
	"lunasolar/internal/seccrypto"
	"lunasolar/internal/trace"
)

// VDisk is a provisioned virtual disk attached to one compute server.
type VDisk struct {
	ID      uint32
	cluster *Cluster
	agent   *sa.Agent
	size    uint64
}

// IOResult is the completion record of one I/O.
type IOResult struct {
	Data    []byte // reads
	Err     error
	Latency time.Duration
	Span    *trace.Span
}

// Provision creates a virtual disk of sizeBytes on compute server idx,
// striping its segments across every block server, and installs its QoS
// service level. Failed provisions leave no trace: the segment table is
// rolled back, so a caller can retry.
func (c *Cluster) Provision(computeIdx int, sizeBytes uint64, qos sa.QoSSpec) (*VDisk, error) {
	if computeIdx < 0 || computeIdx >= len(c.computes) {
		return nil, fmt.Errorf("ebs: provision on compute %d of %d", computeIdx, len(c.computes))
	}
	servers := c.BlockServerAddrs()
	if c.cfg.Edge {
		// Integrated mode: this disk's segments live behind the compute's
		// own block server.
		servers = []uint32{c.computes[computeIdx].Host.Addr()}
	}
	return c.provisionOn(computeIdx, sizeBytes, qos, servers)
}

// provisionOn creates a disk with an explicit segment placement: servers
// is either the stripe set (legacy round-robin) or, from the control
// plane, one address per segment chosen by the failure-domain placer.
func (c *Cluster) provisionOn(computeIdx int, sizeBytes uint64, qos sa.QoSSpec, servers []uint32) (*VDisk, error) {
	c.nextVD++
	vd, err := c.provisionWithID(c.nextVD, computeIdx, sizeBytes, qos, servers)
	if err != nil {
		c.nextVD--
	}
	return vd, err
}

// provisionWithID creates a disk under a caller-allocated ID (the control
// plane's ctrl.Service owns the ID space for managed volumes; provisionOn
// allocates from the cluster counter for direct Provision calls).
func (c *Cluster) provisionWithID(id uint32, computeIdx int, sizeBytes uint64, qos sa.QoSSpec, servers []uint32) (*VDisk, error) {
	if err := c.segs.Provision(id, sizeBytes, servers); err != nil {
		return nil, fmt.Errorf("ebs: provision vdisk on compute %d: %w", computeIdx, err)
	}
	agent := c.computes[computeIdx].Agent
	agent.SetQoS(id, qos)
	if c.cfg.Encrypted {
		// Per-disk key, installed both in the software SA and the Solar
		// SEC engine (whichever path the cluster uses).
		key := seccrypto.DeriveKey([]byte("cluster-provisioning-secret"), id)
		cipher, err := seccrypto.New(key)
		if err != nil {
			// Roll back the mapping so the ID is not half-provisioned.
			_ = c.segs.Delete(id)
			agent.ClearQoS(id)
			return nil, fmt.Errorf("ebs: provision vdisk %d cipher: %w", id, err)
		}
		agent.SetCipher(id, cipher)
		if st, ok := c.computes[computeIdx].Stack.(*core.Stack); ok {
			st.SetCipher(id, cipher)
		}
	}
	return &VDisk{ID: id, cluster: c, agent: agent, size: sizeBytes}, nil
}

// MustProvision is Provision for experiment and test setup code, where a
// provisioning failure is a programming error: it panics instead of
// returning it.
func (c *Cluster) MustProvision(computeIdx int, sizeBytes uint64, qos sa.QoSSpec) *VDisk {
	vd, err := c.Provision(computeIdx, sizeBytes, qos)
	if err != nil {
		panic(err)
	}
	return vd
}

// Size returns the disk's provisioned size in bytes.
func (v *VDisk) Size() uint64 { return v.size }

// Write issues a write I/O; done runs at completion with the measured
// latency (excluding QoS policy delay, per the paper's methodology).
func (v *VDisk) Write(lba uint64, data []byte, done func(IOResult)) {
	// Latency comes from the span the agent measures on the disk's own
	// engine; reading this cluster-level clock here would race with other
	// partitions' windows on a coupled fabric (Write may be issued from a
	// completion callback running inside another partition's window).
	v.agent.Write(v.ID, lba, data, func(res sa.Result) {
		if done != nil {
			done(IOResult{
				Err:     res.Err,
				Latency: res.Span.Total(),
				Span:    res.Span,
			})
		}
	})
}

// Read issues a read I/O.
func (v *VDisk) Read(lba uint64, size int, done func(IOResult)) {
	v.agent.Read(v.ID, lba, size, func(res sa.Result) {
		if done != nil {
			done(IOResult{
				Data:    res.Data,
				Err:     res.Err,
				Latency: res.Span.Total(),
				Span:    res.Span,
			})
		}
	})
}
