package ebs

import (
	"time"

	"lunasolar/internal/core"
	"lunasolar/internal/sa"
	"lunasolar/internal/seccrypto"
	"lunasolar/internal/trace"
)

// VDisk is a provisioned virtual disk attached to one compute server.
type VDisk struct {
	ID      uint32
	cluster *Cluster
	agent   *sa.Agent
	size    uint64
}

// IOResult is the completion record of one I/O.
type IOResult struct {
	Data    []byte // reads
	Err     error
	Latency time.Duration
	Span    *trace.Span
}

// Provision creates a virtual disk of sizeBytes on compute server idx,
// striping its segments across every block server, and installs its QoS
// service level.
func (c *Cluster) Provision(computeIdx int, sizeBytes uint64, qos sa.QoSSpec) *VDisk {
	c.nextVD++
	id := c.nextVD
	servers := c.BlockServerAddrs()
	if c.cfg.Edge {
		// Integrated mode: this disk's segments live behind the compute's
		// own block server.
		servers = []uint32{c.computes[computeIdx].Host.Addr()}
	}
	if err := c.segs.Provision(id, sizeBytes, servers); err != nil {
		panic(err)
	}
	agent := c.computes[computeIdx].Agent
	agent.SetQoS(id, qos)
	if c.cfg.Encrypted {
		// Per-disk key, installed both in the software SA and the Solar
		// SEC engine (whichever path the cluster uses).
		key := seccrypto.DeriveKey([]byte("cluster-provisioning-secret"), id)
		cipher, err := seccrypto.New(key)
		if err != nil {
			panic(err)
		}
		agent.SetCipher(id, cipher)
		if st, ok := c.computes[computeIdx].Stack.(*core.Stack); ok {
			st.SetCipher(id, cipher)
		}
	}
	return &VDisk{ID: id, cluster: c, agent: agent, size: sizeBytes}
}

// Size returns the disk's provisioned size in bytes.
func (v *VDisk) Size() uint64 { return v.size }

// Write issues a write I/O; done runs at completion with the measured
// latency (excluding QoS policy delay, per the paper's methodology).
func (v *VDisk) Write(lba uint64, data []byte, done func(IOResult)) {
	// Latency comes from the span the agent measures on the disk's own
	// engine; reading this cluster-level clock here would race with other
	// partitions' windows on a coupled fabric (Write may be issued from a
	// completion callback running inside another partition's window).
	v.agent.Write(v.ID, lba, data, func(res sa.Result) {
		if done != nil {
			done(IOResult{
				Err:     res.Err,
				Latency: res.Span.Total(),
				Span:    res.Span,
			})
		}
	})
}

// Read issues a read I/O.
func (v *VDisk) Read(lba uint64, size int, done func(IOResult)) {
	v.agent.Read(v.ID, lba, size, func(res sa.Result) {
		if done != nil {
			done(IOResult{
				Data:    res.Data,
				Err:     res.Err,
				Latency: res.Span.Total(),
				Span:    res.Span,
			})
		}
	})
}
