package ebs

import (
	"fmt"
	"sort"
	"time"

	"lunasolar/internal/blockserver"
	"lunasolar/internal/chunkserver"
	"lunasolar/internal/ctrl"
	"lunasolar/internal/sa"
	"lunasolar/internal/trace"
)

// ControlPlane is the cluster's management service: volume lifecycle
// (create / resize / snapshot / clone / delete) with idempotent request
// IDs, failure-domain-aware segment placement, live segment migration for
// unplanned degradations and planned drains, and per-tenant QoS layered
// above the per-disk pacing. The bookkeeping core lives in internal/ctrl;
// this type binds it to the live cluster.
//
// The control plane runs on the cluster's single engine and is therefore
// serial-only: management traffic interleaves deterministically with
// foreground I/O, and scenarios shard whole clusters per worker instead.
type ControlPlane struct {
	c      *Cluster
	svc    *ctrl.Service
	placer *ctrl.Placer // block-server placement, rack = failure domain
	rec    *trace.Recorder

	vdisks    map[uint32]*VDisk
	computeOf map[uint32]int

	blockByAddr map[uint32]*blockserver.Server
	chunkByAddr map[uint32]*chunkserver.Server
	chunkAddrs  []uint32 // construction order
	adopted     map[uint32]int
	draining    map[uint32]bool

	// Staging for the synchronous backend callback: the compute index and
	// QoS of the create in flight (the ctrl.Backend interface is data-
	// plane-shaped and does not carry them).
	curCompute int
	curQoS     sa.QoSSpec

	// Migration stats.
	SegmentsMigrated int
	BlocksCopied     int
	BytesCopied      uint64
	CopyErrors       int
	CutoverDurations []time.Duration
}

// ControlPlane returns the cluster's management service, creating it on
// first use. It panics on coupled or Edge clusters: the control plane
// mutates cross-server state synchronously, which is only sound when one
// engine owns everything.
func (c *Cluster) ControlPlane() *ControlPlane {
	if c.ctrlPlane != nil {
		return c.ctrlPlane
	}
	if len(c.engines) > 1 {
		panic("ebs: control plane requires a serial cluster (CoupledParts <= 1)")
	}
	if c.cfg.Edge {
		panic("ebs: control plane does not support Edge mode")
	}
	cp := &ControlPlane{
		c:           c,
		vdisks:      map[uint32]*VDisk{},
		computeOf:   map[uint32]int{},
		blockByAddr: map[uint32]*blockserver.Server{},
		chunkByAddr: map[uint32]*chunkserver.Server{},
		adopted:     map[uint32]int{},
		draining:    map[uint32]bool{},
		rec:         trace.NewRecorder(c.cfg.FlightRecorderDepth),
	}
	cp.svc = ctrl.NewService(cpBackend{cp})
	nodes := make([]ctrl.Node, 0, len(c.blocks))
	for i, b := range c.blocks {
		addr := b.Host.Addr()
		cp.blockByAddr[addr] = b.Block
		nodes = append(nodes, ctrl.Node{
			Addr:   addr,
			Domain: fmt.Sprintf("rack%d", i/c.cfg.Fabric.HostsPerRack),
		})
	}
	placer, err := ctrl.NewPlacer(nodes)
	if err != nil {
		panic(err)
	}
	cp.placer = placer
	for _, s := range c.chunks {
		addr := s.Host.Addr()
		cp.chunkByAddr[addr] = s.Chunk
		cp.chunkAddrs = append(cp.chunkAddrs, addr)
	}
	c.ctrlPlane = cp
	return cp
}

// Service exposes the bookkeeping core (volume listings, tenant registry).
func (cp *ControlPlane) Service() *ctrl.Service { return cp.svc }

// Recorder returns the control plane's flight recorder (nil when the
// cluster runs without recorders).
func (cp *ControlPlane) Recorder() *trace.Recorder { return cp.rec }

// cpBackend adapts the control plane to ctrl.Backend. Calls arrive
// synchronously from inside ctrl.Service methods.
type cpBackend struct{ cp *ControlPlane }

func (b cpBackend) Provision(tenant string, sizeBytes uint64) (uint32, error) {
	cp := b.cp
	nSegs := int((sizeBytes + sa.SegmentBytes - 1) / sa.SegmentBytes)
	var servers []uint32
	if nSegs > 0 {
		placed, err := cp.placer.Place(nSegs)
		if err != nil {
			return 0, err
		}
		servers = placed
	} else {
		// Segmentless volume: the stripe set is irrelevant but must be
		// non-empty for the segment table.
		servers = cp.c.BlockServerAddrs()
	}
	vd, err := cp.c.provisionOn(cp.curCompute, sizeBytes, cp.curQoS, servers)
	if err != nil {
		if nSegs > 0 {
			cp.placer.Release(servers)
		}
		return 0, err
	}
	id := vd.ID
	cp.vdisks[id] = vd
	cp.computeOf[id] = cp.curCompute
	agent := cp.c.computes[cp.curCompute].Agent
	if tenant != "" {
		agent.SetTenant(id, tenant)
		if spec, ok := cp.svc.TenantQoS(tenant); ok {
			agent.SetTenantQoS(tenant, spec)
		}
	}
	return id, nil
}

func (b cpBackend) Grow(id uint32, newSizeBytes uint64) error {
	cp := b.cp
	have := int(cp.c.segs.Size(id) / sa.SegmentBytes)
	want := int((newSizeBytes + sa.SegmentBytes - 1) / sa.SegmentBytes)
	var servers []uint32
	if want > have {
		placed, err := cp.placer.Place(want - have)
		if err != nil {
			return err
		}
		servers = placed
	} else {
		servers = cp.c.BlockServerAddrs()
	}
	if _, err := cp.c.segs.Grow(id, newSizeBytes, servers); err != nil {
		if want > have {
			cp.placer.Release(servers)
		}
		return err
	}
	if vd := cp.vdisks[id]; vd != nil {
		vd.size = newSizeBytes
	}
	return nil
}

func (b cpBackend) Release(id uint32) error {
	cp := b.cp
	refs := cp.c.segs.Refs(id)
	addrs := make([]uint32, 0, len(refs))
	for _, r := range refs {
		addrs = append(addrs, r.Server)
	}
	if err := cp.c.segs.Delete(id); err != nil {
		return err
	}
	cp.placer.Release(addrs)
	if idx, ok := cp.computeOf[id]; ok {
		cp.c.computes[idx].Agent.ClearQoS(id)
	}
	delete(cp.vdisks, id)
	delete(cp.computeOf, id)
	return nil
}

// CreateVolume provisions a volume for tenant on compute computeIdx, its
// segments spread across block-server failure domains. Replays (same
// reqID) return the original volume without re-provisioning.
func (cp *ControlPlane) CreateVolume(reqID string, computeIdx int, tenant string, sizeBytes uint64, qos sa.QoSSpec) (*VDisk, error) {
	if computeIdx < 0 || computeIdx >= len(cp.c.computes) {
		return nil, fmt.Errorf("ebs: create volume on compute %d of %d", computeIdx, len(cp.c.computes))
	}
	cp.curCompute, cp.curQoS = computeIdx, qos
	id, err := cp.svc.Create(reqID, tenant, sizeBytes)
	if err != nil {
		return nil, err
	}
	return cp.vdisks[id], nil
}

// ResizeVolume grows a volume; the added segments are placed like a
// create's. Shrinking is refused.
func (cp *ControlPlane) ResizeVolume(reqID string, id uint32, newSizeBytes uint64) error {
	return cp.svc.Resize(reqID, id, newSizeBytes)
}

// SnapshotVolume captures volume metadata and returns the snapshot ID.
func (cp *ControlPlane) SnapshotVolume(reqID string, id uint32) (uint32, error) {
	return cp.svc.Snapshot(reqID, id)
}

// CloneVolume provisions a new volume from a snapshot on computeIdx.
func (cp *ControlPlane) CloneVolume(reqID string, snapID uint32, computeIdx int, tenant string, qos sa.QoSSpec) (*VDisk, error) {
	if computeIdx < 0 || computeIdx >= len(cp.c.computes) {
		return nil, fmt.Errorf("ebs: clone volume on compute %d of %d", computeIdx, len(cp.c.computes))
	}
	cp.curCompute, cp.curQoS = computeIdx, qos
	id, err := cp.svc.Clone(reqID, snapID, tenant)
	if err != nil {
		return nil, err
	}
	return cp.vdisks[id], nil
}

// DeleteVolume releases a volume's segments, QoS state, and tenant
// binding.
func (cp *ControlPlane) DeleteVolume(reqID string, id uint32) error {
	return cp.svc.Delete(reqID, id)
}

// SetTenantQoS registers a tenant's aggregate service level and applies it
// on every compute agent, live-retuning buckets that already have parked
// I/Os. Enforcement is per hypervisor, like production SA-level QoS: each
// compute's disks bound to the tenant share that agent's buckets.
func (cp *ControlPlane) SetTenantQoS(tenant string, spec sa.QoSSpec) {
	cp.svc.SetTenantQoS(tenant, spec)
	for _, cs := range cp.c.computes {
		cs.Agent.SetTenantQoS(tenant, spec)
	}
}

// MigrateSegment moves one segment of a volume to a caller-chosen block
// server — the unplanned-degradation path, metadata-only since chunk
// replicas stay put.
func (cp *ControlPlane) MigrateSegment(volID uint32, segIdx int, toAddr uint32) error {
	moved, err := cp.migrateSegmentRef(volID, segIdx, toAddr)
	if err == nil && moved {
		cp.placer.Charge(toAddr)
	}
	return err
}

// migrateSegmentRef performs the cutover without touching placement load
// (callers settle that). Order matters: the new owner adopts, then the
// segment table remaps (generation bump), then the old owner releases; an
// I/O rejected by the old owner therefore always finds the new mapping
// when it re-resolves. Reports whether a move actually happened.
//
//lint:barrier — serial-only: ControlPlane refuses clusters with more than
// one engine, so the single engine's own window (or the top-level driver)
// is the only code that can be here.
func (cp *ControlPlane) migrateSegmentRef(volID uint32, segIdx int, toAddr uint32) (bool, error) {
	refs := cp.c.segs.Refs(volID)
	if segIdx < 0 || segIdx >= len(refs) {
		return false, fmt.Errorf("ebs: migrate segment %d of vdisk %d: out of range [0,%d)", segIdx, volID, len(refs))
	}
	ref := refs[segIdx]
	if ref.Server == toAddr {
		return false, nil
	}
	from, ok := cp.blockByAddr[ref.Server]
	if !ok {
		return false, fmt.Errorf("ebs: migrate segment %d: unknown source %d", ref.SegmentID, ref.Server)
	}
	to, ok := cp.blockByAddr[toAddr]
	if !ok {
		return false, fmt.Errorf("ebs: migrate segment %d: unknown target %d", ref.SegmentID, toAddr)
	}
	if err := to.AdoptSegment(ref.SegmentID, from.ReplicaSet(ref.SegmentID)); err != nil {
		return false, err
	}
	if err := cp.c.segs.Remap(volID, segIdx, toAddr); err != nil {
		return false, err
	}
	from.ReleaseSegment(ref.SegmentID, toAddr)
	cp.placer.Release([]uint32{ref.Server})
	cp.adopted[toAddr]++
	cp.SegmentsMigrated++
	cp.rec.Record(cp.c.Eng.Now().Duration(), trace.EvCutover, ref.SegmentID, uint64(toAddr))
	return true, nil
}

// EvacuateBlockServer live-migrates every control-plane-managed segment
// off block server blockIdx (a planned drain of the segment-owning layer)
// and excludes it from future placement. Foreground I/O rides through on
// the not-owner retry path.
func (cp *ControlPlane) EvacuateBlockServer(blockIdx int) error {
	if blockIdx < 0 || blockIdx >= len(cp.c.blocks) {
		return fmt.Errorf("ebs: evacuate block server %d of %d", blockIdx, len(cp.c.blocks))
	}
	addr := cp.c.blocks[blockIdx].Host.Addr()
	cp.placer.SetDown(addr, true)
	for _, vol := range cp.svc.Volumes() {
		if vol.State == ctrl.StateDeleted {
			continue
		}
		refs := cp.c.segs.Refs(vol.ID)
		for i, ref := range refs {
			if ref.Server != addr {
				continue
			}
			target, err := cp.placer.Place(1)
			if err != nil {
				return fmt.Errorf("ebs: evacuating block server %d: %w", blockIdx, err)
			}
			// Place charged the target; the cutover releases the source.
			if _, err := cp.migrateSegmentRef(vol.ID, i, target[0]); err != nil {
				return err
			}
		}
	}
	return nil
}

// drainSeg is one segment's rebuild plan in a chunk-server drain.
type drainSeg struct {
	owner     *blockserver.Server
	segID     uint64
	set       []uint32
	survivor  uint32
	replace   uint32
	blocks    int
	bytes     uint64
	started   time.Duration
	completed time.Duration
}

// DrainReport summarizes a completed chunk-server drain.
type DrainReport struct {
	Segments     int
	BlocksCopied int
	BytesCopied  uint64
	CopyErrors   int
	Duration     time.Duration
	Cutovers     []time.Duration // per-segment rebuild latency, drain order
}

// DrainChunkServer performs a planned drain of chunk server chunkIdx: for
// every control-plane-managed segment with a replica there, the replica is
// rebuilt block by block on a replacement chunk server (copy traffic pays
// real admission and media costs on the source, contending with foreground
// I/O), then the owning block server's replica set cuts over with a
// survivor as primary. The drained replica is dropped after cutover.
// Writes that land mid-copy reach the old set — including the survivor
// that stays primary — so reads never miss; the replacement backfills the
// gap in production, which the model elides. done fires with the report
// once every segment has cut over. Segments drain one at a time, so copy
// traffic is bounded and the event order is deterministic.
//
//lint:barrier — serial-only: ControlPlane refuses clusters with more than
// one engine, so the single engine's own window (or the top-level driver)
// is the only code that can be here.
func (cp *ControlPlane) DrainChunkServer(chunkIdx int, done func(DrainReport)) error {
	if chunkIdx < 0 || chunkIdx >= len(cp.c.chunks) {
		return fmt.Errorf("ebs: drain chunk server %d of %d", chunkIdx, len(cp.c.chunks))
	}
	drainAddr := cp.chunkAddrs[chunkIdx]
	if cp.draining[drainAddr] {
		return fmt.Errorf("ebs: chunk server %d already draining", chunkIdx)
	}
	cp.draining[drainAddr] = true

	// Plan: every (owner, segment) whose replica set includes the drained
	// server, in volume-creation then LBA order — deterministic.
	var plan []*drainSeg
	adopted := map[uint32]int{}
	for _, vol := range cp.svc.Volumes() {
		if vol.State == ctrl.StateDeleted {
			continue
		}
		for _, ref := range cp.c.segs.Refs(vol.ID) {
			owner := cp.blockByAddr[ref.Server]
			if owner == nil {
				continue
			}
			set := owner.ReplicaSet(ref.SegmentID)
			inSet := false
			for _, a := range set {
				if a == drainAddr {
					inSet = true
					break
				}
			}
			if !inSet {
				continue
			}
			ds := &drainSeg{owner: owner, segID: ref.SegmentID, set: set}
			for _, a := range set {
				if a != drainAddr {
					ds.survivor = a
					break
				}
			}
			ds.replace = cp.pickReplacement(set, drainAddr, adopted)
			if ds.replace == 0 {
				cp.draining[drainAddr] = false
				return fmt.Errorf("ebs: drain chunk server %d: no replacement for segment %d", chunkIdx, ds.segID)
			}
			adopted[ds.replace]++
			plan = append(plan, ds)
		}
	}

	start := cp.c.Eng.Now()
	report := DrainReport{}
	var runSeg func(i int)
	finish := func() {
		cp.draining[drainAddr] = false
		report.Duration = cp.c.Eng.Now().Sub(start)
		done(report)
	}
	runSeg = func(i int) {
		if i == len(plan) {
			finish()
			return
		}
		ds := plan[i]
		ds.started = cp.c.Eng.Now().Duration()
		src := cp.chunkByAddr[ds.survivor]
		dst := cp.chunkByAddr[ds.replace]
		lbas := src.SegmentLBAs(ds.segID)
		var step func(j int)
		cutover := func() {
			newSet := make([]uint32, len(ds.set))
			for k, a := range ds.set {
				if a == drainAddr {
					newSet[k] = ds.replace
				} else {
					newSet[k] = a
				}
			}
			if newSet[0] == ds.replace {
				// Primary must hold the full segment; the survivor does,
				// the fresh replica may have missed mid-copy writes.
				for k, a := range newSet {
					if a == ds.survivor {
						newSet[0], newSet[k] = newSet[k], newSet[0]
						break
					}
				}
			}
			if err := ds.owner.SetReplicaSet(ds.segID, newSet); err != nil {
				report.CopyErrors++
			}
			cp.chunkByAddr[drainAddr].DropSegment(ds.segID)
			ds.completed = cp.c.Eng.Now().Duration()
			took := ds.completed - ds.started
			report.Segments++
			report.BlocksCopied += ds.blocks
			report.BytesCopied += ds.bytes
			report.Cutovers = append(report.Cutovers, took)
			cp.SegmentsMigrated++
			cp.BlocksCopied += ds.blocks
			cp.BytesCopied += ds.bytes
			cp.CutoverDurations = append(cp.CutoverDurations, took)
			cp.rec.Record(cp.c.Eng.Now().Duration(), trace.EvCutover, ds.segID, uint64(ds.replace))
			runSeg(i + 1)
		}
		step = func(j int) {
			if j == len(lbas) {
				cutover()
				return
			}
			src.MigrateRead(ds.segID, lbas[j], func(data []byte, rawCRC uint32, gen uint32, err error) {
				if err != nil {
					report.CopyErrors++
					cp.CopyErrors++
					step(j + 1)
					return
				}
				dst.WriteBlock(ds.segID, lbas[j], gen, data, rawCRC, func(err error) {
					if err != nil {
						report.CopyErrors++
						cp.CopyErrors++
					} else {
						ds.blocks++
						ds.bytes += uint64(len(data))
					}
					step(j + 1)
				})
			})
		}
		step(0)
	}
	runSeg(0)
	return nil
}

// pickReplacement chooses the chunk server to rebuild a replica on: not in
// the old set, not draining, fewest adoptions so far in this drain, ties
// to the lowest construction index. Returns 0 when no candidate exists
// (chunk addresses are fabric addresses, never 0).
func (cp *ControlPlane) pickReplacement(set []uint32, drainAddr uint32, adopted map[uint32]int) uint32 {
	var best uint32
	bestLoad := -1
	for _, cand := range cp.chunkAddrs {
		if cand == drainAddr || cp.draining[cand] {
			continue
		}
		inSet := false
		for _, a := range set {
			if a == cand {
				inSet = true
				break
			}
		}
		if inSet {
			continue
		}
		if bestLoad < 0 || adopted[cand] < bestLoad {
			best, bestLoad = cand, adopted[cand]
		}
	}
	return best
}

// CutoverP calculates the p-quantile (0..1) of recorded per-segment
// rebuild latencies, 0 when none have completed.
func (cp *ControlPlane) CutoverP(p float64) time.Duration {
	if len(cp.CutoverDurations) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), cp.CutoverDurations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
