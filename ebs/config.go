// Package ebs is the public API of the repository: it assembles the full
// Elastic Block Storage system the paper describes — compute servers
// (storage agent + a pluggable frontend-network stack, optionally on a
// DPU), a storage cluster (block servers replicating to chunk servers over
// a backend network), a multi-tier Clos fabric with failure injection, and
// distributed-trace collection — and exposes virtual disks to drive with
// I/O.
//
// Every comparison in the paper's evaluation is one cluster built with a
// different Config.FN:
//
//	cfg := ebs.DefaultConfig(ebs.Solar)
//	cluster := ebs.New(cfg)
//	vd := cluster.MustProvision(0, 8<<30, ebs.DefaultQoS())
//	vd.Write(0, data, func(res ebs.IOResult) { ... })
//	cluster.Run()
package ebs

import (
	"fmt"
	"sync/atomic"
	"time"

	"lunasolar/internal/cc"
	"lunasolar/internal/chunkserver"
	"lunasolar/internal/core"
	"lunasolar/internal/dpu"
	"lunasolar/internal/rdma"
	"lunasolar/internal/sa"
	"lunasolar/internal/simnet"
	"lunasolar/internal/tcpstack"
)

// StackKind selects the frontend-network stack generation.
type StackKind int

// The stacks of the paper's evaluation.
const (
	// KernelTCP is the pre-2018 baseline: kernel stack on both FN and BN.
	KernelTCP StackKind = iota
	// Luna is the user-space TCP stack (FN) over an RDMA BN.
	Luna
	// RDMA uses RC on the frontend too — the Fig. 14/15 comparator.
	RDMA
	// Solar is the offloaded one-block-one-packet stack.
	Solar
	// SolarStar is Solar with the data-plane offload disabled (§4.7).
	SolarStar
)

func (k StackKind) String() string {
	switch k {
	case KernelTCP:
		return "kernel"
	case Luna:
		return "luna"
	case RDMA:
		return "rdma"
	case Solar:
		return "solar"
	case SolarStar:
		return "solar*"
	}
	return "?"
}

// Config describes one cluster.
type Config struct {
	Fabric simnet.Config

	FN StackKind
	// BN defaults by era: KernelTCP front → kernel back; otherwise RDMA.
	BN StackKind

	ComputeServers int
	BlockServers   int
	ChunkServers   int

	// StackCores bounds the CPU pool available to the FN stack and SA on
	// each compute server (the x-axis of Fig. 14). Ignored when the stack
	// runs on a DPU, whose core count comes from DPU.CPUCores.
	StackCores int

	// BareMetal runs the compute-side stack and SA on the DPU (always true
	// for Solar/Solar*, whose design is the DPU).
	BareMetal bool
	DPU       dpu.Config

	StorageCores int // per storage server
	SSD          chunkserver.SSDConfig

	// CrossDC places the storage pod in a second datacenter so frontend
	// traffic crosses the DC-router tier (the Fig. 8 fleet topology).
	// Requires Fabric.DCs >= 2 and Fabric.DCRouters >= 1.
	CrossDC bool

	// Edge enables §4.8's "Integrated EBS with DPU": the storage agent and
	// block server share each compute server's DPU (an in-card handover
	// replaces the frontend-network RPC), and the integrated block server
	// replicates straight to the chunk servers over the backend network.
	// BlockServers is ignored; each compute hosts its own. Virtual disks
	// provisioned on a compute are served by that compute's block server.
	Edge bool

	// SolarOverride, when non-nil, replaces the Solar client parameters
	// (ablation studies: path counts, CRC strategy, window sizes). Mode and
	// Encrypted are still derived from FN/Encrypted.
	SolarOverride *core.Params

	// FlightRecorderDepth, when positive, attaches a trace.Recorder of that
	// depth to every Solar stack and chunk server: a ring buffer of the last
	// N anomalous events (retransmits, failovers, integrity hits, CRC
	// rejections), dumped on leak-gate or CRC failure for post-mortem
	// debugging. Zero (the default) disables recording entirely.
	FlightRecorderDepth int

	// CoupledParts splits the fabric into that many partitions advanced by
	// the coupled (conservative time-synchronized) runner; see
	// internal/simnet/partition.go and internal/sim/runtime/coupled.go.
	// 0 or 1 builds the classic serial cluster. The partition count is part
	// of the scenario: for a fixed CoupledParts, output is byte-identical
	// for every CoupledWorkers value.
	CoupledParts int

	// CoupledWorkers bounds the goroutines driving partition windows.
	// 0 uses GOMAXPROCS; 1 is the serial determinism baseline. Ignored
	// unless CoupledParts > 1.
	CoupledWorkers int

	// CC selects the congestion controller every RDMA stack in the cluster
	// runs — the frontend stack when FN is RDMA, and the backend stacks of
	// every era that replicates over RC. The zero value (cc.KindStatic) is
	// the fixed hardware window, byte-identical to clusters built before
	// the controller was pluggable. The kernel/Luna stacks keep DCTCP and
	// Solar keeps per-path HPCC regardless: the paper's comparison is
	// between those fixed designs and the RDMA plane's controller.
	CC cc.Kind

	// Fidelity selects the simulation fidelity. FidelityPacket (the zero
	// value) simulates every frame; FidelityHybrid arms the fabric's fluid
	// flow table so eligible bulk flows fast-forward analytically between
	// disturbances (see internal/simnet/flow.go). RPC traffic is always
	// packet-level; hybrid only changes how BulkService streams advance.
	Fidelity Fidelity

	Encrypted bool
	Seed      int64
}

// Fidelity is the simulation-fidelity mode of a cluster or experiment.
type Fidelity int32

// The fidelity modes of the hybrid fast-forward plane.
const (
	// FidelityPacket simulates every frame end to end — the bit-exact
	// baseline every other mode is differenced against.
	FidelityPacket Fidelity = iota
	// FidelityHybrid fast-forwards quiescent bulk flows at fluid rates and
	// demotes back to packets on any disturbance signal.
	FidelityHybrid
)

// String names the mode the way ebsbench -fidelity spells it.
func (f Fidelity) String() string {
	switch f {
	case FidelityPacket:
		return "packet"
	case FidelityHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("Fidelity(%d)", int32(f))
}

// ParseFidelity maps an ebsbench -fidelity value to a mode.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "packet":
		return FidelityPacket, nil
	case "hybrid":
		return FidelityHybrid, nil
	}
	return FidelityPacket, fmt.Errorf("unknown fidelity %q (want packet or hybrid)", s)
}

// defaultCC is the process-wide default for Config.CC — the ebsbench -cc
// hatch. Like simnet.SetZeroCopy it is flipped once before experiments
// fan out, never mid-run.
//
//lint:hatch cc
var defaultCC atomic.Int32

// SetDefaultCC sets the controller kind DefaultConfig assigns to Config.CC.
func SetDefaultCC(k cc.Kind) { defaultCC.Store(int32(k)) }

// DefaultCC returns the process-wide default controller kind.
func DefaultCC() cc.Kind { return cc.Kind(defaultCC.Load()) }

// defaultFidelity is the process-wide default for Config.Fidelity — the
// ebsbench -fidelity hatch, flipped once before experiments fan out.
//
//lint:hatch fidelity
var defaultFidelity atomic.Int32

// SetDefaultFidelity sets the mode DefaultConfig assigns to
// Config.Fidelity.
func SetDefaultFidelity(f Fidelity) { defaultFidelity.Store(int32(f)) }

// DefaultFidelity returns the process-wide default fidelity mode.
func DefaultFidelity() Fidelity { return Fidelity(defaultFidelity.Load()) }

// DefaultConfig returns a cluster sized like the Table 2 testbed scaled
// down: one compute pod and one storage pod in a single DC.
func DefaultConfig(fn StackKind) Config {
	fab := simnet.DefaultConfig()
	fab.RacksPerPod = 4
	fab.HostsPerRack = 4
	cfg := Config{
		Fabric:         fab,
		FN:             fn,
		BN:             RDMA,
		ComputeServers: 4,
		BlockServers:   4,
		ChunkServers:   8,
		StackCores:     4,
		StorageCores:   16,
		DPU:            dpu.DefaultConfig(),
		SSD:            chunkserver.DefaultSSD(),
		CC:             DefaultCC(),
		Fidelity:       DefaultFidelity(),
		Seed:           1,
	}
	if fn == KernelTCP {
		cfg.BN = KernelTCP
	}
	if fn == Solar || fn == SolarStar {
		cfg.BareMetal = true
	}
	return cfg
}

// QoS builds a service level with the given IOPS and bandwidth.
func QoS(iops, bandwidthBps float64) sa.QoSSpec {
	return sa.QoSSpec{IOPS: iops, BandwidthBps: bandwidthBps, BurstWindow: 10 * time.Millisecond}
}

// DefaultQoS returns an ESSD-class service level (the 2018 ESSD offering:
// up to 1M IOPS per disk family; a generous per-disk default here).
func DefaultQoS() sa.QoSSpec {
	return sa.QoSSpec{IOPS: 1_000_000, BandwidthBps: 32e9, BurstWindow: 10 * time.Millisecond}
}

// --- stack parameter presets (the calibration DESIGN.md documents) ---------

// KernelStackParams models the kernel TCP path: small MSS, per-RPC
// syscall/wakeup latency that dominates single-RPC latency, per-packet
// interrupt costs and payload copies that dominate CPU, and a 200 ms
// minimum RTO — the reason kernel-era loss recovery is disastrous for
// storage.
func KernelStackParams() tcpstack.Params {
	return tcpstack.Params{
		StackName: "kernel",
		MSS:       1448,
		InitCwnd:  10 * 1448,
		MaxCwnd:   1 << 20,
		MinRTO:    200 * time.Millisecond,
		MaxRTO:    2 * time.Second,

		PerRPCTxCPU: 800 * time.Nanosecond,
		PerRPCRxCPU: 900 * time.Nanosecond,
		PerPktTxCPU: 450 * time.Nanosecond,
		PerPktRxCPU: 550 * time.Nanosecond,
		CopyPer4K:   350 * time.Nanosecond,

		PerRPCTxDelay: 16 * time.Microsecond,
		PerRPCRxDelay: 12 * time.Microsecond,

		RxBufferSegs: 256,
	}
}

// LunaStackParams models Luna: jumbo MSS (one segment per block),
// run-to-complete (no wakeup latency), zero-copy, TSO batching, ECN/DCTCP,
// and a millisecond-scale RTO.
func LunaStackParams() tcpstack.Params {
	return tcpstack.Params{
		StackName: "luna",
		MSS:       4096,
		InitCwnd:  16 * 4096,
		MaxCwnd:   1 << 20,
		MinRTO:    4 * time.Millisecond,
		MaxRTO:    time.Second,
		UseECN:    true,

		PerRPCTxCPU: 120 * time.Nanosecond,
		PerRPCRxCPU: 150 * time.Nanosecond,
		PerPktTxCPU: 240 * time.Nanosecond,
		PerPktRxCPU: 120 * time.Nanosecond,

		PerRPCTxDelay: 600 * time.Nanosecond,
		PerRPCRxDelay: 400 * time.Nanosecond,

		TSOBatch:     4,
		RxBufferSegs: 512,
	}
}

// RDMAStackParams returns the RC model (see the rdma package).
func RDMAStackParams() rdma.Params { return rdma.DefaultParams() }

// SolarStackParams returns the Solar client model for the given placement.
func SolarStackParams(kind StackKind, encrypted bool) core.Params {
	p := core.DefaultParams()
	if kind == SolarStar {
		p.Mode = core.CPUPath
	}
	p.Encrypted = encrypted
	return p
}
