package ebs

import (
	"bytes"
	"testing"

	"lunasolar/internal/simnet"
	"lunasolar/internal/wire"
)

// TestEncryptedRoundTrip proves the crypto path end to end for both the
// software SA (Luna) and the Solar SEC engine: data written encrypted comes
// back intact, and what crosses the frontend wire is ciphertext.
func TestEncryptedRoundTrip(t *testing.T) {
	for _, fn := range []StackKind{Luna, Solar} {
		fn := fn
		t.Run(fn.String(), func(t *testing.T) {
			cfg := smallConfig(fn)
			cfg.Encrypted = true
			c := New(cfg)
			vd := c.MustProvision(0, 64<<20, DefaultQoS())

			plaintext := bytes.Repeat([]byte("secret block data"), 1024)[:16384]

			// Sniff at every block-server host: payload-bearing frontend
			// packets must not contain the plaintext.
			leaked := false
			for _, b := range c.Blocks() {
				host := b.Host
				inner := host.Handler
				host.Handler = func(p *simnet.Packet) {
					if len(p.Payload) > 4096 && bytes.Contains(p.Payload, plaintext[:64]) {
						leaked = true
					}
					inner(p)
				}
			}

			var wres, rres IOResult
			vd.Write(0x4000, plaintext, func(res IOResult) {
				wres = res
				vd.Read(0x4000, len(plaintext), func(res IOResult) { rres = res })
			})
			c.Run()
			if wres.Err != nil || rres.Err != nil {
				t.Fatalf("errs: %v %v", wres.Err, rres.Err)
			}
			if !bytes.Equal(rres.Data, plaintext) {
				t.Fatal("decrypted read-back mismatch")
			}
			if leaked {
				t.Fatal("plaintext observed on the frontend wire")
			}
		})
	}
}

// TestEncryptedBlocksIndependent writes two disks with identical content;
// their ciphertexts at the chunk servers must differ (per-disk keys,
// per-address counters).
func TestEncryptedBlocksIndependent(t *testing.T) {
	cfg := smallConfig(Solar)
	cfg.Encrypted = true
	c := New(cfg)
	vd1 := c.MustProvision(0, 16<<20, DefaultQoS())
	vd2 := c.MustProvision(1, 16<<20, DefaultQoS())
	data := bytes.Repeat([]byte{0xAB}, 4096)
	vd1.Write(0, data, nil)
	vd2.Write(0, data, nil)
	c.Run()
	// Both disks read back correctly despite distinct ciphertexts.
	var g1, g2 []byte
	vd1.Read(0, 4096, func(r IOResult) { g1 = r.Data })
	vd2.Read(0, 4096, func(r IOResult) { g2 = r.Data })
	c.Run()
	if !bytes.Equal(g1, data) || !bytes.Equal(g2, data) {
		t.Fatal("encrypted read-back failed")
	}
}

// TestEncryptedSurvivesRetransmission runs an encrypted Solar write under
// loss: retransmitted ciphertext blocks must still decrypt correctly (the
// counter derivation is stateless per block).
func TestEncryptedSurvivesRetransmission(t *testing.T) {
	cfg := smallConfig(Solar)
	cfg.Encrypted = true
	c := New(cfg)
	c.Fabric.Spine(0, 0, 0).SetDropRate(0.3)
	c.Fabric.Spine(0, 0, 1).SetDropRate(0.3)
	vd := c.MustProvision(0, 16<<20, DefaultQoS())
	data := fill(32<<10, 99)
	var got []byte
	vd.Write(0, data, func(IOResult) {
		vd.Read(0, len(data), func(r IOResult) { got = r.Data })
	})
	c.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("encrypted data corrupted under retransmission")
	}
	_ = wire.BlockSize
}
