package ebs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"lunasolar/internal/sim"
)

// TestChaos runs randomized failure storms against every stack while mixed
// I/O flows, then heals the fabric and asserts the three invariants any
// storage system must keep: every I/O eventually completes, every completed
// write is durable and readable bit-for-bit, and no transport leaks
// per-packet state.
func TestChaos(t *testing.T) {
	for _, fn := range []StackKind{Luna, Solar} {
		for seed := int64(1); seed <= 3; seed++ {
			fn, seed := fn, seed
			t.Run(fmt.Sprintf("%s/seed%d", fn, seed), func(t *testing.T) {
				runChaos(t, fn, seed)
			})
		}
	}
}

func runChaos(t *testing.T, fn StackKind, seed int64) {
	cfg := smallConfig(fn)
	cfg.Seed = seed
	c := New(cfg)
	r := sim.NewRand(seed * 977)
	vd := c.MustProvision(0, 64<<20, DefaultQoS())

	// Ground truth: what each block address should contain. Each in-flight
	// slot owns a disjoint LBA range and runs sequentially, so no two
	// operations ever race on an address (last-writer-wins by generation
	// would otherwise make completion-order bookkeeping ambiguous).
	truth := map[uint64][]byte{}
	writesDone, readsDone := 0, 0
	var mismatches int

	const slots = 4
	const iosPerSlot = 40
	for slot := 0; slot < slots; slot++ {
		slot := slot
		written := []uint64{} // this slot's written addresses, in order
		issued := 0
		var issue func()
		issue = func() {
			if issued >= iosPerSlot {
				return
			}
			issued++
			if r.Bernoulli(0.4) && len(written) > 0 {
				// Read something this slot already wrote and verify.
				pick := written[r.Intn(len(written))]
				want := truth[pick]
				vd.Read(pick, len(want), func(res IOResult) {
					readsDone++
					if res.Err == nil && !bytes.Equal(res.Data, want) {
						mismatches++
					}
					issue()
				})
				return
			}
			lba := uint64(slot*128+r.Intn(128)) << 12
			data := fill(4096, byte(slot*100+issued))
			vd.Write(lba, data, func(res IOResult) {
				writesDone++
				if res.Err == nil {
					truth[lba] = data
					written = append(written, lba)
				}
				issue()
			})
		}
		issue()
	}

	// Failure storm: every 100ms, flip a random fault somewhere.
	switches := c.Fabric.Switches()
	var storm func()
	storms := 0
	storm = func() {
		if storms >= 8 {
			return
		}
		storms++
		sw := switches[r.Intn(len(switches))]
		switch r.Intn(4) {
		case 0:
			sw.SetDropRate(0.3)
			c.Eng.Schedule(60*time.Millisecond, sw.Repair)
		case 1:
			sw.SetBlackhole(0.3, r.Uint32())
			c.Eng.Schedule(80*time.Millisecond, sw.Repair)
		case 2:
			c.Fabric.RebootSwitch(sw, 50*time.Millisecond)
		case 3:
			if len(c.Compute(0).Host.Ports()) > 1 {
				p := c.Compute(0).Host.Ports()[r.Intn(2)]
				c.Fabric.FailLink(p)
				c.Eng.Schedule(70*time.Millisecond, func() { c.Fabric.RepairLink(p) })
			}
		}
		c.Eng.Schedule(100*time.Millisecond, storm)
	}
	c.Eng.Schedule(50*time.Millisecond, storm)

	// Run long enough for the storm to end and everything to recover.
	c.RunFor(60 * time.Second)

	if writesDone+readsDone != slots*iosPerSlot {
		t.Fatalf("completed %d/%d I/Os after healing", writesDone+readsDone, slots*iosPerSlot)
	}
	if mismatches != 0 {
		t.Fatalf("%d read-back mismatches", mismatches)
	}

	// Final verification sweep over all acknowledged writes, on a healthy
	// fabric.
	verified := 0
	for lba, want := range truth {
		lba, want := lba, want
		vd.Read(lba, len(want), func(res IOResult) {
			if res.Err != nil {
				t.Errorf("verify read %#x: %v", lba, res.Err)
				return
			}
			if !bytes.Equal(res.Data, want) {
				t.Errorf("durability violation at %#x", lba)
				return
			}
			verified++
		})
	}
	c.RunFor(30 * time.Second)
	if verified != len(truth) {
		t.Fatalf("verified %d/%d acknowledged writes", verified, len(truth))
	}
}
