package ebs

import (
	"fmt"
	"time"

	"lunasolar/internal/blockserver"
	"lunasolar/internal/chunkserver"
	"lunasolar/internal/core"
	"lunasolar/internal/dpu"
	"lunasolar/internal/rdma"
	"lunasolar/internal/sa"
	"lunasolar/internal/sim"
	"lunasolar/internal/sim/runtime"
	"lunasolar/internal/simnet"
	"lunasolar/internal/tcpstack"
	"lunasolar/internal/trace"
	"lunasolar/internal/transport"
)

// Compute servers live in (dc 0, pod 0). Storage servers live in pod 1 of
// the same DC, or pod 0 of DC 1 when CrossDC is set — either way frontend
// traffic crosses the fabric's upper tiers.
const computePod = 0

// Cluster is a fully wired EBS deployment. It spans every partition of
// a coupled fabric: reaching engines, pools or collectors through it from
// partitioned code crosses ownership.
//
//lint:spanning
type Cluster struct {
	Eng    *sim.Engine // partition 0's engine; the only engine when serial
	Fabric *simnet.Fabric
	cfg    Config

	engines []*sim.Engine
	coupled *runtime.Coupled // nil for serial clusters

	computes []*ComputeServer
	blocks   []*StorageServer
	chunks   []*StorageServer

	segs       *sa.SegmentTable
	collectors []*trace.Collector // one per partition, engine-owned like pools
	nextVD     uint32
	ctrlPlane  *ControlPlane // lazily built by ControlPlane()
}

// ComputeServer is one compute host: its agent, stack, and (when
// bare-metal) DPU.
type ComputeServer struct {
	Host  *simnet.Host
	Cores *sim.Server // the pool the stack + SA are charged to
	DPU   *dpu.DPU    // nil unless bare-metal
	Stack transport.Stack
	Agent *sa.Agent
}

// StorageServer is one storage host: a block server or a chunk server.
type StorageServer struct {
	Host  *simnet.Host
	Cores *sim.Server
	Block *blockserver.Server // nil on chunk nodes
	Chunk *chunkserver.Server // nil on block nodes
	FN    transport.Stack     // the host's frontend-facing stack (diagnostics)
}

// New builds and wires a cluster. It panics on impossible configurations
// (construction errors are programming errors in experiment setup).
//
//lint:barrier — construction time: partitions exist but no window has run
func New(cfg Config) *Cluster {
	if cfg.FN == Solar || cfg.FN == SolarStar {
		cfg.BareMetal = true
	}
	if cfg.ComputeServers <= 0 || cfg.BlockServers <= 0 || cfg.ChunkServers < blockserver.Replicas {
		panic("ebs: cluster needs computes, block servers, and >=3 chunk servers")
	}
	podCap := cfg.Fabric.RacksPerPod * cfg.Fabric.HostsPerRack
	if cfg.ComputeServers > podCap {
		panic(fmt.Sprintf("ebs: %d compute servers exceed pod capacity %d", cfg.ComputeServers, podCap))
	}
	if cfg.BlockServers+cfg.ChunkServers > podCap {
		panic(fmt.Sprintf("ebs: %d storage servers exceed pod capacity %d",
			cfg.BlockServers+cfg.ChunkServers, podCap))
	}
	if cfg.CrossDC && (cfg.Fabric.DCs < 2 || cfg.Fabric.DCRouters < 1) {
		panic("ebs: CrossDC requires >=2 DCs and >=1 DC router in the fabric")
	}
	if cfg.Edge && cfg.FN != Solar {
		panic("ebs: Edge mode integrates the Solar-era DPU; set FN to Solar")
	}

	parts := cfg.CoupledParts
	if parts < 1 {
		parts = 1
	}
	engines := make([]*sim.Engine, parts)
	collectors := make([]*trace.Collector, parts)
	for i := range engines {
		engines[i] = sim.NewEngine(mixSeed(cfg.Seed, i))
		collectors[i] = trace.NewCollector()
	}
	plan := simnet.PlanPartitions(cfg.Fabric, parts)
	fab := simnet.NewPartitioned(engines, cfg.Fabric, plan)
	c := &Cluster{
		Eng:        engines[0],
		Fabric:     fab,
		cfg:        cfg,
		engines:    engines,
		segs:       sa.NewSegmentTable(),
		collectors: collectors,
	}
	if parts > 1 {
		c.coupled = &runtime.Coupled{
			Engines:   engines,
			Lookahead: fab.Lookahead(),
			Workers:   cfg.CoupledWorkers,
			AtBarrier: func() {
				fab.PublishCutState()
				fab.DrainInboxes()
			},
		}
	}
	if cfg.Fidelity == FidelityHybrid {
		// Arm the fluid flow table. Serial clusters get the engine's
		// fast-forward hook from EnableFluid itself; coupled clusters
		// advance fluid state only at barriers, where every partition is
		// synchronized.
		ft := fab.EnableFluid(simnet.DefaultFluidConfig())
		if c.coupled != nil {
			c.coupled.FastForward = ft.BarrierAdvance
		}
	}

	// Storage hosts: chunk servers first (block servers need their
	// addresses).
	storageDC, storagePod := 0, 1
	if cfg.CrossDC {
		storageDC, storagePod = 1, 0
	}
	storageHost := func(i int) *simnet.Host {
		rack := i / cfg.Fabric.HostsPerRack
		return fab.Host(storageDC, storagePod, rack, i%cfg.Fabric.HostsPerRack)
	}
	var chunkAddrs []uint32
	for i := 0; i < cfg.ChunkServers; i++ {
		host := storageHost(cfg.BlockServers + i)
		heng := host.Engine()
		cores := sim.NewServer(heng, fmt.Sprintf("chunk%d-cpu", i), cfg.StorageCores)
		cs := chunkserver.New(heng, fmt.Sprintf("chunk%d", i), cfg.SSD)
		bn := c.newStack(c.bnKind(), host, cores, nil)
		chunkserver.NewService(heng, cs, bn)
		c.chunks = append(c.chunks, &StorageServer{Host: host, Cores: cores, Chunk: cs})
		chunkAddrs = append(chunkAddrs, host.Addr())
	}

	for i := 0; i < cfg.BlockServers && !cfg.Edge; i++ {
		host := storageHost(i)
		heng := host.Engine()
		cores := sim.NewServer(heng, fmt.Sprintf("block%d-cpu", i), cfg.StorageCores)
		var fnStack transport.Stack
		var bnClient transport.Client
		if c.bnKind() == cfg.FN {
			// Same stack serves FN and speaks BN (the kernel era).
			st := c.newStack(cfg.FN, host, cores, nil)
			fnStack, bnClient = st, st
		} else {
			mux := simnet.NewMux(host)
			fn := c.newStack(cfg.FN, host, cores, nil)
			bn := c.newStack(c.bnKind(), host, cores, nil)
			c.routeMux(mux, cfg.FN, fn)
			c.routeMux(mux, c.bnKind(), bn)
			fnStack, bnClient = fn, bn
		}
		bs, err := blockserver.New(heng, fmt.Sprintf("block%d", i), fnStack, bnClient,
			chunkAddrs, cores, blockserver.DefaultParams())
		if err != nil {
			panic(err)
		}
		c.blocks = append(c.blocks, &StorageServer{Host: host, Cores: cores, Block: bs, FN: fnStack})
	}

	// Compute servers.
	for i := 0; i < cfg.ComputeServers; i++ {
		rack := i / cfg.Fabric.HostsPerRack
		host := fab.Host(0, computePod, rack, i%cfg.Fabric.HostsPerRack)
		heng := host.Engine()
		var card *dpu.DPU
		var cores *sim.Server
		if cfg.BareMetal || cfg.Edge {
			card = dpu.New(heng, cfg.DPU)
			cores = card.CPU
		} else {
			cores = sim.NewServer(heng, fmt.Sprintf("compute%d-stack", i), cfg.StackCores)
		}

		if cfg.Edge {
			// §4.8 integrated mode: SA → in-card handover → local block
			// server → BN replication to the chunk servers.
			lo := transport.NewLoopback(func(d time.Duration, fn func()) {
				heng.Schedule(d, fn)
			}, 2*time.Microsecond, host.Addr())
			bn := c.newStack(RDMA, host, cores, nil)
			bs, err := blockserver.New(heng, fmt.Sprintf("edge-block%d", i), lo, bn,
				chunkAddrs, cores, blockserver.DefaultParams())
			if err != nil {
				panic(err)
			}
			saParams := sa.OffloadedParams()
			saParams.Encrypted = cfg.Encrypted
			agent := sa.New(heng, cores, lo, c.segs, saParams)
			agent.SetCollector(c.collectors[host.PartIndex()])
			c.computes = append(c.computes, &ComputeServer{
				Host: host, Cores: cores, DPU: card, Stack: lo, Agent: agent,
			})
			c.blocks = append(c.blocks, &StorageServer{Host: host, Cores: cores, Block: bs, FN: lo})
			continue
		}

		stack := c.newStack(cfg.FN, host, cores, card)
		saParams := sa.SoftwareParams()
		if cfg.FN == Solar || cfg.FN == SolarStar {
			saParams = sa.OffloadedParams()
		}
		saParams.Encrypted = cfg.Encrypted
		agent := sa.New(heng, cores, stack, c.segs, saParams)
		agent.SetCollector(c.collectors[host.PartIndex()])
		c.computes = append(c.computes, &ComputeServer{
			Host: host, Cores: cores, DPU: card, Stack: stack, Agent: agent,
		})
	}
	c.wireRecorders()
	return c
}

// mixSeed derives partition i's engine seed: partition 0 keeps the
// configured seed (so a one-partition cluster is bit-identical to the
// serial construction), and higher partitions fan out through a golden-
// ratio stride.
func mixSeed(seed int64, i int) int64 {
	return seed + int64(i)*0x1f3a8d2c9b47e681
}

func (c *Cluster) bnKind() StackKind {
	if c.cfg.BN == KernelTCP || c.cfg.FN == KernelTCP {
		return KernelTCP
	}
	return RDMA
}

// newStack constructs one endpoint of the given kind on host, scheduled on
// the engine owning the host's partition.
func (c *Cluster) newStack(kind StackKind, host *simnet.Host, cores *sim.Server, card *dpu.DPU) transport.Stack {
	eng := host.Engine()
	var pcie *sim.Channel
	if card != nil {
		pcie = card.PCIe
	}
	switch kind {
	case KernelTCP:
		return tcpstack.New(eng, host, cores, pcie, KernelStackParams())
	case Luna:
		return tcpstack.New(eng, host, cores, pcie, LunaStackParams())
	case RDMA:
		p := RDMAStackParams()
		p.CC = c.cfg.CC
		return rdma.New(eng, host, cores, pcie, p)
	case Solar, SolarStar:
		if card != nil {
			p := SolarStackParams(kind, c.cfg.Encrypted)
			if c.cfg.SolarOverride != nil {
				p = *c.cfg.SolarOverride
				p.Mode = SolarStackParams(kind, c.cfg.Encrypted).Mode
				p.Encrypted = c.cfg.Encrypted
			}
			return core.New(eng, host, cores, card, p)
		}
		return core.New(eng, host, cores, nil, core.ServerParams())
	}
	panic("ebs: unknown stack kind")
}

// routeMux registers a stack's receiver under its wire protocol.
func (c *Cluster) routeMux(mux *simnet.Mux, kind StackKind, st transport.Stack) {
	switch s := st.(type) {
	case *tcpstack.Stack:
		mux.Handle(6, s.ReceivePacket) // wire.ProtoTCP
	case *rdma.Stack:
		mux.Handle(rdma.Proto, s.ReceivePacket)
	case *core.Stack:
		mux.Handle(17, s.ReceivePacket) // wire.ProtoUDP
	default:
		panic("ebs: unroutable stack")
	}
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Compute returns compute server i.
func (c *Cluster) Compute(i int) *ComputeServer { return c.computes[i] }

// Computes returns the number of compute servers.
func (c *Cluster) Computes() int { return len(c.computes) }

// BlockServerAddrs returns the fabric addresses of all block servers.
func (c *Cluster) BlockServerAddrs() []uint32 {
	out := make([]uint32, len(c.blocks))
	for i, b := range c.blocks {
		out[i] = b.Host.Addr()
	}
	return out
}

// SegmentRefs returns a copy of a vdisk's current segment placements in
// stripe order (empty when the vdisk is unknown or segmentless).
func (c *Cluster) SegmentRefs(vdisk uint32) []sa.SegmentRef { return c.segs.Refs(vdisk) }

// Chunks returns the chunk-server nodes (for SSD stats).
func (c *Cluster) Chunks() []*StorageServer { return c.chunks }

// Blocks returns the block-server nodes.
func (c *Cluster) Blocks() []*StorageServer { return c.blocks }

// Collector returns the cluster-wide trace collector. Coupled clusters
// keep one collector per partition; the view returned here merges them in
// partition order, so aggregates are identical for every worker count.
//
//lint:barrier — merged view is read between runs, after the final barrier
func (c *Cluster) Collector() *trace.Collector {
	if len(c.collectors) == 1 {
		return c.collectors[0]
	}
	merged := trace.NewCollector()
	for _, col := range c.collectors {
		merged.Merge(col)
	}
	return merged
}

// Engines returns the per-partition engines (one entry for serial
// clusters). Benchmark harnesses sum processed-event counts across them.
func (c *Cluster) Engines() []*sim.Engine { return c.engines }

// Run drains all pending events — through the coupled runner's
// barrier-synchronized windows when the cluster is partitioned, serially
// otherwise.
//
//lint:barrier — top-level driver: owns the engines until it returns
func (c *Cluster) Run() {
	if c.coupled != nil {
		c.coupled.Run()
		return
	}
	c.Eng.Run()
}

// Leaked reports pooled packets checked out of the fabric's packet pools
// with no event left that could return them — a reference leak in some
// stack's packet handling. A cluster stopped mid-run (RunFor with I/O
// still in flight) legitimately holds packets, and so does one with
// frames parked in a cross-partition mailbox, so the check only applies
// once every engine has fully drained and the inboxes are empty; Leaked
// returns 0 otherwise.
//
//lint:barrier — post-drain check only, per the contract above
func (c *Cluster) Leaked() int {
	for _, eng := range c.engines {
		if eng.Pending() != 0 {
			return 0
		}
	}
	if c.Fabric.InboxPending() != 0 {
		return 0
	}
	return int(c.Fabric.OutstandingAll())
}

// RunFor advances virtual time by d.
//
//lint:barrier — top-level driver: owns the engines until it returns
func (c *Cluster) RunFor(d time.Duration) {
	if c.coupled != nil {
		c.coupled.RunUntil(c.Eng.Now().Add(d))
		return
	}
	c.Eng.RunFor(d)
}

// Now returns the current virtual time.
//
//lint:barrier — read by the driving test between runs, not inside a window
func (c *Cluster) Now() time.Duration { return c.Eng.Now().Duration() }
