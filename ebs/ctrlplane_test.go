package ebs

import (
	"bytes"
	"testing"
	"time"

	"lunasolar/internal/ctrl"
	"lunasolar/internal/sa"
)

func TestControlPlaneLifecycle(t *testing.T) {
	c := testCluster(t, Solar)
	cp := c.ControlPlane()

	vd, err := cp.CreateVolume("create-1", 0, "acme", 8<<20, DefaultQoS())
	if err != nil {
		t.Fatal(err)
	}
	// Replay returns the same volume without re-provisioning.
	vd2, err := cp.CreateVolume("create-1", 0, "acme", 8<<20, DefaultQoS())
	if err != nil {
		t.Fatal(err)
	}
	if vd2 != vd {
		t.Fatal("replayed create returned a different vdisk")
	}

	data := fill(8<<10, 3)
	var wres IOResult
	vd.Write(0, data, func(r IOResult) { wres = r })
	c.Run()
	if wres.Err != nil {
		t.Fatal(wres.Err)
	}

	// Resize grows the mapping; the new range becomes writable.
	if err := cp.ResizeVolume("resize-1", vd.ID, 16<<20); err != nil {
		t.Fatal(err)
	}
	if vd.Size() != 16<<20 {
		t.Fatalf("size after resize = %d", vd.Size())
	}
	var wres2 IOResult
	vd.Write(12<<20, data, func(r IOResult) { wres2 = r })
	c.Run()
	if wres2.Err != nil {
		t.Fatal(wres2.Err)
	}

	// Snapshot + clone: the clone is a distinct, writable volume of the
	// snapshot's size.
	snap, err := cp.SnapshotVolume("snap-1", vd.ID)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := cp.CloneVolume("clone-1", snap, 1, "acme", DefaultQoS())
	if err != nil {
		t.Fatal(err)
	}
	if clone.ID == vd.ID || clone.Size() != 16<<20 {
		t.Fatalf("clone: id=%d size=%d", clone.ID, clone.Size())
	}
	var wres3 IOResult
	clone.Write(0, data, func(r IOResult) { wres3 = r })
	c.Run()
	if wres3.Err != nil {
		t.Fatal(wres3.Err)
	}

	// Delete: later I/O fails with a provisioning error, and the record
	// becomes a tombstone.
	if err := cp.DeleteVolume("del-1", vd.ID); err != nil {
		t.Fatal(err)
	}
	var rres IOResult
	vd.Read(0, 4096, func(r IOResult) { rres = r })
	c.Run()
	if rres.Err == nil {
		t.Fatal("read from deleted volume succeeded")
	}
	vol, ok := cp.Service().Volume(vd.ID)
	if !ok || vol.State != ctrl.StateDeleted {
		t.Fatalf("deleted record: %+v ok=%v", vol, ok)
	}
	// Replayed delete still reports success.
	if err := cp.DeleteVolume("del-1", vd.ID); err != nil {
		t.Fatal(err)
	}
}

func TestControlPlanePlacementSpreadsRacks(t *testing.T) {
	cfg := smallConfig(Solar)
	cfg.Fabric.HostsPerRack = 2 // 2 block servers land in 2 racks
	cfg.Fabric.RacksPerPod = 3  // room for 2 block + 4 chunk servers
	c := New(cfg)
	cp := c.ControlPlane()
	vd, err := cp.CreateVolume("c", 0, "", 8<<20, DefaultQoS())
	if err != nil {
		t.Fatal(err)
	}
	refs := c.segs.Refs(vd.ID)
	if len(refs) != 4 {
		t.Fatalf("segments = %d", len(refs))
	}
	// With one block server per rack, consecutive segments must alternate
	// failure domains.
	if refs[0].Server == refs[1].Server || refs[2].Server == refs[3].Server {
		t.Fatalf("placement did not spread: %+v", refs)
	}
}

// driveWrites issues count sequential 4 KiB writes on vd spaced interval
// apart, collecting errors and completions.
func driveWrites(c *Cluster, vd *VDisk, count int, interval time.Duration, errs *int, done *int) {
	var issue func(i int)
	issue = func(i int) {
		if i == count {
			return
		}
		lba := (uint64(i) * 4096) % vd.Size()
		vd.Write(lba, fill(4096, byte(i)), func(r IOResult) {
			if r.Err != nil {
				*errs++
			}
			*done++
		})
		c.Eng.Schedule(interval, func() { issue(i + 1) })
	}
	issue(0)
}

func TestMigrateSegmentUnderLoad(t *testing.T) {
	c := testCluster(t, Solar)
	cp := c.ControlPlane()
	vd, err := cp.CreateVolume("c", 0, "", 8<<20, DefaultQoS())
	if err != nil {
		t.Fatal(err)
	}
	refs := c.segs.Refs(vd.ID)
	from := refs[0].Server
	var to uint32
	for _, a := range c.BlockServerAddrs() {
		if a != from {
			to = a
			break
		}
	}
	errs, done := 0, 0
	driveWrites(c, vd, 200, 10*time.Microsecond, &errs, &done)
	// Cut segment 0 over mid-storm.
	c.Eng.Schedule(500*time.Microsecond, func() {
		if err := cp.MigrateSegment(vd.ID, 0, to); err != nil {
			t.Error(err)
		}
	})
	c.Run()
	if done != 200 || errs != 0 {
		t.Fatalf("done=%d errs=%d", done, errs)
	}
	if got := c.segs.Refs(vd.ID)[0].Server; got != to {
		t.Fatalf("segment still at %d", got)
	}
	if c.segs.Generation(vd.ID) == 0 {
		t.Fatal("generation not bumped")
	}
	// Data written before and after the cutover reads back intact.
	var rres IOResult
	vd.Read(0, 4096, func(r IOResult) { rres = r })
	c.Run()
	if rres.Err != nil {
		t.Fatal(rres.Err)
	}
}

func TestDrainChunkServerUnderLoad(t *testing.T) {
	c := testCluster(t, Solar)
	cp := c.ControlPlane()
	vd, err := cp.CreateVolume("c", 0, "", 8<<20, DefaultQoS())
	if err != nil {
		t.Fatal(err)
	}
	// Seed every segment so the drained replicas have blocks to copy.
	seed := fill(16<<10, 9)
	var werr error
	for off := uint64(0); off < vd.Size(); off += sa.SegmentBytes {
		vd.Write(off, seed, func(r IOResult) {
			if r.Err != nil {
				werr = r.Err
			}
		})
	}
	c.Run()
	if werr != nil {
		t.Fatal(werr)
	}

	errs, done := 0, 0
	driveWrites(c, vd, 300, 20*time.Microsecond, &errs, &done)
	var report DrainReport
	drained := false
	c.Eng.Schedule(time.Millisecond, func() {
		if err := cp.DrainChunkServer(0, func(r DrainReport) { report = r; drained = true }); err != nil {
			t.Error(err)
		}
	})
	c.Run()
	if done != 300 || errs != 0 {
		t.Fatalf("done=%d errs=%d", done, errs)
	}
	if !drained {
		t.Fatal("drain never completed")
	}
	if report.Segments == 0 || report.BlocksCopied == 0 || report.CopyErrors != 0 {
		t.Fatalf("report: %+v", report)
	}
	if len(report.Cutovers) != report.Segments {
		t.Fatalf("cutovers %d != segments %d", len(report.Cutovers), report.Segments)
	}
	// The drained server holds no replica of this volume's segments now.
	drainAddr := c.chunks[0].Host.Addr()
	for _, ref := range c.segs.Refs(vd.ID) {
		for _, a := range cp.blockByAddr[ref.Server].ReplicaSet(ref.SegmentID) {
			if a == drainAddr {
				t.Fatalf("segment %d still replicated on drained server", ref.SegmentID)
			}
		}
	}
	// Seeded data survives the drain. LBA 4 MiB sits in a drained segment
	// and outside the write storm's range, so the bytes must be the seed's.
	var rres IOResult
	vd.Read(4<<20, len(seed), func(r IOResult) { rres = r })
	c.Run()
	if rres.Err != nil {
		t.Fatal(rres.Err)
	}
	if !bytes.Equal(rres.Data[:4096], seed[:4096]) {
		t.Fatal("post-drain read-back mismatch")
	}
}

func TestEvacuateBlockServer(t *testing.T) {
	c := testCluster(t, Solar)
	cp := c.ControlPlane()
	vd, err := cp.CreateVolume("c", 0, "", 8<<20, DefaultQoS())
	if err != nil {
		t.Fatal(err)
	}
	errs, done := 0, 0
	driveWrites(c, vd, 100, 10*time.Microsecond, &errs, &done)
	c.Eng.Schedule(300*time.Microsecond, func() {
		if err := cp.EvacuateBlockServer(0); err != nil {
			t.Error(err)
		}
	})
	c.Run()
	if done != 100 || errs != 0 {
		t.Fatalf("done=%d errs=%d", done, errs)
	}
	evacAddr := c.blocks[0].Host.Addr()
	for _, ref := range c.segs.Refs(vd.ID) {
		if ref.Server == evacAddr {
			t.Fatalf("segment %d still on evacuated server", ref.SegmentID)
		}
	}
	// New placements avoid the evacuated server.
	vd2, err := cp.CreateVolume("c2", 0, "", 8<<20, DefaultQoS())
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range c.segs.Refs(vd2.ID) {
		if ref.Server == evacAddr {
			t.Fatal("placement used evacuated server")
		}
	}
}

func TestTenantQoSIsolation(t *testing.T) {
	c := testCluster(t, Solar)
	cp := c.ControlPlane()
	cp.SetTenantQoS("noisy", sa.QoSSpec{IOPS: 2000, BurstWindow: time.Millisecond})
	agg, err := cp.CreateVolume("agg", 0, "noisy", 16<<20, QoS(1e6, 100e9))
	if err != nil {
		t.Fatal(err)
	}
	aggDone := 0
	for i := 0; i < 100; i++ {
		agg.Write(uint64(i)<<12, fill(4096, 1), func(IOResult) { aggDone++ })
	}
	c.Run()
	if aggDone != 100 {
		t.Fatalf("aggressor done %d/100", aggDone)
	}
	// 100 I/Os against a 2000 IOPS tenant cap → at least ~45ms of pacing,
	// even though the per-disk spec allowed 1M IOPS.
	if c.Now() < 40*time.Millisecond {
		t.Fatalf("tenant cap absent: finished at %v", c.Now())
	}
	if c.computes[0].Agent.TenantDelay == 0 {
		t.Fatal("no tenant delay recorded")
	}
}
