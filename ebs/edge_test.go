package ebs

import (
	"bytes"
	"testing"
	"time"
)

// TestEdgeModeRoundTrip exercises §4.8's integrated deployment: SA and
// block server on the same DPU, replication straight to chunk servers.
func TestEdgeModeRoundTrip(t *testing.T) {
	cfg := smallConfig(Solar)
	cfg.Edge = true
	c := New(cfg)
	vd := c.MustProvision(0, 64<<20, DefaultQoS())
	data := fill(16<<10, 5)
	var rres IOResult
	vd.Write(0x8000, data, func(w IOResult) {
		if w.Err != nil {
			t.Fatal(w.Err)
		}
		vd.Read(0x8000, len(data), func(r IOResult) { rres = r })
	})
	c.Run()
	if rres.Err != nil || !bytes.Equal(rres.Data, data) {
		t.Fatalf("edge round trip failed: %v", rres.Err)
	}
}

// TestEdgeModeCutsFrontendHop compares write medians: the integrated mode
// must beat standard Solar by roughly the frontend round trip.
func TestEdgeModeCutsFrontendHop(t *testing.T) {
	measure := func(edge bool) time.Duration {
		cfg := smallConfig(Solar)
		cfg.Edge = edge
		c := New(cfg)
		vd := c.MustProvision(0, 64<<20, DefaultQoS())
		n := 0
		var issue func()
		issue = func() {
			if n >= 200 {
				return
			}
			lba := uint64(n%512) << 12
			n++
			vd.Write(lba, fill(4096, byte(n)), func(IOResult) {
				c.Eng.Schedule(50*time.Microsecond, issue)
			})
		}
		issue()
		c.Run()
		return c.Collector().E2E("write").Median()
	}
	std := measure(false)
	edge := measure(true)
	t.Logf("write p50: standard=%v edge=%v", std, edge)
	if edge >= std {
		t.Fatalf("edge (%v) not faster than standard (%v)", edge, std)
	}
	if std-edge < 5*time.Microsecond {
		t.Fatalf("edge saves only %v; expected ~an FN round trip", std-edge)
	}
}

// TestEdgeModeDisksAreLocal verifies each disk's segments resolve to its
// own compute server.
func TestEdgeModeDisksAreLocal(t *testing.T) {
	cfg := smallConfig(Solar)
	cfg.Edge = true
	c := New(cfg)
	vd0 := c.MustProvision(0, 16<<20, DefaultQoS())
	vd1 := c.MustProvision(1, 16<<20, DefaultQoS())
	done := 0
	vd0.Write(0, fill(4096, 1), func(r IOResult) {
		if r.Err == nil {
			done++
		}
	})
	vd1.Write(0, fill(4096, 2), func(r IOResult) {
		if r.Err == nil {
			done++
		}
	})
	c.Run()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	// Each compute's integrated block server served exactly its own disk.
	for i, b := range c.Blocks() {
		w, _ := b.Block.Stats()
		if w != 1 {
			t.Fatalf("edge block %d served %d writes, want 1", i, w)
		}
		if i >= 2 {
			break
		}
	}
}

func TestEdgeRequiresSolar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("edge with luna accepted")
		}
	}()
	cfg := smallConfig(Luna)
	cfg.Edge = true
	New(cfg)
}
