package ebs

import (
	"bytes"
	"testing"
	"time"

	"lunasolar/internal/trace"
)

func smallConfig(fn StackKind) Config {
	cfg := DefaultConfig(fn)
	cfg.Fabric.RacksPerPod = 2
	cfg.Fabric.HostsPerRack = 4
	cfg.Fabric.SpinesPerPod = 2
	cfg.Fabric.CoresPerDC = 2
	cfg.ComputeServers = 2
	cfg.BlockServers = 2
	cfg.ChunkServers = 4
	return cfg
}

func testCluster(t *testing.T, fn StackKind) *Cluster {
	t.Helper()
	return New(smallConfig(fn))
}

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*31)
	}
	return b
}

func TestWriteReadAllStacks(t *testing.T) {
	for _, fn := range []StackKind{KernelTCP, Luna, RDMA, Solar, SolarStar} {
		fn := fn
		t.Run(fn.String(), func(t *testing.T) {
			c := testCluster(t, fn)
			vd := c.MustProvision(0, 64<<20, DefaultQoS())
			data := fill(16<<10, byte(fn))
			var wres, rres IOResult
			vd.Write(0x8000, data, func(res IOResult) {
				wres = res
				vd.Read(0x8000, len(data), func(res IOResult) { rres = res })
			})
			c.Run()
			if wres.Err != nil || rres.Err != nil {
				t.Fatalf("errs: %v %v", wres.Err, rres.Err)
			}
			if !bytes.Equal(rres.Data, data) {
				t.Fatal("read-back mismatch")
			}
			if wres.Latency <= 0 || rres.Latency <= 0 {
				t.Fatal("non-positive latency")
			}
			// Every component should be populated on writes.
			if wres.Span.Get(trace.SSD) == 0 || wres.Span.Get(trace.BN) == 0 {
				t.Fatalf("write span missing components: %v %v",
					wres.Span.Get(trace.BN), wres.Span.Get(trace.SSD))
			}
		})
	}
}

func TestReadBeforeWriteReturnsZeros(t *testing.T) {
	c := testCluster(t, Solar)
	vd := c.MustProvision(0, 16<<20, DefaultQoS())
	var got []byte
	vd.Read(0, 8192, func(res IOResult) { got = res.Data })
	c.Run()
	if len(got) != 8192 {
		t.Fatalf("len=%d", len(got))
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten disk not zero")
		}
	}
}

func TestUnprovisionedRangeErrors(t *testing.T) {
	c := testCluster(t, Luna)
	vd := c.MustProvision(0, 4<<20, DefaultQoS())
	var res IOResult
	res.Err = nil
	done := false
	vd.Read(64<<20, 4096, func(r IOResult) { res = r; done = true })
	c.Run()
	if !done || res.Err == nil {
		t.Fatal("out-of-range read did not error")
	}
}

func TestCrossSegmentWriteSplits(t *testing.T) {
	c := testCluster(t, Solar)
	vd := c.MustProvision(0, 64<<20, DefaultQoS())
	// Straddle the 2 MiB segment boundary.
	lba := uint64(2<<20) - 8192
	data := fill(16<<10, 77)
	var wres IOResult
	vd.Write(lba, data, func(res IOResult) { wres = res })
	c.Run()
	if wres.Err != nil {
		t.Fatal(wres.Err)
	}
	var rres IOResult
	vd.Read(lba, len(data), func(res IOResult) { rres = res })
	c.Run()
	if !bytes.Equal(rres.Data, data) {
		t.Fatal("cross-segment read-back mismatch")
	}
}

func TestStackLatencyOrdering(t *testing.T) {
	// The paper's headline shape: kernel ≫ luna > solar for 4 KiB writes.
	medians := map[StackKind]time.Duration{}
	for _, fn := range []StackKind{KernelTCP, Luna, Solar} {
		c := testCluster(t, fn)
		vd := c.MustProvision(0, 64<<20, DefaultQoS())
		n := 0
		var issue func()
		issue = func() {
			if n >= 200 {
				return
			}
			lba := uint64(n%1000) << 12
			n++
			vd.Write(lba, fill(4096, byte(n)), func(IOResult) {
				c.Eng.Schedule(20*time.Microsecond, issue)
			})
		}
		issue()
		c.Run()
		medians[fn] = c.Collector().E2E("write").Median()
	}
	t.Logf("write medians: kernel=%v luna=%v solar=%v",
		medians[KernelTCP], medians[Luna], medians[Solar])
	if !(medians[KernelTCP] > medians[Luna] && medians[Luna] > medians[Solar]) {
		t.Fatalf("latency ordering violated: %v", medians)
	}
	// Kernel should be several times Luna (paper: FN cut ~80%).
	if medians[KernelTCP] < 2*medians[Luna] {
		t.Fatalf("kernel (%v) should be ≫ luna (%v)", medians[KernelTCP], medians[Luna])
	}
}

func TestSolarReducesSAComponent(t *testing.T) {
	// §4.7: Solar reduces the median SA latency by ~95% vs Luna.
	sa := map[StackKind]time.Duration{}
	for _, fn := range []StackKind{Luna, Solar} {
		c := testCluster(t, fn)
		vd := c.MustProvision(0, 64<<20, DefaultQoS())
		for i := 0; i < 100; i++ {
			vd.Write(uint64(i)<<12, fill(4096, byte(i)), nil)
			c.RunFor(time.Millisecond)
		}
		c.Run()
		sa[fn] = c.Collector().Component("write", trace.SA).Median()
	}
	t.Logf("SA medians: luna=%v solar=%v", sa[Luna], sa[Solar])
	if sa[Solar] >= sa[Luna]/5 {
		t.Fatalf("solar SA %v not ≪ luna SA %v", sa[Solar], sa[Luna])
	}
}

func TestQoSThrottling(t *testing.T) {
	c := testCluster(t, Solar)
	vd := c.MustProvision(0, 64<<20, DefaultQoS())
	// A second disk with a tight service level.
	slow := c.MustProvision(1, 64<<20, QoS(1000, 10e6))
	_ = vd
	done := 0
	for i := 0; i < 100; i++ {
		slow.Write(uint64(i)<<12, fill(4096, 1), func(IOResult) { done++ })
	}
	c.Run()
	if done != 100 {
		t.Fatalf("done %d/100", done)
	}
	// 100 I/Os at 1000 IOPS with a 10ms burst window: ≥ ~80ms of pacing.
	if c.Now() < 80*time.Millisecond {
		t.Fatalf("QoS pacing absent: finished in %v", c.Now())
	}
}

func TestMultiTenantIsolation(t *testing.T) {
	// Two disks on different compute servers: a heavily-throttled tenant
	// must not stall the other.
	c := testCluster(t, Solar)
	fast := c.MustProvision(0, 64<<20, DefaultQoS())
	slow := c.MustProvision(1, 64<<20, QoS(500, 5e6))
	for i := 0; i < 50; i++ {
		slow.Write(uint64(i)<<12, fill(4096, 2), nil)
	}
	var fastLat time.Duration
	fast.Write(0, fill(4096, 3), func(res IOResult) { fastLat = res.Latency })
	c.Run()
	if fastLat > time.Millisecond {
		t.Fatalf("fast tenant saw %v behind throttled tenant", fastLat)
	}
}
