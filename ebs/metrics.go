package ebs

import (
	"fmt"
	"io"

	"lunasolar/internal/core"
	"lunasolar/internal/stats"
	"lunasolar/internal/tcpstack"
	"lunasolar/internal/trace"
)

// ExportMetrics folds the cluster's observability state into reg under
// prefix: the trace collector's per-component latency histograms
// ("<prefix>lat/<op>/<sa|fn|bn|ssd|e2e>"), the fabric's drop and per-switch
// telemetry ("<prefix>net/..."), per-compute stack counters and per-path
// INT summaries ("<prefix>compute<i>/..."), and chunk-server operation
// counters ("<prefix>chunk<i>/..."). All sections walk their sources in
// construction order, so the export is deterministic for a fixed seed.
func (c *Cluster) ExportMetrics(reg *stats.Registry, prefix string) {
	c.Collector().RegisterInto(reg, prefix+"lat/")
	c.Fabric.RegisterInto(reg, prefix+"net/")
	for i, cs := range c.computes {
		base := fmt.Sprintf("%scompute%d/", prefix, i)
		switch st := cs.Stack.(type) {
		case *core.Stack:
			st.RegisterInto(reg, base)
		case *tcpstack.Stack:
			reg.AddCounter(base+"retransmits", st.Retransmits)
			reg.AddCounter(base+"timeouts", st.Timeouts)
			reg.AddCounter(base+"ecn_marks", st.EcnMarks)
		}
	}
	for i, ss := range c.chunks {
		base := fmt.Sprintf("%schunk%d/", prefix, i)
		w, r, crcErrs, misses := ss.Chunk.Stats()
		reg.AddCounter(base+"writes", w)
		reg.AddCounter(base+"reads", r)
		reg.AddCounter(base+"crc_errors", crcErrs)
		reg.AddCounter(base+"misses", misses)
	}
}

// wireRecorders attaches per-node flight recorders when the config asks for
// them. Called at the end of New.
func (c *Cluster) wireRecorders() {
	depth := c.cfg.FlightRecorderDepth
	if depth <= 0 {
		return
	}
	for _, cs := range c.computes {
		if st, ok := cs.Stack.(*core.Stack); ok {
			st.SetRecorder(trace.NewRecorder(depth))
		}
	}
	for _, ss := range c.chunks {
		ss.Chunk.SetRecorder(trace.NewRecorder(depth))
	}
}

// DumpFlightRecorders writes every attached recorder's post-mortem listing
// to w, skipping empty ones. Used when a run trips the packet-leak gate or
// a CRC failure surfaces. Returns the number of events dumped.
func (c *Cluster) DumpFlightRecorders(w io.Writer) int {
	total := 0
	for i, cs := range c.computes {
		if st, ok := cs.Stack.(*core.Stack); ok {
			if rec := st.Recorder(); rec.Len() > 0 {
				rec.Dump(w, fmt.Sprintf("compute%d", i))
				total += rec.Len()
			}
		}
	}
	for i, ss := range c.chunks {
		if rec := ss.Chunk.Recorder(); rec.Len() > 0 {
			rec.Dump(w, fmt.Sprintf("chunk%d", i))
			total += rec.Len()
		}
	}
	if c.ctrlPlane != nil {
		if rec := c.ctrlPlane.rec; rec.Len() > 0 {
			rec.Dump(w, "ctrl")
			total += rec.Len()
		}
	}
	return total
}
