# Repo-wide checks. `make check` is the pre-commit gate: build, vet, the
# full test suite under the race detector (the parallel runner is the main
# customer), and a short benchmark smoke to catch perf-metric regressions.

GO ?= go

.PHONY: build vet test race bench bench-smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One quick experiment benchmark, the raw event-loop benchmark, and the
# 4 KiB write-path pair (zero-copy vs copy-path): enough to verify the
# events/sec, sim-µs/wall-ms, copies/op and allocs/op metrics still report.
bench-smoke:
	$(GO) test -run xxx -bench 'Fig6|SimulatorEventRate|WritePath4K' -benchtime 1x -benchmem .

# Full write-path comparison: measures the 4 KiB write path with refcounted
# slabs and with the -copy-path hatch, and writes BENCH_pr3.json (ns/op,
# allocs/op, copies/op, bytes-copied/op per mode). CI uploads the file.
bench:
	$(GO) run ./cmd/ebsbench -bench-out BENCH_pr3.json

check: build vet race bench-smoke
