# Repo-wide checks. `make check` is the pre-commit gate: build, vet, the
# lunavet analysis suite, the full test suite under the race detector (the
# parallel runner is the main customer), and a short benchmark smoke to
# catch perf-metric regressions.

GO ?= go

# Pinned external-tool versions. The tools are optional locally (the
# targets skip with an install hint when the binary is absent — the repo
# must build and check with nothing beyond the Go toolchain, so there is
# no tools.go/go.sum pin); CI installs exactly these versions so the
# enforced toolchain is reproducible.
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: build vet lint lint-report staticcheck govulncheck test race bench bench-smoke telemetry-diff coupled-diff cc-diff ff-diff ctrl-diff check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lunavet: the repo's own analyzers (determinism, maporder, slabown,
# hotalloc, partown, fluiddet, hatchgate — see internal/lint). Zero
# non-suppressed diagnostics is a hard gate; suppressions need a justified
# //lint:allow. Also runnable as `go vet -vettool=$$(go env GOPATH)/bin/lunavet
# ./...` after `go install ./cmd/lunavet`.
lint:
	$(GO) run ./cmd/lunavet ./...

# Machine-readable lint report: the JSON findings (CI's diff annotations
# read .diagnostics[].file/.line), the SARIF 2.1.0 log for code-scanning
# upload, and the //lint:allow inventory (file, keys, justification, usage
# count — a directive at 0 is drift).
lint-report:
	$(GO) run ./cmd/lunavet -json -sarif lunavet.sarif ./... > lunavet.json
	$(GO) run ./cmd/lunavet -suppressions ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not found; skipping. Install with:"; \
		echo "  $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... ; \
	else \
		echo "govulncheck not found; skipping. Install with:"; \
		echo "  $(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One quick experiment benchmark, the raw event-loop benchmark, the
# 4 KiB write-path pair (zero-copy vs copy-path), and the CDF lookup
# benchmark guarding the sort.Search fix: enough to verify the events/sec,
# sim-µs/wall-ms, copies/op and allocs/op metrics still report.
bench-smoke:
	$(GO) test -run xxx -bench 'Fig6|SimulatorEventRate|WritePath4K' -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench 'CDFAt' -benchtime 1x -benchmem ./internal/stats

# The telemetry hatch must not change any experiment output: a quick fig6
# run with telemetry enabled (-metrics-out flips the hatch) has to match the
# default run byte-for-byte once the wall-clock lines are stripped. The
# registry written along the way doubles as a schema smoke test.
telemetry-diff:
	$(GO) run ./cmd/ebsbench -exp fig6 -quick -workers 1 | grep -v 'perf:\|completed in' > /tmp/lunasolar-telemetry-off.txt
	$(GO) run ./cmd/ebsbench -exp fig6 -quick -workers 1 -metrics-out /tmp/lunasolar-METRICS.json | grep -v 'perf:\|completed in' > /tmp/lunasolar-telemetry-on.txt
	diff /tmp/lunasolar-telemetry-off.txt /tmp/lunasolar-telemetry-on.txt
	grep -q '"schema": "lunasolar.metrics/v1"' /tmp/lunasolar-METRICS.json

# The coupled runner must not change any experiment output: the partitioned
# experiments driven by four window workers have to match the serial
# (one-worker) run byte-for-byte once the wall-clock lines are stripped.
# This is the conservative-sync determinism gate.
coupled-diff:
	$(GO) run ./cmd/ebsbench -exp coupled,coupledfail -quick -coupled-workers 1 | grep -v 'perf:\|completed in' > /tmp/lunasolar-coupled-serial.txt
	$(GO) run ./cmd/ebsbench -exp coupled,coupledfail -quick -coupled-workers 4 | grep -v 'perf:\|completed in' > /tmp/lunasolar-coupled-parallel.txt
	diff /tmp/lunasolar-coupled-serial.txt /tmp/lunasolar-coupled-parallel.txt

# The pluggable congestion-control plane must not change any default
# output: every stack's default controller (DCTCP for kernel/Luna, HPCC
# for Solar, the static RC window for the RDMA FN plane) has to produce
# byte-identical experiment output whether -cc is left alone or passed
# explicitly, and the seed experiments must not shift at all. Only a
# non-default -cc (dcqcn, swift) may change RDMA results.
cc-diff:
	$(GO) run ./cmd/ebsbench -exp fig6,fig15,rdmacliff -quick -workers 1 | grep -v 'perf:\|completed in' > /tmp/lunasolar-cc-default.txt
	$(GO) run ./cmd/ebsbench -exp fig6,fig15,rdmacliff -quick -workers 1 -cc static | grep -v 'perf:\|completed in' > /tmp/lunasolar-cc-static.txt
	diff /tmp/lunasolar-cc-default.txt /tmp/lunasolar-cc-static.txt

# Hybrid fidelity must track packet fidelity on the diurnal campaign:
# -ff-bench-out runs both modes under one seed and enforces the
# differential gate internally (exact start/completion/drop counts, ≤1%
# completion-time quantiles and goodput). The quick run here is the CI
# tripwire; `make bench` runs the full-scale version whose report also
# enforces the ≥10x wall-clock speedup. On top of that, every experiment
# that ignores -fidelity must be byte-identical under it (the hatch is a
# no-op for packet-level clusters).
ff-diff:
	$(GO) run ./cmd/ebsbench -quick -ff-bench-out /tmp/lunasolar-BENCH_ff.json
	grep -q '"schema": "lunasolar.fluid/v1"' /tmp/lunasolar-BENCH_ff.json
	$(GO) run ./cmd/ebsbench -exp fig6,incast -quick -workers 1 | grep -v 'perf:\|completed in' > /tmp/lunasolar-fid-packet.txt
	$(GO) run ./cmd/ebsbench -exp fig6,incast -quick -workers 1 -fidelity hybrid | grep -v 'perf:\|completed in' > /tmp/lunasolar-fid-hybrid.txt
	diff /tmp/lunasolar-fid-packet.txt /tmp/lunasolar-fid-hybrid.txt

# The control plane is serial management logic riding on the shared
# worker pool: the provisioning storm, the planned drain and the
# noisy-neighbor matrix must produce byte-identical tables whether their
# cells run serially or on four workers. This is the control-plane
# worker-determinism gate; the quick report run also enforces the
# zero-failed-I/O drain gate and the 2x noisy-neighbor isolation gate.
ctrl-diff:
	$(GO) run ./cmd/ebsbench -exp provision-storm,drain,noisyneighbor -quick -workers 1 | grep -v 'perf:\|completed in' > /tmp/lunasolar-ctrl-serial.txt
	$(GO) run ./cmd/ebsbench -exp provision-storm,drain,noisyneighbor -quick -workers 4 | grep -v 'perf:\|completed in' > /tmp/lunasolar-ctrl-parallel.txt
	diff /tmp/lunasolar-ctrl-serial.txt /tmp/lunasolar-ctrl-parallel.txt
	$(GO) run ./cmd/ebsbench -quick -ctrl-bench-out /tmp/lunasolar-BENCH_ctrl.json
	grep -q '"schema": "lunasolar.ctrl/v1"' /tmp/lunasolar-BENCH_ctrl.json

# Full write-path comparison: measures the 4 KiB write path with refcounted
# slabs and with the -copy-path hatch, and writes BENCH_pr3.json (ns/op,
# allocs/op, copies/op, bytes-copied/op per mode). CI uploads the file.
# The coupled-scaling report (events/sec at 1/2/4/8 window workers, with a
# built-in byte-identity gate) lands in BENCH_pr6.json alongside it, and
# the congestion-control incast matrix (static/dcqcn/swift under one seed)
# in BENCH_pr7.json. The full-scale diurnal fidelity comparison (packet vs
# hybrid wall time, with the differential and ≥10x speedup gates built in)
# lands in BENCH_pr8.json, and the control-plane report (drain cutover
# latency and noisy-neighbor isolation ratio, with the zero-failed-I/O and
# 2x-isolation gates built in) in BENCH_pr10.json.
bench:
	$(GO) run ./cmd/ebsbench -bench-out BENCH_pr3.json
	$(GO) run ./cmd/ebsbench -quick -coupled-bench-out BENCH_pr6.json
	$(GO) run ./cmd/ebsbench -quick -cc-bench-out BENCH_pr7.json
	$(GO) run ./cmd/ebsbench -ff-bench-out BENCH_pr8.json
	$(GO) run ./cmd/ebsbench -ctrl-bench-out BENCH_pr10.json

check: build vet lint staticcheck govulncheck race bench-smoke telemetry-diff coupled-diff cc-diff ff-diff ctrl-diff
