# Repo-wide checks. `make check` is the pre-commit gate: build, vet, the
# full test suite under the race detector (the parallel runner is the main
# customer), and a short benchmark smoke to catch perf-metric regressions.

GO ?= go

.PHONY: build vet test race bench-smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One quick experiment benchmark plus the raw event-loop benchmark: enough
# to verify the events/sec and sim-µs/wall-ms metrics still report.
bench-smoke:
	$(GO) test -run xxx -bench 'Fig6|SimulatorEventRate' -benchtime 1x .

check: build vet race bench-smoke
