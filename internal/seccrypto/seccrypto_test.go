package seccrypto

import (
	"bytes"
	"math/rand"
	"testing"
)

func testCipher(t *testing.T) *BlockCipher {
	t.Helper()
	c, err := New(DeriveKey([]byte("provisioning-secret"), 42))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	c := testCipher(t)
	src := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(src)
	enc := make([]byte, 4096)
	c.EncryptBlock(enc, src, 7, 0x4000, 1)
	if bytes.Equal(enc, src) {
		t.Fatal("ciphertext equals plaintext")
	}
	dec := make([]byte, 4096)
	c.DecryptBlock(dec, enc, 7, 0x4000, 1)
	if !bytes.Equal(dec, src) {
		t.Fatal("round trip failed")
	}
}

func TestInPlace(t *testing.T) {
	c := testCipher(t)
	src := []byte("some block data to encrypt in place....")
	orig := append([]byte{}, src...)
	c.EncryptBlock(src, src, 1, 0, 0)
	c.DecryptBlock(src, src, 1, 0, 0)
	if !bytes.Equal(src, orig) {
		t.Fatal("in-place round trip failed")
	}
}

func TestBlocksIndependent(t *testing.T) {
	// The same plaintext at different addresses must yield different
	// ciphertexts — block independence is required by one-block-one-packet.
	c := testCipher(t)
	src := make([]byte, 4096)
	a, b, g := make([]byte, 4096), make([]byte, 4096), make([]byte, 4096)
	c.EncryptBlock(a, src, 1, 0x0000, 1)
	c.EncryptBlock(b, src, 1, 0x1000, 1)
	c.EncryptBlock(g, src, 1, 0x0000, 2) // new generation
	if bytes.Equal(a, b) {
		t.Fatal("different LBAs share keystream")
	}
	if bytes.Equal(a, g) {
		t.Fatal("different generations share keystream")
	}
}

func TestDeriveKeyDistinct(t *testing.T) {
	k1 := DeriveKey([]byte("s"), 1)
	k2 := DeriveKey([]byte("s"), 2)
	if bytes.Equal(k1, k2) {
		t.Fatal("distinct disks share keys")
	}
	if len(k1) != KeySize {
		t.Fatalf("key length %d", len(k1))
	}
}

func TestBadKeyRejected(t *testing.T) {
	if _, err := New([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	c := testCipher(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	c.EncryptBlock(make([]byte, 8), make([]byte, 16), 0, 0, 0)
}

func BenchmarkEncrypt4K(b *testing.B) {
	c, _ := New(DeriveKey([]byte("bench"), 1))
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.EncryptBlock(dst, src, 1, uint64(i)<<12, 1)
	}
}
