// Package seccrypto models the SEC engine of the ALI-DPU pipeline: optional
// per-virtual-disk encryption of block payloads (Fig. 12's "SEC" module).
// Blocks are encrypted with AES-256-CTR under a per-disk key, with a
// deterministic counter derived from (segment, LBA, generation) so that any
// block can be decrypted independently of any other — a requirement of the
// one-block-one-packet design, where blocks arrive in arbitrary order.
package seccrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// KeySize is the AES-256 key length.
const KeySize = 32

// BlockCipher encrypts and decrypts 4 KiB storage blocks for one virtual
// disk. It is stateless per block and safe for use from a single simulation
// goroutine.
type BlockCipher struct {
	block cipher.Block
}

// New creates a cipher from a raw 32-byte key.
func New(key []byte) (*BlockCipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("seccrypto: key must be %d bytes, got %d", KeySize, len(key))
	}
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &BlockCipher{block: b}, nil
}

// DeriveKey derives a per-disk key from a provisioning secret and the disk
// ID, as the management plane would.
func DeriveKey(secret []byte, vdisk uint32) []byte {
	h := sha256.New()
	h.Write(secret)
	var id [4]byte
	binary.BigEndian.PutUint32(id[:], vdisk)
	h.Write(id[:])
	return h.Sum(nil)
}

// iv builds the 16-byte CTR IV for a block address. Generation is included
// so rewrites of the same LBA never reuse a counter stream.
func iv(segment, lba uint64, gen uint32) [aes.BlockSize]byte {
	var v [aes.BlockSize]byte
	binary.BigEndian.PutUint64(v[0:], segment)
	binary.BigEndian.PutUint32(v[8:], uint32(lba>>12)) // block index
	binary.BigEndian.PutUint32(v[12:], gen)
	return v
}

// EncryptBlock encrypts src into dst (may alias) for the given block
// address. len(dst) must equal len(src).
func (c *BlockCipher) EncryptBlock(dst, src []byte, segment, lba uint64, gen uint32) {
	if len(dst) != len(src) {
		panic("seccrypto: dst/src length mismatch")
	}
	v := iv(segment, lba, gen)
	cipher.NewCTR(c.block, v[:]).XORKeyStream(dst, src)
}

// DecryptBlock decrypts src into dst; CTR mode makes it identical to
// encryption.
func (c *BlockCipher) DecryptBlock(dst, src []byte, segment, lba uint64, gen uint32) {
	c.EncryptBlock(dst, src, segment, lba, gen)
}
