package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 || h.Min() != 100*time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Fatalf("single-sample stats wrong: %s", h.Summary())
	}
}

func TestHistogramQuantilePrecision(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..1000 µs.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		err := float64(got-tc.want) / float64(tc.want)
		if err < -0.02 || err > 0.02 {
			t.Fatalf("q%.2f = %v, want %v ± 2%%", tc.q, got, tc.want)
		}
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Microsecond)
	h.Record(30 * time.Microsecond)
	if got := h.Mean(); got != 20*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(i+1) * time.Microsecond)
		b.Record(time.Duration(i+101) * time.Microsecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Microsecond || a.Max() != 200*time.Microsecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(time.Duration(-5)) // clamped to the 1ns floor
	h.Record(20 * time.Minute)  // beyond top octave, clamped
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(1) < 17*time.Minute {
		t.Fatalf("max quantile = %v", h.Quantile(1))
	}
}

// Property: quantile is monotonically non-decreasing in q and bounded by
// min/max.
func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(time.Duration(v))
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			if cur < h.Min() || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: relative bucket error stays under ~1.2% across magnitudes.
func TestHistogramRelativeError(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		v := time.Duration(1 + r.Int63n(int64(10*time.Second)))
		h := NewHistogram()
		h.Record(v)
		got := h.Quantile(0.5)
		relErr := float64(v-got) / float64(v)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.012 {
			t.Fatalf("value %v recovered as %v (err %.4f)", v, got, relErr)
		}
	}
}

func TestCDF(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.At(40); got != 0.40 {
		t.Fatalf("At(40) = %v", got)
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(1000); got != 1 {
		t.Fatalf("At(1000) = %v", got)
	}
	if got := c.Quantile(0.5); got != 51 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
}

func TestCDFInterleavedAddQuery(t *testing.T) {
	var c CDF
	c.Add(5)
	_ = c.At(5)
	c.Add(1) // must re-sort
	if got := c.At(1); got != 0.5 {
		t.Fatalf("At(1) = %v after re-add", got)
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	c.MarkWindow(10 * time.Second)
	c.Inc(500)
	if got := c.Rate(15 * time.Second); got != 100 {
		t.Fatalf("rate = %v, want 100/s", got)
	}
	if got := c.Rate(10 * time.Second); got != 0 {
		t.Fatalf("zero-width window rate = %v", got)
	}
}

// Regression: Rate must divide the events counted *inside* the window by
// the window duration. The old code divided the lifetime count by the
// window duration, so any Incs before MarkWindow inflated the rate.
func TestCounterRateExcludesPreWindowEvents(t *testing.T) {
	var c Counter
	c.Inc(100_000) // lifetime history before the window
	c.MarkWindow(10 * time.Second)
	c.Inc(500)
	if got := c.Rate(15 * time.Second); got != 100 {
		t.Fatalf("windowed rate = %v, want 100/s (pre-mark events leaked in)", got)
	}
	// Re-marking starts a fresh window from the new snapshot.
	c.MarkWindow(15 * time.Second)
	c.Inc(30)
	if got := c.Rate(18 * time.Second); got != 10 {
		t.Fatalf("re-marked rate = %v, want 10/s", got)
	}
	if c.Value() != 100_530 {
		t.Fatalf("lifetime value = %d", c.Value())
	}
}

// Regression: the histogram's clamp is single-sourced at the 1ns domain
// floor. The old code clamped negatives to 0 in Record but to 1 in
// bucketIndex, so Min() could report 0ns while every bucket said 1ns.
func TestHistogramFloorSingleSourced(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(-time.Second)
	if got := h.Min(); got != time.Nanosecond {
		t.Fatalf("Min = %v, want 1ns (the bucket floor)", got)
	}
	if got := h.Quantile(0); got != time.Nanosecond {
		t.Fatalf("Quantile(0) = %v, want 1ns", got)
	}
	if got := h.Quantile(1); got != time.Nanosecond {
		t.Fatalf("Quantile(1) = %v, want 1ns (max is also clamped)", got)
	}
	if got := h.Max(); got != time.Nanosecond {
		t.Fatalf("Max = %v, want 1ns", got)
	}
}

// CDF.At must agree with the naive definition P(X <= v) on duplicate-heavy
// sample sets (where the old linear scan was O(n) but still correct — this
// pins the binary-search rewrite to the same answers).
func TestCDFAtDuplicateHeavy(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	sizes := []float64{4096, 8192, 16384, 65536} // Fig. 5-style popular sizes
	var c CDF
	var raw []float64
	for i := 0; i < 5000; i++ {
		v := sizes[r.Intn(len(sizes))]
		c.Add(v)
		raw = append(raw, v)
	}
	naive := func(v float64) float64 {
		n := 0
		for _, s := range raw {
			if s <= v {
				n++
			}
		}
		return float64(n) / float64(len(raw))
	}
	for _, v := range []float64{0, 4095, 4096, 4097, 8192, 16384, 65536, 1e9} {
		if got, want := c.At(v), naive(v); got != want {
			t.Fatalf("At(%v) = %v, want %v", v, got, want)
		}
	}
}

// BenchmarkCDFAt gates the CDF.At complexity fix: with every sample equal,
// the old post-binary-search linear scan walked the whole run per query
// (O(n)); the sort.Search upper bound keeps each query O(log n). The
// benchmark is wired into `make bench-smoke` so a regression to linear
// behavior shows up as a ~1000x ns/op jump.
func BenchmarkCDFAt(b *testing.B) {
	var c CDF
	for i := 0; i < 1<<16; i++ {
		c.Add(4096) // worst case: one giant run of duplicates
	}
	c.At(0) // pre-sort outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.At(4096); got != 1 {
			b.Fatalf("At = %v", got)
		}
	}
}

// Property: Histogram.Quantile tracks the exact nearest-rank quantile of
// the raw samples within the ~1% log-bucket width, for random sample sets
// and a spread of quantiles.
func TestHistogramQuantileNearestRank(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	qs := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(400)
		samples := make([]int64, n)
		h := NewHistogram()
		// Mix magnitudes so buckets across many octaves are exercised.
		scale := int64(1) << uint(r.Intn(30))
		for i := range samples {
			v := 1 + r.Int63n(scale)
			samples[i] = v
			h.Record(time.Duration(v))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range qs {
			rank := int(q * float64(n)) // same index convention as Quantile
			if rank >= n {
				rank = n - 1
			}
			exact := samples[rank]
			got := int64(h.Quantile(q))
			relErr := float64(got-exact) / float64(exact)
			if relErr < 0 {
				relErr = -relErr
			}
			if relErr > 0.012 {
				t.Fatalf("trial %d n=%d q=%.2f: got %d, exact nearest-rank %d (err %.4f > bucket width)",
					trial, n, q, got, exact, relErr)
			}
		}
	}
}

// Merge must fold counts, sums and extremes for every combination of empty
// and populated operands.
func TestHistogramMergeEdgeCases(t *testing.T) {
	full := func() *Histogram {
		h := NewHistogram()
		h.Record(10 * time.Microsecond)
		h.Record(2 * time.Millisecond)
		return h
	}
	// empty.Merge(full): adopts o's extremes.
	a := NewHistogram()
	a.Merge(full())
	if a.Count() != 2 || a.Min() != 10*time.Microsecond || a.Max() != 2*time.Millisecond {
		t.Fatalf("empty.Merge(full): n=%d min=%v max=%v", a.Count(), a.Min(), a.Max())
	}
	// full.Merge(empty): unchanged (an empty histogram's MaxInt64 min must
	// not poison the target).
	b := full()
	b.Merge(NewHistogram())
	if b.Count() != 2 || b.Min() != 10*time.Microsecond || b.Max() != 2*time.Millisecond {
		t.Fatalf("full.Merge(empty): n=%d min=%v max=%v", b.Count(), b.Min(), b.Max())
	}
	if b.Mean() != full().Mean() {
		t.Fatalf("merge with empty changed mean: %v", b.Mean())
	}
	// Quantiles of a merged histogram cover both sources.
	c := full()
	d := NewHistogram()
	d.Record(50 * time.Millisecond)
	c.Merge(d)
	if got := c.Quantile(1); got < 49*time.Millisecond {
		t.Fatalf("merged max quantile = %v", got)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Hour)
	ts.Add(30*time.Minute, 5)
	ts.Add(45*time.Minute, 7)
	ts.Add(90*time.Minute, 3)
	if got := ts.Sum(0); got != 12 {
		t.Fatalf("bin0 sum = %v", got)
	}
	if got := ts.Avg(0); got != 6 {
		t.Fatalf("bin0 avg = %v", got)
	}
	if got := ts.Sum(1); got != 3 {
		t.Fatalf("bin1 sum = %v", got)
	}
	if ts.Len() != 2 {
		t.Fatalf("len = %d", ts.Len())
	}
	if got := ts.Sum(99); got != 0 {
		t.Fatalf("missing bin = %v", got)
	}
}

// Bin boundaries: a sample at exactly k*binWidth belongs to bin k (bins are
// half-open [k*w, (k+1)*w)), one tick before the boundary stays in bin k-1,
// and negative times clamp into bin 0.
func TestTimeSeriesBinBoundaries(t *testing.T) {
	w := time.Hour
	ts := NewTimeSeries(w)
	ts.Add(0, 1)                 // exact lower edge of bin 0
	ts.Add(w-time.Nanosecond, 2) // last tick of bin 0
	ts.Add(w, 4)                 // exact lower edge of bin 1
	ts.Add(2*w, 8)               // exact lower edge of bin 2
	ts.Add(-time.Minute, 16)     // negative clamps to bin 0
	if got := ts.Sum(0); got != 19 {
		t.Fatalf("bin0 sum = %v, want 1+2+16", got)
	}
	if got := ts.Sum(1); got != 4 {
		t.Fatalf("bin1 sum = %v", got)
	}
	if got := ts.Sum(2); got != 8 {
		t.Fatalf("bin2 sum = %v", got)
	}
	if ts.Len() != 3 {
		t.Fatalf("len = %d", ts.Len())
	}
	if got := ts.Avg(0); got != 19.0/3 {
		t.Fatalf("bin0 avg = %v", got)
	}
	if got := ts.Avg(7); got != 0 {
		t.Fatalf("untouched bin avg = %v", got)
	}
	if got := ts.BinWidth(); got != w {
		t.Fatalf("bin width = %v", got)
	}
}
