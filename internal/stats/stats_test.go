package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 || h.Min() != 100*time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Fatalf("single-sample stats wrong: %s", h.Summary())
	}
}

func TestHistogramQuantilePrecision(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..1000 µs.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		err := float64(got-tc.want) / float64(tc.want)
		if err < -0.02 || err > 0.02 {
			t.Fatalf("q%.2f = %v, want %v ± 2%%", tc.q, got, tc.want)
		}
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Microsecond)
	h.Record(30 * time.Microsecond)
	if got := h.Mean(); got != 20*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(i+1) * time.Microsecond)
		b.Record(time.Duration(i+101) * time.Microsecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Microsecond || a.Max() != 200*time.Microsecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(time.Duration(-5)) // clamped to 0→bucket 1ns
	h.Record(20 * time.Minute)  // beyond top octave, clamped
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(1) < 17*time.Minute {
		t.Fatalf("max quantile = %v", h.Quantile(1))
	}
}

// Property: quantile is monotonically non-decreasing in q and bounded by
// min/max.
func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(time.Duration(v))
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			if cur < h.Min() || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: relative bucket error stays under ~1.2% across magnitudes.
func TestHistogramRelativeError(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		v := time.Duration(1 + r.Int63n(int64(10*time.Second)))
		h := NewHistogram()
		h.Record(v)
		got := h.Quantile(0.5)
		relErr := float64(v-got) / float64(v)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.012 {
			t.Fatalf("value %v recovered as %v (err %.4f)", v, got, relErr)
		}
	}
}

func TestCDF(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.At(40); got != 0.40 {
		t.Fatalf("At(40) = %v", got)
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(1000); got != 1 {
		t.Fatalf("At(1000) = %v", got)
	}
	if got := c.Quantile(0.5); got != 51 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
}

func TestCDFInterleavedAddQuery(t *testing.T) {
	var c CDF
	c.Add(5)
	_ = c.At(5)
	c.Add(1) // must re-sort
	if got := c.At(1); got != 0.5 {
		t.Fatalf("At(1) = %v after re-add", got)
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	c.MarkWindow(10 * time.Second)
	c.Inc(500)
	if got := c.Rate(15 * time.Second); got != 100 {
		t.Fatalf("rate = %v, want 100/s", got)
	}
	if got := c.Rate(10 * time.Second); got != 0 {
		t.Fatalf("zero-width window rate = %v", got)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Hour)
	ts.Add(30*time.Minute, 5)
	ts.Add(45*time.Minute, 7)
	ts.Add(90*time.Minute, 3)
	if got := ts.Sum(0); got != 12 {
		t.Fatalf("bin0 sum = %v", got)
	}
	if got := ts.Avg(0); got != 6 {
		t.Fatalf("bin0 avg = %v", got)
	}
	if got := ts.Sum(1); got != 3 {
		t.Fatalf("bin1 sum = %v", got)
	}
	if ts.Len() != 2 {
		t.Fatalf("len = %d", ts.Len())
	}
	if got := ts.Sum(99); got != 0 {
		t.Fatalf("missing bin = %v", got)
	}
}
