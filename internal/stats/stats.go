// Package stats provides the measurement primitives shared by the
// experiment harness: HDR-style log-bucketed latency histograms with
// percentile queries, CDFs, counters, and fixed-interval time series.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

// Histogram is a log-bucketed histogram of time.Duration values offering
// ~1% relative precision across nanoseconds to minutes, with O(1) record.
// The zero value is not usable; call NewHistogram.
type Histogram struct {
	buckets []uint64
	count   uint64
	sum     float64
	min     int64
	max     int64
}

// bucketsPerOctave controls precision: 128 sub-buckets per power of two
// gives worst-case relative error of ~0.55%.
const bucketsPerOctave = 128

// numOctaves covers 1ns .. ~2^40ns (~18 minutes).
const numOctaves = 41

// floorSample is the histogram's domain floor in nanoseconds. The log
// buckets cannot represent values below 1ns, so every observation — in
// Record's clamp, in bucketIndex, and therefore in Min() — is clamped to
// this single floor. Zero and negative durations record as 1ns; callers
// that accumulate durations before recording (trace.Span.Add) clamp their
// own negative *increments* to zero, which is consistent: the floor applies
// to the observed total, not to each accumulation step.
const floorSample = 1

// clampSample applies the shared domain floor.
func clampSample(v int64) int64 {
	if v < floorSample {
		return floorSample
	}
	return v
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		buckets: make([]uint64, numOctaves*bucketsPerOctave),
		min:     math.MaxInt64,
	}
}

func bucketIndex(v int64) int {
	v = clampSample(v)
	exp := 63 - leadingZeros64(uint64(v))
	if exp >= numOctaves {
		exp = numOctaves - 1
	}
	var frac int64
	if exp > 0 {
		frac = ((v - (1 << uint(exp))) * bucketsPerOctave) >> uint(exp)
	}
	if frac >= bucketsPerOctave {
		frac = bucketsPerOctave - 1
	}
	return exp*bucketsPerOctave + int(frac)
}

func bucketLow(i int) int64 {
	exp := i / bucketsPerOctave
	frac := int64(i % bucketsPerOctave)
	base := int64(1) << uint(exp)
	return base + (base*frac)/bucketsPerOctave
}

func leadingZeros64(x uint64) int { return bits.LeadingZeros64(x) }

// Record adds one observation. Observations below the 1ns domain floor
// (zero or negative durations) are clamped to it, so Min(), the buckets and
// the quantiles all agree on what was recorded.
func (h *Histogram) Record(d time.Duration) {
	v := clampSample(int64(d))
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.count))
}

// Min returns the smallest observation after the domain-floor clamp —
// never below 1ns for a non-empty histogram (0 if empty).
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the q-quantile (q in [0,1]), e.g. 0.5 for the median,
// 0.95 and 0.99 for tails. Precision is the bucket width (~1%).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return time.Duration(lo)
		}
	}
	return time.Duration(h.max)
}

// Median is Quantile(0.5).
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// P95 is Quantile(0.95).
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Merge adds all observations from o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.count > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Summary renders "p50=… p95=… p99=… mean=… n=…" for logs.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("p50=%v p95=%v p99=%v mean=%v max=%v n=%d",
		h.Median().Round(100*time.Nanosecond),
		h.P95().Round(100*time.Nanosecond),
		h.P99().Round(100*time.Nanosecond),
		h.Mean().Round(100*time.Nanosecond),
		h.Max().Round(100*time.Nanosecond),
		h.count)
}

// CDF is an empirical cumulative distribution over float64 samples, used
// for the Fig. 5 size distributions.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends a sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns P(X <= v). The upper bound over equal samples is found by a
// second binary search, so duplicate-heavy distributions (the Fig. 5 size
// CDFs are dominated by a handful of popular sizes) stay O(log n) instead
// of degrading to a linear scan across the run of equal values.
func (c *CDF) At(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	i := sort.Search(len(c.samples), func(i int) bool { return c.samples[i] > v })
	return float64(i) / float64(len(c.samples))
}

// Quantile returns the q-quantile of the samples.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	i := int(q * float64(len(c.samples)))
	if i >= len(c.samples) {
		i = len(c.samples) - 1
	}
	return c.samples[i]
}

// Counter is a monotonically increasing event counter with a rate helper.
type Counter struct {
	n      uint64
	since  time.Duration
	marked uint64 // count snapshot at the window mark
}

// Inc adds delta.
func (c *Counter) Inc(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// MarkWindow records the window start for Rate, snapshotting the current
// count so Rate measures only events inside the window. Events counted
// before the mark do not leak into the rate.
func (c *Counter) MarkWindow(at time.Duration) {
	c.since = at
	c.marked = c.n
}

// Rate returns events/second between the window mark and now: the events
// counted since MarkWindow divided by the window duration (not the lifetime
// count, which would overstate the rate after any pre-window activity).
func (c *Counter) Rate(now time.Duration) float64 {
	dt := (now - c.since).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(c.n-c.marked) / dt
}

// TimeSeries accumulates values into fixed-width time bins — hourly traffic
// (Fig. 3), per-minute IOPS (Fig. 4), quarterly averages (Fig. 7).
type TimeSeries struct {
	binWidth time.Duration
	bins     []float64
	counts   []uint64
}

// NewTimeSeries creates a series with the given bin width.
func NewTimeSeries(binWidth time.Duration) *TimeSeries {
	return &TimeSeries{binWidth: binWidth}
}

func (ts *TimeSeries) grow(i int) {
	for len(ts.bins) <= i {
		ts.bins = append(ts.bins, 0)
		ts.counts = append(ts.counts, 0)
	}
}

// Add accumulates v into the bin containing time at.
func (ts *TimeSeries) Add(at time.Duration, v float64) {
	i := int(at / ts.binWidth)
	if i < 0 {
		i = 0
	}
	ts.grow(i)
	ts.bins[i] += v
	ts.counts[i]++
}

// Sum returns the accumulated value in bin i.
func (ts *TimeSeries) Sum(i int) float64 {
	if i < 0 || i >= len(ts.bins) {
		return 0
	}
	return ts.bins[i]
}

// Avg returns the mean of values recorded in bin i.
func (ts *TimeSeries) Avg(i int) float64 {
	if i < 0 || i >= len(ts.bins) || ts.counts[i] == 0 {
		return 0
	}
	return ts.bins[i] / float64(ts.counts[i])
}

// Len returns the number of bins touched.
func (ts *TimeSeries) Len() int { return len(ts.bins) }

// BinWidth returns the configured bin width.
func (ts *TimeSeries) BinWidth() time.Duration { return ts.binWidth }
