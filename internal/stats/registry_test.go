package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func buildRegistry(order []int) *Registry {
	r := NewRegistry()
	// Insert in caller-chosen order to prove output order is independent
	// of map insertion history.
	for _, i := range order {
		switch i {
		case 0:
			r.AddCounter("fig6/solar/retransmits", 3)
		case 1:
			r.SetGauge("fig6/solar/goodput_gbps", 87.5)
		case 2:
			h := NewHistogram()
			h.Record(100 * time.Microsecond)
			h.Record(300 * time.Microsecond)
			r.ObserveHistogram("fig6/solar/write/fn", h)
		case 3:
			ts := NewTimeSeries(time.Second)
			ts.Add(0, 10)
			ts.Add(1500*time.Millisecond, 20)
			r.ObserveSeries("fig6/solar/iops", ts)
		}
	}
	return r
}

func TestRegistryDeterministicExport(t *testing.T) {
	a := buildRegistry([]int{0, 1, 2, 3})
	b := buildRegistry([]int{3, 2, 1, 0})
	var ja, jb, oa, ob strings.Builder
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Fatalf("JSON export depends on insertion order:\n%s\nvs\n%s", ja.String(), jb.String())
	}
	if err := a.WriteOpenMetrics(&oa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteOpenMetrics(&ob); err != nil {
		t.Fatal(err)
	}
	if oa.String() != ob.String() {
		t.Fatal("OpenMetrics export depends on insertion order")
	}
}

func TestRegistryJSONSchema(t *testing.T) {
	r := buildRegistry([]int{0, 1, 2, 3})
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var ex Export
	if err := json.Unmarshal([]byte(sb.String()), &ex); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if ex.Schema != SchemaVersion {
		t.Fatalf("schema = %q, want %q", ex.Schema, SchemaVersion)
	}
	if len(ex.Metrics) != 4 {
		t.Fatalf("metrics = %d, want 4", len(ex.Metrics))
	}
	// Global name order.
	for i := 1; i < len(ex.Metrics); i++ {
		if ex.Metrics[i-1].Name > ex.Metrics[i].Name {
			t.Fatalf("metrics not name-sorted: %q > %q", ex.Metrics[i-1].Name, ex.Metrics[i].Name)
		}
	}
	byName := map[string]Metric{}
	for _, m := range ex.Metrics {
		byName[m.Name] = m
	}
	if m := byName["fig6/solar/retransmits"]; m.Type != "counter" || m.Value != 3 {
		t.Fatalf("counter metric = %+v", m)
	}
	if m := byName["fig6/solar/write/fn"]; m.Type != "histogram" || m.Count != 2 ||
		m.MinNs != int64(100*time.Microsecond) || m.MaxNs != int64(300*time.Microsecond) {
		t.Fatalf("histogram metric = %+v", m)
	}
	if m := byName["fig6/solar/iops"]; m.Type != "timeseries" ||
		m.BinWidthNs != int64(time.Second) || len(m.Bins) != 2 || m.Bins[0] != 10 || m.Bins[1] != 20 {
		t.Fatalf("timeseries metric = %+v", m)
	}
}

func TestRegistryMergeWithPrefix(t *testing.T) {
	shard0 := buildRegistry([]int{0, 1, 2, 3})
	shard1 := buildRegistry([]int{0, 2})
	merged := NewRegistry()
	merged.Merge(shard0, "")
	merged.Merge(shard1, "")
	if got := merged.Counter("fig6/solar/retransmits"); got != 6 {
		t.Fatalf("merged counter = %d, want 6", got)
	}
	if h := merged.Histogram("fig6/solar/write/fn"); h == nil || h.Count() != 4 {
		t.Fatalf("merged histogram count = %v", h)
	}
	// Prefixed merge keeps shards distinct.
	pref := NewRegistry()
	pref.Merge(shard0, "shard0/")
	pref.Merge(shard1, "shard1/")
	if got := pref.Counter("shard0/fig6/solar/retransmits"); got != 3 {
		t.Fatalf("prefixed counter = %d", got)
	}
	if pref.Counter("fig6/solar/retransmits") != 0 {
		t.Fatal("unprefixed name leaked into prefixed merge")
	}
	// Series merge sums bins.
	merged.Merge(buildRegistry([]int{3}), "")
	if ts := merged.Series("fig6/solar/iops"); ts == nil || ts.Sum(0) != 20 || ts.Sum(1) != 40 {
		t.Fatalf("merged series = %+v", ts)
	}
}

func TestRegistryOpenMetricsFormat(t *testing.T) {
	r := buildRegistry([]int{0, 1, 2, 3})
	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("OpenMetrics output must end with # EOF, got:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE fig6_solar_retransmits counter",
		"fig6_solar_retransmits_total 3",
		"# TYPE fig6_solar_write_fn summary",
		`fig6_solar_write_fn{quantile="0.5"}`,
		"fig6_solar_write_fn_count 2",
		"# TYPE fig6_solar_goodput_gbps gauge",
		"fig6_solar_goodput_gbps 87.5",
		`fig6_solar_iops{bin="1"} 20`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("OpenMetrics output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "/") {
		t.Fatal("unsanitized metric name in OpenMetrics output")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"fig6/solar.write-fn", "fig6_solar_write_fn"},
		{"9lives", "_9lives"},
		{"ok_name:sub", "ok_name:sub"},
	} {
		if got := sanitizeMetricName(tc.in); got != tc.want {
			t.Fatalf("sanitize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
