package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SchemaVersion identifies the structured-export format. Consumers (CI
// artifact diffing, dashboards) match on it before parsing; bump it on any
// field change.
const SchemaVersion = "lunasolar.metrics/v1"

// Registry names and aggregates metrics for structured export. Every
// counter, gauge, histogram and time series an experiment wants published
// is folded in under a slash-separated name ("fig6/solar/write/fn"); the
// registry then renders the whole set as schema-versioned JSON or
// OpenMetrics text with fully deterministic ordering (names sorted, field
// order fixed by struct layout) so exports diff cleanly across runs.
//
// Registries are single-goroutine objects, like the rest of this package:
// the share-nothing harness gives each shard its own registry and merges
// them in shard order.
type Registry struct {
	counters map[string]uint64
	gauges   map[string]float64
	hists    map[string]*Histogram
	series   map[string]*TimeSeries
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
		series:   make(map[string]*TimeSeries),
	}
}

// AddCounter accumulates delta into the named counter, creating it at zero.
func (r *Registry) AddCounter(name string, delta uint64) {
	r.counters[name] += delta
}

// SetGauge sets the named gauge to v (last write wins).
func (r *Registry) SetGauge(name string, v float64) {
	r.gauges[name] = v
}

// ObserveHistogram merges h into the named histogram, creating it if
// needed. The source histogram is not retained, so callers may keep
// mutating it.
func (r *Registry) ObserveHistogram(name string, h *Histogram) {
	dst, ok := r.hists[name]
	if !ok {
		dst = NewHistogram()
		r.hists[name] = dst
	}
	dst.Merge(h)
}

// ObserveSeries folds ts into the named time series bin-by-bin. All
// observations of one name must share a bin width; a mismatch is a
// programming error and panics.
func (r *Registry) ObserveSeries(name string, ts *TimeSeries) {
	dst, ok := r.series[name]
	if !ok {
		dst = NewTimeSeries(ts.binWidth)
		r.series[name] = dst
	}
	if dst.binWidth != ts.binWidth {
		panic(fmt.Sprintf("stats: series %q bin width %v != %v", name, dst.binWidth, ts.binWidth))
	}
	dst.grow(len(ts.bins) - 1)
	for i := range ts.bins {
		dst.bins[i] += ts.bins[i]
		dst.counts[i] += ts.counts[i]
	}
}

// Counter returns the named counter's value (0 if absent).
func (r *Registry) Counter(name string) uint64 { return r.counters[name] }

// Gauge returns the named gauge's value (0 if absent).
func (r *Registry) Gauge(name string) float64 { return r.gauges[name] }

// Histogram returns the named histogram, or nil.
func (r *Registry) Histogram(name string) *Histogram { return r.hists[name] }

// Series returns the named time series, or nil.
func (r *Registry) Series(name string) *TimeSeries { return r.series[name] }

// Len returns the total number of registered metrics.
func (r *Registry) Len() int {
	return len(r.counters) + len(r.gauges) + len(r.hists) + len(r.series)
}

// Merge folds every metric of src into r with prefix prepended to its name.
// The harness uses it to combine per-shard registries in shard order, which
// keeps the merged result deterministic for a fixed seed.
func (r *Registry) Merge(src *Registry, prefix string) {
	for _, name := range sortedKeysU64(src.counters) {
		r.AddCounter(prefix+name, src.counters[name])
	}
	for _, name := range sortedKeysF64(src.gauges) {
		r.SetGauge(prefix+name, src.gauges[name])
	}
	for _, name := range sortedKeysHist(src.hists) {
		r.ObserveHistogram(prefix+name, src.hists[name])
	}
	for _, name := range sortedKeysSeries(src.series) {
		r.ObserveSeries(prefix+name, src.series[name])
	}
}

func sortedKeysU64(m map[string]uint64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysF64(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysHist(m map[string]*Histogram) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysSeries(m map[string]*TimeSeries) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Metric is one exported entry. Exactly the fields for its Type are set:
// counters and gauges carry Value; histograms carry the count/percentile
// block (nanosecond units, matching time.Duration); time series carry the
// bin block. Field order in the JSON is the struct order below and never
// changes within a schema version.
type Metric struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"` // "counter" | "gauge" | "histogram" | "timeseries"
	Value float64 `json:"value,omitempty"`

	Count  uint64  `json:"count,omitempty"`
	SumNs  float64 `json:"sum_ns,omitempty"`
	MinNs  int64   `json:"min_ns,omitempty"`
	MaxNs  int64   `json:"max_ns,omitempty"`
	MeanNs int64   `json:"mean_ns,omitempty"`
	P50Ns  int64   `json:"p50_ns,omitempty"`
	P95Ns  int64   `json:"p95_ns,omitempty"`
	P99Ns  int64   `json:"p99_ns,omitempty"`

	BinWidthNs int64     `json:"bin_width_ns,omitempty"`
	Bins       []float64 `json:"bins,omitempty"`
	BinCounts  []uint64  `json:"bin_counts,omitempty"`
}

// Export is the top-level JSON document.
type Export struct {
	Schema  string   `json:"schema"`
	Metrics []Metric `json:"metrics"`
}

// Snapshot renders every metric, names sorted within each type and types
// interleaved into one global name order, so the export is a deterministic
// function of the registry's contents.
func (r *Registry) Snapshot() Export {
	ms := make([]Metric, 0, r.Len())
	for _, name := range sortedKeysU64(r.counters) {
		ms = append(ms, Metric{Name: name, Type: "counter", Value: float64(r.counters[name])})
	}
	for _, name := range sortedKeysF64(r.gauges) {
		ms = append(ms, Metric{Name: name, Type: "gauge", Value: r.gauges[name]})
	}
	for _, name := range sortedKeysHist(r.hists) {
		h := r.hists[name]
		ms = append(ms, Metric{
			Name:   name,
			Type:   "histogram",
			Count:  h.Count(),
			SumNs:  h.sum,
			MinNs:  int64(h.Min()),
			MaxNs:  int64(h.Max()),
			MeanNs: int64(h.Mean()),
			P50Ns:  int64(h.Median()),
			P95Ns:  int64(h.P95()),
			P99Ns:  int64(h.P99()),
		})
	}
	for _, name := range sortedKeysSeries(r.series) {
		ts := r.series[name]
		ms = append(ms, Metric{
			Name:       name,
			Type:       "timeseries",
			BinWidthNs: int64(ts.binWidth),
			Bins:       append([]float64(nil), ts.bins...),
			BinCounts:  append([]uint64(nil), ts.counts...),
		})
	}
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return Export{Schema: SchemaVersion, Metrics: ms}
}

// WriteJSON writes the indented JSON export.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteOpenMetrics writes the export in OpenMetrics text form: counters as
// _total samples, histograms as summaries with quantile labels (seconds, the
// OpenMetrics base unit for time), time series as gauge samples labelled by
// bin. Names are sanitized to the OpenMetrics charset and the output always
// terminates with "# EOF".
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	snap := r.Snapshot()
	for _, m := range snap.Metrics {
		name := sanitizeMetricName(m.Name)
		switch m.Type {
		case "counter":
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s_total %d\n", name, name, uint64(m.Value)); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, m.Value); err != nil {
				return err
			}
		case "histogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
				return err
			}
			for _, q := range []struct {
				label string
				ns    int64
			}{{"0.5", m.P50Ns}, {"0.95", m.P95Ns}, {"0.99", m.P99Ns}} {
				if _, err := fmt.Fprintf(w, "%s{quantile=\"%s\"} %g\n", name, q.label, seconds(q.ns)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, m.SumNs/1e9, name, m.Count); err != nil {
				return err
			}
		case "timeseries":
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
				return err
			}
			for i, v := range m.Bins {
				if _, err := fmt.Fprintf(w, "%s{bin=\"%d\"} %g\n", name, i, v); err != nil {
					return err
				}
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func seconds(ns int64) float64 { return time.Duration(ns).Seconds() }

// sanitizeMetricName maps a registry name onto the OpenMetrics charset
// [a-zA-Z_:][a-zA-Z0-9_:]*: slashes, dots and dashes become underscores and
// a leading digit gains an underscore prefix.
func sanitizeMetricName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			// digits are fine except in the leading position
		default:
			b[i] = '_'
		}
	}
	if len(b) > 0 && b[0] >= '0' && b[0] <= '9' {
		return "_" + string(b)
	}
	return string(b)
}
