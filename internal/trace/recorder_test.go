package trace

import (
	"strings"
	"testing"
	"time"

	"lunasolar/internal/stats"
)

func TestRecorderRingOrder(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(time.Duration(i)*time.Millisecond, EvRetransmit, uint64(i), 0)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	evs := r.Events()
	for i, e := range evs {
		if want := uint64(6 + i); e.Arg1 != want {
			t.Fatalf("event %d arg1 = %d, want %d (oldest-first after wrap)", i, e.Arg1, want)
		}
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(8)
	r.Record(time.Millisecond, EvCRCError, 1, 2)
	r.Record(2*time.Millisecond, EvFailover, 0, 1)
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != EvCRCError || evs[1].Kind != EvFailover {
		t.Fatalf("events = %+v", evs)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, EvRetransmit, 1, 2) // must not panic
	if r.Len() != 0 || r.Total() != 0 || r.Events() != nil {
		t.Fatal("nil recorder not empty")
	}
	if got := NewRecorder(0); got != nil {
		t.Fatal("depth 0 must return the nil recorder")
	}
}

func TestRecorderRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(64)
	// Warm past the append-growth phase.
	for i := 0; i < 64; i++ {
		r.Record(0, EvRetransmit, 0, 0)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.Record(time.Millisecond, EvFailover, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v/op, want 0", allocs)
	}
}

func TestRecorderDump(t *testing.T) {
	r := NewRecorder(4)
	r.Record(5*time.Millisecond, EvCRCError, 7, 42)
	var sb strings.Builder
	r.Dump(&sb, "bn0")
	out := sb.String()
	if !strings.Contains(out, "bn0") || !strings.Contains(out, EvCRCError) ||
		!strings.Contains(out, "arg1=7") {
		t.Fatalf("dump missing fields:\n%s", out)
	}
}

func TestCollectorRegisterInto(t *testing.T) {
	c := NewCollector()
	s := &Span{Op: "write", Size: 4096}
	s.Add(SA, 10*time.Microsecond)
	s.Add(FN, 20*time.Microsecond)
	s.Add(BN, 30*time.Microsecond)
	s.Add(SSD, 40*time.Microsecond)
	c.Record(s)
	reg := stats.NewRegistry()
	c.RegisterInto(reg, "fig6/solar/")
	for _, name := range []string{
		"fig6/solar/write/sa", "fig6/solar/write/fn",
		"fig6/solar/write/bn", "fig6/solar/write/ssd", "fig6/solar/write/e2e",
	} {
		if h := reg.Histogram(name); h == nil || h.Count() != 1 {
			t.Fatalf("missing or wrong histogram %q: %v", name, h)
		}
	}
	// No reads recorded → no read histograms exported.
	if reg.Histogram("fig6/solar/read/e2e") != nil {
		t.Fatal("empty read op should not export")
	}
	if got := int64(reg.Histogram("fig6/solar/write/e2e").Max()); got != int64(100*time.Microsecond) {
		t.Fatalf("e2e max = %d", got)
	}
}
