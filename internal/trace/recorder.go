package trace

import (
	"fmt"
	"io"
	"time"
)

// Event is one flight-recorder entry. Kind is always a package-level string
// constant (EvRetransmit etc.) so recording never allocates; Arg1/Arg2 carry
// kind-specific detail (an RPC ID, a path index, a byte count) without
// forcing a per-kind struct.
type Event struct {
	At   time.Duration // engine virtual time
	Kind string
	Arg1 uint64
	Arg2 uint64
}

// Event kinds recorded by the stacks and chunk servers. Interpretation of
// Arg1/Arg2 per kind:
//
//	EvRetransmit      Arg1=rpcID   Arg2=pktID
//	EvEarlyRetransmit Arg1=rpcID   Arg2=pktID
//	EvFailover        Arg1=oldPath Arg2=newPath
//	EvIntegrityHit    Arg1=rpcID   Arg2=0
//	EvCRCError        Arg1=diskID  Arg2=blockID
//	EvAdmissionWait   Arg1=rpcID   Arg2=waitNs
//	EvCutover         Arg1=segID   Arg2=newAddr
const (
	EvRetransmit      = "retransmit"
	EvEarlyRetransmit = "early-retransmit"
	EvFailover        = "failover"
	EvIntegrityHit    = "integrity-hit"
	EvCRCError        = "crc-error"
	EvAdmissionWait   = "admission-wait"
	EvCutover         = "cutover"
)

// Recorder is a fixed-depth ring buffer of the last N anomalous events — a
// flight recorder for post-mortem debugging of injected faults. It is
// nil-safe (a nil *Recorder drops every Record call) so instrumented code
// never branches on "is telemetry wired up" beyond the pointer itself, and
// Record never allocates, making it safe on warm paths. Dumped when a run
// trips the packet-leak gate or a CRC check fails.
type Recorder struct {
	buf   []Event
	next  int
	total uint64
}

// NewRecorder returns a recorder retaining the last depth events. A depth
// <= 0 returns nil, which is the valid "recording off" recorder.
func NewRecorder(depth int) *Recorder {
	if depth <= 0 {
		return nil
	}
	return &Recorder{buf: make([]Event, 0, depth)}
}

// Record appends one event, overwriting the oldest once the buffer is full.
// Safe to call on a nil receiver (drops the event).
func (r *Recorder) Record(at time.Duration, kind string, arg1, arg2 uint64) {
	if r == nil {
		return
	}
	e := Event{At: at, Kind: kind, Arg1: arg1, Arg2: arg2}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next++
	if r.next == cap(r.buf) {
		r.next = 0
	}
	r.total++
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns the lifetime number of recorded events, including those the
// ring has since overwritten.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Events returns the retained events oldest-first.
func (r *Recorder) Events() []Event {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Dump writes a human-readable post-mortem listing, oldest event first.
func (r *Recorder) Dump(w io.Writer, label string) {
	evs := r.Events()
	fmt.Fprintf(w, "flight recorder %s: %d retained of %d total\n", label, len(evs), r.Total())
	for _, e := range evs {
		fmt.Fprintf(w, "  %12v %-16s arg1=%d arg2=%d\n", e.At, e.Kind, e.Arg1, e.Arg2)
	}
}
