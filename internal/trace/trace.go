// Package trace implements the distributed tracing EBS uses to attribute
// end-to-end I/O latency to its four components (Fig. 6): SA (storage-agent
// processing on the compute side), FN (the frontend-network RPC, including
// stack processing), BN (backend replication RPC), and SSD (chunk-server
// processing plus media time).
package trace

import (
	"fmt"
	"time"

	"lunasolar/internal/stats"
)

// Component is one segment of the I/O data path.
type Component int

// The four latency components of Fig. 6.
const (
	SA Component = iota
	FN
	BN
	SSD
	numComponents
)

func (c Component) String() string {
	switch c {
	case SA:
		return "SA"
	case FN:
		return "FN"
	case BN:
		return "BN"
	case SSD:
		return "SSD"
	}
	return "?"
}

// Components lists all components in display order.
var Components = []Component{SA, FN, BN, SSD}

// Span accumulates the component times of a single I/O.
type Span struct {
	Op    string // "read" or "write"
	Size  int
	parts [numComponents]time.Duration
}

// Add attributes d to component c. Negative increments clamp to zero: a
// span accumulates deltas between event timestamps, and a negative delta
// means the caller's clocks crossed, not that the component gave time back.
// This is deliberately consistent with the stats.Histogram 1ns domain floor
// — the floor applies once to the *recorded total* in Collector.Record,
// while Add keeps each individual increment non-negative so one bad delta
// cannot cancel out real attributed time.
func (s *Span) Add(c Component, d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.parts[c] += d
}

// Get returns the accumulated time of component c.
func (s *Span) Get(c Component) time.Duration { return s.parts[c] }

// Total returns the sum over all components.
func (s *Span) Total() time.Duration {
	var t time.Duration
	for _, p := range s.parts {
		t += p
	}
	return t
}

// Collector aggregates spans into per-component and end-to-end histograms,
// separately for reads and writes. Each collector belongs to the
// partition whose agents record into it.
//
//lint:partowned
type Collector struct {
	read  [numComponents]*stats.Histogram
	write [numComponents]*stats.Histogram
	e2eR  *stats.Histogram
	e2eW  *stats.Histogram
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	c := &Collector{e2eR: stats.NewHistogram(), e2eW: stats.NewHistogram()}
	for i := range c.read {
		c.read[i] = stats.NewHistogram()
		c.write[i] = stats.NewHistogram()
	}
	return c
}

// Record folds a finished span into the collector.
func (c *Collector) Record(s *Span) {
	comps := &c.read
	e2e := c.e2eR
	if s.Op == "write" {
		comps = &c.write
		e2e = c.e2eW
	}
	for i := range s.parts {
		comps[i].Record(s.parts[i])
	}
	e2e.Record(s.Total())
}

// Merge folds another collector's histograms into c. Coupled clusters
// keep one collector per partition (collectors are engine-owned, like
// pools) and merge them in partition order when reporting, so aggregates
// are identical for every worker count.
func (c *Collector) Merge(o *Collector) {
	if o == nil {
		return
	}
	for i := range c.read {
		c.read[i].Merge(o.read[i])
		c.write[i].Merge(o.write[i])
	}
	c.e2eR.Merge(o.e2eR)
	c.e2eW.Merge(o.e2eW)
}

// Component returns the histogram for one component of one op ("read" or
// "write").
func (c *Collector) Component(op string, comp Component) *stats.Histogram {
	if op == "write" {
		return c.write[comp]
	}
	return c.read[comp]
}

// E2E returns the end-to-end histogram for op.
func (c *Collector) E2E(op string) *stats.Histogram {
	if op == "write" {
		return c.e2eW
	}
	return c.e2eR
}

// Breakdown returns each component's quantile-q latency for op, in
// component order, plus the end-to-end quantile. Note the component
// quantiles need not sum to the end-to-end quantile (quantiles do not add);
// the harness reports both, as the paper's Fig. 6 does.
func (c *Collector) Breakdown(op string, q float64) (parts []time.Duration, e2e time.Duration) {
	for _, comp := range Components {
		parts = append(parts, c.Component(op, comp).Quantile(q))
	}
	return parts, c.E2E(op).Quantile(q)
}

// RegisterInto exports every histogram into reg under
// "<prefix><op>/<component>" and "<prefix><op>/e2e" (components lowercased:
// sa, fn, bn, ssd). Ops and components are walked in fixed display order so
// the export is deterministic.
func (c *Collector) RegisterInto(reg *stats.Registry, prefix string) {
	for _, op := range []string{"read", "write"} {
		if c.E2E(op).Count() == 0 {
			continue
		}
		for _, comp := range Components {
			reg.ObserveHistogram(prefix+op+"/"+lowerComponent(comp), c.Component(op, comp))
		}
		reg.ObserveHistogram(prefix+op+"/e2e", c.E2E(op))
	}
}

func lowerComponent(c Component) string {
	switch c {
	case SA:
		return "sa"
	case FN:
		return "fn"
	case BN:
		return "bn"
	case SSD:
		return "ssd"
	}
	return "unknown"
}

// String renders a compact summary for logs.
func (c *Collector) String() string {
	out := ""
	for _, op := range []string{"read", "write"} {
		if c.E2E(op).Count() == 0 {
			continue
		}
		parts, e2e := c.Breakdown(op, 0.5)
		out += fmt.Sprintf("%s p50: e2e=%v", op, e2e.Round(100*time.Nanosecond))
		for i, comp := range Components {
			out += fmt.Sprintf(" %s=%v", comp, parts[i].Round(100*time.Nanosecond))
		}
		out += "\n"
	}
	return out
}
