package trace

import (
	"strings"
	"testing"
	"time"
)

func TestSpanAccumulates(t *testing.T) {
	s := &Span{Op: "write", Size: 4096}
	s.Add(SA, 10*time.Microsecond)
	s.Add(SA, 5*time.Microsecond)
	s.Add(FN, 20*time.Microsecond)
	s.Add(BN, -5*time.Microsecond) // negative clamped
	if got := s.Get(SA); got != 15*time.Microsecond {
		t.Fatalf("SA = %v", got)
	}
	if got := s.Get(BN); got != 0 {
		t.Fatalf("BN = %v", got)
	}
	if got := s.Total(); got != 35*time.Microsecond {
		t.Fatalf("total = %v", got)
	}
}

func TestCollectorSeparatesOps(t *testing.T) {
	c := NewCollector()
	w := &Span{Op: "write"}
	w.Add(FN, 10*time.Microsecond)
	r := &Span{Op: "read"}
	r.Add(FN, 30*time.Microsecond)
	c.Record(w)
	c.Record(r)
	if c.E2E("write").Count() != 1 || c.E2E("read").Count() != 1 {
		t.Fatal("ops not separated")
	}
	if c.Component("write", FN).Median() >= c.Component("read", FN).Median() {
		t.Fatal("write FN should be below read FN")
	}
}

func TestBreakdownOrder(t *testing.T) {
	c := NewCollector()
	s := &Span{Op: "read"}
	s.Add(SA, 1*time.Microsecond)
	s.Add(FN, 2*time.Microsecond)
	s.Add(BN, 3*time.Microsecond)
	s.Add(SSD, 4*time.Microsecond)
	c.Record(s)
	parts, e2e := c.Breakdown("read", 0.5)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	want := []time.Duration{1, 2, 3, 4} // SA FN BN SSD per Components order
	for i, comp := range Components {
		_ = comp
		if parts[i] != want[i]*time.Microsecond {
			t.Fatalf("part %d = %v", i, parts[i])
		}
	}
	if e2e != 10*time.Microsecond {
		t.Fatalf("e2e = %v", e2e)
	}
}

func TestComponentsString(t *testing.T) {
	names := map[Component]string{SA: "SA", FN: "FN", BN: "BN", SSD: "SSD"}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %s", c, c.String())
		}
	}
}

func TestCollectorString(t *testing.T) {
	c := NewCollector()
	s := &Span{Op: "write"}
	s.Add(FN, time.Microsecond)
	c.Record(s)
	out := c.String()
	if !strings.Contains(out, "write p50") {
		t.Fatalf("summary missing write: %q", out)
	}
	if strings.Contains(out, "read p50") {
		t.Fatal("summary includes empty read")
	}
}
