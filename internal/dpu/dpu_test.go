package dpu

import (
	"bytes"
	"testing"
	"time"

	"lunasolar/internal/crc"
	"lunasolar/internal/sim"
)

func newDPU(faults FaultRates) *DPU {
	cfg := DefaultConfig()
	cfg.Faults = faults
	return New(sim.NewEngine(7), cfg)
}

func TestPipelineLatencies(t *testing.T) {
	d := newDPU(FaultRates{})
	w := d.PipelineWriteLatency(false)
	we := d.PipelineWriteLatency(true)
	if we <= w {
		t.Fatal("encryption should add latency")
	}
	if w <= 0 || w > 10*time.Microsecond {
		t.Fatalf("write pipeline latency %v implausible", w)
	}
	r := d.PipelineReadLatency(false)
	if r <= 0 || r > 10*time.Microsecond {
		t.Fatalf("read pipeline latency %v implausible", r)
	}
}

func TestComputeCRCClean(t *testing.T) {
	d := newDPU(FaultRates{})
	data := []byte("a clean block of data for the crc engine")
	if got, want := d.ComputeCRC(data), crc.Raw(data); got != want {
		t.Fatalf("clean CRC %08x != %08x", got, want)
	}
	c, dd, tt := d.InjectedFaults()
	if c+dd+tt != 0 {
		t.Fatal("faults injected with zero rates")
	}
}

func TestComputeCRCBitFlip(t *testing.T) {
	d := newDPU(FaultRates{CRCBitFlip: 1.0})
	data := make([]byte, 4096)
	got := d.ComputeCRC(data)
	if got == crc.Raw(data) {
		t.Fatal("CRC flip rate 1.0 produced a correct CRC")
	}
	flips, _, _ := d.InjectedFaults()
	if flips != 1 {
		t.Fatalf("crcFlips = %d", flips)
	}
}

func TestComputeCRCDataCorruption(t *testing.T) {
	d := newDPU(FaultRates{DataBitFlip: 1.0})
	data := make([]byte, 4096)
	orig := append([]byte{}, data...)
	got := d.ComputeCRC(data)
	if bytes.Equal(data, orig) {
		t.Fatal("datapath corruption did not modify the buffer")
	}
	// The engine checksums the corrupted data — consistent with it, so the
	// per-block check alone cannot catch it...
	if got != crc.Raw(data) {
		t.Fatal("engine CRC should match the corrupted data")
	}
	// ...but the expected aggregate (from trusted metadata) does.
	var agg crc.Aggregator
	agg.AddExpected(crc.Raw(orig))
	agg.AddBlockCRC(got)
	if agg.Verify() {
		t.Fatal("software aggregation failed to catch datapath corruption")
	}
}

func TestLookupFault(t *testing.T) {
	d := newDPU(FaultRates{TableBitFlip: 1.0})
	if !d.LookupFault() {
		t.Fatal("rate-1.0 lookup fault not injected")
	}
	d2 := newDPU(FaultRates{})
	for i := 0; i < 100; i++ {
		if d2.LookupFault() {
			t.Fatal("fault with zero rate")
		}
	}
}

func TestFaultRatesStatistical(t *testing.T) {
	d := newDPU(FaultRates{CRCBitFlip: 0.1})
	data := make([]byte, 64)
	miss := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if d.ComputeCRC(data) != crc.Raw(data) {
			miss++
		}
	}
	frac := float64(miss) / n
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("flip fraction %v, want ~0.1", frac)
	}
}

func TestResourcesMatchTable3Shape(t *testing.T) {
	d := newDPU(FaultRates{})
	rows := d.Resources()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ModuleUsage{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Shape assertions straight from Table 3:
	// Addr dominates LUTs among tables; Block/QoS tiny logic, BRAM-heavy
	// Block; CRC ~0 BRAM; totals under ~12% LUT / ~25% BRAM.
	if byName["Addr"].LUTPercent() < 3 || byName["Addr"].LUTPercent() > 8 {
		t.Fatalf("Addr LUT%% = %.1f", byName["Addr"].LUTPercent())
	}
	if byName["Addr"].BRAMPercent() < 5 || byName["Addr"].BRAMPercent() > 12 {
		t.Fatalf("Addr BRAM%% = %.1f", byName["Addr"].BRAMPercent())
	}
	if byName["Block"].BRAMPercent() < 5 || byName["Block"].BRAMPercent() > 12 {
		t.Fatalf("Block BRAM%% = %.1f", byName["Block"].BRAMPercent())
	}
	if byName["Block"].LUTPercent() > 0.5 {
		t.Fatalf("Block LUT%% = %.2f, should be tiny", byName["Block"].LUTPercent())
	}
	if byName["QoS"].BRAMPercent() > 2 {
		t.Fatalf("QoS BRAM%% = %.2f", byName["QoS"].BRAMPercent())
	}
	if byName["CRC"].BRAMBlocks != 0 {
		t.Fatal("CRC should use no BRAM")
	}
	if byName["SEC"].LUTPercent() < 1.5 || byName["SEC"].LUTPercent() > 5 {
		t.Fatalf("SEC LUT%% = %.1f", byName["SEC"].LUTPercent())
	}
	tot := byName["Total"]
	if tot.LUTPercent() > 12 || tot.BRAMPercent() > 25 {
		t.Fatalf("total %.1f%% LUT / %.1f%% BRAM exceeds the paper's envelope",
			tot.LUTPercent(), tot.BRAMPercent())
	}
}

func TestBRAMScalesWithCapacity(t *testing.T) {
	eng := sim.NewEngine(1)
	small := DefaultConfig()
	small.MaxAddrEntries = 1024
	big := DefaultConfig()
	big.MaxAddrEntries = 65536
	rs := New(eng, small).Resources()
	rb := New(eng, big).Resources()
	if rb[0].BRAMBlocks <= rs[0].BRAMBlocks {
		t.Fatal("Addr BRAM did not scale with capacity")
	}
}
