// Package dpu models the ALI-DPU: the card's six-core infrastructure CPU,
// the bandwidth-limited internal PCIe channel that Luna and RDMA must cross
// twice per byte (Fig. 10), and the FPGA packet/storage pipeline Solar runs
// on — match-action table lookups (QoS, Block, Addr), the CRC and SEC
// engines, the DMA engine, and the packet generator — with per-stage
// latencies, genuine LUT/BRAM resource accounting (Table 3), and the bit-flip
// fault injection that motivates Solar's software CRC aggregation (Fig. 11).
package dpu

import (
	"math"
	"time"

	"lunasolar/internal/crc"
	"lunasolar/internal/seccrypto"
	"lunasolar/internal/sim"
)

// Config parameterizes one ALI-DPU.
type Config struct {
	CPUCores int     // infrastructure CPU ("only has six cores", §4.2)
	PCIeBps  float64 // internal PCIe effective bandwidth ("far less than 100Gbps")

	// FPGA stage latencies, per operation.
	TableLookup time.Duration // QoS/Block/Addr match-action stage
	CRCPer4K    time.Duration // CRC engine, per block
	SECPer4K    time.Duration // crypto engine, per block
	DMAPer4K    time.Duration // DMA guest memory <-> FPGA, per block
	PktGen      time.Duration // header assembly / parse

	// Capacity knobs drive the BRAM accounting of Table 3.
	MaxAddrEntries int // outstanding one-block packets (Addr table)
	MaxSegments    int // Block table entries
	MaxVDisks      int // QoS table entries

	Faults FaultRates
}

// FaultRates are per-operation probabilities of hardware error, the §4.4
// observation that "FPGA is error-prone due to random hardware failures".
type FaultRates struct {
	CRCBitFlip   float64 // CRC engine emits a flipped result
	DataBitFlip  float64 // datapath corrupts the payload before CRC
	TableBitFlip float64 // a lookup returns a corrupted entry
}

// DefaultConfig returns the ALI-DPU model used across experiments.
func DefaultConfig() Config {
	return Config{
		CPUCores:       6,
		PCIeBps:        70e9,
		TableLookup:    150 * time.Nanosecond,
		CRCPer4K:       300 * time.Nanosecond,
		SECPer4K:       500 * time.Nanosecond,
		DMAPer4K:       800 * time.Nanosecond,
		PktGen:         200 * time.Nanosecond,
		MaxAddrEntries: 20000, // outstanding one-block packets
		MaxSegments:    19456, // 19456 × 2 MiB ≈ 38 GiB of hot segments
		MaxVDisks:      512,   // virtual disks on one server
	}
}

// DPU is one card instance.
type DPU struct {
	Eng  *sim.Engine
	Cfg  Config
	CPU  *sim.Server
	PCIe *sim.Channel
	rand *sim.Rand

	// Fault accounting.
	crcFlips, dataFlips, tableFlips uint64
}

// New builds a DPU attached to the engine.
func New(eng *sim.Engine, cfg Config) *DPU {
	if cfg.CPUCores <= 0 {
		cfg.CPUCores = 6
	}
	return &DPU{
		Eng:  eng,
		Cfg:  cfg,
		CPU:  sim.NewServer(eng, "dpu-cpu", cfg.CPUCores),
		PCIe: sim.NewChannel(eng, "dpu-pcie", cfg.PCIeBps),
		rand: eng.Rand.Fork(),
	}
}

// InjectedFaults returns how many faults of each class the FPGA injected
// (CRC flips, datapath flips, table flips).
func (d *DPU) InjectedFaults() (crcFlips, dataFlips, tableFlips uint64) {
	return d.crcFlips, d.dataFlips, d.tableFlips
}

// PipelineWriteLatency returns the FPGA latency for one outbound data
// block: QoS + Block lookups, DMA fetch, CRC, optional SEC, and PktGen.
// The pipeline is fully pipelined — latency is charged per block, but
// throughput is bounded only by the NIC (line rate), which is the point of
// the offload.
func (d *DPU) PipelineWriteLatency(encrypted bool) time.Duration {
	c := d.Cfg
	lat := 2*c.TableLookup + c.DMAPer4K + c.CRCPer4K + c.PktGen
	if encrypted {
		lat += c.SECPer4K
	}
	return lat
}

// PipelineReadLatency returns the FPGA latency for one inbound data block:
// parse, Addr lookup, CRC check, optional SEC, DMA to guest memory.
func (d *DPU) PipelineReadLatency(encrypted bool) time.Duration {
	c := d.Cfg
	lat := c.PktGen + c.TableLookup + c.CRCPer4K + c.DMAPer4K
	if encrypted {
		lat += c.SECPer4K
	}
	return lat
}

// ComputeCRC runs the FPGA CRC engine over a block, applying fault
// injection: with the configured probabilities the engine's output is
// flipped, or the datapath corrupts the data itself (in which case the
// caller's buffer is modified — the corruption will reach storage unless
// software catches it).
func (d *DPU) ComputeCRC(data []byte) uint32 {
	sum, _ := d.ComputeCRCShared(data, 0, false, corruptInPlace)
	return sum
}

// corruptInPlace is ComputeCRC's scratch policy: the caller's buffer is
// private, so the datapath fault may land directly in it.
func corruptInPlace(b []byte) []byte { return b }

// ComputeCRCShared is the CRC engine for callers whose buffer aliases
// trusted memory (the zero-copy data path) or who already know the block's
// raw CRC (one-touch metadata computed at SA ingress).
//
// A datapath-corruption fault is materialised into scratch(data) — a
// private copy the caller provides — instead of being flipped in place;
// the corrupted copy is returned (nil when the block came through clean).
// With haveCached set, cached must be the raw CRC-32C of data and the
// fault-free path reports it without re-walking the bytes.
//
// The fault lottery and flip positions draw from exactly the same random
// sequence as ComputeCRC, so a given seed corrupts the same blocks the
// same way regardless of which entry point — or which data-path mode —
// the caller uses.
func (d *DPU) ComputeCRCShared(data []byte, cached uint32, haveCached bool, scratch func([]byte) []byte) (uint32, []byte) {
	if d.Cfg.Faults.DataBitFlip > 0 && d.rand.Bernoulli(d.Cfg.Faults.DataBitFlip) {
		d.dataFlips++
		buf := scratch(data)
		i := d.rand.Intn(len(buf))
		buf[i] ^= 1 << uint(d.rand.Intn(8))
		// The engine checksums the already-corrupted data: CRC matches the
		// corrupt payload, so only an end-to-end expected value catches it.
		if len(buf) > 0 && len(data) > 0 && &buf[0] == &data[0] {
			return crc.Raw(buf), nil // flipped in place: nothing materialised
		}
		return crc.Raw(buf), buf
	}
	sum := cached
	if !haveCached {
		sum = crc.Raw(data)
	}
	if d.Cfg.Faults.CRCBitFlip > 0 && d.rand.Bernoulli(d.Cfg.Faults.CRCBitFlip) {
		d.crcFlips++
		sum ^= 1 << uint(d.rand.Intn(32))
	}
	return sum, nil
}

// LookupFault reports whether this table lookup hit a corrupted entry.
func (d *DPU) LookupFault() bool {
	if d.Cfg.Faults.TableBitFlip > 0 && d.rand.Bernoulli(d.Cfg.Faults.TableBitFlip) {
		d.tableFlips++
		return true
	}
	return false
}

// Encrypt runs the SEC engine (functionally exact AES-CTR).
func (d *DPU) Encrypt(c *seccrypto.BlockCipher, dst, src []byte, segment, lba uint64, gen uint32) {
	c.EncryptBlock(dst, src, segment, lba, gen)
}

// --- Table 3: resource accounting ------------------------------------------

// FPGA device totals. The model is a VU9P-class part: ~1.18 M LUTs and 2160
// BRAM36 blocks. Only a fraction is available to EBS (the FPGA also hosts
// the virtual switch, §4.4); percentages are reported against the full
// device, as the paper does.
const (
	DeviceLUTs       = 1_182_000
	DeviceBRAMBlocks = 2160
	bramBlockBits    = 36 * 1024
)

// ModuleUsage is one row of Table 3.
type ModuleUsage struct {
	Name       string
	LUTs       int
	BRAMBlocks int
}

// LUTPercent returns LUT usage as a percentage of the device.
func (m ModuleUsage) LUTPercent() float64 {
	return 100 * float64(m.LUTs) / DeviceLUTs
}

// BRAMPercent returns BRAM usage as a percentage of the device.
func (m ModuleUsage) BRAMPercent() float64 {
	return 100 * float64(m.BRAMBlocks) / DeviceBRAMBlocks
}

// bramFor returns the BRAM36 blocks needed to hold entries of entryBits
// each, with a ×2 overprovision factor for the hash-table organisation
// hardware match-action tables use.
func bramFor(entries, entryBits int) int {
	bits := float64(entries) * float64(entryBits) * 2
	return int(math.Ceil(bits / bramBlockBits))
}

// Resources derives the per-module FPGA consumption from the configured
// capacities — the regeneration of Table 3.
//
// Entry layouts:
//
//	Addr:  rpcID(64) + pktID(16) + guest address(64) + len(16) + valid(1) ≈ 161 b
//	Block: segmentID(64) + server addr(32) + physical offset(48) + gen(32) ≈ 176 b
//	QoS:   two token buckets (rate, burst, level, ts) ≈ 4×48 b = 192 b... per
//	       disk with both IOPS and bandwidth buckets → 2×(32+32+48+48) = 320 b
//	       (dominated below by the small disk count).
func (d *DPU) Resources() []ModuleUsage {
	c := d.Cfg
	mods := []ModuleUsage{
		// Logic sizes are fixed properties of each engine's implementation;
		// BRAM scales with the configured capacities.
		{Name: "Addr", LUTs: 60_000, BRAMBlocks: bramFor(c.MaxAddrEntries, 161)},
		{Name: "Block", LUTs: 2_400, BRAMBlocks: bramFor(c.MaxSegments, 176)},
		{Name: "QoS", LUTs: 1_200, BRAMBlocks: bramFor(c.MaxVDisks, 320)},
		{Name: "SEC", LUTs: 33_000, BRAMBlocks: 20}, // AES round pipeline + S-boxes
		{Name: "CRC", LUTs: 3_500, BRAMBlocks: 0},   // pure logic
	}
	var total ModuleUsage
	total.Name = "Total"
	for _, m := range mods {
		total.LUTs += m.LUTs
		total.BRAMBlocks += m.BRAMBlocks
	}
	return append(mods, total)
}
