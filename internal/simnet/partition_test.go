package simnet

import (
	"testing"
	"time"

	"lunasolar/internal/sim"
)

// partTestConfig is a two-DC fabric with every tier populated, so cut
// accounting covers host, ToR, spine, core and DCR links.
func partTestConfig() Config {
	cfg := DefaultConfig()
	cfg.DCs = 2
	cfg.DCRouters = 2
	cfg.PodsPerDC = 2
	cfg.RacksPerPod = 3
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 2
	cfg.CoresPerDC = 2
	return cfg
}

func buildParts(t *testing.T, cfg Config, parts int) *Fabric {
	t.Helper()
	engs := make([]*sim.Engine, parts)
	for i := range engs {
		engs[i] = sim.NewEngine(int64(i + 1))
	}
	return NewPartitioned(engs, cfg, PlanPartitions(cfg, parts))
}

// TestPartitionAssignmentTotal checks that the built fabric places every
// host and every switch in exactly one partition, that the placement
// matches the plan, and that a rack (hosts + ToR pair) never splits.
func TestPartitionAssignmentTotal(t *testing.T) {
	cfg := partTestConfig()
	for _, parts := range []int{1, 2, 3, 4, 7} {
		plan := PlanPartitions(cfg, parts)
		f := buildParts(t, cfg, parts)
		for dc := 0; dc < cfg.DCs; dc++ {
			for pod := 0; pod < cfg.PodsPerDC; pod++ {
				for rack := 0; rack < cfg.RacksPerPod; rack++ {
					want := plan.RackPart(dc, pod, rack)
					if want < 0 || want >= parts {
						t.Fatalf("parts=%d: rack (%d,%d,%d) assigned to partition %d", parts, dc, pod, rack, want)
					}
					for ti := 0; ti < 2; ti++ {
						if got := f.ToR(dc, pod, rack, ti).PartIndex(); got != want {
							t.Fatalf("parts=%d: ToR (%d,%d,%d,%d) in partition %d, plan says %d",
								parts, dc, pod, rack, ti, got, want)
						}
					}
					for hi := 0; hi < cfg.HostsPerRack; hi++ {
						if got := f.Host(dc, pod, rack, hi).PartIndex(); got != want {
							t.Fatalf("parts=%d: host (%d,%d,%d,%d) in partition %d, its rack is in %d",
								parts, dc, pod, rack, hi, got, want)
						}
					}
				}
				for sp := 0; sp < cfg.SpinesPerPod; sp++ {
					if got, want := f.Spine(dc, pod, sp).PartIndex(), plan.SpinePart(dc, pod, sp); got != want {
						t.Fatalf("parts=%d: spine (%d,%d,%d) in partition %d, plan says %d", parts, dc, pod, sp, got, want)
					}
				}
			}
			for ci := 0; ci < cfg.CoresPerDC; ci++ {
				if got, want := f.Core(dc, ci).PartIndex(), plan.CorePart(dc, ci); got != want {
					t.Fatalf("parts=%d: core (%d,%d) in partition %d, plan says %d", parts, dc, ci, got, want)
				}
			}
		}
		for d := 0; d < cfg.DCRouters; d++ {
			if got, want := f.DCR(d).PartIndex(), plan.DCRPart(d); got != want {
				t.Fatalf("parts=%d: DCR %d in partition %d, plan says %d", parts, d, got, want)
			}
		}
	}
}

// TestPartitionCutPorts checks that a port is marked cut exactly when its
// two endpoints live in different partitions, that both ends of every cut
// link appear in CutPorts, that host links are never cut, and that the
// plan's link-level cut count agrees with the built fabric.
func TestPartitionCutPorts(t *testing.T) {
	cfg := partTestConfig()
	for _, parts := range []int{1, 2, 3, 5} {
		plan := PlanPartitions(cfg, parts)
		f := buildParts(t, cfg, parts)

		cutSet := make(map[*Port]bool)
		for _, p := range f.CutPorts() {
			cutSet[p] = true
		}
		checked := 0
		walkPorts(f, func(p *Port) {
			checked++
			wantCut := p.part != p.peer.part
			if p.cut != wantCut {
				t.Fatalf("parts=%d: port %s→%s cut=%v, endpoints in partitions %d/%d",
					parts, p.owner.nodeName(), p.peer.owner.nodeName(), p.cut, p.part.idx, p.peer.part.idx)
			}
			if cutSet[p] != wantCut {
				t.Fatalf("parts=%d: port %s→%s in CutPorts=%v, want %v",
					parts, p.owner.nodeName(), p.peer.owner.nodeName(), cutSet[p], wantCut)
			}
			if _, isHost := p.owner.(*Host); isHost && p.cut {
				t.Fatalf("parts=%d: host link %s→%s is cut; racks must not split",
					parts, p.owner.nodeName(), p.peer.owner.nodeName())
			}
		})
		if checked == 0 {
			t.Fatal("walked no ports")
		}
		if got, want := len(f.CutPorts()), 2*plan.CutLinks(); got != want {
			t.Fatalf("parts=%d: fabric has %d cut ports, plan counts %d cut links (want %d ports)",
				parts, got, plan.CutLinks(), want)
		}
		if parts == 1 {
			if n := len(f.CutPorts()); n != 0 {
				t.Fatalf("single partition has %d cut ports", n)
			}
		}
	}
}

// TestPartitionLookahead checks the three lookahead computations against
// each other and against a brute-force minimum over the built cut ports:
// the plan (config-only), the fabric (built ports), and brute force must
// agree, and with a distinct inter-DC delay the minimum must be the
// smaller intra-DC propagation delay whenever any intra-DC link is cut.
func TestPartitionLookahead(t *testing.T) {
	cfg := partTestConfig()
	cfg.PropDelay = 700 * time.Nanosecond
	cfg.InterDCDelay = 9 * time.Microsecond
	for _, parts := range []int{1, 2, 4, 6} {
		plan := PlanPartitions(cfg, parts)
		f := buildParts(t, cfg, parts)
		var brute time.Duration
		for _, p := range f.CutPorts() {
			if brute == 0 || p.propDelay < brute {
				brute = p.propDelay
			}
		}
		if got := f.Lookahead(); got != brute {
			t.Fatalf("parts=%d: fabric lookahead %v, brute force over cut ports %v", parts, got, brute)
		}
		if got := plan.Lookahead(); got != brute {
			t.Fatalf("parts=%d: plan lookahead %v, brute force over cut ports %v", parts, got, brute)
		}
		if parts == 1 && brute != 0 {
			t.Fatalf("single partition computed nonzero lookahead %v", brute)
		}
		if parts > 1 && brute != cfg.PropDelay {
			t.Fatalf("parts=%d: lookahead %v, want the intra-DC propagation delay %v", parts, brute, cfg.PropDelay)
		}
	}
}

// TestPartitionDegenerateOverSplit plans more partitions than the fabric
// has racks: every node must still land in a valid partition, and the
// fabric must build and run (some engines simply own nothing).
func TestPartitionDegenerateOverSplit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 1
	cfg.PodsPerDC = 1
	parts := 11 // more than racks + spines + cores
	f := buildParts(t, cfg, parts)
	if got := f.Parts(); got != parts {
		t.Fatalf("built %d partitions, want %d", got, parts)
	}
	populated := make(map[int]bool)
	walkPorts(f, func(p *Port) { populated[p.part.idx] = true })
	for idx := range populated {
		if idx < 0 || idx >= parts {
			t.Fatalf("port owned by out-of-range partition %d", idx)
		}
	}
	if la := f.Lookahead(); la <= 0 {
		t.Fatalf("over-split fabric has cut links but lookahead %v", la)
	}
	// All engines, including empty ones, must drive cleanly.
	for i := 0; i < parts; i++ {
		f.PartEngine(i).RunFor(time.Millisecond)
	}
}

// walkPorts visits every port of every node in the fabric.
func walkPorts(f *Fabric, fn func(p *Port)) {
	for _, h := range f.Hosts() {
		for _, p := range h.Ports() {
			fn(p)
		}
	}
	walkSwitch := func(s *Switch) {
		for _, p := range s.Ports() {
			fn(p)
		}
	}
	cfg := f.Config()
	for dc := 0; dc < cfg.DCs; dc++ {
		for pod := 0; pod < cfg.PodsPerDC; pod++ {
			for rack := 0; rack < cfg.RacksPerPod; rack++ {
				walkSwitch(f.ToR(dc, pod, rack, 0))
				walkSwitch(f.ToR(dc, pod, rack, 1))
			}
			for sp := 0; sp < cfg.SpinesPerPod; sp++ {
				walkSwitch(f.Spine(dc, pod, sp))
			}
		}
		for ci := 0; ci < cfg.CoresPerDC; ci++ {
			walkSwitch(f.Core(dc, ci))
		}
	}
	for d := 0; d < cfg.DCRouters; d++ {
		walkSwitch(f.DCR(d))
	}
}
