// Package simnet is the discrete-event datacenter fabric that carries EBS
// frontend-network traffic: hosts with dual-homed NICs, store-and-forward
// switches with shallow per-port output buffers, ECN marking, in-band
// telemetry (INT) stamping, a four-tier Clos/region topology (ToR pair →
// pod spine → DC core → region DC-router), consistent-hash ECMP, and the
// failure modes the paper evaluates (fail-stop, reboot, random drop, and
// silent blackholes).
//
// Packet payloads from the RPC header onward are real bytes produced by the
// wire package; the IP/UDP envelope is carried as struct fields (plus a
// byte-count overhead) so switches do not reparse headers at every hop.
package simnet

import (
	"lunasolar/internal/sim"
	"lunasolar/internal/wire"
)

// EthOverhead is the per-frame link-layer cost counted against link
// bandwidth: Ethernet header+FCS (18) plus preamble and inter-frame gap
// (20).
const EthOverhead = 38

// Packet is one frame in flight. The 5-tuple lives in struct fields (the
// envelope); Payload holds the real bytes from the RPC header onward.
type Packet struct {
	Src, Dst uint32 // host addresses (see Addr)
	Proto    uint8  // wire.ProtoTCP or wire.ProtoUDP
	SrcPort  uint16 // Solar's path ID rides here
	DstPort  uint16
	ECN      uint8 // wire ECN codepoint; switches may set ECNCE
	TTL      uint8

	Payload  []byte // RPC header onward
	Frag     []byte // zero-copy payload fragment carried after Payload
	Overhead int    // envelope bytes: Eth + IP + transport header

	INT *wire.INTStack // non-nil when the sender requested telemetry

	SentAt sim.Time // stamped by the sender for RTT accounting

	// Pool bookkeeping; zero for packets built with struct literals.
	pool        *PacketPool
	ownsPayload bool  // Payload came from the pool and returns with the packet
	frag        *Slab // reference held for Frag's lifetime
	free        bool
	intStore    wire.INTStack // backing storage for INT when pooled
}

// WireSize returns the frame's size on the wire in bytes. A zero-copy
// fragment counts exactly like inlined payload bytes, so frame sizes (and
// therefore serialization times, buffer occupancy and ECN marks) are
// identical in both data-path modes.
func (p *Packet) WireSize() int { return p.Overhead + len(p.Payload) + len(p.Frag) }

// AttachFrag attaches a zero-copy payload fragment — a subrange of slab s —
// to the frame, taking a slab reference for the packet's lifetime
// (released by Packet.Release). Only pooled packets may carry fragments.
func (p *Packet) AttachFrag(s *Slab, b []byte) {
	if p.pool == nil {
		panic("simnet: AttachFrag on a non-pooled packet")
	}
	p.Frag = b
	p.frag = s.Retain()
}

// FragSlab returns the slab backing the packet's fragment (nil when the
// frame carries no fragment). Receivers that keep the payload beyond the
// packet's life Retain it.
func (p *Packet) FragSlab() *Slab { return p.frag }

// ResetINT attaches the packet's embedded telemetry stack (emptied), so
// senders that request INT do not allocate a stack per packet.
func (p *Packet) ResetINT() {
	p.intStore.Hops = p.intStore.Hops[:0]
	p.INT = &p.intStore
}

// Release returns the packet — and its payload buffer, when pool-owned —
// to the packet pool. It is a no-op for packets not built from a pool, so
// every consumer can release unconditionally. Double release of a pooled
// packet is a bug and panics.
func (p *Packet) Release() {
	pp := p.pool
	if pp == nil {
		return
	}
	if p.free {
		panic("simnet: packet double-released")
	}
	if p.ownsPayload && p.Payload != nil {
		pp.PutBuf(p.Payload)
	}
	p.frag.Release()
	hops := p.intStore.Hops
	*p = Packet{pool: pp, free: true}
	p.intStore.Hops = hops[:0]
	pp.put(p)
}

// DefaultOverheadUDP is the envelope size for UDP-borne packets.
const DefaultOverheadUDP = EthOverhead + wire.IPv4Size + wire.UDPSize

// DefaultOverheadTCP is the envelope size for TCP-borne packets.
const DefaultOverheadTCP = EthOverhead + wire.IPv4Size + wire.TCPSegSize

// FlowHash computes the consistent ECMP hash of the packet's 5-tuple mixed
// with a per-switch salt (FNV-1a). The same flow always hashes identically
// at a given switch, so a flow's path is stable until its source port — the
// path ID — changes.
func FlowHash(p *Packet, salt uint32) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= prime32
			v >>= 8
		}
	}
	mix(p.Src)
	mix(p.Dst)
	mix(uint32(p.SrcPort)<<16 | uint32(p.DstPort))
	mix(uint32(p.Proto))
	mix(salt)
	return h
}

// Addr packs (dc, pod, rack, host) into a 32-bit host address. Components
// are 1-based so no valid address is zero.
func Addr(dc, pod, rack, host int) uint32 {
	return uint32(dc+1)<<24 | uint32(pod+1)<<16 | uint32(rack+1)<<8 | uint32(host+1)
}

// AddrDC extracts the datacenter component of an address.
func AddrDC(a uint32) int { return int(a>>24) - 1 }

// AddrPod extracts the pod component.
func AddrPod(a uint32) int { return int(a>>16&0xff) - 1 }

// AddrRack extracts the rack component.
func AddrRack(a uint32) int { return int(a>>8&0xff) - 1 }

// AddrHost extracts the host component.
func AddrHost(a uint32) int { return int(a&0xff) - 1 }

// Prefix keys for the routing tables.
func dcKey(a uint32) uint32   { return a & 0xff000000 }
func podKey(a uint32) uint32  { return a & 0xffff0000 }
func rackKey(a uint32) uint32 { return a & 0xffffff00 }
