package simnet

import (
	"testing"

	"lunasolar/internal/sim"
	"lunasolar/internal/wire"
)

func TestMuxRoutesByProtocol(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.RacksPerPod = 1
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 1
	cfg.CoresPerDC = 1
	f := New(eng, cfg)
	src, dst := f.Host(0, 0, 0, 0), f.Host(0, 0, 0, 1)

	mux := NewMux(dst)
	var tcp, udp, other int
	mux.Handle(wire.ProtoTCP, func(*Packet) { tcp++ })
	mux.Handle(wire.ProtoUDP, func(*Packet) { udp++ })

	send := func(proto uint8) {
		src.Send(&Packet{Dst: dst.Addr(), Proto: proto, SrcPort: 1, DstPort: 2,
			Payload: make([]byte, 64), Overhead: DefaultOverheadUDP})
	}
	send(wire.ProtoTCP)
	send(wire.ProtoUDP)
	send(wire.ProtoUDP)
	send(99) // unregistered: silently ignored
	eng.Run()
	if tcp != 1 || udp != 2 || other != 0 {
		t.Fatalf("tcp=%d udp=%d other=%d", tcp, udp, other)
	}
}

func TestMuxReplaceHandler(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.RacksPerPod = 1
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 1
	cfg.CoresPerDC = 1
	f := New(eng, cfg)
	src, dst := f.Host(0, 0, 0, 0), f.Host(0, 0, 0, 1)
	mux := NewMux(dst)
	a, b := 0, 0
	mux.Handle(wire.ProtoUDP, func(*Packet) { a++ })
	mux.Handle(wire.ProtoUDP, func(*Packet) { b++ }) // replaces
	src.Send(&Packet{Dst: dst.Addr(), Proto: wire.ProtoUDP,
		Payload: make([]byte, 8), Overhead: DefaultOverheadUDP})
	eng.Run()
	if a != 0 || b != 1 {
		t.Fatalf("a=%d b=%d", a, b)
	}
}
