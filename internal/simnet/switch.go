package simnet

import (
	"time"

	"lunasolar/internal/sim"
)

// Tier identifies a switch's position in the fabric.
type Tier int

// Fabric tiers, bottom up.
const (
	TierToR Tier = iota
	TierSpine
	TierCore
	TierDCR
)

func (t Tier) String() string {
	switch t {
	case TierToR:
		return "tor"
	case TierSpine:
		return "spine"
	case TierCore:
		return "core"
	case TierDCR:
		return "dcr"
	}
	return "?"
}

// ecmpGroup is a set of candidate egress ports for a destination prefix.
type ecmpGroup struct {
	ports []*Port
}

// Switch is a store-and-forward fabric switch with prefix routing and
// consistent-hash ECMP. Failure modes:
//
//   - Hang (Fail): the switch silently stops forwarding while its links stay
//     electrically up. Routing neighbours exclude it after DetectDelay;
//     hosts (which have no routing protocol) never do.
//   - Port failure (FailPort): link-down signal, excluded immediately by
//     both ends.
//   - DropRate: uniform random loss on transiting packets.
//   - Blackhole: a hash-selected fraction of flows is silently dropped —
//     invisible to any fabric-level detection, escapable only by endpoint
//     path change.
type Switch struct {
	fab  *Fabric
	part *fabricPart
	name string
	tier Tier
	salt uint32

	latency time.Duration
	ports   []*Port

	hostRoutes map[uint32]*ecmpGroup // /32, ToR only
	rackRoutes map[uint32]*ecmpGroup // dc|pod|rack
	podRoutes  map[uint32]*ecmpGroup // dc|pod
	dcRoutes   map[uint32]*ecmpGroup // dc, DCR only
	defaultUp  *ecmpGroup            // toward the higher tier

	alive  bool
	downAt sim.Time

	dropRate      float64
	blackholeFrac float64
	blackholeSalt uint32

	// Drop-reason keys are precomputed so the forwarding path never
	// concatenates strings, even when dropping (hotalloc-enforced).
	dropHang, dropRand, dropBH, dropNoRoute string

	rx, forwarded, dropped uint64
}

func newSwitch(f *Fabric, part *fabricPart, name string, tier Tier, latency time.Duration, salt uint32) *Switch {
	return &Switch{
		fab:         f,
		part:        part,
		name:        name,
		tier:        tier,
		salt:        salt,
		latency:     latency,
		hostRoutes:  map[uint32]*ecmpGroup{},
		rackRoutes:  map[uint32]*ecmpGroup{},
		podRoutes:   map[uint32]*ecmpGroup{},
		dcRoutes:    map[uint32]*ecmpGroup{},
		alive:       true,
		dropHang:    "hang:" + name,
		dropRand:    "rand:" + name,
		dropBH:      "blackhole:" + name,
		dropNoRoute: "noroute:" + name,
	}
}

// Name returns the switch's diagnostic name.
func (s *Switch) Name() string { return s.name }

func (s *Switch) nodeName() string { return s.name }

// Tier returns the switch's fabric tier.
func (s *Switch) Tier() Tier { return s.tier }

// Alive reports whether the switch is forwarding.
func (s *Switch) Alive() bool { return s.alive }

// Engine returns the engine owning the switch's partition. Failure
// injection against a partitioned fabric must schedule on it.
func (s *Switch) Engine() *sim.Engine { return s.part.eng }

// PartIndex returns the index of the partition owning the switch.
func (s *Switch) PartIndex() int { return s.part.idx }

func (s *Switch) partRef() *fabricPart { return s.part }

// Fail hangs the switch: it stops forwarding but its links stay up.
// Hanging is a fluid fidelity trigger: paths through this switch are now
// lossy, so analytic flows must demote.
func (s *Switch) Fail() {
	if s.alive {
		s.alive = false
		s.downAt = s.part.eng.Now()
		s.part.noteFluid(TriggerFailover)
	}
}

// Repair brings a failed switch back. The capacity change is itself a
// fluid fidelity trigger (and re-arms the hold-off), so flows observe the
// restored topology at packet fidelity first.
func (s *Switch) Repair() {
	//lint:allow floateq — edge-detect against the exact zero these fields are assigned; never derived from arithmetic
	if !s.alive || s.dropRate != 0 || s.blackholeFrac != 0 {
		s.part.noteFluid(TriggerFailover)
	}
	s.alive = true
	s.dropRate = 0
	s.blackholeFrac = 0
}

// SetDropRate makes the switch drop transiting packets with probability p.
func (s *Switch) SetDropRate(p float64) {
	//lint:allow floateq — edge-detect against the exact zero dropRate is assigned; never derived from arithmetic
	if p > 0 && s.dropRate == 0 {
		s.part.noteFluid(TriggerLoss)
	}
	s.dropRate = p
}

// SetBlackhole silently drops the given fraction of flows (selected by
// hash), modelling a corrupted forwarding entry or failing linecard.
func (s *Switch) SetBlackhole(frac float64, salt uint32) {
	//lint:allow floateq — edge-detect against the exact zero blackholeFrac is assigned; never derived from arithmetic
	if frac > 0 && s.blackholeFrac == 0 {
		s.part.noteFluid(TriggerLoss)
	}
	s.blackholeFrac = frac
	s.blackholeSalt = salt
}

// Ports exposes the switch's ports.
func (s *Switch) Ports() []*Port { return s.ports }

// Forwarded returns packets successfully enqueued toward a next hop.
func (s *Switch) Forwarded() uint64 { return s.forwarded }

// Dropped returns packets dropped at this switch (all causes).
func (s *Switch) Dropped() uint64 { return s.dropped }

// usable reports whether an ECMP member port should be considered: the
// link must be up, and a hung peer switch is excluded only once the
// detection delay has elapsed since it failed. Cut ports judge the peer
// by its published barrier snapshot — which is also how a real routing
// process sees a remote neighbour: through announcements that take wire
// time to arrive.
func (s *Switch) usable(p *Port) bool {
	if !p.up || p.peer == nil || !p.peerUp() {
		return false
	}
	if p.cut {
		if p.pubPeerIsSwitch && !p.pubPeerAlive {
			if s.part.eng.Now() >= p.pubPeerDownAt.Add(s.fab.cfg.DetectDelay) {
				return false
			}
		}
		return true
	}
	if peer, ok := p.peer.owner.(*Switch); ok && !peer.alive {
		if s.part.eng.Now() >= peer.downAt.Add(s.fab.cfg.DetectDelay) {
			return false
		}
	}
	return true
}

// pick selects a member of g for pkt by consistent hash over the usable
// ports. Returns nil if no port is usable. Count-then-index keeps this
// per-packet path allocation-free.
func (s *Switch) pick(g *ecmpGroup, pkt *Packet) *Port {
	if g == nil || len(g.ports) == 0 {
		return nil
	}
	usable := 0
	for _, p := range g.ports {
		if s.usable(p) {
			usable++
		}
	}
	if usable == 0 {
		return nil
	}
	k := int(FlowHash(pkt, s.salt) % uint32(usable))
	for _, p := range g.ports {
		if s.usable(p) {
			if k == 0 {
				return p
			}
			k--
		}
	}
	return nil
}

// route resolves the egress ECMP group for dst via longest-prefix order:
// host (/32), rack, pod, dc, then the default up-group.
func (s *Switch) route(dst uint32) *ecmpGroup {
	if g, ok := s.hostRoutes[dst]; ok {
		return g
	}
	if g, ok := s.rackRoutes[rackKey(dst)]; ok {
		return g
	}
	if g, ok := s.podRoutes[podKey(dst)]; ok {
		return g
	}
	if g, ok := s.dcRoutes[dcKey(dst)]; ok {
		return g
	}
	return s.defaultUp
}

// Receive forwards a packet after the switch pipeline latency. The switch
// owns the packet while it transits, so every drop path releases it back
// to the pool.
//
//lint:hotpath
func (s *Switch) Receive(pkt *Packet, _ *Port) {
	s.rx++
	if !s.alive {
		s.dropped++
		s.part.countDrop(s.dropHang)
		pkt.Release()
		return
	}
	if s.dropRate > 0 && s.part.rand.Bernoulli(s.dropRate) {
		s.dropped++
		s.part.countDrop(s.dropRand)
		pkt.Release()
		return
	}
	if s.blackholeFrac > 0 {
		h := FlowHash(pkt, s.blackholeSalt)
		if float64(h%10000) < s.blackholeFrac*10000 {
			s.dropped++
			s.part.countDrop(s.dropBH)
			pkt.Release()
			return
		}
	}
	if pkt.TTL == 0 {
		s.dropped++
		s.part.countDrop("ttl")
		pkt.Release()
		return
	}
	pkt.TTL--
	g := s.route(pkt.Dst)
	egress := s.pick(g, pkt)
	if egress == nil {
		s.dropped++
		s.part.countDrop(s.dropNoRoute)
		pkt.Release()
		return
	}
	s.forwarded++
	x := s.part.getFwd()
	x.sw, x.egress, x.pkt = s, egress, pkt
	s.part.eng.ScheduleArg(s.latency, switchForward, x)
}

// switchForward completes a transit after the pipeline latency.
//
//lint:hotpath
func switchForward(a any) {
	x := a.(*swFwd)
	s, egress, pkt := x.sw, x.egress, x.pkt
	s.part.putFwd(x)
	if !s.alive { // failed while the packet was in the pipeline
		s.part.countDrop(s.dropHang)
		pkt.Release()
		return
	}
	if !egress.Send(pkt) {
		pkt.Release()
	}
}

func addPort(g *ecmpGroup, p *Port) *ecmpGroup {
	if g == nil {
		g = &ecmpGroup{}
	}
	g.ports = append(g.ports, p)
	return g
}
