package simnet

import (
	"encoding/binary"
	"math"
	"time"

	"lunasolar/internal/sim"
)

// BulkService models open-loop paced host-to-host bulk transfers — the
// steady-state background traffic of a diurnal campaign — and is the
// customer of the fluid fast-forward mode (flow.go). A transfer of B
// bytes is n = ceil(B/chunk) packets sent on the exact grid t0 + k·iv,
// where iv is the wire size serialized at the pace rate; there is no
// acking or retransmission, and the receiver records a completion when
// the final packet (the fin) arrives. With the fabric in hybrid fidelity
// an eligible transfer never materializes packets at all: the flow table
// fast-forwards it on the same grid and delivers the completion
// analytically, bit-equal to packet mode on an uncongested path.
//
// The service claims every host's Handler, so it is for raw-fabric
// scenarios (no protocol stacks attached), like the diurnal campaign.
type BulkService struct {
	fab    *Fabric
	nextID uint64
	compl  [][]BulkCompletion // per destination partition, arrival order
}

// BulkProto is the IP protocol number bulk frames carry (distinct from
// TCP, UDP and the RDMA BTH proto so ECMP hashes them as their own
// flows).
const BulkProto = 251

// bulkDstPort is the well-known receiver port of every bulk transfer.
const bulkDstPort = 7

// bulkHdrSize is the bulk header carried as the packet payload: flow ID
// (u64), packet index (u32), packet count (u32), t0 (i64), chunk bytes
// (u32). The modeled chunk payload itself is never materialized; it rides
// in Packet.Overhead so wire sizes (and serialization, buffering, ECN)
// are exact without touching bytes.
const bulkHdrSize = 8 + 4 + 4 + 8 + 4

func bulkSrcPort(id uint64) uint16 { return uint16(1024 + id%60000) }

// BulkCompletion is one finished transfer as seen by its receiver.
type BulkCompletion struct {
	ID    uint64
	Lat   time.Duration // fin arrival minus t0
	Bytes int64         // modeled payload bytes
	Fluid bool          // completed analytically (no packets materialized)
}

// NewBulkService attaches a bulk sender/receiver to every host of fab.
func NewBulkService(fab *Fabric) *BulkService {
	b := &BulkService{fab: fab, compl: make([][]BulkCompletion, fab.Parts())}
	for _, h := range fab.hostList {
		h := h
		h.Handler = func(pkt *Packet) { b.recv(h, pkt) }
	}
	return b
}

// Transfer schedules a bulk transfer of the given size from src to dst,
// paced at paceBps on the wire, starting at absolute virtual time at. The
// byte count is modeled in whole chunks (the last packet is padded), each
// carried as one packet of chunk payload bytes plus headers. Returns the
// transfer's flow ID; its completion appears in Completions.
func (b *BulkService) Transfer(src, dst *Host, bytes int64, chunk int, paceBps float64, at sim.Time) uint64 {
	if chunk <= 0 || bytes <= 0 || paceBps <= 0 {
		panic("simnet: bulk transfer needs positive bytes, chunk and pace")
	}
	id := b.nextID
	b.nextID++
	n := int((bytes + int64(chunk) - 1) / int64(chunk))
	wire := DefaultOverheadUDP + chunk + bulkHdrSize
	f := &fluidFlow{
		id:    id,
		src:   src,
		dst:   dst,
		svc:   b,
		chunk: chunk,
		n:     n,
		wire:  wire,
		pace:  paceBps,
		iv:    time.Duration(float64(wire*8) / paceBps * float64(time.Second)),
	}
	src.part.eng.AtArg(at, bulkStart, f)
	return id
}

// bulkStart fires at the transfer's t0 on the source partition's engine:
// promote to a fluid flow when possible, otherwise pace packets for real.
// On coupled fabrics the flow is parked on the owning partition and the
// decision is deferred to the next barrier (BarrierAdvance), since the
// shared flow table must not be touched mid-window.
func bulkStart(a any) {
	f := a.(*fluidFlow)
	f.t0 = f.src.part.eng.Now()
	tab := f.svc.fab.fluid
	switch {
	case tab == nil:
		f.next = 0
		bulkSend(f)
	case f.svc.fab.Parts() == 1:
		if !tab.Admit(f) {
			f.next = 0
			bulkSend(f)
		}
	default:
		f.src.part.fluidPending = append(f.src.part.fluidPending, f)
	}
}

// resume restarts packet pacing at grid index k — the demotion path's
// byte-conservation point: packets [0, k) stay analytically delivered,
// packet k is sent at its original grid time (immediately, when the grid
// time already passed).
func (b *BulkService) resume(f *fluidFlow, k int, now sim.Time) {
	f.next = k
	at := f.t0 + sim.Time(time.Duration(k)*f.iv)
	if at < now {
		at = now
	}
	f.src.part.eng.AtArg(at, bulkSend, f)
}

// bulkSend transmits the flow's next packet and chains the following one
// on the pacing grid.
func bulkSend(a any) {
	f := a.(*fluidFlow)
	eng := f.src.part.eng
	pool := &f.src.part.pool
	pkt := pool.Get(bulkHdrSize)
	p := pkt.Payload
	binary.BigEndian.PutUint64(p[0:], f.id)
	binary.BigEndian.PutUint32(p[8:], uint32(f.next))
	binary.BigEndian.PutUint32(p[12:], uint32(f.n))
	binary.BigEndian.PutUint64(p[16:], uint64(f.t0))
	binary.BigEndian.PutUint32(p[24:], uint32(f.chunk))
	pkt.Dst = f.dst.addr
	pkt.Proto = BulkProto
	pkt.SrcPort = bulkSrcPort(f.id)
	pkt.DstPort = bulkDstPort
	pkt.Overhead = DefaultOverheadUDP + f.chunk
	pkt.SentAt = eng.Now()
	if !f.src.Send(pkt) {
		pkt.Release()
	}
	f.next++
	if f.next < f.n {
		at := f.t0 + sim.Time(time.Duration(f.next)*f.iv)
		if now := eng.Now(); at < now {
			at = now
		}
		eng.AtArg(at, bulkSend, f)
	}
}

// recv terminates bulk frames at the receiving host, recording a
// completion when the fin (last index) arrives. Lost fins mean the
// transfer never completes — deterministic, and identical in both
// fidelity modes since fluid flows only run while nothing can drop.
func (b *BulkService) recv(h *Host, pkt *Packet) {
	defer pkt.Release()
	p := pkt.Payload
	if pkt.Proto != BulkProto || len(p) < bulkHdrSize {
		return
	}
	idx := binary.BigEndian.Uint32(p[8:])
	n := binary.BigEndian.Uint32(p[12:])
	if idx != n-1 {
		return
	}
	id := binary.BigEndian.Uint64(p[0:])
	t0 := sim.Time(binary.BigEndian.Uint64(p[16:]))
	chunk := binary.BigEndian.Uint32(p[24:])
	b.compl[h.part.idx] = append(b.compl[h.part.idx], BulkCompletion{
		ID:    id,
		Lat:   h.part.eng.Now().Sub(t0),
		Bytes: int64(n) * int64(chunk),
	})
}

// fluidDone is a fluid flow's analytic completion event, running on the
// destination partition's engine. The recorded latency is the analytic
// fin arrival (exact even when the event itself was clamped forward).
func fluidDone(a any) {
	f := a.(*fluidFlow)
	b := f.svc
	b.compl[f.dst.part.idx] = append(b.compl[f.dst.part.idx], BulkCompletion{
		ID:    f.id,
		Lat:   f.finArrival().Sub(f.t0),
		Bytes: int64(f.n) * int64(f.chunk),
		Fluid: true,
	})
	if f.tracked {
		b.fab.fluid.remove(f)
	}
}

// Completions returns every recorded completion, walking destination
// partitions in index order and each partition's records in arrival
// order — deterministic for a fixed seed and any worker count.
func (b *BulkService) Completions() []BulkCompletion {
	n := 0
	for _, c := range b.compl {
		n += len(c)
	}
	out := make([]BulkCompletion, 0, n)
	for _, c := range b.compl {
		out = append(out, c...)
	}
	return out
}

// Started returns how many transfers have been scheduled.
func (b *BulkService) Started() uint64 { return b.nextID }

// MBps returns aggregate goodput in MB/s over the given span: total
// completed payload bytes divided by the span.
func (b *BulkService) MBps(span time.Duration) float64 {
	if span <= 0 {
		return math.NaN()
	}
	var bytes int64
	for _, c := range b.compl {
		for _, r := range c {
			bytes += r.Bytes
		}
	}
	return float64(bytes) / span.Seconds() / 1e6
}
