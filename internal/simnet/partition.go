package simnet

import (
	"fmt"
	"time"

	"lunasolar/internal/sim"
)

// Fabric partitioning for coupled parallel execution.
//
// A partitioned fabric splits one Clos across P engines: every rack (its
// ToR pair plus its hosts) belongs to exactly one partition, and spines,
// cores and DC routers are spread round-robin by their deterministic build
// index. Links whose endpoints land in different partitions are "cut": a
// frame traversing a cut link is not scheduled locally but handed to the
// peer partition's mailbox, carrying its deliver time, and materialized
// into the receiving partition's pool at the next barrier. The minimum
// propagation delay over cut links is the coupled runner's lookahead.
//
// Host↔ToR links are never cut — a rack is the unit of placement — so the
// lookahead is always a switch-to-switch propagation delay.

// PartPlan is a deterministic assignment of fabric nodes to partitions,
// computed from the Config alone so tools (cmd/ebstopo) can inspect the
// split without building a fabric.
type PartPlan struct {
	parts int
	cfg   Config
}

// PlanPartitions computes the partition assignment for cfg over the given
// partition count. parts < 1 is treated as 1.
func PlanPartitions(cfg Config, parts int) *PartPlan {
	if parts < 1 {
		parts = 1
	}
	return &PartPlan{parts: parts, cfg: cfg}
}

// Parts returns the partition count.
func (pl *PartPlan) Parts() int { return pl.parts }

// rackIndex is the global build index of a rack.
func (pl *PartPlan) rackIndex(dc, pod, rack int) int {
	return (dc*pl.cfg.PodsPerDC+pod)*pl.cfg.RacksPerPod + rack
}

// RackPart returns the partition owning a rack — its ToR pair and hosts.
func (pl *PartPlan) RackPart(dc, pod, rack int) int {
	return pl.rackIndex(dc, pod, rack) % pl.parts
}

// SpinePart returns the partition owning a pod spine.
func (pl *PartPlan) SpinePart(dc, pod, idx int) int {
	return ((dc*pl.cfg.PodsPerDC+pod)*pl.cfg.SpinesPerPod + idx) % pl.parts
}

// CorePart returns the partition owning a DC core switch.
func (pl *PartPlan) CorePart(dc, idx int) int {
	return (dc*pl.cfg.CoresPerDC + idx) % pl.parts
}

// DCRPart returns the partition owning a DC router.
func (pl *PartPlan) DCRPart(idx int) int { return idx % pl.parts }

// eachLink walks every link the fabric build creates, in build order,
// reporting the two endpoint partitions and the link's propagation delay.
// This mirrors fabric construction exactly, so plan-level cut accounting
// matches the built fabric's cut ports.
func (pl *PartPlan) eachLink(fn func(partA, partB int, prop time.Duration)) {
	cfg := pl.cfg
	for dc := 0; dc < cfg.DCs; dc++ {
		for c := 0; c < cfg.CoresPerDC; c++ {
			for d := 0; d < cfg.DCRouters; d++ {
				fn(pl.CorePart(dc, c), pl.DCRPart(d), cfg.InterDCDelay)
			}
		}
		for pod := 0; pod < cfg.PodsPerDC; pod++ {
			for sp := 0; sp < cfg.SpinesPerPod; sp++ {
				for c := 0; c < cfg.CoresPerDC; c++ {
					fn(pl.SpinePart(dc, pod, sp), pl.CorePart(dc, c), cfg.PropDelay)
				}
			}
			for rack := 0; rack < cfg.RacksPerPod; rack++ {
				rp := pl.RackPart(dc, pod, rack)
				for t := 0; t < 2; t++ {
					for sp := 0; sp < cfg.SpinesPerPod; sp++ {
						fn(rp, pl.SpinePart(dc, pod, sp), cfg.PropDelay)
					}
				}
				// Hosts attach to their rack's ToR pair: same partition by
				// construction, never a cut.
				for hi := 0; hi < cfg.HostsPerRack; hi++ {
					fn(rp, rp, cfg.PropDelay)
					fn(rp, rp, cfg.PropDelay)
				}
			}
		}
	}
}

// CutLinks returns how many full-duplex links cross partitions.
func (pl *PartPlan) CutLinks() int {
	n := 0
	pl.eachLink(func(a, b int, _ time.Duration) {
		if a != b {
			n++
		}
	})
	return n
}

// Lookahead returns the minimum propagation delay over cut links — the
// coupled runner's window width — or 0 when no link is cut (single
// partition, or a degenerate plan where every node landed together).
func (pl *PartPlan) Lookahead() time.Duration {
	var min time.Duration
	pl.eachLink(func(a, b int, prop time.Duration) {
		if a != b && (min == 0 || prop < min) {
			min = prop
		}
	})
	return min
}

// fabricPart is the per-partition slice of fabric state. Everything a
// packet's hot path touches — pools, free lists, drop counters, the drop
// randomness — lives here so partitions stay share-nothing within a
// window; the only cross-partition mutation is Mailbox.Post, which is
// thread-safe, and the barrier-time work below, which runs single-threaded
// on the coordinator.
//
//lint:partowned
type fabricPart struct {
	idx  int
	fab  *Fabric
	eng  *sim.Engine
	rand *sim.Rand

	drops map[string]uint64

	pool     PacketPool
	freeXfer []*linkXfer
	freeFwd  []*swFwd

	inbox   crossInbox
	mb      sim.Mailbox
	freeMsg []*crossMsg
	msgSeq  uint64

	// Fluid fast-forward disturb notes (flow.go): plain per-partition
	// fields written by hot-path trigger sites and folded into the flow
	// table only at single-threaded points (engine hook / barrier), so
	// coupled windows never contend on shared fluid state.
	fluidNoted   bool
	fluidTrig    FluidTrigger // first trigger since the last fold
	fluidNoteAt  sim.Time     // latest trigger time since the last fold
	fluidTrigN   [numFluidTriggers]uint64
	fluidPending []*fluidFlow // transfers started mid-window, admitted at the barrier
}

func (ps *fabricPart) countDrop(reason string) {
	ps.drops[reason]++
	ps.noteFluid(TriggerLoss)
}

// crossMsg carries one frame across a partition boundary: the sender-pool
// packet held hostage until the barrier, the sending partition (for node
// recycling and leak accounting), and the receiver-side ingress port.
type crossMsg struct {
	pkt     *Packet
	from    *fabricPart
	ingress *Port
}

func (ps *fabricPart) getMsg() *crossMsg {
	if n := len(ps.freeMsg); n > 0 {
		m := ps.freeMsg[n-1]
		ps.freeMsg[n-1] = nil
		ps.freeMsg = ps.freeMsg[:n-1]
		return m
	}
	return &crossMsg{}
}

func (ps *fabricPart) putMsg(m *crossMsg) {
	m.pkt, m.from, m.ingress = nil, nil, nil
	ps.freeMsg = append(ps.freeMsg, m)
}

// crossInbox is a partition's inbound face: the cut-link transmit path
// hands frames to the peer partition through it.
//
//lint:crossing
type crossInbox struct {
	part *fabricPart
}

// Handoff transfers ownership of pkt to the inbox's partition, to be
// delivered at the given virtual time. It is the cross-partition
// counterpart of Packet.Release: the caller's reference is consumed (the
// receiving partition now owes the Release), which the slabown analyzer
// checks like any other release — using pkt after Handoff is a bug.
func (mb *crossInbox) Handoff(pkt *Packet, at sim.Time, from *fabricPart, ingress *Port) {
	m := from.getMsg()
	m.pkt, m.from, m.ingress = pkt, from, ingress
	from.msgSeq++
	mb.part.mb.Post(sim.Inbound{At: at, Src: from.idx, Seq: from.msgSeq, Arg: m})
}

// accept materializes one handed-off frame into this partition at a
// barrier: copy the frame into receiver-owned pool storage (the envelope,
// payload, zero-copy fragment and INT hops), release the sender's packet
// back to its own pool, and schedule local delivery at the frame's
// propagation-determined arrival time. The copy is counted against the
// pool's copy budget — a cut link is a real memory-domain crossing, the
// one place the zero-copy discipline legitimately pays a copy.
//
// Runs only on the barrier coordinator while no window is active, so
// touching two partitions' pools (and the non-atomic slab refcounts) here
// is single-threaded by construction.
func (ps *fabricPart) accept(at sim.Time, m *crossMsg) {
	src := m.pkt
	dst := ps.pool.Get(0)
	dst.Src, dst.Dst = src.Src, src.Dst
	dst.Proto = src.Proto
	dst.SrcPort, dst.DstPort = src.SrcPort, src.DstPort
	dst.ECN, dst.TTL = src.ECN, src.TTL
	dst.Overhead = src.Overhead
	dst.SentAt = src.SentAt
	if len(src.Payload) > 0 {
		dst.Payload = ps.pool.GetBuf(len(src.Payload))
		copy(dst.Payload, src.Payload)
		dst.ownsPayload = true
		ps.pool.CountCopy(len(src.Payload))
	}
	if len(src.Frag) > 0 {
		s := ps.pool.GetSlab(len(src.Frag))
		copy(s.Bytes(), src.Frag)
		dst.AttachFrag(s, s.Bytes())
		s.Release() // the packet's reference from AttachFrag is now the only one
		ps.pool.CountCopy(len(src.Frag))
	}
	if src.INT != nil {
		dst.ResetINT()
		dst.intStore.Hops = append(dst.intStore.Hops, src.INT.Hops...)
	}
	src.Release()
	ingress := m.ingress
	m.from.putMsg(m)
	x := ps.getXfer()
	x.port, x.pkt, x.size = ingress, dst, 0
	ps.eng.AtArg(at, crossDeliver, x)
}

// NewPartitioned builds the fabric described by cfg split across the given
// engines according to plan. Engines, plan and cfg must agree: one engine
// per partition. A single-engine call is exactly New.
func NewPartitioned(engs []*sim.Engine, cfg Config, plan *PartPlan) *Fabric {
	if plan == nil {
		plan = PlanPartitions(cfg, len(engs))
	}
	if len(engs) != plan.Parts() {
		panic(fmt.Sprintf("simnet: %d engines for a %d-partition plan", len(engs), plan.Parts()))
	}
	return build(engs, cfg, plan)
}

// Parts returns the fabric's partition count (1 for serial fabrics).
func (f *Fabric) Parts() int { return len(f.parts) }

// PartEngine returns partition i's engine.
func (f *Fabric) PartEngine(i int) *sim.Engine { return f.parts[i].eng }

// Engines returns the partition engines in partition order.
func (f *Fabric) Engines() []*sim.Engine {
	out := make([]*sim.Engine, len(f.parts))
	for i, ps := range f.parts {
		out[i] = ps.eng
	}
	return out
}

// Plan returns the fabric's partition plan.
func (f *Fabric) Plan() *PartPlan { return f.plan }

// CutPorts returns every port whose link crosses a partition boundary, in
// build order (both ends of each cut link appear).
func (f *Fabric) CutPorts() []*Port { return f.cutPorts }

// Lookahead returns the minimum propagation delay over the built fabric's
// cut links, or 0 when nothing is cut.
func (f *Fabric) Lookahead() time.Duration {
	var min time.Duration
	for _, p := range f.cutPorts {
		if min == 0 || p.propDelay < min {
			min = p.propDelay
		}
	}
	return min
}

// PublishCutState refreshes the peer-state snapshots on every cut port:
// link-up, peer-switch liveness and fail time. Forwarding decisions at a
// cut port read these snapshots instead of the live peer (which another
// partition may be mutating mid-window); refreshing them only at barriers
// bounds the staleness by one lookahead — physically, the time a real
// link-state or routing update would take to cross the same wire — and
// keeps the refresh points identical for every worker count.
//
//lint:barrier — coordinator-only refresh between windows (see staleness argument above)
func (f *Fabric) PublishCutState() {
	for _, p := range f.cutPorts {
		peer := p.peer
		p.pubPeerUp = peer.up
		if sw, ok := peer.owner.(*Switch); ok {
			p.pubPeerIsSwitch = true
			p.pubPeerAlive = sw.alive
			p.pubPeerDownAt = sw.downAt
		} else {
			p.pubPeerIsSwitch = false
			p.pubPeerAlive = true
		}
	}
}

// DrainInboxes materializes every handed-off frame into its receiving
// partition, walking partitions in index order and each mailbox in
// (time, source partition, sequence) order — the deterministic merge the
// coupled runner's determinism argument rests on. Must only be called
// from the barrier coordinator while no window is running.
//
//lint:barrier — barrier coordinator only, per the contract above
func (f *Fabric) DrainInboxes() {
	for _, ps := range f.parts {
		part := ps
		part.mb.Drain(func(in sim.Inbound) {
			part.accept(in.At, in.Arg.(*crossMsg))
		})
	}
}

// InboxPending returns the number of handed-off frames not yet
// materialized (nonzero only between a window and its barrier, or when a
// bounded run stopped with traffic in flight).
func (f *Fabric) InboxPending() int {
	n := 0
	for _, ps := range f.parts {
		n += ps.mb.Len()
	}
	return n
}

// OutstandingAll sums outstanding pool references across partitions, in
// partition order. The per-partition leak gate: with every engine drained
// and every inbox empty, each partition's pool must individually balance,
// and this sum is zero.
//
//lint:barrier — leak gate: runs after a full drain, no window active
func (f *Fabric) OutstandingAll() uint64 {
	var n uint64
	for _, ps := range f.parts {
		n += ps.pool.Outstanding()
	}
	return n
}

// PartOutstanding returns partition i's outstanding pool references.
//
//lint:barrier — leak gate companion to OutstandingAll; post-drain only
func (f *Fabric) PartOutstanding(i int) uint64 { return f.parts[i].pool.Outstanding() }
