package simnet

import (
	"testing"
	"time"

	"lunasolar/internal/sim"
	"lunasolar/internal/sim/runtime"
)

// runBulkOnce drives one 512 KiB transfer over an idle cross-pod path,
// optionally in hybrid fidelity and with a disturbance scheduled mid-run.
func runBulkOnce(t *testing.T, hybrid bool, disturb func(eng *sim.Engine, fab *Fabric)) ([]BulkCompletion, uint64, *Fabric) {
	t.Helper()
	eng, fab := smallFabric(t)
	bulk := NewBulkService(fab)
	if hybrid {
		fab.EnableFluid(DefaultFluidConfig())
	}
	src := fab.Host(0, 0, 0, 0)
	dst := fab.Host(0, 1, 0, 0)
	bulk.Transfer(src, dst, 512<<10, 4096, 5e9, sim.Time(time.Millisecond))
	if disturb != nil {
		disturb(eng, fab)
	}
	eng.Run()
	return bulk.Completions(), eng.Processed(), fab
}

// TestFluidMatchesPacketExactly: on an uncongested path the fluid model
// uses the same pacing grid and the same resolved path as packet mode, so
// the completion must agree to the nanosecond while materializing no
// packets.
func TestFluidMatchesPacketExactly(t *testing.T) {
	pc, pEvents, pFab := runBulkOnce(t, false, nil)
	hc, hEvents, hFab := runBulkOnce(t, true, nil)
	if len(pc) != 1 || len(hc) != 1 {
		t.Fatalf("completions: packet %d, hybrid %d, want 1 each", len(pc), len(hc))
	}
	if pc[0].Fluid {
		t.Fatal("packet-mode completion marked fluid")
	}
	if !hc[0].Fluid {
		t.Fatal("hybrid completion not fluid: the idle-path transfer was not admitted")
	}
	if hc[0].ID != pc[0].ID || hc[0].Bytes != pc[0].Bytes || hc[0].Lat != pc[0].Lat {
		t.Fatalf("completion differs: hybrid %+v, packet %+v", hc[0], pc[0])
	}
	if hEvents >= pEvents {
		t.Fatalf("hybrid processed %d events, packet %d; fast-forward saved nothing", hEvents, pEvents)
	}
	if n := pFab.Pool().Outstanding(); n != 0 {
		t.Fatalf("packet run leaked %d pooled packets", n)
	}
	if n := hFab.Pool().Outstanding(); n != 0 {
		t.Fatalf("hybrid run leaked %d pooled packets", n)
	}
	if s := hFab.Fluid().Stats(); s.Admitted != 1 || s.Demotions != 0 {
		t.Fatalf("hybrid stats = %+v, want 1 admitted, 0 demotions", s)
	}
}

// TestFluidDemotionConservesBytes: a mid-flight stack disturbance (an RDMA
// NAK note) must flush the fluid flow back to packets with the sent prefix
// conserved — the transfer still completes with the same bytes and the
// same latency as packet mode (the path is idle; the resumed sender
// continues on the original grid), and the completion is no longer
// analytic.
func TestFluidDemotionConservesBytes(t *testing.T) {
	pc, _, _ := runBulkOnce(t, false, nil)
	disturb := func(eng *sim.Engine, fab *Fabric) {
		eng.At(sim.Time(1300*time.Microsecond), func() {
			fab.Host(0, 0, 1, 1).FluidDisturb(TriggerNAK)
		})
	}
	hc, _, hFab := runBulkOnce(t, true, disturb)
	if len(hc) != 1 {
		t.Fatalf("hybrid completions = %d, want 1", len(hc))
	}
	if hc[0].Fluid {
		t.Fatal("completion still marked fluid after mid-flight demotion")
	}
	if hc[0].Bytes != pc[0].Bytes {
		t.Fatalf("bytes not conserved across demotion: %d, want %d", hc[0].Bytes, pc[0].Bytes)
	}
	if hc[0].Lat != pc[0].Lat {
		t.Fatalf("latency across demotion = %v, want packet-mode %v", hc[0].Lat, pc[0].Lat)
	}
	s := hFab.Fluid().Stats()
	if s.Admitted != 1 || s.Demotions != 1 {
		t.Fatalf("stats = %+v, want 1 admitted, 1 demotion", s)
	}
	if s.Triggers[TriggerNAK] == 0 {
		t.Fatalf("NAK trigger not recorded: %+v", s.Triggers)
	}
	if n := hFab.Pool().Outstanding(); n != 0 {
		t.Fatalf("hybrid run leaked %d pooled packets", n)
	}
}

// TestFluidEligibleLowWaterBoundary pins the quiescence predicate's edge
// cases: a queue at exactly LowWaterBytes is eligible, one byte over is
// not; a down port, a hung switch, and a queue high-water growth each make
// the fabric ineligible (growth also re-arms the hold-off).
func TestFluidEligibleLowWaterBoundary(t *testing.T) {
	_, fab := smallFabric(t)
	ft := fab.EnableFluid(DefaultFluidConfig())
	now := sim.Time(time.Millisecond)
	if !ft.eligible(now) {
		t.Fatal("fresh idle fabric not eligible")
	}
	p := fab.Switches()[0].ports[0]

	p.queuedBytes = ft.cfg.LowWaterBytes
	if !ft.eligible(now) {
		t.Fatalf("queue at exactly LowWaterBytes (%d) must stay eligible", ft.cfg.LowWaterBytes)
	}
	p.queuedBytes++
	if ft.eligible(now) {
		t.Fatal("queue one byte over LowWaterBytes still eligible")
	}
	p.queuedBytes = 0

	p.up = false
	if ft.eligible(now) {
		t.Fatal("down port still eligible")
	}
	p.up = true

	sw := fab.Switches()[0]
	sw.alive = false
	if ft.eligible(now) {
		t.Fatal("hung switch still eligible")
	}
	sw.alive = true
	if !ft.eligible(now) {
		t.Fatal("fabric not eligible again after impairments cleared")
	}

	// Queue high-water growth is the incast-onset signal: ineligible now,
	// and the hold-off re-arms so the next check inside the window fails
	// too; at now+HoldOff the fabric is eligible again.
	p.maxQueued = 100
	if ft.eligible(now) {
		t.Fatal("queue high-water growth did not suspend eligibility")
	}
	if ft.eligible(now.Add(ft.cfg.HoldOff - 1)) {
		t.Fatal("eligible inside the hold-off window after high-water growth")
	}
	if !ft.eligible(now.Add(ft.cfg.HoldOff)) {
		t.Fatal("not eligible after the hold-off expired with a stable high-water mark")
	}
}

// TestMaxQueuedBytesMonotoneAndResets is the high-water property test: the
// fabric-wide mark never decreases within a run, and a fresh fabric (a new
// run) starts back at zero.
func TestMaxQueuedBytesMonotoneAndResets(t *testing.T) {
	eng, fab := smallFabric(t)
	r := sim.NewRand(11)
	hosts := fab.Hosts()
	last := fab.MaxQueuedBytes()
	if last != 0 {
		t.Fatalf("fresh fabric MaxQueuedBytes = %d, want 0", last)
	}
	for round := 0; round < 8; round++ {
		dst := hosts[r.Intn(len(hosts))]
		burst := 1 + r.Intn(12)
		for i := 0; i < burst; i++ {
			src := hosts[r.Intn(len(hosts))]
			if src == dst {
				continue
			}
			pkt := mkPkt(src, dst, uint16(1000+r.Intn(500)), 4096)
			if !src.Send(pkt) {
				t.Fatal("send failed")
			}
		}
		eng.Run()
		q := fab.MaxQueuedBytes()
		if q < last {
			t.Fatalf("round %d: MaxQueuedBytes fell %d -> %d; high-water mark must be monotone", round, last, q)
		}
		last = q
	}
	if last == 0 {
		t.Fatal("bursty traffic never queued a byte; the property test exercised nothing")
	}
	_, fresh := smallFabric(t)
	if q := fresh.MaxQueuedBytes(); q != 0 {
		t.Fatalf("new fabric MaxQueuedBytes = %d, want 0 (mark must reset across runs)", q)
	}
}

// TestFluidIncastDemotion: three 13 Gbit/s flows converge on one
// dual-homed (2×25G) host, so by pigeonhole some host link is offered
// 26G — max-min infeasible. Admission must refuse the flow that breaks the
// allocation, flush the rest (TriggerIncast), and run the contention at
// packet fidelity; every transfer still completes with conserved bytes and
// no drops.
func TestFluidIncastDemotion(t *testing.T) {
	eng, fab := smallFabric(t)
	bulk := NewBulkService(fab)
	fab.EnableFluid(DefaultFluidConfig())
	dst := fab.Host(0, 1, 0, 0)
	for i := 0; i < 3; i++ {
		src := fab.Host(0, 0, i/2, i%2)
		at := sim.Time(time.Millisecond).Add(time.Duration(i) * 10 * time.Microsecond)
		bulk.Transfer(src, dst, 256<<10, 4096, 13e9, at)
	}
	eng.Run()

	s := fab.Fluid().Stats()
	if s.Triggers[TriggerIncast] == 0 {
		t.Fatalf("incast trigger never fired: %+v", s)
	}
	if s.Demotions == 0 {
		t.Fatalf("no demotion despite an infeasible max-min allocation: %+v", s)
	}
	compl := bulk.Completions()
	if len(compl) != 3 {
		t.Fatalf("completions = %d, want 3", len(compl))
	}
	for _, c := range compl {
		if c.Bytes != 256<<10 {
			t.Fatalf("transfer %d delivered %d bytes, want %d", c.ID, c.Bytes, 256<<10)
		}
	}
	if d := fab.TotalDrops(); d != 0 {
		t.Fatalf("incast wave dropped %d packets; it is sized to queue, not drop", d)
	}
	if n := fab.Pool().Outstanding(); n != 0 {
		t.Fatalf("leaked %d pooled packets", n)
	}
}

// coupledBulkRun drives the diurnal-style bulk schedule over a partitioned
// fabric with the coupled runner, hybrid or not, and returns the
// completion list (deterministic order) plus the fabric.
func coupledBulkRun(t *testing.T, parts, workers int, hybrid bool) ([]BulkCompletion, *Fabric) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 2
	cfg.CoresPerDC = 2
	engs := make([]*sim.Engine, parts)
	for i := range engs {
		engs[i] = sim.NewEngine(int64(i + 1))
	}
	fab := NewPartitioned(engs, cfg, PlanPartitions(cfg, parts))
	bulk := NewBulkService(fab)
	var ft *FlowTable
	if hybrid {
		ft = fab.EnableFluid(DefaultFluidConfig())
	}

	r := sim.NewRand(17)
	hosts := fab.Hosts()
	for i := 0; i < 12; i++ {
		src := hosts[r.Intn(len(hosts))]
		dst := hosts[r.Intn(len(hosts))]
		if src == dst {
			dst = hosts[(r.Intn(len(hosts))+1)%len(hosts)]
			if src == dst {
				continue
			}
		}
		at := sim.Time(time.Millisecond).Add(time.Duration(r.Int63n(int64(2 * time.Millisecond))))
		bulk.Transfer(src, dst, int64(64+r.Intn(192))<<10, 4096, 5e9, at)
	}

	c := &runtime.Coupled{
		Engines:   engs,
		Lookahead: fab.Lookahead(),
		Workers:   workers,
		AtBarrier: func() {
			fab.PublishCutState()
			fab.DrainInboxes()
		},
	}
	if ft != nil {
		c.FastForward = ft.BarrierAdvance
	}
	c.Run()
	if n := fab.OutstandingAll(); n != 0 {
		t.Fatalf("parts=%d workers=%d hybrid=%v: leaked %d pooled packets", parts, workers, hybrid, n)
	}
	return bulk.Completions(), fab
}

// TestCoupledFluidAgreesWithPacket: on a partitioned fabric the fluid
// plane advances only at barriers (BarrierAdvance as the runner's
// FastForward), and must agree with the packet-fidelity coupled run on
// every completion while being byte-identical across worker counts.
func TestCoupledFluidAgreesWithPacket(t *testing.T) {
	const parts = 2
	want, _ := coupledBulkRun(t, parts, 1, false)
	if len(want) == 0 {
		t.Fatal("packet-mode coupled run completed nothing")
	}
	for _, workers := range []int{1, 2} {
		got, fab := coupledBulkRun(t, parts, workers, true)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: hybrid completed %d transfers, packet %d", workers, len(got), len(want))
		}
		fluid := 0
		for i, c := range got {
			w := want[i]
			if c.ID != w.ID || c.Bytes != w.Bytes || c.Lat != w.Lat {
				t.Fatalf("workers=%d: completion %d differs: hybrid %+v, packet %+v", workers, i, c, w)
			}
			if c.Fluid {
				fluid++
			}
		}
		if fluid == 0 {
			t.Fatal("coupled hybrid run fast-forwarded nothing")
		}
		if s := fab.Fluid().Stats(); s.Admitted == 0 {
			t.Fatalf("coupled hybrid admitted nothing: %+v", s)
		}
	}
}
