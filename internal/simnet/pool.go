package simnet

import "lunasolar/internal/wire"

// Payload buffer size classes. Small covers ACKs, probes and control
// frames; mid covers RDMA/TCP control and partial blocks; data covers a
// full 4 KiB block plus every header the stacks prepend.
const (
	bufClassSmall = 256
	bufClassMid   = 1152
	bufClassData  = wire.RPCSize + wire.EBSSize + wire.BlockSize + 128
)

// PacketPool is an engine-owned free list of packets and payload buffers.
// It deliberately avoids sync.Pool: free lists are plain LIFO slices owned
// by the fabric's engine, so reuse order is deterministic for a fixed seed
// and nothing is shared between engines. Share-nothing shards each own
// their fabric and therefore their pool.
//
// Ownership discipline: the sender obtains a packet from the pool, the
// fabric carries it, and whoever terminates the packet's life releases it —
// the receiving stack after processing, the fabric on in-flight drops, or
// the sender when Send reports a local drop. Release on a packet that did
// not come from a pool is a no-op, so tests and cold paths can keep
// building packets with struct literals.
//
//lint:partowned
type PacketPool struct {
	pkts  []*Packet
	small [][]byte
	mid   [][]byte
	data  [][]byte
	slabs []*Slab

	gets, puts, news uint64

	copies      uint64
	copiedBytes uint64
}

// Get returns a packet with a zeroed envelope and a pool-owned payload
// buffer of length n (no payload when n == 0). The packet's INT pointer is
// nil; senders that want telemetry call ResetINT.
func (pp *PacketPool) Get(n int) *Packet {
	var p *Packet
	if ln := len(pp.pkts); ln > 0 {
		p = pp.pkts[ln-1]
		pp.pkts[ln-1] = nil
		pp.pkts = pp.pkts[:ln-1]
		p.free = false
	} else {
		p = &Packet{pool: pp}
		pp.news++
	}
	pp.gets++
	if n > 0 {
		p.Payload = pp.GetBuf(n)
		p.ownsPayload = true
	}
	return p
}

// GetBuf returns a pooled byte slice of length n. Sizes above the largest
// class fall back to a plain allocation (and PutBuf will drop them).
func (pp *PacketPool) GetBuf(n int) []byte {
	var list *[][]byte
	switch {
	case n <= bufClassSmall:
		list = &pp.small
	case n <= bufClassMid:
		list = &pp.mid
	case n <= bufClassData:
		list = &pp.data
	default:
		return make([]byte, n)
	}
	if ln := len(*list); ln > 0 {
		b := (*list)[ln-1]
		(*list)[ln-1] = nil
		*list = (*list)[:ln-1]
		return b[:n]
	}
	switch list {
	case &pp.small:
		return make([]byte, n, bufClassSmall)
	case &pp.mid:
		return make([]byte, n, bufClassMid)
	default:
		return make([]byte, n, bufClassData)
	}
}

// PutBuf returns a buffer obtained from GetBuf. Buffers of unknown
// capacity are dropped for the garbage collector.
func (pp *PacketPool) PutBuf(b []byte) {
	switch cap(b) {
	case bufClassSmall:
		pp.small = append(pp.small, b)
	case bufClassMid:
		pp.mid = append(pp.mid, b)
	case bufClassData:
		pp.data = append(pp.data, b)
	}
}

// put returns a released packet to the free list (called via
// Packet.Release, which resets the struct first).
func (pp *PacketPool) put(p *Packet) {
	pp.puts++
	pp.pkts = append(pp.pkts, p)
}

// Gets returns how many packets have been handed out, and News how many of
// those required a fresh allocation; their ratio is the pool's hit rate.
func (pp *PacketPool) Gets() uint64 { return pp.gets }

// News returns the number of pool misses (fresh packet allocations).
func (pp *PacketPool) News() uint64 { return pp.news }

// Outstanding returns packets and slab references handed out but not yet
// released. With the fabric idle this should be zero; anything else is a
// leaked packet (a receive path that forgot to Release) or a leaked slab
// reference (a Retain without its Release).
func (pp *PacketPool) Outstanding() uint64 { return pp.gets - pp.puts }

// linkXfer carries one in-flight frame through the port's two scheduled
// events (serialization done, then delivery); nodes are pooled on the
// fabric so link transit does not allocate.
type linkXfer struct {
	port *Port
	pkt  *Packet
	size int
}

// swFwd carries one frame through a switch's pipeline-latency event.
type swFwd struct {
	sw     *Switch
	egress *Port
	pkt    *Packet
}

func (ps *fabricPart) getXfer() *linkXfer {
	if n := len(ps.freeXfer); n > 0 {
		x := ps.freeXfer[n-1]
		ps.freeXfer[n-1] = nil
		ps.freeXfer = ps.freeXfer[:n-1]
		return x
	}
	return &linkXfer{}
}

func (ps *fabricPart) putXfer(x *linkXfer) {
	x.port, x.pkt, x.size = nil, nil, 0
	ps.freeXfer = append(ps.freeXfer, x)
}

func (ps *fabricPart) getFwd() *swFwd {
	if n := len(ps.freeFwd); n > 0 {
		x := ps.freeFwd[n-1]
		ps.freeFwd[n-1] = nil
		ps.freeFwd = ps.freeFwd[:n-1]
		return x
	}
	return &swFwd{}
}

func (ps *fabricPart) putFwd(x *swFwd) {
	x.sw, x.egress, x.pkt = nil, nil, nil
	ps.freeFwd = append(ps.freeFwd, x)
}
