package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"lunasolar/internal/sim"
	"lunasolar/internal/wire"
)

func smallFabric(t *testing.T) (*sim.Engine, *Fabric) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 2
	cfg.CoresPerDC = 2
	return eng, New(eng, cfg)
}

func mkPkt(src, dst *Host, srcPort uint16, payload int) *Packet {
	return &Packet{
		Src: src.Addr(), Dst: dst.Addr(),
		Proto: wire.ProtoUDP, SrcPort: srcPort, DstPort: 9000,
		Payload:  make([]byte, payload),
		Overhead: DefaultOverheadUDP,
	}
}

func TestAddrRoundTrip(t *testing.T) {
	f := func(dc, pod, rack, host uint8) bool {
		d, p, r, h := int(dc%4), int(pod%8), int(rack%16), int(host%32)
		a := Addr(d, p, r, h)
		return AddrDC(a) == d && AddrPod(a) == p && AddrRack(a) == r && AddrHost(a) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCrossPodDelivery(t *testing.T) {
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 1, 1, 1)
	var got *Packet
	var at sim.Time
	dst.Handler = func(p *Packet) { got = p; at = eng.Now() }
	pkt := mkPkt(src, dst, 7, 4096)
	if !src.Send(pkt) {
		t.Fatal("send failed")
	}
	eng.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Src != src.Addr() || got.Dst != dst.Addr() {
		t.Fatal("envelope corrupted")
	}
	// Sanity on latency: 6 store-and-forward hops of a ~4.2KB frame,
	// 2×25G + 4×100G, plus prop and switch latency → between 4µs and 15µs.
	d := at.Duration()
	if d < 4*time.Microsecond || d > 15*time.Microsecond {
		t.Fatalf("one-way latency = %v, want 4–15µs", d)
	}
	// TTL decremented once per switch (5 switches cross-pod).
	if got.TTL != 64-5 {
		t.Fatalf("TTL = %d, want 59", got.TTL)
	}
}

func TestSameRackDelivery(t *testing.T) {
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 0, 0, 1)
	delivered := false
	dst.Handler = func(p *Packet) { delivered = true }
	src.Send(mkPkt(src, dst, 1, 100))
	eng.Run()
	if !delivered {
		t.Fatal("same-rack packet lost")
	}
}

func TestECMPPathStability(t *testing.T) {
	// Same 5-tuple → same delivery latency every time (same path);
	// different source ports should spread across paths.
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 1, 0, 0)
	var times []time.Duration
	dst.Handler = func(p *Packet) {
		times = append(times, eng.Now().Sub(p.SentAt))
	}
	// Back-to-back sends of the same flow, spaced out to avoid queueing.
	for i := 0; i < 5; i++ {
		pkt := mkPkt(src, dst, 42, 1000)
		pkt.SentAt = eng.Now()
		src.Send(pkt)
		eng.RunFor(time.Millisecond)
	}
	for i := 1; i < len(times); i++ {
		if times[i] != times[0] {
			t.Fatalf("same flow took different paths: %v", times)
		}
	}
}

func TestECMPSpreadsSourcePorts(t *testing.T) {
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 1, 0, 0)
	dst.Handler = func(p *Packet) {}
	for port := uint16(1000); port < 1256; port++ {
		src.Send(mkPkt(src, dst, port, 100))
		eng.RunFor(100 * time.Microsecond)
	}
	// Every spine in pod 0 should have forwarded some packets.
	for i := 0; i < 2; i++ {
		sp := f.Spine(0, 0, i)
		if sp.Forwarded() == 0 {
			t.Fatalf("spine %s never used; ECMP not spreading", sp.Name())
		}
	}
}

func TestHungToRDropsPinnedFlows(t *testing.T) {
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 1, 0, 0)
	delivered := 0
	dst.Handler = func(p *Packet) { delivered++ }

	// Find which ToR the flow hashes to by sending one packet and checking
	// forwarded counters.
	probe := mkPkt(src, dst, 555, 100)
	src.Send(probe)
	eng.Run()
	if delivered != 1 {
		t.Fatal("probe lost")
	}
	var pinned *Switch
	for _, idx := range []int{0, 1} {
		tor := f.ToR(0, 0, 0, idx)
		if tor.Forwarded() > 0 {
			pinned = tor
		}
	}
	if pinned == nil {
		t.Fatal("no ToR forwarded the probe")
	}

	// Hang it: links stay up, so the host keeps using it for this flow.
	pinned.Fail()
	for i := 0; i < 10; i++ {
		src.Send(mkPkt(src, dst, 555, 100))
	}
	eng.Run()
	if delivered != 1 {
		t.Fatalf("flows pinned to a hung ToR should all drop; delivered=%d", delivered)
	}

	// A different source port can escape (50% chance per port; try many).
	escaped := 0
	for port := uint16(2000); port < 2040; port++ {
		before := delivered
		src.Send(mkPkt(src, dst, port, 100))
		eng.Run()
		if delivered > before {
			escaped++
		}
	}
	if escaped == 0 {
		t.Fatal("no source port escaped the hung ToR")
	}
	if escaped == 40 {
		t.Fatal("all ports escaped — the hang had no effect?")
	}
}

func TestSpineHangExcludedAfterDetection(t *testing.T) {
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 1, 0, 0)
	delivered := 0
	dst.Handler = func(p *Packet) { delivered++ }

	f.Spine(0, 0, 0).Fail()
	// Before detection: flows hashed through spine 0 drop.
	lostBefore := 0
	for port := uint16(1); port <= 50; port++ {
		before := delivered
		src.Send(mkPkt(src, dst, port, 100))
		eng.RunFor(time.Millisecond)
		if delivered == before {
			lostBefore++
		}
	}
	if lostBefore == 0 {
		t.Fatal("hung spine dropped nothing before detection")
	}
	// After detection delay all flows re-converge.
	eng.RunFor(f.Config().DetectDelay + time.Millisecond)
	for port := uint16(1); port <= 50; port++ {
		src.Send(mkPkt(src, dst, port, 100))
	}
	prev := delivered
	eng.Run()
	if delivered-prev != 50 {
		t.Fatalf("after reconvergence delivered %d/50", delivered-prev)
	}
}

func TestPortFailureInstantFailover(t *testing.T) {
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 1, 0, 0)
	delivered := 0
	dst.Handler = func(p *Packet) { delivered++ }

	// Take down src's first NIC link: bonding must move all flows at once.
	f.FailLink(src.Ports()[0])
	for port := uint16(1); port <= 20; port++ {
		src.Send(mkPkt(src, dst, port, 100))
	}
	eng.Run()
	if delivered != 20 {
		t.Fatalf("delivered %d/20 after NIC port failure", delivered)
	}
}

func TestBlackholeDropsSubsetSilently(t *testing.T) {
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 1, 0, 0)
	delivered := 0
	dst.Handler = func(p *Packet) { delivered++ }

	// Blackhole half the flows at every ToR in the source rack so the
	// effect is independent of which ToR a flow hashes to.
	f.ToR(0, 0, 0, 0).SetBlackhole(0.5, 99)
	f.ToR(0, 0, 0, 1).SetBlackhole(0.5, 99)
	const n = 200
	for port := uint16(0); port < n; port++ {
		src.Send(mkPkt(src, dst, 3000+port, 100))
		eng.RunFor(50 * time.Microsecond)
	}
	eng.Run()
	if delivered < n/4 || delivered > 3*n/4 {
		t.Fatalf("blackhole(0.5) delivered %d/%d", delivered, n)
	}
	// Deterministic per flow: resending the same port has the same fate.
	before := delivered
	src.Send(mkPkt(src, dst, 3000, 100))
	src.Send(mkPkt(src, dst, 3000, 100))
	eng.Run()
	diff := delivered - before
	if diff != 0 && diff != 2 {
		t.Fatalf("blackhole not flow-deterministic: %d of 2 duplicates delivered", diff)
	}
}

func TestDropRate(t *testing.T) {
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 1, 0, 0)
	delivered := 0
	dst.Handler = func(p *Packet) { delivered++ }
	f.ToR(0, 0, 0, 0).SetDropRate(0.75)
	f.ToR(0, 0, 0, 1).SetDropRate(0.75)
	const n = 400
	for i := 0; i < n; i++ {
		src.Send(mkPkt(src, dst, uint16(i), 100))
		eng.RunFor(20 * time.Microsecond)
	}
	eng.Run()
	frac := float64(delivered) / n
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("75%% drop delivered fraction = %v", frac)
	}
}

func TestTailDropUnderOverload(t *testing.T) {
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 0, 1, 0) // same pod
	delivered := 0
	dst.Handler = func(p *Packet) { delivered++ }
	// Blast 4 MB into a 400 KB buffer instantaneously.
	const n = 1000
	for i := 0; i < n; i++ {
		src.Send(mkPkt(src, dst, 5, 4096))
	}
	eng.Run()
	if delivered == n {
		t.Fatal("no tail drops despite buffer overflow")
	}
	if delivered == 0 {
		t.Fatal("everything dropped")
	}
	if f.TotalDrops() == 0 {
		t.Fatal("drop accounting missed tail drops")
	}
}

func TestECNMarking(t *testing.T) {
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 0, 1, 0)
	marked, total := 0, 0
	dst.Handler = func(p *Packet) {
		total++
		if p.ECN == wire.ECNCE {
			marked++
		}
	}
	for i := 0; i < 60; i++ { // ~250KB burst into one queue > 100KB threshold
		pkt := mkPkt(src, dst, 5, 4096)
		pkt.ECN = wire.ECNECT0
		src.Send(pkt)
	}
	eng.Run()
	if marked == 0 {
		t.Fatalf("no ECN marks on a %d-packet burst", total)
	}
	if marked == total {
		t.Fatal("every packet marked — threshold ignored")
	}
}

func TestINTStamping(t *testing.T) {
	eng, f := smallFabric(t)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(0, 1, 0, 0)
	var hops int
	dst.Handler = func(p *Packet) {
		if p.INT != nil {
			hops = len(p.INT.Hops)
		}
	}
	pkt := mkPkt(src, dst, 9, 4096)
	pkt.INT = &wire.INTStack{}
	src.Send(pkt)
	eng.Run()
	// Host NIC + 5 switch egress ports = 6 stamping points.
	if hops != 6 {
		t.Fatalf("INT hops = %d, want 6", hops)
	}
}

func TestFlowHashDeterministic(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	if FlowHash(p, 42) != FlowHash(p, 42) {
		t.Fatal("hash not deterministic")
	}
	q := *p
	q.SrcPort = 5
	if FlowHash(p, 42) == FlowHash(&q, 42) {
		t.Fatal("source port does not perturb hash")
	}
	if FlowHash(p, 42) == FlowHash(p, 43) {
		t.Fatal("salt does not perturb hash")
	}
}

func TestRebootSwitchRepairs(t *testing.T) {
	eng, f := smallFabric(t)
	sw := f.Spine(0, 0, 0)
	f.RebootSwitch(sw, 10*time.Second)
	if sw.Alive() {
		t.Fatal("switch alive right after reboot start")
	}
	eng.RunFor(11 * time.Second)
	if !sw.Alive() {
		t.Fatal("switch did not repair")
	}
}

func TestInterDCDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.DCs = 2
	cfg.DCRouters = 2
	cfg.PodsPerDC = 1
	cfg.RacksPerPod = 1
	cfg.HostsPerRack = 1
	cfg.SpinesPerPod = 1
	cfg.CoresPerDC = 1
	f := New(eng, cfg)
	src := f.Host(0, 0, 0, 0)
	dst := f.Host(1, 0, 0, 0)
	got := false
	dst.Handler = func(p *Packet) { got = true }
	src.Send(mkPkt(src, dst, 1, 4096))
	eng.Run()
	if !got {
		t.Fatal("inter-DC packet lost")
	}
}
