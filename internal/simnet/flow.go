package simnet

// Hybrid fidelity: flow-level fast-forward for bulk transfers.
//
// Packet-level DES is the right tool for microbursts, incast and failover,
// but fleet-scale campaigns spend most simulated time in steady state,
// re-simulating equilibrium packet by packet. The FlowTable lets the
// fabric fast-forward that equilibrium: when the fabric is
// quiescent-eligible — every output queue at or below a low-water mark, no
// impairment (hung switch, down link, drop/blackhole injection) active,
// no recent fidelity trigger, and the fabric-wide queue high-water mark
// not growing — an open-loop bulk transfer (see bulk.go) is admitted as a
// *fluid flow*: its packets are never materialized, and its completion is
// computed analytically on the exact pacing grid packet mode would use,
// so on an uncongested path the two modes agree to the nanosecond.
//
// Admission runs a shared-bottleneck max-min water-filling over the
// candidate plus every already-fluid flow (per-flow demand = the pace
// rate, per-link capacity = the port rate). If any flow's max-min share
// falls below its demand the fabric is heading into contention the fluid
// model cannot see (standing queues), so the candidate is refused and
// every fluid flow is flushed back to packets (TriggerIncast).
//
// Demotion triggers are wired into the existing machinery: every drop
// path (countDrop → TriggerLoss), ECN mark onset (TriggerECN), queue
// growth past the low-water mark (TriggerQueue), switch hang/repair and
// link up/down transitions (TriggerFailover), and stack-level signals via
// Host.FluidDisturb (rdma NAK/CNP, tcp/rdma RTO and fast retransmit,
// Solar path failover). Triggers are recorded as plain per-partition
// field writes (notes) so hot paths stay allocation- and lock-free; the
// notes are folded into the table only at single-threaded points — the
// engine's fast-forward hook on serial fabrics, the barrier on coupled
// ones. A fold with a pending note flushes every fluid flow at the note's
// time: the analytically-sent packet prefix stays delivered (bytes are
// conserved — the resumed sender continues at exactly the next grid
// index), the completion event is cancelled, and the remaining packets
// are paced for real from their original grid positions, where they feel
// the congestion or failure that triggered the demotion. Re-promotion is
// blocked for HoldOff after the last note.
//
// Coupled fabrics never touch the shared table mid-window: transfer
// starts park the flow on the owning partition (fluidPending), and
// BarrierAdvance — installed as runtime.Coupled.FastForward — folds
// notes, admits pending flows, and materializes due completions only at
// barriers, where execution is single-threaded by construction. The
// fabric therefore fast-forwards only across windows in which every
// partition was eligible at the preceding barrier.
import (
	"math"
	"time"

	"lunasolar/internal/sim"
)

// FluidTrigger identifies why the fabric demoted (or refused to promote)
// fluid flows back to packet fidelity.
type FluidTrigger uint8

// Demotion triggers, in rough order of how locally they are detected.
const (
	TriggerNone     FluidTrigger = iota
	TriggerLoss                  // any packet drop (taildrop, linkdown, hang, rand, blackhole, ttl, ...) or endpoint RTO/fast-retransmit
	TriggerECN                   // a switch marked CE: queues crossed the ECN threshold
	TriggerQueue                 // an output queue grew past the fluid low-water mark
	TriggerNAK                   // an RDMA receiver NAKed (go-back-N under way)
	TriggerCNP                   // a DCQCN congestion notification arrived
	TriggerFailover              // switch hang/repair, link state change, or an endpoint path failover
	TriggerIncast                // max-min admission found a flow that cannot get its pace rate
	numFluidTriggers
)

func (t FluidTrigger) String() string {
	switch t {
	case TriggerNone:
		return "none"
	case TriggerLoss:
		return "loss"
	case TriggerECN:
		return "ecn"
	case TriggerQueue:
		return "queue"
	case TriggerNAK:
		return "nak"
	case TriggerCNP:
		return "cnp"
	case TriggerFailover:
		return "failover"
	case TriggerIncast:
		return "incast"
	}
	return "?"
}

// FluidConfig parameterizes the hybrid-fidelity mode.
type FluidConfig struct {
	// LowWaterBytes is the quiescence threshold: the fabric is eligible for
	// fluid fast-forward only while every output queue holds at most this
	// many bytes, and a queue growing past it demotes active fluid flows
	// (TriggerQueue).
	LowWaterBytes int
	// HoldOff is how long after the last fidelity trigger the fabric stays
	// ineligible, so a burst of packet-level trouble is fully simulated
	// before analytic mode resumes.
	HoldOff time.Duration
}

// DefaultFluidConfig returns the baseline hybrid-fidelity parameters:
// a 16 KiB low-water mark (a few MTUs — transient pacing overlap, not a
// standing queue) and a 100 µs trigger hold-off.
func DefaultFluidConfig() FluidConfig {
	return FluidConfig{LowWaterBytes: 16 << 10, HoldOff: 100 * time.Microsecond}
}

// FluidStats summarizes the table's lifetime activity.
type FluidStats struct {
	Admitted  uint64 // transfers that ran (at least partly) as fluid flows
	Rejected  uint64 // admission attempts refused (ineligible or infeasible)
	Demotions uint64 // flush-all events (any trigger folding with flows active, or incast at admission)
	Triggers  [numFluidTriggers]uint64
}

// fluidFlow is one bulk transfer's analytic state: a virtual paced sender
// on the exact packet grid t0 + k·iv that packet mode would use, plus the
// resolved path for bandwidth accounting and the fin packet's flight time.
type fluidFlow struct {
	id       uint64
	src, dst *Host
	svc      *BulkService
	chunk    int // modeled payload bytes per packet
	n        int // packets in the transfer
	wire     int // wire bytes per packet (chunk + headers + Eth)

	t0   sim.Time      // first packet's send time
	iv   time.Duration // pacing grid interval at the pace rate
	pace float64       // offered wire bits/sec
	tail time.Duration // fin flight time over an idle path (serialization + propagation + switch latencies)

	path []*Port // egress ports along the path, sender NIC first
	rate float64 // max-min share at last admission (diagnostics)

	next int       // next packet index to send when paced for real
	done sim.Timer // completion event (scheduled eagerly on serial fabrics)

	fluid   bool // currently advancing analytically
	tracked bool // still in the table's flow list (cleared when materialized)
}

// finSend returns the fin packet's grid send time.
func (f *fluidFlow) finSend() sim.Time { return f.t0 + sim.Time(time.Duration(f.n-1)*f.iv) }

// finArrival returns the fin packet's analytic arrival at the receiver.
func (f *fluidFlow) finArrival() sim.Time { return f.finSend().Add(f.tail) }

// sentBy returns how many grid packets have send times <= now.
func (f *fluidFlow) sentBy(now sim.Time) int {
	if now < f.t0 {
		return 0
	}
	if f.iv <= 0 {
		return f.n
	}
	k := int(now.Sub(f.t0)/f.iv) + 1
	if k > f.n {
		k = f.n
	}
	return k
}

// FlowTable is the fabric's fluid fast-forward state. All methods run at
// single-threaded points only: inside the owning engine's callbacks on
// serial fabrics, or on the barrier coordinator on coupled ones.
type FlowTable struct {
	fab *Fabric
	cfg FluidConfig

	flows     []*fluidFlow // active fluid flows, admission order
	holdUntil sim.Time
	seenMaxQ  int // last observed Fabric.MaxQueuedBytes high-water

	stats     FluidStats
	scheduled bool // events were scheduled during the current BarrierAdvance
}

// EnableFluid switches the fabric to hybrid fidelity: bulk transfers (see
// BulkService) may be fast-forwarded analytically while the fabric is
// quiescent. On a serial fabric the table installs itself as the engine's
// fast-forward hook; a coupled fabric must additionally wire
// FlowTable.BarrierAdvance as the coupled runner's FastForward callback.
//
//lint:barrier — setup before any window runs; installs the hook, never races one
func (f *Fabric) EnableFluid(cfg FluidConfig) *FlowTable {
	t := &FlowTable{fab: f, cfg: cfg, seenMaxQ: f.MaxQueuedBytes()}
	f.fluid = t
	f.fluidLow = cfg.LowWaterBytes
	if len(f.parts) == 1 {
		f.parts[0].eng.SetFastForward(t.engineHook)
	}
	return t
}

// Fluid returns the fabric's flow table, or nil in pure packet mode.
func (f *Fabric) Fluid() *FlowTable { return f.fluid }

// Stats returns the table's activity summary, folding in the
// per-partition trigger tallies (partition order).
func (t *FlowTable) Stats() FluidStats {
	s := t.stats
	for _, ps := range t.fab.parts {
		for i, n := range ps.fluidTrigN {
			s.Triggers[i] += n
		}
	}
	return s
}

// ActiveFlows returns how many flows are currently fluid.
func (t *FlowTable) ActiveFlows() int { return len(t.flows) }

// noteFluid records a fidelity trigger on the partition: plain field
// writes, so the drop/mark/failover paths that call it stay allocation-
// and lock-free. No-op in pure packet mode.
func (ps *fabricPart) noteFluid(tr FluidTrigger) {
	if ps.fab.fluid == nil {
		return
	}
	ps.fluidTrigN[tr]++
	now := ps.eng.Now()
	if !ps.fluidNoted {
		ps.fluidTrig = tr
		ps.fluidNoteAt = now
		ps.fluidNoted = true
	} else if now > ps.fluidNoteAt {
		ps.fluidNoteAt = now
	}
}

// engineHook is the serial-fabric fast-forward hook: before the engine
// commits to its next event, fold any trigger notes written by the event
// that just ran, demoting fluid flows at the note's timestamp. Completions
// are scheduled eagerly at admission on serial fabrics, so folding is the
// hook's whole job — the clock jump to the next (analytic) event is the
// heap's.
func (t *FlowTable) engineHook(now, until sim.Time) {
	if t.fab.parts[0].fluidNoted {
		t.fold()
	}
}

// fold merges the per-partition trigger notes into the table: bump the
// hold-off past the latest note and flush every fluid flow at that time.
// Runs single-threaded (engine hook or barrier) by construction.
//
//lint:barrier — engine fast-forward hook or barrier coordinator; never inside a window
func (t *FlowTable) fold() {
	noted := false
	var at sim.Time
	for _, ps := range t.fab.parts {
		if ps.fluidNoted {
			ps.fluidNoted = false
			ps.fluidTrig = TriggerNone
			if !noted || ps.fluidNoteAt > at {
				at = ps.fluidNoteAt
			}
			noted = true
		}
	}
	if !noted {
		return
	}
	if hu := at.Add(t.cfg.HoldOff); hu > t.holdUntil {
		t.holdUntil = hu
	}
	if len(t.flows) > 0 {
		t.flushAll()
	}
}

// flushAll demotes every fluid flow back to packet fidelity at the
// current virtual time, conserving bytes: packets whose grid send times
// have passed stay analytically delivered, and the sender resumes pacing
// real packets at exactly the next grid index. A flow whose packets are
// all sent keeps its completion event (its fin is analytically in
// flight). Runs at single-threaded points; at a barrier every engine's
// clock agrees, so partition 0's now is the flush time.
//
//lint:barrier — single-threaded flush point; every engine clock agrees here
func (t *FlowTable) flushAll() {
	now := t.fab.parts[0].eng.Now()
	t.stats.Demotions++
	for _, f := range t.flows {
		f.tracked = false
		k := f.sentBy(now)
		if k >= f.n {
			// Fully sent; the fin is in analytic flight. On serial fabrics
			// the completion event already exists; on coupled ones it has
			// not been materialized yet — do it now.
			if !f.done.Active() {
				t.materialize(f, now)
			}
			continue
		}
		f.done.Cancel()
		f.fluid = false
		f.svc.resume(f, k, now)
		t.scheduled = true
	}
	t.flows = t.flows[:0]
}

// materialize schedules the flow's analytic completion as a real event on
// the destination partition's engine (clamped to its current time — the
// recorded latency stays analytic either way).
func (t *FlowTable) materialize(f *fluidFlow, now sim.Time) {
	at := f.finArrival()
	if at < now {
		at = now
	}
	f.done = f.dst.part.eng.AtArg(at, fluidDone, f)
	t.scheduled = true
}

// remove drops f from the flow list, preserving admission order.
func (t *FlowTable) remove(f *fluidFlow) {
	for i, g := range t.flows {
		if g == f {
			t.flows = append(t.flows[:i], t.flows[i+1:]...)
			f.tracked = false
			return
		}
	}
}

// eligible reports whether the fabric is quiescent enough for fluid
// fast-forward: past the hold-off, no growth of the fabric-wide queue
// high-water mark since the last check (growth is the incast-onset signal
// — observing it re-arms the hold-off), no impairment active (hung or
// lossy switch, down port), and every output queue at or below the
// low-water mark. A queue at exactly LowWaterBytes is eligible; one byte
// over is not.
func (t *FlowTable) eligible(now sim.Time) bool {
	if now < t.holdUntil {
		return false
	}
	if q := t.fab.MaxQueuedBytes(); q > t.seenMaxQ {
		t.seenMaxQ = q
		t.holdUntil = now.Add(t.cfg.HoldOff)
		return false
	}
	low := t.cfg.LowWaterBytes
	for _, sw := range t.fab.Switches() {
		if !sw.alive || sw.dropRate > 0 || sw.blackholeFrac > 0 {
			return false
		}
		for _, p := range sw.ports {
			if !p.up || p.queuedBytes > low {
				return false
			}
		}
	}
	for _, h := range t.fab.hostList {
		for _, p := range h.ports {
			if !p.up || p.queuedBytes > low {
				return false
			}
		}
	}
	return true
}

// resolvePath walks the flow's packets' exact forwarding path — the NIC
// bonding hash at the host, then consistent-hash ECMP at each switch —
// accumulating the fin packet's idle-path flight time (serialization +
// propagation per link, pipeline latency per switch). Returns false if no
// route resolves.
func (t *FlowTable) resolvePath(f *fluidFlow) bool {
	probe := Packet{
		Src:     f.src.addr,
		Dst:     f.dst.addr,
		Proto:   BulkProto,
		SrcPort: bulkSrcPort(f.id),
		DstPort: bulkDstPort,
	}
	f.path = f.path[:0]
	f.tail = 0
	// Host NIC bonding: count-then-index over up ports, exactly Host.Send.
	up := 0
	for _, p := range f.src.ports {
		if p.up && p.peerUp() {
			up++
		}
	}
	if up == 0 {
		return false
	}
	var egress *Port
	k := int(FlowHash(&probe, 0x9e3779b9) % uint32(up))
	for _, p := range f.src.ports {
		if p.up && p.peerUp() {
			if k == 0 {
				egress = p
				break
			}
			k--
		}
	}
	for hops := 0; ; hops++ {
		if hops > 16 || egress == nil {
			return false
		}
		f.path = append(f.path, egress)
		f.tail += egress.serialization(f.wire) + egress.propDelay
		switch peer := egress.peer.owner.(type) {
		case *Host:
			if peer != f.dst {
				return false
			}
			return true
		case *Switch:
			if !peer.alive {
				return false
			}
			f.tail += peer.latency
			egress = peer.pick(peer.route(f.dst.addr), &probe)
		default:
			return false
		}
	}
}

// feasible runs progressive max-min water-filling over the existing fluid
// flows plus the candidate: per-flow demand is the pace rate, per-link
// capacity the port rate, and flows sharing a port share its capacity.
// Every flow's share is stored (diagnostics); the allocation is feasible
// when every flow reaches its demand — i.e. the fabric can carry all
// fluid flows at their offered rates with no standing queue.
func (t *FlowTable) feasible(cand *fluidFlow) bool {
	flows := make([]*fluidFlow, 0, len(t.flows)+1)
	flows = append(flows, t.flows...)
	flows = append(flows, cand)

	// Collect links in first-seen order; the map is index lookup only
	// (never iterated), so the solver is deterministic.
	var ports []*Port
	idx := make(map[*Port]int)
	flowLinks := make([][]int, len(flows))
	for i, f := range flows {
		for _, p := range f.path {
			li, ok := idx[p]
			if !ok {
				li = len(ports)
				idx[p] = li
				ports = append(ports, p)
			}
			flowLinks[i] = append(flowLinks[i], li)
		}
	}
	rem := make([]float64, len(ports))
	active := make([]int, len(ports))
	for li, p := range ports {
		rem[li] = p.rateBps
	}
	alloc := make([]float64, len(flows))
	frozen := make([]bool, len(flows))
	for i := range flows {
		for _, li := range flowLinks[i] {
			active[li]++
		}
	}
	const eps = 1e-6
	for left := len(flows); left > 0; {
		// The next water level increment: the tightest link's equal share,
		// capped by the smallest remaining demand.
		inc := math.Inf(1)
		for li := range ports {
			if active[li] > 0 {
				if s := rem[li] / float64(active[li]); s < inc {
					inc = s
				}
			}
		}
		for i, f := range flows {
			if !frozen[i] {
				if d := f.pace - alloc[i]; d < inc {
					inc = d
				}
			}
		}
		if math.IsInf(inc, 1) {
			break
		}
		if inc < 0 {
			inc = 0
		}
		for i := range flows {
			if frozen[i] {
				continue
			}
			alloc[i] += inc
			for _, li := range flowLinks[i] {
				rem[li] -= inc
			}
		}
		// Freeze satisfied flows, then flows pinned on a saturated link.
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			if alloc[i] >= f.pace*(1-eps) {
				frozen[i] = true
			} else {
				for _, li := range flowLinks[i] {
					if rem[li] <= ports[li].rateBps*eps {
						frozen[i] = true
						break
					}
				}
			}
			if frozen[i] {
				left--
				for _, li := range flowLinks[i] {
					active[li]--
				}
			}
		}
	}
	ok := true
	for i, f := range flows {
		f.rate = alloc[i]
		if alloc[i] < f.pace*(1-eps) {
			ok = false
		}
	}
	return ok
}

// admit attempts to promote f to a fluid flow at the current time. On
// refusal the caller paces f's packets for real. An infeasible admission
// with fluid flows active is incast onset: every fluid flow is flushed
// too, so the contention is simulated at packet fidelity.
//
//lint:barrier — reached only from Admit (serial fabric) or BarrierAdvance (coordinator)
func (t *FlowTable) admit(f *fluidFlow, now sim.Time) bool {
	if !t.eligible(now) {
		t.stats.Rejected++
		return false
	}
	if !t.resolvePath(f) {
		t.stats.Rejected++
		return false
	}
	if !t.feasible(f) {
		t.stats.Rejected++
		if len(t.flows) > 0 {
			t.fab.parts[0].fluidTrigN[TriggerIncast]++
			if hu := now.Add(t.cfg.HoldOff); hu > t.holdUntil {
				t.holdUntil = hu
			}
			t.flushAll()
		}
		return false
	}
	f.fluid = true
	f.tracked = true
	t.flows = append(t.flows, f)
	t.stats.Admitted++
	return true
}

// Admit is the serial-fabric admission path, called synchronously from
// the transfer's start event: fold pending notes, then admit and — if
// promoted — schedule the analytic completion eagerly, so the engine can
// jump straight to it.
//
//lint:barrier — serial fabric only: one engine, no concurrent window
func (t *FlowTable) Admit(f *fluidFlow) bool {
	t.fold()
	now := t.fab.parts[0].eng.Now()
	if !t.admit(f, now) {
		return false
	}
	t.materialize(f, now)
	return true
}

// BarrierAdvance is the coupled-fabric integration point, installed as
// runtime.Coupled.FastForward and called at every barrier with the
// runner's next-event horizon. It folds trigger notes (demoting at the
// barrier time if any fired), admits transfers that started during the
// last window (partition order, then start order — deterministic for any
// worker count), and materializes completions due within the upcoming
// window (all of them when no packet event remains). Returns true if any
// event was scheduled, so the runner recomputes its horizon.
//
//lint:barrier — the coupled runner's barrier callback itself
func (t *FlowTable) BarrierAdvance(next sim.Time, ok bool) bool {
	t.scheduled = false
	t.fold()
	now := t.fab.parts[0].eng.Now()
	for _, ps := range t.fab.parts {
		for _, f := range ps.fluidPending {
			if t.admit(f, now) {
				continue
			}
			f.svc.resume(f, 0, now)
			t.scheduled = true
		}
		ps.fluidPending = ps.fluidPending[:0]
	}
	horizon := sim.Time(math.MaxInt64)
	if ok {
		horizon = next.Add(t.fab.Lookahead())
	}
	for i := 0; i < len(t.flows); {
		f := t.flows[i]
		if f.finArrival() <= horizon {
			t.materialize(f, now)
			f.tracked = false
			t.flows = append(t.flows[:i], t.flows[i+1:]...)
			continue
		}
		i++
	}
	return t.scheduled
}
