package simnet

import (
	"testing"

	"lunasolar/internal/sim"
)

// TestForwardingAllocFree drives a pooled data packet across the fabric
// (host → ToR → spine → ToR → host) and asserts the steady-state forwarding
// path performs zero heap allocations: packets, link transfers, switch
// forwarding nodes and timer events all come from engine-owned free lists.
func TestForwardingAllocFree(t *testing.T) {
	eng := sim.NewEngine(7)
	cfg := DefaultConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 2
	cfg.CoresPerDC = 2
	fab := New(eng, cfg)

	a := fab.Host(0, 0, 0, 0)
	b := fab.Host(0, 1, 0, 0)
	a.Handler = func(pkt *Packet) { pkt.Release() }
	b.Handler = func(pkt *Packet) { pkt.Release() }

	send := func() {
		pkt := a.PacketPool().Get(4096)
		pkt.Dst = b.Addr()
		pkt.Proto = 17
		pkt.SrcPort = 30001
		pkt.DstPort = 7010
		pkt.Overhead = EthOverhead
		pkt.SentAt = eng.Now()
		if !a.Send(pkt) {
			pkt.Release()
		}
		eng.Run()
	}

	// Warm the pools (packet buffers, xfer/fwd nodes, event free list).
	for i := 0; i < 64; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
		t.Fatalf("steady-state fabric forwarding allocates %.1f objects per packet, want 0", allocs)
	}
	if n := fab.Pool().Outstanding(); n != 0 {
		t.Fatalf("pool reports %d leaked packets", n)
	}
}
