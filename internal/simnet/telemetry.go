package simnet

import (
	"os"
	"sort"
	"sync/atomic"

	"lunasolar/internal/stats"
)

// telemetryEnabled gates the observability layer's per-hop counters: port
// ECN-mark counts and queue high-water marks, folded into the metrics
// registry at export time. Off (the default) the forwarding path skips the
// counter updates entirely, so disabled-mode output is bit-identical to a
// build without the feature — the telemetry differential test enforces this
// the same way the wheel and copy-path hatches are enforced. On, the
// updates are plain field increments: zero allocations on the
// //lint:hotpath functions (AllocsPerRun-gated).
//
//lint:hatch telemetry
var telemetryEnabled atomic.Bool

func init() {
	telemetryEnabled.Store(os.Getenv("LUNASOLAR_TELEMETRY") != "")
}

// SetTelemetry flips the package-wide telemetry switch. Like SetZeroCopy it
// is a process-wide experiment switch, not a per-cluster knob: flip it
// before building clusters.
func SetTelemetry(on bool) { telemetryEnabled.Store(on) }

// TelemetryEnabled reports whether per-hop telemetry counters are active.
func TelemetryEnabled() bool { return telemetryEnabled.Load() }

// EcnMarks returns how many packets this port marked CE at enqueue.
// Counted only while telemetry is enabled.
func (p *Port) EcnMarks() uint64 { return p.ecnMarks }

// MaxQueuedBytes returns the output queue's high-water mark in bytes.
// Unlike the gated counters it is tracked unconditionally: the CC-matrix
// experiments report it with telemetry off.
func (p *Port) MaxQueuedBytes() int { return p.maxQueued }

// MaxQueuedBytes returns the deepest output-queue high-water mark across
// every switch port in the fabric — the congestion signature the CC-matrix
// experiments compare per controller. Switches are walked in tier order,
// so the scan is deterministic (and the max is order-independent anyway).
func (f *Fabric) MaxQueuedBytes() int {
	maxq := 0
	for _, sw := range f.Switches() {
		for _, p := range sw.ports {
			if p.maxQueued > maxq {
				maxq = p.maxQueued
			}
		}
	}
	return maxq
}

// RegisterInto exports the fabric's per-hop telemetry into reg:
// drops-by-reason counters under "<prefix>drops/<reason>", and per-switch
// forwarding counters, ECN marks (summed over the switch's ports) and queue
// high-water marks (max over ports) under "<prefix>sw/<name>/...". Reasons
// and switches are walked in sorted/tier order so the export is
// deterministic.
func (f *Fabric) RegisterInto(reg *stats.Registry, prefix string) {
	drops := f.Drops()
	reasons := make([]string, 0, len(drops))
	for k := range drops {
		reasons = append(reasons, k)
	}
	sort.Strings(reasons)
	for _, k := range reasons {
		reg.AddCounter(prefix+"drops/"+k, drops[k])
	}
	for _, sw := range f.Switches() {
		base := prefix + "sw/" + sw.Name() + "/"
		reg.AddCounter(base+"rx", sw.rx)
		reg.AddCounter(base+"forwarded", sw.forwarded)
		reg.AddCounter(base+"dropped", sw.dropped)
		var ecn uint64
		maxq := 0
		for _, p := range sw.ports {
			ecn += p.ecnMarks
			if p.maxQueued > maxq {
				maxq = p.maxQueued
			}
		}
		reg.AddCounter(base+"ecn_marks", ecn)
		reg.SetGauge(base+"max_queued_bytes", float64(maxq))
	}
}
