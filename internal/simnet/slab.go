package simnet

import (
	"os"
	"sync/atomic"
)

// zeroCopyEnabled selects where payload bytes live on the data path. On
// (the default), stacks share one reference-counted slab per payload:
// retransmits, multi-path re-injection and the blockserver's replica
// fan-out all point at the same buffer. Off (the -copy-path escape hatch,
// or LUNASOLAR_COPY_PATH in the environment), every hop deep-copies as the
// seed code did. The switch changes only where bytes live — packet sizes,
// event counts and all experiment output are byte-identical either way,
// which the copy-path differential test enforces.
//
//lint:hatch copy-path
var zeroCopyEnabled atomic.Bool

func init() {
	zeroCopyEnabled.Store(os.Getenv("LUNASOLAR_COPY_PATH") == "")
}

// SetZeroCopy flips the package-wide data-path default. Like
// sim.SetCoarseTimers it is a process-wide experiment switch, not a
// per-cluster knob: flip it before building clusters.
func SetZeroCopy(on bool) { zeroCopyEnabled.Store(on) }

// ZeroCopy reports whether the zero-copy data path is enabled.
func ZeroCopy() bool { return zeroCopyEnabled.Load() }

// Slab is a reference-counted payload buffer. One slab backs every copy a
// payload would otherwise need: the sender's record, each in-flight frame
// (including retransmits), and each replica of a fan-out. The last Release
// returns pool-owned buffers to the pool's size-class free lists.
//
// Ownership rules (see DESIGN.md "Payload ownership"):
//   - GetSlab/WrapSlab hand back one reference; the caller owns it.
//   - Anyone storing the slab beyond the current call must Retain, and the
//     holder of each reference must Release exactly once.
//   - Every reference counts against PacketPool.Outstanding(), so a leaked
//     reference fails the same gate as a leaked packet.
//
// Slabs are engine-owned like everything else in the pool: no atomics, no
// cross-shard sharing, deterministic LIFO reuse.
type Slab struct {
	buf   []byte
	refs  int32
	pool  *PacketPool
	owned bool // buf came from GetBuf and returns to the pool at zero refs
}

// Bytes returns the slab's payload bytes. The slice is valid until the
// caller's reference is released.
func (s *Slab) Bytes() []byte { return s.buf }

// Len returns the payload length.
func (s *Slab) Len() int { return len(s.buf) }

// Refs returns the current reference count (for tests and debugging).
func (s *Slab) Refs() int { return int(s.refs) }

// Retain takes an additional reference and returns s for chaining. Retain
// on nil returns nil so call sites need not branch on optional payloads.
func (s *Slab) Retain() *Slab {
	if s == nil {
		return nil
	}
	if s.refs <= 0 {
		panic("simnet: Retain on a released slab")
	}
	s.refs++
	s.pool.gets++
	return s
}

// Release drops one reference. The last release returns the buffer to the
// pool (when pool-owned) and recycles the Slab header. Release on nil is a
// no-op; releasing more references than were taken panics.
func (s *Slab) Release() {
	if s == nil {
		return
	}
	if s.refs <= 0 {
		panic("simnet: Release on a released slab")
	}
	s.refs--
	s.pool.puts++
	if s.refs == 0 {
		if s.owned {
			s.pool.PutBuf(s.buf)
		}
		pp := s.pool
		s.buf = nil
		s.owned = false
		pp.slabs = append(pp.slabs, s)
	}
}

// GetSlab returns a pool-owned slab of length n holding one reference.
func (pp *PacketPool) GetSlab(n int) *Slab {
	s := pp.getSlabHdr()
	s.buf = pp.GetBuf(n)
	s.owned = true
	return s
}

// WrapSlab adopts a caller-owned buffer (guest memory handed to the SA,
// a chunkserver's device store) into a refcounted slab without copying.
// The buffer is never returned to the pool's free lists — at zero
// references only the Slab header is recycled — so the caller keeps
// ownership of the backing array and must not reuse it while references
// remain.
func (pp *PacketPool) WrapSlab(b []byte) *Slab {
	s := pp.getSlabHdr()
	s.buf = b
	s.owned = false
	return s
}

func (pp *PacketPool) getSlabHdr() *Slab {
	var s *Slab
	if n := len(pp.slabs); n > 0 {
		s = pp.slabs[n-1]
		pp.slabs[n-1] = nil
		pp.slabs = pp.slabs[:n-1]
	} else {
		s = &Slab{pool: pp}
		pp.news++
	}
	s.refs = 1
	pp.gets++
	return s
}

// CountCopy records one payload copy of n bytes on the network data path.
// Stacks call it at every memcpy a payload crosses (record encode, frame
// build, receive materialisation, fan-out duplication), so the bench layer
// can report bytes-copied/op and the zero-copy gate can assert the hot
// path stopped re-walking bytes. The device-store copy at the chunkserver
// — the one write the data must make — is deliberately not counted.
func (pp *PacketPool) CountCopy(n int) {
	pp.copies++
	pp.copiedBytes += uint64(n)
}

// Copies returns how many payload copies the data path has made.
func (pp *PacketPool) Copies() uint64 { return pp.copies }

// CopiedBytes returns the total payload bytes copied on the data path.
func (pp *PacketPool) CopiedBytes() uint64 { return pp.copiedBytes }
