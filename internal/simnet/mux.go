package simnet

// Mux demultiplexes a host's inbound frames to multiple stacks by IP
// protocol number — storage servers run their frontend stack (TCP for
// kernel/Luna, UDP for Solar) alongside the backend RDMA stack on the same
// host.
type Mux struct {
	byProto map[uint8]func(*Packet)
}

// NewMux installs a protocol demultiplexer as the host's handler.
func NewMux(h *Host) *Mux {
	m := &Mux{byProto: map[uint8]func(*Packet){}}
	h.Handler = m.dispatch
	return m
}

// Handle registers fn for the given protocol number, replacing any previous
// registration.
func (m *Mux) Handle(proto uint8, fn func(*Packet)) {
	m.byProto[proto] = fn
}

func (m *Mux) dispatch(pkt *Packet) {
	if fn, ok := m.byProto[pkt.Proto]; ok {
		fn(pkt)
		return
	}
	pkt.Release() // no stack claims the protocol: the frame dies here
}
