package simnet

import (
	"time"

	"lunasolar/internal/sim"
	"lunasolar/internal/wire"
)

// Node is anything a port can belong to: a Host or a Switch.
type Node interface {
	// Receive handles a packet arriving on one of the node's ports.
	Receive(pkt *Packet, ingress *Port)
	// Alive reports whether the node is currently functioning.
	Alive() bool
	// nodeName is a diagnostic label.
	nodeName() string
}

// Port is one end of a link. Each port owns the egress direction: a
// store-and-forward output queue drained by a serializer at the link rate,
// with tail drop at the buffer limit, ECN marking above the threshold, and
// INT stamping at enqueue.
type Port struct {
	owner Node
	peer  *Port
	fab   *Fabric

	id        int // port index on the owner, for diagnostics
	hopID     uint16
	rateBps   float64
	propDelay time.Duration
	bufBytes  int
	ecnThresh int

	up bool

	busyUntil   sim.Time
	queuedBytes int
	txBytes     uint64
	taildrops   uint64
	sent        uint64

	// Telemetry counters, updated only while TelemetryEnabled (plain field
	// writes — the hotpath stays allocation-free either way).
	ecnMarks  uint64
	maxQueued int
}

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return p.peer }

// Owner returns the node the port belongs to.
func (p *Port) Owner() Node { return p.owner }

// Up reports whether the port is administratively and physically up.
func (p *Port) Up() bool { return p.up }

// SetUp changes the port's link state (both directions of a link fail
// independently; FailLink takes both down).
func (p *Port) SetUp(up bool) { p.up = up }

// QueuedBytes returns the current output-queue occupancy.
func (p *Port) QueuedBytes() int { return p.queuedBytes }

// TxBytes returns cumulative bytes serialized out of this port.
func (p *Port) TxBytes() uint64 { return p.txBytes }

// TailDrops returns packets lost to buffer overflow.
func (p *Port) TailDrops() uint64 { return p.taildrops }

// RateBps returns the link rate in bits/second.
func (p *Port) RateBps() float64 { return p.rateBps }

// serialization returns how long a frame of n bytes occupies the wire.
func (p *Port) serialization(n int) time.Duration {
	return time.Duration(float64(n*8) / p.rateBps * float64(time.Second))
}

// Send enqueues pkt on the port's output queue. It returns false if the
// packet was dropped (link down or tail drop). Delivery to the peer's owner
// happens after queueing + serialization + propagation.
//
//lint:hotpath
func (p *Port) Send(pkt *Packet) bool {
	eng := p.fab.Eng
	if !p.up || p.peer == nil || !p.peer.up {
		p.fab.countDrop("linkdown")
		return false
	}
	size := pkt.WireSize()
	if p.queuedBytes+size > p.bufBytes {
		p.taildrops++
		p.fab.countDrop("taildrop")
		return false
	}
	telemetry := telemetryEnabled.Load()
	// ECN: mark at enqueue if the queue already exceeds the threshold and
	// the flow is ECN-capable.
	if p.queuedBytes > p.ecnThresh && pkt.ECN == wire.ECNECT0 {
		pkt.ECN = wire.ECNCE
		if telemetry {
			p.ecnMarks++
		}
	}
	// INT: stamp telemetry at enqueue (queue depth seen by this packet).
	if pkt.INT != nil {
		pkt.INT.Push(wire.INTHop{
			HopID:   p.hopID,
			QLenB:   uint32(p.queuedBytes),
			TxBytes: p.txBytes,
			RateMbs: uint32(p.rateBps / 1e6),
			TSNanos: uint64(eng.Now()),
		})
	}
	p.queuedBytes += size
	if telemetry && p.queuedBytes > p.maxQueued {
		p.maxQueued = p.queuedBytes
	}
	now := eng.Now()
	start := p.busyUntil
	if start < now {
		start = now
	}
	ser := p.serialization(size)
	end := start.Add(ser)
	p.busyUntil = end
	p.sent++
	// One pooled transfer node backs both events; the dequeue event always
	// fires first (same or earlier time, lower sequence), and delivery
	// returns the node to the pool.
	x := p.fab.getXfer()
	x.port, x.pkt, x.size = p, pkt, size
	eng.AtArg(end, linkTxDone, x)
	eng.AtArg(end.Add(p.propDelay), linkDeliver, x)
	return true
}

// linkTxDone models the frame leaving the queue once serialized.
//
//lint:hotpath
func linkTxDone(a any) {
	x := a.(*linkXfer)
	x.port.queuedBytes -= x.size
	x.port.txBytes += uint64(x.size)
}

// linkDeliver hands the frame to the peer's owner after propagation.
//
//lint:hotpath
func linkDeliver(a any) {
	x := a.(*linkXfer)
	p, pkt := x.port, x.pkt
	p.fab.putXfer(x)
	peer := p.peer
	if peer.up && peer.owner.Alive() {
		peer.owner.Receive(pkt, peer)
	} else {
		p.fab.countDrop("deadpeer")
		pkt.Release()
	}
}

// connect wires two ports as a full-duplex link.
func connect(f *Fabric, a, b Node, rateBps float64, prop time.Duration, buf, ecn int) (*Port, *Port) {
	f.hopSeq++
	pa := &Port{owner: a, fab: f, rateBps: rateBps, propDelay: prop, bufBytes: buf, ecnThresh: ecn, up: true, hopID: f.hopSeq}
	f.hopSeq++
	pb := &Port{owner: b, fab: f, rateBps: rateBps, propDelay: prop, bufBytes: buf, ecnThresh: ecn, up: true, hopID: f.hopSeq}
	pa.peer, pb.peer = pb, pa
	return pa, pb
}

// Host is a server attached to the fabric via two ports (one to each ToR of
// its rack's pair). The attached network stack registers a Handler to
// receive frames.
type Host struct {
	fab     *Fabric
	addr    uint32
	ports   []*Port
	Handler func(pkt *Packet)
	name    string

	rxPackets uint64
	txPackets uint64
}

// Addr returns the host's fabric address.
func (h *Host) Addr() uint32 { return h.addr }

// Name returns the host's diagnostic name.
func (h *Host) Name() string { return h.name }

// Alive always reports true: the experiments fail the network, not hosts.
func (h *Host) Alive() bool { return true }

func (h *Host) nodeName() string { return h.name }

// Receive delivers a frame to the registered handler.
func (h *Host) Receive(pkt *Packet, _ *Port) {
	h.rxPackets++
	if h.Handler != nil {
		h.Handler(pkt)
	}
}

// RxPackets returns frames delivered to the host.
func (h *Host) RxPackets() uint64 { return h.rxPackets }

// TxPackets returns frames the host attempted to send.
func (h *Host) TxPackets() uint64 { return h.txPackets }

// Send transmits a packet, selecting among the host's up ports by flow
// hash (NIC bonding). It returns false if the frame was dropped locally.
func (h *Host) Send(pkt *Packet) bool {
	h.txPackets++
	pkt.Src = h.addr
	if pkt.TTL == 0 {
		pkt.TTL = 64
	}
	// NIC bonding reacts to link signal only: a ToR that hangs with its
	// ports electrically up keeps receiving (and losing) the flows hashed
	// to it — the scenario that hurts single-path stacks in Table 2.
	// Counting then indexing (instead of building a slice) keeps the
	// per-packet path allocation-free.
	up := 0
	for _, p := range h.ports {
		if p.up && p.peer.up {
			up++
		}
	}
	if up == 0 {
		h.fab.countDrop("hostdark")
		return false
	}
	k := int(FlowHash(pkt, 0x9e3779b9) % uint32(up))
	for _, p := range h.ports {
		if p.up && p.peer.up {
			if k == 0 {
				return p.Send(pkt)
			}
			k--
		}
	}
	return false
}

// PacketPool returns the fabric-owned packet pool for stacks attached to
// this host.
func (h *Host) PacketPool() *PacketPool { return h.fab.Pool() }

// Ports exposes the host's NIC ports (tests and failure drills use this).
func (h *Host) Ports() []*Port { return h.ports }
