package simnet

import (
	"time"

	"lunasolar/internal/sim"
	"lunasolar/internal/wire"
)

// Node is anything a port can belong to: a Host or a Switch.
type Node interface {
	// Receive handles a packet arriving on one of the node's ports.
	Receive(pkt *Packet, ingress *Port)
	// Alive reports whether the node is currently functioning.
	Alive() bool
	// nodeName is a diagnostic label.
	nodeName() string
	// partRef is the partition owning the node (see partition.go).
	partRef() *fabricPart
}

// Port is one end of a link. Each port owns the egress direction: a
// store-and-forward output queue drained by a serializer at the link rate,
// with tail drop at the buffer limit, ECN marking above the threshold, and
// INT stamping at enqueue.
//
//lint:partowned
type Port struct {
	owner Node
	peer  *Port
	fab   *Fabric
	part  *fabricPart // the owner's partition

	id        int // port index on the owner, for diagnostics
	hopID     uint16
	rateBps   float64
	propDelay time.Duration
	bufBytes  int
	ecnThresh int

	up bool

	// cut marks a port whose peer lives in another partition. Cut ports
	// hand frames to the peer partition's mailbox instead of scheduling
	// delivery locally, and read the published peer-state snapshot below
	// instead of the live peer (which only the peer's partition may touch
	// mid-window). Snapshots refresh at every barrier (PublishCutState),
	// so they lag live state by at most one lookahead — the time any real
	// link-state signal would need to cross the same wire.
	cut             bool
	pubPeerUp       bool
	pubPeerIsSwitch bool
	pubPeerAlive    bool
	pubPeerDownAt   sim.Time

	busyUntil   sim.Time
	queuedBytes int
	txBytes     uint64
	taildrops   uint64
	sent        uint64

	// Telemetry counters (plain field writes — the hotpath stays
	// allocation-free either way). ecnMarks counts only while
	// TelemetryEnabled; maxQueued tracks unconditionally so the CC-matrix
	// experiments can read queue depth with telemetry off.
	ecnMarks  uint64
	maxQueued int
}

// peerUp reports whether the link's far end is up, reading the published
// snapshot on cut ports and live state otherwise.
//
//lint:hotpath
func (p *Port) peerUp() bool {
	if p.cut {
		return p.pubPeerUp
	}
	return p.peer.up
}

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return p.peer }

// Cut reports whether the port's link crosses a partition boundary.
func (p *Port) Cut() bool { return p.cut }

// PartIndex returns the index of the partition owning the port's node.
func (p *Port) PartIndex() int { return p.part.idx }

// PropDelay returns the link's propagation delay.
func (p *Port) PropDelay() time.Duration { return p.propDelay }

// Owner returns the node the port belongs to.
func (p *Port) Owner() Node { return p.owner }

// Up reports whether the port is administratively and physically up.
func (p *Port) Up() bool { return p.up }

// SetUp changes the port's link state (both directions of a link fail
// independently; FailLink takes both down). A transition either way is a
// fluid fidelity trigger: path capacity just changed.
func (p *Port) SetUp(up bool) {
	if p.up == up {
		return
	}
	p.up = up
	p.part.noteFluid(TriggerFailover)
}

// QueuedBytes returns the current output-queue occupancy.
func (p *Port) QueuedBytes() int { return p.queuedBytes }

// TxBytes returns cumulative bytes serialized out of this port.
func (p *Port) TxBytes() uint64 { return p.txBytes }

// TailDrops returns packets lost to buffer overflow.
func (p *Port) TailDrops() uint64 { return p.taildrops }

// RateBps returns the link rate in bits/second.
func (p *Port) RateBps() float64 { return p.rateBps }

// serialization returns how long a frame of n bytes occupies the wire.
func (p *Port) serialization(n int) time.Duration {
	return time.Duration(float64(n*8) / p.rateBps * float64(time.Second))
}

// Send enqueues pkt on the port's output queue. It returns false if the
// packet was dropped (link down or tail drop). Delivery to the peer's owner
// happens after queueing + serialization + propagation.
//
//lint:hotpath
func (p *Port) Send(pkt *Packet) bool {
	eng := p.part.eng
	if !p.up || p.peer == nil || !p.peerUp() {
		p.part.countDrop("linkdown")
		return false
	}
	size := pkt.WireSize()
	if p.queuedBytes+size > p.bufBytes {
		p.taildrops++
		p.part.countDrop("taildrop")
		return false
	}
	telemetry := telemetryEnabled.Load()
	// ECN: mark at enqueue if the queue already exceeds the threshold and
	// the flow is ECN-capable.
	if p.queuedBytes > p.ecnThresh && pkt.ECN == wire.ECNECT0 {
		pkt.ECN = wire.ECNCE
		if telemetry {
			p.ecnMarks++
		}
		p.part.noteFluid(TriggerECN)
	}
	// INT: stamp telemetry at enqueue (queue depth seen by this packet).
	if pkt.INT != nil {
		pkt.INT.Push(wire.INTHop{
			HopID:   p.hopID,
			QLenB:   uint32(p.queuedBytes),
			TxBytes: p.txBytes,
			RateMbs: uint32(p.rateBps / 1e6),
			TSNanos: uint64(eng.Now()),
		})
	}
	p.queuedBytes += size
	// Queue high-water is tracked unconditionally (unlike the counters
	// above): the CC-matrix experiments report it with telemetry off, and
	// the compare-and-store is free on the hot path.
	if p.queuedBytes > p.maxQueued {
		p.maxQueued = p.queuedBytes
	}
	// Fluid low-water crossing: the queue just grew past the quiescence
	// threshold, so any analytically-advancing flow must drop back to
	// packet fidelity (fluidLow is zero in pure packet mode).
	if lw := p.fab.fluidLow; lw > 0 && p.queuedBytes > lw && p.queuedBytes-size <= lw {
		p.part.noteFluid(TriggerQueue)
	}
	now := eng.Now()
	start := p.busyUntil
	if start < now {
		start = now
	}
	ser := p.serialization(size)
	end := start.Add(ser)
	p.busyUntil = end
	p.sent++
	if p.cut {
		// Cross-partition link: local transmit accounting stays here (the
		// queue and serializer are this port's), but the frame itself is
		// handed — ownership and all — to the peer partition's mailbox,
		// stamped with its propagation-determined arrival time.
		x := p.part.getXfer()
		x.port, x.pkt, x.size = p, nil, size
		eng.AtArg(end, linkTxDoneCross, x)
		p.peer.part.inbox.Handoff(pkt, end.Add(p.propDelay), p.part, p.peer)
		return true
	}
	// One pooled transfer node backs both events; the dequeue event always
	// fires first (same or earlier time, lower sequence), and delivery
	// returns the node to the pool.
	x := p.part.getXfer()
	x.port, x.pkt, x.size = p, pkt, size
	eng.AtArg(end, linkTxDone, x)
	eng.AtArg(end.Add(p.propDelay), linkDeliver, x)
	return true
}

// linkTxDone models the frame leaving the queue once serialized.
//
//lint:hotpath
func linkTxDone(a any) {
	x := a.(*linkXfer)
	x.port.queuedBytes -= x.size
	x.port.txBytes += uint64(x.size)
}

// linkTxDoneCross is linkTxDone for cut ports, where no delivery event
// follows to recycle the transfer node.
//
//lint:hotpath
func linkTxDoneCross(a any) {
	x := a.(*linkXfer)
	x.port.queuedBytes -= x.size
	x.port.txBytes += uint64(x.size)
	x.port.part.putXfer(x)
}

// linkDeliver hands the frame to the peer's owner after propagation.
//
//lint:hotpath
func linkDeliver(a any) {
	x := a.(*linkXfer)
	p, pkt := x.port, x.pkt
	p.part.putXfer(x)
	peer := p.peer
	if peer.up && peer.owner.Alive() {
		peer.owner.Receive(pkt, peer)
	} else {
		p.part.countDrop("deadpeer")
		pkt.Release()
	}
}

// crossDeliver is linkDeliver's receiving-partition half: it runs on the
// ingress port's engine with a receiver-pool packet materialized at the
// barrier, applying the same liveness rules at the same virtual time as a
// local delivery would.
//
//lint:hotpath
func crossDeliver(a any) {
	x := a.(*linkXfer)
	p, pkt := x.port, x.pkt
	p.part.putXfer(x)
	if p.up && p.owner.Alive() {
		p.owner.Receive(pkt, p)
	} else {
		p.part.countDrop("deadpeer")
		pkt.Release()
	}
}

// connect wires two ports as a full-duplex link. Endpoints in different
// partitions make both ports cut.
func connect(f *Fabric, a, b Node, rateBps float64, prop time.Duration, buf, ecn int) (*Port, *Port) {
	f.hopSeq++
	pa := &Port{owner: a, fab: f, part: a.partRef(), rateBps: rateBps, propDelay: prop, bufBytes: buf, ecnThresh: ecn, up: true, hopID: f.hopSeq}
	f.hopSeq++
	pb := &Port{owner: b, fab: f, part: b.partRef(), rateBps: rateBps, propDelay: prop, bufBytes: buf, ecnThresh: ecn, up: true, hopID: f.hopSeq}
	pa.peer, pb.peer = pb, pa
	if pa.part != pb.part {
		pa.cut, pb.cut = true, true
		f.cutPorts = append(f.cutPorts, pa, pb)
	}
	return pa, pb
}

// Host is a server attached to the fabric via two ports (one to each ToR of
// its rack's pair). The attached network stack registers a Handler to
// receive frames.
type Host struct {
	fab     *Fabric
	part    *fabricPart
	addr    uint32
	ports   []*Port
	Handler func(pkt *Packet)
	name    string

	rxPackets uint64
	txPackets uint64
}

// Addr returns the host's fabric address.
func (h *Host) Addr() uint32 { return h.addr }

// Name returns the host's diagnostic name.
func (h *Host) Name() string { return h.name }

// Engine returns the engine owning the host's partition. Stacks and
// servers attached to this host must schedule on it.
func (h *Host) Engine() *sim.Engine { return h.part.eng }

// PartIndex returns the index of the partition owning the host.
func (h *Host) PartIndex() int { return h.part.idx }

func (h *Host) partRef() *fabricPart { return h.part }

// Alive always reports true: the experiments fail the network, not hosts.
func (h *Host) Alive() bool { return true }

func (h *Host) nodeName() string { return h.name }

// Receive delivers a frame to the registered handler.
func (h *Host) Receive(pkt *Packet, _ *Port) {
	h.rxPackets++
	if h.Handler != nil {
		h.Handler(pkt)
	}
}

// RxPackets returns frames delivered to the host.
func (h *Host) RxPackets() uint64 { return h.rxPackets }

// TxPackets returns frames the host attempted to send.
func (h *Host) TxPackets() uint64 { return h.txPackets }

// Send transmits a packet, selecting among the host's up ports by flow
// hash (NIC bonding). It returns false if the frame was dropped locally.
func (h *Host) Send(pkt *Packet) bool {
	h.txPackets++
	pkt.Src = h.addr
	if pkt.TTL == 0 {
		pkt.TTL = 64
	}
	// NIC bonding reacts to link signal only: a ToR that hangs with its
	// ports electrically up keeps receiving (and losing) the flows hashed
	// to it — the scenario that hurts single-path stacks in Table 2.
	// Counting then indexing (instead of building a slice) keeps the
	// per-packet path allocation-free.
	up := 0
	for _, p := range h.ports {
		if p.up && p.peerUp() {
			up++
		}
	}
	if up == 0 {
		h.part.countDrop("hostdark")
		return false
	}
	k := int(FlowHash(pkt, 0x9e3779b9) % uint32(up))
	for _, p := range h.ports {
		if p.up && p.peerUp() {
			if k == 0 {
				return p.Send(pkt)
			}
			k--
		}
	}
	return false
}

// FluidDisturb reports a stack-level fidelity signal (retransmit, NAK,
// CNP, path failover) against the host's partition. No-op in pure packet
// mode; in hybrid mode it demotes analytically-advancing flows at the
// next fold point, so endpoint recovery machinery always runs against
// packet-level state.
func (h *Host) FluidDisturb(tr FluidTrigger) { h.part.noteFluid(tr) }

// PacketPool returns the packet pool of the host's partition; stacks
// attached to this host draw from and return to it.
func (h *Host) PacketPool() *PacketPool { return &h.part.pool }

// Ports exposes the host's NIC ports (tests and failure drills use this).
func (h *Host) Ports() []*Port { return h.ports }
