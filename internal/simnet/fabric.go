package simnet

import (
	"fmt"
	"time"

	"lunasolar/internal/sim"
)

// Config sizes and parameterizes a fabric. The defaults model the paper's
// environment: 2×25GE hosts dual-homed to a ToR pair, a two-layer Clos per
// pod, a DC core layer, and DC routers for the region, with shallow-buffer
// switches ("shallow buffer switches are used within the region to save
// cost", §3.1).
type Config struct {
	DCs          int // datacenters in the region
	PodsPerDC    int
	RacksPerPod  int // one ToR pair per rack
	HostsPerRack int
	SpinesPerPod int
	CoresPerDC   int
	DCRouters    int // 0 disables the region tier

	HostLinkBps   float64 // per host NIC port
	FabricLinkBps float64 // switch-to-switch

	PropDelay     time.Duration // per intra-DC link
	InterDCDelay  time.Duration // core↔DCR links
	SwitchLatency time.Duration // pipeline latency per switch

	BufferBytes       int // per egress port (shallow)
	ECNThresholdBytes int

	// DetectDelay is how long routing neighbours take to exclude a hung
	// switch from ECMP groups. Hosts never detect hangs (no link signal).
	DetectDelay time.Duration
}

// DefaultConfig returns the baseline fabric used across the experiments.
func DefaultConfig() Config {
	return Config{
		DCs:               1,
		PodsPerDC:         2, // compute pod + storage pod
		RacksPerPod:       4,
		HostsPerRack:      4,
		SpinesPerPod:      4,
		CoresPerDC:        4,
		DCRouters:         0,
		HostLinkBps:       25e9,
		FabricLinkBps:     100e9,
		PropDelay:         200 * time.Nanosecond,
		InterDCDelay:      5 * time.Microsecond,
		SwitchLatency:     400 * time.Nanosecond,
		BufferBytes:       400 << 10, // shallow: 400 KiB per port
		ECNThresholdBytes: 100 << 10,
		DetectDelay:       200 * time.Millisecond,
	}
}

// Fabric is a built topology: hosts, switches, links, routing, and the
// failure-injection surface. A fabric spans one or more partitions (see
// partition.go); serial fabrics are simply the one-partition case, so the
// two construction paths share every invariant.
//
//lint:spanning
type Fabric struct {
	Eng *sim.Engine // partition 0's engine; the only engine of serial fabrics
	cfg Config

	plan  *PartPlan
	parts []*fabricPart

	hosts    map[uint32]*Host
	hostList []*Host
	tors     []*Switch
	spines   []*Switch
	cores    []*Switch
	dcrs     []*Switch
	byName   map[string]*Switch

	hopSeq   uint16
	cutPorts []*Port

	// Hybrid fidelity (flow.go): nil in pure packet mode. fluidLow caches
	// the low-water mark so Port.Send's trigger check is two field reads.
	fluid    *FlowTable
	fluidLow int
}

// Pool returns partition 0's engine-owned packet pool — the whole fabric's
// pool for serial fabrics. Partitioned callers account per partition via
// OutstandingAll/PartOutstanding.
func (f *Fabric) Pool() *PacketPool { return &f.parts[0].pool }

// New builds the fabric described by cfg on a single engine.
func New(eng *sim.Engine, cfg Config) *Fabric {
	return build([]*sim.Engine{eng}, cfg, PlanPartitions(cfg, 1))
}

// build wires engines, partitions, ports and pools before any window has
// run — every partition is still quiescent, so it may touch them all.
//
//lint:barrier — construction time: no window has started yet
func build(engs []*sim.Engine, cfg Config, plan *PartPlan) *Fabric {
	if cfg.DCs < 1 || cfg.PodsPerDC < 1 || cfg.RacksPerPod < 1 || cfg.HostsPerRack < 1 {
		panic("simnet: topology dimensions must be >= 1")
	}
	f := &Fabric{
		Eng:    engs[0],
		cfg:    cfg,
		plan:   plan,
		hosts:  map[uint32]*Host{},
		byName: map[string]*Switch{},
	}
	for i, eng := range engs {
		ps := &fabricPart{
			idx:   i,
			fab:   f,
			eng:   eng,
			rand:  eng.Rand.Fork(),
			drops: map[string]uint64{},
		}
		ps.inbox.part = ps
		f.parts = append(f.parts, ps)
	}
	// Build-time randomness (switch salts) always draws from partition 0's
	// stream, so a one-partition fabric consumes engine randomness exactly
	// like the pre-partitioning serial build did.
	salt := func() uint32 { return f.parts[0].rand.Uint32() }

	buf, ecn := cfg.BufferBytes, cfg.ECNThresholdBytes

	// DC routers (region tier).
	for i := 0; i < cfg.DCRouters; i++ {
		s := newSwitch(f, f.parts[plan.DCRPart(i)], fmt.Sprintf("dcr%d", i), TierDCR, cfg.SwitchLatency, salt())
		f.dcrs = append(f.dcrs, s)
		f.byName[s.name] = s
	}

	for dc := 0; dc < cfg.DCs; dc++ {
		// Cores of this DC.
		var dcCores []*Switch
		for c := 0; c < cfg.CoresPerDC; c++ {
			s := newSwitch(f, f.parts[plan.CorePart(dc, c)], fmt.Sprintf("core-d%d-%d", dc, c), TierCore, cfg.SwitchLatency, salt())
			f.cores = append(f.cores, s)
			f.byName[s.name] = s
			dcCores = append(dcCores, s)
			// Core ↔ every DCR.
			for _, dcr := range f.dcrs {
				pc, pd := connect(f, s, dcr, cfg.FabricLinkBps, cfg.InterDCDelay, buf, ecn)
				s.ports = append(s.ports, pc)
				dcr.ports = append(dcr.ports, pd)
				s.defaultUp = addPort(s.defaultUp, pc)
				key := dcKey(Addr(dc, 0, 0, 0))
				dcr.dcRoutes[key] = addPort(dcr.dcRoutes[key], pd)
			}
		}

		for pod := 0; pod < cfg.PodsPerDC; pod++ {
			// Spines of this pod.
			var podSpines []*Switch
			for sp := 0; sp < cfg.SpinesPerPod; sp++ {
				s := newSwitch(f, f.parts[plan.SpinePart(dc, pod, sp)], fmt.Sprintf("spine-d%dp%d-%d", dc, pod, sp), TierSpine, cfg.SwitchLatency, salt())
				f.spines = append(f.spines, s)
				f.byName[s.name] = s
				podSpines = append(podSpines, s)
				// Spine ↔ every core in the DC.
				for _, core := range dcCores {
					ps, pc := connect(f, s, core, cfg.FabricLinkBps, cfg.PropDelay, buf, ecn)
					s.ports = append(s.ports, ps)
					core.ports = append(core.ports, pc)
					s.defaultUp = addPort(s.defaultUp, ps)
					key := podKey(Addr(dc, pod, 0, 0))
					core.podRoutes[key] = addPort(core.podRoutes[key], pc)
				}
			}

			for rack := 0; rack < cfg.RacksPerPod; rack++ {
				rackPart := f.parts[plan.RackPart(dc, pod, rack)]
				// The ToR pair.
				pair := make([]*Switch, 2)
				for t := 0; t < 2; t++ {
					s := newSwitch(f, rackPart, fmt.Sprintf("tor-d%dp%dr%d-%c", dc, pod, rack, 'a'+t), TierToR, cfg.SwitchLatency, salt())
					f.tors = append(f.tors, s)
					f.byName[s.name] = s
					pair[t] = s
					// ToR ↔ every spine in the pod.
					for _, spine := range podSpines {
						pt, ps := connect(f, s, spine, cfg.FabricLinkBps, cfg.PropDelay, buf, ecn)
						s.ports = append(s.ports, pt)
						spine.ports = append(spine.ports, ps)
						s.defaultUp = addPort(s.defaultUp, pt)
						key := rackKey(Addr(dc, pod, rack, 0))
						spine.rackRoutes[key] = addPort(spine.rackRoutes[key], ps)
					}
				}

				for hi := 0; hi < cfg.HostsPerRack; hi++ {
					addr := Addr(dc, pod, rack, hi)
					h := &Host{
						fab:  f,
						part: rackPart,
						addr: addr,
						name: fmt.Sprintf("host-d%dp%dr%dh%d", dc, pod, rack, hi),
					}
					// Dual-homed: one port to each ToR of the pair; hosts
					// share their rack's partition, so these links never cut.
					for _, tor := range pair {
						ph, pt := connect(f, h, tor, cfg.HostLinkBps, cfg.PropDelay, buf, ecn)
						h.ports = append(h.ports, ph)
						tor.ports = append(tor.ports, pt)
						tor.hostRoutes[addr] = addPort(tor.hostRoutes[addr], pt)
					}
					f.hosts[addr] = h
					f.hostList = append(f.hostList, h)
				}
			}
		}
	}
	f.PublishCutState()
	return f
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Host returns the host at the given coordinates.
func (f *Fabric) Host(dc, pod, rack, host int) *Host {
	h := f.hosts[Addr(dc, pod, rack, host)]
	if h == nil {
		panic(fmt.Sprintf("simnet: no host at dc=%d pod=%d rack=%d host=%d", dc, pod, rack, host))
	}
	return h
}

// HostByAddr returns the host with the given address, or nil.
func (f *Fabric) HostByAddr(addr uint32) *Host { return f.hosts[addr] }

// Hosts returns all hosts in build order.
func (f *Fabric) Hosts() []*Host { return f.hostList }

// SwitchByName returns the named switch, or nil.
func (f *Fabric) SwitchByName(name string) *Switch { return f.byName[name] }

// ToR returns one switch of a rack's ToR pair (idx 0 or 1).
func (f *Fabric) ToR(dc, pod, rack, idx int) *Switch {
	return f.byName[fmt.Sprintf("tor-d%dp%dr%d-%c", dc, pod, rack, 'a'+idx)]
}

// Spine returns a pod spine.
func (f *Fabric) Spine(dc, pod, idx int) *Switch {
	return f.byName[fmt.Sprintf("spine-d%dp%d-%d", dc, pod, idx)]
}

// Core returns a DC core switch.
func (f *Fabric) Core(dc, idx int) *Switch {
	return f.byName[fmt.Sprintf("core-d%d-%d", dc, idx)]
}

// DCR returns a region DC-router.
func (f *Fabric) DCR(idx int) *Switch { return f.dcrs[idx] }

// Switches returns every switch grouped by tier order: ToRs, spines,
// cores, DCRs.
func (f *Fabric) Switches() []*Switch {
	out := make([]*Switch, 0, len(f.tors)+len(f.spines)+len(f.cores)+len(f.dcrs))
	out = append(out, f.tors...)
	out = append(out, f.spines...)
	out = append(out, f.cores...)
	out = append(out, f.dcrs...)
	return out
}

// RebootSwitch hangs sw now and repairs it after d. The repair is
// scheduled on the switch's owning engine, so failure injection composes
// with partitioned fabrics (callers already running on that engine, or at
// setup time before any window starts).
func (f *Fabric) RebootSwitch(sw *Switch, d time.Duration) {
	sw.Fail()
	sw.part.eng.Schedule(d, func() { sw.Repair() })
}

// FailLink takes both ends of the link attached to p down (link-down
// signal at both endpoints).
func (f *Fabric) FailLink(p *Port) {
	p.SetUp(false)
	if p.peer != nil {
		p.peer.SetUp(false)
	}
}

// RepairLink restores both ends.
func (f *Fabric) RepairLink(p *Port) {
	p.SetUp(true)
	if p.peer != nil {
		p.peer.SetUp(true)
	}
}

// Drops returns the drop counters by reason, merged across partitions in
// partition order.
func (f *Fabric) Drops() map[string]uint64 {
	out := make(map[string]uint64)
	for _, ps := range f.parts {
		for k, v := range ps.drops {
			out[k] += v
		}
	}
	return out
}

// TotalDrops sums all drop counters across partitions.
func (f *Fabric) TotalDrops() uint64 {
	var n uint64
	for _, ps := range f.parts {
		for _, v := range ps.drops {
			n += v
		}
	}
	return n
}
