package simnet

import (
	"testing"

	"lunasolar/internal/sim"
	"lunasolar/internal/stats"
)

// TestForwardingAllocFreeTelemetry is the telemetry-enabled twin of
// TestForwardingAllocFree: the per-hop counters must not cost a single
// allocation on the hotpath.
func TestForwardingAllocFreeTelemetry(t *testing.T) {
	prev := TelemetryEnabled()
	SetTelemetry(true)
	defer SetTelemetry(prev)

	eng := sim.NewEngine(7)
	cfg := DefaultConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 2
	cfg.CoresPerDC = 2
	fab := New(eng, cfg)

	a := fab.Host(0, 0, 0, 0)
	b := fab.Host(0, 1, 0, 0)
	a.Handler = func(pkt *Packet) { pkt.Release() }
	b.Handler = func(pkt *Packet) { pkt.Release() }

	send := func() {
		pkt := a.PacketPool().Get(4096)
		pkt.Dst = b.Addr()
		pkt.Proto = 17
		pkt.SrcPort = 30001
		pkt.DstPort = 7010
		pkt.Overhead = EthOverhead
		pkt.SentAt = eng.Now()
		if !a.Send(pkt) {
			pkt.Release()
		}
		eng.Run()
	}
	for i := 0; i < 64; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
		t.Fatalf("telemetry-enabled forwarding allocates %.1f objects per packet, want 0", allocs)
	}
	if n := fab.Pool().Outstanding(); n != 0 {
		t.Fatalf("pool reports %d leaked packets", n)
	}
}

// Queue high-water marks are tracked regardless of the telemetry hatch
// (the CC-matrix experiments read them with telemetry off); the gated
// counters (ECN marks) freeze when disabled.
func TestPortTelemetryCounters(t *testing.T) {
	prev := TelemetryEnabled()
	SetTelemetry(true)
	defer SetTelemetry(prev)

	eng := sim.NewEngine(3)
	cfg := DefaultConfig()
	cfg.RacksPerPod = 1
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 1
	cfg.CoresPerDC = 1
	fab := New(eng, cfg)
	a := fab.Host(0, 0, 0, 0)
	b := fab.Host(0, 0, 0, 1)
	b.Handler = func(pkt *Packet) { pkt.Release() }

	burst := func(n int) {
		for i := 0; i < n; i++ {
			pkt := a.PacketPool().Get(8192)
			pkt.Dst = b.Addr()
			pkt.Proto = 17
			pkt.SrcPort = uint16(40000 + i)
			pkt.DstPort = 7010
			pkt.Overhead = EthOverhead
			if !a.Send(pkt) {
				pkt.Release()
			}
		}
		eng.Run()
	}
	burst(32) // back-to-back sends pile up in the NIC queues
	var maxq int
	for _, p := range a.Ports() {
		if p.MaxQueuedBytes() > maxq {
			maxq = p.MaxQueuedBytes()
		}
	}
	if maxq < 2*8192 {
		t.Fatalf("high-water mark %dB never saw queue buildup from a 32-packet burst", maxq)
	}

	// Disabled: the high-water mark keeps tracking (it is ungated), so a
	// deeper burst must raise it.
	SetTelemetry(false)
	before := maxq
	burst(64)
	maxq = 0
	for _, p := range a.Ports() {
		if p.MaxQueuedBytes() > maxq {
			maxq = p.MaxQueuedBytes()
		}
	}
	if maxq < before {
		t.Fatalf("high-water mark shrank from %d to %d with telemetry disabled", before, maxq)
	}
}

// Fabric.RegisterInto exports drops-by-reason and per-switch counters with
// deterministic names.
func TestFabricRegisterInto(t *testing.T) {
	prev := TelemetryEnabled()
	SetTelemetry(true)
	defer SetTelemetry(prev)

	eng := sim.NewEngine(5)
	cfg := DefaultConfig()
	cfg.RacksPerPod = 1
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 1
	cfg.CoresPerDC = 1
	fab := New(eng, cfg)
	a := fab.Host(0, 0, 0, 0)
	b := fab.Host(0, 0, 0, 1)
	b.Handler = func(pkt *Packet) { pkt.Release() }

	pkt := a.PacketPool().Get(4096)
	pkt.Dst = b.Addr()
	pkt.Proto = 17
	pkt.SrcPort = 30001
	pkt.DstPort = 7010
	pkt.Overhead = EthOverhead
	if !a.Send(pkt) {
		pkt.Release()
	}
	eng.Run()

	reg := stats.NewRegistry()
	fab.RegisterInto(reg, "net/")
	var sawRx bool
	for _, m := range reg.Snapshot().Metrics {
		if m.Type == "counter" && m.Value > 0 &&
			len(m.Name) > 4 && m.Name[:7] == "net/sw/" {
			sawRx = true
		}
	}
	if !sawRx {
		t.Fatal("no per-switch counters exported")
	}
	// Export must be deterministic.
	reg2 := stats.NewRegistry()
	fab.RegisterInto(reg2, "net/")
	s1, s2 := reg.Snapshot(), reg2.Snapshot()
	if len(s1.Metrics) != len(s2.Metrics) {
		t.Fatal("repeat export differs")
	}
	for i := range s1.Metrics {
		if s1.Metrics[i].Name != s2.Metrics[i].Name || s1.Metrics[i].Value != s2.Metrics[i].Value {
			t.Fatalf("metric %d differs: %+v vs %+v", i, s1.Metrics[i], s2.Metrics[i])
		}
	}
}
