// Package rdma models an RDMA RC (reliable connection) transport — the
// backend-network stack behind Luna and Solar, and the frontend baseline of
// Figs. 14–15. The protocol machinery is real: per-QP packet sequence
// numbers with go-back-N recovery (the pre-Selective-Repeat RNICs of §3.1),
// cumulative ACKs and NAKs, hardware retransmission timers, and message
// reassembly. Host CPU is charged only per message (posting and polling
// work requests); the packet path is "hardware". The era's scalability
// cliff is modelled as an LRU QP-context cache on the NIC: beyond its
// capacity every packet pays a context-fetch penalty ("the overall
// throughput of the RNIC went down quickly after the number of connections
// was beyond 5,000").
package rdma

import (
	"time"

	"lunasolar/internal/cc"
	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// Proto is the IP protocol number the fabric demultiplexes RDMA frames on
// (RoCEv2 in production rides UDP/4791; a dedicated protocol number keeps
// host-side demux trivial here).
const Proto = 254

// ListenPort is the well-known service QP number.
const ListenPort = 6010

// Params is the RC model.
type Params struct {
	MTU        int // packet payload (4096)
	WindowPkts int // send window per QP (the inflight bound all controllers inherit)
	MinRTO     time.Duration
	MaxRTO     time.Duration

	PerRPCCPU time.Duration // post WQE + poll CQE per message

	QPCacheSize      int           // NIC connection-context cache
	CacheMissPenalty time.Duration // per packet on context miss

	// CC selects the congestion controller every QP runs. The zero value
	// (cc.KindStatic) is the hardware fixed window — byte-identical to the
	// stack before controllers were pluggable. KindDCQCN marks data
	// packets ECT and reacts to receiver CNPs by pacing; KindSwift reacts
	// to hop-scaled delay by shrinking the window.
	CC cc.Kind

	CNPInterval     time.Duration // min gap between CNPs per QP (DCQCN)
	SwiftBaseTarget time.Duration // Swift base target delay
	SwiftHopScale   time.Duration // Swift extra target per fabric hop
	SwiftNoPacing   bool          // revert Swift to window-only (no Rate-driven pacer)
}

// DefaultParams returns the RC model used in the comparisons.
func DefaultParams() Params {
	return Params{
		MTU:              4096,
		WindowPkts:       32,
		MinRTO:           time.Millisecond,
		MaxRTO:           100 * time.Millisecond,
		PerRPCCPU:        700 * time.Nanosecond,
		QPCacheSize:      5000,
		CacheMissPenalty: 1500 * time.Nanosecond,
		CNPInterval:      50 * time.Microsecond,
		SwiftBaseTarget:  12 * time.Microsecond,
		SwiftHopScale:    3 * time.Microsecond,
	}
}

// Stack is one RDMA endpoint. It implements transport.Stack.
type Stack struct {
	eng    *sim.Engine
	host   *simnet.Host
	cores  *sim.Server
	pcie   *sim.Channel
	params Params

	qps       map[qpKey]*qp
	pending   map[uint64]func(*transport.Response)
	handler   transport.Handler
	ids       transport.IDAlloc
	pool      *simnet.PacketPool
	nextQPN   uint16
	cacheLRU  []qpKey     // front = coldest
	ctxFetch  *sim.Server // serialized context-fetch engine (miss bandwidth)
	lineBytes float64     // NIC port rate, bytes/s (DCQCN's rate ceiling)

	CacheMisses uint64
	Retransmits uint64
	CNPsSent    uint64
	CNPsRecv    uint64
}

type qpKey struct {
	peer      uint32
	localQPN  uint16
	remoteQPN uint16
}

// New attaches an RDMA stack to a host. Pass a mux-managed host by calling
// mux.Handle(rdma.Proto, s.ReceivePacket) instead of letting New own the
// host handler.
func New(eng *sim.Engine, host *simnet.Host, cores *sim.Server, pcie *sim.Channel, params Params) *Stack {
	if params.MTU <= 0 {
		params.MTU = 4096
	}
	if params.WindowPkts <= 0 {
		params.WindowPkts = 32
	}
	if params.CNPInterval <= 0 {
		params.CNPInterval = 50 * time.Microsecond
	}
	if params.SwiftBaseTarget <= 0 {
		params.SwiftBaseTarget = 12 * time.Microsecond
	}
	if params.SwiftHopScale <= 0 {
		params.SwiftHopScale = 3 * time.Microsecond
	}
	s := &Stack{
		eng:      eng,
		host:     host,
		cores:    cores,
		pcie:     pcie,
		params:   params,
		qps:      map[qpKey]*qp{},
		pending:  map[uint64]func(*transport.Response){},
		nextQPN:  40000,
		ctxFetch: sim.NewServer(eng, "rnic-ctx", 1),
		pool:     host.PacketPool(),
	}
	if ports := host.Ports(); len(ports) > 0 {
		s.lineBytes = ports[0].RateBps() / 8
	}
	if host.Handler == nil {
		host.Handler = s.ReceivePacket
	}
	return s
}

// ccEnabled reports whether a reactive controller (anything beyond the
// static hardware window) is selected.
func (s *Stack) ccEnabled() bool { return s.params.CC != cc.KindStatic }

// newController builds one QP's congestion controller from the stack
// params. Every controller inherits the static baseline's inflight bound
// (WindowPkts × MTU) so the comparison isolates the reaction policy.
func (s *Stack) newController() cc.Controller {
	win := s.params.WindowPkts * s.params.MTU
	switch s.params.CC {
	case cc.KindDCQCN:
		return cc.NewDCQCN(s.params.MTU, win, s.lineBytes)
	case cc.KindSwift:
		sw := cc.NewSwift(s.params.MTU, win, win, s.params.SwiftBaseTarget, s.params.SwiftHopScale, s.lineBytes)
		if s.params.SwiftNoPacing {
			sw.SetPacing(false)
		}
		return sw
	default:
		return cc.NewStatic(win)
	}
}

// Name identifies the stack.
func (s *Stack) Name() string { return "rdma" }

// LocalAddr returns the host's fabric address.
func (s *Stack) LocalAddr() uint32 { return s.host.Addr() }

// SetHandler installs the server-side request handler.
func (s *Stack) SetHandler(h transport.Handler) { s.handler = h }

// QPs returns the number of live queue pairs.
func (s *Stack) QPs() int { return len(s.qps) }

// touchCache reports whether this QP's context is resident; a miss fetches
// it from host memory (evicting the coldest entry). Fetches serialize
// through the RNIC's single context engine, so beyond the cache size the
// fetch bandwidth — not the wire — caps throughput: the §3.1 cliff.
func (s *Stack) touchCache(k qpKey, then func()) {
	for i, e := range s.cacheLRU {
		if e == k {
			// Move to back (hottest).
			s.cacheLRU = append(append(s.cacheLRU[:i:i], s.cacheLRU[i+1:]...), k)
			then()
			return
		}
	}
	s.CacheMisses++
	// The context becomes resident only once the fetch completes: packets
	// arriving for this QP in the meantime miss too and queue behind the
	// engine — the thrash regime past the cache size.
	s.ctxFetch.Submit(s.params.CacheMissPenalty, func() {
		s.cacheLRU = append(s.cacheLRU, k)
		if len(s.cacheLRU) > s.params.QPCacheSize {
			s.cacheLRU = s.cacheLRU[1:]
		}
		then()
	})
}

func (s *Stack) qpTo(dst uint32) *qp {
	for k, q := range s.qps {
		if k.peer == dst && k.remoteQPN == ListenPort {
			return q
		}
	}
	s.nextQPN++
	k := qpKey{peer: dst, localQPN: s.nextQPN, remoteQPN: ListenPort}
	q := newQP(s, k)
	s.qps[k] = q
	return q
}

// Call implements transport.Client.
func (s *Stack) Call(dst uint32, req *transport.Message, done func(*transport.Response)) {
	id := s.ids.Next()
	s.pending[id] = done
	q := s.qpTo(dst)
	s.cores.Submit(s.params.PerRPCCPU, func() {
		q.sendMessage(id, req.Op, req, nil)
	})
}

func (s *Stack) reply(q *qp, id uint64, resp *transport.Response) {
	s.cores.Submit(s.params.PerRPCCPU, func() {
		q.sendMessage(id, wire.RPCWriteResp, nil, resp)
	})
}

// ReceivePacket feeds one inbound frame into the stack. The stack takes
// ownership: the frame is released once its bytes are consumed.
func (s *Stack) ReceivePacket(pkt *simnet.Packet) {
	var bth wire.TCPSeg
	if err := bth.Decode(pkt.Payload); err != nil {
		pkt.Release()
		return
	}
	k := qpKey{peer: pkt.Src, localQPN: bth.DstPort, remoteQPN: bth.SrcPort}
	q := s.qps[k]
	if q == nil {
		if bth.DstPort != ListenPort {
			pkt.Release()
			return // stale frame for a forgotten queue pair
		}
		q = newQP(s, k)
		s.qps[k] = q
	}
	rest := pkt.Payload[wire.TCPSegSize:]
	frag := pkt.Frag // zero-copy frames carry the chunk as a fragment
	ce := pkt.ECN == wire.ECNCE
	hops := 64 - int(pkt.TTL) // Host.Send seeds TTL=64; switches decrement
	// packetArrived copies what it keeps (assembler chunks), so the frame
	// can be released as soon as it returns.
	step := func() { q.packetArrived(bth, rest, frag, ce, hops); pkt.Release() }
	wait := func() { s.touchCache(k, step) }
	if s.pcie != nil && len(rest)+len(frag) > 0 {
		s.pcie.Transfer(2*(len(rest)+len(frag)), wait)
	} else {
		wait()
	}
}

// deliver hands a complete message up: requests to the handler, responses
// to their pending callback. crcs is the message's carried one-touch CRC
// list (nil when the sender attached none).
func (s *Stack) deliver(q *qp, rpcID uint64, msgType uint8, ebs wire.EBS, payload []byte, crcs []uint32) {
	s.cores.Submit(s.params.PerRPCCPU, func() {
		switch msgType {
		case wire.RPCWriteReq, wire.RPCReadReq:
			if s.handler == nil {
				return
			}
			req := &transport.Message{
				Op: msgType, VDisk: ebs.VDisk, SegmentID: ebs.SegmentID,
				LBA: ebs.LBA, Gen: ebs.Gen, Flags: ebs.Flags &^ wire.EBSFlagHasCRC,
				ReadLen: int(ebs.BlockLen), Data: payload, BlockCRCs: crcs,
			}
			s.handler(q.key.peer, req, func(resp *transport.Response) {
				s.reply(q, rpcID, resp)
			})
		default:
			if done, ok := s.pending[rpcID]; ok {
				delete(s.pending, rpcID)
				var rerr error
				if ebs.Flags&wire.EBSFlagReject != 0 {
					rerr = transport.ErrNotOwner
				}
				done(&transport.Response{
					Err:        rerr,
					Data:       payload,
					BlockCRCs:  crcs,
					ServerWall: time.Duration(ebs.ServerNS),
					SSDTime:    time.Duration(ebs.SSDNS),
				})
			}
		}
	})
}

var _ transport.Stack = (*Stack)(nil)

// CtxUtilization reports the context-fetch engine's busy fraction
// (diagnostics).
func (s *Stack) CtxUtilization() float64 { return s.ctxFetch.Utilization() }

// CtxServed reports completed context fetches (diagnostics).
func (s *Stack) CtxServed() uint64 { return s.ctxFetch.Served() }

// CtxQueue reports fetches waiting behind the context engine (diagnostics).
func (s *Stack) CtxQueue() int { return s.ctxFetch.QueueLen() }
