package rdma

import (
	"bytes"
	"testing"
	"time"

	"lunasolar/internal/cc"
	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

type pair struct {
	eng    *sim.Engine
	fab    *simnet.Fabric
	client *Stack
	server *Stack
}

func newPair(t *testing.T, p Params) *pair {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := simnet.DefaultConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 2
	cfg.CoresPerDC = 2
	fab := simnet.New(eng, cfg)
	client := New(eng, fab.Host(0, 0, 0, 0), sim.NewServer(eng, "c", 4), nil, p)
	server := New(eng, fab.Host(0, 1, 0, 0), sim.NewServer(eng, "s", 4), nil, p)
	return &pair{eng, fab, client, server}
}

func echo(src uint32, req *transport.Message, reply func(*transport.Response)) {
	if req.Op == wire.RPCReadReq {
		reply(&transport.Response{Data: make([]byte, req.ReadLen)})
		return
	}
	reply(&transport.Response{Data: req.Data})
}

func TestRPCRoundTrip(t *testing.T) {
	p := newPair(t, DefaultParams())
	p.server.SetHandler(echo)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 3)
	}
	var got []byte
	var at sim.Time
	p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: data},
		func(r *transport.Response) { got = r.Data; at = p.eng.Now() })
	p.eng.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("payload corrupted")
	}
	// RDMA 4KB RPC: close to base RTT + small per-message CPU: 10–30µs.
	if d := at.Duration(); d < 5*time.Microsecond || d > 35*time.Microsecond {
		t.Fatalf("latency = %v", d)
	}
}

func TestLargeMessageSegmentation(t *testing.T) {
	p := newPair(t, DefaultParams())
	p.server.SetHandler(echo)
	data := make([]byte, 128<<10)
	for i := range data {
		data[i] = byte(i * 11)
	}
	var got []byte
	p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: data},
		func(r *transport.Response) { got = r.Data })
	p.eng.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("128K payload corrupted")
	}
}

func TestGoBackNRecovery(t *testing.T) {
	p := newPair(t, DefaultParams())
	p.server.SetHandler(echo)
	p.fab.Spine(0, 0, 0).SetDropRate(0.1)
	p.fab.Spine(0, 0, 1).SetDropRate(0.1)
	const n = 30
	done := 0
	for i := 0; i < n; i++ {
		p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 32<<10)},
			func(r *transport.Response) { done++ })
	}
	p.eng.RunFor(30 * time.Second)
	if done != n {
		t.Fatalf("done %d/%d under loss", done, n)
	}
	if p.client.Retransmits == 0 {
		t.Fatal("no go-back-N retransmissions under loss")
	}
}

func TestManyConcurrentMessages(t *testing.T) {
	p := newPair(t, DefaultParams())
	p.server.SetHandler(echo)
	done := 0
	const n = 100
	for i := 0; i < n; i++ {
		p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCReadReq, ReadLen: 16384},
			func(r *transport.Response) {
				if len(r.Data) == 16384 {
					done++
				}
			})
	}
	p.eng.Run()
	if done != n {
		t.Fatalf("done %d/%d", done, n)
	}
}

func TestQPCacheCliff(t *testing.T) {
	// With a tiny QP cache, alternating across many peers must thrash,
	// adding the context-fetch penalty per packet.
	eng := sim.NewEngine(2)
	cfg := simnet.DefaultConfig()
	cfg.RacksPerPod = 4
	cfg.HostsPerRack = 4
	cfg.SpinesPerPod = 2
	cfg.CoresPerDC = 2
	fab := simnet.New(eng, cfg)

	params := DefaultParams()
	params.QPCacheSize = 4 // force thrash with >4 peers
	client := New(eng, fab.Host(0, 0, 0, 0), sim.NewServer(eng, "c", 4), nil, params)

	var servers []*Stack
	for rack := 0; rack < 4; rack++ {
		for hi := 0; hi < 4; hi++ {
			s := New(eng, fab.Host(0, 1, rack, hi), sim.NewServer(eng, "s", 4), nil, params)
			s.SetHandler(echo)
			servers = append(servers, s)
		}
	}
	done := 0
	for round := 0; round < 5; round++ {
		for _, s := range servers {
			s := s
			client.Call(s.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 4096)},
				func(r *transport.Response) { done++ })
		}
	}
	eng.Run()
	if done != 80 {
		t.Fatalf("done %d/80", done)
	}
	if client.CacheMisses < 20 {
		t.Fatalf("cache misses = %d; cliff not exercised", client.CacheMisses)
	}
}

func TestCacheHitNoPenalty(t *testing.T) {
	p := newPair(t, DefaultParams())
	p.server.SetHandler(echo)
	// Warm.
	p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 4096)},
		func(r *transport.Response) {})
	p.eng.Run()
	missesAfterWarm := p.client.CacheMisses
	for i := 0; i < 20; i++ {
		p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 4096)},
			func(r *transport.Response) {})
	}
	p.eng.Run()
	if p.client.CacheMisses != missesAfterWarm {
		t.Fatalf("extra cache misses on a hot QP: %d → %d", missesAfterWarm, p.client.CacheMisses)
	}
}

func TestContextFetchSerializes(t *testing.T) {
	// With a 1-entry cache and alternating peers, every packet fetches
	// context; the single fetch engine must serialize the data path, and
	// throughput collapses toward 1/penalty.
	eng := sim.NewEngine(9)
	cfg := simnet.DefaultConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 2
	fab := simnet.New(eng, cfg)

	params := DefaultParams()
	params.QPCacheSize = 1
	params.CacheMissPenalty = 10 * time.Microsecond // exaggerated for clarity

	server := New(eng, fab.Host(0, 1, 0, 0), sim.NewServer(eng, "s", 8), nil, params)
	server.SetHandler(echo)

	done := 0
	for i := 0; i < 2; i++ {
		client := New(eng, fab.Host(0, 0, 0, i), sim.NewServer(eng, "c", 2), nil, params)
		var issue func()
		n := 0
		issue = func() {
			if n >= 50 {
				return
			}
			n++
			client.Call(server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 4096)},
				func(*transport.Response) { done++; issue() })
		}
		issue()
	}
	eng.RunFor(time.Second)
	if done != 100 {
		t.Fatalf("done %d/100", done)
	}
	if server.CacheMisses < 100 {
		t.Fatalf("misses = %d; 1-entry cache should thrash", server.CacheMisses)
	}
	// 100 RPCs × ≥2 server fetches × 10µs serialized ≥ 2ms of virtual time.
	if eng.Now().Duration() < 2*time.Millisecond {
		t.Fatalf("completed in %v; fetch engine not serializing", eng.Now().Duration())
	}
}

func TestHotQPPathUnaffectedByColdPeers(t *testing.T) {
	// A hot QP within the cache must not pay fetch penalties even while a
	// cold crowd thrashes: misses are charged to the missing QPs.
	eng := sim.NewEngine(10)
	cfg := simnet.DefaultConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 4
	fab := simnet.New(eng, cfg)
	params := DefaultParams()
	params.QPCacheSize = 5000 // no pressure
	server := New(eng, fab.Host(0, 1, 0, 0), sim.NewServer(eng, "s", 8), nil, params)
	server.SetHandler(echo)
	client := New(eng, fab.Host(0, 0, 0, 0), sim.NewServer(eng, "c", 2), nil, params)
	var last sim.Time
	done := 0
	var issue func()
	issue = func() {
		if done >= 20 {
			return
		}
		client.Call(server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 4096)},
			func(*transport.Response) { done++; last = eng.Now(); issue() })
	}
	issue()
	eng.Run()
	// Warm path: ~20 RPCs in well under a millisecond.
	if last.Duration() > time.Millisecond {
		t.Fatalf("hot path took %v", last.Duration())
	}
	if server.CacheMisses > 2 {
		t.Fatalf("hot QP missed %d times", server.CacheMisses)
	}
}

// TestRewindRateLimitedPerRTT is the go-back-N regression test: a burst of
// duplicate NAKs landing within one RTT must trigger exactly one rewind.
// In-flight packets beyond a gap each provoke a NAK from the receiver;
// without the lastRewind clamp every one of them would restart the window
// from sndUna, turning a single drop into a retransmission storm.
func TestRewindRateLimitedPerRTT(t *testing.T) {
	p := newPair(t, DefaultParams())
	p.server.SetHandler(echo)
	done := false
	p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 256<<10)},
		func(r *transport.Response) { done = true })
	p.eng.RunFor(5 * time.Microsecond) // mid-transfer: window full, acks pending

	var q *qp
	for _, cq := range p.client.qps {
		q = cq
	}
	if q == nil || q.inflight() == 0 {
		t.Fatal("no in-flight QP to NAK")
	}
	before := p.client.Retransmits
	for i := 0; i < 5; i++ { // the NAK burst one gap produces
		q.packetArrived(wire.TCPSeg{Ack: q.sndUna, Flags: wire.TCPFlagACK | wire.TCPFlagRST}, nil, nil, false, 0)
	}
	if got := p.client.Retransmits - before; got != 1 {
		t.Fatalf("NAK burst within one RTT caused %d rewinds, want exactly 1", got)
	}
	p.eng.Run()
	if !done {
		t.Fatal("transfer did not complete after the rewind")
	}
}

// TestDCQCNReactsToCNP drives a transfer under the DCQCN controller and
// injects a CNP mid-flight: the sender's rate must drop below line rate
// and the stack counters must record the notification.
func TestDCQCNReactsToCNP(t *testing.T) {
	params := DefaultParams()
	params.CC = cc.KindDCQCN
	p := newPair(t, params)
	p.server.SetHandler(echo)
	done := false
	p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 256<<10)},
		func(r *transport.Response) { done = true })
	p.eng.RunFor(5 * time.Microsecond)

	var q *qp
	for _, cq := range p.client.qps {
		q = cq
	}
	if q == nil {
		t.Fatal("no client QP")
	}
	line := q.ctrl.Rate()
	if line <= 0 {
		t.Fatalf("DCQCN rate = %v, want line rate before congestion", line)
	}
	var frame [wire.CNPSize]byte
	cnp := wire.CNP{QPN: 1, PSN: uint32(q.sndUna), TSNanos: uint64(p.eng.Now())}
	cnp.Encode(frame[:])
	q.packetArrived(wire.TCPSeg{Flags: wire.TCPFlagACK | wire.TCPFlagECE}, frame[:], nil, false, 0)
	if got := q.ctrl.Rate(); got >= line {
		t.Fatalf("rate %v after CNP, want < %v", got, line)
	}
	if p.client.CNPsRecv != 1 {
		t.Fatalf("CNPsRecv = %d, want 1", p.client.CNPsRecv)
	}
	p.eng.Run()
	if !done {
		t.Fatal("transfer did not complete under DCQCN")
	}
}

// swiftIncastMaxQueue drives a many-to-one incast (6 compute-pod senders
// into one storage host) under Swift and returns the fabric's deepest
// output-queue high-water mark. Each sender first completes one small
// warm-up RPC so the delay target — and therefore the pacing rate — is
// established before the bulk writes land together.
func swiftIncastMaxQueue(t *testing.T, noPacing bool) int {
	t.Helper()
	eng := sim.NewEngine(1)
	fab := simnet.New(eng, simnet.DefaultConfig())
	p := DefaultParams()
	p.CC = cc.KindSwift
	p.SwiftBaseTarget = 200 * time.Microsecond
	p.SwiftNoPacing = noPacing
	server := New(eng, fab.Host(0, 1, 0, 0), sim.NewServer(eng, "srv", 4), nil, p)
	server.SetHandler(func(src uint32, req *transport.Message, reply func(*transport.Response)) {
		reply(&transport.Response{})
	})
	const senders = 6
	done := 0
	for i := 0; i < senders; i++ {
		c := New(eng, fab.Host(0, 0, i/4, i%4), sim.NewServer(eng, "cl", 4), nil, p)
		dst := server.LocalAddr()
		c.Call(dst, &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 4096)},
			func(*transport.Response) {
				c.Call(dst, &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 1<<20)},
					func(*transport.Response) { done++ })
			})
	}
	eng.RunFor(5 * time.Second)
	if done != senders {
		t.Fatalf("incast completed %d/%d writes (noPacing=%v)", done, senders, noPacing)
	}
	return fab.MaxQueuedBytes()
}

// TestSwiftPacingTamesIncast locks in the Rate-driven pacer: spreading each
// QP's window over the hop-scaled delay target must cut the incast queue
// high-water mark well below the window-only burst behaviour.
func TestSwiftPacingTamesIncast(t *testing.T) {
	paced := swiftIncastMaxQueue(t, false)
	burst := swiftIncastMaxQueue(t, true)
	t.Logf("incast max queued bytes: paced=%d window-only=%d", paced, burst)
	if paced >= burst {
		t.Fatalf("paced incast queue %d >= window-only %d", paced, burst)
	}
	if paced*2 > burst {
		t.Fatalf("paced incast queue %d not well under window-only %d", paced, burst)
	}
}
