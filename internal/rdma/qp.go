package rdma

import (
	"errors"
	"time"

	"lunasolar/internal/cc"
	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// pktHdrSize is the fixed header of every RC data packet: BTH (reusing the
// 20-byte segment header layout: ports = QPNs, Seq = PSN, Ack = cumulative
// PSN) + RPC header + EBS header.
const pktHdrSize = wire.TCPSegSize + wire.RPCSize + wire.EBSSize

// outPkt is one unacknowledged data packet, kept scattered: the RPC+EBS
// header image lives in a small pooled prefix encoded once at queue time,
// the chunk is referenced through a slab (shared with the message payload
// in zero-copy mode, a pooled deep copy behind -copy-path). Every
// (re)transmission builds its own frame — BTH + header copy + fragment —
// so nothing the pool reclaims is ever shared with an in-flight frame.
type outPkt struct {
	psn    uint32
	hdr    []byte       // pooled RPC+EBS header image (wire.HeadersSize)
	pay    []byte       // chunk bytes; subrange of slab
	slab   *simnet.Slab // reference held until the packet is acknowledged
	sentAt sim.Time     // NIC fire time of the latest transmission
	retxed bool         // Karn: retransmitted PSNs give no delay samples
}

// qp is one reliable-connection queue pair: go-back-N over PSNs.
type qp struct {
	s   *Stack
	key qpKey

	// Sender.
	sndQueue []outPkt // [acked... inflight... unsent]; index 0 has psn sndUna
	sndUna   uint32
	sndNxt   uint32 // next psn to (re)transmit; within queue bounds
	sndMax   uint32 // one past the highest psn ever transmitted (>= sndNxt)
	nextPSN  uint32 // psn for the next freshly built packet
	rtt      *transport.RTT
	retx     transport.Retransmitter

	samplePSN   uint32
	sampleAt    sim.Time
	sampleValid bool

	// Congestion control: the pluggable controller bounds inflight through
	// Window() and, for rate-based kinds, paces transmissions through the
	// pacer. The default static kind reproduces the old hardware window.
	ctrl  cc.Controller
	pacer cc.Pacer

	// Receiver.
	expectPSN uint32
	nakSent   bool // one NAK per gap (RC behaviour), cleared on in-order
	assembler map[uint64]*inMsg
	rxHops    uint8 // fabric hops data packets crossed, echoed on acks
	lastCNP   sim.Time

	lastRewind sim.Time // rate-limits go-back-N to once per RTT
}

type inMsg struct {
	ebs      wire.EBS
	msgType  uint8
	numPkts  int
	received int
	payload  []byte
	crcs     []uint32 // carried one-touch block CRCs, in PSN order
}

func newQP(s *Stack, k qpKey) *qp {
	q := &qp{
		s:         s,
		key:       k,
		rtt:       transport.NewRTT(s.params.MinRTO, s.params.MaxRTO),
		assembler: map[uint64]*inMsg{},
		ctrl:      s.newController(),
	}
	q.retx.Init(s.eng, q.rtt, -1, qpRTOExpired, q)
	q.pacer.Init(s.eng, qpPacerFire, q)
	return q
}

// qpPacerFire resumes the transmit loop when the pacing gap elapses.
func qpPacerFire(a any) { a.(*qp).pump() }

func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// sendMessage segments one RPC message into MTU packets and queues them.
// Each packet's RPC+EBS header image is encoded once into a pooled prefix;
// the chunk is attached by reference (zero-copy) or as one pooled copy
// (-copy-path). When the caller supplied per-block one-touch CRCs and the
// chunking aligns with them — MTU == BlockSize for data, or a single
// header-only packet carrying a fold — each packet's EBS header carries
// its block's CRC, flagged with EBSFlagHasCRC.
func (q *qp) sendMessage(id uint64, op uint8, req *transport.Message, resp *transport.Response) {
	var payload []byte
	var crcs []uint32
	var paySlab *simnet.Slab
	ebs := wire.EBS{Version: wire.EBSVersion}
	if req != nil {
		payload = req.Data
		crcs = req.BlockCRCs
		paySlab = req.Payload
		ebs.Op = op
		ebs.VDisk = req.VDisk
		ebs.SegmentID = req.SegmentID
		ebs.LBA = req.LBA
		ebs.Gen = req.Gen
		ebs.Flags = req.Flags &^ wire.EBSFlagHasCRC
		ebs.BlockLen = uint32(req.ReadLen)
	} else {
		payload = resp.Data
		crcs = resp.BlockCRCs
		ebs.ServerNS = uint32(resp.ServerWall.Nanoseconds())
		ebs.SSDNS = uint32(resp.SSDTime.Nanoseconds())
		if resp.Err != nil && errors.Is(resp.Err, transport.ErrNotOwner) {
			// Ownership rejection survives the wire as a header flag;
			// the client side rebuilds transport.ErrNotOwner from it.
			ebs.Flags = wire.EBSFlagReject
		}
	}
	mtu := q.s.params.MTU
	numPkts := (len(payload) + mtu - 1) / mtu
	if numPkts == 0 {
		numPkts = 1
	}
	if len(crcs) != numPkts || (len(payload) > 0 && mtu != wire.BlockSize) {
		crcs = nil // carriage only when packets and CRC entries correspond 1:1
	}
	// Zero-copy: chunks reference the message payload through one shared
	// slab (the caller's, when it already has one) instead of being copied.
	var ioSlab *simnet.Slab
	if simnet.ZeroCopy() && len(payload) > 0 {
		if paySlab != nil {
			ioSlab = paySlab.Retain()
		} else {
			ioSlab = q.s.pool.WrapSlab(payload)
		}
	}
	baseFlags := ebs.Flags
	for i := 0; i < numPkts; i++ {
		lo := i * mtu
		hi := lo + mtu
		if hi > len(payload) {
			hi = len(payload)
		}
		chunk := payload[lo:hi]
		ebs.Flags = baseFlags
		ebs.BlockCRC = 0
		if crcs != nil {
			ebs.BlockCRC = crcs[i]
			ebs.Flags |= wire.EBSFlagHasCRC
		}
		rpc := wire.RPC{RPCID: id, PktID: uint16(i), NumPkts: uint16(numPkts), MsgType: op}
		if resp != nil {
			rpc.MsgType = wire.RPCWriteResp
		}
		p := outPkt{psn: q.nextPSN, hdr: q.s.pool.GetBuf(wire.HeadersSize)}
		if err := wire.EncodeHeaders(p.hdr, &rpc, &ebs); err != nil {
			panic(err)
		}
		if len(chunk) > 0 {
			if ioSlab != nil {
				p.slab = ioSlab.Retain()
				p.pay = chunk
			} else {
				p.slab = q.s.pool.GetSlab(len(chunk))
				p.pay = p.slab.Bytes()
				copy(p.pay, chunk)
				q.s.pool.CountCopy(len(chunk))
			}
		}
		q.sndQueue = append(q.sndQueue, p)
		q.nextPSN++
	}
	if ioSlab != nil {
		ioSlab.Release()
	}
	q.pump()
}

func (q *qp) inflight() int { return int(q.sndNxt - q.sndUna) }

// pump transmits packets while the controller's window — and, for
// rate-based controllers, its pacing budget — allows. With the default
// static controller the window is WindowPkts×MTU and Rate() is 0, which
// reduces to the old fixed-window loop exactly.
func (q *qp) pump() {
	winPkts := q.ctrl.Window() / q.s.params.MTU
	if winPkts < 1 {
		winPkts = 1
	}
	for q.inflight() < winPkts {
		idx := int(q.sndNxt - q.sndUna)
		if idx >= len(q.sndQueue) {
			break
		}
		if rate := q.ctrl.Rate(); rate > 0 {
			now := q.s.eng.Now()
			if !q.pacer.Ready(now) {
				q.pacer.Arm(now)
				break
			}
			q.pacer.Charge(now, pktHdrSize+len(q.sndQueue[idx].pay), rate)
		}
		psn := q.sndQueue[idx].psn
		if !q.sampleValid {
			q.samplePSN = psn + 1
			q.sampleAt = q.s.eng.Now()
			q.sampleValid = true
		}
		q.transmit(psn)
		q.sndNxt++
		if seqLT(q.sndMax, q.sndNxt) {
			q.sndMax = q.sndNxt
		}
	}
	if q.inflight() > 0 && !q.retx.Active() {
		q.retx.Arm()
	}
}

// lookup returns the queued packet holding psn, or nil when a cumulative
// ack already retired it.
func (q *qp) lookup(psn uint32) *outPkt {
	idx := int(int32(psn - q.sndUna))
	if idx < 0 || idx >= len(q.sndQueue) {
		return nil
	}
	return &q.sndQueue[idx]
}

// transmit sends the queued packet holding psn, paying cache and PCIe
// costs. The frame is built only when the NIC actually fires: a cumulative
// ack racing the cache/PCIe crossing may retire the PSN first, in which
// case nothing goes out — an RNIC never replays acknowledged PSNs, and the
// packet's pooled header and payload reference are already reclaimed.
func (q *qp) transmit(psn uint32) {
	send := func() {
		p := q.lookup(psn)
		if p == nil {
			return
		}
		bth := wire.TCPSeg{
			SrcPort: q.key.localQPN,
			DstPort: q.key.remoteQPN,
			Seq:     psn,
			Ack:     q.expectPSN,
			Flags:   wire.TCPFlagACK,
		}
		// Every transmission builds its own frame: BTH and header image are
		// private to the frame, the chunk rides as a refcounted fragment —
		// the RNIC's gather DMA from registered memory.
		pkt := q.s.pool.Get(pktHdrSize)
		if err := bth.Encode(pkt.Payload); err != nil {
			panic(err)
		}
		copy(pkt.Payload[wire.TCPSegSize:], p.hdr)
		if p.slab != nil {
			pkt.AttachFrag(p.slab, p.pay)
		}
		pkt.Dst = q.key.peer
		pkt.Proto = Proto
		pkt.SrcPort = q.key.localQPN
		pkt.DstPort = q.key.remoteQPN
		pkt.Overhead = simnet.EthOverhead + wire.IPv4Size
		pkt.SentAt = q.s.eng.Now()
		if q.s.params.CC == cc.KindDCQCN {
			// DCQCN data is ECN-capable: switches CE-mark instead of only
			// tail-dropping, and the receiver answers marks with CNPs.
			pkt.ECN = wire.ECNECT0
		}
		p.sentAt = pkt.SentAt
		if !q.s.host.Send(pkt) {
			pkt.Release()
		}
	}
	step := func() {
		p := q.lookup(psn)
		if p == nil {
			return
		}
		data := len(p.pay)
		if q.s.pcie != nil && data > 0 {
			q.s.pcie.Transfer(2*data, send)
		} else {
			send()
		}
	}
	q.s.touchCache(q.key, step)
}

// control sends a pure ACK or NAK frame.
func (q *qp) control(nak bool) {
	var flags uint8 = wire.TCPFlagACK
	if nak {
		flags |= wire.TCPFlagRST
	}
	bth := wire.TCPSeg{
		SrcPort: q.key.localQPN,
		DstPort: q.key.remoteQPN,
		Seq:     q.nextPSN,
		Ack:     q.expectPSN,
		Flags:   flags,
	}
	if q.s.ccEnabled() {
		// Echo the hop count data packets crossed so the sender's
		// controller can scale its delay target (Swift). The field is
		// unused (0) under the static baseline, keeping frames identical.
		bth.Window = uint16(q.rxHops)
	}
	pkt := q.s.pool.Get(wire.TCPSegSize)
	if err := bth.Encode(pkt.Payload); err != nil {
		panic(err)
	}
	pkt.Dst = q.key.peer
	pkt.Proto = Proto
	pkt.SrcPort = q.key.localQPN
	pkt.DstPort = q.key.remoteQPN
	pkt.Overhead = simnet.EthOverhead + wire.IPv4Size
	pkt.SentAt = q.s.eng.Now()
	if !q.s.host.Send(pkt) {
		pkt.Release()
	}
}

// maybeCNP emits one congestion notification toward the data sender,
// rate-limited per QP so a burst of CE-marked arrivals folds into a single
// signal (the RNIC's CNP moderation timer).
func (q *qp) maybeCNP() {
	now := q.s.eng.Now()
	if q.lastCNP != 0 && now.Sub(q.lastCNP) < q.s.params.CNPInterval {
		return
	}
	q.lastCNP = now
	q.s.CNPsSent++
	bth := wire.TCPSeg{
		SrcPort: q.key.localQPN,
		DstPort: q.key.remoteQPN,
		Seq:     q.nextPSN,
		Ack:     q.expectPSN,
		Flags:   wire.TCPFlagACK | wire.TCPFlagECE,
	}
	cnp := wire.CNP{QPN: q.key.remoteQPN, PSN: q.expectPSN, TSNanos: uint64(now)}
	pkt := q.s.pool.Get(wire.TCPSegSize + wire.CNPSize)
	if err := bth.Encode(pkt.Payload); err != nil {
		panic(err)
	}
	if err := cnp.Encode(pkt.Payload[wire.TCPSegSize:]); err != nil {
		panic(err)
	}
	pkt.Dst = q.key.peer
	pkt.Proto = Proto
	pkt.SrcPort = q.key.localQPN
	pkt.DstPort = q.key.remoteQPN
	pkt.Overhead = simnet.EthOverhead + wire.IPv4Size
	pkt.SentAt = now
	if !q.s.host.Send(pkt) {
		pkt.Release()
	}
}

// qpRTOExpired adapts the shared retransmitter's expiry to the QP's
// go-back-N policy.
func qpRTOExpired(a any) { a.(*qp).onRTO() }

// onRTO rewinds to the first unacknowledged PSN (go-back-N).
func (q *qp) onRTO() {
	if q.inflight() == 0 && int(q.sndNxt-q.sndUna) >= len(q.sndQueue) {
		return
	}
	q.retx.RecordTimeout()
	q.ctrl.OnTimeout()
	q.s.host.FluidDisturb(simnet.TriggerLoss)
	q.goBackN()
	q.retx.Arm()
}

func (q *qp) goBackN() {
	// At most one rewind per RTT: in-flight packets beyond the gap keep
	// arriving out of order and would otherwise trigger rewind storms.
	now := q.s.eng.Now()
	srtt := q.rtt.SRTT()
	if srtt <= 0 {
		srtt = q.s.params.MinRTO
	}
	if q.lastRewind != 0 && now.Sub(q.lastRewind) < srtt {
		return
	}
	q.lastRewind = now
	q.s.Retransmits++
	q.sampleValid = false // Karn: retransmitted PSNs give no samples
	for i := 0; i < q.inflight() && i < len(q.sndQueue); i++ {
		q.sndQueue[i].retxed = true
	}
	q.sndNxt = q.sndUna
	q.pump()
}

// releasePkt returns a retired packet's pooled header and payload
// reference; the wipe keeps the recycled slice backing from pinning them.
func (q *qp) releasePkt(p *outPkt) {
	if p.hdr != nil {
		q.s.pool.PutBuf(p.hdr)
	}
	if p.slab != nil {
		p.slab.Release()
	}
	*p = outPkt{}
}

// packetArrived processes one inbound frame on this QP. chunk is the data
// fragment for zero-copy frames (nil for flat or control frames). ce
// reports a CE mark on the frame; hops is the fabric hop count it crossed.
func (q *qp) packetArrived(bth wire.TCPSeg, rest, chunk []byte, ce bool, hops int) {
	if bth.Flags&wire.TCPFlagECE != 0 {
		// CNP: a pure congestion signal, carrying no ack or data. Feed the
		// controller and stop — the payload is the wire.CNP frame.
		var cnp wire.CNP
		if cnp.Decode(rest) != nil {
			return
		}
		q.s.CNPsRecv++
		q.s.host.FluidDisturb(simnet.TriggerCNP)
		q.ctrl.OnAck(cc.Feedback{CNP: true})
		q.pump() // rate changed; the pacer re-evaluates
		return
	}
	// Acknowledgment side (cumulative; NAK flagged with RST). Validity is
	// bounded by the highest PSN ever transmitted, not sndNxt: a go-back-N
	// rewind pulls sndNxt below packets the receiver already holds, and its
	// duplicate re-ACKs legitimately acknowledge past the rewound pointer —
	// dropping them would wedge the QP in a retransmit/re-ACK standoff.
	ack := bth.Ack
	if seqLT(q.sndUna, ack) && !seqLT(q.sndMax, ack) {
		now := q.s.eng.Now()
		n := int(ack - q.sndUna)
		acked := 0
		var delay time.Duration
		for i := 0; i < n; i++ {
			p := &q.sndQueue[i]
			acked += pktHdrSize + len(p.pay)
			if !p.retxed && p.sentAt != 0 {
				delay = now.Sub(p.sentAt) // newest retired clean sample wins
			}
			q.releasePkt(p)
		}
		q.sndQueue = q.sndQueue[n:]
		q.sndUna = ack
		if seqLT(q.sndNxt, ack) {
			q.sndNxt = ack // the ack retired PSNs the rewind meant to resend
		}
		q.retx.RecordAck()
		if q.sampleValid && !seqLT(ack, q.samplePSN) {
			q.rtt.Observe(now.Sub(q.sampleAt))
			q.sampleValid = false
		}
		q.ctrl.OnAck(cc.Feedback{
			RTT:        q.rtt.SRTT(),
			AckedBytes: acked,
			Delay:      delay,
			Hops:       int(bth.Window), // receiver-echoed (0 under static)
		})
		if q.inflight() > 0 || len(q.sndQueue) > 0 {
			q.retx.Arm()
			q.pump()
		} else {
			q.retx.Disarm()
		}
	}
	if bth.Flags&wire.TCPFlagRST != 0 && ack == q.sndUna && q.inflight() > 0 {
		// NAK: receiver saw a gap. Rewind immediately.
		q.s.host.FluidDisturb(simnet.TriggerNAK)
		q.ctrl.OnLoss()
		q.goBackN()
	}

	if len(rest) == 0 {
		return
	}
	// Data side: record congestion state for the feedback the acks carry.
	if q.s.ccEnabled() {
		q.rxHops = uint8(hops)
		if ce && q.s.params.CC == cc.KindDCQCN {
			q.maybeCNP()
		}
	}
	// Strict in-order acceptance (go-back-N receiver).
	if bth.Seq != q.expectPSN {
		if seqLT(q.expectPSN, bth.Seq) {
			if !q.nakSent {
				q.control(true) // one NAK per gap
				q.nakSent = true
			}
		} else {
			q.control(false) // duplicate: re-ACK
		}
		return
	}
	q.expectPSN++
	q.nakSent = false
	q.control(false)

	var rpc wire.RPC
	if err := rpc.Decode(rest); err != nil {
		return
	}
	var ebs wire.EBS
	if err := ebs.Decode(rest[wire.RPCSize:]); err != nil {
		return
	}
	if chunk == nil {
		chunk = rest[wire.RPCSize+wire.EBSSize:]
	}
	m := q.assembler[rpc.RPCID]
	if m == nil {
		m = &inMsg{ebs: ebs, msgType: rpc.MsgType, numPkts: int(rpc.NumPkts)}
		q.assembler[rpc.RPCID] = m
	}
	// Message reassembly is the receive side's one materialisation: chunks
	// of a multi-packet message must land contiguously for the handler. It
	// happens in both data-path modes and is counted as such.
	m.payload = append(m.payload, chunk...)
	if len(chunk) > 0 {
		q.s.pool.CountCopy(len(chunk))
	}
	// Carried one-touch CRCs arrive in PSN order (strict in-order receiver);
	// the set is usable only if every packet of the message carried one.
	if ebs.Flags&wire.EBSFlagHasCRC != 0 {
		m.crcs = append(m.crcs, ebs.BlockCRC)
	}
	m.received++
	if m.received == m.numPkts {
		delete(q.assembler, rpc.RPCID)
		crcs := m.crcs
		if len(crcs) != m.numPkts {
			crcs = nil
		}
		q.s.deliver(q, rpc.RPCID, m.msgType, m.ebs, m.payload, crcs)
	}
}
