package rdma

import (
	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// pktHdrSize is the fixed header of every RC data packet: BTH (reusing the
// 20-byte segment header layout: ports = QPNs, Seq = PSN, Ack = cumulative
// PSN) + RPC header + EBS header.
const pktHdrSize = wire.TCPSegSize + wire.RPCSize + wire.EBSSize

// outPkt is one unacknowledged data packet.
type outPkt struct {
	psn     uint32
	payload []byte // full frame payload including headers
}

// qp is one reliable-connection queue pair: go-back-N over PSNs.
type qp struct {
	s   *Stack
	key qpKey

	// Sender.
	sndQueue []outPkt // [acked... inflight... unsent]; index 0 has psn sndUna
	sndUna   uint32
	sndNxt   uint32 // next psn to (re)transmit; within queue bounds
	nextPSN  uint32 // psn for the next freshly built packet
	rtt      *transport.RTT
	retx     transport.Retransmitter

	samplePSN   uint32
	sampleAt    sim.Time
	sampleValid bool

	// Receiver.
	expectPSN uint32
	nakSent   bool // one NAK per gap (RC behaviour), cleared on in-order
	assembler map[uint64]*inMsg

	lastRewind sim.Time // rate-limits go-back-N to once per RTT
}

type inMsg struct {
	ebs      wire.EBS
	msgType  uint8
	numPkts  int
	received int
	payload  []byte
}

func newQP(s *Stack, k qpKey) *qp {
	q := &qp{
		s:         s,
		key:       k,
		rtt:       transport.NewRTT(s.params.MinRTO, s.params.MaxRTO),
		assembler: map[uint64]*inMsg{},
	}
	q.retx.Init(s.eng, q.rtt, -1, qpRTOExpired, q)
	return q
}

func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// sendMessage segments one RPC message into MTU packets and queues them.
func (q *qp) sendMessage(id uint64, op uint8, req *transport.Message, resp *transport.Response) {
	var payload []byte
	ebs := wire.EBS{Version: wire.EBSVersion}
	if req != nil {
		payload = req.Data
		ebs.Op = op
		ebs.VDisk = req.VDisk
		ebs.SegmentID = req.SegmentID
		ebs.LBA = req.LBA
		ebs.Gen = req.Gen
		ebs.Flags = req.Flags
		ebs.BlockLen = uint32(req.ReadLen)
	} else {
		payload = resp.Data
		ebs.ServerNS = uint32(resp.ServerWall.Nanoseconds())
		ebs.SSDNS = uint32(resp.SSDTime.Nanoseconds())
	}
	mtu := q.s.params.MTU
	numPkts := (len(payload) + mtu - 1) / mtu
	if numPkts == 0 {
		numPkts = 1
	}
	for i := 0; i < numPkts; i++ {
		lo := i * mtu
		hi := lo + mtu
		if hi > len(payload) {
			hi = len(payload)
		}
		chunk := payload[lo:hi]
		buf := make([]byte, pktHdrSize+len(chunk))
		rpc := wire.RPC{RPCID: id, PktID: uint16(i), NumPkts: uint16(numPkts), MsgType: op}
		if resp != nil {
			rpc.MsgType = wire.RPCWriteResp
		}
		// BTH is encoded at transmit time (PSN/ack fields are dynamic).
		if err := rpc.Encode(buf[wire.TCPSegSize:]); err != nil {
			panic(err)
		}
		if err := ebs.Encode(buf[wire.TCPSegSize+wire.RPCSize:]); err != nil {
			panic(err)
		}
		copy(buf[pktHdrSize:], chunk)
		q.sndQueue = append(q.sndQueue, outPkt{psn: q.nextPSN, payload: buf})
		q.nextPSN++
	}
	q.pump()
}

func (q *qp) inflight() int { return int(q.sndNxt - q.sndUna) }

// pump transmits packets within the static window.
func (q *qp) pump() {
	for q.inflight() < q.s.params.WindowPkts {
		idx := int(q.sndNxt - q.sndUna)
		if idx >= len(q.sndQueue) {
			break
		}
		p := q.sndQueue[idx]
		if !q.sampleValid {
			q.samplePSN = p.psn + 1
			q.sampleAt = q.s.eng.Now()
			q.sampleValid = true
		}
		q.transmit(p)
		q.sndNxt++
	}
	if q.inflight() > 0 && !q.retx.Active() {
		q.retx.Arm()
	}
}

// transmit sends one packet, paying cache and PCIe costs.
func (q *qp) transmit(p outPkt) {
	send := func() {
		bth := wire.TCPSeg{
			SrcPort: q.key.localQPN,
			DstPort: q.key.remoteQPN,
			Seq:     p.psn,
			Ack:     q.expectPSN,
			Flags:   wire.TCPFlagACK,
		}
		if err := bth.Encode(p.payload); err != nil {
			panic(err)
		}
		// Pooled envelope, externally owned payload: the frame buffer lives
		// in sndQueue for go-back-N retransmission, so the pool must not
		// reclaim it when the receiver releases the packet.
		pkt := q.s.pool.Get(0)
		pkt.Dst = q.key.peer
		pkt.Proto = Proto
		pkt.SrcPort = q.key.localQPN
		pkt.DstPort = q.key.remoteQPN
		pkt.Payload = p.payload
		pkt.Overhead = simnet.EthOverhead + wire.IPv4Size
		pkt.SentAt = q.s.eng.Now()
		if !q.s.host.Send(pkt) {
			pkt.Release()
		}
	}
	step := func() {
		data := len(p.payload) - pktHdrSize
		if q.s.pcie != nil && data > 0 {
			q.s.pcie.Transfer(2*data, send)
		} else {
			send()
		}
	}
	q.s.touchCache(q.key, step)
}

// control sends a pure ACK or NAK frame.
func (q *qp) control(nak bool) {
	var flags uint8 = wire.TCPFlagACK
	if nak {
		flags |= wire.TCPFlagRST
	}
	bth := wire.TCPSeg{
		SrcPort: q.key.localQPN,
		DstPort: q.key.remoteQPN,
		Seq:     q.nextPSN,
		Ack:     q.expectPSN,
		Flags:   flags,
	}
	pkt := q.s.pool.Get(wire.TCPSegSize)
	if err := bth.Encode(pkt.Payload); err != nil {
		panic(err)
	}
	pkt.Dst = q.key.peer
	pkt.Proto = Proto
	pkt.SrcPort = q.key.localQPN
	pkt.DstPort = q.key.remoteQPN
	pkt.Overhead = simnet.EthOverhead + wire.IPv4Size
	pkt.SentAt = q.s.eng.Now()
	if !q.s.host.Send(pkt) {
		pkt.Release()
	}
}

// qpRTOExpired adapts the shared retransmitter's expiry to the QP's
// go-back-N policy.
func qpRTOExpired(a any) { a.(*qp).onRTO() }

// onRTO rewinds to the first unacknowledged PSN (go-back-N).
func (q *qp) onRTO() {
	if q.inflight() == 0 && int(q.sndNxt-q.sndUna) >= len(q.sndQueue) {
		return
	}
	q.retx.RecordTimeout()
	q.goBackN()
	q.retx.Arm()
}

func (q *qp) goBackN() {
	// At most one rewind per RTT: in-flight packets beyond the gap keep
	// arriving out of order and would otherwise trigger rewind storms.
	now := q.s.eng.Now()
	srtt := q.rtt.SRTT()
	if srtt <= 0 {
		srtt = q.s.params.MinRTO
	}
	if q.lastRewind != 0 && now.Sub(q.lastRewind) < srtt {
		return
	}
	q.lastRewind = now
	q.s.Retransmits++
	q.sampleValid = false // Karn: retransmitted PSNs give no samples
	q.sndNxt = q.sndUna
	q.pump()
}

// packetArrived processes one inbound frame on this QP.
func (q *qp) packetArrived(bth wire.TCPSeg, rest []byte) {
	// Acknowledgment side (cumulative; NAK flagged with RST).
	ack := bth.Ack
	if seqLT(q.sndUna, ack) && !seqLT(q.sndNxt, ack) {
		n := int(ack - q.sndUna)
		q.sndQueue = q.sndQueue[n:]
		q.sndUna = ack
		q.retx.RecordAck()
		if q.sampleValid && !seqLT(ack, q.samplePSN) {
			q.rtt.Observe(q.s.eng.Now().Sub(q.sampleAt))
			q.sampleValid = false
		}
		if q.inflight() > 0 || len(q.sndQueue) > 0 {
			q.retx.Arm()
			q.pump()
		} else {
			q.retx.Disarm()
		}
	}
	if bth.Flags&wire.TCPFlagRST != 0 && ack == q.sndUna && q.inflight() > 0 {
		// NAK: receiver saw a gap. Rewind immediately.
		q.goBackN()
	}

	if len(rest) == 0 {
		return
	}
	// Data side: strict in-order acceptance (go-back-N receiver).
	if bth.Seq != q.expectPSN {
		if seqLT(q.expectPSN, bth.Seq) {
			if !q.nakSent {
				q.control(true) // one NAK per gap
				q.nakSent = true
			}
		} else {
			q.control(false) // duplicate: re-ACK
		}
		return
	}
	q.expectPSN++
	q.nakSent = false
	q.control(false)

	var rpc wire.RPC
	if err := rpc.Decode(rest); err != nil {
		return
	}
	var ebs wire.EBS
	if err := ebs.Decode(rest[wire.RPCSize:]); err != nil {
		return
	}
	chunk := rest[wire.RPCSize+wire.EBSSize:]
	m := q.assembler[rpc.RPCID]
	if m == nil {
		m = &inMsg{ebs: ebs, msgType: rpc.MsgType, numPkts: int(rpc.NumPkts)}
		q.assembler[rpc.RPCID] = m
	}
	m.payload = append(m.payload, chunk...)
	m.received++
	if m.received == m.numPkts {
		delete(q.assembler, rpc.RPCID)
		q.s.deliver(q, rpc.RPCID, m.msgType, m.ebs, m.payload)
	}
}
