// Package workload provides the traffic models behind the paper's
// measurement figures and the load generators that drive the experiments:
// the I/O-size mixture of Fig. 5 (40% of requests ≤4 KiB, everything
// ≤128 KiB, spikes at 4/16/64 KiB), the diurnal per-server IOPS pattern of
// Fig. 4 (~200 K peaks), the weekly EBS-vs-VPC traffic shares of Fig. 3
// (EBS ≈ 63% of TX, writes 3–4× reads), and a fio-like closed-loop driver
// (queue depth, block size, R/W mix) used by Figs. 14–15 and Table 2.
package workload

import (
	"math"
	"time"

	"lunasolar/internal/sim"
)

// SizeDist is the I/O request size mixture. Weights follow Fig. 5's CDF:
// strong modes at 4K, 8K, 16K, 64K with a thin tail to 128K.
type SizeDist struct {
	sizes   []int
	cum     []float64
	rand    *sim.Rand
	isWrite bool
}

type sizePoint struct {
	size   int
	weight float64
}

// Fig. 5: "about 40% RPCs are up to 4K bytes", typical sizes 4K/16K/64K,
// everything under 128K. Writes skew slightly smaller than reads (databases
// journaling small records).
var writeMix = []sizePoint{
	{4 << 10, 0.42}, {8 << 10, 0.16}, {16 << 10, 0.22},
	{32 << 10, 0.08}, {64 << 10, 0.09}, {128 << 10, 0.03},
}

var readMix = []sizePoint{
	{4 << 10, 0.38}, {8 << 10, 0.13}, {16 << 10, 0.24},
	{32 << 10, 0.09}, {64 << 10, 0.12}, {128 << 10, 0.04},
}

func newSizeDist(points []sizePoint, r *sim.Rand) *SizeDist {
	d := &SizeDist{rand: r}
	total := 0.0
	for _, p := range points {
		total += p.weight
	}
	cum := 0.0
	for _, p := range points {
		cum += p.weight / total
		d.sizes = append(d.sizes, p.size)
		d.cum = append(d.cum, cum)
	}
	return d
}

// NewWriteSizes returns the write-size mixture.
func NewWriteSizes(r *sim.Rand) *SizeDist { return newSizeDist(writeMix, r) }

// NewReadSizes returns the read-size mixture.
func NewReadSizes(r *sim.Rand) *SizeDist { return newSizeDist(readMix, r) }

// Sample draws one I/O size in bytes.
func (d *SizeDist) Sample() int {
	u := d.rand.Float64()
	for i, c := range d.cum {
		if u <= c {
			return d.sizes[i]
		}
	}
	return d.sizes[len(d.sizes)-1]
}

// Diurnal models the per-server request rate over a day (Fig. 4): a
// business-hours sinusoid over a base load, plus bursty noise and occasional
// spikes, peaking around 200 K IOPS for a highly loaded server.
type Diurnal struct {
	BaseIOPS float64 // overnight floor
	PeakIOPS float64 // mid-day crest
	Noise    float64 // multiplicative noise amplitude
	rand     *sim.Rand
}

// NewDiurnal returns the Fig. 4 model for a highly loaded server.
func NewDiurnal(r *sim.Rand) *Diurnal {
	return &Diurnal{BaseIOPS: 60_000, PeakIOPS: 200_000, Noise: 0.18, rand: r}
}

// Rate returns the target IOPS at time-of-day t.
func (d *Diurnal) Rate(t time.Duration) float64 {
	hours := t.Hours()
	frac := hours / 24 * 2 * math.Pi
	// Crest at 14:00, trough at 02:00.
	shape := 0.5 - 0.5*math.Cos(frac-14.0/24*2*math.Pi+math.Pi)
	base := d.BaseIOPS + (d.PeakIOPS-d.BaseIOPS)*shape
	noise := 1 + d.Noise*(2*d.rand.Float64()-1)
	// Occasional sharp spikes (batch jobs, compactions).
	if d.rand.Bernoulli(0.01) {
		noise *= 1.35
	}
	return base * noise
}

// Weekly models the fleet-wide traffic of Fig. 3: hourly EBS and total
// (EBS+VPC) throughput per server in GB/s, and read/write request rates,
// over seven days. EBS is ~63% of TX; writes are 3–4× reads.
type Weekly struct {
	rand *sim.Rand
}

// NewWeekly returns the Fig. 3 model.
func NewWeekly(r *sim.Rand) *Weekly { return &Weekly{rand: r} }

// HourSample is one hourly fleet-average sample.
type HourSample struct {
	EBSTxGBs  float64 // EBS transmit throughput per server
	EBSRxGBs  float64
	AllTxGBs  float64 // all traffic including VPC
	AllRxGBs  float64
	WriteIOPS float64 // fleet-average write request rate per server
	ReadIOPS  float64
}

// At returns the sample for hour h (0-based) of the week.
func (w *Weekly) At(h int) HourSample {
	day := time.Duration(h%24) * time.Hour
	// Reuse the diurnal shape with weekday/weekend modulation.
	d := Diurnal{BaseIOPS: 0.55, PeakIOPS: 1.0, Noise: 0.06, rand: w.rand}
	shape := d.Rate(day)
	if (h/24)%7 >= 5 {
		shape *= 0.85 // weekend dip
	}
	// Per-server averages: EBS TX ≈ 1.05 GB/s at peak; writes dominate TX.
	ebsTx := 1.05 * shape
	ebsRx := 0.36 * shape
	allTx := ebsTx / 0.63 // EBS ≈ 63% of server TX
	allRx := ebsRx / 0.51
	writes := 5200.0 * shape // Fig. 3b: ~5K writes/s/server average
	reads := writes / 3.6    // writes 3–4× reads
	return HourSample{
		EBSTxGBs: ebsTx, EBSRxGBs: ebsRx,
		AllTxGBs: allTx, AllRxGBs: allRx,
		WriteIOPS: writes, ReadIOPS: reads,
	}
}

// FioConfig is a fio-like closed-loop job: Depth outstanding I/Os per
// worker, fixed BlockSize, ReadFrac reads (by count), running until
// stopped.
type FioConfig struct {
	Depth     int
	BlockSize int
	ReadFrac  float64
	// SpanBytes is the LBA range the job touches (wraps around).
	SpanBytes uint64
}

// IOFunc issues one I/O of the given kind and size at the given offset;
// done must be invoked at completion.
type IOFunc func(write bool, lba uint64, size int, done func())

// Fio drives a closed loop of Depth outstanding I/Os against an issue
// function, counting completions and bytes.
type Fio struct {
	cfg  FioConfig
	eng  *sim.Engine
	rand *sim.Rand
	io   IOFunc

	next    uint64
	stopped bool

	Completed uint64
	Bytes     uint64
}

// NewFio creates a driver.
func NewFio(eng *sim.Engine, cfg FioConfig, io IOFunc) *Fio {
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	if cfg.SpanBytes == 0 {
		cfg.SpanBytes = 64 << 20
	}
	return &Fio{cfg: cfg, eng: eng, rand: eng.Rand.Fork(), io: io}
}

// Start primes the queue to its depth.
func (f *Fio) Start() {
	for i := 0; i < f.cfg.Depth; i++ {
		f.issue()
	}
}

// Stop ends the loop: outstanding I/Os drain, no new ones are issued.
func (f *Fio) Stop() { f.stopped = true }

func (f *Fio) issue() {
	if f.stopped {
		return
	}
	write := !f.rand.Bernoulli(f.cfg.ReadFrac)
	lba := f.next % f.cfg.SpanBytes
	f.next += uint64(f.cfg.BlockSize)
	size := f.cfg.BlockSize
	f.io(write, lba, size, func() {
		f.Completed++
		f.Bytes += uint64(size)
		f.issue()
	})
}

// ThroughputMBs returns goodput in MB/s over elapsed virtual time.
func (f *Fio) ThroughputMBs(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(f.Bytes) / elapsed.Seconds() / 1e6
}

// IOPS returns completions per second over elapsed virtual time.
func (f *Fio) IOPS(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(f.Completed) / elapsed.Seconds()
}
