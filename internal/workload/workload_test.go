package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lunasolar/internal/sim"
	"lunasolar/internal/stats"
)

func TestSizeDistMatchesFig5(t *testing.T) {
	r := sim.NewRand(1)
	var c stats.CDF
	d := NewWriteSizes(r)
	for i := 0; i < 50000; i++ {
		s := d.Sample()
		c.Add(float64(s))
		if s > 128<<10 {
			t.Fatalf("size %d exceeds 128K", s)
		}
		if s < 4096 {
			t.Fatalf("size %d below a block", s)
		}
	}
	// ~40% at 4K (Fig. 5).
	at4k := c.At(4096)
	if at4k < 0.35 || at4k > 0.50 {
		t.Fatalf("P(size<=4K) = %v, want ~0.42", at4k)
	}
	if got := c.At(128 << 10); got != 1 {
		t.Fatalf("P(size<=128K) = %v", got)
	}
}

func TestReadWritesDistinct(t *testing.T) {
	r := sim.NewRand(2)
	w, rd := NewWriteSizes(r), NewReadSizes(r)
	var wsum, rsum float64
	const n = 20000
	for i := 0; i < n; i++ {
		wsum += float64(w.Sample())
		rsum += float64(rd.Sample())
	}
	// Reads skew slightly larger on average.
	if rsum/n <= wsum/n {
		t.Fatalf("mean read %v <= mean write %v", rsum/n, wsum/n)
	}
}

func TestDiurnalShape(t *testing.T) {
	d := NewDiurnal(sim.NewRand(3))
	// Average over repeats to smooth noise.
	avg := func(h int) float64 {
		var s float64
		for i := 0; i < 200; i++ {
			s += d.Rate(time.Duration(h) * time.Hour)
		}
		return s / 200
	}
	night, midday := avg(2), avg(14)
	if midday <= 1.5*night {
		t.Fatalf("no diurnal swing: night=%v midday=%v", night, midday)
	}
	if midday < 150_000 || midday > 260_000 {
		t.Fatalf("peak %v not ~200K IOPS", midday)
	}
	if night < 30_000 {
		t.Fatalf("floor %v too low", night)
	}
}

func TestWeeklyShares(t *testing.T) {
	w := NewWeekly(sim.NewRand(4))
	var ebsTx, allTx, writes, reads float64
	for h := 0; h < 7*24; h++ {
		s := w.At(h)
		ebsTx += s.EBSTxGBs
		allTx += s.AllTxGBs
		writes += s.WriteIOPS
		reads += s.ReadIOPS
		if s.EBSTxGBs > s.AllTxGBs {
			t.Fatal("EBS exceeds total traffic")
		}
	}
	share := ebsTx / allTx
	if share < 0.58 || share > 0.68 {
		t.Fatalf("EBS TX share = %v, want ~0.63", share)
	}
	ratio := writes / reads
	if ratio < 3 || ratio > 4 {
		t.Fatalf("write/read ratio = %v, want 3–4x", ratio)
	}
}

func TestFioClosedLoop(t *testing.T) {
	eng := sim.NewEngine(5)
	inflight, maxInflight := 0, 0
	fio := NewFio(eng, FioConfig{Depth: 8, BlockSize: 4096, ReadFrac: 0.5}, func(write bool, lba uint64, size int, done func()) {
		inflight++
		if inflight > maxInflight {
			maxInflight = inflight
		}
		eng.Schedule(10*time.Microsecond, func() {
			inflight--
			done()
		})
	})
	fio.Start()
	eng.RunFor(10 * time.Millisecond)
	fio.Stop()
	eng.Run()
	if maxInflight != 8 {
		t.Fatalf("max inflight = %d, want depth 8", maxInflight)
	}
	// 8 outstanding at 10µs service → ~800K IOPS → ~8000 in 10ms.
	if fio.Completed < 7000 || fio.Completed > 9000 {
		t.Fatalf("completed = %d", fio.Completed)
	}
	if got := fio.IOPS(10 * time.Millisecond); got < 700_000 {
		t.Fatalf("IOPS = %v", got)
	}
	if got := fio.ThroughputMBs(10 * time.Millisecond); got < 2800 {
		t.Fatalf("throughput = %v MB/s", got)
	}
}

func TestFioStops(t *testing.T) {
	eng := sim.NewEngine(6)
	fio := NewFio(eng, FioConfig{Depth: 2, BlockSize: 4096}, func(write bool, lba uint64, size int, done func()) {
		eng.Schedule(time.Microsecond, done)
	})
	fio.Start()
	eng.RunFor(time.Millisecond)
	fio.Stop()
	eng.Run() // must terminate
	if fio.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func TestFioWrapsSpan(t *testing.T) {
	eng := sim.NewEngine(7)
	var maxLBA uint64
	fio := NewFio(eng, FioConfig{Depth: 1, BlockSize: 4096, SpanBytes: 1 << 20}, func(write bool, lba uint64, size int, done func()) {
		if lba > maxLBA {
			maxLBA = lba
		}
		eng.Schedule(time.Microsecond, done)
	})
	fio.Start()
	eng.RunFor(5 * time.Millisecond)
	fio.Stop()
	eng.Run()
	if maxLBA >= 1<<20 {
		t.Fatalf("lba %#x outside span", maxLBA)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	r := sim.NewRand(11)
	recs := GenerateTrace(r, 100*time.Millisecond, 10000, 0.3, 64<<20)
	if len(recs) < 800 || len(recs) > 1200 {
		t.Fatalf("generated %d records, want ~1000", len(recs))
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d/%d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestTraceParsing(t *testing.T) {
	in := "# comment\n\n1000,W,4096,8192\n500,r,0,4096\n"
	recs, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("len=%d", len(recs))
	}
	// Sorted by time.
	if recs[0].At != 500 || recs[0].Write {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].At != 1000 || !recs[1].Write || recs[1].Size != 8192 {
		t.Fatalf("rec1 = %+v", recs[1])
	}
	for _, bad := range []string{"x,W,0,4096", "1,Q,0,4096", "1,W,z,4096", "1,W,0,-1", "1,W,0"} {
		if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestReplayerTiming(t *testing.T) {
	eng := sim.NewEngine(12)
	recs := []TraceRecord{
		{At: time.Millisecond, Write: true, LBA: 0, Size: 4096},
		{At: 3 * time.Millisecond, Write: false, LBA: 4096, Size: 4096},
	}
	var issuedAt []time.Duration
	rp := NewReplayer(eng, recs, func(write bool, lba uint64, size int, done func()) {
		issuedAt = append(issuedAt, eng.Now().Duration())
		eng.Schedule(10*time.Microsecond, done)
	})
	rp.Start()
	eng.Run()
	if rp.Issued != 2 || rp.Completed != 2 {
		t.Fatalf("issued=%d completed=%d", rp.Issued, rp.Completed)
	}
	if issuedAt[0] != time.Millisecond || issuedAt[1] != 3*time.Millisecond {
		t.Fatalf("issue times %v", issuedAt)
	}
}

func TestGenerateTraceRates(t *testing.T) {
	r := sim.NewRand(13)
	recs := GenerateTrace(r, time.Second, 5000, 0.25, 1<<30)
	writes := 0
	for _, rec := range recs {
		if rec.Write {
			writes++
		}
		if rec.LBA%4096 != 0 {
			t.Fatal("unaligned lba")
		}
	}
	frac := float64(writes) / float64(len(recs))
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("write fraction %v, want ~0.75", frac)
	}
}
