package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"lunasolar/internal/sim"
)

// TraceRecord is one I/O in a workload trace: issue time relative to trace
// start, operation, address, and size. The on-disk format is a line-based
// CSV ("ns,op,lba,size") so traces are greppable and editable.
type TraceRecord struct {
	At    time.Duration
	Write bool
	LBA   uint64
	Size  int
}

// WriteTrace serializes records (sorted by time) to w.
func WriteTrace(w io.Writer, recs []TraceRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# ns,op,lba,size"); err != nil {
		return err
	}
	for _, r := range recs {
		op := "R"
		if r.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d\n", r.At.Nanoseconds(), op, r.LBA, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace (or by hand). Records are
// returned sorted by issue time.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	var out []TraceRecord
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("trace line %d: want 4 fields, got %d", line, len(parts))
		}
		ns, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: bad time: %v", line, err)
		}
		var write bool
		switch strings.ToUpper(strings.TrimSpace(parts[1])) {
		case "W":
			write = true
		case "R":
			write = false
		default:
			return nil, fmt.Errorf("trace line %d: bad op %q", line, parts[1])
		}
		lba, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: bad lba: %v", line, err)
		}
		size, err := strconv.Atoi(parts[3])
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("trace line %d: bad size", line)
		}
		out = append(out, TraceRecord{At: time.Duration(ns), Write: write, LBA: lba, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// GenerateTrace synthesizes a trace with Poisson arrivals at the target
// IOPS, Fig. 5 size mixtures, and uniformly random aligned addresses within
// span.
func GenerateTrace(r *sim.Rand, duration time.Duration, iops float64, readFrac float64, span uint64) []TraceRecord {
	reads := NewReadSizes(r)
	writes := NewWriteSizes(r)
	mean := time.Duration(float64(time.Second) / iops)
	var out []TraceRecord
	for at := r.Exp(mean); at < duration; at += r.Exp(mean) {
		write := !r.Bernoulli(readFrac)
		var size int
		if write {
			size = writes.Sample()
		} else {
			size = reads.Sample()
		}
		maxLBA := int64(span) - int64(size)
		if maxLBA <= 0 {
			continue
		}
		lba := uint64(r.Int63n(maxLBA)) &^ 4095
		out = append(out, TraceRecord{At: at, Write: write, LBA: lba, Size: size})
	}
	return out
}

// Replayer issues a trace's records at their recorded virtual times —
// open-loop, preserving the trace's arrival process exactly.
type Replayer struct {
	eng  *sim.Engine
	io   IOFunc
	recs []TraceRecord

	Issued    int
	Completed int
}

// NewReplayer builds a replayer over the engine.
func NewReplayer(eng *sim.Engine, recs []TraceRecord, io IOFunc) *Replayer {
	return &Replayer{eng: eng, io: io, recs: recs}
}

// Start schedules every record.
func (rp *Replayer) Start() {
	for _, rec := range rp.recs {
		rec := rec
		rp.eng.Schedule(rec.At, func() {
			rp.Issued++
			rp.io(rec.Write, rec.LBA, rec.Size, func() { rp.Completed++ })
		})
	}
}
