// Package sa implements the storage agent (Fig. 2): the hypervisor
// function that converts guest I/O into frontend-network RPCs. It owns the
// two match-action tables of the paper — the Segment Table (virtual-disk
// LBA → 2 MiB segment on a block server) and the QoS Table (per-disk IOPS
// and bandwidth service levels) — splits I/Os that cross segment
// boundaries, runs the per-block CRC/crypto work, and attributes latency to
// the SA/FN/BN/SSD trace components.
//
// The same Agent drives every stack: in software mode (kernel TCP, Luna,
// RDMA frontends) the data-path work is charged to host/DPU CPU cores with
// a log-normal tail — the bottleneck Fig. 6 shows once Luna removed the
// network stack from the critical path; in offloaded mode (Solar) the
// lookups happen in the FPGA tables and the agent's residual latency is the
// pipeline's, reproducing the 95% SA reduction of §4.7.
package sa

import (
	"fmt"
	"time"

	"lunasolar/internal/crc"
	"lunasolar/internal/seccrypto"
	"lunasolar/internal/sim"
	"lunasolar/internal/trace"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// SegmentBytes is the segment size: "each segment hosted in a block server
// contains relatively large (e.g., 2MB) and continuous LBA addresses".
const SegmentBytes = 2 << 20

// SegmentRef locates one segment.
type SegmentRef struct {
	Server    uint32 // block-server fabric address
	SegmentID uint64
}

// SegmentTable maps (vdisk, LBA) to segments. Entries are populated by the
// management plane at provisioning time.
type SegmentTable struct {
	disks     map[uint32][]SegmentRef
	nextSegID uint64
}

// NewSegmentTable returns an empty table.
func NewSegmentTable() *SegmentTable {
	return &SegmentTable{disks: map[uint32][]SegmentRef{}}
}

// Provision creates a virtual disk of the given size, striping its segments
// round-robin across the block servers.
func (t *SegmentTable) Provision(vdisk uint32, sizeBytes uint64, servers []uint32) error {
	if len(servers) == 0 {
		return fmt.Errorf("sa: provisioning vdisk %d with no block servers", vdisk)
	}
	if _, exists := t.disks[vdisk]; exists {
		return fmt.Errorf("sa: vdisk %d already provisioned", vdisk)
	}
	nSegs := int((sizeBytes + SegmentBytes - 1) / SegmentBytes)
	refs := make([]SegmentRef, nSegs)
	for i := range refs {
		t.nextSegID++
		refs[i] = SegmentRef{Server: servers[i%len(servers)], SegmentID: t.nextSegID}
	}
	t.disks[vdisk] = refs
	return nil
}

// Lookup resolves the segment containing lba.
func (t *SegmentTable) Lookup(vdisk uint32, lba uint64) (SegmentRef, bool) {
	refs, ok := t.disks[vdisk]
	if !ok {
		return SegmentRef{}, false
	}
	idx := int(lba / SegmentBytes)
	if idx >= len(refs) {
		return SegmentRef{}, false
	}
	return refs[idx], true
}

// Size returns the provisioned size of a vdisk in bytes (0 if unknown).
func (t *SegmentTable) Size(vdisk uint32) uint64 {
	return uint64(len(t.disks[vdisk])) * SegmentBytes
}

// QoSSpec is a virtual disk's purchased service level.
type QoSSpec struct {
	IOPS         float64
	BandwidthBps float64
	BurstWindow  time.Duration // how much rate credit may accumulate
}

// qosState is the admission pacer for one disk: slot-based reservation for
// both IOPS and bytes, with a bounded credit window.
type qosState struct {
	spec     QoSSpec
	ioSlot   sim.Time
	byteSlot sim.Time
}

// Params is the SA cost model.
type Params struct {
	Offloaded bool // Solar: tables in FPGA, no per-I/O CPU

	// Software mode costs. PerIOCPU is CPU busy time charged to cores;
	// PerIODelay is additional latency that holds no core (lock waits,
	// scheduling, batching) with a log-normal tail.
	PerIOCPU    time.Duration
	PerIODelay  time.Duration
	CRCPer4K    time.Duration
	CryptoPer4K time.Duration
	Sigma       float64

	// Offloaded mode: FPGA lookup/pipeline latency attributed to SA.
	OffloadLatency time.Duration

	Encrypted bool
}

// SoftwareParams is the software SA used with kernel/Luna/RDMA frontends.
// Calibrated so the SA component of a 4 KiB I/O has a median around
// 25–30 µs with a long tail (Fig. 6's Luna-era SA share).
func SoftwareParams() Params {
	return Params{
		PerIOCPU:   5 * time.Microsecond,
		PerIODelay: 15 * time.Microsecond,
		CRCPer4K:   1600 * time.Nanosecond,
		Sigma:      0.55,
	}
}

// OffloadedParams is the Solar-era SA: lookups in the FPGA pipeline.
func OffloadedParams() Params {
	return Params{
		Offloaded:      true,
		OffloadLatency: 1200 * time.Nanosecond,
		Sigma:          0.30,
	}
}

// Agent is one compute server's storage agent.
type Agent struct {
	eng    *sim.Engine
	cores  *sim.Server
	fn     transport.Client
	segs   *SegmentTable
	qos    map[uint32]*qosState
	params Params
	rand   *sim.Rand

	collector *trace.Collector
	gen       uint32
	ciphers   map[uint32]*seccrypto.BlockCipher

	// Recycled BlockCRCs backing arrays (one-touch CRC metadata), so the
	// steady-state write path does not allocate per RPC.
	crcLists [][]uint32

	// Stats.
	IOs      uint64
	Splits   uint64
	QoSDelay time.Duration
}

// New creates an agent bound to a frontend client and a shared segment
// table (the management plane's view).
func New(eng *sim.Engine, cores *sim.Server, fn transport.Client, segs *SegmentTable, params Params) *Agent {
	return &Agent{
		eng:     eng,
		cores:   cores,
		fn:      fn,
		segs:    segs,
		qos:     map[uint32]*qosState{},
		ciphers: map[uint32]*seccrypto.BlockCipher{},
		params:  params,
		rand:    eng.Rand.Fork(),
	}
}

// SetCollector attaches a trace collector; every completed I/O is recorded.
func (a *Agent) SetCollector(c *trace.Collector) { a.collector = c }

// SetCipher installs the per-disk encryption key (software SA mode). When
// set and the agent is configured Encrypted, payloads are genuinely
// AES-CTR-encrypted per block before hitting the wire and decrypted on
// read completion, with block-independent counters so arrival order never
// matters.
func (a *Agent) SetCipher(vdisk uint32, c *seccrypto.BlockCipher) { a.ciphers[vdisk] = c }

// getCRCList returns a recycled BlockCRCs backing array (empty, capacity
// preserved); putCRCList returns one once its RPC completes.
func (a *Agent) getCRCList() []uint32 {
	if n := len(a.crcLists); n > 0 {
		l := a.crcLists[n-1]
		a.crcLists[n-1] = nil
		a.crcLists = a.crcLists[:n-1]
		return l
	}
	return nil
}

func (a *Agent) putCRCList(l []uint32) {
	a.crcLists = append(a.crcLists, l[:0])
}

// appendBlockCRCs appends the raw CRC-32C of each 4 KiB block of data
// (short tail blocks hashed at their actual length).
func (a *Agent) appendBlockCRCs(dst []uint32, data []byte) []uint32 {
	for off := 0; off < len(data); off += wire.BlockSize {
		end := off + wire.BlockSize
		if end > len(data) {
			end = len(data)
		}
		dst = append(dst, crc.Raw(data[off:end]))
	}
	return dst
}

// cryptBlocks en/decrypts buf in place, one counter stream per block.
func (a *Agent) cryptBlocks(vdisk uint32, segment, lba uint64, buf []byte) {
	c := a.ciphers[vdisk]
	if c == nil {
		return
	}
	for off := 0; off < len(buf); off += wire.BlockSize {
		end := off + wire.BlockSize
		if end > len(buf) {
			end = len(buf)
		}
		c.EncryptBlock(buf[off:end], buf[off:end], segment, lba+uint64(off), 0)
	}
}

// SetQoS installs or updates a disk's service level.
func (a *Agent) SetQoS(vdisk uint32, spec QoSSpec) {
	if spec.BurstWindow <= 0 {
		spec.BurstWindow = 10 * time.Millisecond
	}
	a.qos[vdisk] = &qosState{spec: spec}
}

// admit reserves QoS capacity for an I/O, returning the queueing delay
// (zero when within the service level). Per Fig. 6's methodology, this
// policy delay is excluded from the latency components.
func (a *Agent) admit(vdisk uint32, bytes int) time.Duration {
	q := a.qos[vdisk]
	if q == nil {
		return 0
	}
	now := a.eng.Now()
	floor := now.Add(-q.spec.BurstWindow)
	if q.ioSlot < floor {
		q.ioSlot = floor
	}
	if q.byteSlot < floor {
		q.byteSlot = floor
	}
	var d time.Duration
	if q.spec.IOPS > 0 {
		q.ioSlot = q.ioSlot.Add(time.Duration(float64(time.Second) / q.spec.IOPS))
		if wait := q.ioSlot.Sub(now); wait > d {
			d = wait
		}
	}
	if q.spec.BandwidthBps > 0 {
		q.byteSlot = q.byteSlot.Add(time.Duration(float64(bytes*8) / q.spec.BandwidthBps * float64(time.Second)))
		if wait := q.byteSlot.Sub(now); wait > d {
			d = wait
		}
	}
	if d < 0 {
		d = 0
	}
	a.QoSDelay += d
	return d
}

// saBusy returns the CPU busy time for an I/O of n bytes.
func (a *Agent) saBusy(bytes int) time.Duration {
	blocks := (bytes + wire.BlockSize - 1) / wire.BlockSize
	busy := a.params.PerIOCPU + time.Duration(blocks)*a.params.CRCPer4K
	if a.params.Encrypted {
		busy += time.Duration(blocks) * a.params.CryptoPer4K
	}
	return a.rand.Jitter(busy, 0.1)
}

// saDelay returns the non-busy latency adder with its log-normal tail.
func (a *Agent) saDelay() time.Duration {
	if a.params.PerIODelay == 0 {
		return 0
	}
	return a.rand.LogNormal(a.params.PerIODelay, a.params.Sigma)
}

// split cuts [lba, lba+size) at segment boundaries, yielding per-segment
// ranges with their refs. Returns false if any range is unmapped.
func (a *Agent) split(vdisk uint32, lba uint64, size int) ([]ioPiece, bool) {
	var out []ioPiece
	off := 0
	for off < size {
		cur := lba + uint64(off)
		ref, ok := a.segs.Lookup(vdisk, cur)
		if !ok {
			return nil, false
		}
		segEnd := (cur/SegmentBytes + 1) * SegmentBytes
		n := size - off
		if uint64(off)+uint64(n) > uint64(off)+(segEnd-cur) {
			n = int(segEnd - cur)
		}
		out = append(out, ioPiece{ref: ref, lba: cur, off: off, n: n})
		off += n
	}
	if len(out) > 1 {
		a.Splits++
	}
	return out, true
}

type ioPiece struct {
	ref SegmentRef
	lba uint64
	off int
	n   int
}

// Result is the completion record of one I/O.
type Result struct {
	Data []byte // reads only
	Err  error
	Span *trace.Span
}

// Write performs a write I/O. done receives the completion record; the
// span's components follow Fig. 6's attribution.
func (a *Agent) Write(vdisk uint32, lba uint64, data []byte, done func(Result)) {
	a.io(vdisk, lba, len(data), data, done)
}

// Read performs a read I/O.
func (a *Agent) Read(vdisk uint32, lba uint64, size int, done func(Result)) {
	a.io(vdisk, lba, size, nil, done)
}

func (a *Agent) io(vdisk uint32, lba uint64, size int, data []byte, done func(Result)) {
	if done == nil {
		done = func(Result) {}
	}
	op := "read"
	opCode := uint8(wire.RPCReadReq)
	if data != nil {
		op = "write"
		opCode = wire.RPCWriteReq
	}
	span := &trace.Span{Op: op, Size: size}
	pieces, ok := a.split(vdisk, lba, size)
	if !ok {
		done(Result{Err: fmt.Errorf("sa: vdisk %d range [%#x,+%d) not provisioned", vdisk, lba, size), Span: span})
		return
	}
	a.IOs++
	a.gen++
	gen := a.gen

	admission := a.admit(vdisk, size)
	// Pacing is latency-tolerant: the admission wait rides the coarse
	// scheduling class (the instant is exact either way, only the cost of
	// waiting changes).
	a.eng.ScheduleCoarse(admission, func() {
		start := a.eng.Now()
		afterSA := func() {
			saDone := a.eng.Now()
			span.Add(trace.SA, saDone.Sub(start))
			a.issue(span, vdisk, gen, opCode, pieces, data, size, saDone, done)
		}
		if a.params.Offloaded {
			// Table lookups ride the FPGA pipeline; no CPU is consumed.
			a.eng.Schedule(time.Duration(len(pieces))*a.params.OffloadLatency, afterSA)
		} else {
			a.cores.Submit(a.saBusy(size), func() {
				a.eng.Schedule(a.saDelay(), afterSA)
			})
		}
	})
}

// issue sends one RPC per piece and assembles the completion.
func (a *Agent) issue(span *trace.Span, vdisk uint32, gen uint32, op uint8,
	pieces []ioPiece, data []byte, size int, fnStart sim.Time, done func(Result)) {
	remaining := len(pieces)
	var buf []byte
	if op == wire.RPCReadReq {
		buf = make([]byte, size)
	}
	var maxWall, maxSSD time.Duration
	var firstErr error
	for _, pc := range pieces {
		pc := pc
		msg := &transport.Message{
			Op:        op,
			VDisk:     vdisk,
			SegmentID: pc.ref.SegmentID,
			LBA:       pc.lba,
			Gen:       gen,
		}
		if a.params.Encrypted {
			msg.Flags |= wire.EBSFlagEncrypted
		}
		if op == wire.RPCWriteReq {
			msg.Data = data[pc.off : pc.off+pc.n]
			if a.params.Encrypted && !a.params.Offloaded {
				enc := append([]byte(nil), msg.Data...)
				a.cryptBlocks(vdisk, pc.ref.SegmentID, pc.lba, enc)
				msg.Data = enc
			}
			// One-touch CRC: the per-block raw CRC is computed exactly
			// once, here at SA ingress, over the bytes that will cross the
			// wire; every downstream verification folds these values
			// instead of re-walking the payload. The CRCPer4K cost was
			// already charged in saBusy (or rides the FPGA pipeline), so
			// this changes who reads the bytes, not what the simulation
			// charges. Carriage is deliberately mode-independent — the
			// -copy-path hatch changes where bytes live, never what
			// metadata travels — so both modes stay byte-identical.
			// Attached only for the offloaded (Solar) stacks, whose wire
			// format carries a per-block CRC; skipped when the DPU's SEC
			// engine will re-encrypt: the wire bytes are not ours to hash.
			if a.params.Offloaded && !a.params.Encrypted {
				msg.BlockCRCs = a.appendBlockCRCs(a.getCRCList(), msg.Data)
			}
		} else {
			msg.ReadLen = pc.n
		}
		a.fn.Call(pc.ref.Server, msg, func(resp *transport.Response) {
			if msg.BlockCRCs != nil {
				a.putCRCList(msg.BlockCRCs)
				msg.BlockCRCs = nil
			}
			if resp.Err != nil && firstErr == nil {
				firstErr = resp.Err
			}
			if op == wire.RPCReadReq && resp.Data != nil {
				copy(buf[pc.off:], resp.Data)
				if a.params.Encrypted && !a.params.Offloaded {
					a.cryptBlocks(vdisk, pc.ref.SegmentID, pc.lba, buf[pc.off:pc.off+pc.n])
				}
			}
			if resp.ServerWall > maxWall {
				maxWall = resp.ServerWall
			}
			if resp.SSDTime > maxSSD {
				maxSSD = resp.SSDTime
			}
			remaining--
			if remaining > 0 {
				return
			}
			// All pieces done: attribute.
			wall := a.eng.Now().Sub(fnStart)
			fn := wall - maxWall
			if fn < 0 {
				fn = 0
			}
			bn := maxWall - maxSSD
			if bn < 0 {
				bn = 0
			}
			span.Add(trace.FN, fn)
			span.Add(trace.BN, bn)
			span.Add(trace.SSD, maxSSD)
			if a.collector != nil {
				a.collector.Record(span)
			}
			done(Result{Data: buf, Err: firstErr, Span: span})
		})
	}
}
