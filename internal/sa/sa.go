// Package sa implements the storage agent (Fig. 2): the hypervisor
// function that converts guest I/O into frontend-network RPCs. It owns the
// two match-action tables of the paper — the Segment Table (virtual-disk
// LBA → 2 MiB segment on a block server) and the QoS Table (per-disk IOPS
// and bandwidth service levels) — splits I/Os that cross segment
// boundaries, runs the per-block CRC/crypto work, and attributes latency to
// the SA/FN/BN/SSD trace components.
//
// The same Agent drives every stack: in software mode (kernel TCP, Luna,
// RDMA frontends) the data-path work is charged to host/DPU CPU cores with
// a log-normal tail — the bottleneck Fig. 6 shows once Luna removed the
// network stack from the critical path; in offloaded mode (Solar) the
// lookups happen in the FPGA tables and the agent's residual latency is the
// pipeline's, reproducing the 95% SA reduction of §4.7.
package sa

import (
	"errors"
	"fmt"
	"time"

	"lunasolar/internal/crc"
	"lunasolar/internal/seccrypto"
	"lunasolar/internal/sim"
	"lunasolar/internal/trace"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// SegmentBytes is the segment size: "each segment hosted in a block server
// contains relatively large (e.g., 2MB) and continuous LBA addresses".
const SegmentBytes = 2 << 20

// notOwnerRetries bounds how many times one I/O piece chases a migrating
// segment before surfacing the rejection; each retry requires the segment
// table to point somewhere new, so the bound only trips on churn.
const notOwnerRetries = 4

// SegmentRef locates one segment.
type SegmentRef struct {
	Server    uint32 // block-server fabric address
	SegmentID uint64
}

// diskEntry is one vdisk's mapping plus its generation number. The
// generation is bumped by every remap/resize, so clients holding a stale
// routing decision can tell whether a retry against a fresh lookup can
// make progress.
type diskEntry struct {
	refs []SegmentRef
	gen  uint32
}

// SegmentTable maps (vdisk, LBA) to segments. Entries are populated by the
// management plane at provisioning time and updated by live migration.
type SegmentTable struct {
	disks     map[uint32]*diskEntry
	nextSegID uint64
}

// NewSegmentTable returns an empty table.
func NewSegmentTable() *SegmentTable {
	return &SegmentTable{disks: map[uint32]*diskEntry{}}
}

// Provision creates a virtual disk of the given size, striping its segments
// round-robin across the block servers. sizeBytes 0 is legal and yields a
// segmentless disk: every Lookup misses until a Grow maps space.
func (t *SegmentTable) Provision(vdisk uint32, sizeBytes uint64, servers []uint32) error {
	if len(servers) == 0 {
		return fmt.Errorf("sa: provisioning vdisk %d with no block servers", vdisk)
	}
	if _, exists := t.disks[vdisk]; exists {
		return fmt.Errorf("sa: vdisk %d already provisioned", vdisk)
	}
	nSegs := int((sizeBytes + SegmentBytes - 1) / SegmentBytes)
	refs := make([]SegmentRef, nSegs)
	for i := range refs {
		t.nextSegID++
		refs[i] = SegmentRef{Server: servers[i%len(servers)], SegmentID: t.nextSegID}
	}
	t.disks[vdisk] = &diskEntry{refs: refs}
	return nil
}

// Lookup resolves the segment containing lba.
func (t *SegmentTable) Lookup(vdisk uint32, lba uint64) (SegmentRef, bool) {
	e, ok := t.disks[vdisk]
	if !ok {
		return SegmentRef{}, false
	}
	idx := int(lba / SegmentBytes)
	if idx >= len(e.refs) {
		return SegmentRef{}, false
	}
	return e.refs[idx], true
}

// Size returns the provisioned size of a vdisk in bytes (0 if unknown).
func (t *SegmentTable) Size(vdisk uint32) uint64 {
	e, ok := t.disks[vdisk]
	if !ok {
		return 0
	}
	return uint64(len(e.refs)) * SegmentBytes
}

// Generation returns the vdisk's mapping generation: 0 for a never-remapped
// (or unknown) disk, bumped by every Remap and Grow. Clients snapshot it at
// issue time; a not-owner rejection is only worth retrying if the
// generation has moved since.
func (t *SegmentTable) Generation(vdisk uint32) uint32 {
	e, ok := t.disks[vdisk]
	if !ok {
		return 0
	}
	return e.gen
}

// Refs returns a copy of the vdisk's segment references in LBA order (nil
// if unknown). The control plane walks this to plan drains.
func (t *SegmentTable) Refs(vdisk uint32) []SegmentRef {
	e, ok := t.disks[vdisk]
	if !ok {
		return nil
	}
	return append([]SegmentRef(nil), e.refs...)
}

// Remap moves segment segIdx of a vdisk to a new block server and bumps
// the disk's generation — the cutover step of a live segment migration.
func (t *SegmentTable) Remap(vdisk uint32, segIdx int, server uint32) error {
	e, ok := t.disks[vdisk]
	if !ok {
		return fmt.Errorf("sa: remap of unknown vdisk %d", vdisk)
	}
	if segIdx < 0 || segIdx >= len(e.refs) {
		return fmt.Errorf("sa: remap of vdisk %d segment %d out of range [0,%d)", vdisk, segIdx, len(e.refs))
	}
	e.refs[segIdx].Server = server
	e.gen++
	return nil
}

// Grow extends a vdisk to newSizeBytes, striping the added segments
// round-robin across the given servers, and returns the new references.
// Shrinking is refused: segments under live I/O cannot be unmapped safely.
func (t *SegmentTable) Grow(vdisk uint32, newSizeBytes uint64, servers []uint32) ([]SegmentRef, error) {
	e, ok := t.disks[vdisk]
	if !ok {
		return nil, fmt.Errorf("sa: grow of unknown vdisk %d", vdisk)
	}
	if len(servers) == 0 {
		return nil, fmt.Errorf("sa: growing vdisk %d with no block servers", vdisk)
	}
	want := int((newSizeBytes + SegmentBytes - 1) / SegmentBytes)
	if want < len(e.refs) {
		return nil, fmt.Errorf("sa: vdisk %d shrink %d -> %d segments refused", vdisk, len(e.refs), want)
	}
	var added []SegmentRef
	for i := len(e.refs); i < want; i++ {
		t.nextSegID++
		ref := SegmentRef{Server: servers[(i-len(e.refs))%len(servers)], SegmentID: t.nextSegID}
		added = append(added, ref)
	}
	e.refs = append(e.refs, added...)
	if len(added) > 0 {
		e.gen++
	}
	return added, nil
}

// Delete unmaps a vdisk entirely; later Lookups miss, so racing I/O fails
// with a provisioning error rather than touching freed segments.
func (t *SegmentTable) Delete(vdisk uint32) error {
	if _, ok := t.disks[vdisk]; !ok {
		return fmt.Errorf("sa: delete of unknown vdisk %d", vdisk)
	}
	delete(t.disks, vdisk)
	return nil
}

// QoSSpec is a virtual disk's purchased service level.
type QoSSpec struct {
	IOPS         float64
	BandwidthBps float64
	BurstWindow  time.Duration // how much rate credit may accumulate
}

// qosState is the admission pacer for one disk: slot-based reservation for
// both IOPS and bytes, with a bounded credit window.
type qosState struct {
	spec     QoSSpec
	ioSlot   sim.Time
	byteSlot sim.Time
}

// Params is the SA cost model.
type Params struct {
	Offloaded bool // Solar: tables in FPGA, no per-I/O CPU

	// Software mode costs. PerIOCPU is CPU busy time charged to cores;
	// PerIODelay is additional latency that holds no core (lock waits,
	// scheduling, batching) with a log-normal tail.
	PerIOCPU    time.Duration
	PerIODelay  time.Duration
	CRCPer4K    time.Duration
	CryptoPer4K time.Duration
	Sigma       float64

	// Offloaded mode: FPGA lookup/pipeline latency attributed to SA.
	OffloadLatency time.Duration

	Encrypted bool
}

// SoftwareParams is the software SA used with kernel/Luna/RDMA frontends.
// Calibrated so the SA component of a 4 KiB I/O has a median around
// 25–30 µs with a long tail (Fig. 6's Luna-era SA share).
func SoftwareParams() Params {
	return Params{
		PerIOCPU:   5 * time.Microsecond,
		PerIODelay: 15 * time.Microsecond,
		CRCPer4K:   1600 * time.Nanosecond,
		Sigma:      0.55,
	}
}

// OffloadedParams is the Solar-era SA: lookups in the FPGA pipeline.
func OffloadedParams() Params {
	return Params{
		Offloaded:      true,
		OffloadLatency: 1200 * time.Nanosecond,
		Sigma:          0.30,
	}
}

// tenantBucket is one tenant's aggregate admission state on this agent:
// token buckets for IOPS and bytes riding the engine's coarse timer class,
// layered above the per-disk slot pacing. A nil bucket means that
// dimension is uncapped.
type tenantBucket struct {
	iops  *sim.TokenBucket
	bytes *sim.TokenBucket
}

// Agent is one compute server's storage agent.
type Agent struct {
	eng    *sim.Engine
	cores  *sim.Server
	fn     transport.Client
	segs   *SegmentTable
	qos    map[uint32]*qosState
	params Params
	rand   *sim.Rand

	collector *trace.Collector
	gen       uint32
	ciphers   map[uint32]*seccrypto.BlockCipher

	// Tenant QoS: vdisk → tenant name → shared buckets. Lookup-only maps
	// (never iterated), so ordering cannot leak into the simulation.
	tenantOf map[uint32]string
	tenants  map[string]*tenantBucket

	// Recycled BlockCRCs backing arrays (one-touch CRC metadata), so the
	// steady-state write path does not allocate per RPC.
	crcLists [][]uint32

	// Stats.
	IOs         uint64
	Splits      uint64
	Retries     uint64 // not-owner re-sends after a migration cutover
	QoSDelay    time.Duration
	TenantDelay time.Duration
}

// New creates an agent bound to a frontend client and a shared segment
// table (the management plane's view).
func New(eng *sim.Engine, cores *sim.Server, fn transport.Client, segs *SegmentTable, params Params) *Agent {
	return &Agent{
		eng:      eng,
		cores:    cores,
		fn:       fn,
		segs:     segs,
		qos:      map[uint32]*qosState{},
		ciphers:  map[uint32]*seccrypto.BlockCipher{},
		tenantOf: map[uint32]string{},
		tenants:  map[string]*tenantBucket{},
		params:   params,
		rand:     eng.Rand.Fork(),
	}
}

// SetCollector attaches a trace collector; every completed I/O is recorded.
func (a *Agent) SetCollector(c *trace.Collector) { a.collector = c }

// SetCipher installs the per-disk encryption key (software SA mode). When
// set and the agent is configured Encrypted, payloads are genuinely
// AES-CTR-encrypted per block before hitting the wire and decrypted on
// read completion, with block-independent counters so arrival order never
// matters.
func (a *Agent) SetCipher(vdisk uint32, c *seccrypto.BlockCipher) { a.ciphers[vdisk] = c }

// getCRCList returns a recycled BlockCRCs backing array (empty, capacity
// preserved); putCRCList returns one once its RPC completes.
func (a *Agent) getCRCList() []uint32 {
	if n := len(a.crcLists); n > 0 {
		l := a.crcLists[n-1]
		a.crcLists[n-1] = nil
		a.crcLists = a.crcLists[:n-1]
		return l
	}
	return nil
}

func (a *Agent) putCRCList(l []uint32) {
	a.crcLists = append(a.crcLists, l[:0])
}

// appendBlockCRCs appends the raw CRC-32C of each 4 KiB block of data
// (short tail blocks hashed at their actual length).
func (a *Agent) appendBlockCRCs(dst []uint32, data []byte) []uint32 {
	for off := 0; off < len(data); off += wire.BlockSize {
		end := off + wire.BlockSize
		if end > len(data) {
			end = len(data)
		}
		dst = append(dst, crc.Raw(data[off:end]))
	}
	return dst
}

// cryptBlocks en/decrypts buf in place, one counter stream per block.
func (a *Agent) cryptBlocks(vdisk uint32, segment, lba uint64, buf []byte) {
	c := a.ciphers[vdisk]
	if c == nil {
		return
	}
	for off := 0; off < len(buf); off += wire.BlockSize {
		end := off + wire.BlockSize
		if end > len(buf) {
			end = len(buf)
		}
		c.EncryptBlock(buf[off:end], buf[off:end], segment, lba+uint64(off), 0)
	}
}

// SetQoS installs or updates a disk's service level.
func (a *Agent) SetQoS(vdisk uint32, spec QoSSpec) {
	if spec.BurstWindow <= 0 {
		spec.BurstWindow = 10 * time.Millisecond
	}
	a.qos[vdisk] = &qosState{spec: spec}
}

// ClearQoS removes a disk's service level (volume deletion).
func (a *Agent) ClearQoS(vdisk uint32) {
	delete(a.qos, vdisk)
	delete(a.tenantOf, vdisk)
}

// SetTenant binds a vdisk to a tenant: its I/Os draw from the tenant's
// aggregate buckets (SetTenantQoS) before the per-disk pacing. An empty
// tenant unbinds.
func (a *Agent) SetTenant(vdisk uint32, tenant string) {
	if tenant == "" {
		delete(a.tenantOf, vdisk)
		return
	}
	a.tenantOf[vdisk] = tenant
}

// SetTenantQoS installs or live-updates a tenant's aggregate service level
// on this agent: token buckets refilled on the coarse timer class, layered
// above the per-disk slot pacing. A dimension that has never been given a
// positive rate stays uncapped; once capped, an update to <= 0 pauses the
// bucket — parked I/Os stay parked until a later update raises the rate
// again (SetRate re-arms their wake timers). Burst capacity is sized at
// install time from BurstWindow, with floors of one I/O and 4 MiB so a
// single large I/O always fits within burst.
func (a *Agent) SetTenantQoS(tenant string, spec QoSSpec) {
	if spec.BurstWindow <= 0 {
		spec.BurstWindow = 10 * time.Millisecond
	}
	window := spec.BurstWindow.Seconds()
	byteRate := spec.BandwidthBps / 8
	tb := a.tenants[tenant]
	if tb == nil {
		tb = &tenantBucket{}
		a.tenants[tenant] = tb
	}
	iopsBurst := spec.IOPS * window
	if iopsBurst < 1 {
		iopsBurst = 1
	}
	byteBurst := byteRate * window
	if byteBurst < 4<<20 {
		byteBurst = 4 << 20
	}
	tb.iops = retuneBucket(a.eng, tb.iops, spec.IOPS, iopsBurst)
	tb.bytes = retuneBucket(a.eng, tb.bytes, byteRate, byteBurst)
}

// retuneBucket applies one QoS dimension to an optional bucket: nil stays
// nil (uncapped) unless the rate is positive, and an existing bucket is
// retuned in place so its parked waiters survive the update.
func retuneBucket(eng *sim.Engine, b *sim.TokenBucket, rate, burst float64) *sim.TokenBucket {
	if b == nil {
		if rate <= 0 {
			return nil
		}
		return sim.NewTokenBucket(eng, rate, burst)
	}
	b.SetRate(rate)
	return b
}

// TenantBucketWaiting reports how many I/Os a tenant has parked in this
// agent's buckets (diagnostics).
func (a *Agent) TenantBucketWaiting(tenant string) int {
	tb := a.tenants[tenant]
	if tb == nil {
		return 0
	}
	n := 0
	if tb.iops != nil {
		n += tb.iops.Waiting()
	}
	if tb.bytes != nil {
		n += tb.bytes.Waiting()
	}
	return n
}

// tenantBucketFor resolves the tenant buckets a vdisk draws from (nil when
// the disk has no tenant binding or the tenant has no service level).
func (a *Agent) tenantBucketFor(vdisk uint32) *tenantBucket {
	name := a.tenantOf[vdisk]
	if name == "" {
		return nil
	}
	return a.tenants[name]
}

// admit reserves QoS capacity for an I/O, returning the queueing delay
// (zero when within the service level). Per Fig. 6's methodology, this
// policy delay is excluded from the latency components.
func (a *Agent) admit(vdisk uint32, bytes int) time.Duration {
	q := a.qos[vdisk]
	if q == nil {
		return 0
	}
	now := a.eng.Now()
	floor := now.Add(-q.spec.BurstWindow)
	if q.ioSlot < floor {
		q.ioSlot = floor
	}
	if q.byteSlot < floor {
		q.byteSlot = floor
	}
	var d time.Duration
	if q.spec.IOPS > 0 {
		q.ioSlot = q.ioSlot.Add(time.Duration(float64(time.Second) / q.spec.IOPS))
		if wait := q.ioSlot.Sub(now); wait > d {
			d = wait
		}
	}
	if q.spec.BandwidthBps > 0 {
		q.byteSlot = q.byteSlot.Add(time.Duration(float64(bytes*8) / q.spec.BandwidthBps * float64(time.Second)))
		if wait := q.byteSlot.Sub(now); wait > d {
			d = wait
		}
	}
	if d < 0 {
		d = 0
	}
	a.QoSDelay += d
	return d
}

// saBusy returns the CPU busy time for an I/O of n bytes.
func (a *Agent) saBusy(bytes int) time.Duration {
	blocks := (bytes + wire.BlockSize - 1) / wire.BlockSize
	busy := a.params.PerIOCPU + time.Duration(blocks)*a.params.CRCPer4K
	if a.params.Encrypted {
		busy += time.Duration(blocks) * a.params.CryptoPer4K
	}
	return a.rand.Jitter(busy, 0.1)
}

// saDelay returns the non-busy latency adder with its log-normal tail.
func (a *Agent) saDelay() time.Duration {
	if a.params.PerIODelay == 0 {
		return 0
	}
	return a.rand.LogNormal(a.params.PerIODelay, a.params.Sigma)
}

// split cuts [lba, lba+size) at segment boundaries, yielding per-segment
// ranges with their refs. Returns false if any range is unmapped.
func (a *Agent) split(vdisk uint32, lba uint64, size int) ([]ioPiece, bool) {
	var out []ioPiece
	off := 0
	for off < size {
		cur := lba + uint64(off)
		ref, ok := a.segs.Lookup(vdisk, cur)
		if !ok {
			return nil, false
		}
		segEnd := (cur/SegmentBytes + 1) * SegmentBytes
		n := size - off
		if uint64(off)+uint64(n) > uint64(off)+(segEnd-cur) {
			n = int(segEnd - cur)
		}
		out = append(out, ioPiece{ref: ref, lba: cur, off: off, n: n})
		off += n
	}
	if len(out) > 1 {
		a.Splits++
	}
	return out, true
}

type ioPiece struct {
	ref SegmentRef
	lba uint64
	off int
	n   int
}

// Result is the completion record of one I/O.
type Result struct {
	Data []byte // reads only
	Err  error
	Span *trace.Span
}

// Write performs a write I/O. done receives the completion record; the
// span's components follow Fig. 6's attribution.
func (a *Agent) Write(vdisk uint32, lba uint64, data []byte, done func(Result)) {
	a.io(vdisk, lba, len(data), data, done)
}

// Read performs a read I/O.
func (a *Agent) Read(vdisk uint32, lba uint64, size int, done func(Result)) {
	a.io(vdisk, lba, size, nil, done)
}

func (a *Agent) io(vdisk uint32, lba uint64, size int, data []byte, done func(Result)) {
	if done == nil {
		done = func(Result) {}
	}
	op := "read"
	opCode := uint8(wire.RPCReadReq)
	if data != nil {
		op = "write"
		opCode = wire.RPCWriteReq
	}
	span := &trace.Span{Op: op, Size: size}
	pieces, ok := a.split(vdisk, lba, size)
	if !ok {
		done(Result{Err: fmt.Errorf("sa: vdisk %d range [%#x,+%d) not provisioned", vdisk, lba, size), Span: span})
		return
	}
	a.IOs++
	a.gen++
	gen := a.gen

	admission := a.admit(vdisk, size)
	// Pacing is latency-tolerant: the admission wait rides the coarse
	// scheduling class (the instant is exact either way, only the cost of
	// waiting changes).
	proceed := func() {
		a.eng.ScheduleCoarse(admission, func() {
			start := a.eng.Now()
			afterSA := func() {
				saDone := a.eng.Now()
				span.Add(trace.SA, saDone.Sub(start))
				a.issue(span, vdisk, gen, opCode, pieces, data, size, saDone, done)
			}
			if a.params.Offloaded {
				// Table lookups ride the FPGA pipeline; no CPU is consumed.
				a.eng.Schedule(time.Duration(len(pieces))*a.params.OffloadLatency, afterSA)
			} else {
				a.cores.Submit(a.saBusy(size), func() {
					a.eng.Schedule(a.saDelay(), afterSA)
				})
			}
		})
	}
	tb := a.tenantBucketFor(vdisk)
	if tb == nil {
		// No tenant binding: identical event sequence to a tenant-free
		// build, so existing scenarios stay byte-for-byte unchanged.
		proceed()
		return
	}
	// Tenant admission layers above the per-disk pacing: one IOPS token,
	// then the I/O's bytes. Both Waits ride the coarse timer class; a
	// paused tenant (rate <= 0) parks here until SetTenantQoS raises it.
	t0 := a.eng.Now()
	afterBytes := func() {
		a.TenantDelay += a.eng.Now().Sub(t0)
		proceed()
	}
	afterIOPS := func() {
		if tb.bytes == nil {
			afterBytes()
			return
		}
		tb.bytes.Wait(float64(size), afterBytes)
	}
	if tb.iops == nil {
		afterIOPS()
		return
	}
	tb.iops.Wait(1, afterIOPS)
}

// issue sends one RPC per piece and assembles the completion.
func (a *Agent) issue(span *trace.Span, vdisk uint32, gen uint32, op uint8,
	pieces []ioPiece, data []byte, size int, fnStart sim.Time, done func(Result)) {
	remaining := len(pieces)
	var buf []byte
	if op == wire.RPCReadReq {
		buf = make([]byte, size)
	}
	var maxWall, maxSSD time.Duration
	var firstErr error
	for _, pc := range pieces {
		pc := pc
		msg := &transport.Message{
			Op:        op,
			VDisk:     vdisk,
			SegmentID: pc.ref.SegmentID,
			LBA:       pc.lba,
			Gen:       gen,
		}
		if a.params.Encrypted {
			msg.Flags |= wire.EBSFlagEncrypted
		}
		if op == wire.RPCWriteReq {
			msg.Data = data[pc.off : pc.off+pc.n]
			if a.params.Encrypted && !a.params.Offloaded {
				enc := append([]byte(nil), msg.Data...)
				a.cryptBlocks(vdisk, pc.ref.SegmentID, pc.lba, enc)
				msg.Data = enc
			}
			// One-touch CRC: the per-block raw CRC is computed exactly
			// once, here at SA ingress, over the bytes that will cross the
			// wire; every downstream verification folds these values
			// instead of re-walking the payload. The CRCPer4K cost was
			// already charged in saBusy (or rides the FPGA pipeline), so
			// this changes who reads the bytes, not what the simulation
			// charges. Carriage is deliberately mode-independent — the
			// -copy-path hatch changes where bytes live, never what
			// metadata travels — so both modes stay byte-identical.
			// Attached only for the offloaded (Solar) stacks, whose wire
			// format carries a per-block CRC; skipped when the DPU's SEC
			// engine will re-encrypt: the wire bytes are not ours to hash.
			if a.params.Offloaded && !a.params.Encrypted {
				msg.BlockCRCs = a.appendBlockCRCs(a.getCRCList(), msg.Data)
			}
		} else {
			msg.ReadLen = pc.n
		}
		var send func(server uint32, attempt int)
		send = func(server uint32, attempt int) {
			a.fn.Call(server, msg, func(resp *transport.Response) {
				// A not-owner rejection means a live migration cut the
				// segment over while this RPC was in flight. Re-resolve the
				// (generation-bumped) segment table; if it now points at a
				// different server, retry there. The CRC list must survive
				// the retry, so it is recycled only once the piece settles.
				if resp.Err != nil && errors.Is(resp.Err, transport.ErrNotOwner) && attempt < notOwnerRetries {
					if ref, ok := a.segs.Lookup(vdisk, pc.lba); ok && ref.Server != server {
						a.Retries++
						send(ref.Server, attempt+1)
						return
					}
				}
				if msg.BlockCRCs != nil {
					a.putCRCList(msg.BlockCRCs)
					msg.BlockCRCs = nil
				}
				if resp.Err != nil && firstErr == nil {
					firstErr = resp.Err
				}
				if op == wire.RPCReadReq && resp.Data != nil {
					copy(buf[pc.off:], resp.Data)
					if a.params.Encrypted && !a.params.Offloaded {
						a.cryptBlocks(vdisk, pc.ref.SegmentID, pc.lba, buf[pc.off:pc.off+pc.n])
					}
				}
				if resp.ServerWall > maxWall {
					maxWall = resp.ServerWall
				}
				if resp.SSDTime > maxSSD {
					maxSSD = resp.SSDTime
				}
				remaining--
				if remaining > 0 {
					return
				}
				// All pieces done: attribute.
				wall := a.eng.Now().Sub(fnStart)
				fn := wall - maxWall
				if fn < 0 {
					fn = 0
				}
				bn := maxWall - maxSSD
				if bn < 0 {
					bn = 0
				}
				span.Add(trace.FN, fn)
				span.Add(trace.BN, bn)
				span.Add(trace.SSD, maxSSD)
				if a.collector != nil {
					a.collector.Record(span)
				}
				done(Result{Data: buf, Err: firstErr, Span: span})
			})
		}
		send(pc.ref.Server, 0)
	}
}
