package sa

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"lunasolar/internal/sim"
	"lunasolar/internal/trace"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// fakeFN is an in-process transport that records calls and replies after a
// configurable delay with trace annotations.
type fakeFN struct {
	eng   *sim.Engine
	delay time.Duration
	calls []*transport.Message
	store map[uint64][]byte
}

func (f *fakeFN) Call(dst uint32, req *transport.Message, done func(*transport.Response)) {
	cp := *req
	f.calls = append(f.calls, &cp)
	f.eng.Schedule(f.delay, func() {
		resp := &transport.Response{
			ServerWall: 30 * time.Microsecond,
			SSDTime:    12 * time.Microsecond,
		}
		if req.Op == wire.RPCReadReq {
			resp.Data = make([]byte, req.ReadLen)
			if b, ok := f.store[req.LBA]; ok {
				copy(resp.Data, b)
			}
		} else if f.store != nil {
			f.store[req.LBA] = append([]byte(nil), req.Data...)
		}
		done(resp)
	})
}

func newAgent(t *testing.T, params Params) (*sim.Engine, *Agent, *fakeFN, *SegmentTable) {
	t.Helper()
	eng := sim.NewEngine(3)
	fn := &fakeFN{eng: eng, delay: 50 * time.Microsecond, store: map[uint64][]byte{}}
	segs := NewSegmentTable()
	if err := segs.Provision(1, 64<<20, []uint32{0xA1, 0xA2, 0xA3}); err != nil {
		t.Fatal(err)
	}
	cores := sim.NewServer(eng, "cpu", 4)
	a := New(eng, cores, fn, segs, params)
	return eng, a, fn, segs
}

func TestSegmentTableProvisionLookup(t *testing.T) {
	st := NewSegmentTable()
	if err := st.Provision(7, 10<<20, []uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// 10 MiB → 5 segments striped round-robin.
	servers := map[uint32]bool{}
	var ids []uint64
	for lba := uint64(0); lba < 10<<20; lba += SegmentBytes {
		ref, ok := st.Lookup(7, lba)
		if !ok {
			t.Fatalf("lookup failed at %#x", lba)
		}
		servers[ref.Server] = true
		ids = append(ids, ref.SegmentID)
	}
	if len(servers) != 3 {
		t.Fatalf("striping used %d servers", len(servers))
	}
	seen := map[uint64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("segment IDs not unique")
		}
		seen[id] = true
	}
	if _, ok := st.Lookup(7, 10<<20); ok {
		t.Fatal("lookup past the end succeeded")
	}
	if _, ok := st.Lookup(99, 0); ok {
		t.Fatal("unknown disk lookup succeeded")
	}
	if err := st.Provision(7, 1<<20, []uint32{1}); err == nil {
		t.Fatal("double provision allowed")
	}
}

func TestWriteSingleSegment(t *testing.T) {
	eng, a, fn, _ := newAgent(t, SoftwareParams())
	var res Result
	a.Write(1, 0x1000, make([]byte, 8192), func(r Result) { res = r })
	eng.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(fn.calls) != 1 {
		t.Fatalf("calls = %d, want 1 (no split)", len(fn.calls))
	}
	if fn.calls[0].SegmentID == 0 {
		t.Fatal("segment not resolved")
	}
	// Trace components all populated.
	if res.Span.Get(trace.SA) <= 0 || res.Span.Get(trace.FN) <= 0 ||
		res.Span.Get(trace.BN) <= 0 || res.Span.Get(trace.SSD) <= 0 {
		t.Fatalf("span incomplete: %v %v %v %v",
			res.Span.Get(trace.SA), res.Span.Get(trace.FN), res.Span.Get(trace.BN), res.Span.Get(trace.SSD))
	}
	// FN = wall - ServerWall; BN = 30-12=18µs; SSD = 12µs.
	if res.Span.Get(trace.BN) != 18*time.Microsecond || res.Span.Get(trace.SSD) != 12*time.Microsecond {
		t.Fatalf("BN/SSD attribution wrong: %v/%v", res.Span.Get(trace.BN), res.Span.Get(trace.SSD))
	}
}

func TestCrossSegmentSplit(t *testing.T) {
	eng, a, fn, _ := newAgent(t, SoftwareParams())
	lba := uint64(SegmentBytes) - 4096
	done := false
	a.Write(1, lba, make([]byte, 12288), func(r Result) { done = r.Err == nil })
	eng.Run()
	if !done {
		t.Fatal("split write failed")
	}
	if len(fn.calls) != 2 {
		t.Fatalf("calls = %d, want 2", len(fn.calls))
	}
	if fn.calls[0].SegmentID == fn.calls[1].SegmentID {
		t.Fatal("split pieces share a segment")
	}
	if len(fn.calls[0].Data)+len(fn.calls[1].Data) != 12288 {
		t.Fatal("split lost bytes")
	}
	if a.Splits != 1 {
		t.Fatalf("Splits = %d", a.Splits)
	}
}

func TestReadReassemblesSplit(t *testing.T) {
	eng, a, fn, _ := newAgent(t, SoftwareParams())
	lba := uint64(SegmentBytes) - 8192
	data := make([]byte, 16384)
	for i := range data {
		data[i] = byte(i * 7)
	}
	a.Write(1, lba, data, nil)
	eng.Run()
	var got []byte
	a.Read(1, lba, len(data), func(r Result) { got = r.Data })
	eng.Run()
	if len(got) != len(data) {
		t.Fatalf("read %d bytes", len(got))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	_ = fn
}

func TestUnprovisionedErrors(t *testing.T) {
	eng, a, _, _ := newAgent(t, SoftwareParams())
	var res Result
	a.Read(1, 1<<30, 4096, func(r Result) { res = r })
	eng.Run()
	if res.Err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	a.Write(42, 0, make([]byte, 4096), func(r Result) { res = r })
	eng.Run()
	if res.Err == nil {
		t.Fatal("unknown-disk write succeeded")
	}
}

func TestQoSPacing(t *testing.T) {
	eng, a, _, _ := newAgent(t, OffloadedParams())
	a.SetQoS(1, QoSSpec{IOPS: 1000, BandwidthBps: 1e9, BurstWindow: time.Millisecond})
	done := 0
	for i := 0; i < 50; i++ {
		a.Write(1, uint64(i)<<12, make([]byte, 4096), func(Result) { done++ })
	}
	eng.Run()
	if done != 50 {
		t.Fatalf("done %d/50", done)
	}
	// 50 I/Os at 1000 IOPS with 1ms burst → ≥ ~45ms.
	if eng.Now().Duration() < 40*time.Millisecond {
		t.Fatalf("finished in %v; pacing absent", eng.Now().Duration())
	}
	if a.QoSDelay == 0 {
		t.Fatal("no QoS delay accounted")
	}
}

func TestOffloadedSATiny(t *testing.T) {
	eng, a, _, _ := newAgent(t, OffloadedParams())
	var soft Result
	a.Write(1, 0, make([]byte, 4096), func(r Result) { soft = r })
	eng.Run()
	if sa := soft.Span.Get(trace.SA); sa > 5*time.Microsecond {
		t.Fatalf("offloaded SA = %v, want ~1.2µs", sa)
	}

	eng2, a2, _, _ := newAgent(t, SoftwareParams())
	var sw Result
	a2.Write(1, 0, make([]byte, 4096), func(r Result) { sw = r })
	eng2.Run()
	if sw.Span.Get(trace.SA) < 4*soft.Span.Get(trace.SA) {
		t.Fatalf("software SA %v not ≫ offloaded %v", sw.Span.Get(trace.SA), soft.Span.Get(trace.SA))
	}
}

func TestSegmentTableProvisionZeroSize(t *testing.T) {
	st := NewSegmentTable()
	if err := st.Provision(5, 0, []uint32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Lookup(5, 0); ok {
		t.Fatal("segmentless disk lookup succeeded")
	}
	if st.Size(5) != 0 {
		t.Fatalf("Size = %d, want 0", st.Size(5))
	}
	if st.Generation(5) != 0 {
		t.Fatalf("Generation = %d, want 0", st.Generation(5))
	}
	// A later Grow maps space and bumps the generation.
	added, err := st.Grow(5, 4<<20, []uint32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 2 {
		t.Fatalf("Grow added %d segments, want 2", len(added))
	}
	if st.Generation(5) != 1 {
		t.Fatalf("Generation after grow = %d, want 1", st.Generation(5))
	}
	if _, ok := st.Lookup(5, 3<<20); !ok {
		t.Fatal("lookup after grow missed")
	}
}

func TestSegmentTableRemapBumpsGeneration(t *testing.T) {
	st := NewSegmentTable()
	if err := st.Provision(3, 4<<20, []uint32{10, 11}); err != nil {
		t.Fatal(err)
	}
	if err := st.Remap(3, 1, 99); err != nil {
		t.Fatal(err)
	}
	if st.Generation(3) != 1 {
		t.Fatalf("Generation = %d, want 1", st.Generation(3))
	}
	ref, ok := st.Lookup(3, SegmentBytes)
	if !ok || ref.Server != 99 {
		t.Fatalf("remapped lookup = %+v ok=%v", ref, ok)
	}
	if err := st.Remap(3, 5, 99); err == nil {
		t.Fatal("out-of-range remap allowed")
	}
	if err := st.Remap(77, 0, 99); err == nil {
		t.Fatal("unknown-disk remap allowed")
	}
}

func TestSegmentTableGrowRefusesShrinkAndDelete(t *testing.T) {
	st := NewSegmentTable()
	if err := st.Provision(9, 8<<20, []uint32{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Grow(9, 2<<20, []uint32{1}); err == nil {
		t.Fatal("shrink allowed")
	}
	// Growing to the same size is a no-op, not an error.
	added, err := st.Grow(9, 8<<20, []uint32{1})
	if err != nil || len(added) != 0 {
		t.Fatalf("no-op grow: added=%d err=%v", len(added), err)
	}
	if st.Generation(9) != 0 {
		t.Fatal("no-op grow bumped generation")
	}
	if err := st.Delete(9); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Lookup(9, 0); ok {
		t.Fatal("deleted disk lookup succeeded")
	}
	if err := st.Delete(9); err == nil {
		t.Fatal("double delete allowed")
	}
}

// Tenant buckets pace the aggregate of all disks bound to the tenant,
// above any per-disk pacing.
func TestTenantPacingAggregate(t *testing.T) {
	eng, a, _, segs := newAgent(t, OffloadedParams())
	if err := segs.Provision(2, 64<<20, []uint32{0xA1, 0xA2, 0xA3}); err != nil {
		t.Fatal(err)
	}
	a.SetTenant(1, "acme")
	a.SetTenant(2, "acme")
	a.SetTenantQoS("acme", QoSSpec{IOPS: 1000, BurstWindow: time.Millisecond})
	done := 0
	for i := 0; i < 50; i++ {
		a.Write(uint32(1+i%2), uint64(i)<<12, make([]byte, 4096), func(Result) { done++ })
	}
	eng.Run()
	if done != 50 {
		t.Fatalf("done %d/50", done)
	}
	// 50 I/Os across two disks sharing a 1000 IOPS tenant cap → ≥ ~45ms.
	if eng.Now().Duration() < 40*time.Millisecond {
		t.Fatalf("finished in %v; tenant pacing absent", eng.Now().Duration())
	}
	if a.TenantDelay == 0 {
		t.Fatal("no tenant delay accounted")
	}
}

// Setting a tenant's rate to zero parks its I/Os; raising it again re-arms
// the parked waiters (the SetRate re-arm path) and they complete.
func TestTenantPauseResume(t *testing.T) {
	eng, a, _, _ := newAgent(t, OffloadedParams())
	a.SetTenant(1, "acme")
	a.SetTenantQoS("acme", QoSSpec{IOPS: 1000, BurstWindow: time.Millisecond})
	a.SetTenantQoS("acme", QoSSpec{IOPS: 0}) // pause
	done := 0
	for i := 0; i < 3; i++ {
		a.Write(1, uint64(i)<<12, make([]byte, 4096), func(Result) { done++ })
	}
	eng.Run()
	if done != 1 {
		// The burst floor holds one token, so exactly one I/O slips
		// through before the pause bites.
		t.Fatalf("done = %d with tenant paused, want 1", done)
	}
	if w := a.TenantBucketWaiting("acme"); w != 2 {
		t.Fatalf("parked waiters = %d, want 2", w)
	}
	a.SetTenantQoS("acme", QoSSpec{IOPS: 1000}) // resume
	eng.Run()
	if done != 3 {
		t.Fatalf("done = %d after resume, want 3", done)
	}
}

// migratingFN rejects one server's requests with ErrNotOwner, modelling a
// block server that released the segment mid-flight.
type migratingFN struct {
	eng    *sim.Engine
	reject uint32
	calls  []uint32
}

func (f *migratingFN) Call(dst uint32, req *transport.Message, done func(*transport.Response)) {
	f.calls = append(f.calls, dst)
	f.eng.Schedule(50*time.Microsecond, func() {
		if dst == f.reject {
			done(&transport.Response{Err: fmt.Errorf("released: %w", transport.ErrNotOwner)})
			return
		}
		done(&transport.Response{ServerWall: 30 * time.Microsecond, SSDTime: 12 * time.Microsecond})
	})
}

// A not-owner rejection that races a cutover retries against the fresh
// segment-table entry and succeeds.
func TestNotOwnerRetryAfterRemap(t *testing.T) {
	eng := sim.NewEngine(3)
	fn := &migratingFN{eng: eng, reject: 0xA1}
	segs := NewSegmentTable()
	if err := segs.Provision(1, 4<<20, []uint32{0xA1}); err != nil {
		t.Fatal(err)
	}
	a := New(eng, sim.NewServer(eng, "cpu", 4), fn, segs, OffloadedParams())
	var res Result
	a.Write(1, 0, make([]byte, 4096), func(r Result) { res = r })
	// Cut the segment over while the first RPC is in flight.
	eng.Schedule(10*time.Microsecond, func() {
		if err := segs.Remap(1, 0, 0xB1); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if a.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", a.Retries)
	}
	if len(fn.calls) != 2 || fn.calls[0] != 0xA1 || fn.calls[1] != 0xB1 {
		t.Fatalf("calls = %x, want [a1 b1]", fn.calls)
	}
}

// Without a table change the rejection surfaces instead of looping.
func TestNotOwnerWithoutRemapSurfaces(t *testing.T) {
	eng := sim.NewEngine(3)
	fn := &migratingFN{eng: eng, reject: 0xA1}
	segs := NewSegmentTable()
	if err := segs.Provision(1, 4<<20, []uint32{0xA1}); err != nil {
		t.Fatal(err)
	}
	a := New(eng, sim.NewServer(eng, "cpu", 4), fn, segs, OffloadedParams())
	var res Result
	a.Write(1, 0, make([]byte, 4096), func(r Result) { res = r })
	eng.Run()
	if !errors.Is(res.Err, transport.ErrNotOwner) {
		t.Fatalf("err = %v, want ErrNotOwner", res.Err)
	}
	if a.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", a.Retries)
	}
}

// Property: splitting covers the range exactly, never crosses a segment
// boundary, and pieces are contiguous.
func TestSplitProperty(t *testing.T) {
	eng := sim.NewEngine(4)
	segs := NewSegmentTable()
	if err := segs.Provision(1, 64<<20, []uint32{1, 2}); err != nil {
		t.Fatal(err)
	}
	a := New(eng, sim.NewServer(eng, "cpu", 1), &fakeFN{eng: eng}, segs, OffloadedParams())
	f := func(lbaRaw uint32, sizeRaw uint16) bool {
		lba := uint64(lbaRaw) % (63 << 20)
		lba &^= 4095
		size := int(sizeRaw)%(256<<10) + 1
		if lba+uint64(size) > 64<<20 {
			return true
		}
		pieces, ok := a.split(1, lba, size)
		if !ok {
			return false
		}
		covered := 0
		next := lba
		for _, p := range pieces {
			if p.lba != next {
				return false
			}
			if p.lba/SegmentBytes != (p.lba+uint64(p.n)-1)/SegmentBytes {
				return false // piece crosses a segment boundary
			}
			covered += p.n
			next += uint64(p.n)
		}
		return covered == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
