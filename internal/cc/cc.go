// Package cc implements the congestion controllers every stack runs on the
// unified control plane: a DCTCP-style ECN-proportional controller for
// Luna, the INT-driven HPCC controller Solar runs per path ("we use a
// per-packet ACK to perform a fine-grained congestion control algorithm
// (e.g., HPCC)", §4.8), and the RDMA plane's selectable family — the
// fixed-window RC baseline, rate-based DCQCN driven by CNP frames, and
// delay-based Swift with hop-scaled targets. Window-based controllers
// bound bytes in flight through Window(); rate-based ones additionally
// publish a Rate() that senders enforce with a Pacer riding the coarse
// timer class.
package cc

import (
	"time"

	"lunasolar/internal/wire"
)

// Feedback is what an arriving acknowledgment (or congestion notification)
// tells the controller. Fields a stack cannot measure stay zero; each
// controller reads only the signals its algorithm is defined on.
type Feedback struct {
	RTT        time.Duration
	AckedBytes int
	ECNMarked  bool
	INT        []wire.INTHop // per-hop telemetry, HPCC only
	// Delay is a per-packet delay sample (send to ack arrival, Karn-safe),
	// for delay-based controllers. Zero when the ack carried no usable
	// sample; Swift falls back to RTT.
	Delay time.Duration
	// CNP marks a standalone congestion-notification frame (DCQCN): no
	// bytes are acknowledged, the signal is the notification itself.
	CNP bool
	// Hops is the fabric hop count the acked packet crossed (echoed by the
	// receiver), scaling Swift's target delay.
	Hops int
}

// Controller adjusts a congestion window in bytes and, for rate-based
// algorithms, a sending rate the stack's pacer enforces.
type Controller interface {
	// OnAck processes one acknowledgment or congestion notification.
	OnAck(fb Feedback)
	// OnLoss signals a fast-retransmit-grade loss (duplicate ACK / OOO).
	OnLoss()
	// OnTimeout signals an RTO-grade loss.
	OnTimeout()
	// Window returns the current congestion window in bytes.
	Window() int
	// Rate returns the current sending rate in bytes/second, or 0 for
	// window-only controllers (no pacing; the window alone governs).
	Rate() float64
}

// DCTCP is the ECN-fraction-proportional controller. Alpha is updated once
// per window of acknowledged bytes; the window is reduced by alpha/2 when
// any marks were seen, and grows by one MSS per window otherwise (plus
// slow-start doubling below ssthresh).
type DCTCP struct {
	mss      int
	cwnd     int
	ssthresh int
	maxCwnd  int

	alpha       float64
	g           float64
	ackedBytes  int
	markedBytes int
}

// NewDCTCP creates a controller with the given MSS and window bounds.
func NewDCTCP(mss, initCwnd, maxCwnd int) *DCTCP {
	return &DCTCP{mss: mss, cwnd: initCwnd, ssthresh: maxCwnd, maxCwnd: maxCwnd, g: 1.0 / 16}
}

// Window returns the congestion window in bytes.
func (d *DCTCP) Window() int { return d.cwnd }

// Rate returns 0: DCTCP is window-only.
func (d *DCTCP) Rate() float64 { return 0 }

// Alpha returns the smoothed marked fraction (for tests and telemetry).
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnAck processes one acknowledgment.
//
//lint:hotpath
func (d *DCTCP) OnAck(fb Feedback) {
	d.ackedBytes += fb.AckedBytes
	if fb.ECNMarked {
		d.markedBytes += fb.AckedBytes
	}
	if d.ackedBytes < d.cwnd {
		// Still inside the current window: grow in slow start only.
		if d.cwnd < d.ssthresh {
			d.cwnd += fb.AckedBytes
			if d.cwnd > d.maxCwnd {
				d.cwnd = d.maxCwnd
			}
		}
		return
	}
	// One window acknowledged: fold the marked fraction into alpha.
	f := float64(d.markedBytes) / float64(d.ackedBytes)
	d.alpha = (1-d.g)*d.alpha + d.g*f
	if d.markedBytes > 0 {
		d.cwnd = int(float64(d.cwnd) * (1 - d.alpha/2))
		if d.cwnd < d.mss {
			d.cwnd = d.mss
		}
		d.ssthresh = d.cwnd
	} else if d.cwnd >= d.ssthresh {
		d.cwnd += d.mss // congestion avoidance
		if d.cwnd > d.maxCwnd {
			d.cwnd = d.maxCwnd
		}
	}
	d.ackedBytes, d.markedBytes = 0, 0
}

// OnLoss halves the window.
func (d *DCTCP) OnLoss() {
	d.cwnd /= 2
	if d.cwnd < d.mss {
		d.cwnd = d.mss
	}
	d.ssthresh = d.cwnd
}

// OnTimeout collapses to one MSS.
func (d *DCTCP) OnTimeout() {
	d.ssthresh = d.cwnd / 2
	if d.ssthresh < 2*d.mss {
		d.ssthresh = 2 * d.mss
	}
	d.cwnd = d.mss
}

// HPCC is the High Precision Congestion Control window computation driven
// by per-hop INT: each link's utilization estimate combines queue depth and
// delivery rate; the window is scaled toward eta (the target utilization)
// of the most utilized hop. This implementation follows the SIGCOMM'19
// paper's per-ack update with additive increase W_ai.
type HPCC struct {
	mss     int
	maxCwnd int
	baseRTT time.Duration
	eta     float64
	wai     int

	cwnd int
	wc   int // reference window, updated once per RTT
	// Per-hop history for rate computation, stored positionally: slot i
	// holds hop i of the flow's current route, validated by HopID and
	// reset on a reroute. A fixed array (INT stacks carry at most
	// wire.MaxINTHops entries) keeps OnAck allocation-free.
	hist    [wire.MaxINTHops]hopHist
	sinceWc int // bytes acked since wc update
}

// hopHist is one INT hop's last-seen telemetry counters.
type hopHist struct {
	id      uint16
	valid   bool
	txBytes uint64
	ts      uint64
}

// NewHPCC creates a controller. baseRTT is the uncongested fabric RTT; eta
// is the target utilization (the paper uses 0.95).
func NewHPCC(mss, initCwnd, maxCwnd int, baseRTT time.Duration) *HPCC {
	return &HPCC{
		mss: mss, maxCwnd: maxCwnd, baseRTT: baseRTT,
		eta: 0.95, wai: mss / 4,
		cwnd: initCwnd, wc: initCwnd,
	}
}

// Window returns the congestion window in bytes.
func (h *HPCC) Window() int { return h.cwnd }

// Rate returns 0: HPCC as implemented here is window-only.
func (h *HPCC) Rate() float64 { return 0 }

// maxUtilization computes max over hops of the normalized inflight estimate
// U_j = qlen/(B·T) + txRate/B.
//
//lint:hotpath
func (h *HPCC) maxUtilization(hops []wire.INTHop) float64 {
	maxU := 0.0
	for i, hop := range hops {
		if i >= len(h.hist) {
			break // INT stacks never exceed MaxINTHops; defensive
		}
		bps := float64(hop.RateMbs) * 1e6
		if bps <= 0 {
			continue
		}
		bdp := bps * h.baseRTT.Seconds() / 8 // bytes
		u := float64(hop.QLenB) / bdp

		// Delivery rate from consecutive telemetry of the same hop. A slot
		// whose stored HopID disagrees (the path was rerouted mid-life)
		// contributes no rate sample and is reseeded below.
		sl := &h.hist[i]
		if sl.valid && sl.id == hop.HopID && hop.TSNanos > sl.ts && hop.TxBytes >= sl.txBytes {
			dt := float64(hop.TSNanos-sl.ts) / 1e9
			rate := float64(hop.TxBytes-sl.txBytes) / dt // bytes/s
			u += rate * 8 / bps
		}
		sl.id, sl.valid = hop.HopID, true
		sl.txBytes, sl.ts = hop.TxBytes, hop.TSNanos

		if u > maxU {
			maxU = u
		}
	}
	return maxU
}

// OnAck processes one acknowledgment carrying INT.
//
//lint:hotpath
func (h *HPCC) OnAck(fb Feedback) {
	h.sinceWc += fb.AckedBytes
	u := h.maxUtilization(fb.INT)
	if u <= 0 {
		// No telemetry (probe or first ack): gentle additive increase.
		h.cwnd += h.wai
	} else if u >= h.eta {
		h.cwnd = int(float64(h.wc)/(u/h.eta)) + h.wai
	} else {
		h.cwnd = h.wc + h.wai
	}
	if h.cwnd < h.mss {
		h.cwnd = h.mss
	}
	if h.cwnd > h.maxCwnd {
		h.cwnd = h.maxCwnd
	}
	// Update the reference window once per RTT's worth of acks.
	if h.sinceWc >= h.wc {
		h.wc = h.cwnd
		h.sinceWc = 0
	}
}

// OnLoss multiplicatively backs off (losses are rare under HPCC; this
// covers failure transients).
func (h *HPCC) OnLoss() {
	h.cwnd /= 2
	if h.cwnd < h.mss {
		h.cwnd = h.mss
	}
	h.wc = h.cwnd
}

// OnTimeout collapses to one MSS.
func (h *HPCC) OnTimeout() {
	h.cwnd = h.mss
	h.wc = h.cwnd
}

// Static is a fixed-window controller modelling the RDMA RC baseline's
// hardware flow control: the window never moves and no rate is paced.
// DCQCN (CNP-throttled rate control) and Swift are the reactive
// alternatives the RDMA plane can swap in.
type Static struct{ win int }

// NewStatic creates a fixed window of win bytes.
func NewStatic(win int) *Static { return &Static{win: win} }

// Window returns the fixed window.
func (s *Static) Window() int { return s.win }

// Rate returns 0: the static baseline never paces.
func (s *Static) Rate() float64 { return 0 }

// OnAck is a no-op.
func (s *Static) OnAck(Feedback) {}

// OnLoss is a no-op (RC retransmits in hardware).
func (s *Static) OnLoss() {}

// OnTimeout is a no-op.
func (s *Static) OnTimeout() {}
