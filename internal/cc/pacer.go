package cc

import (
	"time"

	"lunasolar/internal/sim"
)

// Pacer enforces a rate-based controller's Rate() on a sender's transmit
// loop. The loop asks Ready before each transmission, Charges the bytes it
// sends, and Arms a resume callback when it has to stop early. The resume
// timer rides the engine's coarse timer class — pacing gaps tolerate tick
// quantization exactly the way RTOs do, and the wheel-on/off byte-identity
// gate keeps the schedule independent of the wheel. Window-only
// controllers report Rate()==0 and the loop never consults the pacer, so
// embedding one is free for DCTCP/HPCC/Swift/static senders.
type Pacer struct {
	eng    *sim.Engine
	fire   func(any)
	arg    any
	nextAt sim.Time
	timer  sim.Timer
}

// Init binds the pacer to an engine and its resume callback. fire must be
// a package-level func (determinism: no per-call closures on the hot
// path); arg is handed back to it, typically the owning sender.
func (p *Pacer) Init(eng *sim.Engine, fire func(any), arg any) {
	p.eng, p.fire, p.arg = eng, fire, arg
}

// Ready reports whether a transmission may start at now.
//
//lint:hotpath
func (p *Pacer) Ready(now sim.Time) bool { return now >= p.nextAt }

// Charge accounts one transmission of n bytes at rate bytes/second,
// pushing the next-allowed time forward by its serialization delay.
//
//lint:hotpath
func (p *Pacer) Charge(now sim.Time, n int, rate float64) {
	start := p.nextAt
	if start < now {
		start = now
	}
	p.nextAt = start.Add(time.Duration(float64(n) / rate * float64(time.Second)))
}

// Arm schedules the resume callback for the next-allowed time. A no-op
// while a resume is already pending.
func (p *Pacer) Arm(now sim.Time) {
	if p.timer.Active() {
		return
	}
	d := p.nextAt.Sub(now)
	if d < 0 {
		d = 0
	}
	p.timer = p.eng.ScheduleCoarseArg(d, p.fire, p.arg)
}
