package cc

import (
	"testing"
	"time"

	"lunasolar/internal/sim"
	"lunasolar/internal/wire"
)

const lineRate = 25e9 / 8 // 25 Gbit/s in bytes/s

func TestDCQCNCutsOnCNP(t *testing.T) {
	d := NewDCQCN(mss, 64*mss, lineRate)
	if d.Rate() != lineRate {
		t.Fatalf("initial rate = %v, want line", d.Rate())
	}
	d.OnAck(Feedback{CNP: true})
	if d.Rate() >= lineRate {
		t.Fatalf("rate %v not cut by CNP", d.Rate())
	}
	if d.Window() != 64*mss {
		t.Fatalf("DCQCN window moved: %d", d.Window())
	}
}

func TestDCQCNRecoversAfterQuiet(t *testing.T) {
	d := NewDCQCN(mss, 64*mss, lineRate)
	for i := 0; i < 8; i++ {
		d.OnAck(Feedback{CNP: true})
	}
	throttled := d.Rate()
	if throttled >= lineRate/2 {
		t.Fatalf("rate %v barely moved after CNP burst", throttled)
	}
	// A long quiet stretch of clean acks climbs back toward line rate.
	for i := 0; i < 5000; i++ {
		d.OnAck(Feedback{AckedBytes: mss})
	}
	if d.Rate() <= throttled {
		t.Fatalf("rate %v did not recover from %v", d.Rate(), throttled)
	}
	if d.Rate() > lineRate {
		t.Fatalf("rate %v above line", d.Rate())
	}
}

func TestDCQCNAlphaDecaysOnCleanAcks(t *testing.T) {
	d := NewDCQCN(mss, 64*mss, lineRate)
	d.OnAck(Feedback{CNP: true})
	hot := d.Alpha()
	for i := 0; i < 64; i++ {
		d.OnAck(Feedback{AckedBytes: mss})
	}
	if d.Alpha() >= hot {
		t.Fatalf("alpha %v did not cool from %v on clean acks", d.Alpha(), hot)
	}
	// A cooled alpha makes the next CNP cut gentler than the first.
	before := d.Rate()
	d.OnAck(Feedback{CNP: true})
	if cut := d.Rate() / before; cut <= 0.5 {
		t.Fatalf("cooled cut factor %v, want > 0.5 (first cut halves)", cut)
	}
}

func TestDCQCNTimeoutFloors(t *testing.T) {
	d := NewDCQCN(mss, 64*mss, lineRate)
	d.OnTimeout()
	if d.Rate() != lineRate/100 {
		t.Fatalf("timeout rate = %v, want floor %v", d.Rate(), lineRate/100)
	}
	d.OnLoss()
	if d.Rate() < lineRate/100 {
		t.Fatalf("rate %v fell under the floor", d.Rate())
	}
}

func TestSwiftTracksDelayTarget(t *testing.T) {
	s := NewSwift(mss, 16*mss, 256*mss, 20*time.Microsecond, 2*time.Microsecond, lineRate)
	before := s.Window()
	// Below target: additive growth.
	s.OnAck(Feedback{AckedBytes: mss, Delay: 5 * time.Microsecond, Hops: 2})
	if s.Window() <= before {
		t.Fatalf("window %d did not grow below target", s.Window())
	}
	// Far above target: multiplicative cut (after enough acked bytes for
	// the once-per-window decrease guard).
	grown := s.Window()
	for i := 0; i < 300 && s.Window() >= grown; i++ {
		s.OnAck(Feedback{AckedBytes: mss, Delay: 400 * time.Microsecond, Hops: 2})
	}
	if s.Window() >= grown {
		t.Fatalf("window %d never cut above target", s.Window())
	}
	// Pacing: once acks have established the hop-scaled target, the window
	// is spread over it rather than launched as one burst.
	if r := s.Rate(); r <= 0 || r > lineRate {
		t.Fatalf("paced Rate = %v, want in (0, %v]", r, lineRate)
	}
	s.SetPacing(false)
	if r := s.Rate(); r != 0 {
		t.Fatalf("Rate with pacing off = %v, want 0", r)
	}
	s.SetPacing(true)
	if r := s.Rate(); r <= 0 {
		t.Fatalf("Rate after re-enabling pacing = %v, want > 0", r)
	}
}

func TestSwiftRateZeroBeforeFirstAck(t *testing.T) {
	s := NewSwift(mss, 16*mss, 256*mss, 20*time.Microsecond, 2*time.Microsecond, lineRate)
	if r := s.Rate(); r != 0 {
		t.Fatalf("Rate before any ack = %v, want 0 (no target yet)", r)
	}
	s.OnAck(Feedback{AckedBytes: mss, Delay: 5 * time.Microsecond, Hops: 2})
	if r := s.Rate(); r <= 0 || r > lineRate {
		t.Fatalf("Rate after first ack = %v, want in (0, %v]", r, lineRate)
	}
}

func TestSwiftHopScaling(t *testing.T) {
	// The same delay reads as congestion on a short path but as expected
	// propagation on a long one: more hops → higher target → less cutting.
	short := NewSwift(mss, 64*mss, 256*mss, 10*time.Microsecond, 5*time.Microsecond, lineRate)
	long := NewSwift(mss, 64*mss, 256*mss, 10*time.Microsecond, 5*time.Microsecond, lineRate)
	for i := 0; i < 200; i++ {
		short.OnAck(Feedback{AckedBytes: mss, Delay: 30 * time.Microsecond, Hops: 1})
		long.OnAck(Feedback{AckedBytes: mss, Delay: 30 * time.Microsecond, Hops: 6})
	}
	if short.Window() >= long.Window() {
		t.Fatalf("short-path window %d >= long-path window %d", short.Window(), long.Window())
	}
}

func TestHPCCEmptyINTAdditiveIncrease(t *testing.T) {
	// A probe or handshake ack carries no telemetry; HPCC must not stall
	// or cut — exactly one gentle additive step.
	h := NewHPCC(mss, 8*mss, 256*mss, 10*time.Microsecond)
	before := h.Window()
	h.OnAck(Feedback{AckedBytes: mss})
	if h.Window() != before+mss/4 {
		t.Fatalf("window = %d after empty-INT ack, want %d", h.Window(), before+mss/4)
	}
}

// randomFeedback builds an arbitrary but deterministic Feedback from the
// shared random stream, covering every signal the controllers consume.
func randomFeedback(rng *sim.Rand) Feedback {
	fb := Feedback{
		RTT:        time.Duration(rng.Intn(200)) * time.Microsecond,
		AckedBytes: rng.Intn(16 * mss),
		ECNMarked:  rng.Bernoulli(0.3),
		Delay:      time.Duration(rng.Intn(500)) * time.Microsecond,
		CNP:        rng.Bernoulli(0.1),
		Hops:       rng.Intn(6),
	}
	if rng.Bernoulli(0.5) {
		n := 1 + rng.Intn(int(wire.MaxINTHops))
		for i := 0; i < n; i++ {
			fb.INT = append(fb.INT, wire.INTHop{
				HopID: uint16(rng.Intn(4)), QLenB: uint32(rng.Intn(500_000)),
				TxBytes: uint64(rng.Intn(1 << 30)), RateMbs: 25000,
				TSNanos: uint64(rng.Intn(1 << 30)),
			})
		}
	}
	return fb
}

// checkInvariants asserts the bounds every controller must hold no matter
// what feedback it has seen.
func checkInvariants(t *testing.T, name string, c Controller, maxCwnd int, maxRate float64) {
	t.Helper()
	if w := c.Window(); w < mss || w > maxCwnd {
		t.Fatalf("%s: window %d out of [%d, %d]", name, w, mss, maxCwnd)
	}
	if r := c.Rate(); r < 0 || r > maxRate {
		t.Fatalf("%s: rate %v out of [0, %v]", name, r, maxRate)
	}
}

// TestControllerInvariants drives every controller with arbitrary feedback
// interleaved with losses and timeouts: windows stay within [MSS, max],
// rates within [0, line].
func TestControllerInvariants(t *testing.T) {
	const maxCwnd = 64 * mss
	make := map[string]func() Controller{
		"static": func() Controller { return NewStatic(maxCwnd) },
		"dctcp":  func() Controller { return NewDCTCP(mss, 8*mss, maxCwnd) },
		"hpcc":   func() Controller { return NewHPCC(mss, 8*mss, maxCwnd, 10*time.Microsecond) },
		"dcqcn":  func() Controller { return NewDCQCN(mss, maxCwnd, lineRate) },
		"swift": func() Controller {
			return NewSwift(mss, 8*mss, maxCwnd, 12*time.Microsecond, 3*time.Microsecond, lineRate)
		},
	}
	for name, mk := range make {
		rng := sim.NewRand(42)
		c := mk()
		for i := 0; i < 20_000; i++ {
			switch {
			case rng.Bernoulli(0.01):
				c.OnLoss()
			case rng.Bernoulli(0.005):
				c.OnTimeout()
			default:
				c.OnAck(randomFeedback(rng))
			}
			checkInvariants(t, name, c, maxCwnd, lineRate)
		}
	}
}

// FuzzFeedback feeds fuzzer-chosen feedback sequences to the reactive
// controllers and checks the same invariants the property test enforces.
func FuzzFeedback(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, mix uint8) {
		const maxCwnd = 64 * mss
		ctrls := []struct {
			name string
			c    Controller
		}{
			{"dctcp", NewDCTCP(mss, 8*mss, maxCwnd)},
			{"hpcc", NewHPCC(mss, 8*mss, maxCwnd, 10*time.Microsecond)},
			{"dcqcn", NewDCQCN(mss, maxCwnd, lineRate)},
			{"swift", NewSwift(mss, 8*mss, maxCwnd, 12*time.Microsecond, 3*time.Microsecond, lineRate)},
		}
		rng := sim.NewRand(seed)
		for i := 0; i < 500; i++ {
			fb := randomFeedback(rng)
			for _, ct := range ctrls {
				switch {
				case mix&1 != 0 && i%97 == 0:
					ct.c.OnLoss()
				case mix&2 != 0 && i%193 == 0:
					ct.c.OnTimeout()
				default:
					ct.c.OnAck(fb)
				}
				checkInvariants(t, ct.name, ct.c, maxCwnd, lineRate)
			}
		}
	})
}
