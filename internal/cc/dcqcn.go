package cc

// DCQCN is the rate-based RoCE controller (Zhu et al., SIGCOMM'15):
// switches CE-mark ECT packets past a queue threshold, the receiver folds
// marks into CNP frames, and the sender runs a rate decrease / fast
// recovery / additive+hyper increase state machine between a current rate
// rc and a target rate rt. This implementation is ack-clocked and
// byte-counted rather than wall-timer driven — every transition happens on
// a Feedback delivery, which keeps it deterministic under the simulator
// and independent of real time. The paper's two timers become two byte
// counters: the alpha-update timer decays alpha once per MSS acked (so the
// congestion estimate cools as soon as traffic flows unmarked again), and
// the rate-increase timer advances one stage per byteThresh acked. The
// thresholds and increase steps are scaled to the simulated 25G links (the
// paper's 10 MB byte counter would never fire inside a microsecond-scale
// experiment).
type DCQCN struct {
	mss     int
	maxCwnd int

	minRate float64 // bytes/s floor
	maxRate float64 // bytes/s ceiling (line rate)
	rc      float64 // current (paced) rate
	rt      float64 // target rate recovery climbs toward

	alpha       float64 // smoothed congestion estimate
	g           float64 // alpha gain
	alphaCtr    int     // bytes acked since the last alpha decay
	alphaThresh int     // alpha decay clock width in acked bytes

	byteCtr    int     // bytes acked since the last stage transition
	byteThresh int     // stage width in acked bytes
	stage      int     // increase stages completed since the last CNP
	fastStages int     // stages spent in fast recovery before additive increase
	rai        float64 // additive increase step (bytes/s)
	rhai       float64 // hyper increase step (bytes/s)
}

// NewDCQCN creates a controller pacing up to lineRate bytes/second. The
// window stays pinned at maxCwnd — DCQCN bounds inflight with the same
// hardware window as the static baseline and does all reaction through
// the rate.
func NewDCQCN(mss, maxCwnd int, lineRate float64) *DCQCN {
	return &DCQCN{
		mss: mss, maxCwnd: maxCwnd,
		minRate: lineRate / 100, maxRate: lineRate,
		rc: lineRate, rt: lineRate,
		alpha: 1, g: 1.0 / 16,
		alphaThresh: mss,
		byteThresh:  10 * mss, fastStages: 5,
		rai: lineRate / 50, rhai: lineRate / 10,
	}
}

// Window returns the fixed inflight bound.
func (d *DCQCN) Window() int { return d.maxCwnd }

// Rate returns the current sending rate in bytes/second.
func (d *DCQCN) Rate() float64 { return d.rc }

// Alpha returns the smoothed congestion estimate (for tests).
func (d *DCQCN) Alpha() float64 { return d.alpha }

// OnAck processes one acknowledgment or CNP.
//
//lint:hotpath
func (d *DCQCN) OnAck(fb Feedback) {
	if fb.CNP {
		// Rate decrease: remember where we were, cut by alpha/2.
		d.alpha = (1-d.g)*d.alpha + d.g
		d.rt = d.rc
		d.rc *= 1 - d.alpha/2
		if d.rc < d.minRate {
			d.rc = d.minRate
		}
		d.stage, d.byteCtr, d.alphaCtr = 0, 0, 0
		return
	}
	if fb.AckedBytes <= 0 {
		return
	}
	// Alpha decay clock: every MSS acked without a CNP cools the estimate,
	// so a deep cut does not keep halving the next time marks appear.
	d.alphaCtr += fb.AckedBytes
	for d.alphaCtr >= d.alphaThresh {
		d.alphaCtr -= d.alphaThresh
		d.alpha *= 1 - d.g
	}
	d.byteCtr += fb.AckedBytes
	for d.byteCtr >= d.byteThresh {
		d.byteCtr -= d.byteThresh
		d.stage++
		if d.stage > d.fastStages {
			// Past fast recovery: push the target up (hyper once the
			// fabric has stayed quiet for another full round of stages).
			if d.stage > 3*d.fastStages {
				d.rt += d.rhai
			} else {
				d.rt += d.rai
			}
			if d.rt > d.maxRate {
				d.rt = d.maxRate
			}
		}
		// Both fast recovery and increase converge rc toward rt.
		d.rc = (d.rc + d.rt) / 2
		if d.rc > d.maxRate {
			d.rc = d.maxRate
		}
	}
}

// OnLoss halves the rate (go-back-N rewind: the fabric dropped despite
// ECN, so react harder than a CNP).
func (d *DCQCN) OnLoss() {
	d.rt = d.rc
	d.rc /= 2
	if d.rc < d.minRate {
		d.rc = d.minRate
	}
	d.stage, d.byteCtr, d.alphaCtr = 0, 0, 0
}

// OnTimeout collapses to the minimum rate.
func (d *DCQCN) OnTimeout() {
	d.rt = d.rc
	d.rc = d.minRate
	d.stage, d.byteCtr, d.alphaCtr = 0, 0, 0
}
