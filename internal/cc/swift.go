package cc

import "time"

// Swift is the delay-based controller (Kumar et al., SIGCOMM'20): the
// window grows additively while the measured delay sits below a target and
// decreases multiplicatively — at most once per window of acked bytes —
// when it overshoots. The target scales with the acked packet's hop count
// ("topology-based scaling"), so flows crossing the spine tolerate
// proportionally more queueing than rack-local ones.
type Swift struct {
	mss     int
	maxCwnd int

	baseTarget time.Duration // fabric base target delay
	hopScale   time.Duration // extra target per hop crossed
	beta       float64       // multiplicative-decrease gain
	maxMD      float64       // per-decision decrease cap

	cwnd     float64
	sinceDec int // bytes acked since the last decrease

	target   time.Duration // last hop-scaled delay target (0 until the first ack)
	lineRate float64       // pacing ceiling, bytes/sec (0 = uncapped)
	noPace   bool          // SetPacing(false): window-only operation
}

// NewSwift creates a controller with the given window bounds and delay
// targets. lineRate (bytes/sec, 0 for none) caps the pacing rate at the
// NIC's wire speed.
func NewSwift(mss, initCwnd, maxCwnd int, baseTarget, hopScale time.Duration, lineRate float64) *Swift {
	return &Swift{
		mss: mss, maxCwnd: maxCwnd,
		baseTarget: baseTarget, hopScale: hopScale,
		beta: 0.8, maxMD: 0.5,
		cwnd:     float64(initCwnd),
		lineRate: lineRate,
	}
}

// Window returns the congestion window in bytes.
func (s *Swift) Window() int { return int(s.cwnd) }

// SetPacing disables (or re-enables) the pacing rate, reverting Swift to
// pure window operation. Pacing is on by default.
func (s *Swift) SetPacing(on bool) { s.noPace = !on }

// Rate returns the pacing rate in bytes/sec: the window spread over the
// hop-scaled delay target, so a sender never launches its whole window as
// one line-rate burst into a queue the delay signal has not seen yet. It
// is 0 — window-only — until the first ack establishes the flow's target,
// or when pacing is disabled.
func (s *Swift) Rate() float64 {
	if s.noPace || s.target <= 0 {
		return 0
	}
	r := s.cwnd / s.target.Seconds()
	if s.lineRate > 0 && r > s.lineRate {
		r = s.lineRate
	}
	return r
}

// OnAck processes one acknowledgment carrying a delay sample.
//
//lint:hotpath
func (s *Swift) OnAck(fb Feedback) {
	delay := fb.Delay
	if delay <= 0 {
		delay = fb.RTT // no per-packet sample on this ack: fall back
	}
	if delay <= 0 || fb.AckedBytes <= 0 {
		return
	}
	s.sinceDec += fb.AckedBytes
	target := s.baseTarget + time.Duration(fb.Hops)*s.hopScale
	s.target = target
	if delay < target {
		// Additive increase, scaled per acked byte so per-packet acks sum
		// to ~one MSS per window.
		s.cwnd += float64(s.mss) * float64(fb.AckedBytes) / s.cwnd
	} else if s.sinceDec >= int(s.cwnd) {
		md := s.beta * float64(delay-target) / float64(delay)
		if md > s.maxMD {
			md = s.maxMD
		}
		s.cwnd *= 1 - md
		s.sinceDec = 0
	}
	s.clamp()
}

// OnLoss multiplicatively backs off.
func (s *Swift) OnLoss() {
	s.cwnd *= 1 - s.maxMD
	s.sinceDec = 0
	s.clamp()
}

// OnTimeout collapses to one MSS.
func (s *Swift) OnTimeout() {
	s.cwnd = float64(s.mss)
	s.sinceDec = 0
}

func (s *Swift) clamp() {
	if s.cwnd < float64(s.mss) {
		s.cwnd = float64(s.mss)
	}
	if s.cwnd > float64(s.maxCwnd) {
		s.cwnd = float64(s.maxCwnd)
	}
}
