package cc

// Kind names a congestion-control algorithm for configuration plumbing
// (ebs.Config.CC, the ebsbench -cc flag). It selects among the RDMA
// plane's controllers; the kernel and Luna stacks keep DCTCP and Solar
// keeps per-path HPCC regardless, since the paper's comparison is between
// those fixed designs and the RDMA plane.
type Kind uint8

const (
	// KindStatic is the fixed-window RC baseline (the zero value, so a
	// zero Config keeps pre-refactor behavior byte-for-byte).
	KindStatic Kind = iota
	// KindDCQCN is the ECN→CNP rate-based RoCE controller.
	KindDCQCN
	// KindSwift is the delay-based controller with hop-scaled targets.
	KindSwift
)

// String returns the -cc flag spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindDCQCN:
		return "dcqcn"
	case KindSwift:
		return "swift"
	default:
		return "static"
	}
}

// ParseKind maps a -cc flag value onto a Kind. The second result is false
// for unknown names.
func ParseKind(s string) (Kind, bool) {
	switch s {
	case "static":
		return KindStatic, true
	case "dcqcn":
		return KindDCQCN, true
	case "swift":
		return KindSwift, true
	}
	return KindStatic, false
}

// Kinds lists every selectable kind in definition order (for the CC-matrix
// experiments and flag usage strings).
func Kinds() []Kind { return []Kind{KindStatic, KindDCQCN, KindSwift} }
