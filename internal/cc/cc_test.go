package cc

import (
	"testing"
	"time"

	"lunasolar/internal/wire"
)

const mss = 4096

func TestDCTCPSlowStart(t *testing.T) {
	d := NewDCTCP(mss, 2*mss, 1<<20)
	start := d.Window()
	d.OnAck(Feedback{AckedBytes: mss})
	if d.Window() <= start {
		t.Fatal("no slow-start growth")
	}
}

func TestDCTCPReducesProportionally(t *testing.T) {
	d := NewDCTCP(mss, 64*mss, 1<<20)
	d.ssthresh = 64 * mss // out of slow start
	// Ack a full window, all marked → alpha rises, window cut.
	before := d.Window()
	for i := 0; i < 64; i++ {
		d.OnAck(Feedback{AckedBytes: mss, ECNMarked: true})
	}
	if d.Window() >= before {
		t.Fatalf("window %d not reduced from %d on full marking", d.Window(), before)
	}
	if d.Alpha() == 0 {
		t.Fatal("alpha not updated")
	}
	// Light marking cuts less than heavy marking.
	dLight := NewDCTCP(mss, 64*mss, 1<<20)
	dLight.ssthresh = 64 * mss
	for i := 0; i < 64; i++ {
		dLight.OnAck(Feedback{AckedBytes: mss, ECNMarked: i == 0})
	}
	if dLight.Window() <= d.Window() {
		t.Fatalf("light marking (%d) should beat heavy marking (%d)", dLight.Window(), d.Window())
	}
}

func TestDCTCPGrowsWithoutMarks(t *testing.T) {
	d := NewDCTCP(mss, 8*mss, 1<<20)
	d.ssthresh = 8 * mss
	before := d.Window()
	for i := 0; i < 8; i++ {
		d.OnAck(Feedback{AckedBytes: mss})
	}
	if d.Window() != before+mss {
		t.Fatalf("window = %d, want +1 MSS (%d)", d.Window(), before+mss)
	}
}

func TestDCTCPFloorAndTimeout(t *testing.T) {
	d := NewDCTCP(mss, 2*mss, 1<<20)
	for i := 0; i < 10; i++ {
		d.OnLoss()
	}
	if d.Window() != mss {
		t.Fatalf("window %d below 1 MSS floor", d.Window())
	}
	d.OnTimeout()
	if d.Window() != mss {
		t.Fatalf("timeout window = %d", d.Window())
	}
}

func hop(id uint16, qlen uint32, txBytes uint64, ts uint64) wire.INTHop {
	return wire.INTHop{HopID: id, QLenB: qlen, TxBytes: txBytes, RateMbs: 25000, TSNanos: ts}
}

func TestHPCCShrinksOnCongestion(t *testing.T) {
	h := NewHPCC(mss, 64*mss, 256*mss, 10*time.Microsecond)
	// First ack establishes hop history.
	h.OnAck(Feedback{AckedBytes: mss, INT: []wire.INTHop{hop(1, 0, 0, 1000)}})
	before := h.Window()
	// Deep queue + line-rate delivery → U >> eta → multiplicative decrease.
	// 25 Gbit/s over 10 µs base RTT → BDP ≈ 31 KB; qlen 300 KB → U ≈ 10.
	h.OnAck(Feedback{AckedBytes: mss, INT: []wire.INTHop{hop(1, 300_000, 31250, 11000)}})
	if h.Window() >= before {
		t.Fatalf("window %d did not shrink from %d under congestion", h.Window(), before)
	}
}

func TestHPCCGrowsWhenIdle(t *testing.T) {
	h := NewHPCC(mss, 8*mss, 256*mss, 10*time.Microsecond)
	before := h.Window()
	ts := uint64(1000)
	for i := 0; i < 50; i++ {
		// Empty queues, negligible delivery rate → U < eta → W = wc + wai.
		h.OnAck(Feedback{AckedBytes: mss, INT: []wire.INTHop{hop(1, 0, uint64(i)*100, ts)}})
		ts += 10000
	}
	if h.Window() <= before {
		t.Fatalf("window %d did not grow from %d when uncongested", h.Window(), before)
	}
}

func TestHPCCBounds(t *testing.T) {
	h := NewHPCC(mss, 8*mss, 16*mss, 10*time.Microsecond)
	ts := uint64(0)
	for i := 0; i < 500; i++ {
		h.OnAck(Feedback{AckedBytes: mss, INT: []wire.INTHop{hop(1, 0, 0, ts)}})
		ts += 10000
		if w := h.Window(); w < mss || w > 16*mss {
			t.Fatalf("window %d out of [mss, max]", w)
		}
	}
	h.OnTimeout()
	if h.Window() != mss {
		t.Fatalf("timeout window = %d", h.Window())
	}
}

func TestHPCCMostCongestedHopDominates(t *testing.T) {
	a := NewHPCC(mss, 64*mss, 256*mss, 10*time.Microsecond)
	b := NewHPCC(mss, 64*mss, 256*mss, 10*time.Microsecond)
	// a sees one congested hop among idle ones; b sees only idle hops.
	a.OnAck(Feedback{AckedBytes: mss, INT: []wire.INTHop{hop(1, 0, 0, 1000), hop(2, 400_000, 0, 1000)}})
	b.OnAck(Feedback{AckedBytes: mss, INT: []wire.INTHop{hop(1, 0, 0, 1000), hop(2, 0, 0, 1000)}})
	if a.Window() >= b.Window() {
		t.Fatalf("congested-path window %d >= clean-path window %d", a.Window(), b.Window())
	}
}

func TestStatic(t *testing.T) {
	s := NewStatic(128 * 1024)
	s.OnAck(Feedback{AckedBytes: mss})
	s.OnLoss()
	s.OnTimeout()
	if s.Window() != 128*1024 {
		t.Fatalf("static window changed: %d", s.Window())
	}
}
