package chunkserver

import (
	"lunasolar/internal/crc"
	"lunasolar/internal/sim"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// Service exposes a chunk server over a backend-network transport: it
// splits write RPCs into blocks for the store, reassembles read ranges, and
// reports its residence time as the SSD component of the distributed trace.
type Service struct {
	eng *sim.Engine
	cs  *Server
}

// NewService installs the chunk server as bn's request handler.
func NewService(eng *sim.Engine, cs *Server, bn transport.Stack) *Service {
	s := &Service{eng: eng, cs: cs}
	bn.SetHandler(s.Handle)
	return s
}

// Handle serves one BN request.
func (s *Service) Handle(src uint32, req *transport.Message, reply func(*transport.Response)) {
	t0 := s.eng.Now()
	switch req.Op {
	case wire.RPCWriteReq:
		n := (len(req.Data) + wire.BlockSize - 1) / wire.BlockSize
		remaining := n
		var firstErr error
		for i := 0; i < n; i++ {
			lo := i * wire.BlockSize
			hi := lo + wire.BlockSize
			if hi > len(req.Data) {
				hi = len(req.Data)
			}
			block := req.Data[lo:hi]
			s.cs.WriteBlock(req.SegmentID, req.LBA+uint64(lo), req.Gen, block, crc.Raw(block), func(err error) {
				if err != nil && firstErr == nil {
					firstErr = err
				}
				remaining--
				if remaining == 0 {
					reply(&transport.Response{Err: firstErr, SSDTime: s.eng.Now().Sub(t0)})
				}
			})
		}
	case wire.RPCReadReq:
		n := (req.ReadLen + wire.BlockSize - 1) / wire.BlockSize
		buf := make([]byte, req.ReadLen)
		remaining := n
		var firstErr error
		for i := 0; i < n; i++ {
			lo := i * wire.BlockSize
			i := i
			s.cs.ReadBlock(req.SegmentID, req.LBA+uint64(lo), func(data []byte, _ uint32, err error) {
				if err != nil && firstErr == nil {
					firstErr = err
				}
				end := (i + 1) * wire.BlockSize
				if end > len(buf) {
					end = len(buf)
				}
				copy(buf[i*wire.BlockSize:end], data)
				remaining--
				if remaining == 0 {
					reply(&transport.Response{Data: buf, Err: firstErr, SSDTime: s.eng.Now().Sub(t0)})
				}
			})
		}
	}
}
