package chunkserver

import (
	"lunasolar/internal/crc"
	"lunasolar/internal/sim"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// Service exposes a chunk server over a backend-network transport: it
// splits write RPCs into blocks for the store, reassembles read ranges, and
// reports its residence time as the SSD component of the distributed trace.
type Service struct {
	eng *sim.Engine
	cs  *Server
}

// NewService installs the chunk server as bn's request handler.
func NewService(eng *sim.Engine, cs *Server, bn transport.Stack) *Service {
	s := &Service{eng: eng, cs: cs}
	bn.SetHandler(s.Handle)
	return s
}

// Handle serves one BN request.
func (s *Service) Handle(src uint32, req *transport.Message, reply func(*transport.Response)) {
	t0 := s.eng.Now()
	switch req.Op {
	case wire.RPCWriteReq:
		n := (len(req.Data) + wire.BlockSize - 1) / wire.BlockSize
		// One-touch CRC: when the request carries the per-block CRCs
		// computed at SA ingress, they become the store's expected values —
		// the device boundary verifies end-to-end against the ingress hash
		// and the service never re-walks the payload. The reply echoes a
		// GF(2) fold of the committed list (one Combine per block, no data
		// bytes touched) for the block server's replica cross-check.
		carried := req.BlockCRCs
		if len(carried) != n {
			carried = nil
		}
		var fold []uint32
		if carried != nil {
			fold = []uint32{crc.CombineBlocks(carried, wire.BlockSize)}
		}
		remaining := n
		var firstErr error
		for i := 0; i < n; i++ {
			lo := i * wire.BlockSize
			hi := lo + wire.BlockSize
			if hi > len(req.Data) {
				hi = len(req.Data)
			}
			block := req.Data[lo:hi]
			expect := uint32(0)
			if carried != nil {
				expect = carried[i]
			} else {
				expect = crc.Raw(block)
			}
			s.cs.WriteBlock(req.SegmentID, req.LBA+uint64(lo), req.Gen, block, expect, func(err error) {
				if err != nil && firstErr == nil {
					firstErr = err
				}
				remaining--
				if remaining == 0 {
					reply(&transport.Response{Err: firstErr, BlockCRCs: fold, SSDTime: s.eng.Now().Sub(t0)})
				}
			})
		}
	case wire.RPCReadReq:
		n := (req.ReadLen + wire.BlockSize - 1) / wire.BlockSize
		buf := make([]byte, req.ReadLen)
		// One-touch CRC, read direction: each block's stored CRC rides back
		// with the response, so upstream hops (read-serve framing, the
		// client's commit verify) reuse it instead of re-hashing. The list
		// is attached only when every block's stored bytes exactly fill its
		// slot — a short or missing record would desynchronize CRC and data.
		crcs := make([]uint32, n)
		crcsOK := true
		remaining := n
		var firstErr error
		for i := 0; i < n; i++ {
			lo := i * wire.BlockSize
			i := i
			s.cs.ReadBlock(req.SegmentID, req.LBA+uint64(lo), func(data []byte, rawCRC uint32, err error) {
				if err != nil && firstErr == nil {
					firstErr = err
				}
				end := (i + 1) * wire.BlockSize
				if end > len(buf) {
					end = len(buf)
				}
				copy(buf[i*wire.BlockSize:end], data)
				if err != nil || len(data) != end-i*wire.BlockSize {
					crcsOK = false
				} else {
					crcs[i] = rawCRC
				}
				remaining--
				if remaining == 0 {
					out := crcs
					if !crcsOK {
						out = nil
					}
					reply(&transport.Response{Data: buf, BlockCRCs: out, Err: firstErr, SSDTime: s.eng.Now().Sub(t0)})
				}
			})
		}
	}
}
