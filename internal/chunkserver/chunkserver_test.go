package chunkserver

import (
	"bytes"
	"testing"
	"time"

	"lunasolar/internal/crc"
	"lunasolar/internal/sim"
	"lunasolar/internal/stats"
)

func TestWriteReadRoundTrip(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, "cs0", DefaultSSD())
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	var werr error
	s.WriteBlock(5, 0x1000, 1, data, crc.Raw(data), func(err error) { werr = err })
	eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	var gotCRC uint32
	s.ReadBlock(5, 0x1000, func(d []byte, c uint32, err error) { got, gotCRC = d, c })
	eng.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("read returned different data")
	}
	if gotCRC != crc.Raw(data) {
		t.Fatal("stored CRC wrong")
	}
}

func TestWriteRejectsCorruption(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, "cs0", DefaultSSD())
	data := make([]byte, 4096)
	var werr error
	s.WriteBlock(1, 0, 1, data, 0xdeadbeef, func(err error) { werr = err })
	eng.Run()
	if werr == nil {
		t.Fatal("CRC mismatch accepted")
	}
	_, _, crcErrs, _ := s.Stats()
	if crcErrs != 1 {
		t.Fatalf("crcErrors = %d", crcErrs)
	}
}

func TestReadUnwrittenReturnsZeros(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, "cs0", DefaultSSD())
	var got []byte
	s.ReadBlock(9, 0x9000, func(d []byte, c uint32, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = d
	})
	eng.Run()
	if len(got) != 4096 {
		t.Fatalf("len = %d", len(got))
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestStaleGenerationIdempotent(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, "cs0", DefaultSSD())
	newData := bytes.Repeat([]byte{2}, 4096)
	oldData := bytes.Repeat([]byte{1}, 4096)
	s.WriteBlock(1, 0, 5, newData, crc.Raw(newData), func(err error) {})
	eng.Run()
	var staleErr error
	s.WriteBlock(1, 0, 3, oldData, crc.Raw(oldData), func(err error) { staleErr = err })
	eng.Run()
	if staleErr != nil {
		t.Fatal("stale write should ack idempotently")
	}
	var got []byte
	s.ReadBlock(1, 0, func(d []byte, c uint32, err error) { got = d })
	eng.Run()
	if got[0] != 2 {
		t.Fatal("stale generation overwrote newer data")
	}
}

func TestWriteLatencyDistribution(t *testing.T) {
	eng := sim.NewEngine(2)
	s := New(eng, "cs0", DefaultSSD())
	h := stats.NewHistogram()
	data := make([]byte, 4096)
	sum := crc.Raw(data)
	for i := 0; i < 500; i++ {
		lba := uint64(i) << 12
		eng.Schedule(time.Duration(i)*100*time.Microsecond, func() {
			start := eng.Now()
			s.WriteBlock(1, lba, 1, data, sum, func(err error) {
				h.Record(eng.Now().Sub(start))
			})
		})
	}
	eng.Run()
	// Write-cache commits: median ~12µs, well under NAND read latencies.
	med := h.Median()
	if med < 5*time.Microsecond || med > 30*time.Microsecond {
		t.Fatalf("write median = %v, want ~12µs", med)
	}
	if h.P99() < med {
		t.Fatal("p99 below median")
	}
}

func TestReadSlowerThanWrite(t *testing.T) {
	eng := sim.NewEngine(3)
	s := New(eng, "cs0", DefaultSSD())
	data := make([]byte, 4096)
	sum := crc.Raw(data)
	for i := 0; i < 200; i++ {
		s.WriteBlock(1, uint64(i)<<12, 1, data, sum, func(error) {})
	}
	eng.Run()
	hw, hr := stats.NewHistogram(), stats.NewHistogram()
	for i := 0; i < 200; i++ {
		lba := uint64(i) << 12
		at := time.Duration(i) * 200 * time.Microsecond
		eng.Schedule(at, func() {
			ws := eng.Now()
			s.WriteBlock(1, lba, 2, data, sum, func(error) { hw.Record(eng.Now().Sub(ws)) })
		})
		eng.Schedule(at+100*time.Microsecond, func() {
			rs := eng.Now()
			s.ReadBlock(1, lba, func([]byte, uint32, error) { hr.Record(eng.Now().Sub(rs)) })
		})
	}
	eng.Run()
	if hr.Mean() <= hw.Mean() {
		t.Fatalf("reads (%v) should be slower than cached writes (%v) on average",
			hr.Mean(), hw.Mean())
	}
}

func TestIOPSCapCreatesQueueing(t *testing.T) {
	eng := sim.NewEngine(4)
	cfg := DefaultSSD()
	cfg.IOPSCap = 10000 // low cap
	s := New(eng, "cs0", cfg)
	data := make([]byte, 4096)
	sum := crc.Raw(data)
	var last sim.Time
	const n = 2000
	done := 0
	for i := 0; i < n; i++ {
		s.WriteBlock(1, uint64(i)<<12, 1, data, sum, func(error) {
			done++
			last = eng.Now()
		})
	}
	eng.Run()
	if done != n {
		t.Fatalf("done %d/%d", done, n)
	}
	// 2000 ops at 10K IOPS需要 ~200ms wall.
	if last.Duration() < 150*time.Millisecond {
		t.Fatalf("burst finished in %v; IOPS cap not enforced", last.Duration())
	}
}
