// Package chunkserver models the storage cluster's chunk servers: the
// processes that own physical SSDs and persist replicated 4 KiB blocks.
// The SSD model captures what Fig. 6 shows: writes land in the SSD's
// write cache in tens of microseconds without touching NAND (the log-
// structured write path turns random writes sequential), while reads that
// miss the server's memory cache pay the NAND read latency. Each disk has
// bounded internal parallelism and an IOPS ceiling, so overload produces
// queueing delay organically.
package chunkserver

import (
	"fmt"
	"sort"
	"time"

	"lunasolar/internal/crc"
	"lunasolar/internal/sim"
	"lunasolar/internal/trace"
)

// SSDConfig models one physical SSD.
type SSDConfig struct {
	WriteCacheMedian time.Duration // write-cache commit latency
	WriteSigma       float64       // log-normal shape for the write tail
	NANDReadMedian   time.Duration // media read latency
	ReadSigma        float64
	CacheHitRate     float64 // server memory cache hit ratio for reads
	CacheHitMedian   time.Duration
	Parallelism      int // concurrent internal operations (channels × planes)
	IOPSCap          float64
}

// DefaultSSD returns the ESSD-class device model.
func DefaultSSD() SSDConfig {
	return SSDConfig{
		WriteCacheMedian: 12 * time.Microsecond,
		WriteSigma:       0.35,
		NANDReadMedian:   65 * time.Microsecond,
		ReadSigma:        0.30,
		CacheHitRate:     0.55,
		CacheHitMedian:   6 * time.Microsecond,
		Parallelism:      64, // NVMe internal queue depth
		IOPSCap:          800_000,
	}
}

type blockRec struct {
	data []byte
	crc  uint32
	gen  uint32
}

// Server is one chunk server: an SSD plus an in-memory block store keyed by
// (segment, LBA). Stored blocks carry their raw CRC so integrity is
// verifiable end to end.
type Server struct {
	eng  *sim.Engine
	name string
	cfg  SSDConfig
	rand *sim.Rand

	disk     *sim.Server
	nextSlot sim.Time // IOPS pacer: next admission slot
	blocks   map[uint64]map[uint64]blockRec

	writes, reads, crcErrors, misses uint64

	// rec is the optional flight recorder; CRC rejections — the paper's
	// Fig. 11 corruption events — are its marquee customer. Nil-safe.
	rec *trace.Recorder
}

// New creates a chunk server.
func New(eng *sim.Engine, name string, cfg SSDConfig) *Server {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 8
	}
	return &Server{
		eng:    eng,
		name:   name,
		cfg:    cfg,
		rand:   eng.Rand.Fork(),
		disk:   sim.NewServer(eng, name+"-ssd", cfg.Parallelism),
		blocks: map[uint64]map[uint64]blockRec{},
	}
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Stats returns operation counters: writes, reads, CRC rejections, read
// misses (block never written).
func (s *Server) Stats() (writes, reads, crcErrors, misses uint64) {
	return s.writes, s.reads, s.crcErrors, s.misses
}

// admissionDelay reserves the next IOPS slot and returns how long the
// caller must wait for it, so overload shows up as queueing delay.
func (s *Server) admissionDelay() time.Duration {
	interval := time.Duration(float64(time.Second) / s.cfg.IOPSCap)
	now := s.eng.Now()
	if s.nextSlot < now {
		s.nextSlot = now
	}
	d := s.nextSlot.Sub(now)
	s.nextSlot = s.nextSlot.Add(interval)
	return d
}

// WriteBlock persists one block. expectCRC is the raw CRC the writer
// computed over the payload; the chunk server re-checksums on arrival and
// rejects mismatches (err != nil), which is how production detected the
// Fig. 11 corruption events. done fires when the block is durable in the
// write cache.
func (s *Server) WriteBlock(segment, lba uint64, gen uint32, data []byte, expectCRC uint32, done func(err error)) {
	stored := append([]byte(nil), data...)
	admission := s.admissionDelay()
	s.eng.Schedule(admission, func() {
		service := s.rand.LogNormal(s.cfg.WriteCacheMedian, s.cfg.WriteSigma)
		s.disk.Submit(service, func() {
			s.writes++
			if got := crc.Raw(stored); got != expectCRC {
				s.crcErrors++
				s.rec.Record(s.eng.Now().Duration(), trace.EvCRCError, segment, lba)
				done(fmt.Errorf("chunkserver %s: CRC mismatch at seg=%d lba=%#x: got %08x want %08x",
					s.name, segment, lba, got, expectCRC))
				return
			}
			seg := s.blocks[segment]
			if seg == nil {
				seg = map[uint64]blockRec{}
				s.blocks[segment] = seg
			}
			prev, exists := seg[lba]
			if exists && prev.gen > gen {
				// Stale retransmitted generation: keep the newer data but
				// still acknowledge (idempotent write).
				done(nil)
				return
			}
			seg[lba] = blockRec{data: stored, crc: expectCRC, gen: gen}
			done(nil)
		})
	})
}

// ReadBlock fetches one block. done receives the payload, its stored raw
// CRC, and an error for missing blocks.
func (s *Server) ReadBlock(segment, lba uint64, done func(data []byte, rawCRC uint32, err error)) {
	admission := s.admissionDelay()
	s.eng.Schedule(admission, func() {
		var service time.Duration
		if s.rand.Bernoulli(s.cfg.CacheHitRate) {
			service = s.rand.LogNormal(s.cfg.CacheHitMedian, s.cfg.ReadSigma)
		} else {
			service = s.rand.LogNormal(s.cfg.NANDReadMedian, s.cfg.ReadSigma)
		}
		s.disk.Submit(service, func() {
			s.reads++
			seg := s.blocks[segment]
			rec, ok := seg[lba]
			if !ok {
				// Unwritten space reads as zeros, like a fresh virtual disk.
				s.misses++
				zero := make([]byte, 4096)
				done(zero, crc.Raw(zero), nil)
				return
			}
			done(rec.data, rec.crc, nil)
		})
	})
}

// SegmentLBAs returns the sorted LBAs of every block stored for a segment
// — the manifest a replica rebuild copies. Sorting makes the copy order
// (and therefore the whole migration) independent of map iteration order.
func (s *Server) SegmentLBAs(segment uint64) []uint64 {
	seg := s.blocks[segment]
	if len(seg) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(seg))
	for lba := range seg {
		out = append(out, lba)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SegmentBytes returns how many bytes a segment's stored blocks occupy on
// this server (drain sizing). Walks the sorted manifest so the result is
// assembled in a deterministic order.
func (s *Server) SegmentBytes(segment uint64) uint64 {
	var n uint64
	seg := s.blocks[segment]
	for _, lba := range s.SegmentLBAs(segment) {
		n += uint64(len(seg[lba].data))
	}
	return n
}

// MigrateRead fetches one block with its stored CRC and generation for a
// replica rebuild. It pays the same admission and media costs as a client
// read — migration traffic contends with foreground I/O on the source —
// but returns the stored generation so the destination commit preserves
// write-idempotency ordering.
func (s *Server) MigrateRead(segment, lba uint64, done func(data []byte, rawCRC uint32, gen uint32, err error)) {
	admission := s.admissionDelay()
	s.eng.Schedule(admission, func() {
		service := s.rand.LogNormal(s.cfg.NANDReadMedian, s.cfg.ReadSigma)
		s.disk.Submit(service, func() {
			s.reads++
			rec, ok := s.blocks[segment][lba]
			if !ok {
				s.misses++
				done(nil, 0, 0, fmt.Errorf("chunkserver %s: migrate read miss seg=%d lba=%#x", s.name, segment, lba))
				return
			}
			done(rec.data, rec.crc, rec.gen, nil)
		})
	})
}

// DropSegment discards a segment's blocks (the final step of draining
// this replica) and returns how many blocks were freed.
func (s *Server) DropSegment(segment uint64) int {
	n := len(s.blocks[segment])
	delete(s.blocks, segment)
	return n
}

// Utilization returns the SSD's busy-unit average (diagnostics).
func (s *Server) Utilization() float64 { return s.disk.Utilization() }

// SetRecorder attaches a flight recorder for CRC-rejection post-mortems.
func (s *Server) SetRecorder(r *trace.Recorder) { s.rec = r }

// Recorder returns the attached flight recorder (nil when off).
func (s *Server) Recorder() *trace.Recorder { return s.rec }
