package tcpstack

import (
	"time"

	"lunasolar/internal/cc"
	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// seqLT reports a < b in 32-bit wraparound arithmetic.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// conn is one direction-pair of a persistent connection. Both peers hold a
// conn with mirrored ports; each side sends its own byte stream and acks
// the other's.
type conn struct {
	s   *Stack
	key connKey

	ctrl cc.Controller
	// pacer enforces the controller's Rate() on pump. DCTCP is window-only
	// (Rate()==0) so the pacer never engages today, but the loop honors the
	// full Controller contract — a rate-based controller drops in with no
	// stack change.
	pacer cc.Pacer
	rtt   *transport.RTT

	// Sender state.
	outQ    spanQueue // bytes [sndUna, sndUna+outQ.len())
	sndUna  uint32
	sndNxt  uint32
	maxSent uint32 // high-water mark of sndNxt (survives RTO rewinds)
	dupAcks int
	retx    transport.Retransmitter

	// NewReno fast recovery: while inFastRec, each partial ack below
	// recover retransmits the next hole immediately instead of waiting for
	// an RTO per lost segment.
	inFastRec bool
	recover   uint32

	sampleSeq   uint32
	sampleAt    sim.Time
	sampleValid bool

	txSegs uint64 // for TSO amortization

	// Receiver state.
	rcvNxt   uint32
	ooo      map[uint32][]byte
	inStream []byte
}

func newConn(s *Stack, k connKey) *conn {
	p := s.params
	var ctrl cc.Controller
	// Luna runs DCTCP over ECN; the kernel baseline runs plain AIMD (the
	// same controller never sees marks, so it reduces only on loss).
	ctrl = cc.NewDCTCP(p.MSS, p.InitCwnd, p.MaxCwnd)
	c := &conn{
		s:    s,
		key:  k,
		ctrl: ctrl,
		rtt:  transport.NewRTT(p.MinRTO, p.MaxRTO),
		ooo:  map[uint32][]byte{},
	}
	c.retx.Init(s.eng, c.rtt, -1, connRTOExpired, c)
	c.pacer.Init(s.eng, connPacerFire, c)
	return c
}

// connPacerFire resumes the transmit loop when the pacing gap elapses.
func connPacerFire(a any) { a.(*conn).pump() }

// enqueueRecord appends a framed record span to the send stream and pumps.
func (c *conn) enqueueRecord(sp span) {
	c.outQ.push(sp)
	c.pump()
}

// inflight returns unacknowledged bytes.
func (c *conn) inflight() int { return int(c.sndNxt - c.sndUna) }

// unsent returns bytes queued but not yet transmitted.
func (c *conn) unsent() int { return c.outQ.len() - c.inflight() }

// gatherStream copies stream bytes [seq, seq+len(dst)) into dst. Bytes a
// racing cumulative ack already trimmed are zero-filled — the receiver
// discards any segment overlapping acknowledged bytes unread, so the fill
// can never change what the stream delivers.
func (c *conn) gatherStream(dst []byte, seq uint32) {
	rel := int(int32(seq - c.sndUna))
	if rel < 0 {
		nz := -rel
		if nz > len(dst) {
			nz = len(dst)
		}
		for i := 0; i < nz; i++ {
			dst[i] = 0
		}
		if nz == len(dst) {
			return
		}
		c.outQ.copyOut(dst[nz:], 0)
		return
	}
	c.outQ.copyOut(dst, rel)
}

// pump transmits while the congestion window (and any pacing rate) allows.
func (c *conn) pump() {
	p := c.s.params
	for c.unsent() > 0 && c.inflight() < c.ctrl.Window() {
		n := c.unsent()
		if n > p.MSS {
			n = p.MSS
		}
		if rate := c.ctrl.Rate(); rate > 0 {
			now := c.s.eng.Now()
			if !c.pacer.Ready(now) {
				c.pacer.Arm(now)
				break
			}
			c.pacer.Charge(now, wire.TCPSegSize+n, rate)
		}
		seq := c.sndNxt
		c.sndNxt += uint32(n)
		if seqLT(c.maxSent, c.sndNxt) {
			c.maxSent = c.sndNxt
		}
		if !c.sampleValid {
			c.sampleSeq = c.sndNxt
			c.sampleAt = c.s.eng.Now()
			c.sampleValid = true
		}
		c.transmit(seq, n, false)
	}
	if c.inflight() > 0 && !c.retx.Active() {
		c.retx.Arm()
	}
}

// transmit sends one segment of n stream bytes starting at seq (data or
// retransmission). The bytes are gathered from the span queue at frame
// build, so the event captures only (seq, n) — not a slice that would pin
// the old flat buffer.
func (c *conn) transmit(seq uint32, n int, isRetx bool) {
	p := c.s.params
	cost := p.PerPktTxCPU
	if p.TSOBatch > 1 {
		cost = time.Duration(int64(cost) / int64(p.TSOBatch))
	}
	cost += c.s.contention()
	c.txSegs++
	send := func() {
		pkt := c.makePacket(seq, n, 0)
		if !c.s.host.Send(pkt) {
			pkt.Release()
		}
	}
	step := func() {
		if c.s.pcie != nil && n > 0 {
			c.s.pcie.Transfer(2*n, send)
		} else {
			send()
		}
	}
	if isRetx {
		c.s.Retransmits++
	}
	c.s.cores.Submit(cost, step)
}

// makePacket builds the frame (TCP header + n stream bytes from seq) from
// the host's packet pool. The gather here is the data path's single
// payload copy: headers were encoded once into the record's pooled
// prefix, and the payload bytes move straight from their slab into the
// frame (the NIC's scatter-gather DMA, modelled as one memcpy).
func (c *conn) makePacket(seq uint32, n int, extraFlags uint8) *simnet.Packet {
	hdr := wire.TCPSeg{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     seq,
		Ack:     c.rcvNxt,
		Flags:   wire.TCPFlagACK | extraFlags,
		Window:  65535,
	}
	pkt := c.s.pool.Get(wire.TCPSegSize + n)
	if err := hdr.Encode(pkt.Payload); err != nil {
		panic(err)
	}
	if n > 0 {
		c.gatherStream(pkt.Payload[wire.TCPSegSize:], seq)
		c.s.pool.CountCopy(n)
	}
	ecn := uint8(wire.ECNNotECT)
	if c.s.params.UseECN {
		ecn = wire.ECNECT0
	}
	pkt.Dst = c.key.peer
	pkt.Proto = wire.ProtoTCP
	pkt.SrcPort = c.key.localPort
	pkt.DstPort = c.key.remotePort
	pkt.ECN = ecn
	pkt.Overhead = simnet.EthOverhead + wire.IPv4Size
	pkt.SentAt = c.s.eng.Now()
	return pkt
}

// sendPureAck acknowledges received data; ece echoes a CE mark.
func (c *conn) sendPureAck(ece bool) {
	p := c.s.params
	var flags uint8
	if ece {
		flags |= wire.TCPFlagECE
	}
	cost := p.PerPktTxCPU / 2
	c.s.cores.Submit(cost, func() {
		pkt := c.makePacket(c.sndNxt, 0, flags)
		if !c.s.host.Send(pkt) {
			pkt.Release()
		}
	})
}

// connRTOExpired adapts the shared retransmitter's expiry to the
// connection's RTO policy.
func connRTOExpired(a any) { a.(*conn).onRTO() }

func (c *conn) onRTO() {
	if c.inflight() == 0 {
		// Spurious expiry (everything was acked after the last arm): no
		// backoff penalty.
		return
	}
	c.s.Timeouts++
	c.s.Retransmits++
	c.s.host.FluidDisturb(simnet.TriggerLoss)
	c.retx.RecordTimeout()
	c.inFastRec = false
	c.ctrl.OnTimeout()
	c.sampleValid = false // Karn: never sample retransmissions
	// Slow-start retransmission: rewind to the hole so the window governs
	// recovery (everything past sndUna is presumed lost or will be re-acked
	// cumulatively). Keeping sndNxt forward would wedge the pipe: inflight
	// could exceed the collapsed window forever.
	c.sndNxt = c.sndUna
	c.pump()
	c.retx.Arm()
}

// retransmitHead resends the first unacknowledged segment.
func (c *conn) retransmitHead() {
	n := c.inflight()
	if n > c.s.params.MSS {
		n = c.s.params.MSS
	}
	if n <= 0 {
		return
	}
	c.transmit(c.sndUna, n, true)
}

// segmentArrived processes an inbound segment (data, ack, or both).
func (c *conn) segmentArrived(hdr wire.TCPSeg, payload []byte, ce bool) {
	c.processAck(hdr, len(payload) == 0)
	if len(payload) > 0 {
		c.processData(hdr.Seq, payload, ce)
	}
}

func (c *conn) processAck(hdr wire.TCPSeg, pureAck bool) {
	ack := hdr.Ack
	if seqLT(c.sndUna, ack) && !seqLT(c.maxSent, ack) {
		// After an RTO rewind, data sent before the rewind may still be
		// delivered and acknowledged beyond sndNxt; accept anything up to
		// the high-water mark and fast-forward sndNxt over it.
		if seqLT(c.sndNxt, ack) {
			c.sndNxt = ack
		}
		acked := int(ack - c.sndUna)
		c.outQ.trim(c.s.pool, acked)
		c.sndUna = ack
		c.dupAcks = 0
		c.retx.RecordAck()
		if c.sampleValid && !seqLT(ack, c.sampleSeq) {
			c.rtt.Observe(c.s.eng.Now().Sub(c.sampleAt))
			c.sampleValid = false
		}
		if c.inFastRec {
			if seqLT(ack, c.recover) {
				// Partial ack: the next hole is lost too — retransmit it
				// now (NewReno) rather than stalling for an RTO.
				c.retransmitHead()
			} else {
				c.inFastRec = false
			}
		}
		c.ctrl.OnAck(cc.Feedback{
			RTT:        c.rtt.SRTT(),
			AckedBytes: acked,
			ECNMarked:  hdr.Flags&wire.TCPFlagECE != 0,
		})
		if c.inflight() > 0 {
			c.retx.Arm()
		} else {
			c.retx.Disarm()
		}
		c.pump()
		return
	}
	if pureAck && ack == c.sndUna && c.inflight() > 0 {
		c.dupAcks++
		if c.dupAcks == 3 && !c.inFastRec {
			// Fast retransmit; enter NewReno recovery.
			c.inFastRec = true
			c.recover = c.sndNxt
			c.s.host.FluidDisturb(simnet.TriggerLoss)
			c.ctrl.OnLoss()
			c.sampleValid = false
			c.retransmitHead()
		}
	}
}

func (c *conn) processData(seq uint32, payload []byte, ce bool) {
	switch {
	case seq == c.rcvNxt:
		c.inStream = append(c.inStream, payload...)
		c.rcvNxt += uint32(len(payload))
		// Drain contiguous out-of-order segments.
		for {
			seg, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.inStream = append(c.inStream, seg...)
			c.rcvNxt += uint32(len(seg))
		}
		c.inStream = parseRecords(c.inStream, func(rec record) {
			c.s.dispatchRecord(c, rec)
		})
	case seqLT(c.rcvNxt, seq):
		// Out of order: buffer if capacity allows (head-of-line blocking —
		// the cost Solar's design eliminates).
		if len(c.ooo) < c.s.params.RxBufferSegs {
			if _, dup := c.ooo[seq]; !dup {
				c.ooo[seq] = append([]byte(nil), payload...)
			}
		}
	default:
		// Old duplicate; re-ack below.
	}
	c.sendPureAck(ce)
}
