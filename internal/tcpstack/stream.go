package tcpstack

import "lunasolar/internal/simnet"

// span is one framed record on the send stream, kept scattered until frame
// build: the record header lives in a small pooled prefix, the payload is
// attached by reference (a shared slab in zero-copy mode, a pooled deep
// copy behind the -copy-path escape hatch). The old path flattened both
// into one heap-allocated []byte per record and then copied again into
// every segment; spans are copied at most once, by the frame gather.
type span struct {
	hdr       []byte       // pooled record header prefix (wire.RecordHeaderSize)
	pay       []byte       // payload bytes; subrange of slab when slab != nil
	slab      *simnet.Slab // reference held until the span is acked away
	payPooled bool         // pay came from GetBuf (copy-path deep copy)
}

func (sp *span) size() int { return len(sp.hdr) + len(sp.pay) }

// spanQueue is the send stream [sndUna, sndUna+length): a FIFO of record
// spans with byte-granular head trimming, so cumulative acks release
// header buffers and payload references as soon as the bytes are
// acknowledged. Storage is a head-indexed slice reused in place — no
// allocation in steady state, deterministic reuse order.
type spanQueue struct {
	spans   []span
	head    int // index of the first live span
	headOff int // bytes of spans[head] already trimmed
	length  int // live bytes in the queue
}

func (q *spanQueue) len() int { return q.length }

func (q *spanQueue) push(sp span) {
	if q.head == len(q.spans) {
		// Fully drained: rewind so append reuses the backing array.
		q.spans = q.spans[:0]
		q.head = 0
	}
	q.spans = append(q.spans, sp)
	q.length += sp.size()
}

// trim drops n acknowledged bytes from the head, returning header buffers
// to the pool and dropping payload references of fully consumed spans.
func (q *spanQueue) trim(pool *simnet.PacketPool, n int) {
	q.length -= n
	n += q.headOff
	q.headOff = 0
	for n > 0 {
		sp := &q.spans[q.head]
		if sz := sp.size(); n < sz {
			q.headOff = n
			return
		} else {
			n -= sz
		}
		q.release(pool, sp)
		q.head++
	}
}

func (q *spanQueue) release(pool *simnet.PacketPool, sp *span) {
	if sp.hdr != nil {
		pool.PutBuf(sp.hdr)
	}
	if sp.slab != nil {
		sp.slab.Release()
	} else if sp.payPooled {
		pool.PutBuf(sp.pay)
	}
	*sp = span{}
}

// copyOut gathers queue bytes [off, off+len(dst)) into dst, off relative
// to the queue head. Ranges beyond the queued bytes are zero-filled: a
// deferred (re)transmission can race with a cumulative ack that already
// trimmed part of its range, and the receiver provably discards any
// segment overlapping acknowledged bytes without reading its content, so
// the fill value can never influence the stream.
func (q *spanQueue) copyOut(dst []byte, off int) {
	off += q.headOff
	n := 0
	for i := q.head; i < len(q.spans) && n < len(dst); i++ {
		sp := &q.spans[i]
		for _, part := range [2][]byte{sp.hdr, sp.pay} {
			if off >= len(part) {
				off -= len(part)
				continue
			}
			n += copy(dst[n:], part[off:])
			off = 0
			if n == len(dst) {
				return
			}
		}
	}
	for ; n < len(dst); n++ {
		dst[n] = 0
	}
}
