// Package tcpstack is a message-oriented reliable byte-stream transport
// over the simulated fabric — the engine behind both the kernel TCP
// baseline and Luna. The protocol machinery is genuine (byte-sequenced
// sliding window, cumulative ACKs with wraparound arithmetic, fast
// retransmit on duplicate ACKs, RTO with exponential backoff, bounded
// out-of-order reassembly buffers, ECN echo); what distinguishes kernel TCP
// from Luna is the Params cost model (per-packet/per-RPC CPU busy time and
// non-busy latency adders, copies vs zero-copy, TSO batching) — exactly the
// paper's framing, where Luna is "a user-space TCP stack" whose wins come
// from run-to-complete, zero-copy and share-nothing scheduling rather than
// protocol changes.
package tcpstack

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// ListenPort is the well-known block-service port.
const ListenPort = 5010

// Params is the stack cost and protocol model.
type Params struct {
	StackName string
	MSS       int // segment payload bytes (1448 kernel-era, 4096 with jumbo)
	InitCwnd  int
	MaxCwnd   int
	MinRTO    time.Duration
	MaxRTO    time.Duration
	UseECN    bool // DCTCP-style marking/echo (Luna); plain AIMD otherwise

	// CPU busy time charged to the core pool.
	PerRPCTxCPU time.Duration // marshalling + socket work per request/response
	PerRPCRxCPU time.Duration
	PerPktTxCPU time.Duration // per segment (and per pure ACK at half cost)
	PerPktRxCPU time.Duration
	CopyPer4K   time.Duration // payload copy cost per 4 KiB (zero for Luna)

	// Latency adders that do not consume CPU: syscall/wakeup/interrupt
	// coalescing for the kernel path; near zero for run-to-complete Luna.
	PerRPCTxDelay time.Duration
	PerRPCRxDelay time.Duration

	// TSOBatch > 1 amortizes PerPktTxCPU over that many segments
	// (TSO/GSO offload).
	TSOBatch int

	// LockPenalty models a stack WITHOUT Luna's "lock-free and
	// share-nothing" thread arrangement: every packet pays this extra CPU
	// per additional core in the pool (cache-line bouncing and lock
	// contention grow with parallelism). Zero for Luna; used by the
	// share-nothing ablation.
	LockPenalty time.Duration

	// RxBufferSegs bounds the out-of-order reassembly buffer per
	// connection; segments beyond it are dropped (receiver memory
	// pressure).
	RxBufferSegs int
}

func (p *Params) norm() {
	if p.MSS <= 0 {
		p.MSS = 1448
	}
	if p.InitCwnd <= 0 {
		p.InitCwnd = 10 * p.MSS
	}
	if p.MaxCwnd <= 0 {
		p.MaxCwnd = 1 << 20
	}
	if p.MinRTO <= 0 {
		p.MinRTO = 2 * time.Millisecond
	}
	if p.MaxRTO <= 0 {
		p.MaxRTO = time.Second
	}
	if p.TSOBatch <= 0 {
		p.TSOBatch = 1
	}
	if p.RxBufferSegs <= 0 {
		p.RxBufferSegs = 256
	}
}

// Stack is one host endpoint. It implements transport.Stack.
type Stack struct {
	eng    *sim.Engine
	host   *simnet.Host
	params Params
	cores  *sim.Server
	pcie   *sim.Channel // optional DPU internal PCIe: payload crosses twice

	handler  transport.Handler
	conns    map[connKey]*conn
	pending  map[uint64]func(*transport.Response)
	ids      transport.IDAlloc
	pool     *simnet.PacketPool
	nextPort uint16

	// Stats.
	Retransmits uint64
	Timeouts    uint64
	EcnMarks    uint64 // CE-marked segments received (telemetry-gated)
}

type connKey struct {
	peer       uint32
	localPort  uint16
	remotePort uint16
}

// New attaches a stack to a fabric host. cores is the CPU pool charged for
// stack processing; pcie, when non-nil, is the bare-metal DPU's internal
// channel every payload byte must cross twice (Fig. 10a).
func New(eng *sim.Engine, host *simnet.Host, cores *sim.Server, pcie *sim.Channel, params Params) *Stack {
	params.norm()
	s := &Stack{
		eng:      eng,
		host:     host,
		params:   params,
		cores:    cores,
		pcie:     pcie,
		conns:    map[connKey]*conn{},
		pending:  map[uint64]func(*transport.Response){},
		pool:     host.PacketPool(),
		nextPort: 20000,
	}
	if host.Handler == nil {
		host.Handler = s.receive
	}
	return s
}

// Name returns the configured stack name.
func (s *Stack) Name() string { return s.params.StackName }

// LocalAddr returns the host's fabric address.
func (s *Stack) LocalAddr() uint32 { return s.host.Addr() }

// SetHandler installs the server-side request handler.
func (s *Stack) SetHandler(h transport.Handler) { s.handler = h }

// Params returns the stack's cost model (read-only copy).
func (s *Stack) Params() Params { return s.params }

// connTo returns (creating if needed) the client connection to dst.
func (s *Stack) connTo(dst uint32) *conn {
	// One persistent connection per peer, like production SA↔block-server
	// sessions.
	for k, c := range s.conns {
		if k.peer == dst && k.remotePort == ListenPort {
			return c
		}
	}
	s.nextPort++
	k := connKey{peer: dst, localPort: s.nextPort, remotePort: ListenPort}
	c := newConn(s, k)
	s.conns[k] = c
	return c
}

// Call implements transport.Client.
func (s *Stack) Call(dst uint32, req *transport.Message, done func(*transport.Response)) {
	id := s.ids.Next()
	s.pending[id] = done
	c := s.connTo(dst)
	// Per-RPC CPU + non-busy latency, then enqueue on the stream.
	s.cores.Submit(s.params.PerRPCTxCPU+s.copyCost(len(req.Data)), func() {
		s.eng.Schedule(s.params.PerRPCTxDelay, func() {
			c.enqueueRecord(s.makeRecordSpan(id, req.Op, req, nil))
		})
	})
}

func (s *Stack) copyCost(payload int) time.Duration {
	if s.params.CopyPer4K == 0 || payload == 0 {
		return 0
	}
	return time.Duration(float64(s.params.CopyPer4K) * float64(payload) / 4096)
}

// reply sends a response record on the server side of an established conn.
func (s *Stack) reply(c *conn, id uint64, resp *transport.Response) {
	s.cores.Submit(s.params.PerRPCTxCPU+s.copyCost(len(resp.Data)), func() {
		s.eng.Schedule(s.params.PerRPCTxDelay, func() {
			c.enqueueRecord(s.makeRecordSpan(id, wire.RPCWriteResp, nil, resp))
		})
	})
}

// ReceivePacket feeds one inbound frame into the stack; hosts running
// multiple stacks route frames here through a simnet.Mux.
func (s *Stack) ReceivePacket(pkt *simnet.Packet) { s.receive(pkt) }

// contention returns the per-packet lock/contention surcharge.
func (s *Stack) contention() time.Duration {
	if s.params.LockPenalty == 0 {
		return 0
	}
	return time.Duration(int64(s.params.LockPenalty) * int64(s.cores.Units()-1))
}

// receive demultiplexes an arriving frame to its connection. The stack
// takes ownership of the frame; it is released once the segment bytes have
// been consumed (segmentArrived copies what it keeps).
func (s *Stack) receive(pkt *simnet.Packet) {
	var hdr wire.TCPSeg
	if err := hdr.Decode(pkt.Payload); err != nil {
		pkt.Release()
		return
	}
	k := connKey{peer: pkt.Src, localPort: hdr.DstPort, remotePort: hdr.SrcPort}
	c := s.conns[k]
	if c == nil {
		if hdr.DstPort != ListenPort {
			pkt.Release()
			return // stale segment for a forgotten connection
		}
		c = newConn(s, k)
		s.conns[k] = c
	}
	payload := pkt.Payload[wire.TCPSegSize:]
	ce := pkt.ECN == wire.ECNCE
	if ce && simnet.TelemetryEnabled() {
		s.EcnMarks++
	}

	// Per-packet receive CPU (pure ACKs cost half), then protocol
	// processing. PCIe crossing for payload-bearing segments.
	cost := s.params.PerPktRxCPU + s.contention()
	if len(payload) == 0 {
		cost /= 2
	}
	deliver := func() {
		s.cores.Submit(cost, func() {
			c.segmentArrived(hdr, payload, ce)
			pkt.Release()
		})
	}
	if s.pcie != nil && len(payload) > 0 {
		s.pcie.Transfer(2*len(payload), deliver)
	} else {
		deliver()
	}
}

// dispatchRecord hands one complete record up the stack.
func (s *Stack) dispatchRecord(c *conn, rec record) {
	s.cores.Submit(s.params.PerRPCRxCPU+s.copyCost(len(rec.payload)), func() {
		s.eng.Schedule(s.params.PerRPCRxDelay, func() {
			switch rec.rpc.MsgType {
			case wire.RPCWriteReq, wire.RPCReadReq:
				if s.handler == nil {
					return
				}
				req := recordToMessage(rec)
				id := rec.rpc.RPCID
				s.handler(c.key.peer, req, func(resp *transport.Response) {
					s.reply(c, id, resp)
				})
			default: // response
				if done, ok := s.pending[rec.rpc.RPCID]; ok {
					delete(s.pending, rec.rpc.RPCID)
					var rerr error
					if rec.ebs.Flags&wire.EBSFlagReject != 0 {
						rerr = transport.ErrNotOwner
					}
					done(&transport.Response{
						Err:        rerr,
						Data:       rec.payload,
						ServerWall: time.Duration(rec.ebs.ServerNS),
						SSDTime:    time.Duration(rec.ebs.SSDNS),
					})
				}
			}
		})
	})
}

// Conns returns the number of live connections (tests).
func (s *Stack) Conns() int { return len(s.conns) }

// --- stream records -------------------------------------------------------

// record is one framed RPC on the stream:
// [u32 totalLen][wire.RPC][wire.EBS][payload].
type record struct {
	rpc     wire.RPC
	ebs     wire.EBS
	payload []byte
}

const recordHdrSize = wire.RecordHeaderSize

// makeRecordSpan frames one RPC as a stream span: the record header
// encoded into a pooled prefix, the payload attached by reference. In
// zero-copy mode the payload shares the message's slab (retaining it) or
// wraps the caller's buffer without copying; behind -copy-path it is
// deep-copied into a pooled buffer, reproducing the seed's behaviour minus
// the per-record heap allocation.
func (s *Stack) makeRecordSpan(id uint64, op uint8, req *transport.Message, resp *transport.Response) span {
	var payload []byte
	ebs := wire.EBS{Version: wire.EBSVersion}
	if req != nil {
		payload = req.Data
		ebs.Op = op
		ebs.VDisk = req.VDisk
		ebs.SegmentID = req.SegmentID
		ebs.LBA = req.LBA
		ebs.Gen = req.Gen
		ebs.Flags = req.Flags
		ebs.BlockLen = uint32(req.ReadLen)
	} else {
		payload = resp.Data
		ebs.ServerNS = uint32(resp.ServerWall.Nanoseconds())
		ebs.SSDNS = uint32(resp.SSDTime.Nanoseconds())
		if resp.Err != nil && errors.Is(resp.Err, transport.ErrNotOwner) {
			// Ownership rejection survives the wire as a header flag;
			// the client side rebuilds transport.ErrNotOwner from it.
			ebs.Flags = wire.EBSFlagReject
		}
	}
	rpc := wire.RPC{RPCID: id, MsgType: op, NumPkts: 1}
	sp := span{hdr: s.pool.GetBuf(recordHdrSize)}
	if err := wire.EncodeRecordHeader(sp.hdr, recordHdrSize+len(payload), &rpc, &ebs); err != nil {
		panic(err)
	}
	if len(payload) == 0 {
		return sp
	}
	if simnet.ZeroCopy() {
		if req != nil && req.Payload != nil {
			sp.slab = req.Payload.Retain()
		} else {
			sp.slab = s.pool.WrapSlab(payload)
		}
		sp.pay = payload
		return sp
	}
	sp.pay = s.pool.GetBuf(len(payload))
	copy(sp.pay, payload)
	s.pool.CountCopy(len(payload))
	sp.payPooled = true
	return sp
}

func recordToMessage(rec record) *transport.Message {
	return &transport.Message{
		Op:        rec.rpc.MsgType,
		VDisk:     rec.ebs.VDisk,
		SegmentID: rec.ebs.SegmentID,
		LBA:       rec.ebs.LBA,
		Gen:       rec.ebs.Gen,
		Flags:     rec.ebs.Flags,
		ReadLen:   int(rec.ebs.BlockLen),
		Data:      rec.payload,
	}
}

// parseRecords consumes complete records from the in-order stream buffer,
// returning the remaining bytes.
func parseRecords(buf []byte, emit func(record)) []byte {
	for {
		if len(buf) < 4 {
			return buf
		}
		total := int(binary.BigEndian.Uint32(buf))
		if total < recordHdrSize {
			// Corrupt framing: drop the stream content (connection would
			// reset in production; the simulation re-frames on retransmit).
			return nil
		}
		if len(buf) < total {
			return buf
		}
		var rec record
		if err := rec.rpc.Decode(buf[4:]); err != nil {
			return nil
		}
		if err := rec.ebs.Decode(buf[4+wire.RPCSize:]); err != nil {
			return nil
		}
		rec.payload = append([]byte(nil), buf[recordHdrSize:total]...)
		emit(rec)
		buf = buf[total:]
	}
}

var _ transport.Stack = (*Stack)(nil)

func (k connKey) String() string {
	return fmt.Sprintf("%08x:%d->%d", k.peer, k.localPort, k.remotePort)
}

// DebugState renders per-connection transport state for diagnostics.
func (s *Stack) DebugState() string {
	out := fmt.Sprintf("stack %s @%08x: %d conns, retx=%d to=%d\n", s.params.StackName, s.LocalAddr(), len(s.conns), s.Retransmits, s.Timeouts)
	for k, c := range s.conns {
		out += fmt.Sprintf("  %v una=%d nxt=%d inflight=%d unsent=%d cwnd=%d dupAcks=%d fastRec=%v timer=%v rcvNxt=%d ooo=%d instream=%d\n",
			k, c.sndUna, c.sndNxt, c.inflight(), c.unsent(), c.ctrl.Window(), c.dupAcks, c.inFastRec, c.retx.Active(), c.rcvNxt, len(c.ooo), len(c.inStream))
	}
	return out
}
