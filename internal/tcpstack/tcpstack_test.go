package tcpstack

import (
	"bytes"
	"testing"
	"time"

	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// lunaParams is a fast, ECN-enabled configuration for tests.
func lunaParams() Params {
	return Params{
		StackName: "luna", MSS: 4096, UseECN: true,
		MinRTO: 2 * time.Millisecond, MaxRTO: 500 * time.Millisecond,
		PerRPCTxCPU: time.Microsecond, PerRPCRxCPU: time.Microsecond,
		PerPktTxCPU: 300 * time.Nanosecond, PerPktRxCPU: 300 * time.Nanosecond,
		TSOBatch: 4,
	}
}

type pair struct {
	eng    *sim.Engine
	fab    *simnet.Fabric
	client *Stack
	server *Stack
}

func newPair(t *testing.T, p Params) *pair {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := simnet.DefaultConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 2
	cfg.CoresPerDC = 2
	fab := simnet.New(eng, cfg)
	ch := fab.Host(0, 0, 0, 0)
	sh := fab.Host(0, 1, 0, 0)
	ccores := sim.NewServer(eng, "client-cpu", 4)
	scores := sim.NewServer(eng, "server-cpu", 4)
	return &pair{
		eng:    eng,
		fab:    fab,
		client: New(eng, ch, ccores, nil, p),
		server: New(eng, sh, scores, nil, p),
	}
}

func echoHandler(src uint32, req *transport.Message, reply func(*transport.Response)) {
	if req.Op == wire.RPCReadReq {
		reply(&transport.Response{Data: make([]byte, req.ReadLen)})
		return
	}
	reply(&transport.Response{Data: req.Data})
}

func TestSingleRPCRoundTrip(t *testing.T) {
	p := newPair(t, lunaParams())
	p.server.SetHandler(echoHandler)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	var got []byte
	var doneAt sim.Time
	p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: data},
		func(r *transport.Response) { got = r.Data; doneAt = p.eng.Now() })
	p.eng.Run()
	if got == nil {
		t.Fatal("no response")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload corrupted through the stream")
	}
	d := doneAt.Duration()
	if d < 5*time.Microsecond || d > 60*time.Microsecond {
		t.Fatalf("4KB RPC latency = %v, want 5–60µs", d)
	}
}

func TestManyConcurrentRPCs(t *testing.T) {
	p := newPair(t, lunaParams())
	p.server.SetHandler(echoHandler)
	const n = 200
	done := 0
	for i := 0; i < n; i++ {
		payload := make([]byte, 4096)
		payload[0] = byte(i)
		p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: payload},
			func(r *transport.Response) { done++ })
	}
	p.eng.Run()
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
	// One persistent connection per peer, both sides.
	if p.client.Conns() != 1 || p.server.Conns() != 1 {
		t.Fatalf("conns: client=%d server=%d", p.client.Conns(), p.server.Conns())
	}
}

func TestLargeRPCSegmentsAndReassembles(t *testing.T) {
	p := newPair(t, lunaParams())
	p.server.SetHandler(echoHandler)
	data := make([]byte, 128<<10) // 32 segments
	for i := range data {
		data[i] = byte(i * 7)
	}
	var got []byte
	p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: data},
		func(r *transport.Response) { got = r.Data })
	p.eng.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("128K payload corrupted")
	}
}

func TestReadRPC(t *testing.T) {
	p := newPair(t, lunaParams())
	p.server.SetHandler(echoHandler)
	var got []byte
	p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCReadReq, ReadLen: 16384},
		func(r *transport.Response) { got = r.Data })
	p.eng.Run()
	if len(got) != 16384 {
		t.Fatalf("read returned %d bytes", len(got))
	}
}

func TestRecoversFromPacketLoss(t *testing.T) {
	p := newPair(t, lunaParams())
	p.server.SetHandler(echoHandler)
	// 20% loss at both ToRs of the client rack.
	p.fab.ToR(0, 0, 0, 0).SetDropRate(0.2)
	p.fab.ToR(0, 0, 0, 1).SetDropRate(0.2)
	const n = 50
	done := 0
	for i := 0; i < n; i++ {
		p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 8192)},
			func(r *transport.Response) { done++ })
	}
	p.eng.RunFor(10 * time.Second)
	if done != n {
		t.Fatalf("completed %d/%d under 20%% loss", done, n)
	}
	if p.client.Retransmits == 0 && p.server.Retransmits == 0 {
		t.Fatal("no retransmissions recorded despite loss")
	}
}

func TestRecoversFromSevereLoss(t *testing.T) {
	p := newPair(t, lunaParams())
	p.server.SetHandler(echoHandler)
	p.fab.Spine(0, 0, 0).SetDropRate(0.75)
	p.fab.Spine(0, 0, 1).SetDropRate(0.75)
	done := 0
	for i := 0; i < 10; i++ {
		p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 4096)},
			func(r *transport.Response) { done++ })
	}
	p.eng.RunFor(60 * time.Second)
	if done != 10 {
		t.Fatalf("completed %d/10 under 75%% loss", done)
	}
	if p.client.Timeouts == 0 {
		t.Fatal("expected RTO-driven recovery under severe loss")
	}
}

func TestPinnedFlowStallsOnHungToR(t *testing.T) {
	// A TCP connection's 5-tuple is fixed: when the ToR it hashes through
	// hangs (links up), the connection can only wait — the Table 2 failure
	// mode. Completion requires the switch to be repaired.
	p := newPair(t, lunaParams())
	p.server.SetHandler(echoHandler)

	// Warm up the connection so its path is established.
	warm := false
	p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 4096)},
		func(r *transport.Response) { warm = true })
	p.eng.Run()
	if !warm {
		t.Fatal("warmup failed")
	}

	// Find the ToR carrying the flow and hang it.
	var pinned *simnet.Switch
	for _, idx := range []int{0, 1} {
		tor := p.fab.ToR(0, 0, 0, idx)
		if tor.Forwarded() > 0 {
			pinned = tor
		}
	}
	if pinned == nil {
		t.Fatal("could not locate the pinned ToR")
	}
	pinned.Fail()

	done := false
	start := p.eng.Now()
	p.client.Call(p.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 4096)},
		func(r *transport.Response) { done = true })
	p.eng.RunFor(5 * time.Second)
	if done {
		t.Fatal("RPC completed through a hung ToR without repair")
	}
	// Repair: the connection must eventually recover via RTO retransmit.
	pinned.Repair()
	p.eng.RunFor(10 * time.Second)
	if !done {
		t.Fatal("RPC never completed after repair")
	}
	if p.eng.Now().Sub(start) < time.Second {
		t.Fatal("recovery accounting suspicious")
	}
	_ = start
}

func TestKernelParamsSlower(t *testing.T) {
	kernel := Params{
		StackName: "kernel", MSS: 1448,
		MinRTO: 200 * time.Millisecond, MaxRTO: 2 * time.Second,
		PerRPCTxCPU: 2 * time.Microsecond, PerRPCRxCPU: 2 * time.Microsecond,
		PerPktTxCPU: time.Microsecond, PerPktRxCPU: time.Microsecond,
		CopyPer4K:     500 * time.Nanosecond,
		PerRPCTxDelay: 15 * time.Microsecond, PerRPCRxDelay: 10 * time.Microsecond,
	}
	kp := newPair(t, kernel)
	kp.server.SetHandler(echoHandler)
	var kernelDone sim.Time
	kp.client.Call(kp.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 4096)},
		func(r *transport.Response) { kernelDone = kp.eng.Now() })
	kp.eng.Run()

	lp := newPair(t, lunaParams())
	lp.server.SetHandler(echoHandler)
	var lunaDone sim.Time
	lp.client.Call(lp.server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, 4096)},
		func(r *transport.Response) { lunaDone = lp.eng.Now() })
	lp.eng.Run()

	if kernelDone == 0 || lunaDone == 0 {
		t.Fatal("an RPC did not complete")
	}
	if kernelDone.Duration() < 3*lunaDone.Duration() {
		t.Fatalf("kernel (%v) should be much slower than luna (%v)", kernelDone, lunaDone)
	}
}

func TestPCIeChannelCapsThroughput(t *testing.T) {
	// With a narrow internal PCIe crossed twice, bulk transfer throughput
	// must cap near rate/2 regardless of fabric capacity.
	eng := sim.NewEngine(1)
	cfg := simnet.DefaultConfig()
	cfg.RacksPerPod = 1
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 1
	cfg.CoresPerDC = 1
	fab := simnet.New(eng, cfg)
	pcie := sim.NewChannel(eng, "pcie", 10e9) // 10 Gbit/s
	p := lunaParams()
	client := New(eng, fab.Host(0, 0, 0, 0), sim.NewServer(eng, "c", 8), pcie, p)
	server := New(eng, fab.Host(0, 0, 0, 1), sim.NewServer(eng, "s", 8), nil, p)
	server.SetHandler(echoHandler)

	const rpcs = 64
	const size = 64 << 10
	done := 0
	for i := 0; i < rpcs; i++ {
		client.Call(server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: make([]byte, size)},
			func(r *transport.Response) { done++ })
	}
	eng.Run()
	if done != rpcs {
		t.Fatalf("done %d/%d", done, rpcs)
	}
	elapsed := eng.Now().Duration().Seconds()
	// Request payloads cross PCIe twice on tx, and echoed responses cross
	// twice on rx → effective goodput ≤ 10G/4 = 2.5 Gbit/s ≈ 312 MB/s.
	goodput := float64(rpcs*size) / elapsed / 1e6
	if goodput > 340 {
		t.Fatalf("goodput %.0f MB/s exceeds the PCIe ceiling", goodput)
	}
	if goodput < 150 {
		t.Fatalf("goodput %.0f MB/s suspiciously low", goodput)
	}
}

func TestParseRecordsPartial(t *testing.T) {
	payload := []byte("hello")
	rec := make([]byte, recordHdrSize+len(payload))
	rpc := wire.RPC{RPCID: 7, MsgType: wire.RPCWriteReq, NumPkts: 1}
	ebs := wire.EBS{Version: wire.EBSVersion, Op: wire.RPCWriteReq}
	if err := wire.EncodeRecordHeader(rec, len(rec), &rpc, &ebs); err != nil {
		t.Fatal(err)
	}
	copy(rec[recordHdrSize:], payload)
	var got []record
	// Feed in two halves: nothing emitted until complete.
	buf := parseRecords(rec[:10], func(r record) { got = append(got, r) })
	if len(got) != 0 {
		t.Fatal("emitted from partial record")
	}
	buf = append(buf, rec[10:]...)
	buf = parseRecords(buf, func(r record) { got = append(got, r) })
	if len(got) != 1 || string(got[0].payload) != "hello" || got[0].rpc.RPCID != 7 {
		t.Fatalf("bad record: %+v", got)
	}
	if len(buf) != 0 {
		t.Fatalf("%d leftover bytes", len(buf))
	}
}

func TestSeqWraparound(t *testing.T) {
	if !seqLT(0xffffffff, 1) {
		t.Fatal("wraparound compare broken")
	}
	if seqLT(1, 0xffffffff) {
		t.Fatal("wraparound compare broken (reverse)")
	}
}
