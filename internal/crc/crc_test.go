package crc

import (
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func TestChecksumMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(9000)
		data := make([]byte, n)
		r.Read(data)
		want := crc32.Checksum(data, castagnoli)
		if got := Checksum(data); got != want {
			t.Fatalf("len=%d: Checksum = %08x, want %08x", n, got, want)
		}
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// iSCSI test vector: CRC32C("123456789") = 0xE3069283.
	if got := Checksum([]byte("123456789")); got != 0xe3069283 {
		t.Fatalf("got %08x", got)
	}
}

func TestUpdateIncremental(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	whole := Checksum(data)
	for split := 0; split <= len(data); split++ {
		part := Checksum(data[:split])
		got := Update(part, data[split:])
		if got != whole {
			t.Fatalf("split=%d: incremental %08x != whole %08x", split, got, whole)
		}
	}
}

func TestRawLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(4096)
		a := make([]byte, n)
		b := make([]byte, n)
		x := make([]byte, n)
		r.Read(a)
		r.Read(b)
		XorBlocks(x, a, b)
		if Raw(x) != Raw(a)^Raw(b) {
			t.Fatalf("linearity violated at len %d", n)
		}
	}
}

func TestRawLinearityProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		x := make([]byte, n)
		XorBlocks(x, a, b)
		return Raw(x) == Raw(a)^Raw(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStandardChecksumIsNotLinear(t *testing.T) {
	// Documents why the aggregation uses Raw, not Checksum: the init/final
	// inversions break linearity.
	a := []byte{1, 2, 3, 4}
	b := []byte{5, 6, 7, 8}
	x := make([]byte, 4)
	XorBlocks(x, a, b)
	if Checksum(x) == Checksum(a)^Checksum(b) {
		t.Fatal("expected standard CRC to violate XOR linearity")
	}
}

func TestCombine(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		la, lb := r.Intn(2048), r.Intn(2048)
		a := make([]byte, la)
		b := make([]byte, lb)
		r.Read(a)
		r.Read(b)
		whole := Checksum(append(append([]byte{}, a...), b...))
		got := Combine(Checksum(a), Checksum(b), int64(lb))
		if got != whole {
			t.Fatalf("combine(la=%d, lb=%d) = %08x, want %08x", la, lb, got, whole)
		}
	}
}

func TestCombineZeroLength(t *testing.T) {
	a := Checksum([]byte("hello"))
	if got := Combine(a, Checksum(nil), 0); got != a {
		t.Fatalf("combine with empty B changed CRC: %08x", got)
	}
}

func TestXorAggregate(t *testing.T) {
	crcs := []uint32{0xdeadbeef, 0x12345678, 0xdeadbeef}
	if got := XorAggregate(crcs); got != 0x12345678 {
		t.Fatalf("got %08x", got)
	}
	if got := XorAggregate(nil); got != 0 {
		t.Fatalf("empty aggregate = %08x", got)
	}
}

func TestAggregatorDetectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const blockSize = 4096
	const blocks = 16

	payloads := make([][]byte, blocks)
	for i := range payloads {
		payloads[i] = make([]byte, blockSize)
		r.Read(payloads[i])
	}

	// Clean run: FPGA CRCs match expected.
	var agg Aggregator
	for _, p := range payloads {
		c := Raw(p)
		agg.AddBlockCRC(c) // what the FPGA reported
		agg.AddExpected(c) // trusted metadata
	}
	if !agg.Verify() {
		t.Fatal("clean segment failed verification")
	}
	if agg.Blocks() != blocks {
		t.Fatalf("blocks = %d", agg.Blocks())
	}

	// Corrupted run: flip one bit in one block after CRC was computed —
	// the FPGA reports the CRC of the corrupted data.
	agg.Reset()
	for i, p := range payloads {
		agg.AddExpected(Raw(p))
		if i == 7 {
			corrupted := append([]byte{}, p...)
			corrupted[1234] ^= 0x10
			agg.AddBlockCRC(Raw(corrupted))
		} else {
			agg.AddBlockCRC(Raw(p))
		}
	}
	if agg.Verify() {
		t.Fatal("single-bit corruption not detected")
	}
}

func TestAggregatorEveryBitPosition(t *testing.T) {
	// Any single-bit flip in any block must be caught (CRC detects all
	// single-bit errors; XOR folding preserves a single block's error).
	p := make([]byte, 512)
	rand.New(rand.NewSource(5)).Read(p)
	clean := Raw(p)
	for byteIdx := 0; byteIdx < len(p); byteIdx += 37 {
		for bit := 0; bit < 8; bit++ {
			p[byteIdx] ^= 1 << bit
			var agg Aggregator
			agg.AddExpected(clean)
			agg.AddBlockCRC(Raw(p))
			if agg.Verify() {
				t.Fatalf("flip at %d.%d undetected", byteIdx, bit)
			}
			p[byteIdx] ^= 1 << bit
		}
	}
}

func TestXorBlocksPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	XorBlocks(make([]byte, 4), make([]byte, 5))
}

func BenchmarkChecksum4K(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(6)).Read(data)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Checksum(data)
	}
}

func BenchmarkXorAggregate512Blocks(b *testing.B) {
	crcs := make([]uint32, 512)
	r := rand.New(rand.NewSource(7))
	for i := range crcs {
		crcs[i] = r.Uint32()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XorAggregate(crcs)
	}
}
