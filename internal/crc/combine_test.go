package crc

import (
	"math/rand"
	"testing"
)

// FuzzCRCCombine cross-checks Combine against a direct Checksum of the
// concatenation, for both the standard (inverted) and raw (linear) CRC
// forms, and checks that a precomputed CombineOp agrees with the
// squaring-chain path.
func FuzzCRCCombine(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{}, []byte{0x5a})
	f.Add([]byte("123456789"), []byte{})
	f.Add([]byte{0}, []byte{0})
	f.Add([]byte("luna"), []byte("solar"))
	big := make([]byte, blockLen4K)
	for i := range big {
		big[i] = byte(i * 7)
	}
	f.Add(big[:1], big)
	f.Add(big, big[:117])
	f.Fuzz(func(t *testing.T, a, b []byte) {
		cat := append(append([]byte(nil), a...), b...)
		lenB := int64(len(b))

		if got, want := Combine(Checksum(a), Checksum(b), lenB), Checksum(cat); got != want {
			t.Fatalf("Combine(Checksum) lenA=%d lenB=%d: got %08x want %08x", len(a), len(b), got, want)
		}
		if got, want := Combine(Raw(a), Raw(b), lenB), Raw(cat); got != want {
			t.Fatalf("Combine(Raw) lenA=%d lenB=%d: got %08x want %08x", len(a), len(b), got, want)
		}
		op := MakeCombineOp(lenB)
		if got, want := op.Combine(Raw(a), Raw(b)), Raw(cat); got != want {
			t.Fatalf("CombineOp lenB=%d: got %08x want %08x", len(b), got, want)
		}
	})
}

func TestCombineEdgeLengths(t *testing.T) {
	a := []byte("the quick brown fox")
	crcA := Checksum(a)

	// Zero-length part: appending nothing is the identity.
	if got := Combine(crcA, Checksum(nil), 0); got != crcA {
		t.Fatalf("zero-length append changed the CRC: %08x != %08x", got, crcA)
	}
	if got := Combine(crcA, 0xdeadbeef, -4); got != crcA {
		t.Fatalf("negative length must be treated as empty, got %08x", got)
	}

	// 1-byte part against the direct checksum.
	b := []byte{0xa5}
	if got, want := Combine(crcA, Checksum(b), 1), Checksum(append(append([]byte(nil), a...), b...)); got != want {
		t.Fatalf("1-byte part: got %08x want %08x", got, want)
	}

	// Exact 4 KiB hits the memoized operator; it must agree with the raw
	// concatenation and with a freshly built operator.
	blk := make([]byte, blockLen4K)
	r := rand.New(rand.NewSource(99))
	r.Read(blk)
	want := Raw(append(append([]byte(nil), a...), blk...))
	if got := Combine(Raw(a), Raw(blk), blockLen4K); got != want {
		t.Fatalf("4K fast path: got %08x want %08x", got, want)
	}
	fresh := MakeCombineOp(blockLen4K)
	if got := fresh.Combine(Raw(a), Raw(blk)); got != want {
		t.Fatalf("fresh 4K op: got %08x want %08x", got, want)
	}
	if fresh.Len() != blockLen4K {
		t.Fatalf("op length: got %d", fresh.Len())
	}
}

// TestCombineMultiGiBLength exercises int64 length arguments far beyond
// 2^31. Shifting a CRC across zero bytes is additive in the length
// (shift(c, m+n) == shift(shift(c, m), n)), so any integer truncation in
// the squaring chain breaks the identity. The lengths are anchored to real
// data by the fuzz corpus and the incremental check below.
func TestCombineMultiGiBLength(t *testing.T) {
	const c = uint32(0x1b0c2a35)
	shift := func(crc uint32, n int64) uint32 {
		// CRC of A||zeros(n): the zeros contribute a zero raw CRC.
		return Combine(crc, 0, n)
	}
	lengths := []int64{
		3 << 30,        // 3 GiB: past int32
		5 << 30,        // 5 GiB
		(1 << 35) + 7,  // 32 GiB + 7
		(1 << 40) + 13, // 1 TiB + 13
	}
	for _, n := range lengths {
		m := n/3 + 1
		if got, want := shift(c, n), shift(shift(c, m), n-m); got != want {
			t.Fatalf("shift additivity broken at n=%d: %08x != %08x", n, got, want)
		}
		op := MakeCombineOp(n)
		if got, want := op.Combine(c, 0), shift(c, n); got != want {
			t.Fatalf("CombineOp(%d) disagrees with Combine: %08x != %08x", n, got, want)
		}
	}
	// Anchor the shift against genuinely hashed zeros at a length big
	// enough to cross several doubling steps.
	zeros := make([]byte, 1<<20)
	if got, want := shift(Raw([]byte("anchor")), int64(len(zeros))), RawUpdate(Raw([]byte("anchor")), zeros); got != want {
		t.Fatalf("1 MiB zero shift: got %08x want %08x", got, want)
	}
}

func TestCombineBlocksMatchesConcatenation(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, blockLen := range []int64{blockLen4K, 512, 1} {
		for _, blocks := range []int{0, 1, 2, 3, 8} {
			var cat []byte
			var crcs []uint32
			for i := 0; i < blocks; i++ {
				b := make([]byte, blockLen)
				r.Read(b)
				cat = append(cat, b...)
				crcs = append(crcs, Raw(b))
			}
			if got, want := CombineBlocks(crcs, blockLen), Raw(cat); got != want {
				t.Fatalf("blockLen=%d blocks=%d: got %08x want %08x", blockLen, blocks, got, want)
			}
		}
	}
}

// BenchmarkCombine4K measures the memoized fast path the data path hits on
// every per-block fold at the blockserver boundary.
func BenchmarkCombine4K(b *testing.B) {
	crcA, crcB := Raw([]byte("a")), Raw([]byte("b"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		crcA = Combine(crcA, crcB, blockLen4K)
	}
	sinkU32 = crcA
}

// BenchmarkCombineCold measures the unmemoized squaring-chain path for
// comparison (what every fold cost before the operator cache).
func BenchmarkCombineCold(b *testing.B) {
	crcA, crcB := Raw([]byte("a")), Raw([]byte("b"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		crcA = Combine(crcA, crcB, blockLen4K+1)
	}
	sinkU32 = crcA
}

var sinkU32 uint32
