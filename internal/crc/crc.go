// Package crc implements the CRC32 machinery EBS relies on for end-to-end
// data integrity, built from scratch (table generation, slicing-by-8, and
// GF(2) combine), plus the two properties Solar's design exploits:
//
//  1. A "raw" (zero-init, no final inversion) CRC32 is linear over GF(2):
//     Raw(a XOR b) == Raw(a) XOR Raw(b) for equal-length inputs. Solar's
//     software integrity check verifies only the XOR-aggregate of the
//     per-block CRCs computed by the FPGA (§4.5, "CRC aggregation"),
//     catching FPGA bit flips at a fraction of full software CRC cost.
//  2. Combine folds the CRC of a concatenation from the CRCs of its parts,
//     so a segment-level expected CRC can be maintained incrementally.
//
// The polynomial is Castagnoli (CRC-32C), as used by storage systems (iSCSI,
// ext4, NVMe).
package crc

// Poly is the reversed Castagnoli polynomial.
const Poly = 0x82f63b78

var (
	// table[0] is the classic byte-at-a-time table; table[1..7] extend it
	// for slicing-by-8.
	table [8][256]uint32
)

func init() {
	for i := 0; i < 256; i++ {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 == 1 {
				crc = (crc >> 1) ^ Poly
			} else {
				crc >>= 1
			}
		}
		table[0][i] = crc
	}
	for i := 0; i < 256; i++ {
		crc := table[0][i]
		for k := 1; k < 8; k++ {
			crc = table[0][crc&0xff] ^ (crc >> 8)
			table[k][i] = crc
		}
	}
}

// update advances a raw (non-inverted) CRC state over p using slicing-by-8.
func update(crc uint32, p []byte) uint32 {
	for len(p) >= 8 {
		crc ^= uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
		crc = table[7][crc&0xff] ^
			table[6][(crc>>8)&0xff] ^
			table[5][(crc>>16)&0xff] ^
			table[4][(crc>>24)&0xff] ^
			table[3][p[4]] ^
			table[2][p[5]] ^
			table[1][p[6]] ^
			table[0][p[7]]
		p = p[8:]
	}
	for _, b := range p {
		crc = table[0][byte(crc)^b] ^ (crc >> 8)
	}
	return crc
}

// Checksum returns the standard CRC-32C of data (init 0xFFFFFFFF, final
// inversion), matching hash/crc32.Checksum(data, Castagnoli).
func Checksum(data []byte) uint32 {
	return update(0xffffffff, data) ^ 0xffffffff
}

// Update continues a standard CRC-32C from a previous Checksum result.
func Update(crc uint32, data []byte) uint32 {
	return update(crc^0xffffffff, data) ^ 0xffffffff
}

// Raw returns the linear CRC-32C of data: zero initial state and no final
// inversion. For equal-length blocks, Raw(a⊕b) == Raw(a)⊕Raw(b); this is
// the form the FPGA CRC engine emits per block and the CPU aggregates.
func Raw(data []byte) uint32 {
	return update(0, data)
}

// RawUpdate continues a raw CRC from a previous Raw result.
func RawUpdate(crc uint32, data []byte) uint32 {
	return update(crc, data)
}

// gf2MatTimes multiplies matrix m by vector v over GF(2).
func gf2MatTimes(m *[32]uint32, v uint32) uint32 {
	var sum uint32
	for i := 0; v != 0; i, v = i+1, v>>1 {
		if v&1 != 0 {
			sum ^= m[i]
		}
	}
	return sum
}

// gf2MatSquare sets sq = m·m over GF(2).
func gf2MatSquare(sq, m *[32]uint32) {
	for i := 0; i < 32; i++ {
		sq[i] = gf2MatTimes(m, m[i])
	}
}

// gf2MatMul sets dst = a·b over GF(2). Column i of the product is a applied
// to column i of b (m[i] holds the image of basis vector e_i).
func gf2MatMul(dst, a, b *[32]uint32) {
	for i := 0; i < 32; i++ {
		dst[i] = gf2MatTimes(a, b[i])
	}
}

// CombineOp is the GF(2) shift operator for a fixed appended length,
// flattened into a single 32×32 matrix. Building it costs the same
// squaring chain as one Combine call; applying it afterwards is a single
// matrix–vector product. The data path memoizes the operator for the fixed
// 4 KiB block length so per-block CRC folding at the blockserver/DPU
// boundary never rebuilds the matrices.
//
// The operator is valid for both CRC forms: the raw (zero-init, linear)
// CRC satisfies Raw(A||B) = M_lenB·Raw(A) ⊕ Raw(B) directly, and the zlib
// construction makes the same identity hold for the inverted Checksum form.
type CombineOp struct {
	mat  [32]uint32
	lenB int64
}

// MakeCombineOp precomputes the combine operator for appending lenB bytes.
func MakeCombineOp(lenB int64) CombineOp {
	op := CombineOp{lenB: lenB}
	for i := 0; i < 32; i++ {
		op.mat[i] = 1 << i // identity: lenB <= 0 appends nothing
	}
	if lenB <= 0 {
		return op
	}
	var even, odd, tmp [32]uint32
	shiftSeed(&even, &odd)
	n := lenB
	for {
		gf2MatSquare(&even, &odd)
		if n&1 != 0 {
			gf2MatMul(&tmp, &even, &op.mat)
			op.mat = tmp
		}
		n >>= 1
		if n == 0 {
			break
		}
		gf2MatSquare(&odd, &even)
		if n&1 != 0 {
			gf2MatMul(&tmp, &odd, &op.mat)
			op.mat = tmp
		}
		n >>= 1
		if n == 0 {
			break
		}
	}
	return op
}

// Len returns the appended length the operator was built for.
func (op *CombineOp) Len() int64 { return op.lenB }

// Combine folds crcB (over lenB bytes) onto crcA with one matrix–vector
// product: CRC(A||B) from CRC(A) and CRC(B).
func (op *CombineOp) Combine(crcA, crcB uint32) uint32 {
	return gf2MatTimes(&op.mat, crcA) ^ crcB
}

// blockLen4K is the fixed EBS block length (wire.BlockSize; the literal
// avoids an import cycle) whose combine operator is memoized at init.
const blockLen4K = 4096

var op4K = MakeCombineOp(blockLen4K)

// shiftSeed initialises the squaring chain: even = operator for two zero
// bits, odd = operator for four zero bits (zlib crc32_combine seeding).
func shiftSeed(even, odd *[32]uint32) {
	// odd = operator for one zero bit.
	odd[0] = Poly
	row := uint32(1)
	for i := 1; i < 32; i++ {
		odd[i] = row
		row <<= 1
	}
	gf2MatSquare(even, odd)
	gf2MatSquare(odd, even)
}

// Combine returns the CRC of the concatenation A||B given crcA =
// Checksum(A), crcB = Checksum(B), and lenB = len(B). This is the zlib
// crc32_combine construction specialised to CRC-32C. The fixed 4 KiB block
// length hits the memoized operator and skips the squaring chain entirely.
func Combine(crcA, crcB uint32, lenB int64) uint32 {
	if lenB <= 0 {
		return crcA
	}
	if lenB == blockLen4K {
		return op4K.Combine(crcA, crcB)
	}
	var even, odd [32]uint32
	shiftSeed(&even, &odd)

	// Apply len2 zero bytes to crcA, 3 bits at a time (len*8 bits).
	n := lenB
	for {
		gf2MatSquare(&even, &odd)
		if n&1 != 0 {
			crcA = gf2MatTimes(&even, crcA)
		}
		n >>= 1
		if n == 0 {
			break
		}
		gf2MatSquare(&odd, &even)
		if n&1 != 0 {
			crcA = gf2MatTimes(&odd, crcA)
		}
		n >>= 1
		if n == 0 {
			break
		}
	}
	return crcA ^ crcB
}

// CombineBlocks folds the raw CRCs of consecutive equal-length blocks into
// the raw CRC of their concatenation, reusing one precomputed operator for
// the whole fold (memoized for 4 KiB blocks). An empty slice folds to 0,
// the raw CRC of the empty payload.
func CombineBlocks(crcs []uint32, blockLen int64) uint32 {
	if len(crcs) == 0 {
		return 0
	}
	op := &op4K
	if blockLen != blockLen4K {
		fresh := MakeCombineOp(blockLen)
		op = &fresh
	}
	agg := crcs[0]
	for _, c := range crcs[1:] {
		agg = op.Combine(agg, c)
	}
	return agg
}

// XorAggregate folds per-block raw CRCs into the single value Solar's CPU
// verifies. Blocks must be equal length for the linearity property to make
// the aggregate meaningful.
func XorAggregate(rawCRCs []uint32) uint32 {
	var agg uint32
	for _, c := range rawCRCs {
		agg ^= c
	}
	return agg
}

// XorBlocks XORs equal-length blocks together into dst (for verification in
// tests and the software integrity checker). It panics if lengths differ.
func XorBlocks(dst []byte, blocks ...[]byte) {
	for i := range dst {
		dst[i] = 0
	}
	for _, b := range blocks {
		if len(b) != len(dst) {
			panic("crc: XorBlocks length mismatch")
		}
		for i, v := range b {
			dst[i] ^= v
		}
	}
}

// Aggregator implements Solar's software-side segment integrity check. The
// FPGA reports each block's raw CRC; the host folds them with XOR and
// periodically compares against an expected aggregate computed over the
// XOR of the block payloads. One 4-byte XOR per block replaces a full
// 4 KiB CRC per block on the CPU.
type Aggregator struct {
	agg      uint32
	expected uint32
	blocks   int
}

// AddBlockCRC folds one FPGA-reported raw block CRC into the aggregate.
func (a *Aggregator) AddBlockCRC(raw uint32) {
	a.agg ^= raw
	a.blocks++
}

// AddExpected folds the trusted raw CRC of the block's true payload into
// the expected aggregate. In production the expected value arrives from the
// block server's metadata; tests compute it directly.
func (a *Aggregator) AddExpected(raw uint32) {
	a.expected ^= raw
}

// Blocks returns how many block CRCs were folded in.
func (a *Aggregator) Blocks() int { return a.blocks }

// Verify reports whether the FPGA-reported aggregate matches the expected
// aggregate. A false result means at least one block was corrupted by the
// hardware (or an odd number of identical corruptions occurred — the same
// residual risk the paper accepts).
func (a *Aggregator) Verify() bool { return a.agg == a.expected }

// Reset clears the aggregator for the next segment.
func (a *Aggregator) Reset() {
	a.agg = 0
	a.expected = 0
	a.blocks = 0
}
