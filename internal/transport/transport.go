// Package transport defines the interface every frontend-network stack
// (kernel TCP, Luna, RDMA, Solar) implements, plus the pieces they share:
// Jacobson RTT estimation, retransmission timer state, and RPC ID
// allocation. The storage agent and block server are written against this
// interface, which is how every cross-stack comparison in the paper's
// evaluation runs on identical storage code.
package transport

import (
	"errors"
	"time"

	"lunasolar/internal/simnet"
)

// Message is one storage RPC: a WRITE carrying block data toward a block
// server, or a READ requesting blocks back. Addressing fields mirror the
// EBS wire header; Data is real bytes.
type Message struct {
	Op        uint8 // wire.RPCWriteReq or wire.RPCReadReq
	VDisk     uint32
	SegmentID uint64
	LBA       uint64
	Gen       uint32
	Flags     uint8
	Data      []byte // WRITE: payload (multiple 4 KiB blocks)
	ReadLen   int    // READ: bytes requested

	// Payload, when non-nil, is the refcounted slab whose bytes Data
	// aliases (zero-copy mode). The reference belongs to whoever set the
	// field — a stack receive path or a fan-out layer — and only that
	// owner releases it; stacks that keep the payload in flight Retain
	// their own references instead of copying the bytes.
	Payload *simnet.Slab

	// BlockCRCs carries the raw CRC-32C of each 4 KiB block of Data,
	// computed once at SA ingress (zero-copy mode only; nil means
	// "recompute locally", the copy-path behaviour). Downstream stages
	// verify by folding these with crc.Combine/XorAggregate instead of
	// re-walking payload bytes.
	BlockCRCs []uint32
}

// Response is the outcome of a Call. ServerWall and SSDTime are the
// distributed-trace annotations Fig. 6's latency breakdown needs: total
// residence time in the block server (BN replication + media) and the
// media portion alone.
type Response struct {
	Data []byte // READ: payload
	Err  error

	// BlockCRCs returns the stored raw CRC-32C per 4 KiB block of Data on
	// reads (zero-copy mode), so the reader verifies against device
	// metadata without the server re-walking the bytes.
	BlockCRCs []uint32

	ServerWall time.Duration // block-server residence time (BN + SSD)
	SSDTime    time.Duration // chunk-server + media portion
}

// Handler processes an inbound request on the server side and must
// eventually invoke reply exactly once.
type Handler func(src uint32, req *Message, reply func(*Response))

// Client issues RPCs to remote hosts.
type Client interface {
	// Call sends req to the host with fabric address dst; done is invoked
	// when the response arrives. Stacks retry internally — like production
	// storage stacks they never give up, so a network that heals late
	// yields a late (not failed) response. Callers measure hang time.
	Call(dst uint32, req *Message, done func(*Response))
}

// Stack is a full FN endpoint: client and server on one host.
type Stack interface {
	Client
	// SetHandler installs the server-side request handler.
	SetHandler(Handler)
	// LocalAddr returns the host's fabric address.
	LocalAddr() uint32
	// Name identifies the stack ("kernel", "luna", "rdma", "solar").
	Name() string
}

// ErrAdmission is returned when QoS admission rejects an I/O outright
// (callers normally see queueing, not errors).
var ErrAdmission = errors.New("transport: rejected by QoS admission")

// ErrNotOwner is returned by a block server for a segment it has released
// to another owner (live segment migration cutover). The storage agent
// treats it as a routing miss: re-resolve the segment table — whose
// generation the cutover bumped — and retry against the new location.
var ErrNotOwner = errors.New("transport: segment not owned by this server")

// RTT tracks smoothed RTT and variance per Jacobson/Karels and derives the
// retransmission timeout.
type RTT struct {
	srtt   time.Duration
	rttvar time.Duration
	minRTO time.Duration
	maxRTO time.Duration
	init   bool
}

// NewRTT creates an estimator with the given RTO clamp.
func NewRTT(minRTO, maxRTO time.Duration) *RTT {
	return &RTT{minRTO: minRTO, maxRTO: maxRTO}
}

// Observe folds in one RTT sample.
func (r *RTT) Observe(sample time.Duration) {
	if sample <= 0 {
		sample = time.Nanosecond
	}
	if !r.init {
		r.srtt = sample
		r.rttvar = sample / 2
		r.init = true
		return
	}
	d := r.srtt - sample
	if d < 0 {
		d = -d
	}
	r.rttvar = (3*r.rttvar + d) / 4
	r.srtt = (7*r.srtt + sample) / 8
}

// SRTT returns the smoothed RTT (zero before the first sample).
func (r *RTT) SRTT() time.Duration { return r.srtt }

// RTO returns the current retransmission timeout: srtt + 4·rttvar, clamped.
func (r *RTT) RTO() time.Duration {
	rto := r.srtt + 4*r.rttvar
	if !r.init || rto < r.minRTO {
		rto = r.minRTO
	}
	if rto > r.maxRTO {
		rto = r.maxRTO
	}
	return rto
}

// Backoff returns the RTO after n consecutive timeouts (exponential,
// clamped).
func (r *RTT) Backoff(n int) time.Duration {
	rto := r.RTO()
	for i := 0; i < n && rto < r.maxRTO; i++ {
		rto *= 2
	}
	if rto > r.maxRTO {
		rto = r.maxRTO
	}
	return rto
}

// IDAlloc hands out unique RPC IDs.
type IDAlloc struct{ next uint64 }

// Next returns a fresh non-zero ID.
func (a *IDAlloc) Next() uint64 {
	a.next++
	return a.next
}

// Loopback is an in-process transport: Call invokes the local handler after
// a fixed latency, with no network underneath. It models the paper's §4.8
// "Integrated EBS with DPU" direction, where the storage agent and the
// block server share the DPU and the frontend-network hop disappears.
type Loopback struct {
	schedule func(d time.Duration, fn func())
	latency  time.Duration
	local    uint32
	handler  Handler
}

// NewLoopback builds a loopback endpoint. schedule is the event-engine hook
// (sim.Engine.Schedule fits); latency is the intra-DPU handover cost.
func NewLoopback(schedule func(time.Duration, func()), latency time.Duration, local uint32) *Loopback {
	return &Loopback{schedule: schedule, latency: latency, local: local}
}

// Call implements Client: deliver to the local handler after the handover
// latency.
func (l *Loopback) Call(dst uint32, req *Message, done func(*Response)) {
	l.schedule(l.latency, func() {
		if l.handler == nil {
			done(&Response{Err: ErrAdmission})
			return
		}
		l.handler(l.local, req, func(resp *Response) {
			l.schedule(l.latency, func() { done(resp) })
		})
	})
}

// SetHandler implements Stack.
func (l *Loopback) SetHandler(h Handler) { l.handler = h }

// LocalAddr implements Stack.
func (l *Loopback) LocalAddr() uint32 { return l.local }

// Name implements Stack.
func (l *Loopback) Name() string { return "loopback" }

var _ Stack = (*Loopback)(nil)
