package transport

import (
	"lunasolar/internal/sim"
)

// Retransmitter is the one retransmission-timer implementation shared by
// every stack: kernel TCP and Luna (per-connection RTO), RDMA (per-QP RTO)
// and Solar (per-packet selective retransmission). It owns the pieces those
// stacks used to duplicate — the cancellable timer, the consecutive-timeout
// counter driving exponential backoff, and the hook into the Jacobson RTT
// estimator — while the policy that runs on expiry (rewind, go-back-N,
// path failover) stays in the stack's callback.
//
// Timers are armed on the engine's coarse scheduling class (the timing
// wheel): they are re-armed on every ACK and almost never fire, exactly the
// churn profile the wheel's O(1) arm/cancel is for.
//
// A Retransmitter is embedded by value in pooled per-connection/per-packet
// records; Init rebinds it after a record is recycled. The zero value is
// inactive.
type Retransmitter struct {
	eng  *sim.Engine
	rtt  *RTT // default estimator; ArmOn overrides per arm (multipath)
	fire func(any)
	arg  any

	timer  sim.Timer
	consec int
	maxExp int
}

// Init binds the retransmitter to its engine, default RTT estimator and
// expiry callback. maxExp clamps the backoff exponent (negative leaves it
// unclamped; RTT.Backoff clamps the resulting duration to maxRTO either
// way). fire(arg) runs on expiry with the timer already cleared, so the
// callback may re-Arm.
func (r *Retransmitter) Init(eng *sim.Engine, rtt *RTT, maxExp int, fire func(any), arg any) {
	r.eng = eng
	r.rtt = rtt
	r.maxExp = maxExp
	r.fire = fire
	r.arg = arg
}

// Arm (re)schedules expiry after the default estimator's RTO, backed off
// exponentially by the consecutive-timeout count. Any pending expiry is
// cancelled first.
func (r *Retransmitter) Arm() { r.ArmOn(r.rtt) }

// ArmOn is Arm with an explicit estimator, for stacks that keep one
// estimator per path rather than per endpoint (Solar's multipath).
func (r *Retransmitter) ArmOn(rtt *RTT) {
	r.Disarm()
	exp := r.consec
	if r.maxExp >= 0 && exp > r.maxExp {
		exp = r.maxExp
	}
	r.timer = r.eng.ScheduleCoarseArg(rtt.Backoff(exp), retxExpired, r)
}

// retxExpired is the pooled-event trampoline: clear the handle, then hand
// control to the stack's policy callback. Accounting is left to the
// callback — stacks differ on whether a timeout with nothing in flight
// counts against backoff.
func retxExpired(a any) {
	r := a.(*Retransmitter)
	r.timer = sim.Timer{}
	r.fire(r.arg)
}

// Disarm cancels any pending expiry.
func (r *Retransmitter) Disarm() {
	r.timer.Cancel()
	r.timer = sim.Timer{}
}

// Active reports whether an expiry is pending.
func (r *Retransmitter) Active() bool { return r.timer.Active() }

// RecordTimeout counts one retransmission-triggering event, raising the
// backoff exponent for subsequent arms, and returns the new count.
func (r *Retransmitter) RecordTimeout() int {
	r.consec++
	return r.consec
}

// RecordAck resets the backoff exponent after forward progress.
func (r *Retransmitter) RecordAck() { r.consec = 0 }

// Consecutive returns the count of timeouts since the last RecordAck; zero
// means the next arm uses the plain RTO (and, per Karn's rule, that the
// current transmission is unambiguous and may be RTT-sampled).
func (r *Retransmitter) Consecutive() int { return r.consec }
