package transport

import (
	"testing"
	"time"
)

func TestRTTFirstSample(t *testing.T) {
	r := NewRTT(time.Millisecond, time.Second)
	r.Observe(10 * time.Microsecond)
	if r.SRTT() != 10*time.Microsecond {
		t.Fatalf("srtt = %v", r.SRTT())
	}
	// RTO clamped to min.
	if r.RTO() != time.Millisecond {
		t.Fatalf("rto = %v", r.RTO())
	}
}

func TestRTTConverges(t *testing.T) {
	r := NewRTT(time.Microsecond, time.Second)
	for i := 0; i < 100; i++ {
		r.Observe(50 * time.Microsecond)
	}
	if got := r.SRTT(); got < 45*time.Microsecond || got > 55*time.Microsecond {
		t.Fatalf("srtt = %v after steady samples", got)
	}
	// Steady samples → variance decays → RTO approaches srtt.
	if got := r.RTO(); got > 70*time.Microsecond {
		t.Fatalf("rto = %v, want close to srtt", got)
	}
}

func TestRTTSpikesRaiseRTO(t *testing.T) {
	r := NewRTT(time.Microsecond, time.Second)
	for i := 0; i < 50; i++ {
		r.Observe(10 * time.Microsecond)
	}
	base := r.RTO()
	r.Observe(time.Millisecond)
	if r.RTO() <= base {
		t.Fatal("latency spike did not raise RTO")
	}
}

func TestRTOBackoff(t *testing.T) {
	r := NewRTT(time.Millisecond, 100*time.Millisecond)
	if got := r.Backoff(3); got != 8*time.Millisecond {
		t.Fatalf("backoff(3) = %v", got)
	}
	if got := r.Backoff(20); got != 100*time.Millisecond {
		t.Fatalf("backoff clamp = %v", got)
	}
}

func TestRTTNonPositiveSample(t *testing.T) {
	r := NewRTT(time.Millisecond, time.Second)
	r.Observe(0)
	r.Observe(-time.Second)
	if r.SRTT() <= 0 {
		t.Fatalf("srtt = %v", r.SRTT())
	}
}

// fakeClock is a minimal schedule hook: it runs callbacks immediately while
// accumulating the latency they were scheduled with.
type fakeClock struct{ elapsed time.Duration }

func (c *fakeClock) schedule(d time.Duration, fn func()) {
	c.elapsed += d
	fn()
}

func TestLoopbackNoHandler(t *testing.T) {
	clk := &fakeClock{}
	l := NewLoopback(clk.schedule, time.Microsecond, 42)
	var resp *Response
	l.Call(7, &Message{}, func(r *Response) { resp = r })
	if resp == nil {
		t.Fatal("done was not invoked")
	}
	if resp.Err != ErrAdmission {
		t.Fatalf("err = %v, want ErrAdmission", resp.Err)
	}
}

func TestLoopbackRoundTrip(t *testing.T) {
	clk := &fakeClock{}
	l := NewLoopback(clk.schedule, time.Microsecond, 42)
	l.SetHandler(func(src uint32, req *Message, reply func(*Response)) {
		if src != 42 {
			t.Fatalf("src = %d, want local addr 42", src)
		}
		reply(&Response{Data: []byte{1}})
	})
	var resp *Response
	l.Call(7, &Message{}, func(r *Response) { resp = r })
	if resp == nil || resp.Err != nil || len(resp.Data) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	// Handover latency is paid in both directions.
	if clk.elapsed != 2*time.Microsecond {
		t.Fatalf("elapsed = %v, want 2µs", clk.elapsed)
	}
}

func TestIDAlloc(t *testing.T) {
	var a IDAlloc
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := a.Next()
		if id == 0 || seen[id] {
			t.Fatalf("duplicate or zero id %d", id)
		}
		seen[id] = true
	}
}
