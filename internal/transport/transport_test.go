package transport

import (
	"testing"
	"time"
)

func TestRTTFirstSample(t *testing.T) {
	r := NewRTT(time.Millisecond, time.Second)
	r.Observe(10 * time.Microsecond)
	if r.SRTT() != 10*time.Microsecond {
		t.Fatalf("srtt = %v", r.SRTT())
	}
	// RTO clamped to min.
	if r.RTO() != time.Millisecond {
		t.Fatalf("rto = %v", r.RTO())
	}
}

func TestRTTConverges(t *testing.T) {
	r := NewRTT(time.Microsecond, time.Second)
	for i := 0; i < 100; i++ {
		r.Observe(50 * time.Microsecond)
	}
	if got := r.SRTT(); got < 45*time.Microsecond || got > 55*time.Microsecond {
		t.Fatalf("srtt = %v after steady samples", got)
	}
	// Steady samples → variance decays → RTO approaches srtt.
	if got := r.RTO(); got > 70*time.Microsecond {
		t.Fatalf("rto = %v, want close to srtt", got)
	}
}

func TestRTTSpikesRaiseRTO(t *testing.T) {
	r := NewRTT(time.Microsecond, time.Second)
	for i := 0; i < 50; i++ {
		r.Observe(10 * time.Microsecond)
	}
	base := r.RTO()
	r.Observe(time.Millisecond)
	if r.RTO() <= base {
		t.Fatal("latency spike did not raise RTO")
	}
}

func TestRTOBackoff(t *testing.T) {
	r := NewRTT(time.Millisecond, 100*time.Millisecond)
	if got := r.Backoff(3); got != 8*time.Millisecond {
		t.Fatalf("backoff(3) = %v", got)
	}
	if got := r.Backoff(20); got != 100*time.Millisecond {
		t.Fatalf("backoff clamp = %v", got)
	}
}

func TestRTTNonPositiveSample(t *testing.T) {
	r := NewRTT(time.Millisecond, time.Second)
	r.Observe(0)
	r.Observe(-time.Second)
	if r.SRTT() <= 0 {
		t.Fatalf("srtt = %v", r.SRTT())
	}
}

func TestIDAlloc(t *testing.T) {
	var a IDAlloc
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := a.Next()
		if id == 0 || seen[id] {
			t.Fatalf("duplicate or zero id %d", id)
		}
		seen[id] = true
	}
}
