// Package wire defines the on-the-wire formats of the EBS frontend network:
// IPv4 and UDP headers, Luna's TCP segment header, the RPC header, Solar's
// EBS header (Figs. 12–13 of the paper: opcode, virtual-disk addressing and
// per-block CRC carried in every packet), the per-packet ACK, and the
// in-band network telemetry (INT) stack that HPCC congestion control
// consumes.
//
// All types follow the zero-copy decode/serialize idiom: Encode writes into
// a caller-supplied slice at a fixed offset layout and Decode reads from one
// without retaining it. Sizes are compile-time constants so a full Solar
// data packet (headers + 4 KiB block) always fits a 9000-byte jumbo frame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var (
	// ErrShort is returned when a buffer is too small for the header.
	ErrShort = errors.New("wire: buffer too short")
	// ErrVersion is returned on an unsupported header version.
	ErrVersion = errors.New("wire: unsupported version")
)

var be = binary.BigEndian

// Protocol numbers used by the IPv4 header.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// ECN codepoints (the low two bits of the IPv4 TOS byte).
const (
	ECNNotECT = 0b00
	ECNECT0   = 0b10
	ECNCE     = 0b11 // congestion experienced, set by switches
)

// IPv4Size is the length of the (option-less) IPv4 header.
const IPv4Size = 20

// IPv4 is a minimal, real-layout IPv4 header. Addresses are 32-bit values;
// the simulated fabric assigns one per host port.
type IPv4 struct {
	TOS      uint8 // includes ECN bits
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Proto    uint8
	Src      uint32
	Dst      uint32
}

// Encode writes the header into b[:IPv4Size], computing the checksum.
func (h *IPv4) Encode(b []byte) error {
	if len(b) < IPv4Size {
		return ErrShort
	}
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	be.PutUint16(b[2:], h.TotalLen)
	be.PutUint16(b[4:], h.ID)
	be.PutUint16(b[6:], 0x4000) // DF, no fragments
	b[8] = h.TTL
	b[9] = h.Proto
	be.PutUint16(b[10:], 0) // checksum placeholder
	be.PutUint32(b[12:], h.Src)
	be.PutUint32(b[16:], h.Dst)
	be.PutUint16(b[10:], InternetChecksum(b[:IPv4Size]))
	return nil
}

// Decode reads the header from b, validating version and checksum.
func (h *IPv4) Decode(b []byte) error {
	if len(b) < IPv4Size {
		return ErrShort
	}
	if b[0] != 0x45 {
		return ErrVersion
	}
	if InternetChecksum(b[:IPv4Size]) != 0 {
		return fmt.Errorf("wire: bad IPv4 checksum")
	}
	h.TOS = b[1]
	h.TotalLen = be.Uint16(b[2:])
	h.ID = be.Uint16(b[4:])
	h.TTL = b[8]
	h.Proto = b[9]
	h.Src = be.Uint32(b[12:])
	h.Dst = be.Uint32(b[16:])
	return nil
}

// ECN returns the ECN codepoint.
func (h *IPv4) ECN() uint8 { return h.TOS & 0b11 }

// SetECN sets the ECN codepoint.
func (h *IPv4) SetECN(v uint8) { h.TOS = (h.TOS &^ 0b11) | (v & 0b11) }

// InternetChecksum computes the RFC 1071 ones-complement checksum of b.
func InternetChecksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(be.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// UDPSize is the UDP header length.
const UDPSize = 8

// UDP is the UDP header. Solar uses the source port as the multi-path path
// identifier: ECMP's consistent hash over the 5-tuple makes distinct source
// ports take distinct (and persistent) fabric paths.
type UDP struct {
	SrcPort uint16 // Solar path ID
	DstPort uint16
	Len     uint16 // header + payload
}

// Encode writes the header into b[:UDPSize].
func (h *UDP) Encode(b []byte) error {
	if len(b) < UDPSize {
		return ErrShort
	}
	be.PutUint16(b[0:], h.SrcPort)
	be.PutUint16(b[2:], h.DstPort)
	be.PutUint16(b[4:], h.Len)
	be.PutUint16(b[6:], 0) // checksum unused (storage CRC supersedes it)
	return nil
}

// Decode reads the header from b.
func (h *UDP) Decode(b []byte) error {
	if len(b) < UDPSize {
		return ErrShort
	}
	h.SrcPort = be.Uint16(b[0:])
	h.DstPort = be.Uint16(b[2:])
	h.Len = be.Uint16(b[4:])
	return nil
}

// TCPSegSize is the length of the (option-less) TCP segment header used by
// the kernel and Luna stacks.
const TCPSegSize = 20

// TCP flag bits.
const (
	TCPFlagFIN = 1 << 0
	TCPFlagSYN = 1 << 1
	TCPFlagRST = 1 << 2
	TCPFlagPSH = 1 << 3
	TCPFlagACK = 1 << 4
	TCPFlagECE = 1 << 6 // ECN echo, DCTCP-style feedback
)

// TCPSeg is the TCP segment header.
type TCPSeg struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
}

// Encode writes the header into b[:TCPSegSize].
func (h *TCPSeg) Encode(b []byte) error {
	if len(b) < TCPSegSize {
		return ErrShort
	}
	be.PutUint16(b[0:], h.SrcPort)
	be.PutUint16(b[2:], h.DstPort)
	be.PutUint32(b[4:], h.Seq)
	be.PutUint32(b[8:], h.Ack)
	b[12] = 5 << 4 // data offset
	b[13] = h.Flags
	be.PutUint16(b[14:], h.Window)
	be.PutUint16(b[16:], 0) // checksum (link CRC covers the frame in-sim)
	be.PutUint16(b[18:], 0) // urgent
	return nil
}

// Decode reads the header from b.
func (h *TCPSeg) Decode(b []byte) error {
	if len(b) < TCPSegSize {
		return ErrShort
	}
	h.SrcPort = be.Uint16(b[0:])
	h.DstPort = be.Uint16(b[2:])
	h.Seq = be.Uint32(b[4:])
	h.Ack = be.Uint32(b[8:])
	h.Flags = b[13]
	h.Window = be.Uint16(b[14:])
	return nil
}

// CNPSize is the congestion-notification payload length.
const CNPSize = 16

// CNP is the RoCE congestion notification packet the RDMA receiver emits
// when CE-marked data arrives and DCQCN is the active controller. It rides
// behind a BTH whose flags carry ACK|ECE (the RDMA stack reuses TCPSeg as
// its BTH) and tells the sender's rate state machine to decrease. The
// fields identify the triggering flow for diagnostics; the signal itself
// is the frame's arrival.
type CNP struct {
	QPN     uint16 // sender's queue pair (the one being throttled)
	PSN     uint32 // receiver's expected PSN when the mark was seen
	TSNanos uint64 // virtual time the mark was observed
}

// Encode writes the CNP into b[:CNPSize].
func (h *CNP) Encode(b []byte) error {
	if len(b) < CNPSize {
		return ErrShort
	}
	be.PutUint16(b[0:], h.QPN)
	be.PutUint16(b[2:], 0) // reserved
	be.PutUint32(b[4:], h.PSN)
	be.PutUint64(b[8:], h.TSNanos)
	return nil
}

// Decode reads the CNP from b.
func (h *CNP) Decode(b []byte) error {
	if len(b) < CNPSize {
		return ErrShort
	}
	h.QPN = be.Uint16(b[0:])
	h.PSN = be.Uint32(b[4:])
	h.TSNanos = be.Uint64(b[8:])
	return nil
}

// RPC message types.
const (
	RPCWriteReq  = 1 // carries one data block toward a block server
	RPCWriteResp = 2 // per-packet write acknowledgment
	RPCReadReq   = 3 // asks for blocks; responses arrive one per packet
	RPCReadResp  = 4 // carries one data block back
	RPCAck       = 5 // transport-level per-packet ACK (Solar)
	RPCNack      = 6 // explicit loss signal (out-of-order detection)
	RPCProbe     = 7 // path-keepalive / INT probe
)

// RPCSize is the RPC header length.
const RPCSize = 16

// RPC identifies a request and the packet's position within it. Solar sends
// one block per packet, so (RPCID, PktID) uniquely addresses a block; the
// receiver needs no reassembly state beyond the Addr table entry the sender
// installed (§4.5, Fig. 13).
type RPC struct {
	RPCID    uint64
	PktID    uint16
	NumPkts  uint16 // packets in this RPC (1 for most I/O, Fig. 5)
	MsgType  uint8
	Flags    uint8
	ConnSalt uint16 // demultiplexes retransmitted generations
}

// Encode writes the header into b[:RPCSize].
func (h *RPC) Encode(b []byte) error {
	if len(b) < RPCSize {
		return ErrShort
	}
	be.PutUint64(b[0:], h.RPCID)
	be.PutUint16(b[8:], h.PktID)
	be.PutUint16(b[10:], h.NumPkts)
	b[12] = h.MsgType
	b[13] = h.Flags
	be.PutUint16(b[14:], h.ConnSalt)
	return nil
}

// Decode reads the header from b.
func (h *RPC) Decode(b []byte) error {
	if len(b) < RPCSize {
		return ErrShort
	}
	h.RPCID = be.Uint64(b[0:])
	h.PktID = be.Uint16(b[8:])
	h.NumPkts = be.Uint16(b[10:])
	h.MsgType = b[12]
	h.Flags = b[13]
	h.ConnSalt = be.Uint16(b[14:])
	return nil
}

// EBS opcodes.
const (
	OpWrite = 1
	OpRead  = 2
)

// EBS header flags.
const (
	EBSFlagEncrypted = 1 << 0 // payload passed through the SEC engine
	EBSFlagLastBlock = 1 << 1 // final block of the I/O
	// EBSFlagHasCRC marks BlockCRC as carrying one-touch CRC metadata
	// (computed once at ingress), distinguishing a genuine CRC of zero
	// from "no CRC attached" on transports where carriage is optional.
	EBSFlagHasCRC = 1 << 2
	// EBSFlagReject marks a READ response carrying no data: the server no
	// longer owns the requested segment (migration cutover). The client
	// fails the read with transport.ErrNotOwner instead of waiting for
	// blocks that will never arrive.
	EBSFlagReject = 1 << 3
)

// EBSSize is the EBS header length.
const EBSSize = 48

// EBS is the storage header each Solar packet carries: everything the FPGA
// pipeline needs to process the block with no other connection state. The
// block address has already been translated by the Block table on the
// sender, so the receiving block server can apply it directly.
type EBS struct {
	Version   uint8
	Op        uint8
	Flags     uint8
	VDisk     uint32 // virtual disk ID
	SegmentID uint64 // 2 MiB segment within the block server
	LBA       uint64 // logical block address within the virtual disk
	BlockLen  uint32 // payload bytes (4096 for a full block)
	BlockCRC  uint32 // raw CRC-32C of the payload, computed by the FPGA
	Gen       uint32 // segment generation, guards stale retransmits

	// Distributed-trace annotations, meaningful on responses only: total
	// block-server residence time and the media portion (Fig. 6's BN and
	// SSD attribution travels in-band, as production tracing does).
	ServerNS uint32
	SSDNS    uint32
}

// EBSVersion is the current header version.
const EBSVersion = 2

// Encode writes the header into b[:EBSSize].
func (h *EBS) Encode(b []byte) error {
	if len(b) < EBSSize {
		return ErrShort
	}
	b[0] = h.Version
	b[1] = h.Op
	b[2] = h.Flags
	b[3] = 0
	be.PutUint32(b[4:], h.VDisk)
	be.PutUint64(b[8:], h.SegmentID)
	be.PutUint64(b[16:], h.LBA)
	be.PutUint32(b[24:], h.BlockLen)
	be.PutUint32(b[28:], h.BlockCRC)
	be.PutUint32(b[32:], h.Gen)
	be.PutUint32(b[36:], 0) // reserved
	be.PutUint32(b[40:], h.ServerNS)
	be.PutUint32(b[44:], h.SSDNS)
	return nil
}

// Decode reads the header from b, checking the version.
func (h *EBS) Decode(b []byte) error {
	if len(b) < EBSSize {
		return ErrShort
	}
	if b[0] != EBSVersion {
		return ErrVersion
	}
	h.Version = b[0]
	h.Op = b[1]
	h.Flags = b[2]
	h.VDisk = be.Uint32(b[4:])
	h.SegmentID = be.Uint64(b[8:])
	h.LBA = be.Uint64(b[16:])
	h.BlockLen = be.Uint32(b[24:])
	h.BlockCRC = be.Uint32(b[28:])
	h.Gen = be.Uint32(b[32:])
	h.ServerNS = be.Uint32(b[40:])
	h.SSDNS = be.Uint32(b[44:])
	return nil
}

// AckSize is the ACK payload length.
const AckSize = 40

// Ack is Solar's per-packet acknowledgment. It echoes the sender timestamp
// for RTT measurement and carries the bottleneck INT summary the Path&CC
// module feeds to HPCC (§4.5: "per-packet ACK to perform a fine-grained
// congestion control algorithm (e.g., HPCC)").
type Ack struct {
	RPCID     uint64
	PktID     uint16
	PathID    uint16 // echoed UDP source port
	EchoTS    uint64 // sender timestamp, ns
	QLen      uint32 // bottleneck queue length, bytes
	TxRate    uint32 // bottleneck delivery rate, Mbit/s
	ECNMarked bool
	ServerNS  uint32 // block-server residence time, ns (distributed trace)
	SSDNS     uint32 // media portion, ns
}

// Encode writes the ACK into b[:AckSize].
func (h *Ack) Encode(b []byte) error {
	if len(b) < AckSize {
		return ErrShort
	}
	be.PutUint64(b[0:], h.RPCID)
	be.PutUint16(b[8:], h.PktID)
	be.PutUint16(b[10:], h.PathID)
	be.PutUint64(b[12:], h.EchoTS)
	be.PutUint32(b[20:], h.QLen)
	be.PutUint32(b[24:], h.TxRate)
	if h.ECNMarked {
		b[28] = 1
	} else {
		b[28] = 0
	}
	b[29], b[30], b[31] = 0, 0, 0
	be.PutUint32(b[32:], h.ServerNS)
	be.PutUint32(b[36:], h.SSDNS)
	return nil
}

// Decode reads the ACK from b.
func (h *Ack) Decode(b []byte) error {
	if len(b) < AckSize {
		return ErrShort
	}
	h.RPCID = be.Uint64(b[0:])
	h.PktID = be.Uint16(b[8:])
	h.PathID = be.Uint16(b[10:])
	h.EchoTS = be.Uint64(b[12:])
	h.QLen = be.Uint32(b[20:])
	h.TxRate = be.Uint32(b[24:])
	h.ECNMarked = b[28] == 1
	h.ServerNS = be.Uint32(b[32:])
	h.SSDNS = be.Uint32(b[36:])
	return nil
}

// INTHop is one switch's telemetry record, appended in-band as the packet
// traverses the fabric.
type INTHop struct {
	HopID   uint16
	QLenB   uint32 // queue occupancy at enqueue, bytes
	TxBytes uint64 // cumulative bytes transmitted on the egress port
	RateMbs uint32 // port line rate, Mbit/s
	TSNanos uint64 // switch-local timestamp
}

// INTHopSize is the per-hop record length.
const INTHopSize = 26

// INTStack is the variable-length telemetry stack. The first byte of its
// encoding is the hop count.
type INTStack struct {
	Hops []INTHop
}

// MaxINTHops bounds the stack (FN crosses at most ~8 switch hops).
const MaxINTHops = 8

// EncodedSize returns the bytes Encode will write.
func (s *INTStack) EncodedSize() int { return 1 + len(s.Hops)*INTHopSize }

// Push appends a hop record (no-op beyond MaxINTHops, mirroring hardware
// truncation).
func (s *INTStack) Push(h INTHop) {
	if len(s.Hops) < MaxINTHops {
		s.Hops = append(s.Hops, h)
	}
}

// Encode writes the stack into b.
func (s *INTStack) Encode(b []byte) error {
	if len(b) < s.EncodedSize() {
		return ErrShort
	}
	b[0] = byte(len(s.Hops))
	off := 1
	for _, h := range s.Hops {
		be.PutUint16(b[off:], h.HopID)
		be.PutUint32(b[off+2:], h.QLenB)
		be.PutUint64(b[off+6:], h.TxBytes)
		be.PutUint32(b[off+14:], h.RateMbs)
		be.PutUint64(b[off+18:], h.TSNanos)
		off += INTHopSize
	}
	return nil
}

// Decode reads the stack from b, returning the number of bytes consumed.
func (s *INTStack) Decode(b []byte) (int, error) {
	if len(b) < 1 {
		return 0, ErrShort
	}
	n := int(b[0])
	if n > MaxINTHops {
		return 0, fmt.Errorf("wire: INT stack claims %d hops", n)
	}
	need := 1 + n*INTHopSize
	if len(b) < need {
		return 0, ErrShort
	}
	s.Hops = s.Hops[:0]
	off := 1
	for i := 0; i < n; i++ {
		s.Hops = append(s.Hops, INTHop{
			HopID:   be.Uint16(b[off:]),
			QLenB:   be.Uint32(b[off+2:]),
			TxBytes: be.Uint64(b[off+6:]),
			RateMbs: be.Uint32(b[off+14:]),
			TSNanos: be.Uint64(b[off+18:]),
		})
		off += INTHopSize
	}
	return need, nil
}

// BlockSize is the storage data block size: 4 KiB, matching the SSD sector
// size, the unit of the one-block-one-packet design.
const BlockSize = 4096

// JumboFrame is the fabric MTU. The paper uses 4 KiB-payload jumbo frames
// ("we use 4K bytes instead of 8K bytes for the jumbo frame"); a Solar data
// packet with all headers comfortably fits.
const JumboFrame = 9000

// SolarDataPacketSize is the full size of a one-block Solar data packet.
const SolarDataPacketSize = IPv4Size + UDPSize + RPCSize + EBSSize + BlockSize
