package wire

// Vectored-encode helpers for the zero-copy data path. Scatter-gather
// frames keep the RPC/EBS headers in a small pooled prefix and attach the
// payload by reference, so header encoding must be able to target a
// caller-supplied prefix buffer without touching payload bytes. These
// helpers are the single place the header layout (RPC immediately followed
// by EBS) is spelled out for gathered frames.

// HeadersSize is the combined length of the RPC and EBS headers — the
// prefix of every data frame and gathered record.
const HeadersSize = RPCSize + EBSSize

// RecordHeaderSize is the byte-stream record prefix tcpstack frames RPCs
// with: a u32 total record length followed by the RPC and EBS headers.
const RecordHeaderSize = 4 + HeadersSize

// EncodeHeaders writes the RPC and EBS headers contiguously into
// b[:HeadersSize]. It is the vectored form of the per-frame header build:
// the caller gathers payload bytes after the prefix by reference.
func EncodeHeaders(b []byte, rpc *RPC, ebs *EBS) error {
	if len(b) < HeadersSize {
		return ErrShort
	}
	if err := rpc.Encode(b); err != nil {
		return err
	}
	return ebs.Encode(b[RPCSize:])
}

// AppendHeaders appends the encoded RPC and EBS headers to dst and returns
// the extended slice. Append semantics let callers build into pooled
// prefixes of any current length without index arithmetic.
func AppendHeaders(dst []byte, rpc *RPC, ebs *EBS) []byte {
	n := len(dst)
	if cap(dst)-n < HeadersSize {
		grown := make([]byte, n, n+HeadersSize)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:n+HeadersSize]
	_ = rpc.Encode(dst[n:])
	_ = ebs.Encode(dst[n+RPCSize:])
	return dst
}

// EncodeRecordHeader writes tcpstack's record prefix into
// b[:RecordHeaderSize]: the total record length (header + payload bytes)
// followed by the RPC and EBS headers.
func EncodeRecordHeader(b []byte, totalLen int, rpc *RPC, ebs *EBS) error {
	if len(b) < RecordHeaderSize {
		return ErrShort
	}
	be.PutUint32(b[0:], uint32(totalLen))
	return EncodeHeaders(b[4:], rpc, ebs)
}
