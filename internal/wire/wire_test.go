package wire

import (
	"testing"
	"testing/quick"
)

func TestIPv4RoundTrip(t *testing.T) {
	f := func(tos uint8, totalLen, id uint16, ttl, proto uint8, src, dst uint32) bool {
		in := IPv4{TOS: tos, TotalLen: totalLen, ID: id, TTL: ttl, Proto: proto, Src: src, Dst: dst}
		var b [IPv4Size]byte
		if err := in.Encode(b[:]); err != nil {
			return false
		}
		var out IPv4
		if err := out.Decode(b[:]); err != nil {
			return false
		}
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := IPv4{TTL: 64, Proto: ProtoUDP, Src: 1, Dst: 2, TotalLen: 100}
	var b [IPv4Size]byte
	if err := h.Encode(b[:]); err != nil {
		t.Fatal(err)
	}
	b[16] ^= 0x01 // corrupt dst
	var out IPv4
	if err := out.Decode(b[:]); err == nil {
		t.Fatal("corrupted header decoded without error")
	}
}

func TestIPv4ECN(t *testing.T) {
	h := IPv4{TOS: 0xfc}
	h.SetECN(ECNCE)
	if h.ECN() != ECNCE {
		t.Fatalf("ECN = %b", h.ECN())
	}
	if h.TOS>>2 != 0x3f {
		t.Fatal("SetECN clobbered DSCP bits")
	}
	h.SetECN(ECNECT0)
	if h.ECN() != ECNECT0 {
		t.Fatalf("ECN = %b", h.ECN())
	}
}

func TestShortBuffers(t *testing.T) {
	short := make([]byte, 3)
	if err := (&IPv4{}).Encode(short); err != ErrShort {
		t.Fatal("IPv4.Encode short")
	}
	if err := (&IPv4{}).Decode(short); err != ErrShort {
		t.Fatal("IPv4.Decode short")
	}
	if err := (&UDP{}).Encode(short); err != ErrShort {
		t.Fatal("UDP short")
	}
	if err := (&TCPSeg{}).Encode(short); err != ErrShort {
		t.Fatal("TCPSeg short")
	}
	if err := (&RPC{}).Encode(short); err != ErrShort {
		t.Fatal("RPC short")
	}
	if err := (&EBS{}).Encode(short); err != ErrShort {
		t.Fatal("EBS short")
	}
	if err := (&Ack{}).Encode(short); err != ErrShort {
		t.Fatal("Ack short")
	}
	if _, err := (&INTStack{}).Decode(nil); err != ErrShort {
		t.Fatal("INT short")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	f := func(sp, dp, l uint16) bool {
		in := UDP{SrcPort: sp, DstPort: dp, Len: l}
		var b [UDPSize]byte
		in.Encode(b[:])
		var out UDP
		out.Decode(b[:])
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPSegRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16) bool {
		in := TCPSeg{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags, Window: win}
		var b [TCPSegSize]byte
		in.Encode(b[:])
		var out TCPSeg
		out.Decode(b[:])
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	f := func(id uint64, pkt, num uint16, mt, fl uint8, salt uint16) bool {
		in := RPC{RPCID: id, PktID: pkt, NumPkts: num, MsgType: mt, Flags: fl, ConnSalt: salt}
		var b [RPCSize]byte
		in.Encode(b[:])
		var out RPC
		out.Decode(b[:])
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEBSRoundTrip(t *testing.T) {
	f := func(op, flags uint8, vd uint32, seg, lba uint64, blen, bcrc, gen uint32) bool {
		in := EBS{Version: EBSVersion, Op: op, Flags: flags, VDisk: vd,
			SegmentID: seg, LBA: lba, BlockLen: blen, BlockCRC: bcrc, Gen: gen}
		var b [EBSSize]byte
		in.Encode(b[:])
		var out EBS
		if err := out.Decode(b[:]); err != nil {
			return false
		}
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEBSVersionCheck(t *testing.T) {
	in := EBS{Version: 99}
	var b [EBSSize]byte
	in.Encode(b[:])
	var out EBS
	if err := out.Decode(b[:]); err != ErrVersion {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	f := func(id uint64, pkt, path uint16, ts uint64, ql, rate uint32, ecn bool, srv, ssd uint32) bool {
		in := Ack{RPCID: id, PktID: pkt, PathID: path, EchoTS: ts, QLen: ql, TxRate: rate,
			ECNMarked: ecn, ServerNS: srv, SSDNS: ssd}
		var b [AckSize]byte
		in.Encode(b[:])
		var out Ack
		out.Decode(b[:])
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestINTStackRoundTrip(t *testing.T) {
	var s INTStack
	for i := 0; i < 5; i++ {
		s.Push(INTHop{HopID: uint16(i), QLenB: uint32(i * 1000), TxBytes: uint64(i) << 30,
			RateMbs: 25000, TSNanos: uint64(i) * 777})
	}
	b := make([]byte, s.EncodedSize())
	if err := s.Encode(b); err != nil {
		t.Fatal(err)
	}
	var out INTStack
	n, err := out.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d, want %d", n, len(b))
	}
	if len(out.Hops) != 5 {
		t.Fatalf("hops = %d", len(out.Hops))
	}
	for i, h := range out.Hops {
		if h != s.Hops[i] {
			t.Fatalf("hop %d mismatch: %+v vs %+v", i, h, s.Hops[i])
		}
	}
}

func TestINTStackCapsHops(t *testing.T) {
	var s INTStack
	for i := 0; i < MaxINTHops+5; i++ {
		s.Push(INTHop{HopID: uint16(i)})
	}
	if len(s.Hops) != MaxINTHops {
		t.Fatalf("hops = %d, want cap %d", len(s.Hops), MaxINTHops)
	}
}

func TestINTStackRejectsBogusCount(t *testing.T) {
	b := []byte{200}
	var s INTStack
	if _, err := s.Decode(b); err == nil {
		t.Fatal("bogus hop count accepted")
	}
}

func TestSolarPacketFitsJumboFrame(t *testing.T) {
	if SolarDataPacketSize > JumboFrame {
		t.Fatalf("solar packet %d exceeds jumbo frame %d", SolarDataPacketSize, JumboFrame)
	}
	// And with a maximal INT stack it must still fit.
	full := SolarDataPacketSize + 1 + MaxINTHops*INTHopSize
	if full > JumboFrame {
		t.Fatalf("solar packet with INT %d exceeds jumbo frame", full)
	}
}

func TestInternetChecksum(t *testing.T) {
	// RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 → sum 0xddf2, checksum 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := InternetChecksum(b); got != 0x220d {
		t.Fatalf("checksum = %04x", got)
	}
	// Odd length handled.
	if got := InternetChecksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Fatalf("odd checksum = %04x", got)
	}
}

func BenchmarkEBSEncodeDecode(b *testing.B) {
	h := EBS{Version: EBSVersion, Op: OpWrite, VDisk: 7, SegmentID: 9, LBA: 4096, BlockLen: 4096, BlockCRC: 0xabcd, Gen: 3}
	var buf [EBSSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Encode(buf[:])
		var out EBS
		if err := out.Decode(buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCNPRoundTrip(t *testing.T) {
	f := func(qpn uint16, psn uint32, ts uint64) bool {
		in := CNP{QPN: qpn, PSN: psn, TSNanos: ts}
		var b [CNPSize]byte
		in.Encode(b[:])
		var out CNP
		if err := out.Decode(b[:]); err != nil {
			return false
		}
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	var short CNP
	if err := short.Decode(make([]byte, CNPSize-1)); err == nil {
		t.Fatal("short CNP buffer decoded")
	}
}
