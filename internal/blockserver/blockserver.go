// Package blockserver implements the storage cluster's block servers: the
// FN-facing services that own segments, aggregate and sequentialize block
// writes, fan each write out to three chunk-server replicas over the
// backend network, and serve reads from the primary replica (Fig. 2, steps
// 2–4). Residence time and the media portion are measured here and returned
// in-band for the Fig. 6 latency attribution.
package blockserver

import (
	"fmt"
	"time"

	"lunasolar/internal/crc"
	"lunasolar/internal/sim"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// Replicas is the replication factor ("multiple (e.g., 3) copies").
const Replicas = 3

// Params is the block-server cost model.
type Params struct {
	PerRPCCPU   time.Duration // request parse, commit bookkeeping
	PerBlockCPU time.Duration // per-block log append / index update
}

// DefaultParams returns the standard cost model.
func DefaultParams() Params {
	return Params{
		PerRPCCPU:   2 * time.Microsecond,
		PerBlockCPU: 400 * time.Nanosecond,
	}
}

// Server is one block server.
type Server struct {
	eng      *sim.Engine
	name     string
	cores    *sim.Server
	bn       transport.Client
	replicas []uint32 // chunk-server addresses, len >= Replicas
	params   Params

	// released maps segments this server has handed to another owner
	// (live migration cutover) to the new owner's address. Requests for a
	// released segment are rejected with transport.ErrNotOwner so the
	// storage agent re-resolves and retries. Segments absent from the map
	// are served normally — block servers are permissive by default, so
	// clusters that never migrate behave exactly as before.
	released map[uint64]uint32

	// replicaOverride pins a segment's chunk replica set, replacing the
	// deterministic segmentID-derived set — installed by the control
	// plane when a chunk-server drain rebuilds a replica elsewhere.
	replicaOverride map[uint64][]uint32

	writes, reads     uint64
	rejects           uint64 // not-owner rejections after a cutover
	crcFoldMismatches uint64
}

// New creates a block server serving requests from fn, replicating over bn
// to the given chunk servers. fn's handler is installed here.
func New(eng *sim.Engine, name string, fn transport.Stack, bn transport.Client, replicas []uint32, cores *sim.Server, params Params) (*Server, error) {
	if len(replicas) < Replicas {
		return nil, fmt.Errorf("blockserver %s: need >= %d chunk replicas, got %d", name, Replicas, len(replicas))
	}
	s := &Server{
		eng:      eng,
		name:     name,
		cores:    cores,
		bn:       bn,
		replicas: replicas,
		params:   params,
	}
	fn.SetHandler(s.Handle)
	return s, nil
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Stats returns served write and read RPC counts.
func (s *Server) Stats() (writes, reads uint64) { return s.writes, s.reads }

// CRCFoldMismatches returns how many replica commits reported a CRC fold
// that disagreed with the request's one-touch metadata.
func (s *Server) CRCFoldMismatches() uint64 { return s.crcFoldMismatches }

// Rejects returns how many requests were turned away with ErrNotOwner
// after a segment cutover (each one is a client retry).
func (s *Server) Rejects() uint64 { return s.rejects }

// replicaSet returns the chunk servers for a segment (deterministic by
// segment ID so all writers agree), unless the control plane pinned an
// override during a drain.
func (s *Server) replicaSet(segmentID uint64) []uint32 {
	if set, ok := s.replicaOverride[segmentID]; ok {
		return set
	}
	base := int(segmentID) % len(s.replicas)
	out := make([]uint32, Replicas)
	for i := 0; i < Replicas; i++ {
		out[i] = s.replicas[(base+i)%len(s.replicas)]
	}
	return out
}

// ReplicaSet exposes the current chunk replica set of a segment to the
// control plane (drain planning).
func (s *Server) ReplicaSet(segmentID uint64) []uint32 {
	return append([]uint32(nil), s.replicaSet(segmentID)...)
}

// SetReplicaSet pins a segment's chunk replica set. The control plane
// calls it at a drain cutover, after the replacement replica has been
// rebuilt; set[0] must be a survivor holding the full segment, since
// reads are served from the primary.
func (s *Server) SetReplicaSet(segmentID uint64, set []uint32) error {
	if len(set) < Replicas {
		return fmt.Errorf("blockserver %s: replica set for segment %d needs >= %d members, got %d",
			s.name, segmentID, Replicas, len(set))
	}
	if s.replicaOverride == nil {
		s.replicaOverride = map[uint64][]uint32{}
	}
	s.replicaOverride[segmentID] = append([]uint32(nil), set...)
	return nil
}

// ReleaseSegment marks a segment as handed to newOwner: every later
// request for it is rejected with transport.ErrNotOwner so in-flight
// clients re-resolve the (generation-bumped) segment table and retry.
func (s *Server) ReleaseSegment(segmentID uint64, newOwner uint32) {
	if s.released == nil {
		s.released = map[uint64]uint32{}
	}
	s.released[segmentID] = newOwner
	delete(s.replicaOverride, segmentID)
}

// AdoptSegment installs a migrated-in segment: clears any stale release
// record (a segment may migrate back) and pins the replica set it arrives
// with, when overridden at the source.
func (s *Server) AdoptSegment(segmentID uint64, set []uint32) error {
	delete(s.released, segmentID)
	if set != nil {
		return s.SetReplicaSet(segmentID, set)
	}
	return nil
}

// Handle is the FN request handler (exported for tests and for wiring
// through additional dispatch layers).
func (s *Server) Handle(src uint32, req *transport.Message, reply func(*transport.Response)) {
	t0 := s.eng.Now()
	blocks := (len(req.Data) + wire.BlockSize - 1) / wire.BlockSize
	if req.Op == wire.RPCReadReq {
		blocks = (req.ReadLen + wire.BlockSize - 1) / wire.BlockSize
	}
	cost := s.params.PerRPCCPU + time.Duration(blocks)*s.params.PerBlockCPU
	s.cores.Submit(cost, func() {
		if newOwner, gone := s.released[req.SegmentID]; gone {
			s.rejects++
			reply(&transport.Response{Err: fmt.Errorf(
				"blockserver %s: segment %d released to %d: %w",
				s.name, req.SegmentID, newOwner, transport.ErrNotOwner)})
			return
		}
		switch req.Op {
		case wire.RPCWriteReq:
			s.writes++
			s.replicateWrite(t0, req, reply)
		case wire.RPCReadReq:
			s.reads++
			s.serveRead(t0, req, reply)
		default:
			reply(&transport.Response{Err: fmt.Errorf("blockserver %s: bad op %d", s.name, req.Op)})
		}
	})
}

// replicateWrite fans the blocks out to all replicas over the BN; the write
// acknowledges when every replica has committed (step 3→4 in Fig. 2).
//
// When the request carries one-touch CRC metadata the commit is
// cross-checked without touching a single payload byte: the per-block list
// is folded once with the memoized 4 KiB GF(2) combine operator, and each
// replica's reported commit fold must match it — catching any metadata
// corruption or desynchronization along the BN path.
func (s *Server) replicateWrite(t0 sim.Time, req *transport.Message, reply func(*transport.Response)) {
	set := s.replicaSet(req.SegmentID)
	remaining := len(set)
	var wantFold uint32
	checkFold := len(req.BlockCRCs) > 0
	if checkFold {
		wantFold = crc.CombineBlocks(req.BlockCRCs, wire.BlockSize)
	}
	var maxSSD time.Duration
	var firstErr error
	for _, chunk := range set {
		msg := *req // each replica gets the same payload
		s.bn.Call(chunk, &msg, func(resp *transport.Response) {
			if checkFold && resp.Err == nil && len(resp.BlockCRCs) == 1 && resp.BlockCRCs[0] != wantFold {
				s.crcFoldMismatches++
				if firstErr == nil {
					firstErr = fmt.Errorf("blockserver %s: replica %d commit CRC fold mismatch: got %08x want %08x",
						s.name, chunk, resp.BlockCRCs[0], wantFold)
				}
			}
			if resp.Err != nil && firstErr == nil {
				firstErr = resp.Err
			}
			if resp.SSDTime > maxSSD {
				maxSSD = resp.SSDTime
			}
			remaining--
			if remaining > 0 {
				return
			}
			reply(&transport.Response{
				Err:        firstErr,
				ServerWall: s.eng.Now().Sub(t0),
				SSDTime:    maxSSD,
			})
		})
	}
}

// serveRead fetches the range from the primary replica.
func (s *Server) serveRead(t0 sim.Time, req *transport.Message, reply func(*transport.Response)) {
	primary := s.replicaSet(req.SegmentID)[0]
	msg := *req
	s.bn.Call(primary, &msg, func(resp *transport.Response) {
		reply(&transport.Response{
			Data:       resp.Data,
			BlockCRCs:  resp.BlockCRCs, // stored CRCs ride through to the FN
			Err:        resp.Err,
			ServerWall: s.eng.Now().Sub(t0),
			SSDTime:    resp.SSDTime,
		})
	})
}
