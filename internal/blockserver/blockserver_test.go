package blockserver

import (
	"bytes"
	"testing"
	"time"

	"lunasolar/internal/chunkserver"
	"lunasolar/internal/rdma"
	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// rig wires one block server to three chunk servers over a real RDMA BN on
// a real fabric, plus a raw FN client.
type rig struct {
	eng    *sim.Engine
	fab    *simnet.Fabric
	bs     *Server
	bsAddr uint32
	chunks []*chunkserver.Server
	client transport.Stack
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine(5)
	cfg := simnet.DefaultConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 4
	cfg.SpinesPerPod = 2
	cfg.CoresPerDC = 2
	fab := simnet.New(eng, cfg)

	r := &rig{eng: eng, fab: fab}

	var chunkAddrs []uint32
	for i := 0; i < 3; i++ {
		host := fab.Host(0, 1, 1, i)
		cores := sim.NewServer(eng, "chunk-cpu", 8)
		cs := chunkserver.New(eng, "chunk", chunkserver.DefaultSSD())
		bn := rdma.New(eng, host, cores, nil, rdma.DefaultParams())
		chunkserver.NewService(eng, cs, bn)
		r.chunks = append(r.chunks, cs)
		chunkAddrs = append(chunkAddrs, host.Addr())
	}

	bsHost := fab.Host(0, 1, 0, 0)
	bsCores := sim.NewServer(eng, "bs-cpu", 8)
	mux := simnet.NewMux(bsHost)
	fn := rdma.New(eng, bsHost, bsCores, nil, rdma.DefaultParams())
	bn := rdma.New(eng, bsHost, bsCores, nil, rdma.DefaultParams())
	// FN and BN share the RDMA protocol here; a single stack handles both
	// roles (the mux keeps this test honest about packet delivery).
	mux.Handle(rdma.Proto, fn.ReceivePacket)
	_ = bn
	bs, err := New(eng, "bs0", fn, fn, chunkAddrs, bsCores, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r.bs = bs
	r.bsAddr = bsHost.Addr()

	r.client = rdma.New(eng, fab.Host(0, 0, 0, 0), sim.NewServer(eng, "client-cpu", 4), nil, rdma.DefaultParams())
	return r
}

func TestWriteReplicatesToAllChunks(t *testing.T) {
	r := newRig(t)
	data := bytes.Repeat([]byte{7}, 8192)
	var resp *transport.Response
	r.client.Call(r.bsAddr, &transport.Message{
		Op: wire.RPCWriteReq, SegmentID: 3, LBA: 0x2000, Gen: 1, Data: data,
	}, func(rp *transport.Response) { resp = rp })
	r.eng.Run()
	if resp == nil || resp.Err != nil {
		t.Fatalf("write failed: %+v", resp)
	}
	for i, cs := range r.chunks {
		w, _, _, _ := cs.Stats()
		if w != 2 { // two blocks
			t.Fatalf("chunk %d wrote %d blocks, want 2", i, w)
		}
	}
	if resp.ServerWall <= 0 || resp.SSDTime <= 0 {
		t.Fatalf("trace annotations missing: %v/%v", resp.ServerWall, resp.SSDTime)
	}
	if resp.SSDTime >= resp.ServerWall {
		t.Fatal("SSD time should be a fraction of server wall (BN on top)")
	}
}

func TestReadBack(t *testing.T) {
	r := newRig(t)
	data := bytes.Repeat([]byte{9}, 16384)
	r.client.Call(r.bsAddr, &transport.Message{
		Op: wire.RPCWriteReq, SegmentID: 4, LBA: 0, Gen: 1, Data: data,
	}, func(*transport.Response) {})
	r.eng.Run()
	var got []byte
	r.client.Call(r.bsAddr, &transport.Message{
		Op: wire.RPCReadReq, SegmentID: 4, LBA: 0, ReadLen: len(data),
	}, func(rp *transport.Response) { got = rp.Data })
	r.eng.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch through BN replication")
	}
	writes, reads := r.bs.Stats()
	if writes != 1 || reads != 1 {
		t.Fatalf("stats: %d/%d", writes, reads)
	}
}

func TestReplicaSetDeterministic(t *testing.T) {
	r := newRig(t)
	a := r.bs.replicaSet(42)
	b := r.bs.replicaSet(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replica set not deterministic")
		}
	}
	if len(a) != Replicas {
		t.Fatalf("replicas = %d", len(a))
	}
	seen := map[uint32]bool{}
	for _, addr := range a {
		if seen[addr] {
			t.Fatal("duplicate replica")
		}
		seen[addr] = true
	}
}

func TestTooFewReplicasRejected(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := simnet.DefaultConfig()
	cfg.RacksPerPod = 1
	cfg.HostsPerRack = 2
	fab := simnet.New(eng, cfg)
	cores := sim.NewServer(eng, "cpu", 2)
	fn := rdma.New(eng, fab.Host(0, 0, 0, 0), cores, nil, rdma.DefaultParams())
	if _, err := New(eng, "bad", fn, fn, []uint32{1, 2}, cores, DefaultParams()); err == nil {
		t.Fatal("2 replicas accepted")
	}
}

func TestWriteLatencyDominatedByReplication(t *testing.T) {
	r := newRig(t)
	var lat time.Duration
	start := r.eng.Now()
	r.client.Call(r.bsAddr, &transport.Message{
		Op: wire.RPCWriteReq, SegmentID: 1, LBA: 0, Gen: 1, Data: make([]byte, 4096),
	}, func(rp *transport.Response) { lat = r.eng.Now().Sub(start) })
	r.eng.Run()
	// FN hop + BN to 3 replicas + SSD write cache: tens of µs.
	if lat < 20*time.Microsecond || lat > 200*time.Microsecond {
		t.Fatalf("write latency %v out of plausible range", lat)
	}
}
