package sim

import (
	"math"
	"math/bits"
	"os"
	"sync/atomic"
	"time"
)

// Hierarchical timing wheel: the engine's second scheduling class.
//
// The binary heap is exact but costs O(log n) per arm/cancel, which is the
// wrong trade for retransmit timers: they are armed on every send, re-armed
// on every ACK, and almost always cancelled before firing. The wheel gives
// those timers O(1) arm and cancel by parking them in a slot keyed by their
// due tick; a slot is only touched again when virtual time reaches it, at
// which point its events cascade down a level or move into the heap carrying
// their original (at, seq) key. Firing therefore always happens from the
// heap in exact (at, seq) order, so experiment outputs are bit-identical
// whether the wheel is on or off — the wheel changes the cost of waiting,
// never the order of firing.
//
// Geometry: 4 levels × 64 slots, 4096 ns per tick. Level 0 spans ~262 µs at
// tick resolution, level 1 ~16.8 ms, level 2 ~1.07 s, level 3 ~68.7 s —
// comfortably covering RTO backoff, probe intervals, and failover timers.
// Events past the top level clamp into the furthest slot and re-cascade.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	tickShift   = 12 // 2^12 ns = 4.096 µs per tick

	// wheelIndex is the Event.index sentinel for "parked in the wheel"
	// (heap events have index >= 0, idle events -1).
	wheelIndex = -2
)

// coarseEnabled is the package-wide default for new engines: whether
// ScheduleCoarse uses the wheel (true) or degrades to the heap (false).
// It exists for the differential regression tests and for bisecting: the
// two modes must produce bit-identical experiment output. Engines capture
// the flag at construction, so flipping it mid-run affects only engines
// created afterwards.
//
//lint:hatch no-wheel
var coarseEnabled atomic.Bool

func init() {
	coarseEnabled.Store(os.Getenv("LUNASOLAR_NO_WHEEL") == "")
}

// SetCoarseTimers selects the scheduling class backing ScheduleCoarse for
// engines created after the call: the timing wheel (true, default) or the
// plain heap (false). The LUNASOLAR_NO_WHEEL environment variable, if set,
// flips the initial default to false.
func SetCoarseTimers(on bool) { coarseEnabled.Store(on) }

// CoarseTimers reports the current package-wide default.
func CoarseTimers() bool { return coarseEnabled.Load() }

// wheel is the per-engine hierarchical timing wheel. Slots are intrusive
// doubly-linked event lists (heads only; Events carry the links), with one
// occupancy bit per slot so finding the earliest pending slot is a handful
// of rotate/TrailingZeros operations per level.
type wheel struct {
	slot  [wheelLevels][wheelSlots]*Event
	occ   [wheelLevels]uint64
	cur   int64 // current tick; all parked events are due at or after it
	count int
}

// ScheduleCoarse runs fn after delay d using the coarse scheduling class:
// O(1) arm and cancel, exact same firing order as Schedule. Use it for
// cancellable, latency-tolerant timers (retransmit, probe, refill); keep
// Schedule for exact-time simulation events. A negative delay is zero.
func (e *Engine) ScheduleCoarse(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.scheduleCoarse(e.now.Add(d), fn, nil, nil)
}

// ScheduleCoarseArg runs fn(arg) after delay d on the coarse scheduling
// class; the arg-based variant avoids closure allocations (see ScheduleArg).
func (e *Engine) ScheduleCoarseArg(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return e.scheduleCoarse(e.now.Add(d), nil, fn, arg)
}

func (e *Engine) scheduleCoarse(t Time, fn func(), afn func(any), arg any) Timer {
	if t < e.now {
		panic("sim: scheduling coarse event before now")
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.afn = afn
	ev.arg = arg
	if e.coarse && e.wheel.count == 0 {
		// Empty wheel: snap its clock forward so long-idle engines don't
		// cascade through stale slots. Only new events may snap — during a
		// cascade the clock must never move backward, or a re-placed event
		// could land back in the slot being flushed and loop forever.
		e.wheel.cur = int64(e.now) >> tickShift
	}
	if !e.wheelPlace(ev) {
		e.push(ev)
	}
	return Timer{e: ev, gen: ev.gen}
}

// wheelPlace parks ev in the wheel, or reports false if it belongs in the
// heap (wheel disabled, or due within the current tick). Used both for new
// coarse events and for cascading events out of a flushed higher-level slot.
func (e *Engine) wheelPlace(ev *Event) bool {
	if !e.coarse {
		return false
	}
	w := &e.wheel
	evTick := int64(ev.at) >> tickShift
	if evTick-w.cur < 1 {
		return false // due within the current tick: heap handles it exactly
	}
	lvl := wheelLevels - 1
	for l := 0; l < wheelLevels; l++ {
		shift := uint(wheelBits * l)
		// Slot-distance check per level (not a delta range): avoids the
		// ring ambiguity where distance exactly wheelSlots aliases to 0.
		if evTick>>shift-w.cur>>shift < wheelSlots {
			lvl = l
			break
		}
	}
	// Beyond the top level's horizon the event clamps into the furthest
	// top-level slot and re-cascades when that slot flushes.
	shift := uint(wheelBits * lvl)
	slotAbs := evTick >> shift
	if slotAbs-w.cur>>shift >= wheelSlots {
		slotAbs = w.cur>>shift + wheelMask
	}
	s := int(slotAbs & wheelMask)
	head := w.slot[lvl][s]
	ev.wnext = head
	ev.wprev = nil
	if head != nil {
		head.wprev = ev
	}
	w.slot[lvl][s] = ev
	w.occ[lvl] |= 1 << uint(s)
	ev.index = wheelIndex
	ev.wpos = int32(lvl<<wheelBits | s)
	w.count++
	return true
}

// wheelRemove unlinks a parked event (Timer.Cancel on a coarse timer).
func (e *Engine) wheelRemove(ev *Event) {
	w := &e.wheel
	lvl := int(ev.wpos) >> wheelBits
	s := int(ev.wpos) & wheelMask
	if ev.wprev != nil {
		ev.wprev.wnext = ev.wnext
	} else {
		w.slot[lvl][s] = ev.wnext
		if ev.wnext == nil {
			w.occ[lvl] &^= 1 << uint(s)
		}
	}
	if ev.wnext != nil {
		ev.wnext.wprev = ev.wprev
	}
	ev.wnext = nil
	ev.wprev = nil
	ev.index = -1
	w.count--
}

// wheelNextDue returns the earliest slot-start time among occupied slots —
// a lower bound on every parked event's due time — plus the slot to flush.
func (e *Engine) wheelNextDue() (Time, int, int64) {
	w := &e.wheel
	best := Time(math.MaxInt64)
	bestLvl, bestSlot := -1, int64(0)
	for lvl := 0; lvl < wheelLevels; lvl++ {
		occ := w.occ[lvl]
		if occ == 0 {
			continue
		}
		shift := uint(wheelBits * lvl)
		curSlotAbs := w.cur >> shift
		// Rotate so bit k means "slot (cur+k) mod 64": the first set bit is
		// the next occupied slot in ring order from the current position.
		rot := bits.RotateLeft64(occ, -int(curSlotAbs&wheelMask))
		dist := int64(bits.TrailingZeros64(rot))
		slotAbs := curSlotAbs + dist
		t := Time((slotAbs << shift) << tickShift)
		if t < best {
			best, bestLvl, bestSlot = t, lvl, slotAbs
		}
	}
	return best, bestLvl, bestSlot
}

// settle moves every parked event that could fire before (or tied with) the
// heap head into the heap, advancing the wheel clock slot by slot. Events
// keep their original (at, seq), so the heap restores exact order; level>0
// slots cascade their events down through wheelPlace.
func (e *Engine) settle() {
	w := &e.wheel
	for w.count > 0 {
		due, lvl, slotAbs := e.wheelNextDue()
		if len(e.heap) > 0 && e.heap[0].at < due {
			return // heap head fires strictly before any parked event can
		}
		shift := uint(wheelBits * lvl)
		if start := slotAbs << shift; start > w.cur {
			w.cur = start
		}
		s := int(slotAbs & wheelMask)
		head := w.slot[lvl][s]
		w.slot[lvl][s] = nil
		w.occ[lvl] &^= 1 << uint(s)
		for ev := head; ev != nil; {
			next := ev.wnext
			ev.wnext = nil
			ev.wprev = nil
			ev.index = -1
			w.count--
			if lvl == 0 || !e.wheelPlace(ev) {
				e.push(ev)
			}
			ev = next
		}
	}
}
