package sim

import (
	"math"
	"time"
)

// Server models a pool of identical FIFO servers — CPU cores, DMA engines,
// accelerator lanes. Jobs submitted to a Server queue until a unit is free,
// occupy it for their service time, then complete. Queueing delay therefore
// emerges from contention, which is how "consumed cores" and saturation
// behaviour arise in the stack models rather than being hard-coded.
type Server struct {
	eng   *Engine
	name  string
	units int

	busy     int
	queue    []serverJob
	busyNS   int64 // integral of busy units over time, for utilization
	lastUpd  Time
	resetAt  Time
	served   uint64
	maxQ     int
	freeDone []*svcDone
}

type serverJob struct {
	service time.Duration
	done    func()
	afn     func(any)
	arg     any
}

// svcDone carries one in-service job's completion callback through the
// engine's arg-based event path; nodes are pooled on the Server so
// steady-state Submit/complete cycles do not allocate.
type svcDone struct {
	s    *Server
	done func()
	afn  func(any)
	arg  any
}

// NewServer creates a pool with the given number of service units.
func NewServer(eng *Engine, name string, units int) *Server {
	if units <= 0 {
		panic("sim: server needs at least one unit")
	}
	return &Server{eng: eng, name: name, units: units, lastUpd: eng.Now()}
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Units returns the pool size.
func (s *Server) Units() int { return s.units }

// QueueLen returns the number of jobs waiting (not in service).
func (s *Server) QueueLen() int { return len(s.queue) }

// InService returns the number of busy units.
func (s *Server) InService() int { return s.busy }

// Served returns the number of completed jobs.
func (s *Server) Served() uint64 { return s.served }

// MaxQueue returns the high-water mark of the wait queue.
func (s *Server) MaxQueue() int { return s.maxQ }

func (s *Server) account() {
	now := s.eng.Now()
	s.busyNS += int64(s.busy) * int64(now-s.lastUpd)
	s.lastUpd = now
}

// Utilization returns average busy units since the last Reset (or creation):
// e.g. 2.7 means 2.7 cores were busy on average. This is the "consumed
// cores" metric of Table 1.
func (s *Server) Utilization() float64 {
	s.account()
	elapsed := int64(s.eng.Now() - s.resetAt)
	if elapsed <= 0 {
		return 0
	}
	return float64(s.busyNS) / float64(elapsed)
}

// Submit enqueues a job with the given service time; done (may be nil) runs
// at completion.
func (s *Server) Submit(service time.Duration, done func()) {
	s.submit(serverJob{service: service, done: done})
}

// SubmitArg enqueues a job whose completion calls fn(arg). Like
// Engine.ScheduleArg, this lets hot paths pass a package-level function and
// a pooled state value instead of allocating a closure per job.
func (s *Server) SubmitArg(service time.Duration, fn func(any), arg any) {
	s.submit(serverJob{service: service, afn: fn, arg: arg})
}

func (s *Server) submit(j serverJob) {
	if j.service < 0 {
		j.service = 0
	}
	if s.busy < s.units {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
	if len(s.queue) > s.maxQ {
		s.maxQ = len(s.queue)
	}
}

func (s *Server) start(j serverJob) {
	s.account()
	s.busy++
	var d *svcDone
	if n := len(s.freeDone); n > 0 {
		d = s.freeDone[n-1]
		s.freeDone[n-1] = nil
		s.freeDone = s.freeDone[:n-1]
	} else {
		d = &svcDone{s: s}
	}
	d.done, d.afn, d.arg = j.done, j.afn, j.arg
	s.eng.ScheduleArg(j.service, serverFinish, d)
}

// serverFinish completes one in-service job: it frees the unit, starts the
// next queued job, returns the completion node to the pool, and only then
// invokes the callback (which may submit again and reuse the node).
func serverFinish(x any) {
	d := x.(*svcDone)
	s := d.s
	s.account()
	s.busy--
	s.served++
	if len(s.queue) > 0 {
		next := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		s.start(next)
	}
	done, afn, arg := d.done, d.afn, d.arg
	d.done, d.afn, d.arg = nil, nil, nil
	s.freeDone = append(s.freeDone, d)
	if afn != nil {
		afn(arg)
	} else if done != nil {
		done()
	}
}

// ResetStats restarts utilization and counter accounting from the current
// virtual time.
func (s *Server) ResetStats() {
	s.account()
	s.busyNS = 0
	s.served = 0
	s.maxQ = len(s.queue)
	s.resetAt = s.eng.Now()
	s.lastUpd = s.eng.Now()
}

// Channel models a bandwidth-limited serial pipe: an Ethernet link NIC-side
// serializer, or the ALI-DPU's internal PCIe channel. Transfers serialize
// one after another at the configured rate; the completion callback fires
// when the last byte has passed.
type Channel struct {
	eng      *Engine
	name     string
	bitsPerS float64

	free     Time // when the pipe next becomes idle
	queued   int
	xferred  uint64
	busyNS   int64
	resetAt2 Time
	freeDone []*chDone
}

// chDone is the Channel counterpart of svcDone: a pooled completion node.
type chDone struct {
	c    *Channel
	done func()
	afn  func(any)
	arg  any
}

// NewChannel creates a pipe with the given rate in bits per second.
func NewChannel(eng *Engine, name string, bitsPerSecond float64) *Channel {
	if bitsPerSecond <= 0 {
		panic("sim: channel needs positive rate")
	}
	return &Channel{eng: eng, name: name, bitsPerS: bitsPerSecond}
}

// Name returns the channel's diagnostic name.
func (c *Channel) Name() string { return c.name }

// Rate returns the configured rate in bits per second.
func (c *Channel) Rate() float64 { return c.bitsPerS }

// SerializationDelay returns how long n bytes occupy the pipe.
func (c *Channel) SerializationDelay(n int) time.Duration {
	return time.Duration(float64(n*8) / c.bitsPerS * float64(time.Second))
}

// Transfer schedules n bytes through the pipe; done fires when the transfer
// completes (after any queueing behind earlier transfers).
func (c *Channel) Transfer(n int, done func()) {
	c.transfer(n, done, nil, nil)
}

// TransferArg schedules n bytes through the pipe with an arg-based
// completion; see Engine.ScheduleArg for the allocation rationale.
func (c *Channel) TransferArg(n int, fn func(any), arg any) {
	c.transfer(n, nil, fn, arg)
}

func (c *Channel) transfer(n int, done func(), afn func(any), arg any) {
	now := c.eng.Now()
	start := c.free
	if start < now {
		start = now
	}
	ser := c.SerializationDelay(n)
	end := start.Add(ser)
	c.busyNS += int64(ser)
	c.free = end
	c.xferred += uint64(n)
	c.queued++
	var d *chDone
	if ln := len(c.freeDone); ln > 0 {
		d = c.freeDone[ln-1]
		c.freeDone[ln-1] = nil
		c.freeDone = c.freeDone[:ln-1]
	} else {
		d = &chDone{c: c}
	}
	d.done, d.afn, d.arg = done, afn, arg
	c.eng.AtArg(end, channelFinish, d)
}

func channelFinish(x any) {
	d := x.(*chDone)
	c := d.c
	c.queued--
	done, afn, arg := d.done, d.afn, d.arg
	d.done, d.afn, d.arg = nil, nil, nil
	c.freeDone = append(c.freeDone, d)
	if afn != nil {
		afn(arg)
	} else if done != nil {
		done()
	}
}

// Backlog returns how far in the future the pipe is already committed.
func (c *Channel) Backlog() time.Duration {
	now := c.eng.Now()
	if c.free <= now {
		return 0
	}
	return c.free.Sub(now)
}

// Transferred returns total bytes moved since the last ResetStats.
func (c *Channel) Transferred() uint64 { return c.xferred }

// Utilization returns the fraction of time the pipe was busy since the last
// ResetStats.
func (c *Channel) Utilization() float64 {
	elapsed := int64(c.eng.Now() - c.resetAt2)
	if elapsed <= 0 {
		return 0
	}
	u := float64(c.busyNS) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// ResetStats restarts throughput accounting.
func (c *Channel) ResetStats() {
	c.xferred = 0
	c.busyNS = 0
	c.resetAt2 = c.eng.Now()
}

// Forever is the Delay sentinel for "never at the current rate": a paused
// (rate <= 0) bucket, or a refill so slow the wait would overflow a
// Duration. Waiters facing it park without a timer and are re-armed by
// SetRate.
const Forever = time.Duration(math.MaxInt64)

// TokenBucket is a virtual-time token bucket used by the QoS table to
// enforce per-virtual-disk IOPS and bandwidth service levels.
type TokenBucket struct {
	eng     *Engine
	rate    float64 // tokens per second; <= 0 means paused (no refill)
	burst   float64
	tokens  float64
	lastFil Time
	waiters []*tokenWaiter // parked Waits, in arrival order
}

// NewTokenBucket creates a bucket that refills at rate tokens/second up to
// burst, starting full. rate <= 0 creates a paused bucket (no refill until
// SetRate raises it); burst <= 0 defaults to rate, clamped at zero — a
// paused bucket with no explicit burst holds no tokens and admits nothing.
func NewTokenBucket(eng *Engine, rate, burst float64) *TokenBucket {
	if burst <= 0 {
		burst = rate
	}
	if burst < 0 {
		burst = 0
	}
	return &TokenBucket{eng: eng, rate: rate, burst: burst, tokens: burst, lastFil: eng.Now()}
}

func (b *TokenBucket) refill() {
	now := b.eng.Now()
	dt := now.Sub(b.lastFil).Seconds()
	if dt > 0 {
		if b.rate > 0 {
			b.tokens += dt * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
		b.lastFil = now
	}
}

// TryTake consumes n tokens if available, reporting success.
func (b *TokenBucket) TryTake(n float64) bool {
	b.refill()
	if b.tokens >= n {
		b.tokens -= n
		return true
	}
	return false
}

// Available returns the current token count.
func (b *TokenBucket) Available() float64 {
	b.refill()
	return b.tokens
}

// Delay returns how long until n tokens will be available (zero if they
// already are). It does not consume. A paused bucket (rate <= 0), or one
// whose refill is so slow the wait would overflow a time.Duration, returns
// Forever.
func (b *TokenBucket) Delay(n float64) time.Duration {
	b.refill()
	if b.tokens >= n {
		return 0
	}
	if b.rate <= 0 {
		return Forever
	}
	need := n - b.tokens
	sec := need / b.rate
	// Clamp before the float→Duration conversion: for tiny rates sec*1e9
	// exceeds MaxInt64 and the conversion is undefined (wraps negative on
	// most targets, which would schedule the waiter in the past).
	if sec >= float64(math.MaxInt64)/float64(time.Second) {
		return Forever
	}
	// Round up: a positive need must never truncate to a zero delay, or a
	// waiter would re-arm at the same virtual instant forever (refill sees
	// dt == 0 and adds nothing — a virtual-time livelock).
	return time.Duration(math.Ceil(sec * float64(time.Second)))
}

// tokenWaiter carries one parked Wait through the engine's arg-based event
// path so re-arms do not allocate a fresh closure.
type tokenWaiter struct {
	b     *TokenBucket
	n     float64
	fn    func()
	timer Timer // pending wake, if any; zero (inactive) while parked Forever
}

// Wait runs fn as soon as n tokens can be consumed, taking them. If the
// bucket already holds them, fn runs synchronously; otherwise the wait is
// parked on the engine's coarse scheduling class until the computed refill
// instant — pacing stays exact, only the cost of waiting moves to the
// timing wheel. Competing waiters re-check on wake and re-arm, so a token
// claimed by another consumer never admits two I/Os. A paused (rate <= 0)
// bucket parks the wait with no timer at all; SetRate re-arms it.
func (b *TokenBucket) Wait(n float64, fn func()) {
	if n > b.burst {
		panic("sim: token bucket wait exceeds burst capacity")
	}
	if b.TryTake(n) {
		fn()
		return
	}
	w := &tokenWaiter{b: b, n: n, fn: fn}
	b.waiters = append(b.waiters, w)
	b.arm(w)
}

// arm schedules w's wake at the current refill estimate; a Forever delay
// leaves it parked without a timer (SetRate is the only way forward).
func (b *TokenBucket) arm(w *tokenWaiter) {
	if d := b.Delay(w.n); d < Forever {
		w.timer = b.eng.ScheduleCoarseArg(d, tokenBucketWake, w)
	} else {
		w.timer = Timer{}
	}
}

func tokenBucketWake(x any) {
	w := x.(*tokenWaiter)
	if w.b.TryTake(w.n) {
		w.b.unpark(w)
		w.fn()
		return
	}
	w.b.arm(w)
}

// unpark removes w from the parked-waiter list, preserving arrival order.
func (b *TokenBucket) unpark(w *tokenWaiter) {
	for i, cand := range b.waiters {
		if cand == w {
			copy(b.waiters[i:], b.waiters[i+1:])
			b.waiters[len(b.waiters)-1] = nil
			b.waiters = b.waiters[:len(b.waiters)-1]
			return
		}
	}
}

// Waiting returns the number of parked Wait calls (diagnostics).
func (b *TokenBucket) Waiting() int { return len(b.waiters) }

// Rate returns the refill rate in tokens/second.
func (b *TokenBucket) Rate() float64 { return b.rate }

// SetRate changes the refill rate (management-plane updates to the QoS
// table) and re-arms every parked waiter at the instant the new rate
// implies: a waiter scheduled under the old rate would otherwise wake at a
// stale time — late after a raise, or in a busy re-check loop after a cut.
// Waiters are re-armed in arrival order, so admission order is preserved.
func (b *TokenBucket) SetRate(rate float64) {
	b.refill() // settle accrued tokens at the old rate first
	b.rate = rate
	for _, w := range b.waiters {
		w.timer.Cancel()
		b.arm(w)
	}
}
