package sim

import (
	"sync"
	"testing"
	"time"
)

// TestMailboxDrainOrder posts entries in scrambled wall order and checks
// Drain delivers them in (At, Src, Seq) order regardless.
func TestMailboxDrainOrder(t *testing.T) {
	var mb Mailbox
	posts := []Inbound{
		{At: 30, Src: 1, Seq: 2, Arg: "e"},
		{At: 10, Src: 2, Seq: 1, Arg: "b"},
		{At: 30, Src: 0, Seq: 9, Arg: "c"},
		{At: 10, Src: 1, Seq: 5, Arg: "a"},
		{At: 30, Src: 1, Seq: 1, Arg: "d"},
	}
	for _, in := range posts {
		mb.Post(in)
	}
	if got := mb.Len(); got != len(posts) {
		t.Fatalf("Len = %d, want %d", got, len(posts))
	}
	var got []string
	mb.Drain(func(in Inbound) { got = append(got, in.Arg.(string)) })
	want := []string{"a", "b", "c", "d", "e"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
	if mb.Len() != 0 {
		t.Fatalf("mailbox not empty after drain: %d", mb.Len())
	}
}

// TestMailboxConcurrentPost hammers Post from several goroutines and
// checks nothing is lost and the drain is still totally ordered.
func TestMailboxConcurrentPost(t *testing.T) {
	var mb Mailbox
	const producers, per = 8, 200
	var wg sync.WaitGroup
	for src := 0; src < producers; src++ {
		src := src
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := 1; seq <= per; seq++ {
				mb.Post(Inbound{At: Time(seq % 7), Src: src, Seq: uint64(seq)})
			}
		}()
	}
	wg.Wait()
	var prev Inbound
	n := 0
	mb.Drain(func(in Inbound) {
		if n > 0 {
			less := prev.At < in.At ||
				(prev.At == in.At && prev.Src < in.Src) ||
				(prev.At == in.At && prev.Src == in.Src && prev.Seq < in.Seq)
			if !less {
				t.Fatalf("entry %d out of order: %+v then %+v", n, prev, in)
			}
		}
		prev = in
		n++
	})
	if n != producers*per {
		t.Fatalf("drained %d entries, want %d", n, producers*per)
	}
}

// TestMailboxReusesBatch checks the drained batch's backing array is
// recycled rather than reallocated every cycle.
func TestMailboxReusesBatch(t *testing.T) {
	var mb Mailbox
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 4; i++ {
			mb.Post(Inbound{At: Time(i), Src: 0, Seq: uint64(i)})
		}
		n := 0
		mb.Drain(func(Inbound) { n++ })
		if n != 4 {
			t.Fatalf("cycle %d drained %d, want 4", cycle, n)
		}
	}
	if cap(mb.spare) < 4 {
		t.Fatalf("spare capacity %d; drain did not recycle the batch", cap(mb.spare))
	}
}

// TestRunWindow checks the bounded drive mode: only events inside the
// window fire, the clock lands exactly on the bound, and the returned
// count reports the window's firings.
func TestRunWindow(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	for i, d := range []time.Duration{10, 20, 30, 40} {
		i := i
		e.Schedule(d*time.Microsecond, func() { fired = append(fired, i) })
	}
	if n := e.RunWindow(Time(25 * time.Microsecond)); n != 2 {
		t.Fatalf("window fired %d events, want 2", n)
	}
	if e.Now() != Time(25*time.Microsecond) {
		t.Fatalf("clock at %v after window, want 25µs", e.Now())
	}
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 1 {
		t.Fatalf("fired %v, want [0 1]", fired)
	}
	if n := e.RunWindow(Time(25 * time.Microsecond)); n != 0 {
		t.Fatalf("empty window fired %d events", n)
	}
	if n := e.RunWindow(Time(50 * time.Microsecond)); n != 2 {
		t.Fatalf("second window fired %d events, want 2", n)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all four", fired)
	}
}

// TestNextEventAt checks the window-planning bound: exact for heap events,
// a safe lower bound for wheel-parked events, and clamped to now.
func TestNextEventAt(t *testing.T) {
	e := NewEngine(1)
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("empty engine reports a pending event")
	}

	// Heap events are exact.
	e.Schedule(300*time.Microsecond, func() {})
	at, ok := e.NextEventAt()
	if !ok || at != Time(300*time.Microsecond) {
		t.Fatalf("heap bound %v ok=%v, want exactly 300µs", at, ok)
	}

	// A wheel-parked event earlier than the heap head must lower the bound,
	// and the bound must never be later than the true due time.
	e.ScheduleCoarse(100*time.Microsecond, func() {})
	at, ok = e.NextEventAt()
	if !ok {
		t.Fatal("bound vanished after coarse schedule")
	}
	if at > Time(100*time.Microsecond) {
		t.Fatalf("bound %v is later than the parked event's due time 100µs", at)
	}

	// Progress: repeatedly running to the bound plus a small window must
	// reach and fire the parked event (the settle loop tightens the bound).
	fired := false
	e.ScheduleCoarse(50*time.Microsecond, func() { fired = true })
	for i := 0; i < 100 && !fired; i++ {
		next, ok := e.NextEventAt()
		if !ok {
			t.Fatal("lost the pending events")
		}
		e.RunWindow(next.Add(time.Microsecond))
	}
	if !fired {
		t.Fatal("bounded windows never reached the wheel-parked event")
	}

	// The bound clamps to now: a stale wheel slot start must not plan a
	// window in the past.
	if at, ok := e.NextEventAt(); ok && at < e.Now() {
		t.Fatalf("bound %v is before now %v", at, e.Now())
	}
}
