package sim

import (
	"fmt"
	"testing"
	"time"
)

// withCoarse runs fn with the package-wide coarse-timer default forced to
// on, restoring the previous setting afterwards. Engines capture the flag
// at construction, so fn must create its own engines.
func withCoarse(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := CoarseTimers()
	SetCoarseTimers(on)
	defer SetCoarseTimers(prev)
	fn()
}

// TestCoarseFiringOrderMatchesHeap is the wheel's core determinism
// property: an identical schedule of coarse timers fires in an identical
// order whether they wait in the wheel or in the heap, because cascading
// preserves the original (time, seq) key. Delays are drawn to cover every
// wheel level, the beyond-horizon clamp, and same-tick ties.
func TestCoarseFiringOrderMatchesHeap(t *testing.T) {
	run := func(coarse bool) []string {
		var got []string
		withCoarse(t, coarse, func() {
			eng := NewEngine(42)
			if eng.coarse != coarse {
				t.Fatalf("engine did not capture coarse=%v", coarse)
			}
			rnd := NewRand(99)
			var timers []Timer
			// Delay spectrum: sub-tick, level 0..3, and past the 68.7 s
			// horizon so the top-level clamp re-cascades.
			spans := []time.Duration{
				500 * time.Nanosecond, 50 * time.Microsecond,
				3 * time.Millisecond, 400 * time.Millisecond,
				20 * time.Second, 90 * time.Second,
			}
			for i := 0; i < 400; i++ {
				i := i
				d := time.Duration(rnd.Int63n(int64(spans[i%len(spans)])))
				if i%3 == 0 {
					timers = append(timers, eng.ScheduleCoarse(d, func() {
						got = append(got, fmt.Sprintf("c%d@%d", i, eng.Now()))
						if i%9 == 0 {
							// Nested re-arm from a callback, like an RTO
							// re-arming after firing.
							eng.ScheduleCoarse(d/2, func() {
								got = append(got, fmt.Sprintf("n%d@%d", i, eng.Now()))
							})
						}
					}))
				} else {
					timers = append(timers, eng.Schedule(d, func() {
						got = append(got, fmt.Sprintf("h%d@%d", i, eng.Now()))
					}))
				}
			}
			// Cancel a deterministic third of everything scheduled.
			for i, tm := range timers {
				if i%3 == 1 {
					tm.Cancel()
				}
			}
			// Drive in stages so RunUntil's settle path is exercised too.
			eng.RunFor(10 * time.Millisecond)
			eng.RunFor(30 * time.Second)
			eng.Run()
			if p := eng.Pending(); p != 0 {
				t.Fatalf("coarse=%v: %d events still pending after drain", coarse, p)
			}
		})
		return got
	}
	wheel, heap := run(true), run(false)
	if len(wheel) != len(heap) {
		t.Fatalf("wheel fired %d callbacks, heap-only fired %d", len(wheel), len(heap))
	}
	for i := range wheel {
		if wheel[i] != heap[i] {
			t.Fatalf("firing order diverged at %d: wheel %q vs heap %q", i, wheel[i], heap[i])
		}
	}
}

// TestCoarseCancelAfterFire verifies the generation check: a Timer held
// across its event's firing and recycling must not cancel the event's next
// incarnation, including when that incarnation is parked in the wheel.
func TestCoarseCancelAfterFire(t *testing.T) {
	withCoarse(t, true, func() {
		eng := NewEngine(1)
		fired := false
		stale := eng.ScheduleCoarse(time.Microsecond, func() {})
		eng.Run()
		// The event is recycled; the next coarse schedule reuses it.
		fresh := eng.ScheduleCoarse(time.Millisecond, func() { fired = true })
		if stale.Active() {
			t.Fatal("stale timer reports active")
		}
		stale.Cancel() // must be a no-op on the recycled event
		if !fresh.Active() {
			t.Fatal("stale Cancel killed the recycled event")
		}
		eng.Run()
		if !fired {
			t.Fatal("recycled event did not fire")
		}
	})
}

// TestCoarseZeroAndNegativeDelays: zero and negative delays clamp to "now"
// and fire in scheduling order, interleaved exactly with heap events.
func TestCoarseZeroAndNegativeDelays(t *testing.T) {
	withCoarse(t, true, func() {
		eng := NewEngine(1)
		var got []int
		eng.ScheduleCoarse(0, func() { got = append(got, 0) })
		eng.Schedule(0, func() { got = append(got, 1) })
		eng.ScheduleCoarse(-time.Second, func() { got = append(got, 2) })
		eng.ScheduleCoarseArg(-1, func(a any) { got = append(got, a.(int)) }, 3)
		eng.Run()
		if eng.Now() != 0 {
			t.Fatalf("clock moved to %v on zero-delay events", eng.Now())
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("fired out of order: %v", got)
			}
		}
	})
}

// TestWheelCascadeAtTickBoundaries pins down behaviour at the exact slot
// and level edges: events 1 ns either side of tick multiples, at level
// boundaries, and a heap event timed exactly between them.
func TestWheelCascadeAtTickBoundaries(t *testing.T) {
	withCoarse(t, true, func() {
		const tick = 1 << tickShift
		eng := NewEngine(1)
		type fire struct {
			label string
			at    Time
		}
		var got []fire
		add := func(class string, d time.Duration) {
			label := fmt.Sprintf("%s%v", class, d)
			fn := func() { got = append(got, fire{label, eng.Now()}) }
			if class == "c" {
				eng.ScheduleCoarse(d, fn)
			} else {
				eng.Schedule(d, fn)
			}
		}
		edges := []int64{
			tick - 1, tick, tick + 1, // level-0 entry edge
			wheelSlots*tick - 1, wheelSlots * tick, wheelSlots*tick + 1, // level-1 edge
			wheelSlots*wheelSlots*tick - 1, wheelSlots * wheelSlots * tick, // level-2 edge
		}
		for _, e := range edges {
			add("c", time.Duration(e))
			add("h", time.Duration(e)) // same-instant heap twin
		}
		eng.Run()
		if len(got) != 2*len(edges) {
			t.Fatalf("fired %d of %d events", len(got), 2*len(edges))
		}
		for i := 0; i+1 < len(got); i++ {
			if got[i].at > got[i+1].at {
				t.Fatalf("fired out of time order: %v then %v", got[i], got[i+1])
			}
		}
		// Each coarse/heap twin pair fires at the same instant with the
		// coarse one first (it was scheduled first: lower seq).
		for i := 0; i < len(got); i += 2 {
			c, h := got[i], got[i+1]
			if c.label[0] != 'c' || h.label[0] != 'h' || c.label[1:] != h.label[1:] || c.at != h.at {
				t.Fatalf("twin pair broken at %d: %v / %v", i, c, h)
			}
		}
	})
}

// TestCoarsePendingAccounting: Pending must count parked events, and
// cancelling must return them to the pool without a trip through the heap.
func TestCoarsePendingAccounting(t *testing.T) {
	withCoarse(t, true, func() {
		eng := NewEngine(1)
		var tms []Timer
		for i := 0; i < 10; i++ {
			tms = append(tms, eng.ScheduleCoarse(time.Duration(i+1)*time.Millisecond, func() {}))
		}
		if got := eng.Pending(); got != 10 {
			t.Fatalf("Pending = %d, want 10", got)
		}
		for _, tm := range tms {
			if !tm.Active() {
				t.Fatal("parked timer reports inactive")
			}
		}
		for _, tm := range tms[:5] {
			tm.Cancel()
		}
		if got := eng.Pending(); got != 5 {
			t.Fatalf("Pending after cancel = %d, want 5", got)
		}
		eng.Run()
		if got := eng.Pending(); got != 0 {
			t.Fatalf("Pending after drain = %d, want 0", got)
		}
	})
}

// TestCoarseArmDisarmAllocs is the pooling gate for the retransmit pattern:
// steady-state arm/cancel/re-arm churn on the wheel must not allocate.
func TestCoarseArmDisarmAllocs(t *testing.T) {
	withCoarse(t, true, func() {
		eng := NewEngine(1)
		// Warm the event pool past the churn's working set.
		var warm []Timer
		for i := 0; i < 64; i++ {
			warm = append(warm, eng.ScheduleCoarse(time.Millisecond, func() {}))
		}
		for _, tm := range warm {
			tm.Cancel()
		}
		tick := func(any) {}
		avg := testing.AllocsPerRun(200, func() {
			var tms [32]Timer
			for i := range tms {
				tms[i] = eng.ScheduleCoarseArg(time.Duration(i+1)*100*time.Microsecond, tick, nil)
			}
			for i := range tms {
				tms[i].Cancel() // armed and disarmed before firing, like an RTO on a healthy path
			}
			eng.RunFor(50 * time.Microsecond)
		})
		if avg != 0 {
			t.Fatalf("coarse arm/disarm churn allocates %.2f per cycle, want 0", avg)
		}
	})
}

// TestTokenBucketWait: the bucket's coarse-class wait must admit at the
// exact refill instants (pacing unchanged by the wheel) and stay fair under
// competing waiters.
func TestTokenBucketWait(t *testing.T) {
	for _, wheel := range []bool{true, false} {
		withCoarse(t, wheel, func() {
			eng := NewEngine(1)
			b := NewTokenBucket(eng, 1000, 1) // 1 token/ms, burst 1
			var admitted []Time
			for i := 0; i < 5; i++ {
				b.Wait(1, func() { admitted = append(admitted, eng.Now()) })
			}
			eng.Run()
			if len(admitted) != 5 {
				t.Fatalf("wheel=%v: admitted %d of 5 waiters", wheel, len(admitted))
			}
			// Burst admits the first synchronously; the rest pace at 1 ms.
			for i, at := range admitted {
				want := Time(int64(i) * int64(time.Millisecond))
				if at != want {
					t.Fatalf("wheel=%v: waiter %d admitted at %v, want %v", wheel, i, at, want)
				}
			}
		})
	}
}

// BenchmarkTimerChurn measures the retransmit-timer pattern both ways:
// arm, advance a little, cancel, re-arm — the dominant timer workload in
// every stack. The wheel sub-benchmark parks timers in the hierarchical
// wheel; the heap sub-benchmark forces the heap-only fallback. arms/sec is
// the comparable figure.
func BenchmarkTimerChurn(b *testing.B) {
	churn := func(b *testing.B, coarse bool) {
		prev := CoarseTimers()
		SetCoarseTimers(coarse)
		defer SetCoarseTimers(prev)
		eng := NewEngine(1)
		const conns = 256
		var tms [conns]Timer
		nop := func(any) {}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := i % conns
			tms[k].Cancel()
			tms[k] = eng.ScheduleCoarseArg(800*time.Microsecond, nop, nil)
			if k == 0 {
				eng.RunFor(20 * time.Microsecond)
			}
		}
		b.StopTimer()
		for k := range tms {
			tms[k].Cancel()
		}
		eng.Run()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "arms/sec")
	}
	b.Run("wheel", func(b *testing.B) { churn(b, true) })
	b.Run("heap", func(b *testing.B) { churn(b, false) })
}
