// Package sim provides the discrete-event simulation kernel used by every
// other subsystem in this repository: a virtual clock, a cancellable event
// heap, a hierarchical timing wheel for high-churn timers, FIFO service
// resources (used to model CPU cores and PCIe channels), token buckets
// (used by QoS admission), and seeded random distributions.
//
// # Scheduling classes
//
// The engine exposes two scheduling classes with identical firing
// semantics and different cost profiles. Schedule/At push into a binary
// heap and are exact. ScheduleCoarse parks the event in a hierarchical
// timing wheel — O(1) arm and cancel — and cascades it into the heap
// before it can fire, carrying its original (time, seq) key, so firing
// order is identical between the two classes. Use ScheduleCoarse for
// cancellable, latency-tolerant timers (retransmit, probe, refill) that
// are usually cancelled before firing; see wheel.go.
//
// All simulated latencies in the repository are measured in virtual time
// produced by this package, so results are exactly reproducible for a fixed
// seed regardless of host machine speed.
//
// # Ownership
//
// An Engine is share-nothing: it is owned by exactly one goroutine at a
// time, the one driving Step/Run/RunUntil/RunWindow. Sharing one engine
// between goroutines is a bug, and the engine detects concurrent drivers
// with a cheap atomic check and panics. Two execution regimes build on
// this rule (see sim/runtime):
//
//   - Independent shards: each engine owns a whole model and runs to
//     completion with no communication (the Runner/Fleet path).
//   - Coupled partitions: several engines share one model, advance in
//     bounded windows (RunWindow), and exchange events only between
//     windows through per-engine Mailboxes drained by a single barrier
//     coordinator (the Coupled path). Within a window the share-nothing
//     rule still holds; ownership of an engine transfers between worker
//     goroutines only across barriers.
//
// # Allocation discipline
//
// Events are pooled per engine: firing or cancelling an event returns it
// (with its callback references cleared) to an engine-owned free list, so
// steady-state scheduling is allocation-free. The arg-based variants
// (ScheduleArg, AtArg) let hot paths avoid closure allocations entirely by
// passing a package-level function plus a pooled state value.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Durations are expressed with time.Duration, which uses the
// same nanosecond unit.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and s (t - s).
func (t Time) Sub(s Time) time.Duration { return time.Duration(t - s) }

// Duration converts t to the duration elapsed since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback, owned by its engine's pool. Model code
// never holds a *Event directly; it holds a Timer, whose generation check
// makes a handle to a fired-and-recycled event a harmless no-op.
type Event struct {
	eng   *Engine
	at    Time
	seq   uint64
	gen   uint64
	fn    func()
	afn   func(any)
	arg   any
	index int32 // heap index; -1 when not queued, wheelIndex when parked in the wheel
	wpos  int32 // wheel position (level<<wheelBits | slot), valid when index == wheelIndex

	wnext *Event // intrusive wheel slot list links
	wprev *Event
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// valid and inactive. Timers are value types: copy them freely, but only
// the engine's owning goroutine may use them.
type Timer struct {
	e   *Event
	gen uint64
}

// Active reports whether the event is still pending (not fired, not
// cancelled).
func (t Timer) Active() bool {
	return t.e != nil && t.e.gen == t.gen && t.e.index != -1
}

// At returns the virtual time the event is scheduled for, or 0 if the
// event already fired or was cancelled.
func (t Timer) At() Time {
	if !t.Active() {
		return 0
	}
	return t.e.at
}

// Cancel removes the event from the queue and releases it (and its callback
// references) back to the engine pool. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t Timer) Cancel() {
	ev := t.e
	if ev == nil || ev.gen != t.gen || ev.index == -1 {
		return
	}
	eng := ev.eng
	if ev.index == wheelIndex {
		eng.wheelRemove(ev)
	} else {
		eng.remove(ev)
	}
	eng.release(ev)
}

// Engine is a single-threaded discrete-event scheduler. All model code runs
// inside event callbacks on the owning goroutine; see the package comment
// for the ownership rules.
//
//lint:partowned
type Engine struct {
	now    Time
	seq    uint64
	heap   []*Event
	free   []*Event
	wheel  wheel
	coarse bool // ScheduleCoarse uses the wheel (captured from SetCoarseTimers at construction)
	Rand   *Rand

	processed uint64
	busy      atomic.Int32

	// ff is the fast-forward hook (SetFastForward): a chance for an
	// analytic model — the fluid flow table — to advance state and inject
	// events before the clock jumps to the next queued event.
	ff func(now, until Time)
}

// timeMax is the open-ended fast-forward horizon: "no further event bounds
// you" — used when the heap drains but the hook may still hold state (fluid
// flows) whose completions must be materialized as events.
const timeMax = Time(math.MaxInt64)

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{Rand: NewRand(seed), coarse: coarseEnabled.Load()}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still queued, in the heap or parked
// in the timing wheel.
func (e *Engine) Pending() int { return len(e.heap) + e.wheel.count }

// enter marks the engine as being driven; a second concurrent driver is a
// share-nothing violation and panics immediately.
func (e *Engine) enter() {
	if !e.busy.CompareAndSwap(0, 1) {
		panic("sim: Engine driven from multiple goroutines; each Engine is owned by exactly one")
	}
}

func (e *Engine) leave() { e.busy.Store(0) }

// eventBlock is how many Events are allocated at once when the free list is
// empty; batching keeps pool refills rare and the events cache-adjacent.
const eventBlock = 128

func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	block := make([]Event, eventBlock)
	for i := range block {
		block[i].eng = e
		block[i].index = -1
	}
	for i := eventBlock - 1; i > 0; i-- {
		e.free = append(e.free, &block[i])
	}
	return &block[0]
}

// release returns a fired or cancelled event to the pool, dropping its
// callback references so they cannot pin packet buffers, and bumping the
// generation so outstanding Timers become no-ops.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Schedule runs fn after delay d. A negative delay is treated as zero.
func (e *Engine) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now.Add(d), fn, nil, nil)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an error
// in the model; it panics to surface the bug immediately.
func (e *Engine) At(t Time, fn func()) Timer {
	return e.schedule(t, fn, nil, nil)
}

// ScheduleArg runs fn(arg) after delay d. Unlike Schedule it takes a plain
// function plus an explicit argument, so hot paths can pass a package-level
// function and a pooled state value instead of allocating a closure.
func (e *Engine) ScheduleArg(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now.Add(d), nil, fn, arg)
}

// AtArg runs fn(arg) at absolute virtual time t; see ScheduleArg.
func (e *Engine) AtArg(t Time, fn func(any), arg any) Timer {
	return e.schedule(t, nil, fn, arg)
}

func (e *Engine) schedule(t Time, fn func(), afn func(any), arg any) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.afn = afn
	ev.arg = arg
	e.push(ev)
	return Timer{e: ev, gen: ev.gen}
}

// Step executes the next event, advancing the clock. It returns false when
// no events remain.
func (e *Engine) Step() bool {
	e.enter()
	defer e.leave()
	return e.step()
}

// SetFastForward installs (or, with nil, removes) the fast-forward hook.
// Before the engine commits to the next queued event it calls
// fn(now, until) where until is that event's firing time (or timeMax when
// the queue is empty); the hook may advance analytic state and schedule
// new events at any t in [now, until]. The hook must be idempotent for an
// unchanged (now, until) pair: the engine may call it again without an
// intervening event when the bound it reported against still holds.
func (e *Engine) SetFastForward(fn func(now, until Time)) { e.ff = fn }

func (e *Engine) step() bool {
	if e.wheel.count > 0 {
		e.settle()
	}
	if e.ff != nil {
		if len(e.heap) == 0 {
			// Open horizon: let the hook materialize whatever completions
			// it still holds, then settle any wheel timers it armed.
			e.ff(e.now, timeMax)
			if e.wheel.count > 0 {
				e.settle()
			}
		} else {
			e.ff(e.now, e.heap[0].at)
		}
	}
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.processed++
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	e.release(ev)
	if afn != nil {
		afn(arg)
	} else if fn != nil {
		fn()
	}
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	e.enter()
	defer e.leave()
	for e.step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t Time) {
	e.enter()
	defer e.leave()
	for {
		if e.wheel.count > 0 {
			e.settle()
		}
		if len(e.heap) == 0 || e.heap[0].at > t {
			// Bounded horizon: give the hook one chance to schedule events
			// inside (now, t] before we conclude the window is quiescent.
			if e.ff != nil {
				e.ff(e.now, t)
				if e.wheel.count > 0 {
					e.settle()
				}
				if len(e.heap) > 0 && e.heap[0].at <= t {
					e.step()
					continue
				}
			}
			break
		}
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for duration d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// RunWindow is the bounded-horizon drive mode used by coupled partitions:
// it executes events with timestamps <= until, advances the clock to
// until, and returns how many events fired in the window. Identical to
// RunUntil except for the count, which lets a barrier coordinator detect
// quiescent windows.
func (e *Engine) RunWindow(until Time) int {
	before := e.processed
	e.RunUntil(until)
	return int(e.processed - before)
}

// NextEventAt returns a lower bound on the next pending event's firing
// time, or ok == false when nothing is queued. For heap events the bound
// is exact; for events parked in the timing wheel it is the occupied
// slot's start time, which is never later than any event in the slot.
// The bound is safe for window planning: running RunUntil past the bound
// settles due wheel slots into the heap, so repeated NextEventAt /
// RunWindow cycles converge on the true time and always make progress.
func (e *Engine) NextEventAt() (Time, bool) {
	var t Time
	ok := false
	if len(e.heap) > 0 {
		t, ok = e.heap[0].at, true
	}
	if e.wheel.count > 0 {
		if due, _, _ := e.wheelNextDue(); !ok || due < t {
			t, ok = due, true
		}
	}
	if ok && t < e.now {
		t = e.now
	}
	return t, ok
}

// Intrusive binary min-heap ordered by (at, seq). Events carry their own
// heap index so Cancel can remove them eagerly in O(log n) without the
// container/heap interface indirection.

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	ev.index = int32(len(e.heap))
	e.heap = append(e.heap, ev)
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) pop() *Event {
	root := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if n > 0 {
		e.heap[0] = last
		last.index = 0
		e.siftDown(0)
	}
	root.index = -1
	return root
}

func (e *Engine) remove(ev *Event) {
	i := int(ev.index)
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if i < n {
		e.heap[i] = last
		last.index = int32(i)
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	ev.index = -1
}

func (e *Engine) swap(i, j int) {
	h := e.heap
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) bool {
	h := e.heap
	n := len(h)
	moved := false
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(h[r], h[l]) {
			m = r
		}
		if !eventLess(h[m], h[i]) {
			break
		}
		e.swap(i, m)
		i = m
		moved = true
	}
	return moved
}

// Rand wraps math/rand with the distributions the models need. Each
// stream belongs to the partition that draws from it.
//
//lint:partowned
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic random source.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream from r, so subsystems can consume
// randomness without perturbing each other's sequences.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Int63())
}

// Exp samples an exponential distribution with the given mean.
func (r *Rand) Exp(mean time.Duration) time.Duration {
	return time.Duration(r.ExpFloat64() * float64(mean))
}

// LogNormal samples a log-normal distribution parameterised by its median
// and sigma (the shape parameter of the underlying normal). Latency tails in
// the models use this shape: p50 = median, p95 ≈ median·e^(1.64σ).
func (r *Rand) LogNormal(median time.Duration, sigma float64) time.Duration {
	return time.Duration(float64(median) * math.Exp(sigma*r.NormFloat64()))
}

// Pareto samples a bounded Pareto distribution with the given minimum and
// shape alpha. Used for heavy-tailed flow sizes.
func (r *Rand) Pareto(min float64, alpha float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = 1e-12
	}
	return min / math.Pow(u, 1/alpha)
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
func (r *Rand) Jitter(d time.Duration, f float64) time.Duration {
	scale := 1 + f*(2*r.Float64()-1)
	return time.Duration(float64(d) * scale)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
