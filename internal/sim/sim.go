// Package sim provides the discrete-event simulation kernel used by every
// other subsystem in this repository: a virtual clock, a cancellable event
// heap, FIFO service resources (used to model CPU cores and PCIe channels),
// token buckets (used by QoS admission), and seeded random distributions.
//
// All simulated latencies in the repository are measured in virtual time
// produced by this package, so results are exactly reproducible for a fixed
// seed regardless of host machine speed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Durations are expressed with time.Duration, which uses the
// same nanosecond unit.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and s (t - s).
func (t Time) Sub(s Time) time.Duration { return time.Duration(t - s) }

// Duration converts t to the duration elapsed since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. It may be cancelled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all model code runs inside event callbacks on the caller's
// goroutine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	Rand   *Rand

	processed uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{Rand: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay d. A negative delay is treated as zero.
// The returned event may be cancelled.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an error
// in the model; it panics to surface the bug immediately.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// Step executes the next event, advancing the clock. It returns false when
// no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for duration d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Rand wraps math/rand with the distributions the models need.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic random source.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream from r, so subsystems can consume
// randomness without perturbing each other's sequences.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Int63())
}

// Exp samples an exponential distribution with the given mean.
func (r *Rand) Exp(mean time.Duration) time.Duration {
	return time.Duration(r.ExpFloat64() * float64(mean))
}

// LogNormal samples a log-normal distribution parameterised by its median
// and sigma (the shape parameter of the underlying normal). Latency tails in
// the models use this shape: p50 = median, p95 ≈ median·e^(1.64σ).
func (r *Rand) LogNormal(median time.Duration, sigma float64) time.Duration {
	return time.Duration(float64(median) * math.Exp(sigma*r.NormFloat64()))
}

// Pareto samples a bounded Pareto distribution with the given minimum and
// shape alpha. Used for heavy-tailed flow sizes.
func (r *Rand) Pareto(min float64, alpha float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = 1e-12
	}
	return min / math.Pow(u, 1/alpha)
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
func (r *Rand) Jitter(d time.Duration, f float64) time.Duration {
	scale := 1 + f*(2*r.Float64()-1)
	return time.Duration(float64(d) * scale)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
