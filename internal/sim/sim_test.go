package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine(1)
	var got []int
	eng.Schedule(30*time.Microsecond, func() { got = append(got, 3) })
	eng.Schedule(10*time.Microsecond, func() { got = append(got, 1) })
	eng.Schedule(20*time.Microsecond, func() { got = append(got, 2) })
	eng.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if eng.Now() != Time(30*time.Microsecond) {
		t.Fatalf("clock = %v, want 30µs", eng.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	eng := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(time.Microsecond, func() { got = append(got, i) })
	}
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	tm := eng.Schedule(time.Millisecond, func() { fired = true })
	if !tm.Active() {
		t.Fatal("Active() = false before Cancel")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("Active() = true after Cancel")
	}
	tm.Cancel() // double-cancel is a no-op
	eng.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelReleasesCallback(t *testing.T) {
	eng := NewEngine(1)
	tm := eng.Schedule(time.Millisecond, func() {})
	ev := tm.e
	tm.Cancel()
	if ev.fn != nil || ev.afn != nil || ev.arg != nil {
		t.Fatal("cancelled event still pins its callback")
	}
	if len(eng.free) == 0 {
		t.Fatal("cancelled event not returned to the pool")
	}
}

func TestStaleTimerDoesNotCancelRecycledEvent(t *testing.T) {
	eng := NewEngine(1)
	first := eng.Schedule(time.Microsecond, func() {})
	eng.Run() // fires; the event returns to the pool
	fired := false
	second := eng.Schedule(time.Microsecond, func() { fired = true })
	first.Cancel() // stale handle; may alias second's recycled Event
	if !second.Active() {
		t.Fatal("stale Cancel deactivated a recycled event")
	}
	eng.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestCancelMidHeapKeepsOrdering(t *testing.T) {
	eng := NewEngine(1)
	var got []int
	var timers []Timer
	for i := 0; i < 50; i++ {
		i := i
		timers = append(timers, eng.Schedule(time.Duration(37*i%50)*time.Microsecond, func() {
			got = append(got, 37*i%50)
		}))
	}
	for i := 0; i < 50; i += 3 {
		timers[i].Cancel()
	}
	eng.Run()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order after mid-heap removals: %v", got)
		}
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after drain", eng.Pending())
	}
}

func TestConcurrentDrivePanics(t *testing.T) {
	eng := NewEngine(1)
	res := make(chan any, 1)
	eng.Schedule(time.Microsecond, func() {
		done := make(chan any, 1)
		go func() {
			defer func() { done <- recover() }()
			eng.Step() // second driver while Run holds the engine
		}()
		res <- <-done
	})
	eng.Run()
	if r := <-res; r == nil {
		t.Fatal("driving one engine from two goroutines did not panic")
	}
}

func TestSteadyStateSchedulingAllocs(t *testing.T) {
	eng := NewEngine(1)
	noop := func(any) {}
	// Warm the event pool and the heap's backing array.
	for i := 0; i < 256; i++ {
		eng.ScheduleArg(time.Microsecond, noop, nil)
	}
	eng.Run()
	avg := testing.AllocsPerRun(200, func() {
		eng.ScheduleArg(time.Microsecond, noop, nil)
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule/fire allocates %v per cycle, want 0", avg)
	}
}

func TestSubmitArgAllocs(t *testing.T) {
	eng := NewEngine(1)
	srv := NewServer(eng, "cpu", 2)
	noop := func(any) {}
	for i := 0; i < 64; i++ {
		srv.SubmitArg(time.Microsecond, noop, nil)
	}
	eng.Run()
	avg := testing.AllocsPerRun(200, func() {
		srv.SubmitArg(time.Microsecond, noop, nil)
		srv.SubmitArg(time.Microsecond, noop, nil)
		srv.SubmitArg(time.Microsecond, noop, nil)
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state SubmitArg allocates %v per cycle, want 0", avg)
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		d := d
		eng.Schedule(d, func() { fired = append(fired, d) })
	}
	eng.RunUntil(Time(2 * time.Millisecond))
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if eng.Now() != Time(2*time.Millisecond) {
		t.Fatalf("clock = %v, want 2ms", eng.Now())
	}
	eng.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events after Run, want 3", len(fired))
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine(1)
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 100 {
			eng.Schedule(time.Microsecond, step)
		}
	}
	eng.Schedule(0, step)
	eng.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	eng := NewEngine(1)
	eng.Schedule(time.Millisecond, func() {})
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	eng.At(Time(0), func() {})
}

func TestServerSingleUnit(t *testing.T) {
	eng := NewEngine(1)
	srv := NewServer(eng, "cpu", 1)
	var doneAt []Time
	for i := 0; i < 3; i++ {
		srv.Submit(10*time.Microsecond, func() { doneAt = append(doneAt, eng.Now()) })
	}
	eng.Run()
	want := []Time{Time(10 * time.Microsecond), Time(20 * time.Microsecond), Time(30 * time.Microsecond)}
	for i, w := range want {
		if doneAt[i] != w {
			t.Fatalf("job %d done at %v, want %v", i, doneAt[i], w)
		}
	}
	if srv.Served() != 3 {
		t.Fatalf("served = %d", srv.Served())
	}
}

func TestServerParallelUnits(t *testing.T) {
	eng := NewEngine(1)
	srv := NewServer(eng, "cpu", 2)
	var doneAt []Time
	for i := 0; i < 4; i++ {
		srv.Submit(10*time.Microsecond, func() { doneAt = append(doneAt, eng.Now()) })
	}
	eng.Run()
	// Two at 10µs, two at 20µs.
	if doneAt[1] != Time(10*time.Microsecond) || doneAt[3] != Time(20*time.Microsecond) {
		t.Fatalf("completion times %v", doneAt)
	}
}

func TestServerUtilization(t *testing.T) {
	eng := NewEngine(1)
	srv := NewServer(eng, "cpu", 4)
	// Keep 2 of 4 units busy for the whole run.
	for i := 0; i < 2; i++ {
		srv.Submit(time.Millisecond, nil)
	}
	eng.Run()
	u := srv.Utilization()
	if math.Abs(u-2.0) > 0.01 {
		t.Fatalf("utilization = %v, want ~2.0 busy units", u)
	}
}

func TestChannelSerialization(t *testing.T) {
	eng := NewEngine(1)
	// 1 Gbit/s → 1000 bytes take 8µs.
	ch := NewChannel(eng, "pcie", 1e9)
	var doneAt []Time
	ch.Transfer(1000, func() { doneAt = append(doneAt, eng.Now()) })
	ch.Transfer(1000, func() { doneAt = append(doneAt, eng.Now()) })
	eng.Run()
	if doneAt[0] != Time(8*time.Microsecond) {
		t.Fatalf("first transfer at %v, want 8µs", doneAt[0])
	}
	if doneAt[1] != Time(16*time.Microsecond) {
		t.Fatalf("second transfer at %v, want 16µs (queued)", doneAt[1])
	}
	if got := ch.Transferred(); got != 2000 {
		t.Fatalf("transferred = %d", got)
	}
}

func TestChannelBacklog(t *testing.T) {
	eng := NewEngine(1)
	ch := NewChannel(eng, "pcie", 1e9)
	ch.Transfer(125000, nil) // 1ms worth
	if b := ch.Backlog(); b != time.Millisecond {
		t.Fatalf("backlog = %v, want 1ms", b)
	}
	eng.Run()
	if b := ch.Backlog(); b != 0 {
		t.Fatalf("backlog after drain = %v", b)
	}
}

func TestTokenBucket(t *testing.T) {
	eng := NewEngine(1)
	b := NewTokenBucket(eng, 1000, 10) // 1000/s, burst 10
	for i := 0; i < 10; i++ {
		if !b.TryTake(1) {
			t.Fatalf("take %d failed within burst", i)
		}
	}
	if b.TryTake(1) {
		t.Fatal("take succeeded on empty bucket")
	}
	if d := b.Delay(1); d != time.Millisecond {
		t.Fatalf("delay = %v, want 1ms", d)
	}
	// Advance 5ms → 5 tokens.
	eng.Schedule(5*time.Millisecond, func() {})
	eng.Run()
	for i := 0; i < 5; i++ {
		if !b.TryTake(1) {
			t.Fatalf("take %d failed after refill", i)
		}
	}
	if b.TryTake(1) {
		t.Fatal("bucket over-refilled")
	}
}

func TestTokenBucketNeverExceedsBurst(t *testing.T) {
	eng := NewEngine(7)
	b := NewTokenBucket(eng, 100, 5)
	eng.Schedule(time.Hour, func() {})
	eng.Run()
	if got := b.Available(); got != 5 {
		t.Fatalf("available = %v, want burst cap 5", got)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandLogNormalMedian(t *testing.T) {
	r := NewRand(42)
	const n = 20000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = float64(r.LogNormal(100*time.Microsecond, 0.5))
	}
	// Median should be near 100µs.
	count := 0
	for _, s := range samples {
		if s < float64(100*time.Microsecond) {
			count++
		}
	}
	frac := float64(count) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("median fraction = %v, want ~0.5", frac)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(42)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(time.Millisecond))
	}
	mean := sum / n
	if math.Abs(mean-float64(time.Millisecond)) > float64(time.Millisecond)*0.05 {
		t.Fatalf("mean = %v, want ~1ms", time.Duration(mean))
	}
}

// Property: for any sequence of Submit calls, a 1-unit server completes jobs
// in FIFO order and total busy time equals the sum of service times.
func TestServerFIFOProperty(t *testing.T) {
	f := func(services []uint16) bool {
		if len(services) == 0 {
			return true
		}
		if len(services) > 200 {
			services = services[:200]
		}
		eng := NewEngine(3)
		srv := NewServer(eng, "cpu", 1)
		var order []int
		var total time.Duration
		for i, s := range services {
			i := i
			d := time.Duration(s) * time.Nanosecond
			total += d
			srv.Submit(d, func() { order = append(order, i) })
		}
		eng.Run()
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return eng.Now() == Time(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: token bucket never goes negative and never exceeds burst.
func TestTokenBucketInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := NewEngine(5)
		b := NewTokenBucket(eng, 500, 20)
		for _, op := range ops {
			eng.Schedule(time.Duration(op)*time.Microsecond, func() {})
			eng.Run()
			b.TryTake(float64(op % 7))
			if a := b.Available(); a < 0 || a > 20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelUtilizationAndReset(t *testing.T) {
	eng := NewEngine(1)
	ch := NewChannel(eng, "pipe", 1e9)
	ch.Transfer(125_000, nil) // 1ms of pipe time
	eng.Schedule(2*time.Millisecond, func() {})
	eng.Run()
	u := ch.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
	ch.ResetStats()
	if ch.Transferred() != 0 || ch.Utilization() != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestServerResetStats(t *testing.T) {
	eng := NewEngine(1)
	srv := NewServer(eng, "cpu", 2)
	srv.Submit(time.Millisecond, nil)
	eng.Run()
	if srv.Served() != 1 {
		t.Fatalf("served = %d", srv.Served())
	}
	srv.ResetStats()
	if srv.Served() != 0 || srv.Utilization() != 0 {
		t.Fatal("reset did not clear")
	}
	srv.Submit(time.Millisecond, nil)
	eng.Run()
	// Utilization reports average busy units: one unit busy the whole time.
	if got := srv.Utilization(); got < 0.95 || got > 1.05 {
		t.Fatalf("post-reset utilization = %v, want ~1 busy unit", got)
	}
}

func TestEventAtAccessor(t *testing.T) {
	eng := NewEngine(1)
	tm := eng.Schedule(7*time.Microsecond, func() {})
	if tm.At() != Time(7*time.Microsecond) {
		t.Fatalf("At = %v", tm.At())
	}
	eng.Run()
	if tm.At() != 0 {
		t.Fatalf("At after fire = %v, want 0", tm.At())
	}
}

func TestTimeHelpers(t *testing.T) {
	a := Time(10 * time.Microsecond)
	if a.Add(5*time.Microsecond) != Time(15*time.Microsecond) {
		t.Fatal("Add broken")
	}
	if a.Sub(Time(4*time.Microsecond)) != 6*time.Microsecond {
		t.Fatal("Sub broken")
	}
	if a.String() != "10µs" {
		t.Fatalf("String = %q", a.String())
	}
}
