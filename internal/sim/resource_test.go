package sim

import (
	"math"
	"testing"
	"time"
)

// A paused bucket (rate 0) must not divide by zero in Delay: before the
// guard, need/rate yielded +Inf and the float→Duration conversion was
// undefined. The sentinel is Forever and no waiter timer is armed.
func TestTokenBucketZeroRateDelay(t *testing.T) {
	eng := NewEngine(1)
	b := NewTokenBucket(eng, 0, 8)
	for i := 0; i < 8; i++ {
		if !b.TryTake(1) {
			t.Fatalf("take %d failed within explicit burst", i)
		}
	}
	if d := b.Delay(1); d != Forever {
		t.Fatalf("paused-bucket delay = %v, want Forever", d)
	}
	if b.TryTake(1) {
		t.Fatal("paused empty bucket admitted a take")
	}
}

// Negative rates behave like paused: no refill (the old refill code would
// have drained tokens below zero over time).
func TestTokenBucketNegativeRateDoesNotDrain(t *testing.T) {
	eng := NewEngine(1)
	b := NewTokenBucket(eng, -5, 4)
	eng.Schedule(time.Hour, func() {})
	eng.Run()
	if got := b.Available(); got != 4 {
		t.Fatalf("available = %v after an hour at rate -5, want 4 (no refill, no drain)", got)
	}
	if d := b.Delay(5); d != Forever {
		t.Fatalf("delay = %v, want Forever", d)
	}
}

// NewTokenBucket with rate <= 0 and no explicit burst must not start with
// a negative burst/token count.
func TestNewTokenBucketNonPositiveRate(t *testing.T) {
	eng := NewEngine(1)
	for _, rate := range []float64{0, -3} {
		b := NewTokenBucket(eng, rate, 0)
		if got := b.Available(); got != 0 {
			t.Fatalf("rate=%v: available = %v, want 0", rate, got)
		}
		if b.TryTake(1) {
			t.Fatalf("rate=%v: empty paused bucket admitted a take", rate)
		}
		if d := b.Delay(1); d != Forever {
			t.Fatalf("rate=%v: delay = %v, want Forever", rate, d)
		}
	}
}

// A rate tiny enough that the refill wait overflows int64 nanoseconds must
// clamp to Forever, not wrap negative (which would schedule a waiter in
// the past and panic the engine).
func TestTokenBucketTinyRateDelayClamps(t *testing.T) {
	eng := NewEngine(1)
	b := NewTokenBucket(eng, 1e-18, 10)
	b.TryTake(10) // drain the initial burst
	d := b.Delay(1)
	if d != Forever {
		t.Fatalf("tiny-rate delay = %v, want Forever", d)
	}
	if d < 0 {
		t.Fatalf("tiny-rate delay wrapped negative: %v", d)
	}
	// Sanity: a representable-but-huge wait still comes out positive.
	b2 := NewTokenBucket(eng, 1e-6, 10)
	b2.TryTake(10)
	if d := b2.Delay(1); d <= 0 || d == Forever {
		t.Fatalf("slow-rate delay = %v, want a positive finite duration", d)
	}
}

// Delay must round up, never truncate to zero for a positive need: a
// waiter woken a float-hair early re-arms with the residual need, and a
// truncated 0 ns delay would re-fire at the same virtual instant forever
// (refill sees dt == 0 and adds nothing — a virtual-time livelock). Rates
// that don't divide a nanosecond evenly (2000/s → 500000.000... ±ulp per
// token) hit this under many-waiter contention.
func TestTokenBucketDelayNeverTruncatesToZero(t *testing.T) {
	eng := NewEngine(1)
	b := NewTokenBucket(eng, 2000, 2)
	b.TryTake(2)
	// A residual need representable only below 1 ns of refill: the delay
	// must still be at least 1 ns so virtual time advances.
	b.tokens = 1 - 1e-12
	if d := b.Delay(1); d <= 0 {
		t.Fatalf("delay for sub-ns residual need = %v, want >= 1ns", d)
	}
	// End-to-end: 17 competing waiters on one 2000/s bucket must all
	// drain within bounded virtual time (the livelock kept Run from ever
	// returning).
	b.tokens = 0
	fired := 0
	for i := 0; i < 17; i++ {
		b.Wait(1, func() { fired++ })
	}
	eng.Run()
	if fired != 17 || b.Waiting() != 0 {
		t.Fatalf("fired = %d, waiting = %d; want 17 and 0", fired, b.Waiting())
	}
	if got, want := eng.Now().Duration(), 17*time.Millisecond; got > want {
		t.Fatalf("17 tokens at 2000/s took %v, want <= %v", got, want)
	}
}

// Wait on a paused bucket parks with no timer; SetRate re-arms it and the
// waiter fires at exactly the instant the new rate implies.
func TestTokenBucketWaitPausedThenSetRate(t *testing.T) {
	eng := NewEngine(1)
	b := NewTokenBucket(eng, 0, 10)
	b.TryTake(10)
	var fired Time
	b.Wait(5, func() { fired = eng.Now() })
	if b.Waiting() != 1 {
		t.Fatalf("waiting = %d, want 1 parked waiter", b.Waiting())
	}
	// Unpause at t=1ms: 5 tokens at 1000/s arrive 5ms later.
	eng.Schedule(time.Millisecond, func() { b.SetRate(1000) })
	eng.Run()
	want := Time(0).Add(6 * time.Millisecond)
	if fired != want {
		t.Fatalf("waiter fired at %v, want %v", fired, want)
	}
	if b.Waiting() != 0 {
		t.Fatalf("waiting = %d after fire, want 0", b.Waiting())
	}
}

// Raising the rate mid-wait must pull the wake earlier: under the old
// code the waiter stayed scheduled at the instant computed from the old
// rate and woke late.
func TestTokenBucketSetRateReArmsEarlier(t *testing.T) {
	eng := NewEngine(1)
	b := NewTokenBucket(eng, 10, 10) // 10/s: 5 tokens need 500ms
	b.TryTake(10)
	var fired Time
	b.Wait(5, func() { fired = eng.Now() })
	// At t=100ms the bucket holds 1 token; at 1000/s the remaining 4
	// arrive 4ms later.
	eng.Schedule(100*time.Millisecond, func() { b.SetRate(1000) })
	eng.Run()
	want := Time(0).Add(104 * time.Millisecond)
	if fired != want {
		t.Fatalf("waiter fired at %v, want %v (stale wake would be 500ms)", fired, want)
	}
}

// Cutting the rate mid-wait must push the wake later in one step, not
// leave the stale early timer to fire, fail, and re-arm.
func TestTokenBucketSetRateCutParksLonger(t *testing.T) {
	eng := NewEngine(1)
	b := NewTokenBucket(eng, 1000, 10) // 5 tokens in 5ms
	b.TryTake(10)
	var fired Time
	b.Wait(5, func() { fired = eng.Now() })
	// At t=1ms the bucket holds 1 token; at 10/s the remaining 4 need
	// 400ms more.
	eng.Schedule(time.Millisecond, func() { b.SetRate(10) })
	eng.Run()
	want := Time(0).Add(401 * time.Millisecond)
	if fired != want {
		t.Fatalf("waiter fired at %v, want %v", fired, want)
	}
}

// Cutting to zero parks the waiter indefinitely; the engine must drain
// (no busy re-arm loop at Forever).
func TestTokenBucketSetRateToZeroParks(t *testing.T) {
	eng := NewEngine(1)
	b := NewTokenBucket(eng, 1000, 10)
	b.TryTake(10)
	fired := false
	b.Wait(5, func() { fired = true })
	eng.Schedule(time.Millisecond, func() { b.SetRate(0) })
	eng.Run() // must terminate
	if fired {
		t.Fatal("waiter fired on a paused bucket")
	}
	if b.Waiting() != 1 {
		t.Fatalf("waiting = %d, want the waiter still parked", b.Waiting())
	}
	// A later raise still wakes it.
	b.SetRate(1e6)
	eng.Run()
	if !fired {
		t.Fatal("waiter never woke after the bucket was unpaused")
	}
}

// Multiple parked waiters re-arm in arrival order across a SetRate, so
// admission order is stable.
func TestTokenBucketSetRatePreservesWaiterOrder(t *testing.T) {
	eng := NewEngine(1)
	b := NewTokenBucket(eng, 10, 4)
	b.TryTake(4)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		b.Wait(2, func() { order = append(order, i) })
	}
	eng.Schedule(time.Millisecond, func() { b.SetRate(10000) })
	eng.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("waiters fired in order %v, want [0 1 2]", order)
	}
}

// Wait for more than the burst capacity can never be satisfied and stays a
// loud programming error under the new guards.
func TestTokenBucketWaitBeyondBurstPanics(t *testing.T) {
	eng := NewEngine(1)
	b := NewTokenBucket(eng, 100, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("Wait(n > burst) did not panic")
		}
	}()
	b.Wait(6, func() {})
}

// The Forever sentinel is the maximum representable Duration, so any
// comparison against real delays stays well-ordered.
func TestForeverSentinel(t *testing.T) {
	if Forever != time.Duration(math.MaxInt64) {
		t.Fatalf("Forever = %v, want MaxInt64 ns", Forever)
	}
}
