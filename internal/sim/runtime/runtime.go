// Package runtime executes multi-engine simulations in parallel. It is the
// multi-engine counterpart of the single-engine kernel in internal/sim and
// supports two regimes:
//
//   - Independent shards (Runner/Fleet/Run): one run-to-complete engine per
//     core with no shared mutable state, mirroring the paper's Luna engine.
//     Each shard builds its own sim.Engine and model inside the shard
//     function; nothing crosses shard boundaries except the shard index and
//     the values returned.
//   - Coupled partitions (Coupled): several engines share one model — the
//     partitions of a single fabric — and advance in barrier-synchronized
//     lookahead windows, exchanging events between windows through
//     per-engine mailboxes (conservative parallel DES; see coupled.go).
//
// The rules that make both safe and reproducible:
//
//   - Within a window or shard, exactly one goroutine drives each engine
//     (the engines enforce this with an atomic check).
//   - Results are always delivered in shard/partition order, never
//     completion order, so aggregates are bit-identical whether the fleet
//     ran on 1 worker or on GOMAXPROCS workers.
//   - Seeds derive from the shard or partition index, not from any shared
//     random stream consumed at run time.
package runtime

import (
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	"lunasolar/internal/sim"
	"lunasolar/internal/stats"
)

// Runner fans independent shard functions out over a fixed-size worker
// pool. The zero value uses GOMAXPROCS workers; Workers == 1 runs shards
// serially on the calling goroutine, which is useful for determinism
// regression tests and debugging.
type Runner struct {
	Workers int
}

// workers resolves the effective pool size.
func (r Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return gort.GOMAXPROCS(0)
}

// Each runs job(shard) for every shard in [0, n) and blocks until all
// complete. Shards are claimed from a shared counter, so long shards do not
// serialize behind short ones. A panic in any shard is re-raised on the
// calling goroutine after the remaining shards finish.
func (r Runner) Each(n int, job func(shard int)) {
	if n <= 0 {
		return
	}
	w := r.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var once sync.Once
	var panicked any
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					once.Do(func() { panicked = p })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs job for every shard and returns the results in shard order.
func Map[T any](r Runner, n int, job func(shard int) T) []T {
	out := make([]T, n)
	r.Each(n, func(i int) { out[i] = job(i) })
	return out
}

// Perf accumulates simulator-throughput counters across shards: how many
// events the engines executed, how much virtual time they simulated, and
// how much wall time the shards consumed (summed across workers, so it
// reads like CPU time). It is safe for concurrent Observe calls.
type Perf struct {
	mu     sync.Mutex
	shards int
	events uint64
	simd   time.Duration
	wall   time.Duration
	leaked int
}

// Observe folds one finished shard's engine counters and wall time in.
func (p *Perf) Observe(eng *sim.Engine, wall time.Duration) {
	if p == nil || eng == nil {
		return
	}
	p.mu.Lock()
	p.shards++
	p.events += eng.Processed()
	p.simd += eng.Now().Duration()
	p.wall += wall
	p.mu.Unlock()
}

// ObserveLeaked folds one shard's leaked-packet count in (see
// ebs.Cluster.Leaked); cmd/ebsbench asserts the total is zero after every
// experiment.
func (p *Perf) ObserveLeaked(n int) {
	if p == nil || n == 0 {
		return
	}
	p.mu.Lock()
	p.leaked += n
	p.mu.Unlock()
}

// Leaked returns the total leaked-packet count across observed shards.
func (p *Perf) Leaked() int { p.mu.Lock(); defer p.mu.Unlock(); return p.leaked }

// Merge folds another Perf in (used when sub-experiments run their own
// fleets and a caller wants one aggregate).
func (p *Perf) Merge(o *Perf) {
	if p == nil || o == nil {
		return
	}
	o.mu.Lock()
	shards, events, simd, wall, leaked := o.shards, o.events, o.simd, o.wall, o.leaked
	o.mu.Unlock()
	p.mu.Lock()
	p.shards += shards
	p.events += events
	p.simd += simd
	p.wall += wall
	p.leaked += leaked
	p.mu.Unlock()
}

// Shards returns how many shards have been observed.
func (p *Perf) Shards() int { p.mu.Lock(); defer p.mu.Unlock(); return p.shards }

// Events returns the total engine events executed.
func (p *Perf) Events() uint64 { p.mu.Lock(); defer p.mu.Unlock(); return p.events }

// SimTime returns the total virtual time simulated across shards.
func (p *Perf) SimTime() time.Duration { p.mu.Lock(); defer p.mu.Unlock(); return p.simd }

// WallTime returns the total wall time consumed across shards (summed over
// workers; with W busy workers this advances ~W× faster than the clock).
func (p *Perf) WallTime() time.Duration { p.mu.Lock(); defer p.mu.Unlock(); return p.wall }

// EventsPerSec returns engine events executed per second of shard wall
// time — the simulator's core throughput metric.
func (p *Perf) EventsPerSec() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wall <= 0 {
		return 0
	}
	return float64(p.events) / p.wall.Seconds()
}

// SimMicrosPerWallMs returns how many microseconds of virtual time the
// simulator advances per millisecond of wall time.
func (p *Perf) SimMicrosPerWallMs() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wall <= 0 {
		return 0
	}
	return float64(p.simd.Microseconds()) / (float64(p.wall.Nanoseconds()) / 1e6)
}

// Fleet couples a Runner with Perf accounting: it executes N independent
// (Engine, model, seed) shards and reports the fleet's simulator
// throughput. Experiments share one Fleet per table so the CLI can print
// events/sec alongside the simulated results.
type Fleet struct {
	Runner Runner
	Perf   Perf
}

// Run executes n shards on the fleet. Each shard function builds its own
// engine and model (seeded from the shard index), drives the simulation to
// completion, and returns (result, engine). Results come back in shard
// order; engine counters are folded into the fleet's Perf.
func Run[T any](f *Fleet, n int, job func(shard int) (T, *sim.Engine)) []T {
	out := make([]T, n)
	f.Runner.Each(n, func(i int) {
		t0 := wallNow()
		v, eng := job(i)
		f.Perf.Observe(eng, wallSince(t0))
		out[i] = v
	})
	return out
}

// MergeHistograms folds per-shard histograms into a fresh one in shard
// order, so the aggregate is identical regardless of which worker finished
// first. Nil entries are skipped.
func MergeHistograms(parts []*stats.Histogram) *stats.Histogram {
	out := stats.NewHistogram()
	for _, h := range parts {
		if h != nil {
			out.Merge(h)
		}
	}
	return out
}

// SumCounts sums per-shard counters in shard order.
func SumCounts(parts []uint64) uint64 {
	var total uint64
	for _, v := range parts {
		total += v
	}
	return total
}
