package runtime

import (
	"testing"
	"time"

	"lunasolar/internal/sim"
	"lunasolar/internal/stats"
)

// shardHistogram builds a deterministic per-shard histogram by running a
// small simulation on a private engine seeded from the shard index.
func shardHistogram(shard int) (*stats.Histogram, *sim.Engine) {
	eng := sim.NewEngine(int64(shard) + 1)
	h := stats.NewHistogram()
	for i := 0; i < 200; i++ {
		eng.Schedule(eng.Rand.Exp(10*time.Microsecond), func() {
			h.Record(eng.Now().Duration())
		})
	}
	eng.Run()
	return h, eng
}

func TestMapPreservesShardOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := Map(Runner{Workers: workers}, 32, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: shard %d returned %d", workers, i, v)
			}
		}
	}
}

func TestSerialParallelIdenticalMerge(t *testing.T) {
	run := func(workers int) string {
		f := &Fleet{Runner: Runner{Workers: workers}}
		parts := Run(f, 8, shardHistogram)
		return MergeHistograms(parts).Summary()
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Fatalf("serial and parallel merges differ:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestFleetPerfAccounting(t *testing.T) {
	f := &Fleet{Runner: Runner{Workers: 2}}
	Run(f, 4, shardHistogram)
	if f.Perf.Shards() != 4 {
		t.Fatalf("shards = %d", f.Perf.Shards())
	}
	if f.Perf.Events() != 4*200 {
		t.Fatalf("events = %d, want 800", f.Perf.Events())
	}
	if f.Perf.SimTime() <= 0 {
		t.Fatal("no simulated time recorded")
	}
	if f.Perf.EventsPerSec() <= 0 || f.Perf.SimMicrosPerWallMs() <= 0 {
		t.Fatal("throughput metrics not positive")
	}
}

func TestEachPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shard panic did not propagate")
		}
	}()
	Runner{Workers: 3}.Each(8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

func TestEachZeroShards(t *testing.T) {
	Runner{}.Each(0, func(int) { t.Fatal("job called for n=0") })
}

func TestSumCounts(t *testing.T) {
	if got := SumCounts([]uint64{1, 2, 3}); got != 6 {
		t.Fatalf("SumCounts = %d", got)
	}
}
