package runtime

import "time"

// The bench layer is the one place in the tree allowed to read the wall
// clock: it measures how fast the simulator itself runs (sim-µs/wall-ms,
// events/sec) and never feeds the measurement back into virtual time.
// Funneling every read through these two helpers keeps the suppression
// surface to exactly two expressions the -suppressions inventory audits.

// wallNow stamps the start of a measured region.
func wallNow() time.Time {
	//lint:allow wallclock — bench layer: the one sanctioned wall-clock read; feeds perf metrics, never virtual time
	return time.Now()
}

// wallSince returns the wall time elapsed since a wallNow stamp.
func wallSince(t0 time.Time) time.Duration {
	//lint:allow wallclock — bench layer: paired with wallNow; feeds perf metrics, never virtual time
	return time.Since(t0)
}
