package sim

import (
	"sort"
	"sync"
)

// Inbound is one externally injected event waiting in a Mailbox: a deliver
// time plus a (source, sequence) key that makes the merge order total. Src
// identifies the sending partition; Seq is a per-sender monotone counter,
// so (At, Src, Seq) is unique and orders deposits deterministically no
// matter which goroutine posted first in wall time.
type Inbound struct {
	At  Time
	Src int
	Seq uint64
	Arg any
}

// Mailbox is a thread-safe inbound queue for events injected into an
// engine's partition from outside its ownership domain (the coupled-fabric
// cross-partition path). Producers Post from their own window; a single
// consumer — the barrier coordinator, while no window is running — drains
// it with Drain and schedules the entries onto the receiving engine.
//
// The mailbox deliberately does not schedule anything itself: it holds
// opaque payloads until the coordinator owns the receiving engine, keeping
// the share-nothing rule ("one driver per engine") intact within windows.
//
//lint:crossing
type Mailbox struct {
	mu      sync.Mutex
	pending []Inbound

	// spare recycles the drained batch's backing array; touched only by
	// Drain's single consumer.
	spare []Inbound
}

// Post enqueues one inbound event. Safe to call from any goroutine.
func (m *Mailbox) Post(in Inbound) {
	m.mu.Lock()
	m.pending = append(m.pending, in)
	m.mu.Unlock()
}

// Len returns the number of undelivered entries.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// Drain removes every pending entry and calls fn for each in (At, Src, Seq)
// order. The sort makes delivery independent of wall-clock posting order,
// which is what keeps coupled runs bit-identical across worker counts.
// Only one goroutine may call Drain at a time (the barrier coordinator).
func (m *Mailbox) Drain(fn func(Inbound)) {
	m.mu.Lock()
	batch := m.pending
	m.pending = m.spare[:0]
	m.mu.Unlock()
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Seq < b.Seq
	})
	for i := range batch {
		fn(batch[i])
		batch[i] = Inbound{}
	}
	m.spare = batch[:0]
}
