package sim

import (
	"testing"
	"time"
)

// TestFastForwardHookBounds pins the hook contract: before each queued
// event commits the hook sees (now, until=event time); with the heap empty
// it sees until=timeMax and may materialize events, which the engine then
// runs instead of stopping.
func TestFastForwardHookBounds(t *testing.T) {
	e := NewEngine(1)
	evAt := Time(10 * time.Microsecond)
	var fired []Time
	e.At(evAt, func() {})

	var calls []struct{ now, until Time }
	analytic := Time(25 * time.Microsecond)
	armed := false
	e.SetFastForward(func(now, until Time) {
		calls = append(calls, struct{ now, until Time }{now, until})
		if until == timeMax && !armed {
			armed = true
			e.At(analytic, func() { fired = append(fired, e.Now()) })
		}
	})
	e.Run()

	if len(calls) < 2 {
		t.Fatalf("hook called %d times, want >= 2 (bounded + open-horizon)", len(calls))
	}
	if calls[0].now != 0 || calls[0].until != evAt {
		t.Fatalf("first call = %+v, want (0, %v): the next event is the bound", calls[0], evAt)
	}
	if !armed {
		t.Fatal("hook never saw the open horizon (empty heap)")
	}
	if len(fired) != 1 || fired[0] != analytic {
		t.Fatalf("analytic event fired at %v, want exactly once at %v", fired, analytic)
	}
	if e.Now() != analytic {
		t.Fatalf("engine stopped at %v, want %v (the hook-scheduled event)", e.Now(), analytic)
	}
}

// TestFastForwardHookRunUntil checks the bounded-horizon path: a quiescent
// window gives the hook one chance to schedule inside (now, limit], and
// events it schedules beyond the limit stay queued.
func TestFastForwardHookRunUntil(t *testing.T) {
	e := NewEngine(1)
	inside := Time(5 * time.Microsecond)
	beyond := Time(50 * time.Microsecond)
	limit := Time(20 * time.Microsecond)
	var fired []Time
	armed := false
	e.SetFastForward(func(now, until Time) {
		if !armed {
			armed = true
			e.At(inside, func() { fired = append(fired, e.Now()) })
			e.At(beyond, func() { fired = append(fired, e.Now()) })
		}
	})
	e.RunUntil(limit)
	if len(fired) != 1 || fired[0] != inside {
		t.Fatalf("events fired at %v within limit %v, want exactly [%v]", fired, limit, inside)
	}
	if e.Now() != limit {
		t.Fatalf("clock at %v after RunUntil, want %v", e.Now(), limit)
	}
	e.Run()
	if len(fired) != 2 || fired[1] != beyond {
		t.Fatalf("deferred event fired at %v, want %v", fired, beyond)
	}
}
