package ctrl

import (
	"fmt"

	"lunasolar/internal/sa"
)

// Backend executes the data-plane side of control operations: mapping
// segments, growing maps, releasing resources. The ebs package implements
// it against a live cluster; tests use fakes. Backend calls are made at
// most once per distinct request ID — replays are answered from the cache.
type Backend interface {
	// Provision maps a new volume's segments and returns the volume ID it
	// allocated — the backend owns the ID space, so control-plane volumes
	// and any the data plane provisions directly never collide. sizeBytes
	// 0 is legal (segmentless volume).
	Provision(tenant string, sizeBytes uint64) (uint32, error)
	// Grow extends a volume's mapping to newSizeBytes.
	Grow(id uint32, newSizeBytes uint64) error
	// Release unmaps a volume and frees its resources.
	Release(id uint32) error
}

// Result is a cached request outcome: the volume (or snapshot) ID the
// request produced and its error.
type Result struct {
	ID  uint32
	Err error
}

// Service is the management core: every mutating call takes a caller-
// chosen request ID and is idempotent in it — a replay (same reqID)
// returns the original outcome, success or error, without re-executing
// the backend. An empty reqID opts out of caching.
type Service struct {
	backend Backend

	vols  map[uint32]*Volume
	order []uint32 // creation order, for deterministic listings
	snaps map[uint32]*Snapshot
	cache map[string]Result

	tenantSpec  map[string]sa.QoSSpec
	tenantOrder []string

	nextSnap uint32
}

// NewService creates a service over the given backend.
func NewService(backend Backend) *Service {
	return &Service{
		backend:    backend,
		vols:       map[uint32]*Volume{},
		snaps:      map[uint32]*Snapshot{},
		cache:      map[string]Result{},
		tenantSpec: map[string]sa.QoSSpec{},
	}
}

// remember caches and returns a request outcome.
func (s *Service) remember(reqID string, r Result) Result {
	if reqID != "" {
		s.cache[reqID] = r
	}
	return r
}

// replay returns the cached outcome of a previously seen request ID.
func (s *Service) replay(reqID string) (Result, bool) {
	if reqID == "" {
		return Result{}, false
	}
	r, ok := s.cache[reqID]
	return r, ok
}

// Create provisions a new volume for tenant and returns its ID.
func (s *Service) Create(reqID, tenant string, sizeBytes uint64) (uint32, error) {
	if r, ok := s.replay(reqID); ok {
		return r.ID, r.Err
	}
	id, err := s.backend.Provision(tenant, sizeBytes)
	if err != nil {
		r := s.remember(reqID, Result{Err: fmt.Errorf("ctrl: create volume: %w", err)})
		return 0, r.Err
	}
	s.vols[id] = &Volume{ID: id, Tenant: tenant, SizeBytes: sizeBytes, State: StateAvailable}
	s.order = append(s.order, id)
	r := s.remember(reqID, Result{ID: id})
	return r.ID, nil
}

// available fetches a volume that must exist and be idle.
func (s *Service) available(id uint32) (*Volume, error) {
	v, ok := s.vols[id]
	if !ok {
		return nil, fmt.Errorf("ctrl: unknown volume %d", id)
	}
	if v.State != StateAvailable {
		return nil, fmt.Errorf("ctrl: volume %d is %s", id, v.State)
	}
	return v, nil
}

// Resize grows a volume to newSizeBytes. Shrinking is refused (segments
// under live I/O cannot be unmapped safely).
func (s *Service) Resize(reqID string, id uint32, newSizeBytes uint64) error {
	if r, ok := s.replay(reqID); ok {
		return r.Err
	}
	v, err := s.available(id)
	if err != nil {
		return s.remember(reqID, Result{Err: err}).Err
	}
	if newSizeBytes < v.SizeBytes {
		err := fmt.Errorf("ctrl: volume %d shrink %d -> %d refused", id, v.SizeBytes, newSizeBytes)
		return s.remember(reqID, Result{Err: err}).Err
	}
	v.State = StateResizing
	if err := s.backend.Grow(id, newSizeBytes); err != nil {
		v.State = StateAvailable
		return s.remember(reqID, Result{Err: fmt.Errorf("ctrl: resize volume %d: %w", id, err)}).Err
	}
	v.SizeBytes = newSizeBytes
	v.State = StateAvailable
	s.remember(reqID, Result{ID: id})
	return nil
}

// Snapshot captures a volume's metadata and returns the snapshot ID.
func (s *Service) Snapshot(reqID string, id uint32) (uint32, error) {
	if r, ok := s.replay(reqID); ok {
		return r.ID, r.Err
	}
	v, err := s.available(id)
	if err != nil {
		return 0, s.remember(reqID, Result{Err: err}).Err
	}
	v.State = StateSnapshotting
	s.nextSnap++
	snapID := s.nextSnap
	s.snaps[snapID] = &Snapshot{ID: snapID, Source: id, SizeBytes: v.SizeBytes}
	v.State = StateAvailable
	s.remember(reqID, Result{ID: snapID})
	return snapID, nil
}

// Clone provisions a new volume from a snapshot (copy-on-write in
// production; metadata-sized here) and returns the new volume's ID.
func (s *Service) Clone(reqID string, snapID uint32, tenant string) (uint32, error) {
	if r, ok := s.replay(reqID); ok {
		return r.ID, r.Err
	}
	snap, ok := s.snaps[snapID]
	if !ok {
		err := fmt.Errorf("ctrl: unknown snapshot %d", snapID)
		return 0, s.remember(reqID, Result{Err: err}).Err
	}
	id, err := s.backend.Provision(tenant, snap.SizeBytes)
	if err != nil {
		r := s.remember(reqID, Result{Err: fmt.Errorf("ctrl: clone snapshot %d: %w", snapID, err)})
		return 0, r.Err
	}
	s.vols[id] = &Volume{ID: id, Tenant: tenant, SizeBytes: snap.SizeBytes, State: StateAvailable}
	s.order = append(s.order, id)
	s.remember(reqID, Result{ID: id})
	return id, nil
}

// Delete releases a volume. The record stays as a Deleted tombstone so
// replayed or racing requests get a coherent answer.
func (s *Service) Delete(reqID string, id uint32) error {
	if r, ok := s.replay(reqID); ok {
		return r.Err
	}
	v, err := s.available(id)
	if err != nil {
		return s.remember(reqID, Result{Err: err}).Err
	}
	v.State = StateDeleting
	if err := s.backend.Release(id); err != nil {
		v.State = StateAvailable
		return s.remember(reqID, Result{Err: fmt.Errorf("ctrl: delete volume %d: %w", id, err)}).Err
	}
	v.State = StateDeleted
	s.remember(reqID, Result{ID: id})
	return nil
}

// BeginMigration moves an Available volume to Migrating, reserving it for
// one live-migration campaign (unplanned degradation or a planned drain).
func (s *Service) BeginMigration(id uint32) error {
	v, err := s.available(id)
	if err != nil {
		return err
	}
	v.State = StateMigrating
	return nil
}

// EndMigration returns a Migrating volume to Available.
func (s *Service) EndMigration(id uint32) error {
	v, ok := s.vols[id]
	if !ok {
		return fmt.Errorf("ctrl: unknown volume %d", id)
	}
	if v.State != StateMigrating {
		return fmt.Errorf("ctrl: volume %d is %s, not migrating", id, v.State)
	}
	v.State = StateAvailable
	return nil
}

// Volume returns a copy of a volume's record.
func (s *Service) Volume(id uint32) (Volume, bool) {
	v, ok := s.vols[id]
	if !ok {
		return Volume{}, false
	}
	return *v, true
}

// Volumes lists all volume records (tombstones included) in creation
// order.
func (s *Service) Volumes() []Volume {
	out := make([]Volume, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.vols[id])
	}
	return out
}

// SetTenantQoS registers (or updates) a tenant's aggregate service level.
func (s *Service) SetTenantQoS(tenant string, spec sa.QoSSpec) {
	if _, ok := s.tenantSpec[tenant]; !ok {
		s.tenantOrder = append(s.tenantOrder, tenant)
	}
	s.tenantSpec[tenant] = spec
}

// TenantQoS returns a tenant's registered service level.
func (s *Service) TenantQoS(tenant string) (sa.QoSSpec, bool) {
	spec, ok := s.tenantSpec[tenant]
	return spec, ok
}

// Tenants lists registered tenants in registration order.
func (s *Service) Tenants() []string {
	return append([]string(nil), s.tenantOrder...)
}
