package ctrl

import (
	"errors"
	"fmt"
	"testing"

	"lunasolar/internal/sa"
)

// fakeBackend records calls and fails on demand.
type fakeBackend struct {
	provisions, grows, releases int
	nextID                      uint32
	failProvision               error
	failGrow                    error
}

func (f *fakeBackend) Provision(tenant string, sizeBytes uint64) (uint32, error) {
	f.provisions++
	if f.failProvision != nil {
		return 0, f.failProvision
	}
	f.nextID++
	return f.nextID, nil
}
func (f *fakeBackend) Grow(id uint32, newSizeBytes uint64) error {
	f.grows++
	return f.failGrow
}
func (f *fakeBackend) Release(id uint32) error {
	f.releases++
	return nil
}

func TestCreateIdempotent(t *testing.T) {
	b := &fakeBackend{}
	s := NewService(b)
	id1, err := s.Create("req-1", "acme", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Create("req-1", "acme", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("replayed create returned %d, want %d", id2, id1)
	}
	if b.provisions != 1 {
		t.Fatalf("backend provisioned %d times, want 1", b.provisions)
	}
	// A distinct request ID makes a distinct volume.
	id3, err := s.Create("req-2", "acme", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Fatal("distinct request reused volume ID")
	}
}

func TestCreateErrorReplayed(t *testing.T) {
	sentinel := errors.New("placement full")
	b := &fakeBackend{failProvision: sentinel}
	s := NewService(b)
	if _, err := s.Create("req-1", "acme", 1<<20); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Create("req-1", "acme", 1<<20); !errors.Is(err, sentinel) {
		t.Fatalf("replayed err = %v", err)
	}
	if b.provisions != 1 {
		t.Fatalf("failed create re-executed: %d provisions", b.provisions)
	}
	if len(s.Volumes()) != 0 {
		t.Fatal("failed create left a volume record")
	}
}

func TestResizeLifecycle(t *testing.T) {
	b := &fakeBackend{}
	s := NewService(b)
	id, err := s.Create("c", "t", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Resize("r1", id, 8<<20); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Volume(id)
	if v.SizeBytes != 8<<20 || v.State != StateAvailable {
		t.Fatalf("after resize: %+v", v)
	}
	if err := s.Resize("r2", id, 1<<20); err == nil {
		t.Fatal("shrink allowed")
	}
	// Replay of the successful resize is a no-op.
	if err := s.Resize("r1", id, 8<<20); err != nil {
		t.Fatal(err)
	}
	if b.grows != 1 {
		t.Fatalf("grows = %d, want 1", b.grows)
	}
}

func TestBusyVolumeRefusesOps(t *testing.T) {
	s := NewService(&fakeBackend{})
	id, err := s.Create("c", "t", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginMigration(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Resize("r", id, 8<<20); err == nil {
		t.Fatal("resize of migrating volume allowed")
	}
	if err := s.Delete("d", id); err == nil {
		t.Fatal("delete of migrating volume allowed")
	}
	if err := s.BeginMigration(id); err == nil {
		t.Fatal("double migration begin allowed")
	}
	if err := s.EndMigration(id); err != nil {
		t.Fatal(err)
	}
	if err := s.EndMigration(id); err == nil {
		t.Fatal("double migration end allowed")
	}
}

func TestSnapshotCloneDelete(t *testing.T) {
	b := &fakeBackend{}
	s := NewService(b)
	id, err := s.Create("c", "t", 6<<20)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot("s1", id)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := s.Clone("cl1", snap, "other")
	if err != nil {
		t.Fatal(err)
	}
	cv, _ := s.Volume(clone)
	if cv.SizeBytes != 6<<20 || cv.Tenant != "other" {
		t.Fatalf("clone record: %+v", cv)
	}
	if _, err := s.Clone("cl2", 999, "other"); err == nil {
		t.Fatal("clone from unknown snapshot allowed")
	}
	if err := s.Delete("d1", id); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Volume(id)
	if v.State != StateDeleted {
		t.Fatalf("state after delete = %s", v.State)
	}
	if err := s.Delete("d2", id); err == nil {
		t.Fatal("double delete allowed")
	}
	// Replay of the original delete still reports success.
	if err := s.Delete("d1", id); err != nil {
		t.Fatalf("replayed delete: %v", err)
	}
	if b.releases != 1 {
		t.Fatalf("releases = %d, want 1", b.releases)
	}
}

func TestTenantRegistry(t *testing.T) {
	s := NewService(&fakeBackend{})
	s.SetTenantQoS("beta", sa.QoSSpec{IOPS: 100})
	s.SetTenantQoS("acme", sa.QoSSpec{IOPS: 200})
	s.SetTenantQoS("beta", sa.QoSSpec{IOPS: 300}) // update, not re-register
	if got := s.Tenants(); len(got) != 2 || got[0] != "beta" || got[1] != "acme" {
		t.Fatalf("tenants = %v", got)
	}
	spec, ok := s.TenantQoS("beta")
	if !ok || spec.IOPS != 300 {
		t.Fatalf("beta spec = %+v ok=%v", spec, ok)
	}
	if _, ok := s.TenantQoS("ghost"); ok {
		t.Fatal("unknown tenant found")
	}
}

func TestPlacerSpreadsDomains(t *testing.T) {
	nodes := []Node{
		{Addr: 11, Domain: "rack0"}, {Addr: 12, Domain: "rack0"},
		{Addr: 21, Domain: "rack1"}, {Addr: 22, Domain: "rack1"},
		{Addr: 31, Domain: "rack2"}, {Addr: 32, Domain: "rack2"},
	}
	p, err := NewPlacer(nodes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Place(6)
	if err != nil {
		t.Fatal(err)
	}
	// Six segments over six nodes in three domains: every node used once,
	// and each consecutive triple covers all three domains.
	used := map[uint32]int{}
	for _, a := range got {
		used[a]++
	}
	for _, n := range nodes {
		if used[n.Addr] != 1 {
			t.Fatalf("node %d used %d times: %v", n.Addr, used[n.Addr], got)
		}
	}
	doms := map[string]bool{"rack0": false, "rack1": false, "rack2": false}
	domOf := map[uint32]string{11: "rack0", 12: "rack0", 21: "rack1", 22: "rack1", 31: "rack2", 32: "rack2"}
	for i, a := range got[:3] {
		if doms[domOf[a]] {
			t.Fatalf("first three picks repeat a domain at %d: %v", i, got)
		}
		doms[domOf[a]] = true
	}
}

func TestPlacerDrainAndDeterminism(t *testing.T) {
	mk := func() *Placer {
		p, err := NewPlacer([]Node{
			{Addr: 1, Domain: "a"}, {Addr: 2, Domain: "a"}, {Addr: 3, Domain: "b"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := mk(), mk()
	p1.SetDown(3, true)
	p2.SetDown(3, true)
	g1, err1 := p1.Place(4)
	g2, err2 := p2.Place(4)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if fmt.Sprint(g1) != fmt.Sprint(g2) {
		t.Fatalf("placement not deterministic: %v vs %v", g1, g2)
	}
	for _, a := range g1 {
		if a == 3 {
			t.Fatalf("placed on a down node: %v", g1)
		}
	}
	p1.SetDown(1, true)
	p1.SetDown(2, true)
	if _, err := p1.Place(1); err == nil {
		t.Fatal("placement with all nodes down succeeded")
	}
	// Release returns load.
	if p1.Load(1) == 0 {
		t.Fatal("no load recorded")
	}
	p1.Release(g1)
	if p1.Load(1) != 0 || p1.Load(2) != 0 {
		t.Fatalf("release did not zero load: %d %d", p1.Load(1), p1.Load(2))
	}
}
