package ctrl

import (
	"fmt"
	"sort"
)

// Node is one placement target: a block server and the failure domain
// (rack) it lives in.
type Node struct {
	Addr   uint32
	Domain string
}

// Placer chooses segment placements that spread replacement-unit risk:
// within one placement call segments land in as many distinct failure
// domains as possible, and across calls the least-loaded nodes fill first.
// All choices walk a sorted node list, so placement is a pure function of
// the call history.
type Placer struct {
	nodes []Node
	load  map[uint32]int
	down  map[uint32]bool
}

// NewPlacer builds a placer over the given nodes. The node list is copied
// and sorted by (domain, addr); duplicate addresses are rejected.
func NewPlacer(nodes []Node) (*Placer, error) {
	p := &Placer{
		nodes: append([]Node(nil), nodes...),
		load:  map[uint32]int{},
		down:  map[uint32]bool{},
	}
	sort.Slice(p.nodes, func(i, j int) bool {
		if p.nodes[i].Domain != p.nodes[j].Domain {
			return p.nodes[i].Domain < p.nodes[j].Domain
		}
		return p.nodes[i].Addr < p.nodes[j].Addr
	})
	for i := 1; i < len(p.nodes); i++ {
		if p.nodes[i].Addr == p.nodes[i-1].Addr && p.nodes[i].Domain == p.nodes[i-1].Domain {
			return nil, fmt.Errorf("ctrl: duplicate placement node %d", p.nodes[i].Addr)
		}
	}
	seen := map[uint32]bool{}
	for _, n := range p.nodes {
		if seen[n.Addr] {
			return nil, fmt.Errorf("ctrl: node %d listed in two domains", n.Addr)
		}
		seen[n.Addr] = true
	}
	return p, nil
}

// Place returns addresses for n segments. Each pick minimizes, in order:
// how often this placement already used the node's domain, the node's
// global segment load, then (domain, addr) as the deterministic tiebreak.
// Placed segments are charged to the node's load; Release returns them.
func (p *Placer) Place(n int) ([]uint32, error) {
	if n <= 0 {
		return nil, nil
	}
	domUsed := map[string]int{}
	out := make([]uint32, 0, n)
	for k := 0; k < n; k++ {
		best := -1
		for i, node := range p.nodes {
			if p.down[node.Addr] {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := p.nodes[best]
			if domUsed[node.Domain] != domUsed[b.Domain] {
				if domUsed[node.Domain] < domUsed[b.Domain] {
					best = i
				}
				continue
			}
			if p.load[node.Addr] < p.load[b.Addr] {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("ctrl: no placement nodes available (%d requested, %d placed)", n, k)
		}
		chosen := p.nodes[best]
		domUsed[chosen.Domain]++
		p.load[chosen.Addr]++
		out = append(out, chosen.Addr)
	}
	return out, nil
}

// Charge records one segment landing on a node outside Place — a
// migration whose target the caller chose directly.
func (p *Placer) Charge(addr uint32) { p.load[addr]++ }

// Release returns segment load previously charged by Place (volume
// deletion).
func (p *Placer) Release(addrs []uint32) {
	for _, a := range addrs {
		if p.load[a] > 0 {
			p.load[a]--
		}
	}
}

// SetDown marks a node unavailable for future placements (a planned drain
// or an unplanned degradation). Existing load is untouched; migration
// moves it explicitly.
func (p *Placer) SetDown(addr uint32, down bool) {
	if down {
		p.down[addr] = true
		return
	}
	delete(p.down, addr)
}

// Down reports whether a node is excluded from placement.
func (p *Placer) Down(addr uint32) bool { return p.down[addr] }

// Load returns a node's current segment count.
func (p *Placer) Load(addr uint32) int { return p.load[addr] }

// Nodes returns the placement targets in their sorted order.
func (p *Placer) Nodes() []Node { return append([]Node(nil), p.nodes...) }
