// Package ctrl implements the volume control plane's bookkeeping core: the
// volume lifecycle state machine, the idempotent request cache, failure-
// domain-aware segment placement, and the tenant QoS registry. It is pure
// deterministic metadata — no engine, no randomness, no map iteration — so
// a management workload replays identically at any worker count; the ebs
// package wires it to a live cluster (segment tables, agents, migration).
package ctrl

import "fmt"

// State is one volume's lifecycle state. Volumes are Available between
// operations; mutating operations move them through a transient busy state
// and exactly one op may hold a volume busy at a time — the property the
// machine enforces. Deleted volumes stay as tombstones so replayed
// requests resolve instead of dangling.
type State uint8

const (
	StateAvailable State = iota
	StateResizing
	StateSnapshotting
	StateMigrating
	StateDeleting
	StateDeleted
)

// String returns the state's wire name.
func (s State) String() string {
	switch s {
	case StateAvailable:
		return "available"
	case StateResizing:
		return "resizing"
	case StateSnapshotting:
		return "snapshotting"
	case StateMigrating:
		return "migrating"
	case StateDeleting:
		return "deleting"
	case StateDeleted:
		return "deleted"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Volume is one virtual disk's control-plane record.
type Volume struct {
	ID        uint32
	Tenant    string
	SizeBytes uint64
	State     State
}

// Snapshot is a point-in-time metadata capture of a volume: enough to
// clone from. Block data is shared copy-on-write in production; the model
// keeps snapshots metadata-only.
type Snapshot struct {
	ID        uint32
	Source    uint32
	SizeBytes uint64
}
