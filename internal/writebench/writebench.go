// Package writebench is the shared harness behind BenchmarkWritePath4K and
// ebsbench's -bench-out report: a minimal two-host Solar write path (DPU
// client on one host, storage-server stack on the other, a no-op block
// service) that isolates the per-block data path the zero-copy work targets
// — SA ingress, one-touch CRC, scatter-gather framing, fabric transit, and
// receive-side materialisation — from replication and store costs.
//
// The harness deliberately allocates nothing per write in steady state:
// the request message, payload buffer and completion callback are all owned
// by the Rig, so testing.AllocsPerRun and pool-miss deltas measure the
// stack, not the driver.
package writebench

import (
	"fmt"
	"time"

	"lunasolar/internal/core"
	"lunasolar/internal/dpu"
	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// Rig is a two-host cluster driving 4 KiB writes client → server.
type Rig struct {
	Eng    *sim.Engine
	Pool   *simnet.PacketPool
	client *core.Stack
	dst    uint32

	payload   []byte
	msg       transport.Message
	onDone    func(*transport.Response)
	completed int
	issued    int
}

var emptyResp transport.Response

// NewRig builds the two-host write path. The client runs the full Offloaded
// (Solar) mode — FPGA CRC engine, per-block framing — against a
// storage-server stack whose handler acknowledges immediately.
func NewRig(seed int64) *Rig {
	eng := sim.NewEngine(seed)
	cfg := simnet.DefaultConfig()
	cfg.RacksPerPod = 2
	cfg.HostsPerRack = 2
	cfg.SpinesPerPod = 2
	cfg.CoresPerDC = 2
	fab := simnet.New(eng, cfg)

	dcfg := dpu.DefaultConfig()
	dcfg.Faults = dpu.FaultRates{}
	card := dpu.New(eng, dcfg)

	cp := core.DefaultParams()
	cp.Mode = core.Offloaded
	client := core.New(eng, fab.Host(0, 0, 0, 0), card.CPU, card, cp)
	server := core.New(eng, fab.Host(0, 1, 0, 0), sim.NewServer(eng, "storage-cpu", 16), nil, core.ServerParams())
	server.SetHandler(func(src uint32, req *transport.Message, reply func(*transport.Response)) {
		reply(&emptyResp)
	})

	r := &Rig{Eng: eng, Pool: fab.Pool(), client: client, dst: server.LocalAddr()}
	r.payload = make([]byte, wire.BlockSize)
	for i := range r.payload {
		r.payload[i] = byte(i * 13)
	}
	r.msg = transport.Message{Op: wire.RPCWriteReq, VDisk: 1, SegmentID: 1, Gen: 1, Data: r.payload}
	r.onDone = func(*transport.Response) { r.completed++ }
	return r
}

// WriteOne issues a single 4 KiB write and runs the engine until the
// cluster is idle (the write acknowledged, every timer drained).
func (r *Rig) WriteOne() {
	r.issued++
	r.msg.LBA = uint64(r.issued%4096) << 12
	r.client.Call(r.dst, &r.msg, r.onDone)
	r.Eng.Run()
}

// Check verifies every issued write completed and no pooled packet or slab
// reference leaked; it returns an error describing the first violation.
func (r *Rig) Check() error {
	if r.completed != r.issued {
		return fmt.Errorf("writebench: %d of %d writes completed", r.completed, r.issued)
	}
	if n := r.Pool.Outstanding(); n != 0 {
		return fmt.Errorf("writebench: %d pooled packets/slab refs leaked", n)
	}
	return nil
}

// Stats is a snapshot of the rig's data-path counters.
type Stats struct {
	Copies      uint64 // payload memcpys on the network data path
	CopiedBytes uint64 // payload bytes those memcpys moved
	PoolMisses  uint64 // fresh pool allocations (packets, buffers, slab headers)
	Events      uint64 // engine events processed
	SimTime     time.Duration
}

// Snapshot captures the current counter values; subtract two snapshots to
// attribute work to a window.
func (r *Rig) Snapshot() Stats {
	return Stats{
		Copies:      r.Pool.Copies(),
		CopiedBytes: r.Pool.CopiedBytes(),
		PoolMisses:  r.Pool.News(),
		Events:      r.Eng.Processed(),
		SimTime:     r.Eng.Now().Duration(),
	}
}

// Delta returns the counter movement since an earlier snapshot.
func (s Stats) Delta(from Stats) Stats {
	return Stats{
		Copies:      s.Copies - from.Copies,
		CopiedBytes: s.CopiedBytes - from.CopiedBytes,
		PoolMisses:  s.PoolMisses - from.PoolMisses,
		Events:      s.Events - from.Events,
		SimTime:     s.SimTime - from.SimTime,
	}
}
