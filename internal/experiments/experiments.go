// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a function returning a structured result
// with a Format method that prints the same rows/series the paper reports;
// cmd/ebsbench and the repository benchmarks are thin wrappers around this
// package.
//
// Absolute numbers come from the simulated substrate, so they are not the
// authors' testbed numbers; the shapes — who wins, by what factor, where
// the crossovers fall — are the reproduction target. EXPERIMENTS.md records
// paper-vs-measured for every row.
package experiments

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lunasolar/ebs"
	"lunasolar/internal/sim"
	"lunasolar/internal/sim/runtime"
	"lunasolar/internal/simnet"
	"lunasolar/internal/stats"
)

// Options tunes experiment scale. Quick reduces sample counts and cluster
// sizes so the full suite runs in seconds (used by tests and -short
// benches); the defaults match the numbers reported in EXPERIMENTS.md.
type Options struct {
	Seed  int64
	Quick bool
	// Workers bounds the shard pool used to run independent cluster cells
	// in parallel. 0 uses GOMAXPROCS; 1 forces the serial order (for
	// determinism regression tests). Results are merged in shard order, so
	// the output is identical for every Workers value.
	Workers int
	// CoupledWorkers bounds the goroutines driving the partitions of a
	// coupled (single-fabric, conservatively time-synchronized) experiment.
	// 0 uses GOMAXPROCS; 1 forces serial window execution. The partition
	// count is fixed by each coupled experiment's scenario, so the output is
	// byte-identical for every CoupledWorkers value — the property the
	// coupled differential gate checks.
	CoupledWorkers int
	// Telemetry, when set, has experiments that support it export each
	// cluster's observability state (per-component latency histograms,
	// per-switch counters, per-path INT summaries) into Table.Telemetry,
	// merged in shard order under per-cell prefixes. It does not flip the
	// simnet telemetry hatch — callers that want INT counters populated must
	// also call simnet.SetTelemetry(true); the formatted table is identical
	// either way.
	Telemetry bool
	// Fidelity selects the simulation fidelity of experiments that support
	// hybrid fast-forward (currently Diurnal). The zero value is full
	// packet fidelity; ebs.FidelityHybrid fluid-fast-forwards quiescent
	// bulk flows (see internal/simnet/flow.go).
	Fidelity ebs.Fidelity
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{Seed: 1} }

// fleet returns a fresh share-nothing fleet for one experiment; its Perf is
// attached to the experiment's Table so callers can report simulator
// throughput next to the simulated results.
func (o Options) fleet() *runtime.Fleet {
	return &runtime.Fleet{Runner: runtime.Runner{Workers: o.Workers}}
}

func (o Options) scale(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// runCells runs one share-nothing cluster cell per shard. Each job returns
// its result plus the cluster it drove; the helper folds the cluster's
// engine counters and packet-leak count (Cluster.Leaked) into the fleet's
// Perf, so cmd/ebsbench can assert that every experiment returned all
// pooled packets.
func runCells[T any](f *runtime.Fleet, n int, job func(shard int) (T, *ebs.Cluster)) []T {
	return runtime.Run(f, n, func(shard int) (T, *sim.Engine) {
		v, c := job(shard)
		if c.Leaked() > 0 {
			// Post-mortem for the leak gate: if the cluster carries flight
			// recorders, their last-N anomalous events point at the stack
			// that lost the packet.
			c.DumpFlightRecorders(os.Stderr)
		}
		f.Perf.ObserveLeaked(c.Leaked())
		return v, c.Eng
	})
}

// runFabricCells is runCells for experiments that drive a raw fabric
// without an ebs.Cluster (the stack microbenchmarks). The same rule
// applies: a drained engine must have zero packets outstanding; a shard
// stopped mid-run (RunFor with traffic in flight) is exempt.
func runFabricCells[T any](f *runtime.Fleet, n int, job func(shard int) (T, *sim.Engine, *simnet.Fabric)) []T {
	return runtime.Run(f, n, func(shard int) (T, *sim.Engine) {
		v, eng, fab := job(shard)
		if eng.Pending() == 0 {
			f.Perf.ObserveLeaked(int(fab.Pool().Outstanding()))
		}
		return v, eng
	})
}

// Table is a generic formatted result: a title, column headers, and rows.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// Perf, when set, carries the fleet's simulator-throughput counters for
	// the runs behind this table (events/sec, simulated time per wall time).
	Perf *runtime.Perf

	// Telemetry, when the experiment ran with Options.Telemetry, holds the
	// merged observability registry of every cluster the experiment drove,
	// with per-cell prefixes (e.g. "fig6/solar/lat/write/e2e"). Nil
	// otherwise. It is deliberately not part of Format: the formatted table
	// is byte-identical with telemetry on or off.
	Telemetry *stats.Registry
}

// PerfSummary renders the fleet throughput line, or "" when the experiment
// ran no simulation shards.
func (t *Table) PerfSummary() string {
	if t.Perf == nil || t.Perf.Shards() == 0 {
		return ""
	}
	return fmt.Sprintf("%d shards, %.2fM events/sec, %.0f sim-µs per wall-ms",
		t.Perf.Shards(), t.Perf.EventsPerSec()/1e6, t.Perf.SimMicrosPerWallMs())
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Metric is one machine-readable result row, emitted by the CLI's -json
// mode: the experiment id, a metric path built from the row's label cells,
// the numeric value, the column header as its unit, and the seed that
// produced it.
type Metric struct {
	Exp    string  `json:"exp"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
	Seed   int64   `json:"seed"`
}

// Metrics flattens the table into metric rows: every numeric cell becomes
// one row, named by the row's non-numeric label cells plus the column
// header. Non-numeric cells (labels, "-", compound values) are skipped.
func (t *Table) Metrics(exp string, seed int64) []Metric {
	var out []Metric
	for _, row := range t.Rows {
		var labels []string
		for i, cell := range row {
			if i >= len(t.Columns) {
				break
			}
			if _, err := strconv.ParseFloat(strings.TrimSpace(cell), 64); err != nil {
				labels = append(labels, strings.TrimSpace(cell))
			}
		}
		name := strings.Join(labels, "/")
		for i, cell := range row {
			if i >= len(t.Columns) {
				break
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				continue
			}
			metric := t.Columns[i]
			if name != "" {
				metric = name + "/" + t.Columns[i]
			}
			out = append(out, Metric{Exp: exp, Metric: metric, Value: v, Unit: t.Columns[i], Seed: seed})
		}
	}
	return out
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
