// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a function returning a structured result
// with a Format method that prints the same rows/series the paper reports;
// cmd/ebsbench and the repository benchmarks are thin wrappers around this
// package.
//
// Absolute numbers come from the simulated substrate, so they are not the
// authors' testbed numbers; the shapes — who wins, by what factor, where
// the crossovers fall — are the reproduction target. EXPERIMENTS.md records
// paper-vs-measured for every row.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Options tunes experiment scale. Quick reduces sample counts and cluster
// sizes so the full suite runs in seconds (used by tests and -short
// benches); the defaults match the numbers reported in EXPERIMENTS.md.
type Options struct {
	Seed  int64
	Quick bool
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{Seed: 1} }

func (o Options) scale(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Table is a generic formatted result: a title, column headers, and rows.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
