package experiments

import (
	"fmt"
	"time"

	"lunasolar/ebs"
	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/stats"
	"lunasolar/internal/tcpstack"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// table1Era describes one row-group of Table 1.
type table1Era struct {
	name        string
	linkBps     float64 // per host NIC port (×2 ports)
	stressBps   float64 // offered load
	kernelCores int     // cores granted for the stress test
	lunaCores   int
	cpuScale    float64 // CPU generation factor (the 100GE testbed is newer)
}

// Table1 regenerates the FN RPC latency / CPU table: kernel vs Luna, single
// 4 KiB RPC and a stress test approaching line rate, on 2×25GE and 2×100GE.
func Table1(opts Options) *Table {
	eras := []table1Era{
		{"2x25GE", 25e9, 50e9, 4, 1, 1.0},
		{"2x100GE", 100e9, 200e9, 12, 4, 0.62},
	}
	t := &Table{
		Title:   "Table 1: FN RPC latency and CPU under different load",
		Columns: []string{"setup", "test", "stack", "avg RPC µs", "achieved Gbps", "consumed cores"},
	}
	type cell struct {
		era    table1Era
		stack  string
		stress bool
	}
	var cells []cell
	for _, era := range eras {
		for _, stress := range []bool{false, true} {
			for _, stack := range []string{"kernel", "luna"} {
				cells = append(cells, cell{era, stack, stress})
			}
		}
	}
	fleet := opts.fleet()
	t.Rows = runFabricCells(fleet, len(cells), func(shard int) ([]string, *sim.Engine, *simnet.Fabric) {
		cl := cells[shard]
		lat, gbps, cores, eng, fab := runRPC(opts, cl.era, cl.stack, cl.stress)
		if !cl.stress {
			return []string{cl.era.name, "single 4KB RPC", cl.stack, us(lat), "-", f1(cores)}, eng, fab
		}
		return []string{cl.era.name,
			fmt.Sprintf("%.0f Gbps stress", cl.era.stressBps/1e9), cl.stack, us(lat), f1(gbps), f1(cores)}, eng, fab
	})
	t.Perf = &fleet.Perf
	t.Notes = append(t.Notes,
		"paper 2x25GE: single 70.1/13.1 µs; stress 1782 µs@4 cores vs 900 µs@1 core",
		"paper 2x100GE: single 43.4/12.4 µs; stress 2923 µs@12 cores vs 465 µs@4 cores")
	return t
}

// scaleTCP multiplies every CPU/latency cost by f (CPU-generation knob).
func scaleTCP(p tcpstack.Params, f float64) tcpstack.Params {
	mul := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	p.PerRPCTxCPU = mul(p.PerRPCTxCPU)
	p.PerRPCRxCPU = mul(p.PerRPCRxCPU)
	p.PerPktTxCPU = mul(p.PerPktTxCPU)
	p.PerPktRxCPU = mul(p.PerPktRxCPU)
	p.CopyPer4K = mul(p.CopyPer4K)
	p.PerRPCTxDelay = mul(p.PerRPCTxDelay)
	p.PerRPCRxDelay = mul(p.PerRPCRxDelay)
	return p
}

// runRPC runs one Table 1 cell: a pure RPC echo test between two hosts in
// different pods (no storage involvement — Table 1 measures the stack).
func runRPC(opts Options, era table1Era, stack string, stress bool) (avgLat time.Duration, gbps, cores float64, eng *sim.Engine, fab *simnet.Fabric) {
	var params tcpstack.Params
	if stack == "kernel" {
		params = scaleTCP(ebs.KernelStackParams(), era.cpuScale)
	} else {
		params = scaleTCP(ebs.LunaStackParams(), era.cpuScale)
	}
	nCores := 1
	if stress {
		if stack == "kernel" {
			nCores = era.kernelCores
		} else {
			nCores = era.lunaCores
		}
		return runRPCWith(opts, era, params, nCores)
	}
	return runRPCSingle(opts, era, params)
}

// runRPCSingle measures sequential single-RPC latency.
func runRPCSingle(opts Options, era table1Era, params tcpstack.Params) (avgLat time.Duration, gbps, cores float64, _ *sim.Engine, _ *simnet.Fabric) {
	eng := sim.NewEngine(opts.Seed)
	fcfg := simnet.DefaultConfig()
	fcfg.RacksPerPod = 2
	fcfg.HostsPerRack = 4
	fcfg.SpinesPerPod = 2
	fcfg.CoresPerDC = 2
	fcfg.HostLinkBps = era.linkBps
	// Table 1 is a controlled two-endpoint test, not a production incast:
	// deep buffers as on the testbed's dedicated path.
	fcfg.BufferBytes = 8 << 20
	fcfg.ECNThresholdBytes = 100 << 10
	fab := simnet.New(eng, fcfg)

	clientCores := sim.NewServer(eng, "client", 1)
	client := tcpstack.New(eng, fab.Host(0, 0, 0, 0), clientCores, nil, params)
	// Several server peers: production SAs hold one connection per block
	// server, and a single 5-tuple can use only one bonded NIC port.
	var serverAddrs []uint32
	for i := 0; i < 8; i++ {
		serverCores := sim.NewServer(eng, fmt.Sprintf("server%d", i), 16)
		server := tcpstack.New(eng, fab.Host(0, 1, i/4, i%4), serverCores, nil, params)
		server.SetHandler(func(src uint32, req *transport.Message, reply func(*transport.Response)) {
			reply(&transport.Response{Data: make([]byte, 64)})
		})
		serverAddrs = append(serverAddrs, server.LocalAddr())
	}

	payload := make([]byte, 4096)
	h := stats.NewHistogram()
	n := opts.scale(400, 100)
	done := 0
	var next func()
	next = func() {
		start := eng.Now()
		client.Call(serverAddrs[0], &transport.Message{Op: wire.RPCWriteReq, Data: payload},
			func(*transport.Response) {
				h.Record(eng.Now().Sub(start))
				done++
				if done < n {
					next()
				}
			})
	}
	next()
	eng.Run()
	return h.Mean(), 0, 1, eng, fab
}

// runRPCWith runs the stress cell with explicit stack parameters and core
// count (shared with the share-nothing ablation).
func runRPCWith(opts Options, era table1Era, params tcpstack.Params, nCores int) (avgLat time.Duration, gbps, cores float64, _ *sim.Engine, _ *simnet.Fabric) {
	eng := sim.NewEngine(opts.Seed)
	fcfg := simnet.DefaultConfig()
	fcfg.RacksPerPod = 2
	fcfg.HostsPerRack = 4
	fcfg.SpinesPerPod = 2
	fcfg.CoresPerDC = 2
	fcfg.HostLinkBps = era.linkBps
	fcfg.BufferBytes = 8 << 20
	fcfg.ECNThresholdBytes = 100 << 10
	fab := simnet.New(eng, fcfg)

	clientCores := sim.NewServer(eng, "client", nCores)
	client := tcpstack.New(eng, fab.Host(0, 0, 0, 0), clientCores, nil, params)
	var serverAddrs []uint32
	for i := 0; i < 8; i++ {
		serverCores := sim.NewServer(eng, fmt.Sprintf("server%d", i), 16)
		server := tcpstack.New(eng, fab.Host(0, 1, i/4, i%4), serverCores, nil, params)
		server.SetHandler(func(src uint32, req *transport.Message, reply func(*transport.Response)) {
			reply(&transport.Response{Data: make([]byte, 64)})
		})
		serverAddrs = append(serverAddrs, server.LocalAddr())
	}
	payload := make([]byte, 4096)
	h := stats.NewHistogram()

	// Stress: a closed loop whose concurrency corresponds to the offered
	// line-rate load with generous socket buffering.
	concurrency := opts.scale(1280, 160)
	window := time.Duration(opts.scale(80, 8)) * time.Millisecond
	warmup := 10 * time.Millisecond

	var bytesDone uint64
	measuring := false
	nextSrv := 0
	var issue func()
	issue = func() {
		start := eng.Now()
		dst := serverAddrs[nextSrv%len(serverAddrs)]
		nextSrv++
		client.Call(dst, &transport.Message{Op: wire.RPCWriteReq, Data: payload},
			func(*transport.Response) {
				if measuring {
					h.Record(eng.Now().Sub(start))
					bytesDone += 4096
				}
				issue()
			})
	}
	for i := 0; i < concurrency; i++ {
		issue()
	}
	eng.RunFor(warmup)
	measuring = true
	clientCores.ResetStats()
	eng.RunFor(window)
	util := clientCores.Utilization()
	gbps = float64(bytesDone) * 8 / window.Seconds() / 1e9
	return h.Mean(), gbps, util, eng, fab
}
