package experiments

import (
	"encoding/json"
	"testing"
)

// renderAll flattens a table into everything the differential gate
// compares: the formatted text (Perf is deliberately outside Format) plus
// every machine-readable metric row.
func renderAll(t *testing.T, tab *Table, exp string, seed int64) string {
	t.Helper()
	out := tab.Format()
	for _, m := range tab.Metrics(exp, seed) {
		row, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out += string(row) + "\n"
	}
	return out
}

// TestCoupledDifferential is the tentpole gate: a partitioned cluster
// driven by many workers must produce byte-identical output — formatted
// table and metric rows — to the same partitions driven serially, and
// every partition's packet pool must balance to zero.
func TestCoupledDifferential(t *testing.T) {
	exps := []struct {
		id string
		fn func(Options) *Table
	}{
		{"coupled", CoupledStorm},
		{"coupledfail", CoupledFailover},
	}
	for _, e := range exps {
		e := e
		t.Run(e.id, func(t *testing.T) {
			var want string
			for _, workers := range []int{1, 2, 4} {
				opts := Options{Seed: 1, Quick: true, CoupledWorkers: workers}
				tab := e.fn(opts)
				if leaked := tab.Perf.Leaked(); leaked != 0 {
					t.Fatalf("workers=%d: %d pooled packets leaked", workers, leaked)
				}
				got := renderAll(t, tab, e.id, opts.Seed)
				if workers == 1 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("workers=%d output differs from serial run:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
						workers, want, workers, got)
				}
			}
		})
	}
}

// TestCoupledSeedSensitivity guards against a degenerate determinism "fix"
// that would make the output independent of the scenario: different seeds
// must still produce different storms.
func TestCoupledSeedSensitivity(t *testing.T) {
	a := CoupledStorm(Options{Seed: 1, Quick: true, CoupledWorkers: 2})
	b := CoupledStorm(Options{Seed: 2, Quick: true, CoupledWorkers: 2})
	if a.Format() == b.Format() {
		t.Fatal("seeds 1 and 2 produced identical storms; per-disk streams are not seeded")
	}
}
