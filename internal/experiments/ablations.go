package experiments

import (
	"fmt"
	"time"

	"lunasolar/ebs"
	"lunasolar/internal/core"
	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/stats"
)

// Ablations exercises the design choices DESIGN.md calls out, one knob at a
// time on an otherwise-default Solar cluster:
//
//  1. Multipath and source-port failover under a spine blackhole — the
//     fast-recovery mechanism of §4.5 and Table 2.
//  2. CRC strategy: software aggregation (one XOR per block) vs a full
//     software CRC per block on the DPU CPU — the integrity/CPU tradeoff
//     of §4.5's "Hardware errors v.s. data integrity".
//  3. Addr-table capacity: the hardware-state scaling knob behind the
//     one-block-one-packet design's "few maintained states" claim.
func Ablations(opts Options) *Table {
	t := &Table{
		Title:   "Ablations: Solar design choices",
		Columns: []string{"study", "variant", "metric", "value"},
	}

	// Eleven independent cells across four studies, each owning its cluster;
	// one share-nothing shard per cell, merged in study order.
	pathVariants := []struct {
		label    string
		paths    int
		failover bool
	}{
		{"1 path, failover off", 1, false},
		{"4 paths, failover off", 4, false},
		{"1 path, failover on", 1, true},
		{"4 paths, failover on", 4, true},
	}
	var cells []func() ([]string, *sim.Engine, *simnet.Fabric)
	for _, v := range pathVariants {
		v := v
		cells = append(cells, func() ([]string, *sim.Engine, *simnet.Fabric) {
			slow, p99, c := ablatePaths(opts, v.paths, v.failover)
			return []string{
				"multipath under blackhole", v.label,
				"IOs >=1s / write p99 µs", fmt.Sprintf("%d / %s", slow, us(p99)),
			}, c.Eng, c.Fabric
		})
	}
	for _, full := range []bool{false, true} {
		full := full
		cells = append(cells, func() ([]string, *sim.Engine, *simnet.Fabric) {
			label := "aggregation (XOR/block)"
			if full {
				label = "full software CRC/block"
			}
			iops, c := ablateCRC(opts, full)
			return []string{"integrity check on CPU", label, "4K write IOPS @1 core", f0(iops)}, c.Eng, c.Fabric
		})
	}
	for _, locked := range []bool{false, true} {
		locked := locked
		cells = append(cells, func() ([]string, *sim.Engine, *simnet.Fabric) {
			label := "share-nothing (Luna)"
			if locked {
				label = "locked shared stack"
			}
			gbps, cores, eng, fab := ablateShareNothing(opts, locked)
			return []string{
				"thread arrangement @4 cores", label,
				"stress Gbps / consumed cores", fmt.Sprintf("%s / %s", f1(gbps), f1(cores)),
			}, eng, fab
		})
	}
	for _, entries := range []int{64, 512, 20000} {
		entries := entries
		cells = append(cells, func() ([]string, *sim.Engine, *simnet.Fabric) {
			wait, c := ablateAddr(opts, entries)
			return []string{
				"Addr table capacity", fmt.Sprintf("%d entries", entries),
				"read admission wait (total ms)", f1(float64(wait.Milliseconds())),
			}, c.Eng, c.Fabric
		})
	}

	fleet := opts.fleet()
	t.Rows = runFabricCells(fleet, len(cells), func(shard int) ([]string, *sim.Engine, *simnet.Fabric) {
		return cells[shard]()
	})
	t.Perf = &fleet.Perf

	t.Notes = append(t.Notes,
		"without source-port failover a blackholed path hangs I/Os forever; with it even one path recovers (a fresh port re-hashes)",
		"a small Addr table backpressures reads instead of dropping them — scalability knob of §4.4")
	return t
}

// ablatePaths measures slow I/Os and write p99 with the given path count
// and failover setting while both spines silently blackhole 25% of flows.
func ablatePaths(opts Options, paths int, failover bool) (slow int, p99 time.Duration, _ *ebs.Cluster) {
	cfg := clusterConfig(ebs.Solar, opts.Seed)
	p := ebs.SolarStackParams(ebs.Solar, false)
	p.NumPaths = paths
	if !failover {
		p.PathFailThreshold = 1 << 30 // never declare a path dead
	}
	cfg.SolarOverride = &p
	c := ebs.New(cfg)
	var vds []*ebs.VDisk
	for i := 0; i < 4; i++ {
		vds = append(vds, c.MustProvision(i, 64<<20, ebs.DefaultQoS()))
	}
	h := stats.NewHistogram()
	r := sim.NewRand(opts.Seed + 17)
	stopped := false
	pending := map[int]sim.Time{}
	next := 0
	for _, vd := range vds {
		vd := vd
		var issue func()
		issue = func() {
			if stopped {
				return
			}
			id := next
			next++
			start := c.Eng.Now()
			pending[id] = start
			lba := uint64(r.Int63n(int64(vd.Size()-4096))) &^ 4095
			vd.Write(lba, make([]byte, 4096), func(ebs.IOResult) {
				delete(pending, id)
				d := c.Eng.Now().Sub(start)
				h.Record(d)
				if d >= time.Second {
					slow++
				}
				c.Eng.Schedule(2*time.Millisecond, issue)
			})
		}
		issue()
	}
	c.RunFor(100 * time.Millisecond)
	c.Fabric.Spine(0, 0, 0).SetBlackhole(0.25, 777)
	c.Fabric.Spine(0, 0, 1).SetBlackhole(0.25, 777)
	c.RunFor(time.Duration(opts.scale(3000, 1500)) * time.Millisecond)
	stopped = true
	for _, started := range pending {
		if c.Eng.Now().Sub(started) >= time.Second {
			slow++
		}
	}
	return slow, h.P99(), c
}

// ablateShareNothing runs the Table 1-style 50 Gbps stress with 4 cores,
// with and without Luna's lock-free share-nothing thread arrangement
// (§3.2): the locked variant pays contention per packet per extra core.
func ablateShareNothing(opts Options, locked bool) (gbps, cores float64, eng *sim.Engine, fab *simnet.Fabric) {
	era := table1Era{"2x25GE", 25e9, 50e9, 4, 4, 1.0}
	params := ebs.LunaStackParams()
	if locked {
		params.LockPenalty = 150 * time.Nanosecond
	}
	_, gbps, cores, eng, fab = runRPCWith(opts, era, params, 4)
	return gbps, cores, eng, fab
}

// ablateCRC measures sustainable 4K write IOPS on one DPU core with the
// aggregation strategy vs a full software CRC per block.
func ablateCRC(opts Options, fullCRC bool) (float64, *ebs.Cluster) {
	cfg := clusterConfig(ebs.Solar, opts.Seed)
	cfg.DPU.CPUCores = 1
	cfg.ComputeServers = 1
	p := ebs.SolarStackParams(ebs.Solar, false)
	if fullCRC {
		p.AggXORPer4K = p.SoftCRCPer4K // CPU checksums every block fully
	}
	cfg.SolarOverride = &p
	c := ebs.New(cfg)
	vd := c.MustProvision(0, 128<<20, ebs.DefaultQoS())
	done := 0
	for s := 0; s < 32; s++ {
		lba := uint64(s) << 14
		var issue func()
		issue = func() {
			vd.Write(lba, make([]byte, 4096), func(ebs.IOResult) {
				done++
				issue()
			})
		}
		issue()
	}
	window := time.Duration(opts.scale(60, 20)) * time.Millisecond
	c.RunFor(5 * time.Millisecond)
	base := done
	c.RunFor(window)
	return float64(done-base) / window.Seconds(), c
}

// ablateAddr measures total Addr-table admission wait with depth-64 reads
// of 64 KiB against the given table capacity.
func ablateAddr(opts Options, entries int) (time.Duration, *ebs.Cluster) {
	cfg := clusterConfig(ebs.Solar, opts.Seed)
	cfg.ComputeServers = 1
	cfg.DPU.MaxAddrEntries = entries
	c := ebs.New(cfg)
	vd := c.MustProvision(0, 128<<20, ebs.DefaultQoS())
	for off := uint64(0); off < 8<<20; off += 512 << 10 {
		vd.Write(off, make([]byte, 512<<10), nil)
	}
	c.Run()
	done := 0
	r := sim.NewRand(opts.Seed + 23)
	for s := 0; s < 64; s++ {
		var issue func()
		issue = func() {
			lba := uint64(r.Int63n(8<<20-64<<10)) &^ 4095
			vd.Read(lba, 64<<10, func(ebs.IOResult) {
				done++
				issue()
			})
		}
		issue()
	}
	c.RunFor(time.Duration(opts.scale(40, 15)) * time.Millisecond)
	st, ok := c.Compute(0).Stack.(*core.Stack)
	if !ok {
		panic("ablateAddr: not a solar stack")
	}
	return st.AdmissionWait, c
}
