package experiments

import (
	"fmt"
	"testing"

	"lunasolar/ebs"
	"lunasolar/internal/cc"
)

// TestCCDefaultHatchIdentity is the -cc hatch's in-process gate, the Go
// counterpart of `make cc-diff`: naming the default controller explicitly
// must be byte-identical to leaving the hatch untouched, which pins the
// hatch default to the static RC baseline. It drives the cliff experiment
// — the raw-stack path that honors the process-wide default — so a drifted
// default or broken SetDefaultCC plumbing shows up as output divergence.
//
// The test flips the process-wide controller default, so it does not run
// in parallel with anything else.
//
//lint:gate cc
func TestCCDefaultHatchIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	prev := ebs.DefaultCC()
	defer ebs.SetDefaultCC(prev)
	untouched := RDMACliff(Options{Seed: 7, Quick: true, Workers: 1}).Format()
	ebs.SetDefaultCC(cc.KindStatic)
	explicit := RDMACliff(Options{Seed: 7, Quick: true, Workers: 1}).Format()
	if untouched != explicit {
		t.Fatalf("explicit -cc static diverged from the untouched default\n--- default ---\n%s\n--- static ---\n%s", untouched, explicit)
	}
}

// TestCCMatrixDeterminism gates the CC-matrix experiments the same way
// TestParallelRunDeterminism gates the figures: identical formatted output
// at any worker count. Each (scenario, controller) cell is a share-nothing
// shard, so the pacing timers and CNP exchanges inside one cell must never
// observe scheduling outside it.
func TestCCMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	for _, tc := range []struct {
		name string
		fn   func(Options) *Table
	}{
		{"incast", Incast},
		{"spine-oversub", SpineOversub},
		{"elephantmice", ElephantMice},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serial := tc.fn(Options{Seed: 7, Quick: true, Workers: 1}).Format()
			parallel := tc.fn(Options{Seed: 7, Quick: true, Workers: 4}).Format()
			if serial != parallel {
				t.Fatalf("serial and parallel runs diverged at the same seed\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
		})
	}
}

// TestCCMatrixDistinguishable asserts the controllers actually differ:
// under the identical incast workload and seed, static, DCQCN, and Swift
// must each leave a distinct measurement row. A controller whose row
// matches another's is not reacting (or both fell back to the same code
// path — the bug this test exists to catch).
func TestCCMatrixDistinguishable(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	cells, _ := IncastMatrix(Options{Seed: 7, Quick: true, Workers: 1})
	if len(cells) != 3 {
		t.Fatalf("incast matrix has %d cells, want 3", len(cells))
	}
	rows := map[string]string{}
	for _, c := range cells {
		if c.Ops == 0 {
			t.Fatalf("%s: no completed operations", c.CC)
		}
		if c.MBps <= 0 {
			t.Fatalf("%s: throughput %v, want > 0", c.CC, c.MBps)
		}
		sig := fmt.Sprintf("%v/%v/%v/%v", c.P50us, c.P99us, c.MBps, c.QueueHiWatKiB)
		if prev, dup := rows[sig]; dup {
			t.Fatalf("controllers %s and %s produced identical rows (%s)", prev, c.CC, sig)
		}
		rows[sig] = c.CC
	}
}
