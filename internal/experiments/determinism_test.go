package experiments

import "testing"

// TestParallelRunDeterminism is the share-nothing runtime's regression
// gate: the same experiment at the same seed must produce bit-identical
// formatted output whether its shards run serially or on a parallel worker
// pool. Fig6 exercises histogram merging across per-stack shards; Fig8
// additionally exercises the pre-drawn randomness scheme.
func TestParallelRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	for _, tc := range []struct {
		name string
		fn   func(Options) *Table
	}{
		{"fig6", Fig6},
		{"fig8", Fig8},
		// The control-plane scenarios shard serial clusters per cell; the
		// management traffic must interleave with foreground I/O
		// identically however many workers simulate the cells.
		{"provision-storm", ProvisionStorm},
		{"drain", Drain},
		{"noisyneighbor", NoisyNeighbor},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serial := tc.fn(Options{Seed: 7, Quick: true, Workers: 1}).Format()
			parallel := tc.fn(Options{Seed: 7, Quick: true, Workers: 4}).Format()
			if serial != parallel {
				t.Fatalf("serial and parallel runs diverged at the same seed\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
		})
	}
}
