package experiments

import (
	"fmt"
	"time"

	"lunasolar/ebs"
	"lunasolar/internal/sim"
	"lunasolar/internal/stats"
)

// coupledParts is the partition count of the coupled scenarios. It is part
// of the scenario definition (the partitioning decides which links are cut
// and therefore which frames take the mailbox path), so it stays fixed
// while Options.CoupledWorkers varies — output must be byte-identical for
// every worker count over the same partitions.
const coupledParts = 4

// coupledConfig builds the big-pod Solar cluster the coupled experiments
// partition: one 64-host compute pod and one 64-host storage pod on a
// shared spine/core fabric. PropDelay is raised to 2µs — a long-haul pod
// interconnect — which is also the conservative lookahead, so each
// barrier-to-barrier window is wide enough to keep four partitions busy.
func coupledConfig(opts Options) ebs.Config {
	cfg := ebs.DefaultConfig(ebs.Solar)
	cfg.Fabric.RacksPerPod = 8
	cfg.Fabric.HostsPerRack = 8
	cfg.Fabric.SpinesPerPod = 4
	cfg.Fabric.PropDelay = 2 * time.Microsecond
	cfg.ComputeServers = opts.scale(64, 16)
	cfg.BlockServers = 8
	cfg.ChunkServers = 24
	cfg.CoupledParts = coupledParts
	cfg.CoupledWorkers = opts.CoupledWorkers
	cfg.Seed = opts.Seed
	return cfg
}

// driveStorm starts a closed-loop write storm: every disk keeps depth
// writes of the given size in flight until it has completed perDisk of
// them. Each disk draws offsets from its own stream, and every callback
// runs on the disk's compute-host engine, so the issue order inside each
// partition is independent of how many workers drive the windows.
func driveStorm(opts Options, vds []*ebs.VDisk, perDisk, depth, size int) {
	for di, vd := range vds {
		vd := vd
		r := sim.NewRand(opts.Seed + int64(di)*7919)
		payload := make([]byte, size)
		span := int64(vd.Size() - uint64(size))
		remaining := perDisk
		var issue func()
		issue = func() {
			if remaining == 0 {
				return
			}
			remaining--
			lba := uint64(r.Int63n(span)) &^ 4095
			vd.Write(lba, payload, func(ebs.IOResult) { issue() })
		}
		for s := 0; s < depth; s++ {
			issue()
		}
	}
}

// coupledRow renders the shared result columns of a coupled run: all
// virtual-time quantities, so the row is identical for every worker count.
func coupledRow(label string, c *ebs.Cluster, writes, size int) []string {
	parts, e2e := c.Collector().Breakdown("write", 0.5)
	_, p99 := c.Collector().Breakdown("write", 0.99)
	simMs := float64(c.Now().Nanoseconds()) / 1e6
	mbps := 0.0
	if simMs > 0 {
		mbps = float64(writes) * float64(size) / 1e6 / (simMs / 1e3)
	}
	return []string{
		label,
		fmt.Sprintf("%d", writes),
		us(e2e), us(p99), us(parts[1]), // FN component
		f0(mbps),
	}
}

// CoupledStorm runs the coupled-fabric write storm: one big-pod Solar
// cluster partitioned four ways, every compute pushing 16 KiB writes at
// depth 4 across the cut spine links to the storage pod. It is the
// tentpole scenario for the conservative parallel runner: the same
// partitioned cluster driven by 1..N workers must produce this exact
// table.
func CoupledStorm(opts Options) *Table {
	cfg := coupledConfig(opts)
	perDisk := opts.scale(200, 48)
	const size, depth = 16 << 10, 4

	fleet := opts.fleet()
	c := ebs.New(cfg)
	var vds []*ebs.VDisk
	for ci := 0; ci < c.Computes(); ci++ {
		vds = append(vds, c.MustProvision(ci, 256<<20, ebs.DefaultQoS()))
	}
	driveStorm(opts, vds, perDisk, depth, size)
	fleet.Perf.ObserveCoupledRun(c.Engines(), func() { c.Run() })
	fleet.Perf.ObserveLeaked(c.Leaked())

	writes := perDisk * len(vds)
	t := &Table{
		Title:   "Coupled fabric: big-pod write storm (one Clos, 4 partitions)",
		Columns: []string{"scenario", "writes", "p50 (µs)", "p99 (µs)", "FN p50 (µs)", "MB/s"},
	}
	t.Rows = append(t.Rows, coupledRow("storm 16K d4", c, writes, size))
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d computes + %d storage servers on one fabric, %d partitions, %d cut links, lookahead %v",
			c.Computes(), cfg.BlockServers+cfg.ChunkServers, coupledParts,
			len(c.Fabric.CutPorts())/2, c.Fabric.Lookahead()))
	if opts.Telemetry {
		t.Telemetry = stats.NewRegistry()
		reg := stats.NewRegistry()
		c.ExportMetrics(reg, "")
		t.Telemetry.Merge(reg, "coupled/storm/")
	}
	t.Perf = &fleet.Perf
	return t
}

// CoupledFailover is the storm with a mid-run spine reboot in the storage
// pod: the failure is injected and repaired on the owning partition's
// engine at fixed virtual times, and neighbours on other partitions see it
// through the published barrier snapshots — so recovery behaviour, like
// the healthy storm, is byte-identical for every worker count.
func CoupledFailover(opts Options) *Table {
	cfg := coupledConfig(opts)
	cfg.Fabric.DetectDelay = 500 * time.Microsecond
	perDisk := opts.scale(200, 48)
	const size, depth = 16 << 10, 4

	fleet := opts.fleet()
	c := ebs.New(cfg)
	var vds []*ebs.VDisk
	for ci := 0; ci < c.Computes(); ci++ {
		vds = append(vds, c.MustProvision(ci, 256<<20, ebs.DefaultQoS()))
	}
	driveStorm(opts, vds, perDisk, depth, size)

	// Reboot a storage-pod spine one-third into the expected storm: it hangs
	// (links stay up), neighbours steer around it after DetectDelay, and it
	// comes back mid-run. Scheduled on the spine's own engine so the event
	// lands inside that partition's window regardless of worker count.
	target := c.Fabric.Spine(0, 1, 0)
	target.Engine().Schedule(400*time.Microsecond, func() {
		c.Fabric.RebootSwitch(target, 600*time.Microsecond)
	})

	fleet.Perf.ObserveCoupledRun(c.Engines(), func() { c.Run() })
	fleet.Perf.ObserveLeaked(c.Leaked())

	writes := perDisk * len(vds)
	t := &Table{
		Title:   "Coupled fabric: write storm through a spine reboot",
		Columns: []string{"scenario", "writes", "p50 (µs)", "p99 (µs)", "FN p50 (µs)", "MB/s"},
	}
	t.Rows = append(t.Rows, coupledRow("storm+reboot", c, writes, size))
	t.Rows = append(t.Rows, []string{
		"drops", fmt.Sprintf("%d", c.Fabric.TotalDrops()), "-", "-", "-", "-",
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("spine %s rebooted at 400µs for 600µs, detect delay %v; drops row counts fabric-level losses the stacks recovered",
			target.Name(), cfg.Fabric.DetectDelay))
	if opts.Telemetry {
		t.Telemetry = stats.NewRegistry()
		reg := stats.NewRegistry()
		c.ExportMetrics(reg, "")
		t.Telemetry.Merge(reg, "coupled/failover/")
	}
	t.Perf = &fleet.Perf
	return t
}
