package experiments

import (
	"fmt"
	"time"

	"lunasolar/ebs"
	"lunasolar/internal/rdma"
	"lunasolar/internal/sim"
	"lunasolar/internal/simnet"
	"lunasolar/internal/stats"
	"lunasolar/internal/transport"
	"lunasolar/internal/wire"
)

// RDMACliff regenerates the §3.1 motivation for rejecting RDMA on the
// frontend: "the overall throughput of the RNIC we use went down quickly
// after the number of connections was beyond 5,000". A storage node's RNIC
// holds a QP-context cache; once concurrent client connections exceed it,
// every packet risks a context fetch from host memory. The experiment
// sweeps the number of active client connections across one server whose
// cache is scaled to the testbed (64 contexts for 16–256 connections,
// standing in for 5,000 at fleet scale) and reports per-RPC latency and
// aggregate throughput.
func RDMACliff(opts Options) *Table {
	t := &Table{
		Title:   "RDMA FN rejection (§3.1): throughput vs concurrent connections",
		Columns: []string{"connections", "QP cache", "avg RPC µs", "aggregate kRPC/s", "cache misses/RPC"},
	}
	const cache = 64
	sweep := []int{16, 48, 64, 96, 192}
	fleet := opts.fleet()
	t.Rows = runFabricCells(fleet, len(sweep), func(shard int) ([]string, *sim.Engine, *simnet.Fabric) {
		conns := sweep[shard]
		lat, rate, missFrac, eng, fab := runCliff(opts, conns, cache)
		return []string{
			fmt.Sprintf("%d", conns), fmt.Sprintf("%d", cache),
			us(lat), f1(rate / 1e3), f2(missFrac),
		}, eng, fab
	})
	t.Perf = &fleet.Perf
	t.Notes = append(t.Notes,
		"cache scaled 5000→64 to keep the simulated fleet small; the cliff sits at the cache size either way",
		"paper: RNIC throughput degrades sharply beyond ~5,000 connections — one reason FN chose software (Luna)")
	return t
}

// runCliff drives `conns` clients against one RDMA server with the given
// QP-context cache and measures steady-state behaviour.
func runCliff(opts Options, conns, cache int) (avgLat time.Duration, rps, missFrac float64, _ *sim.Engine, _ *simnet.Fabric) {
	eng := sim.NewEngine(opts.Seed)
	fcfg := simnet.DefaultConfig()
	fcfg.RacksPerPod = 16
	fcfg.HostsPerRack = 16
	fcfg.SpinesPerPod = 4
	fcfg.CoresPerDC = 4
	fab := simnet.New(eng, fcfg)

	params := rdma.DefaultParams()
	params.QPCacheSize = cache
	// Honor ebsbench -cc: the process-wide default controller reaches the
	// raw-stack experiments too, not just ebs.New clusters.
	params.CC = ebs.DefaultCC()

	serverHost := fab.Host(0, 1, 0, 0)
	server := rdma.New(eng, serverHost, sim.NewServer(eng, "srv", 32), nil, params)
	server.SetHandler(func(src uint32, req *transport.Message, reply func(*transport.Response)) {
		reply(&transport.Response{Data: make([]byte, 64)})
	})

	h := stats.NewHistogram()
	var completed uint64
	measuring := false

	payload := make([]byte, 4096)
	for i := 0; i < conns; i++ {
		host := fab.Host(0, 0, i/fcfg.HostsPerRack, i%fcfg.HostsPerRack)
		client := rdma.New(eng, host, sim.NewServer(eng, "cli", 2), nil, params)
		var issue func()
		issue = func() {
			start := eng.Now()
			client.Call(server.LocalAddr(), &transport.Message{Op: wire.RPCWriteReq, Data: payload},
				func(*transport.Response) {
					if measuring {
						h.Record(eng.Now().Sub(start))
						completed++
					}
					issue()
				})
		}
		issue()
	}

	warmup := 5 * time.Millisecond
	window := time.Duration(opts.scale(40, 10)) * time.Millisecond
	eng.RunFor(warmup)
	measuring = true
	missBase := server.CacheMisses
	eng.RunFor(window)

	rps = float64(completed) / window.Seconds()
	if completed > 0 {
		missFrac = float64(server.CacheMisses-missBase) / float64(completed)
	}
	return h.Mean(), rps, missFrac, eng, fab
}
