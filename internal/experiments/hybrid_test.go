package experiments

import (
	"fmt"
	"math"
	"testing"

	"lunasolar/ebs"
)

// withinPct fails unless got is within tol percent of want (both zero is
// equal).
func withinPct(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got == want {
		return
	}
	base := math.Abs(want)
	if base == 0 {
		t.Fatalf("%s: got %v, want 0", name, got)
	}
	if pct := math.Abs(got-want) / base * 100; pct > tol {
		t.Fatalf("%s: hybrid %v vs packet %v (%.3f%% apart, tolerance %.1f%%)", name, got, want, pct, tol)
	}
}

// TestHybridDifferential is the tentpole gate: the diurnal campaign run in
// hybrid fidelity must agree with the packet-fidelity baseline — exactly
// on start, completion and drop counts, and within 1% on completion-time
// quantiles and goodput — while actually fast-forwarding (analytic
// completions, fewer events) and actually demoting (the incast wave is
// engineered to be max-min infeasible in every shard).
//
//lint:gate fidelity
func TestHybridDifferential(t *testing.T) {
	opts := Options{Seed: 1, Quick: true, Workers: 1}
	pkt := DiurnalCampaign(opts, ebs.FidelityPacket)
	hyb := DiurnalCampaign(opts, ebs.FidelityHybrid)

	if l := pkt.Perf.Leaked(); l != 0 {
		t.Fatalf("packet run leaked %d pooled packets", l)
	}
	if l := hyb.Perf.Leaked(); l != 0 {
		t.Fatalf("hybrid run leaked %d pooled packets", l)
	}

	// Exact agreement: counts are integers and both modes must deliver (and
	// lose) the same transfers.
	if hyb.Started != pkt.Started || hyb.Completed != pkt.Completed {
		t.Fatalf("counts differ: hybrid %d/%d started/completed, packet %d/%d",
			hyb.Started, hyb.Completed, pkt.Started, pkt.Completed)
	}
	if hyb.Drops != pkt.Drops {
		t.Fatalf("drops differ: hybrid %d, packet %d", hyb.Drops, pkt.Drops)
	}
	if len(hyb.Phases) != len(pkt.Phases) {
		t.Fatalf("phase count differs: %d vs %d", len(hyb.Phases), len(pkt.Phases))
	}
	for i, hp := range hyb.Phases {
		pp := pkt.Phases[i]
		if hp.Name != pp.Name || hp.Started != pp.Started || hp.Completed != pp.Completed {
			t.Fatalf("phase %q: hybrid %d/%d started/completed, packet %d/%d",
				hp.Name, hp.Started, hp.Completed, pp.Started, pp.Completed)
		}
		withinPct(t, fmt.Sprintf("phase %q p50", hp.Name), hp.P50us, pp.P50us, 1)
		withinPct(t, fmt.Sprintf("phase %q p90", hp.Name), hp.P90us, pp.P90us, 1)
		withinPct(t, fmt.Sprintf("phase %q p99", hp.Name), hp.P99us, pp.P99us, 1)
	}
	withinPct(t, "overall p50", hyb.Overall.P50us, pkt.Overall.P50us, 1)
	withinPct(t, "overall p90", hyb.Overall.P90us, pkt.Overall.P90us, 1)
	withinPct(t, "overall p99", hyb.Overall.P99us, pkt.Overall.P99us, 1)
	withinPct(t, "MB/s", hyb.MBps, pkt.MBps, 1)

	// The hybrid run must have genuinely fast-forwarded, not silently fallen
	// back to packet mode.
	if pkt.Fluid != 0 || pkt.Admitted != 0 || pkt.Demotions != 0 {
		t.Fatalf("packet run reports fluid activity: fluid=%d admitted=%d demotions=%d",
			pkt.Fluid, pkt.Admitted, pkt.Demotions)
	}
	if hyb.Fluid == 0 || hyb.Admitted == 0 {
		t.Fatalf("hybrid run fast-forwarded nothing: fluid=%d admitted=%d", hyb.Fluid, hyb.Admitted)
	}
	// The engineered incast wave demotes once per shard (two shards).
	if hyb.Demotions < 2 {
		t.Fatalf("hybrid demotions = %d, want >= 2 (one incast flush per shard)", hyb.Demotions)
	}
	if hyb.Events*3 >= pkt.Events {
		t.Fatalf("hybrid processed %d events vs packet %d; want at least a 3x reduction", hyb.Events, pkt.Events)
	}
}

// TestHybridWorkerDeterminism checks that the hybrid campaign is
// byte-identical at any shard-worker count: shards are independent and
// merged in shard order, so Workers must not leak into the output.
func TestHybridWorkerDeterminism(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2} {
		opts := Options{Seed: 1, Quick: true, Workers: workers, Fidelity: ebs.FidelityHybrid}
		tab := Diurnal(opts)
		if leaked := tab.Perf.Leaked(); leaked != 0 {
			t.Fatalf("workers=%d: %d pooled packets leaked", workers, leaked)
		}
		got := renderAll(t, tab, "diurnal", opts.Seed)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d output differs from serial run:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestHybridFidelitySensitivity guards against a degenerate differential
// "fix" that would pin the campaign's output regardless of scenario:
// different seeds must still produce different campaigns in hybrid mode.
func TestHybridFidelitySensitivity(t *testing.T) {
	a := DiurnalCampaign(Options{Seed: 1, Quick: true, Workers: 1}, ebs.FidelityHybrid)
	b := DiurnalCampaign(Options{Seed: 2, Quick: true, Workers: 1}, ebs.FidelityHybrid)
	if a.Overall.P50us == b.Overall.P50us && a.Overall.P99us == b.Overall.P99us && a.MBps == b.MBps {
		t.Fatal("seeds 1 and 2 produced identical campaigns; the schedule is not seeded")
	}
}

// TestHybridCCMatrixIdentity runs a CC-matrix scenario with the default
// fidelity flipped to hybrid: ebs clusters carry no bulk flows, so the
// fluid plane must be a pure bystander — formatted table and metric rows
// byte-identical to the packet-fidelity run.
func TestHybridCCMatrixIdentity(t *testing.T) {
	opts := Options{Seed: 1, Quick: true, Workers: 1}
	want := renderAll(t, Incast(opts), "incast", opts.Seed)

	ebs.SetDefaultFidelity(ebs.FidelityHybrid)
	defer ebs.SetDefaultFidelity(ebs.FidelityPacket)
	got := renderAll(t, Incast(opts), "incast", opts.Seed)
	if got != want {
		t.Fatalf("hybrid fidelity perturbed the CC incast matrix:\n--- packet ---\n%s\n--- hybrid ---\n%s", want, got)
	}
}
