package experiments

import (
	"fmt"
	"time"

	"lunasolar/ebs"
)

// quarterMix is the deployment state of the fleet in one quarter: the
// fraction of compute servers on each stack generation. Luna ramped through
// 2019–2020 ("fully deployed 2021 Q1"); Solar ramped from 2020 ("deployed
// ... since 2020", "Solar at scale" by late 2021).
type quarterMix struct {
	label  string
	kernel float64
	luna   float64
	solar  float64
}

func deploymentTimeline() []quarterMix {
	return []quarterMix{
		{"19Q1", 0.95, 0.05, 0},
		{"19Q2", 0.85, 0.15, 0},
		{"19Q3", 0.70, 0.30, 0},
		{"19Q4", 0.52, 0.48, 0},
		{"20Q1", 0.35, 0.65, 0},
		{"20Q2", 0.22, 0.78, 0},
		{"20Q3", 0.12, 0.83, 0.05},
		{"20Q4", 0.05, 0.83, 0.12},
		{"21Q1", 0.00, 0.78, 0.22},
		{"21Q2", 0.00, 0.68, 0.32},
		{"21Q3", 0.00, 0.56, 0.44},
		{"21Q4", 0.00, 0.45, 0.55},
	}
}

// Fig7 regenerates the five-year evolution figure: fleet-average I/O
// latency and per-server IOPS by quarter, computed as the deployment-mix
// weighted combination of each stack's measured capability (latency from a
// Fig. 6-style run; IOPS from a Fig. 14-style saturation run).
func Fig7(opts Options) *Table {
	// Per-stack capability measurements: six independent clusters (latency
	// and IOPS per stack), one share-nothing shard each.
	stacks := []ebs.StackKind{ebs.KernelTCP, ebs.Luna, ebs.Solar}
	fleet := opts.fleet()
	vals := runCells(fleet, 2*len(stacks), func(shard int) (float64, *ebs.Cluster) {
		fn := stacks[shard/2]
		if shard%2 == 0 {
			d, c := measureMeanLatency(opts, fn)
			return float64(d), c
		}
		return measureServerIOPS(opts, fn)
	})
	lat := map[ebs.StackKind]time.Duration{}
	iops := map[ebs.StackKind]float64{}
	for i, fn := range stacks {
		lat[fn] = time.Duration(vals[2*i])
		iops[fn] = vals[2*i+1]
	}

	timeline := deploymentTimeline()
	mixLat := func(q quarterMix) float64 {
		return q.kernel*float64(lat[ebs.KernelTCP]) +
			q.luna*float64(lat[ebs.Luna]) +
			q.solar*float64(lat[ebs.Solar])
	}
	mixIOPS := func(q quarterMix) float64 {
		return q.kernel*iops[ebs.KernelTCP] + q.luna*iops[ebs.Luna] + q.solar*iops[ebs.Solar]
	}
	baseLat := mixLat(timeline[0])
	lastIOPS := mixIOPS(timeline[len(timeline)-1])

	t := &Table{
		Title:   "Figure 7: evolution of average per-server IOPS and latency by quarter",
		Columns: []string{"quarter", "kernel/luna/solar mix", "latency (norm, 19Q1=1)", "IOPS (norm, 21Q4=1)"},
	}
	for _, q := range timeline {
		t.Rows = append(t.Rows, []string{
			q.label,
			fmt.Sprintf("%.0f/%.0f/%.0f%%", q.kernel*100, q.luna*100, q.solar*100),
			f2(mixLat(q) / baseLat),
			f2(mixIOPS(q) / lastIOPS),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured per-stack mean latency: kernel=%v luna=%v solar=%v",
			lat[ebs.KernelTCP].Round(100*time.Nanosecond), lat[ebs.Luna].Round(100*time.Nanosecond), lat[ebs.Solar].Round(100*time.Nanosecond)),
		fmt.Sprintf("measured per-server 4K IOPS: kernel=%.0f luna=%.0f solar=%.0f",
			iops[ebs.KernelTCP], iops[ebs.Luna], iops[ebs.Solar]),
		fmt.Sprintf("end-to-end: latency reduced %.0f%% (paper: 72%%), IOPS grew %.1fx (paper: ~3x)",
			100*(1-mixLat(timeline[len(timeline)-1])/baseLat),
			mixIOPS(timeline[len(timeline)-1])/mixIOPS(timeline[0])))
	t.Perf = &fleet.Perf
	return t
}

// measureMeanLatency runs a light mixed 4 KiB workload and returns the mean
// of read and write average latency.
func measureMeanLatency(opts Options, fn ebs.StackKind) (time.Duration, *ebs.Cluster) {
	c := ebs.New(clusterConfig(fn, opts.Seed))
	var vds []*ebs.VDisk
	for i := 0; i < c.Computes(); i++ {
		vds = append(vds, c.MustProvision(i, 128<<20, ebs.DefaultQoS()))
	}
	driveMixed(c, vds, opts.scale(400, 80), 0.5, 150*time.Microsecond, 4096)
	r := c.Collector().E2E("read").Mean()
	w := c.Collector().E2E("write").Mean()
	return (r + w) / 2, c
}

// measureServerIOPS measures a single server's sustainable 4 KiB read IOPS
// with the era's CPU budget (4 host cores for kernel/Luna, the DPU for
// Solar).
func measureServerIOPS(opts Options, fn ebs.StackKind) (float64, *ebs.Cluster) {
	mbs, c := runFio(opts, fn, 4, 4096)
	return mbs * 1e6 / 4096, c
}
