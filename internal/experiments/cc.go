package experiments

import (
	"fmt"

	"lunasolar/ebs"
	"lunasolar/internal/cc"
	"lunasolar/internal/sa"
	"lunasolar/internal/sim"
	"lunasolar/internal/stats"
)

// The CC-matrix experiments stress the RDMA plane's pluggable congestion
// controllers (static RC baseline, DCQCN, Swift) under identical seeds and
// report the signatures that separate them: completion-time tails,
// aggregate throughput, and the fabric's deepest queue high-water mark.
// One cluster cell per (scenario, controller) — each cell is an
// independent share-nothing shard, so the matrix parallelizes like every
// other experiment while staying byte-identical at any worker count.

// ccKinds is the controller column of every CC-matrix experiment.
var ccKinds = []cc.Kind{cc.KindStatic, cc.KindDCQCN, cc.KindSwift}

// CCCell is one (scenario, controller) measurement — the unit of the
// BENCH_pr7.json CC matrix and of the rendered fig-style tables.
type CCCell struct {
	Scenario      string  `json:"scenario"`
	CC            string  `json:"cc"`
	Ops           int     `json:"ops"`
	P50us         float64 `json:"p50_us"`
	P99us         float64 `json:"p99_us"`
	MBps          float64 `json:"mb_per_s"`
	QueueHiWatKiB float64 `json:"queue_hiwater_kib"`
}

func (c CCCell) row() []string {
	return []string{
		c.CC, fmt.Sprintf("%d", c.Ops),
		f1(c.P50us), f1(c.P99us), f1(c.MBps), f1(c.QueueHiWatKiB),
	}
}

var ccColumns = []string{"cc", "ops", "p50(µs)", "p99(µs)", "MB/s", "maxQ(KiB)"}

// cellStats folds a finished cluster's clock and queue marks into the cell.
func cellStats(cell *CCCell, c *ebs.Cluster, h *stats.Histogram, bytesMoved int) {
	cell.Ops = int(h.Count())
	cell.P50us = float64(h.Median().Nanoseconds()) / 1e3
	cell.P99us = float64(h.P99().Nanoseconds()) / 1e3
	if el := c.Now(); el > 0 {
		cell.MBps = float64(bytesMoved) / el.Seconds() / 1e6
	}
	cell.QueueHiWatKiB = float64(c.Fabric.MaxQueuedBytes()) / 1024
}

// ccIncastCell runs the incast storm for one controller: every block
// server in the storage pod answers reads from a single compute server, so
// the responses fan in on the compute ToR's one downlink — the classic
// storage incast the paper's Solar evolution is built to survive.
func ccIncastCell(opts Options, kind cc.Kind) (CCCell, *ebs.Cluster) {
	cfg := ebs.DefaultConfig(ebs.RDMA)
	cfg.CC = kind
	cfg.Seed = opts.Seed
	cfg.ComputeServers = 1
	cfg.BlockServers = opts.scale(12, 8)
	cfg.ChunkServers = 4
	c := ebs.New(cfg)

	// One segment per block server (Provision stripes round-robin), so
	// stream i's reads are answered by block server i.
	nseg := cfg.BlockServers
	vd := c.MustProvision(0, uint64(nseg)*sa.SegmentBytes, ebs.DefaultQoS())
	const rdSize = 128 << 10
	perStream := opts.scale(40, 10)
	h := stats.NewHistogram()
	total := 0
	var issue func(stream, n int)
	issue = func(stream, n int) {
		if n == 0 {
			return
		}
		lba := uint64(stream) * sa.SegmentBytes
		vd.Read(lba, rdSize, func(res ebs.IOResult) {
			h.Record(res.Latency)
			total += rdSize
			issue(stream, n-1)
		})
	}
	for st := 0; st < nseg; st++ {
		issue(st, perStream) // all streams open at t=0: synchronized fan-in
	}
	c.Run()

	cell := CCCell{Scenario: "incast", CC: kind.String()}
	cellStats(&cell, c, h, total)
	return cell, c
}

// IncastMatrix runs the incast storm across every controller.
func IncastMatrix(opts Options) ([]CCCell, *Table) {
	f := opts.fleet()
	cells := runCells(f, len(ccKinds), func(shard int) (CCCell, *ebs.Cluster) {
		return ccIncastCell(opts, ccKinds[shard])
	})
	t := &Table{
		Title:   "Incast storm: every block server answers one compute (RDMA FN, per-controller)",
		Columns: ccColumns,
		Notes: []string{
			"synchronized 128 KiB read streams, one per block server, closed loop",
			"maxQ = deepest switch output queue across the fabric",
		},
		Perf: &f.Perf,
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, c.row())
	}
	return cells, t
}

// Incast is the ebsbench entry point for the incast storm.
func Incast(opts Options) *Table {
	_, t := IncastMatrix(opts)
	return t
}

// ccWriteStorm drives every provisioned disk with a closed loop of writes
// of size wr, depth outstanding each, count writes per disk, recording
// completion latencies. The payload is reused per disk: the loop is
// closed, so the previous write has fully retired before the next borrows
// the buffer. The returned counter accumulates completed bytes as the
// cluster runs — read it after c.Run(), not before.
func ccWriteStorm(c *ebs.Cluster, vds []*ebs.VDisk, seed int64, wr, depth, count int, h *stats.Histogram) *int {
	total := new(int)
	for di, vd := range vds {
		rng := sim.NewRand(seed + int64(di)*7919)
		buf := make([]byte, wr)
		rng.Read(buf)
		remaining := count
		next := uint64(0)
		vd := vd
		var issue func()
		issue = func() {
			if remaining == 0 {
				return
			}
			remaining--
			lba := next % (sa.SegmentBytes * 2)
			next += uint64(wr)
			vd.Write(lba, buf, func(res ebs.IOResult) {
				h.Record(res.Latency)
				*total += wr
				issue()
			})
		}
		for d := 0; d < depth && d < count; d++ {
			issue()
		}
	}
	return total
}

// ccSpineCell runs the oversubscription sweep for one (controller, spine
// count) pair: all compute servers write at once, and the pod's spine tier
// is thinned from fully provisioned to 4:1 oversubscribed, concentrating
// the inter-pod load on fewer uplinks.
func ccSpineCell(opts Options, kind cc.Kind, spines int) (CCCell, *ebs.Cluster) {
	cfg := ebs.DefaultConfig(ebs.RDMA)
	cfg.CC = kind
	cfg.Seed = opts.Seed
	cfg.Fabric.SpinesPerPod = spines
	cfg.ComputeServers = 8
	cfg.BlockServers = 4
	cfg.ChunkServers = 8
	c := ebs.New(cfg)

	vds := make([]*ebs.VDisk, cfg.ComputeServers)
	for i := range vds {
		vds[i] = c.MustProvision(i, 8*sa.SegmentBytes, ebs.DefaultQoS())
	}
	h := stats.NewHistogram()
	total := ccWriteStorm(c, vds, opts.Seed, 256<<10, 2, opts.scale(24, 6), h)
	c.Run()

	cell := CCCell{Scenario: fmt.Sprintf("spine-oversub/%d", spines), CC: kind.String()}
	cellStats(&cell, c, h, *total)
	return cell, c
}

// SpineOversub sweeps the spine tier from 4 down to 1 for every
// controller.
func SpineOversub(opts Options) *Table {
	spines := []int{4, 2, 1}
	f := opts.fleet()
	cells := runCells(f, len(ccKinds)*len(spines), func(shard int) (CCCell, *ebs.Cluster) {
		return ccSpineCell(opts, ccKinds[shard/len(spines)], spines[shard%len(spines)])
	})
	t := &Table{
		Title:   "Oversubscribed spine: 8 computes write through a thinning spine tier (RDMA FN)",
		Columns: append([]string{"spines"}, ccColumns...),
		Notes: []string{
			"256 KiB closed-loop writes from every compute, spine tier swept 4→1",
		},
		Perf: &f.Perf,
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, append([]string{c.Scenario[len("spine-oversub/"):]}, c.row()...))
	}
	return t
}

// ccElephantMiceCell runs the mixed workload for one controller: two
// computes stream 1 MiB elephants while two others issue 4 KiB mice; the
// mice tail shows how well the controller protects latency-sensitive I/O
// from bandwidth hogs sharing the fabric.
func ccElephantMiceCell(opts Options, kind cc.Kind) (CCCell, *ebs.Cluster) {
	cfg := ebs.DefaultConfig(ebs.RDMA)
	cfg.CC = kind
	cfg.Seed = opts.Seed
	c := ebs.New(cfg)

	elephants := []*ebs.VDisk{
		c.MustProvision(0, 8*sa.SegmentBytes, ebs.DefaultQoS()),
		c.MustProvision(1, 8*sa.SegmentBytes, ebs.DefaultQoS()),
	}
	mice := []*ebs.VDisk{
		c.MustProvision(2, 8*sa.SegmentBytes, ebs.DefaultQoS()),
		c.MustProvision(3, 8*sa.SegmentBytes, ebs.DefaultQoS()),
	}
	hEl := stats.NewHistogram() // elephants contribute bytes, not the tail
	hMice := stats.NewHistogram()
	totalEl := ccWriteStorm(c, elephants, opts.Seed, 1<<20, 2, opts.scale(30, 8), hEl)
	ccWriteStorm(c, mice, opts.Seed+1, 4<<10, 2, opts.scale(300, 80), hMice)
	c.Run()

	cell := CCCell{Scenario: "elephantmice", CC: kind.String()}
	cellStats(&cell, c, hMice, *totalEl)
	return cell, c
}

// ElephantMice runs the mixed elephant/mice workload across every
// controller. The latency columns are the mice; MB/s is the elephants.
func ElephantMice(opts Options) *Table {
	f := opts.fleet()
	cells := runCells(f, len(ccKinds), func(shard int) (CCCell, *ebs.Cluster) {
		return ccElephantMiceCell(opts, ccKinds[shard])
	})
	t := &Table{
		Title:   "Elephant/mice mix: 1 MiB streams vs 4 KiB writes (RDMA FN, per-controller)",
		Columns: ccColumns,
		Notes: []string{
			"p50/p99 are the 4 KiB mice; MB/s is the 1 MiB elephant aggregate",
		},
		Perf: &f.Perf,
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, c.row())
	}
	return t
}
