package experiments

import (
	"fmt"
	"sort"
	"time"

	"lunasolar/ebs"
	"lunasolar/internal/sim"
	"lunasolar/internal/sim/runtime"
	"lunasolar/internal/simnet"
)

// The diurnal campaign is the hybrid-fidelity showcase: a long background
// bulk-transfer campaign (compute pod → storage pod) that ramps up, holds
// a plateau, rides through one engineered incast wave and one spine
// reboot, and ramps back down. In packet fidelity every frame is
// simulated; in hybrid fidelity the quiescent phases fast-forward as fluid
// flows and only the disturbed windows (incast onset, the reboot spike)
// run packet by packet. The two modes must agree — exactly on drop and
// completion counts, and within a sliver on completion-time quantiles —
// which is what TestHybridDifferential and `make ff-diff` check.

// diurnalPhases names the campaign's phases in schedule order.
var diurnalPhases = []string{"ramp", "plateau", "incast", "spike", "rampdown"}

// DiurnalPhase is one phase's merged measurement.
type DiurnalPhase struct {
	Name      string  `json:"phase"`
	Started   int     `json:"started"`
	Completed int     `json:"completed"`
	Fluid     int     `json:"fluid"` // completions delivered analytically
	P50us     float64 `json:"p50_us"`
	P90us     float64 `json:"p90_us"`
	P99us     float64 `json:"p99_us"`
}

// DiurnalResult is the structured outcome of one campaign run (both
// shards merged), the unit the differential gate and BENCH_pr8.json
// consume.
type DiurnalResult struct {
	Fidelity  string        `json:"fidelity"`
	Started   int           `json:"started"`
	Completed int           `json:"completed"`
	Fluid     int           `json:"fluid"`
	Drops     uint64        `json:"drops"`
	Events    uint64        `json:"events"`
	SimTime   time.Duration `json:"-"`
	SimUS     float64       `json:"sim_us"`
	MBps      float64       `json:"mb_per_s"`
	Phases    []DiurnalPhase
	Overall   DiurnalPhase

	Admitted  uint64 `json:"admitted"`  // transfers that ran (partly) fluid
	Demotions uint64 `json:"demotions"` // flush-all events

	// Perf carries the fleet's throughput and leak counters for the runs
	// behind this result (outside the JSON surface the diff gates compare).
	Perf *runtime.Perf `json:"-"`
}

// diurnalCell is one shard's raw outcome.
type diurnalCell struct {
	started   []int                      // per phase
	lats      map[string][]time.Duration // per phase, completion order
	fluid     map[string]int             // per phase, analytic completions
	bytes     int64
	drops     uint64
	events    uint64
	simTime   time.Duration
	admitted  uint64
	demotions uint64
}

// diurnalShard builds one shard's fabric and schedule and runs it to
// completion. Every transfer is scheduled upfront — including the spine
// reboot — so the engine's event heap never drains mid-campaign and the
// wave schedule is identical in both fidelity modes (it is drawn from an
// independent Rand, never the engine's).
func diurnalShard(opts Options, fid ebs.Fidelity, shard int) (diurnalCell, *sim.Engine, *simnet.Fabric) {
	eng := sim.NewEngine(opts.Seed + int64(shard)*7919)
	fab := simnet.New(eng, simnet.DefaultConfig())
	bulk := simnet.NewBulkService(fab)
	if fid == ebs.FidelityHybrid {
		fab.EnableFluid(simnet.DefaultFluidConfig())
	}
	r := sim.NewRand(opts.Seed*1000003 + int64(shard))

	cfg := fab.Config()
	nc := cfg.RacksPerPod * cfg.HostsPerRack // compute hosts in pod 0
	compute := func(i int) *simnet.Host { return fab.Host(0, 0, i/cfg.HostsPerRack, i%cfg.HostsPerRack) }
	storage := func(j int) *simnet.Host { return fab.Host(0, 1, j/cfg.HostsPerRack, j%cfg.HostsPerRack) }
	incastDst := storage(0)

	const (
		chunk     = 4096
		pace      = 5e9  // wire bits/sec per transfer
		inPace    = 13e9 // incast pace: two flows overload one 25G host link
		kib       = 1024
		maxPerDst = 2
	)
	cell := diurnalCell{
		lats:  map[string][]time.Duration{},
		fluid: map[string]int{},
	}
	phaseOf := map[uint64]string{}
	phaseIdx := map[string]int{}
	for i, p := range diurnalPhases {
		phaseIdx[p] = i
	}
	cell.started = make([]int, len(diurnalPhases))

	// wave schedules `count` transfers at time at: unique compute sources,
	// storage destinations capped at maxPerDst per wave (the incast dst is
	// reserved for the incast wave), sizes in [loKiB, hiKiB], start
	// staggered within 50µs.
	wave := func(phase string, at sim.Time, count, loKiB, hiKiB int, pbps float64) {
		srcs := r.Perm(nc)
		used := map[int]int{}
		for i := 0; i < count; i++ {
			dst := 0
			for {
				dst = 1 + r.Intn(nc-1)
				if used[dst] < maxPerDst {
					used[dst]++
					break
				}
			}
			size := int64(loKiB+r.Intn(hiKiB-loKiB+1)) * kib
			t0 := at.Add(time.Duration(r.Int63n(50_001))) // ≤50µs stagger
			id := bulk.Transfer(compute(srcs[i]), storage(dst), size, chunk, pbps, t0)
			phaseOf[id] = phase
			cell.started[phaseIdx[phase]]++
		}
	}

	ms := func(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }

	// Ramp: load climbs toward the plateau.
	rampWaves := opts.scale(4, 2)
	plateauCount := opts.scale(16, 8)
	for w := 0; w < rampWaves; w++ {
		at := sim.Time(ms(1 + 2*float64(w)))
		wave("ramp", at, (w+1)*plateauCount/(rampWaves+1)+1, 256, 512, pace)
	}
	// Plateau: steady waves every 2.5ms; each transfer outlives well under
	// the spacing, so waves do not pile up.
	plateauStart := ms(1 + 2*float64(rampWaves))
	plateauWaves := opts.scale(56, 10)
	for w := 0; w < plateauWaves; w++ {
		wave("plateau", sim.Time(plateauStart+ms(2.5*float64(w))), plateauCount, 512, 1024, pace)
	}
	// Incast: mid-plateau, three 13G senders converge on one dual-homed
	// storage host (2×25G). ECMP pins each flow to one of the two host
	// links, so by pigeonhole some link carries two flows — 26G into 25G —
	// and the max-min allocation turns infeasible at that admission,
	// demoting every fluid flow so the contention runs packet by packet.
	// Even the worst split (all three on one link: 14G overload over the
	// ~160µs send ≈ 280KB) stays under the 400KB port buffer: queues
	// build, nothing drops.
	incastAt := sim.Time(plateauStart + ms(2.5*float64(plateauWaves/2)+1))
	{
		srcs := r.Perm(nc)
		for i := 0; i < 3; i++ {
			t0 := incastAt.Add(time.Duration(i) * 10 * time.Microsecond)
			id := bulk.Transfer(compute(srcs[i]), incastDst, 256*kib, chunk, inPace, t0)
			phaseOf[id] = "incast"
			cell.started[phaseIdx["incast"]]++
		}
	}
	// Spike: after a 3ms drain gap, a storage-pod spine hangs for 1.5ms
	// and a burst wave launches into the outage. Roughly a quarter of the
	// burst hashes through the dead spine and is hang-dropped (DetectDelay
	// far exceeds the outage, so routing never reacts) — those transfers
	// never complete, identically in both fidelity modes.
	drainEnd := plateauStart + ms(2.5*float64(plateauWaves-1)) + ms(2) // last plateau wave fully sent
	spikeAt := sim.Time(drainEnd + ms(3))
	spine := fab.Spine(0, 1, 0)
	eng.At(spikeAt, func() { fab.RebootSwitch(spine, ms(1.5)) })
	wave("spike", spikeAt.Add(100*time.Microsecond), opts.scale(8, 4), 128, 128, pace)
	// Ramp-down: load decays after the spike. The first wave re-baselines
	// the fabric's queue high-water mark (it runs packet-level); later
	// waves re-promote to fluid — hybrid's recovery path.
	for w, count := 0, plateauCount/2; w < opts.scale(3, 2) && count > 0; w, count = w+1, count/2 {
		wave("rampdown", spikeAt.Add(ms(2.5)+ms(2*float64(w))), count, 256, 512, pace)
	}

	eng.Run()

	for _, c := range bulk.Completions() {
		ph := phaseOf[c.ID]
		cell.lats[ph] = append(cell.lats[ph], c.Lat)
		cell.bytes += c.Bytes
		if c.Fluid {
			cell.fluid[ph]++
		}
	}
	cell.drops = fab.TotalDrops()
	cell.events = eng.Processed()
	cell.simTime = eng.Now().Duration()
	if ft := fab.Fluid(); ft != nil {
		s := ft.Stats()
		cell.admitted = s.Admitted
		cell.demotions = s.Demotions
	}
	return cell, eng, fab
}

// quantileExact returns the nearest-rank q-quantile of lats (sorted copy;
// exact, unlike the bucketed histogram quantiles).
func quantileExact(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	k := int(q*float64(len(s))+0.5) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(s) {
		k = len(s) - 1
	}
	return s[k]
}

// DiurnalCampaign runs the campaign (two shards, merged in shard order) at
// the given fidelity and returns the structured result.
func DiurnalCampaign(opts Options, fid ebs.Fidelity) *DiurnalResult {
	const shards = 2
	fleet := opts.fleet()
	cells := runFabricCells(fleet, shards, func(shard int) (diurnalCell, *sim.Engine, *simnet.Fabric) {
		return diurnalShard(opts, fid, shard)
	})

	res := &DiurnalResult{Fidelity: fid.String(), Perf: &fleet.Perf}
	merged := map[string][]time.Duration{}
	var all []time.Duration
	var bytes int64
	var simTotal time.Duration
	for _, c := range cells {
		for i, p := range diurnalPhases {
			res.Started += c.started[i]
			merged[p] = append(merged[p], c.lats[p]...)
		}
		bytes += c.bytes
		res.Drops += c.drops
		res.Events += c.events
		res.Admitted += c.admitted
		res.Demotions += c.demotions
		simTotal += c.simTime
		if c.simTime > res.SimTime {
			res.SimTime = c.simTime
		}
	}
	for i, p := range diurnalPhases {
		lats := merged[p]
		fluid := 0
		started := 0
		for _, c := range cells {
			fluid += c.fluid[p]
			started += c.started[i]
		}
		res.Phases = append(res.Phases, DiurnalPhase{
			Name: p, Started: started, Completed: len(lats), Fluid: fluid,
			P50us: float64(quantileExact(lats, 0.50).Nanoseconds()) / 1e3,
			P90us: float64(quantileExact(lats, 0.90).Nanoseconds()) / 1e3,
			P99us: float64(quantileExact(lats, 0.99).Nanoseconds()) / 1e3,
		})
		all = append(all, lats...)
		res.Completed += len(lats)
		res.Fluid += fluid
	}
	res.Overall = DiurnalPhase{
		Name: "overall", Started: res.Started, Completed: len(all), Fluid: res.Fluid,
		P50us: float64(quantileExact(all, 0.50).Nanoseconds()) / 1e3,
		P90us: float64(quantileExact(all, 0.90).Nanoseconds()) / 1e3,
		P99us: float64(quantileExact(all, 0.99).Nanoseconds()) / 1e3,
	}
	if simTotal > 0 {
		res.MBps = float64(bytes) / simTotal.Seconds() / 1e6
	}
	res.SimUS = float64(res.SimTime.Nanoseconds()) / 1e3
	return res
}

// Diurnal is the ebsbench entry point: it renders the campaign at
// Options.Fidelity as a per-phase table.
func Diurnal(opts Options) *Table {
	res := DiurnalCampaign(opts, opts.Fidelity)
	t := &Table{
		Title:   fmt.Sprintf("Diurnal bulk campaign (fidelity=%s): ramp → plateau → incast → spine reboot → ramp-down", res.Fidelity),
		Columns: []string{"phase", "started", "completed", "fluid", "p50(µs)", "p90(µs)", "p99(µs)"},
		Perf:    res.Perf,
	}
	row := func(p DiurnalPhase) []string {
		return []string{p.Name, fmt.Sprintf("%d", p.Started), fmt.Sprintf("%d", p.Completed),
			fmt.Sprintf("%d", p.Fluid), f1(p.P50us), f1(p.P90us), f1(p.P99us)}
	}
	for _, p := range res.Phases {
		t.Rows = append(t.Rows, row(p))
	}
	t.Rows = append(t.Rows, row(res.Overall))
	t.Notes = append(t.Notes,
		fmt.Sprintf("aggregate goodput %.1f MB/s; drops %d (spine-reboot hang drops; missing completions are their lost fins)", res.MBps, res.Drops),
		fmt.Sprintf("events processed %d over %.1f simulated ms", res.Events, float64(res.SimTime.Microseconds())/1e3),
	)
	if res.Fidelity == "hybrid" {
		t.Notes = append(t.Notes,
			fmt.Sprintf("fluid: %d transfers admitted, %d completed analytically, %d demotion flushes", res.Admitted, res.Fluid, res.Demotions))
	}
	return t
}
