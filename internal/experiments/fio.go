package experiments

import (
	"fmt"
	"time"

	"lunasolar/ebs"
	"lunasolar/internal/workload"
)

// Fig14 regenerates the fio read test: (a) 64 KiB throughput and (b) 4 KiB
// IOPS at queue depth 32, for Luna, RDMA, Solar* and Solar, as the DPU's
// CPU core count grows from 1 to 3 — the experiment that shows the
// PCIe-goodput ceiling for every data path that crosses the card's internal
// channel, and Solar sailing past it at line rate.
func Fig14(opts Options) *Table {
	stacks := []ebs.StackKind{ebs.Luna, ebs.RDMA, ebs.SolarStar, ebs.Solar}
	t := &Table{
		Title:   "Figure 14: fio read, 32 I/O depth, by DPU cores",
		Columns: []string{"stack", "cores", "64K MB/s", "4K IOPS"},
	}
	card := ebsDefaultDPU()
	pcieCeiling := card.PCIeBps / 2 / 8 / 1e6 // crossed twice, in MB/s
	lineRate := 2 * 25e9 / 8 / 1e6

	// One shard per (stack, cores, blocksize) cell — 24 independent
	// clusters merged in row order.
	type cell struct {
		fn    ebs.StackKind
		cores int
		size  int
	}
	var cells []cell
	for _, fn := range stacks {
		for cores := 1; cores <= 3; cores++ {
			cells = append(cells, cell{fn, cores, 64 << 10}, cell{fn, cores, 4096})
		}
	}
	fleet := opts.fleet()
	vals := runCells(fleet, len(cells), func(shard int) (float64, *ebs.Cluster) {
		cl := cells[shard]
		return runFio(opts, cl.fn, cl.cores, cl.size)
	})
	for i := 0; i < len(cells); i += 2 {
		mbs := vals[i]
		iops := vals[i+1] * 1e6 / 4096 // MB/s → IOPS
		t.Rows = append(t.Rows, []string{
			cells[i].fn.String(), fmt.Sprintf("%d", cells[i].cores), f0(mbs), f0(iops),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("PCIe goodput ceiling (crossed twice): %.0f MB/s; NIC line rate: %.0f MB/s", pcieCeiling, lineRate),
		"paper: Solar alone reaches line rate and is flat in cores; Luna/RDMA/Solar* plateau at the PCIe bottleneck; single-core Solar throughput +78% and IOPS +46% vs Luna")
	t.Perf = &fleet.Perf
	return t
}

func ebsDefaultDPU() (c struct{ PCIeBps float64 }) {
	cfg := ebs.DefaultConfig(ebs.Solar)
	c.PCIeBps = cfg.DPU.PCIeBps
	return c
}

// runFio measures goodput in MB/s for one (stack, cores, blocksize) cell.
func runFio(opts Options, fn ebs.StackKind, cores int, blockSize int) (float64, *ebs.Cluster) {
	cfg := clusterConfig(fn, opts.Seed)
	cfg.BareMetal = true
	cfg.DPU.CPUCores = cores
	cfg.ComputeServers = 1
	cfg.BlockServers = 3
	cfg.ChunkServers = 5
	c := ebs.New(cfg)
	// The fio test measures device capability: provision without a
	// throttling service level (the paper's testbed disks are unthrottled).
	vd := c.MustProvision(0, 512<<20, ebs.QoS(10e6, 400e9))

	// Prepopulate the read span so reads hit real data.
	span := uint64(16 << 20)
	chunk := 512 << 10
	for off := uint64(0); off < span; off += uint64(chunk) {
		vd.Write(off, make([]byte, chunk), nil)
	}
	c.Run()

	fio := workload.NewFio(c.Eng, workload.FioConfig{
		Depth:     32,
		BlockSize: blockSize,
		ReadFrac:  1.0,
		SpanBytes: span,
	}, func(write bool, lba uint64, size int, done func()) {
		vd.Read(lba, size, func(ebs.IOResult) { done() })
	})

	warmup := 5 * time.Millisecond
	window := time.Duration(opts.scale(60, 15)) * time.Millisecond
	fio.Start()
	c.RunFor(warmup)
	startBytes := fio.Bytes
	c.RunFor(window)
	gotBytes := fio.Bytes - startBytes
	fio.Stop()
	return float64(gotBytes) / window.Seconds() / 1e6, c
}

// lunaKind and solarKind keep ebs out of the test file's imports.
func lunaKind() ebs.StackKind  { return ebs.Luna }
func solarKind() ebs.StackKind { return ebs.Solar }

// RunFioCell exposes one Fig. 14 cell for ad-hoc probing (stack by name).
func RunFioCell(opts Options, stack string, cores, blockSize int) float64 {
	kinds := map[string]ebs.StackKind{"luna": ebs.Luna, "rdma": ebs.RDMA, "solar*": ebs.SolarStar, "solar": ebs.Solar}
	mbs, _ := runFio(opts, kinds[stack], cores, blockSize)
	return mbs
}
