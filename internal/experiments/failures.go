package experiments

import (
	"fmt"
	"time"

	"lunasolar/ebs"
	"lunasolar/internal/sim"
	"lunasolar/internal/stats"
)

// hangThreshold is the Table 2 criterion: an I/O with no response for one
// second or longer.
const hangThreshold = time.Second

// table2Scenario is one failure row.
type table2Scenario struct {
	name   string
	inject func(c *ebs.Cluster)
}

func table2Scenarios() []table2Scenario {
	return []table2Scenario{
		{"ToR switch port failure", func(c *ebs.Cluster) {
			c.Fabric.FailLink(c.Compute(0).Host.Ports()[0])
		}},
		{"ToR switch failure", func(c *ebs.Cluster) {
			c.Fabric.ToR(0, 0, 0, 0).Fail() // hang: links stay up
		}},
		{"Spine switch failure", func(c *ebs.Cluster) {
			c.Fabric.Spine(0, 0, 0).Fail()
		}},
		{"Packet drop rate=75%", func(c *ebs.Cluster) {
			c.Fabric.Spine(0, 0, 0).SetDropRate(0.75)
		}},
		{"ToR switch reboot/isolation", func(c *ebs.Cluster) {
			c.Fabric.RebootSwitch(c.Fabric.ToR(0, 0, 0, 0), 10*time.Second)
		}},
		{"Blackhole in a ToR switch", func(c *ebs.Cluster) {
			c.Fabric.ToR(0, 0, 0, 0).SetBlackhole(0.25, 4242)
			c.Fabric.ToR(0, 0, 0, 1).SetBlackhole(0.25, 4242)
		}},
		{"Blackhole in a Spine switch", func(c *ebs.Cluster) {
			c.Fabric.Spine(0, 0, 0).SetBlackhole(0.25, 2424)
			c.Fabric.Spine(0, 0, 1).SetBlackhole(0.25, 2424)
		}},
	}
}

// hangCounter drives Table 2 traffic (queue depth 4 per server, 4–32 KiB
// blocks, R:W 1:4) and counts I/Os that exceed the hang threshold,
// including those still unanswered when the window closes.
type hangCounter struct {
	c       *ebs.Cluster
	r       *sim.Rand
	pending map[int]sim.Time
	nextID  int
	slow    int
	stopped bool
}

func newHangCounter(c *ebs.Cluster) *hangCounter {
	return &hangCounter{c: c, r: sim.NewRand(c.Config().Seed + 555), pending: map[int]sim.Time{}}
}

// start launches depth slots per disk with the given think time.
func (hc *hangCounter) start(vds []*ebs.VDisk, depth int, think time.Duration) {
	sizes := []int{4 << 10, 8 << 10, 16 << 10, 32 << 10}
	for _, vd := range vds {
		vd := vd
		for s := 0; s < depth; s++ {
			var issue func()
			issue = func() {
				if hc.stopped {
					return
				}
				id := hc.nextID
				hc.nextID++
				start := hc.c.Eng.Now()
				hc.pending[id] = start
				size := sizes[hc.r.Intn(len(sizes))]
				lba := uint64(hc.r.Int63n(int64(vd.Size()-uint64(size)))) &^ 4095
				done := func(ebs.IOResult) {
					delete(hc.pending, id)
					if hc.c.Eng.Now().Sub(start) >= hangThreshold {
						hc.slow++
					}
					hc.c.Eng.Schedule(think, issue)
				}
				if hc.r.Bernoulli(0.2) { // R:W = 1:4
					vd.Read(lba, size, done)
				} else {
					vd.Write(lba, make([]byte, size), done)
				}
			}
			issue()
		}
	}
}

// finish counts still-pending I/Os older than the threshold.
func (hc *hangCounter) finish() int {
	hc.stopped = true
	now := hc.c.Eng.Now()
	for _, started := range hc.pending {
		if now.Sub(started) >= hangThreshold {
			hc.slow++
		}
	}
	return hc.slow
}

// table2Window, when nonzero, overrides Table2's failure window. The wheel
// differential test shortens the campaign: its property is output equality
// between timer backends, not the hang counts themselves, and the full
// window costs minutes per run.
var table2Window time.Duration

// Table2 regenerates the failure-scenario table: I/Os with no response for
// one second or longer, Luna vs Solar, across seven network failure
// scenarios.
func Table2(opts Options) *Table {
	t := &Table{
		Title:   "Table 2: I/Os with no response >= 1s under failure scenarios",
		Columns: []string{"failure scenario", "LUNA", "SOLAR"},
	}
	window := time.Duration(opts.scale(3000, 1500)) * time.Millisecond
	if table2Window > 0 {
		window = table2Window
	}
	paper := []string{"0", "216", "0", "10/s", "123", "611", "1043"}
	scenarios := table2Scenarios()
	stacks := []ebs.StackKind{ebs.Luna, ebs.Solar}

	// One shard per (scenario, stack) cell: every cell owns its cluster, so
	// all fourteen run concurrently and merge in scenario order.
	type cellOut struct {
		slow string
		reg  *stats.Registry
	}
	fleet := opts.fleet()
	cells := runCells(fleet, len(scenarios)*len(stacks), func(shard int) (cellOut, *ebs.Cluster) {
		sc := scenarios[shard/len(stacks)]
		fn := stacks[shard%len(stacks)]
		c := ebs.New(clusterConfig(fn, opts.Seed))
		var vds []*ebs.VDisk
		for ci := 0; ci < c.Computes(); ci++ {
			vds = append(vds, c.MustProvision(ci, 128<<20, ebs.DefaultQoS()))
		}
		hc := newHangCounter(c)
		hc.start(vds, 4, 2*time.Millisecond)
		c.RunFor(200 * time.Millisecond) // healthy warmup
		sc.inject(c)
		c.RunFor(window)
		out := cellOut{slow: fmt.Sprintf("%d", hc.finish())}
		if opts.Telemetry {
			out.reg = stats.NewRegistry()
			c.ExportMetrics(out.reg, "")
		}
		return out, c
	})
	for i, sc := range scenarios {
		t.Rows = append(t.Rows, []string{
			sc.name + " (paper LUNA " + paper[i] + ", SOLAR 0)",
			cells[i*len(stacks)].slow, cells[i*len(stacks)+1].slow,
		})
	}
	if opts.Telemetry {
		t.Telemetry = stats.NewRegistry()
		for shard, cell := range cells {
			t.Telemetry.Merge(cell.reg,
				fmt.Sprintf("table2/s%d/%s/", shard/len(stacks), stacks[shard%len(stacks)]))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("testbed: 8 compute + 8 storage servers, depth 4, 4-32K blocks, R:W 1:4, %v failure window (paper: 90+82 servers)", window))
	t.Perf = &fleet.Perf
	return t
}

// fig8Tier describes one failure location for the Fig. 8 campaign.
type fig8Tier struct {
	name   string
	weight float64
	domain int // hosts in the blast domain at fleet scale
	inject func(c *ebs.Cluster, r *sim.Rand)
}

func fig8Tiers() []fig8Tier {
	// ToR incidents are hangs (links up, no signal). Incidents at the
	// spine tier and above are partial failures — a failing linecard
	// blackholing a subset of flows, like the §3.3 production incident —
	// which routing cannot detect; only manual operations (minutes to
	// hours) end them.
	return []fig8Tier{
		{"ToR", 0.40, 48, func(c *ebs.Cluster, r *sim.Rand) {
			c.Fabric.ToR(0, 0, int(r.Int31n(2)), int(r.Int31n(2))).Fail()
		}},
		{"Spine", 0.30, 1536, func(c *ebs.Cluster, r *sim.Rand) {
			c.Fabric.Spine(0, 0, int(r.Int31n(2))).SetBlackhole(0.3, r.Uint32())
		}},
		{"Core", 0.20, 12288, func(c *ebs.Cluster, r *sim.Rand) {
			c.Fabric.Core(0, int(r.Int31n(2))).SetBlackhole(0.3, r.Uint32())
		}},
		{"DC Router", 0.10, 49152, func(c *ebs.Cluster, r *sim.Rand) {
			c.Fabric.DCR(int(r.Int31n(2))).SetBlackhole(0.3, r.Uint32())
		}},
	}
}

// Fig8 regenerates the I/O-hang scatter of the Luna era: ~100 injected
// network failures across the four fabric tiers, with the count of
// affected VMs (extrapolated from the measured affected fraction to the
// tier's fleet-scale blast domain) against the incident duration.
func Fig8(opts Options) *Table {
	incidents := opts.scale(60, 10)
	r := sim.NewRand(opts.Seed + 8)
	tiers := fig8Tiers()

	t := &Table{
		Title:   "Figure 8: I/O hangs caused by network failures (Luna era, per incident)",
		Columns: []string{"incident", "location", "duration (min)", "affected VMs"},
	}

	// Draw every incident's parameters up front from the shared stream, so
	// the campaign is identical however many workers simulate it; each shard
	// then derives all run-time randomness from its own seed.
	type incident struct {
		tier        fig8Tier
		durationMin int
		seed        int64
	}
	draws := make([]incident, incidents)
	for inc := range draws {
		u := r.Float64()
		cum := 0.0
		tier := tiers[0]
		for _, ti := range tiers {
			cum += ti.weight
			if u <= cum {
				tier = ti
				break
			}
		}
		draws[inc] = incident{tier: tier, durationMin: 1 + r.Intn(100), seed: r.Int63()}
	}

	fleet := opts.fleet()
	rows := runCells(fleet, incidents, func(inc int) ([]string, *ebs.Cluster) {
		tier := draws[inc].tier
		rr := sim.NewRand(draws[inc].seed)

		cfg := clusterConfig(ebs.Luna, opts.Seed+int64(inc))
		cfg.Fabric.DCs = 2
		cfg.Fabric.DCRouters = 2
		cfg.Fabric.PodsPerDC = 1
		cfg.CrossDC = true
		c := ebs.New(cfg)
		var vds []*ebs.VDisk
		for ci := 0; ci < c.Computes(); ci++ {
			vds = append(vds, c.MustProvision(ci, 64<<20, ebs.DefaultQoS()))
		}

		// Per-client hang detection: a client is affected if an I/O
		// completed over the threshold or is still unanswered past it.
		hangs := make([]bool, len(vds))
		inflightSince := make([]sim.Time, len(vds))
		for ci, vd := range vds {
			ci, vd := ci, vd
			var issue func()
			issue = func() {
				start := c.Eng.Now()
				inflightSince[ci] = start
				lba := uint64(rr.Int63n(int64(vd.Size()-4096))) &^ 4095
				vd.Write(lba, make([]byte, 4096), func(ebs.IOResult) {
					if c.Eng.Now().Sub(start) >= hangThreshold {
						hangs[ci] = true
					}
					inflightSince[ci] = 0
					c.Eng.Schedule(2*time.Millisecond, issue)
				})
			}
			issue()
		}

		c.RunFor(100 * time.Millisecond)
		tier.inject(c, rr)
		c.RunFor(time.Duration(opts.scale(2000, 1400)) * time.Millisecond)
		affectedClients := 0
		for ci, h := range hangs {
			stuck := inflightSince[ci] != 0 && c.Eng.Now().Sub(inflightSince[ci]) >= hangThreshold
			if h || stuck {
				affectedClients++
			}
		}
		frac := float64(affectedClients) / float64(len(vds))
		affectedVMs := int(frac * float64(tier.domain) * 8) // ~8 VMs/host
		return []string{
			fmt.Sprintf("%d", inc+1), tier.name,
			fmt.Sprintf("%d", draws[inc].durationMin), fmt.Sprintf("%d", affectedVMs),
		}, c
	})
	t.Rows = rows
	t.Perf = &fleet.Perf
	t.Notes = append(t.Notes,
		"affected VMs extrapolate the measured affected fraction to the tier's fleet blast domain (48/1.5K/12K/49K hosts, 8 VMs each)",
		"paper: higher tiers strand one to four orders of magnitude more VMs; duration set by manual network operations")
	return t
}
