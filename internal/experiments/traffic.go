package experiments

import (
	"fmt"
	"time"

	"lunasolar/internal/sa"
	"lunasolar/internal/sim"
	"lunasolar/internal/stats"
	"lunasolar/internal/wire"
	"lunasolar/internal/workload"
)

// Fig3 regenerates the weekly traffic figure: hourly EBS vs total
// throughput per server and R/W request rates over seven days (shown at a
// 6-hour stride), plus the headline shares the paper quotes (EBS ≈ 63% of
// TX, ≈ 51% overall; writes 3–4× reads).
func Fig3(opts Options) *Table {
	w := workload.NewWeekly(sim.NewRand(opts.Seed))
	t := &Table{
		Title:   "Figure 3: weekly EBS traffic over total traffic (per-server averages)",
		Columns: []string{"hour", "EBS TX GB/s", "EBS RX GB/s", "All TX GB/s", "All RX GB/s", "write IO/s", "read IO/s"},
	}
	var ebsTx, allTx, ebsAll, allAll, writes, reads float64
	for h := 0; h < 7*24; h++ {
		s := w.At(h)
		ebsTx += s.EBSTxGBs
		allTx += s.AllTxGBs
		ebsAll += s.EBSTxGBs + s.EBSRxGBs
		allAll += s.AllTxGBs + s.AllRxGBs
		writes += s.WriteIOPS
		reads += s.ReadIOPS
		if h%6 == 0 {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", h),
				f2(s.EBSTxGBs), f2(s.EBSRxGBs), f2(s.AllTxGBs), f2(s.AllRxGBs),
				f0(s.WriteIOPS), f0(s.ReadIOPS),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("EBS share of TX traffic: %.0f%% (paper: 63%%)", 100*ebsTx/allTx),
		fmt.Sprintf("EBS share of all traffic: %.0f%% (paper: 51%%)", 100*ebsAll/allAll),
		fmt.Sprintf("write:read request ratio: %.1fx (paper: 3-4x)", writes/reads),
	)
	return t
}

// Fig4 regenerates the diurnal IOPS figure: per-minute average IOPS for a
// highly loaded compute server over a day, reported hourly.
func Fig4(opts Options) *Table {
	d := workload.NewDiurnal(sim.NewRand(opts.Seed))
	t := &Table{
		Title:   "Figure 4: average IOPS per minute over a day (highly-loaded server)",
		Columns: []string{"hour", "avg IOPS", "min IOPS", "max IOPS"},
	}
	peak := 0.0
	for h := 0; h < 24; h++ {
		var sum, lo, hi float64
		lo = 1e18
		for m := 0; m < 60; m++ {
			v := d.Rate(time.Duration(h)*time.Hour + time.Duration(m)*time.Minute)
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > peak {
			peak = hi
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%02d", h), f0(sum / 60), f0(lo), f0(hi),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("peak per-minute IOPS: %.0f (paper: up to ~200K)", peak))
	return t
}

// Fig5 regenerates the size-distribution figure: the CDF of I/O sizes from
// the workload model and of FN RPC sizes after the storage agent's segment
// splitting, for reads and writes.
func Fig5(opts Options) *Table {
	r := sim.NewRand(opts.Seed)
	n := opts.scale(200_000, 20_000)

	segs := sa.NewSegmentTable()
	if err := segs.Provision(1, 1<<30, []uint32{0x01010101, 0x01010102, 0x01010103, 0x01010104}); err != nil {
		panic(err)
	}

	var ioR, ioW, rpcR, rpcW stats.CDF
	collect := func(dist *workload.SizeDist, io *stats.CDF, rpc *stats.CDF) {
		for i := 0; i < n; i++ {
			size := dist.Sample()
			io.Add(float64(size))
			// Split at segment boundaries the way the SA does: RPC sizes
			// are the per-segment pieces.
			lba := uint64(r.Int63n(int64(1<<30 - 256<<10)))
			lba &^= 4095
			off := 0
			for off < size {
				cur := lba + uint64(off)
				segEnd := (cur/sa.SegmentBytes + 1) * sa.SegmentBytes
				piece := size - off
				if uint64(piece) > segEnd-cur {
					piece = int(segEnd - cur)
				}
				rpc.Add(float64(piece))
				off += piece
			}
		}
	}
	collect(workload.NewReadSizes(r), &ioR, &rpcR)
	collect(workload.NewWriteSizes(r), &ioW, &rpcW)

	t := &Table{
		Title:   "Figure 5: CDF of I/O and FN RPC sizes",
		Columns: []string{"size", "IO read %", "IO write %", "RPC read %", "RPC write %"},
	}
	for _, kb := range []int{1, 4, 8, 16, 32, 64, 128, 256, 1024} {
		s := float64(kb << 10)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dK", kb),
			f1(100 * ioR.At(s)), f1(100 * ioW.At(s)),
			f1(100 * rpcR.At(s)), f1(100 * rpcW.At(s)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("P(RPC write <= 4K) = %.0f%% (paper: ~40%%); all RPCs <= 128K: %v (paper: yes)",
			100*rpcW.At(4096), rpcW.At(float64(128<<10)) == 1),
		fmt.Sprintf("splitting is rare: RPC count / IO count = %.3f (paper: most I/Os complete in a single RPC)",
			float64(rpcW.N()+rpcR.N())/float64(ioW.N()+ioR.N())),
	)
	_ = wire.BlockSize
	return t
}
