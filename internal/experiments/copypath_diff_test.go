package experiments

import (
	"testing"
	"time"

	"lunasolar/internal/simnet"
)

// TestCopyPathDifferentialOutput is the zero-copy data path's end-to-end
// regression gate, the experiment-level counterpart of the write-path copy
// accounting in the root package: a full experiment must produce
// byte-identical formatted output whether payloads travel as refcounted
// slabs or as the seed's deep copies. The -copy-path hatch changes only
// where bytes live — never what metadata travels, what a frame costs on the
// wire, or which random draws the fault engines make — so any divergence
// here is a data-path bug, not noise. Fig6 covers the steady-state write
// and read paths of all three stacks (including retransmit slab reuse);
// Table2 covers failure injection, where packets are dropped mid-flight and
// re-sent from the same slab.
//
// The test flips the package-wide data-path default, so it does not run in
// parallel with anything else.
//
//lint:gate copy-path
func TestCopyPathDifferentialOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	if raceEnabled {
		t.Skip("determinism gate, not a memory-safety test; too slow under the race detector")
	}
	prev := simnet.ZeroCopy()
	defer simnet.SetZeroCopy(prev)
	// As in the wheel differential: a short failure window still drives
	// every Table2 scenario through injection, retransmission and failover.
	table2Window = 400 * time.Millisecond
	defer func() { table2Window = 0 }()
	for _, tc := range []struct {
		name string
		fn   func(Options) *Table
	}{
		{"fig6", Fig6},
		{"table2", Table2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(zero bool) string {
				simnet.SetZeroCopy(zero)
				return tc.fn(Options{Seed: 7, Quick: true, Workers: 4}).Format()
			}
			zc, cp := run(true), run(false)
			if zc != cp {
				t.Fatalf("zero-copy and copy-path runs diverged at the same seed\n--- zero-copy ---\n%s\n--- copy-path ---\n%s", zc, cp)
			}
		})
	}
}
