package experiments

import (
	"fmt"

	"lunasolar/internal/chunkserver"
	"lunasolar/internal/crc"
	"lunasolar/internal/dpu"
	"lunasolar/internal/sim"
)

// Table3 regenerates the FPGA resource-consumption table from the DPU
// model's capacity configuration.
func Table3(opts Options) *Table {
	eng := sim.NewEngine(opts.Seed)
	card := dpu.New(eng, dpu.DefaultConfig())
	t := &Table{
		Title:   "Table 3: SOLAR's hardware resource consumption",
		Columns: []string{"module", "LUT (%)", "BRAM (%)"},
	}
	for _, m := range card.Resources() {
		t.Rows = append(t.Rows, []string{m.Name, f1(m.LUTPercent()), f1(m.BRAMPercent())})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("derived from capacities: %d Addr entries, %d segments, %d vdisks on a %d-LUT / %d-BRAM36 device",
			card.Cfg.MaxAddrEntries, card.Cfg.MaxSegments, card.Cfg.MaxVDisks,
			dpu.DeviceLUTs, dpu.DeviceBRAMBlocks),
		"paper: Addr 5.1/8.1, Block 0.2/8.6, QoS 0.1/0.4, SEC 2.8/0.9, CRC 0.3/0.0, total 8.5/18.2")
	return t
}

// Corruption root-cause classes of Fig. 11.
const (
	causeFPGA = iota
	causeSoftware
	causeConfig
	causeMCE
	numCauses
)

var causeNames = [numCauses]string{"FPGA flapping", "Software bug", "Config error", "MCE error"}

// Fleet propensities: how often each root cause produces a corruption
// event in production (the paper's Fig. 11 distribution).
var causeWeights = [numCauses]float64{0.37, 0.28, 0.22, 0.13}

// Fig11 runs the corruption campaign: for each event a root cause is drawn
// with the fleet propensities, a real corruption of that class is injected
// into a write path, and the software CRC machinery must catch it — the
// FPGA classes through Solar's aggregation check, the software/config/MCE
// classes through the chunk-server CRC verification and metadata scrub.
func Fig11(opts Options) *Table {
	events := opts.scale(100, 30)
	eng := sim.NewEngine(opts.Seed)
	r := eng.Rand.Fork()

	// Two fault-injectable FPGAs: one whose CRC engine lies, one whose
	// datapath corrupts blocks (the two flavours of §4.4's bit flipping).
	cfgCRC := dpu.DefaultConfig()
	cfgCRC.Faults = dpu.FaultRates{CRCBitFlip: 1.0}
	cardCRC := dpu.New(eng, cfgCRC)
	cfgData := dpu.DefaultConfig()
	cfgData.Faults = dpu.FaultRates{DataBitFlip: 1.0}
	cardData := dpu.New(eng, cfgData)
	fpgaTurn := 0

	cs := chunkserver.New(eng, "campaign-chunk", chunkserver.DefaultSSD())

	injected := make([]int, numCauses)
	detected := make([]int, numCauses)

	block := make([]byte, 4096)
	for ev := 0; ev < events; ev++ {
		r.Read(block)
		cause := pickCause(r)
		injected[cause]++
		trusted := crc.Raw(block)

		switch cause {
		case causeFPGA:
			// The FPGA engine corrupts the block or its CRC; Solar's CPU
			// aggregation compares the trusted value against what the
			// engine reported.
			card := cardCRC
			if fpgaTurn%2 == 1 {
				card = cardData
			}
			fpgaTurn++
			tx := append([]byte(nil), block...)
			reported := card.ComputeCRC(tx)
			var agg crc.Aggregator
			agg.AddExpected(trusted)
			agg.AddBlockCRC(reported)
			// The datapath may also have corrupted the payload without
			// the reported CRC matching the trusted one — both cases are
			// a Verify failure.
			if !agg.Verify() || crc.Raw(tx) != trusted {
				detected[cause]++
			}
		case causeSoftware:
			// A software bug corrupts the payload after its CRC was
			// computed; the chunk server re-checksums on arrival.
			buggy := append([]byte(nil), block...)
			buggy[r.Intn(len(buggy))] ^= 0xff
			errCh := make(chan error, 1)
			cs.WriteBlock(7, uint64(ev)<<12, 1, buggy, trusted, func(err error) { errCh <- err })
			eng.Run()
			if err := <-errCh; err != nil {
				detected[cause]++
			}
		case causeConfig:
			// A corrupted table entry misdirects the block to a wrong
			// address; the periodic scrub compares stored CRCs against
			// metadata per address and sees the mismatch.
			meta := map[uint64]uint32{uint64(ev) << 12: trusted}
			wrongLBA := uint64(ev)<<12 + 4096
			errCh := make(chan error, 1)
			cs.WriteBlock(8, wrongLBA, 1, block, trusted, func(err error) { errCh <- err })
			eng.Run()
			<-errCh
			// Scrub: the intended address has no (or stale) data matching
			// its metadata CRC.
			found := false
			cs.ReadBlock(8, uint64(ev)<<12, func(data []byte, rawCRC uint32, err error) {
				if rawCRC == meta[uint64(ev)<<12] {
					found = true
				}
			})
			eng.Run()
			if !found {
				detected[cause]++
			}
		case causeMCE:
			// A host-memory bit flip corrupts the buffer after the
			// trusted checksum was recorded; the end-to-end CRC check at
			// the chunk server catches it.
			flipped := append([]byte(nil), block...)
			flipped[r.Intn(len(flipped))] ^= 1 << uint(r.Intn(8))
			errCh := make(chan error, 1)
			cs.WriteBlock(9, uint64(ev)<<12, 1, flipped, trusted, func(err error) { errCh <- err })
			eng.Run()
			if err := <-errCh; err != nil {
				detected[cause]++
			}
		}
	}

	t := &Table{
		Title:   "Figure 11: root causes of data-corruption events mitigated by software CRC",
		Columns: []string{"root cause", "events", "share %", "detected", "paper share %"},
	}
	paper := []string{"37", "28", "22", "13"}
	total := 0
	caught := 0
	for c := 0; c < numCauses; c++ {
		total += injected[c]
		caught += detected[c]
		t.Rows = append(t.Rows, []string{
			causeNames[c],
			fmt.Sprintf("%d", injected[c]),
			f1(100 * float64(injected[c]) / float64(events)),
			fmt.Sprintf("%d", detected[c]),
			paper[c],
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d/%d injected corruptions detected by software CRC machinery", caught, total))
	return t
}

func pickCause(r *sim.Rand) int {
	u := r.Float64()
	cum := 0.0
	for c := 0; c < numCauses; c++ {
		cum += causeWeights[c]
		if u <= cum {
			return c
		}
	}
	return numCauses - 1
}
