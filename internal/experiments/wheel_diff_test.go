package experiments

import (
	"testing"
	"time"

	"lunasolar/internal/sim"
)

// TestWheelDifferentialOutput is the timing wheel's end-to-end regression
// gate, the experiment-level counterpart of the firing-order property test
// in internal/sim: a full experiment must produce byte-identical formatted
// output whether coarse timers wait in the hierarchical wheel or degrade to
// the plain heap. Fig6 covers the steady-state RTO churn of all three
// stacks; Table2 covers failure injection, where retransmit backoff and
// probe timers actually fire.
//
// The test flips the package-wide scheduling-class default, so it does not
// run in parallel with anything else.
//
//lint:gate no-wheel
func TestWheelDifferentialOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	if raceEnabled {
		t.Skip("determinism gate, not a memory-safety test; too slow under the race detector")
	}
	prev := sim.CoarseTimers()
	defer sim.SetCoarseTimers(prev)
	// Table2's full quick window costs minutes per run; a short failure
	// window still drives every scenario through injection, retransmit
	// backoff and failover, which is what the equality property needs.
	table2Window = 400 * time.Millisecond
	defer func() { table2Window = 0 }()
	for _, tc := range []struct {
		name string
		fn   func(Options) *Table
	}{
		{"fig6", Fig6},
		{"table2", Table2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(wheel bool) string {
				sim.SetCoarseTimers(wheel)
				return tc.fn(Options{Seed: 7, Quick: true, Workers: 4}).Format()
			}
			on, off := run(true), run(false)
			if on != off {
				t.Fatalf("wheel-on and wheel-off runs diverged at the same seed\n--- wheel ---\n%s\n--- heap ---\n%s", on, off)
			}
		})
	}
}
