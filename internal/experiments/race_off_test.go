//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in; the heavy
// differential tests skip under it (the detector multiplies their cost
// several-fold without adding coverage — they assert determinism, not
// memory safety, and the race run already covers the same code via the
// quick experiment tests).
const raceEnabled = false
