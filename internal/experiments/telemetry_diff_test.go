package experiments

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"lunasolar/internal/simnet"
	"lunasolar/internal/stats"
)

// TestTelemetryDifferentialOutput is the observability layer's end-to-end
// regression gate, the same shape as the wheel and copy-path differentials:
// a full experiment must produce byte-identical formatted output whether the
// telemetry hatch is on or off. Telemetry only counts — INT folding, ECN
// tallies, queue high-water marks — and never changes what a packet costs,
// which path a flow picks, or which random draws the fault engines make, so
// any divergence here is a telemetry bug leaking into the simulation.
//
// The test flips the package-wide telemetry default, so it does not run in
// parallel with anything else.
//
//lint:gate telemetry
func TestTelemetryDifferentialOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	if raceEnabled {
		t.Skip("determinism gate, not a memory-safety test; too slow under the race detector")
	}
	prev := simnet.TelemetryEnabled()
	defer simnet.SetTelemetry(prev)
	// As in the other differentials: a short failure window still drives
	// every Table2 scenario through injection, retransmission and failover.
	table2Window = 400 * time.Millisecond
	defer func() { table2Window = 0 }()
	for _, tc := range []struct {
		name string
		fn   func(Options) *Table
	}{
		{"fig6", Fig6},
		{"table2", Table2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(on bool) string {
				simnet.SetTelemetry(on)
				return tc.fn(Options{Seed: 7, Quick: true, Workers: 4}).Format()
			}
			on, off := run(true), run(false)
			if on != off {
				t.Fatalf("telemetry-on and telemetry-off runs diverged at the same seed\n--- on ---\n%s\n--- off ---\n%s", on, off)
			}
		})
	}
}

// TestExperimentTelemetryExport drives Fig6 with Options.Telemetry and
// checks the merged registry: per-stack latency histograms, per-path INT
// summaries for the Solar cell, and a schema-valid JSON export.
func TestExperimentTelemetryExport(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	prev := simnet.TelemetryEnabled()
	simnet.SetTelemetry(true)
	defer simnet.SetTelemetry(prev)

	tb := Fig6(Options{Seed: 3, Quick: true, Workers: 4, Telemetry: true})
	if tb.Telemetry == nil {
		t.Fatal("Options.Telemetry set but Table.Telemetry is nil")
	}
	for _, name := range []string{
		"fig6/kernel/lat/write/e2e",
		"fig6/luna/lat/write/e2e",
		"fig6/solar/lat/write/sa",
		"fig6/solar/lat/write/fn",
		"fig6/solar/lat/write/bn",
		"fig6/solar/lat/write/ssd",
		"fig6/solar/lat/write/e2e",
	} {
		if h := tb.Telemetry.Histogram(name); h == nil || h.Count() == 0 {
			t.Fatalf("missing per-component histogram %q", name)
		}
	}
	var solarINT float64
	for _, m := range tb.Telemetry.Snapshot().Metrics {
		if strings.HasPrefix(m.Name, "fig6/solar/") && strings.HasSuffix(m.Name, "/acks_with_int") {
			solarINT += m.Value
		}
	}
	if solarINT == 0 {
		t.Fatal("Solar cell exported no per-path INT ack counts with telemetry on")
	}

	var sb strings.Builder
	if err := tb.Telemetry.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Metrics []struct {
			Name string `json:"name"`
			Type string `json:"type"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Schema != stats.SchemaVersion {
		t.Fatalf("schema = %q, want %q", doc.Schema, stats.SchemaVersion)
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("export has no metrics")
	}
}
