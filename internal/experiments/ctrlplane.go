package experiments

import (
	"fmt"
	"time"

	"lunasolar/ebs"
	"lunasolar/internal/sa"
	"lunasolar/internal/stats"
)

// The control-plane scenarios exercise the volume management service the
// way production exercises it: a provisioning storm (create / resize /
// snapshot / clone / delete with duplicated request IDs), a planned
// chunk-server drain riding under a foreground write storm, and a noisy
// tenant held off a victim by the per-tenant token buckets. The control
// plane is serial-only, so every cell owns its cluster and cells shard
// across workers — output is byte-identical for every -workers value.

// ctrlStacks is the stack column of the control-plane scenarios: the two
// storage-network generations the paper's evolution spans.
var ctrlStacks = []ebs.StackKind{ebs.Luna, ebs.Solar}

// ProvisionStormCell is one stack's provisioning-storm measurement.
type ProvisionStormCell struct {
	Stack     string `json:"stack"`
	Creates   int    `json:"creates"`
	Replays   int    `json:"replays"`
	Resizes   int    `json:"resizes"`
	Snapshots int    `json:"snapshots"`
	Clones    int    `json:"clones"`
	Deletes   int    `json:"deletes"`
	Errors    int    `json:"errors"`
	IOErrors  int    `json:"io_errors"`
	// SpreadMax/SpreadMin are the heaviest and lightest block server's
	// live segment counts after the storm — the placement-balance witness.
	SpreadMax int `json:"spread_max"`
	SpreadMin int `json:"spread_min"`
}

// provisionStormCell runs the storm on one stack: tenants t0..t3 create
// volumes round-robin over the compute servers, every fourth create is
// replayed with its original request ID, a third are resized, a quarter
// snapshotted and cloned, a fifth deleted — then every surviving volume
// takes one 4 KiB write to prove the data path works.
func provisionStormCell(opts Options, fn ebs.StackKind) (ProvisionStormCell, *ebs.Cluster) {
	c := ebs.New(clusterConfig(fn, opts.Seed))
	cp := c.ControlPlane()
	cell := ProvisionStormCell{Stack: fn.String()}

	nVols := opts.scale(24, 8)
	type liveVol struct {
		vd     *ebs.VDisk
		reqID  string
		tenant string
	}
	var live []liveVol
	for i := 0; i < nVols; i++ {
		tenant := fmt.Sprintf("t%d", i%4)
		reqID := fmt.Sprintf("create-%d", i)
		vd, err := cp.CreateVolume(reqID, i%c.Computes(), tenant, 8<<20, ebs.DefaultQoS())
		if err != nil {
			cell.Errors++
			continue
		}
		cell.Creates++
		live = append(live, liveVol{vd: vd, reqID: reqID, tenant: tenant})
		if i%4 == 0 {
			// Duplicate delivery: the replay must return the same volume
			// without provisioning a second one.
			again, err := cp.CreateVolume(reqID, i%c.Computes(), tenant, 8<<20, ebs.DefaultQoS())
			if err != nil || again != vd {
				cell.Errors++
			} else {
				cell.Replays++
			}
		}
	}
	for i, lv := range live {
		switch {
		case i%5 == 4:
			if err := cp.DeleteVolume(fmt.Sprintf("del-%d", i), lv.vd.ID); err != nil {
				cell.Errors++
			} else {
				cell.Deletes++
			}
		case i%3 == 0:
			if err := cp.ResizeVolume(fmt.Sprintf("resize-%d", i), lv.vd.ID, 16<<20); err != nil {
				cell.Errors++
			} else {
				cell.Resizes++
			}
		case i%4 == 1:
			snap, err := cp.SnapshotVolume(fmt.Sprintf("snap-%d", i), lv.vd.ID)
			if err != nil {
				cell.Errors++
				continue
			}
			cell.Snapshots++
			if _, err := cp.CloneVolume(fmt.Sprintf("clone-%d", i), snap, i%c.Computes(), lv.tenant, ebs.DefaultQoS()); err != nil {
				cell.Errors++
			} else {
				cell.Clones++
			}
		}
	}

	// Every surviving volume serves one write — provisioning that cannot
	// carry I/O is not provisioning.
	perServer := map[uint32]int{}
	for i, lv := range live {
		if i%5 == 4 {
			continue // deleted above
		}
		vd := lv.vd
		vd.Write(0, make([]byte, 4096), func(r ebs.IOResult) {
			if r.Err != nil {
				cell.IOErrors++
			}
		})
		for _, ref := range c.SegmentRefs(vd.ID) {
			perServer[ref.Server]++
		}
	}
	c.Run()
	for _, addr := range c.BlockServerAddrs() {
		n := perServer[addr]
		if cell.SpreadMax == 0 && cell.SpreadMin == 0 {
			cell.SpreadMax, cell.SpreadMin = n, n
			continue
		}
		if n > cell.SpreadMax {
			cell.SpreadMax = n
		}
		if n < cell.SpreadMin {
			cell.SpreadMin = n
		}
	}
	return cell, c
}

// ProvisionStorm regenerates the provisioning-storm table: a burst of
// lifecycle operations with duplicated request IDs, per stack.
func ProvisionStorm(opts Options) *Table {
	fleet := opts.fleet()
	cells := runCells(fleet, len(ctrlStacks), func(shard int) (ProvisionStormCell, *ebs.Cluster) {
		return provisionStormCell(opts, ctrlStacks[shard])
	})
	t := &Table{
		Title:   "Provisioning storm: volume lifecycle under duplicated deliveries",
		Columns: []string{"stack", "creates", "replays", "resizes", "snaps", "clones", "deletes", "errors", "io errors", "spread max/min"},
		Notes: []string{
			"every fourth create is redelivered with its original request ID; replays must return the original volume",
			"spread = live segments on the heaviest vs lightest block server (failure-domain-aware placement)",
		},
		Perf: &fleet.Perf,
	}
	for _, cell := range cells {
		t.Rows = append(t.Rows, []string{
			cell.Stack, fmt.Sprintf("%d", cell.Creates), fmt.Sprintf("%d", cell.Replays),
			fmt.Sprintf("%d", cell.Resizes), fmt.Sprintf("%d", cell.Snapshots),
			fmt.Sprintf("%d", cell.Clones), fmt.Sprintf("%d", cell.Deletes),
			fmt.Sprintf("%d", cell.Errors), fmt.Sprintf("%d", cell.IOErrors),
			fmt.Sprintf("%d/%d", cell.SpreadMax, cell.SpreadMin),
		})
	}
	return t
}

// DrainCell is one stack's planned-drain measurement: a chunk server is
// drained mid-storm; the gate is zero failed foreground I/Os.
type DrainCell struct {
	Stack        string  `json:"stack"`
	IOs          int     `json:"ios"`
	FailedIOs    int     `json:"failed_ios"`
	Segments     int     `json:"segments"`
	BlocksCopied int     `json:"blocks_copied"`
	MBCopied     float64 `json:"mb_copied"`
	CopyErrors   int     `json:"copy_errors"`
	CutoverP50us float64 `json:"cutover_p50_us"`
	CutoverP99us float64 `json:"cutover_p99_us"`
	DrainMs      float64 `json:"drain_ms"`
}

// drainCell seeds every segment of two volumes, opens a 4 KiB write storm
// across both, and drains chunk server 0 one millisecond in.
func drainCell(opts Options, fn ebs.StackKind) (DrainCell, *ebs.Cluster) {
	c := ebs.New(clusterConfig(fn, opts.Seed))
	cp := c.ControlPlane()
	cell := DrainCell{Stack: fn.String()}

	var vds []*ebs.VDisk
	for i := 0; i < 2; i++ {
		vd, err := cp.CreateVolume(fmt.Sprintf("drain-vol-%d", i), i%c.Computes(), "t0", 8<<20, ebs.DefaultQoS())
		if err != nil {
			panic(err)
		}
		vds = append(vds, vd)
	}
	// Seed one block in every segment so each drained replica has bytes to
	// rebuild.
	seed := make([]byte, 4096)
	for i := range seed {
		seed[i] = byte(i)
	}
	for _, vd := range vds {
		for off := uint64(0); off < vd.Size(); off += sa.SegmentBytes {
			vd.Write(off, seed, func(r ebs.IOResult) {
				if r.Err != nil {
					cell.FailedIOs++
				}
			})
		}
	}
	c.Run()

	// Open-loop storm: sequential 4 KiB writes on both volumes while the
	// drain copies and cuts over underneath them.
	nPerDisk := opts.scale(400, 150)
	for _, vd := range vds {
		vd := vd
		var issue func(i int)
		issue = func(i int) {
			if i == nPerDisk {
				return
			}
			cell.IOs++
			lba := (uint64(i) * 4096) % vd.Size()
			vd.Write(lba, make([]byte, 4096), func(r ebs.IOResult) {
				if r.Err != nil {
					cell.FailedIOs++
				}
			})
			c.Eng.Schedule(10*time.Microsecond, func() { issue(i + 1) })
		}
		issue(0)
	}
	var report ebs.DrainReport
	c.Eng.Schedule(time.Millisecond, func() {
		if err := cp.DrainChunkServer(0, func(r ebs.DrainReport) { report = r }); err != nil {
			panic(err)
		}
	})
	c.Run()

	cell.Segments = report.Segments
	cell.BlocksCopied = report.BlocksCopied
	cell.MBCopied = float64(report.BytesCopied) / 1e6
	cell.CopyErrors = report.CopyErrors
	cell.DrainMs = float64(report.Duration.Nanoseconds()) / 1e6
	h := stats.NewHistogram()
	for _, d := range report.Cutovers {
		h.Record(d)
	}
	cell.CutoverP50us = float64(h.Median().Nanoseconds()) / 1e3
	cell.CutoverP99us = float64(h.P99().Nanoseconds()) / 1e3
	return cell, c
}

// DrainCells runs the planned drain on both stacks and returns the cells
// (shared with the -ctrl-bench-out report).
func DrainCells(opts Options) ([]DrainCell, *Table) {
	fleet := opts.fleet()
	cells := runCells(fleet, len(ctrlStacks), func(shard int) (DrainCell, *ebs.Cluster) {
		return drainCell(opts, ctrlStacks[shard])
	})
	t := &Table{
		Title:   "Planned chunk-server drain under a write storm",
		Columns: []string{"stack", "IOs", "failed", "segments", "blocks", "MB", "copy errs", "cutover p50 (µs)", "cutover p99 (µs)", "drain (ms)"},
		Notes: []string{
			"drain = copy each replica block off the server, then cut the owner's replica set over (survivor stays primary)",
			"gate: zero failed foreground I/Os — in-flight writes retry against the post-cutover owner",
		},
		Perf: &fleet.Perf,
	}
	for _, cell := range cells {
		t.Rows = append(t.Rows, []string{
			cell.Stack, fmt.Sprintf("%d", cell.IOs), fmt.Sprintf("%d", cell.FailedIOs),
			fmt.Sprintf("%d", cell.Segments), fmt.Sprintf("%d", cell.BlocksCopied),
			f1(cell.MBCopied), fmt.Sprintf("%d", cell.CopyErrors),
			f1(cell.CutoverP50us), f1(cell.CutoverP99us), f1(cell.DrainMs),
		})
	}
	return cells, t
}

// Drain is the ebsbench entry point for the planned-drain table.
func Drain(opts Options) *Table {
	_, t := DrainCells(opts)
	return t
}

// NoisyCell is one noisy-neighbor measurement: the victim's latency with
// the aggressor absent, capped by tenant QoS, or uncapped.
type NoisyCell struct {
	Mode         string  `json:"mode"` // baseline | capped | uncapped
	VictimOps    int     `json:"victim_ops"`
	VictimP50us  float64 `json:"victim_p50_us"`
	VictimP99us  float64 `json:"victim_p99_us"`
	AggressorOps int     `json:"aggressor_ops"`
}

// noisyCell runs the victim's open-loop 4 KiB writes, optionally alongside
// a closed-loop 64 KiB aggressor on the same compute server. mode selects
// the aggressor's presence and whether its tenant is rate-capped.
func noisyCell(opts Options, mode string) (NoisyCell, *ebs.Cluster) {
	c := ebs.New(clusterConfig(ebs.Solar, opts.Seed))
	cp := c.ControlPlane()
	cell := NoisyCell{Mode: mode}

	// Generous per-disk QoS on both volumes: only the tenant-level cap
	// (mode "capped") stands between the aggressor and the fabric.
	diskQoS := ebs.QoS(1e6, 100e9)
	if mode == "capped" {
		cp.SetTenantQoS("noisy", sa.QoSSpec{IOPS: 2000, BurstWindow: time.Millisecond})
	}
	victim, err := cp.CreateVolume("victim", 0, "quiet", 16<<20, diskQoS)
	if err != nil {
		panic(err)
	}

	window := time.Duration(opts.scale(40, 15)) * time.Millisecond
	if mode != "baseline" {
		agg, err := cp.CreateVolume("aggressor", 0, "noisy", 64<<20, diskQoS)
		if err != nil {
			panic(err)
		}
		const aggDepth = 16
		aggSpan := agg.Size() - (64 << 10)
		for s := 0; s < aggDepth; s++ {
			s := s
			var pound func(i int)
			pound = func(i int) {
				lba := (uint64(s)*(64<<10) + uint64(i)*aggDepth*(64<<10)) % aggSpan &^ 4095
				agg.Write(lba, make([]byte, 64<<10), func(r ebs.IOResult) {
					cell.AggressorOps++
					if c.Eng.Now().Duration() < window {
						pound(i + 1)
					}
				})
			}
			pound(0)
		}
	}

	h := stats.NewHistogram()
	victimIOs := opts.scale(300, 100)
	var issue func(i int)
	issue = func(i int) {
		if i == victimIOs {
			return
		}
		lba := (uint64(i) * 4096) % victim.Size()
		victim.Write(lba, make([]byte, 4096), func(r ebs.IOResult) {
			if r.Err == nil {
				h.Record(r.Latency)
			}
		})
		c.Eng.Schedule(100*time.Microsecond, func() { issue(i + 1) })
	}
	issue(0)
	c.Run()

	cell.VictimOps = int(h.Count())
	cell.VictimP50us = float64(h.Median().Nanoseconds()) / 1e3
	cell.VictimP99us = float64(h.P99().Nanoseconds()) / 1e3
	return cell, c
}

// noisyModes orders the three noisy-neighbor cells.
var noisyModes = []string{"baseline", "capped", "uncapped"}

// NoisyNeighborCells runs all three modes and returns the cells (shared
// with the -ctrl-bench-out report).
func NoisyNeighborCells(opts Options) ([]NoisyCell, *Table) {
	fleet := opts.fleet()
	cells := runCells(fleet, len(noisyModes), func(shard int) (NoisyCell, *ebs.Cluster) {
		return noisyCell(opts, noisyModes[shard])
	})
	t := &Table{
		Title:   "Noisy neighbor: victim latency vs an aggressor tenant on the same compute server",
		Columns: []string{"mode", "victim ops", "victim p50 (µs)", "victim p99 (µs)", "aggressor ops"},
		Notes: []string{
			"victim: open-loop 4 KiB writes; aggressor: closed-loop depth-16 64 KiB writes, same hypervisor",
			"capped = aggressor tenant limited to 2000 IOPS by the SA-level token buckets; gate: victim p99 <= 2x baseline",
		},
		Perf: &fleet.Perf,
	}
	for _, cell := range cells {
		t.Rows = append(t.Rows, []string{
			cell.Mode, fmt.Sprintf("%d", cell.VictimOps),
			f1(cell.VictimP50us), f1(cell.VictimP99us), fmt.Sprintf("%d", cell.AggressorOps),
		})
	}
	return cells, t
}

// NoisyNeighbor is the ebsbench entry point for the noisy-neighbor matrix.
func NoisyNeighbor(opts Options) *Table {
	_, t := NoisyNeighborCells(opts)
	return t
}
