package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 1, Quick: true} }

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("no cell (%d,%d) in %q", row, col, tab.Title)
	}
	return tab.Rows[row][col]
}

func cellF(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(cell(t, tab, row, col)), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, cell(t, tab, row, col))
	}
	return v
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	out := tab.Format()
	for _, want := range []string{"=== demo ===", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Shares(t *testing.T) {
	tab := Fig3(quickOpts())
	if len(tab.Rows) == 0 {
		t.Fatal("empty")
	}
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "EBS share of TX traffic: 63%") {
			found = true
		}
	}
	if !found {
		t.Fatalf("TX share off: %v", tab.Notes)
	}
}

func TestFig4Peak(t *testing.T) {
	tab := Fig4(quickOpts())
	if len(tab.Rows) != 24 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Midday average should exceed the overnight average by ≥2x.
	night := cellF(t, tab, 2, 1)
	midday := cellF(t, tab, 14, 1)
	if midday < 2*night {
		t.Fatalf("no diurnal swing: %v vs %v", night, midday)
	}
}

func TestFig5FortyPercent(t *testing.T) {
	tab := Fig5(quickOpts())
	// Row for 4K: write RPC CDF ~40%.
	var at4k float64
	for i, row := range tab.Rows {
		if row[0] == "4K" {
			at4k = cellF(t, tab, i, 4)
		}
	}
	if at4k < 35 || at4k > 50 {
		t.Fatalf("P(RPC write<=4K) = %v%%", at4k)
	}
}

func TestFig11AllDetected(t *testing.T) {
	tab := Fig11(quickOpts())
	for i := range tab.Rows {
		injected := cellF(t, tab, i, 1)
		detected := cellF(t, tab, i, 3)
		if injected != detected {
			t.Fatalf("%s: %v injected, %v detected", tab.Rows[i][0], injected, detected)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	tab := Table3(quickOpts())
	want := map[string][2]float64{
		"Addr": {5.1, 8.1}, "Block": {0.2, 8.6}, "QoS": {0.1, 0.4},
		"SEC": {2.8, 0.9}, "CRC": {0.3, 0.0},
	}
	for i, row := range tab.Rows {
		w, ok := want[row[0]]
		if !ok {
			continue
		}
		lut, bram := cellF(t, tab, i, 1), cellF(t, tab, i, 2)
		if diff(lut, w[0]) > 0.3 || diff(bram, w[1]) > 0.6 {
			t.Fatalf("%s: %v/%v, paper %v/%v", row[0], lut, bram, w[0], w[1])
		}
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestFig6Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	tab := Fig6(quickOpts())
	// Panel (c) write p50: rows 6,7,8 are kernel/luna/solar e2e (col 6).
	kernel := cellF(t, tab, 6, 6)
	luna := cellF(t, tab, 7, 6)
	solar := cellF(t, tab, 8, 6)
	if !(kernel > luna && luna > solar) {
		t.Fatalf("ordering violated: %v/%v/%v", kernel, luna, solar)
	}
}

func TestFig14SolarWins(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	o := quickOpts()
	luna1, _ := runFio(o, lunaKind(), 1, 4096)
	solar1, _ := runFio(o, solarKind(), 1, 4096)
	if solar1 <= luna1 {
		t.Fatalf("solar (%v) should beat luna (%v) at one core", solar1, luna1)
	}
}
