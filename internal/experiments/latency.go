package experiments

import (
	"fmt"
	"time"

	"lunasolar/ebs"
	"lunasolar/internal/sim"
	"lunasolar/internal/stats"
	"lunasolar/internal/trace"
)

// clusterConfig returns the shared evaluation cluster: 8 compute servers in
// one pod, 3 block + 5 chunk servers in the other.
func clusterConfig(fn ebs.StackKind, seed int64) ebs.Config {
	cfg := ebs.DefaultConfig(fn)
	cfg.Fabric.RacksPerPod = 2
	cfg.Fabric.HostsPerRack = 4
	cfg.Fabric.SpinesPerPod = 2
	cfg.Fabric.CoresPerDC = 2
	cfg.ComputeServers = 8
	cfg.BlockServers = 3
	cfg.ChunkServers = 5
	cfg.Seed = seed
	return cfg
}

// driveMixed issues n I/Os per disk, open-loop with exponential
// inter-arrival times, alternating reads and writes with the given read
// fraction and 4 KiB size. Returns after the run drains.
func driveMixed(c *ebs.Cluster, vds []*ebs.VDisk, nPerDisk int, readFrac float64, meanGap time.Duration, size int) {
	r := sim.NewRand(c.Config().Seed * 7731)
	for _, vd := range vds {
		vd := vd
		issued := 0
		span := vd.Size() - uint64(size)
		var tick func()
		tick = func() {
			if issued >= nPerDisk {
				return
			}
			issued++
			lba := (uint64(r.Int63n(int64(span)))) &^ 4095
			if r.Bernoulli(readFrac) {
				vd.Read(lba, size, nil)
			} else {
				data := make([]byte, size)
				r.Read(data[:16]) // header-ish entropy; full fill unnecessary
				vd.Write(lba, data, nil)
			}
			c.Eng.Schedule(r.Exp(meanGap), tick)
		}
		tick()
	}
	c.Run()
}

// Fig6 regenerates the 4 KiB latency-breakdown figure: per-component
// (FN/BN/SSD/SA) and end-to-end latency at the median and 95th percentile,
// for reads and writes, under kernel TCP, Luna and Solar.
func Fig6(opts Options) *Table {
	n := opts.scale(1500, 250)
	stacks := []ebs.StackKind{ebs.KernelTCP, ebs.Luna, ebs.Solar}
	type key struct {
		op string
		q  float64
	}
	type shardOut struct {
		parts map[key][]time.Duration
		e2e   map[key]time.Duration
		reg   *stats.Registry
	}

	// One share-nothing shard per stack: each builds its own engine,
	// cluster and workload; results merge in shard order.
	fleet := opts.fleet()
	perStack := runCells(fleet, len(stacks), func(shard int) (shardOut, *ebs.Cluster) {
		fn := stacks[shard]
		c := ebs.New(clusterConfig(fn, opts.Seed))
		var vds []*ebs.VDisk
		for i := 0; i < c.Computes(); i++ {
			vds = append(vds, c.MustProvision(i, 256<<20, ebs.DefaultQoS()))
		}
		driveMixed(c, vds, n, 0.5, 100*time.Microsecond, 4096)
		out := shardOut{parts: map[key][]time.Duration{}, e2e: map[key]time.Duration{}}
		for _, op := range []string{"read", "write"} {
			for _, q := range []float64{0.5, 0.95} {
				parts, e2e := c.Collector().Breakdown(op, q)
				out.parts[key{op, q}] = parts
				out.e2e[key{op, q}] = e2e
			}
		}
		if opts.Telemetry {
			out.reg = stats.NewRegistry()
			c.ExportMetrics(out.reg, "")
		}
		return out, c
	})
	results := map[ebs.StackKind]map[key][]time.Duration{}
	e2es := map[ebs.StackKind]map[key]time.Duration{}
	for i, fn := range stacks {
		results[fn] = perStack[i].parts
		e2es[fn] = perStack[i].e2e
	}

	t := &Table{
		Title:   "Figure 6: I/O latency breakdown of 4KB size (µs)",
		Columns: []string{"panel", "stack", "FN", "BN", "SSD", "SA", "e2e"},
	}
	panels := []struct {
		label string
		op    string
		q     float64
	}{
		{"(a) read p50", "read", 0.5},
		{"(b) read p95", "read", 0.95},
		{"(c) write p50", "write", 0.5},
		{"(d) write p95", "write", 0.95},
	}
	for _, p := range panels {
		for _, fn := range stacks {
			parts := results[fn][key{p.op, p.q}]
			t.Rows = append(t.Rows, []string{
				p.label, fn.String(),
				us(parts[trace.FN]), us(parts[trace.BN]),
				us(parts[trace.SSD]), us(parts[trace.SA]),
				us(e2es[fn][key{p.op, p.q}]),
			})
		}
	}
	if opts.Telemetry {
		t.Telemetry = stats.NewRegistry()
		for i, fn := range stacks {
			t.Telemetry.Merge(perStack[i].reg, fmt.Sprintf("fig6/%s/", fn))
		}
	}
	kw := e2es[ebs.KernelTCP][key{"write", 0.5}]
	lw := e2es[ebs.Luna][key{"write", 0.5}]
	sw := e2es[ebs.Solar][key{"write", 0.5}]
	t.Notes = append(t.Notes,
		fmt.Sprintf("write p50 e2e: kernel→luna %.0f%% reduction (paper: Luna cuts FN ~80%%); luna→solar %.0f%% (paper: up to 69%%)",
			100*(1-float64(lw)/float64(kw)), 100*(1-float64(sw)/float64(lw))),
		"QoS policy delay excluded, as in the paper's methodology")
	t.Perf = &fleet.Perf
	return t
}

// Fig15 regenerates the single-write latency figure: median and 99th
// percentile of a lone 4 KiB write under light and heavy background load,
// for Luna, RDMA, Solar* and Solar.
func Fig15(opts Options) *Table {
	probes := opts.scale(300, 60)
	stacks := []ebs.StackKind{ebs.Luna, ebs.RDMA, ebs.SolarStar, ebs.Solar}

	type cell struct {
		heavy bool
		fn    ebs.StackKind
	}
	var cells []cell
	for _, heavy := range []bool{false, true} {
		for _, fn := range stacks {
			cells = append(cells, cell{heavy, fn})
		}
	}

	fleet := opts.fleet()
	rows := runCells(fleet, len(cells), func(shard int) ([]string, *ebs.Cluster) {
		cl := cells[shard]
		label := "light"
		if cl.heavy {
			label = "heavy"
		}
		cfg := clusterConfig(cl.fn, opts.Seed)
		cfg.BareMetal = true // the Fig. 14/15 testbed is the bare-metal DPU era
		c := ebs.New(cfg)
		probe := c.MustProvision(0, 256<<20, ebs.DefaultQoS())

		if cl.heavy {
			// Saturating background writers on three other computes.
			for i := 1; i <= 3; i++ {
				bg := c.MustProvision(i, 256<<20, ebs.DefaultQoS())
				startBackground(c, bg, 8, 16<<10)
			}
			c.RunFor(10 * time.Millisecond) // reach steady state
		}

		h := stats.NewHistogram()
		issued := 0
		var tick func()
		r := sim.NewRand(opts.Seed + 99)
		tick = func() {
			if issued >= probes {
				return
			}
			issued++
			lba := uint64(r.Int63n(int64(probe.Size()-4096))) &^ 4095
			probe.Write(lba, make([]byte, 4096), func(res ebs.IOResult) {
				h.Record(res.Latency)
				c.Eng.Schedule(200*time.Microsecond, tick)
			})
		}
		tick()
		c.RunFor(time.Duration(probes)*200*time.Microsecond + 20*time.Millisecond)
		return []string{label, cl.fn.String(), us(h.Median()), us(h.P99())}, c
	})

	t := &Table{
		Title:   "Figure 15: I/O latency of a single 4KB write (µs)",
		Columns: []string{"load", "stack", "median", "99th"},
		Rows:    rows,
	}
	t.Notes = append(t.Notes,
		"paper: Solar close to RDMA under light load; under heavy load Solar keeps the lowest tail")
	t.Perf = &fleet.Perf
	return t
}

// startBackground runs an endless closed loop of `depth` outstanding writes
// of the given size on vd.
func startBackground(c *ebs.Cluster, vd *ebs.VDisk, depth, size int) {
	r := sim.NewRand(int64(vd.ID) * 31)
	var issue func()
	issue = func() {
		lba := uint64(r.Int63n(int64(vd.Size()-uint64(size)))) &^ 4095
		vd.Write(lba, make([]byte, size), func(ebs.IOResult) { issue() })
	}
	for i := 0; i < depth; i++ {
		issue()
	}
}
