// Package lint is lunavet's analysis suite: seven analyzers that enforce,
// at analysis time, the invariants the simulator otherwise only catches at
// run time — bit-identical virtual-time output (determinism, maporder,
// fluiddet), slab/packet Retain-Release pairing (slabown), allocation-free
// hot paths (hotalloc), partition ownership of engine/pool/collector state
// (partown), and hatch↔gate pairing for the differential escape hatches
// (hatchgate).
//
// The package deliberately depends only on the standard library. The types
// here mirror golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic)
// closely enough that porting onto the real framework is a mechanical
// change, but the repo builds and lints with nothing beyond the Go
// toolchain — no module downloads, no vendoring.
//
// Facts. An analyzer may declare a Collect hook that runs over every
// loaded package before any Run, exporting Facts — serializable
// (kind, name, position) records such as "this type is partition-owned"
// or "this test gates hatch X". Run sees the whole suite's facts, and a
// Finish hook runs once after every package for suite-wide completeness
// checks (a hatch with no gate). In `go vet -vettool` mode the facts ride
// in the .vetx files vet already threads through the package graph.
//
// Suppressions. A diagnostic is suppressed by a comment on the offending
// line or the line directly above it:
//
//	//lint:allow <key>[,<key>...] — <justification>
//
// where <key> is the analyzer name or the diagnostic category (e.g.
// "wallclock"), and the justification is mandatory: an allow directive
// with no stated reason is itself reported. The driver counts suppressed
// diagnostics and publishes the full directive inventory (lunavet
// -suppressions) so CI can surface drift in the step summary.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a named check with a Run function
// that inspects a package and reports diagnostics through the Pass.
// Collect and Finish are optional fact hooks (see the package comment).
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "determinism"
	Doc  string // one-paragraph description of what it enforces
	Run  func(*Pass) error

	// Collect runs over every loaded package (fixtures and dependencies
	// included) before any Run, exporting facts via Pass.ExportFact.
	Collect func(*Pass) error
	// Finish runs once per suite after every package's Run, for
	// completeness checks over the collected facts. Diagnostics it
	// returns carry resolved Positions (they may point into any package).
	Finish func(*FactSet) []Diagnostic
}

// All returns the full lunavet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MapOrder, SlabOwn, HotAlloc, PartOwn, FluidDet, HatchGate}
}

// ByName resolves a comma-separated analyzer list ("determinism,slabown").
// An empty spec means the whole suite.
func ByName(spec string) ([]*Analyzer, error) {
	if spec == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// A Diagnostic is one finding at a position. Category is the suppression
// key ("wallclock", "globalrand", ...); it defaults to the analyzer name.
// Pos is set for diagnostics reported during a package Run; suite-level
// (Finish) diagnostics carry a resolved Position instead, since their
// positions may refer to a different package's files.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position // resolved; authoritative when valid
	Analyzer string
	Category string
	Message  string
}

// position resolves the diagnostic's location against fset.
func (d Diagnostic) position(fset *token.FileSet) token.Position {
	if d.Position.Line > 0 {
		return d.Position
	}
	return fset.Position(d.Pos)
}

// A Fact is one serializable cross-package record an analyzer's Collect
// hook exports: a marked type, a declared hatch, a registered gate. Facts
// carry resolved file/line (not token.Pos) so they survive the trip
// through a .vetx file between `go vet` invocations.
type Fact struct {
	Analyzer string `json:"analyzer"`
	Kind     string `json:"kind"` // e.g. "partowned", "spanning", "hatch", "gate"
	Name     string `json:"name"` // qualified name ("sim.Engine") or key ("no-wheel")
	Detail   string `json:"detail,omitempty"`
	Pkg      string `json:"pkg"`
	File     string `json:"file"`
	Line     int    `json:"line"`
}

// position converts the fact's resolved file/line into a token.Position
// usable on a suite-level Diagnostic.
func (f Fact) position() token.Position {
	return token.Position{Filename: f.File, Line: f.Line}
}

// A FactSet indexes the suite's collected facts.
type FactSet struct {
	facts []Fact
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet { return &FactSet{} }

// Add appends one fact.
func (fs *FactSet) Add(f Fact) { fs.facts = append(fs.facts, f) }

// All returns every fact in collection order.
func (fs *FactSet) All() []Fact { return fs.facts }

// Kind returns the facts of one analyzer and kind, in collection order.
func (fs *FactSet) Kind(analyzer, kind string) []Fact {
	var out []Fact
	for _, f := range fs.facts {
		if f.Analyzer == analyzer && f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

// Has reports whether any fact matches (analyzer, kind, name).
func (fs *FactSet) Has(analyzer, kind, name string) bool {
	for _, f := range fs.facts {
		if f.Analyzer == analyzer && f.Kind == kind && f.Name == name {
			return true
		}
	}
	return false
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	TestFiles []*ast.File // parse-only (no type info); markers and wants
	Pkg       *types.Package
	TypesInfo *types.Info
	Facts     *FactSet // the whole suite's facts (read in Run, written in Collect)

	diags []Diagnostic
}

// Reportf records a diagnostic under the given suppression category
// (empty means the analyzer's own name).
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	if category == "" {
		category = p.Analyzer.Name
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact records a fact at pos for the current analyzer, resolving
// the position immediately so the fact is self-contained.
func (p *Pass) ExportFact(kind, name, detail string, pos token.Pos) {
	position := p.Fset.Position(pos)
	p.Facts.Add(Fact{
		Analyzer: p.Analyzer.Name,
		Kind:     kind,
		Name:     name,
		Detail:   detail,
		Pkg:      p.Pkg.Path(),
		File:     position.Filename,
		Line:     position.Line,
	})
}

// AllowInfo is one //lint:allow directive for the suppression inventory:
// where it is, what it suppresses, why, and how many diagnostics it
// actually absorbed in this run (0 = candidate drift).
type AllowInfo struct {
	File          string   `json:"file"`
	Line          int      `json:"line"`
	Keys          []string `json:"keys"`
	Justification string   `json:"justification"`
	Used          int      `json:"used"`

	counter *int // live count, shared with the directive; re-read after Finish
}

// used returns the directive's final usage count.
func (a AllowInfo) used() int {
	if a.counter != nil {
		return *a.counter
	}
	return a.Used
}

// PkgResult is one package's analysis outcome.
type PkgResult struct {
	Pkg        *Package
	Kept       []Diagnostic
	Suppressed []Diagnostic
	Allows     []AllowInfo
}

// SuiteResult is a whole-suite run: per-package results in input order,
// plus the suite-level (Finish) diagnostics and the collected facts.
type SuiteResult struct {
	Pkgs   []*PkgResult
	Finish []Diagnostic // suite-level diagnostics surviving suppression
	Facts  *FactSet
}

// RunSuite executes the full fact/run/finish pipeline over the loaded
// packages: every analyzer's Collect over every package, then the
// analyzers over each non-dependency package with the shared fact set,
// then each Finish hook. Finish diagnostics honor //lint:allow directives
// at their positions like any other diagnostic.
func RunSuite(pkgs []*Package, analyzers []*Analyzer) (*SuiteResult, error) {
	fs := NewFactSet()
	for _, pkg := range pkgs {
		if err := CollectPackage(pkg, analyzers, fs); err != nil {
			return nil, err
		}
	}
	res := &SuiteResult{Facts: fs}
	allAllows := allowSet{}
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		pr, allows, err := analyzePackage(pkg, analyzers, fs)
		if err != nil {
			return nil, err
		}
		res.Pkgs = append(res.Pkgs, pr)
		for file, byLine := range allows {
			if allAllows[file] == nil {
				allAllows[file] = byLine
			} else {
				for line, dirs := range byLine {
					allAllows[file][line] = append(allAllows[file][line], dirs...)
				}
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		for _, d := range a.Finish(fs) {
			if allAllows.covers(d.Position, d) {
				continue // counted on the directive; inventory shows it
			}
			res.Finish = append(res.Finish, d)
		}
	}
	sort.SliceStable(res.Finish, func(i, j int) bool {
		pi, pj := res.Finish[i].Position, res.Finish[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	// Inventory usage counts are final only after Finish suppression ran.
	for _, pr := range res.Pkgs {
		for i := range pr.Allows {
			pr.Allows[i].Used = pr.Allows[i].used()
		}
	}
	return res, nil
}

// CollectPackage runs every analyzer's Collect hook over one package,
// adding to fs. Analyzer panics come back as errors so a broken Collect
// cannot silently produce an empty fact set.
func CollectPackage(pkg *Package, analyzers []*Analyzer, fs *FactSet) error {
	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		pass := newPass(a, pkg, fs)
		if err := protect(a, pkg, func() error { return a.Collect(pass) }); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the given analyzers over one loaded package and returns the
// surviving diagnostics plus the ones an allow directive suppressed
// (reported separately so drivers can count them). Facts are collected
// from this package only — the per-package entry point the vettool path
// builds on (it seeds the fact set from dependencies' .vetx files via
// RunWithFacts). Malformed allow directives — no justification after the
// key list — come back as diagnostics of the pseudo-analyzer "allow".
func Run(pkg *Package, analyzers []*Analyzer) (kept, suppressed []Diagnostic, err error) {
	fs := NewFactSet()
	if err := CollectPackage(pkg, analyzers, fs); err != nil {
		return nil, nil, err
	}
	return RunWithFacts(pkg, analyzers, fs)
}

// RunWithFacts is Run with a caller-provided fact set (which must already
// include this package's own facts).
func RunWithFacts(pkg *Package, analyzers []*Analyzer, fs *FactSet) (kept, suppressed []Diagnostic, err error) {
	pr, _, err := analyzePackage(pkg, analyzers, fs)
	if err != nil {
		return nil, nil, err
	}
	return pr.Kept, pr.Suppressed, nil
}

func newPass(a *Analyzer, pkg *Package, fs *FactSet) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		TestFiles: pkg.TestFiles,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Facts:     fs,
	}
}

// protect converts an analyzer panic into an error: a crashed analyzer
// must fail the run (exit 2 in the drivers), never pass it silently.
func protect(a *Analyzer, pkg *Package, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s: %s: analyzer panicked: %v", a.Name, pkg.ImportPath, r)
		}
	}()
	if e := fn(); e != nil {
		return fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, e)
	}
	return nil
}

// analyzePackage runs the analyzers over one package and applies the
// suppression directives, returning the result plus the package's
// directive set (for suite-level Finish suppression).
func analyzePackage(pkg *Package, analyzers []*Analyzer, fs *FactSet) (*PkgResult, allowSet, error) {
	files := append([]*ast.File{}, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	allows, bad := collectAllows(pkg.Fset, files)
	var all []Diagnostic
	for _, a := range analyzers {
		pass := newPass(a, pkg, fs)
		if err := protect(a, pkg, func() error { return a.Run(pass) }); err != nil {
			return nil, nil, err
		}
		all = append(all, pass.diags...)
	}
	pr := &PkgResult{Pkg: pkg}
	for _, d := range all {
		if allows.covers(d.position(pkg.Fset), d) {
			pr.Suppressed = append(pr.Suppressed, d)
		} else {
			pr.Kept = append(pr.Kept, d)
		}
	}
	pr.Kept = append(pr.Kept, bad...)
	sortDiags(pkg.Fset, pr.Kept)
	sortDiags(pkg.Fset, pr.Suppressed)
	pr.Allows = allows.inventory()
	return pr, allows, nil
}

func sortDiags(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := ds[i].position(fset), ds[j].position(fset)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// allowDirective is one parsed //lint:allow comment. used counts the
// diagnostics it suppressed this run (pointer-shared across the indexes).
type allowDirective struct {
	keys          []string
	justification string
	file          string
	line          int
	used          *int
}

// allowSet indexes directives by file and line.
type allowSet map[string]map[int][]*allowDirective

const allowPrefix = "//lint:allow"

// collectAllows scans every comment in the files for allow directives.
// Directives missing a justification are returned as diagnostics.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Diagnostic) {
	set := allowSet{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowfoo — not ours
				}
				keys, justification := parseAllow(rest)
				pos := fset.Position(c.Pos())
				if len(keys) == 0 || justification == "" {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "allow",
						Category: "allow",
						Message:  "//lint:allow needs a key and a justification: //lint:allow <key> — <why this is safe>",
					})
					continue
				}
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*allowDirective{}
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], &allowDirective{
					keys:          keys,
					justification: justification,
					file:          pos.Filename,
					line:          pos.Line,
					used:          new(int),
				})
			}
		}
	}
	return set, bad
}

// parseAllow splits "wallclock, select — measuring wall time" into its
// keys and the justification following them (empty when absent). Keys are
// comma-separated; the justification is everything after the last key (an
// optional "—", "--" or ":" separator is tolerated and stripped).
func parseAllow(rest string) (keys []string, justification string) {
	fields := strings.Fields(rest)
	i := 0
	for ; i < len(fields); i++ {
		f := fields[i]
		if strings.Trim(f, "—-:") == "" {
			break // separator with no key before it: justification starts here
		}
		for _, part := range strings.Split(f, ",") {
			if p := strings.TrimRight(part, ":"); p != "" {
				keys = append(keys, p)
			}
		}
		if !strings.HasSuffix(f, ",") {
			i++
			break // a key without a trailing comma is the last one
		}
	}
	return keys, strings.TrimSpace(strings.TrimLeft(strings.Join(fields[i:], " "), "—-: \t"))
}

// covers reports whether a directive on the diagnostic's line or the line
// directly above names the diagnostic's analyzer or category, bumping the
// matching directive's usage count.
func (s allowSet) covers(pos token.Position, d Diagnostic) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, dir := range byLine[line] {
			for _, k := range dir.keys {
				if k == d.Analyzer || k == d.Category {
					*dir.used++
					return true
				}
			}
		}
	}
	return false
}

// scopeMatch reports whether a package import path falls under pattern.
// Patterns are path fragments matched on segment boundaries: "internal/sim"
// matches "lunasolar/internal/sim" and "lunasolar/internal/sim/runtime" but
// not "lunasolar/internal/simnet". A trailing '*' widens the last segment
// to a prefix: "internal/sim*" matches simnet too.
func scopeMatch(path, pattern string) bool {
	if strings.HasSuffix(pattern, "*") {
		stem := strings.TrimSuffix(pattern, "*")
		for i := 0; i+len(stem) <= len(path); i++ {
			if (i == 0 || path[i-1] == '/') && path[i:i+len(stem)] == stem {
				return true
			}
		}
		return false
	}
	if path == pattern || strings.HasPrefix(path, pattern+"/") {
		return true
	}
	if strings.HasSuffix(path, "/"+pattern) || strings.Contains(path, "/"+pattern+"/") {
		return true
	}
	return false
}

// inScope reports whether the package matches any of the patterns.
func inScope(path string, patterns []string) bool {
	for _, pat := range patterns {
		if scopeMatch(path, pat) {
			return true
		}
	}
	return false
}

// inventory flattens the set into sorted AllowInfo records.
func (s allowSet) inventory() []AllowInfo {
	var files []string
	for f := range s {
		files = append(files, f)
	}
	sort.Strings(files)
	var out []AllowInfo
	for _, f := range files {
		byLine := s[f]
		var lines []int
		for l := range byLine {
			lines = append(lines, l)
		}
		sort.Ints(lines)
		for _, l := range lines {
			for _, dir := range byLine[l] {
				out = append(out, AllowInfo{
					File:          dir.file,
					Line:          dir.line,
					Keys:          dir.keys,
					Justification: dir.justification,
					Used:          *dir.used,
					counter:       dir.used,
				})
			}
		}
	}
	return out
}
