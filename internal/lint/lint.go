// Package lint is lunavet's analysis suite: four analyzers that enforce,
// at analysis time, the invariants the simulator otherwise only catches at
// run time — bit-identical virtual-time output (determinism, maporder),
// slab/packet Retain-Release pairing (slabown), and allocation-free hot
// paths (hotalloc).
//
// The package deliberately depends only on the standard library. The types
// here mirror golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic)
// closely enough that porting onto the real framework is a mechanical
// change, but the repo builds and lints with nothing beyond the Go
// toolchain — no module downloads, no vendoring.
//
// Suppressions. A diagnostic is suppressed by a comment on the offending
// line or the line directly above it:
//
//	//lint:allow <key>[,<key>...] — <justification>
//
// where <key> is the analyzer name or the diagnostic category (e.g.
// "wallclock"), and the justification is mandatory: an allow directive
// with no stated reason is itself reported. The driver counts suppressed
// diagnostics so CI can surface them in the step summary.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a named check with a Run function
// that inspects a package and reports diagnostics through the Pass.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "determinism"
	Doc  string // one-paragraph description of what it enforces
	Run  func(*Pass) error
}

// All returns the full lunavet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MapOrder, SlabOwn, HotAlloc}
}

// ByName resolves a comma-separated analyzer list ("determinism,slabown").
// An empty spec means the whole suite.
func ByName(spec string) ([]*Analyzer, error) {
	if spec == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// A Diagnostic is one finding at a position. Category is the suppression
// key ("wallclock", "globalrand", ...); it defaults to the analyzer name.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Category string
	Message  string
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic under the given suppression category
// (empty means the analyzer's own name).
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	if category == "" {
		category = p.Analyzer.Name
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over one loaded package and returns the
// surviving diagnostics plus the ones an allow directive suppressed
// (reported separately so drivers can count them). Malformed allow
// directives — no justification after the key list — come back as
// diagnostics of the pseudo-analyzer "allow".
func Run(pkg *Package, analyzers []*Analyzer) (kept, suppressed []Diagnostic, err error) {
	allows, bad := collectAllows(pkg.Fset, pkg.Files)
	var all []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
		all = append(all, pass.diags...)
	}
	for _, d := range all {
		if allows.covers(pkg.Fset.Position(d.Pos), d) {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	kept = append(kept, bad...)
	sortDiags(pkg.Fset, kept)
	sortDiags(pkg.Fset, suppressed)
	return kept, suppressed, nil
}

func sortDiags(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	keys []string
	line int // the source line the directive is written on
}

// allowSet indexes directives by file and line.
type allowSet map[string]map[int][]allowDirective

const allowPrefix = "//lint:allow"

// collectAllows scans every comment in the package for allow directives.
// Directives missing a justification are returned as diagnostics.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Diagnostic) {
	set := allowSet{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowfoo — not ours
				}
				keys, justified := parseAllow(rest)
				pos := fset.Position(c.Pos())
				if len(keys) == 0 || !justified {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "allow",
						Category: "allow",
						Message:  "//lint:allow needs a key and a justification: //lint:allow <key> — <why this is safe>",
					})
					continue
				}
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int][]allowDirective{}
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], allowDirective{keys: keys, line: pos.Line})
			}
		}
	}
	return set, bad
}

// parseAllow splits "wallclock, select — measuring wall time" into its
// keys and reports whether a non-empty justification follows them. Keys
// are comma-separated; the justification is everything after the last key
// (an optional "—", "--" or ":" separator is tolerated and stripped).
func parseAllow(rest string) (keys []string, justified bool) {
	fields := strings.Fields(rest)
	i := 0
	for ; i < len(fields); i++ {
		f := fields[i]
		if trimmed := strings.TrimRight(strings.TrimSuffix(f, ","), ":"); trimmed != "" {
			keys = append(keys, trimmed)
		}
		if !strings.HasSuffix(f, ",") {
			i++
			break // a key without a trailing comma is the last one
		}
	}
	just := strings.TrimSpace(strings.TrimLeft(strings.Join(fields[i:], " "), "—-: \t"))
	return keys, just != ""
}

// covers reports whether a directive on the diagnostic's line or the line
// directly above names the diagnostic's analyzer or category.
func (s allowSet) covers(pos token.Position, d Diagnostic) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, dir := range byLine[line] {
			for _, k := range dir.keys {
				if k == d.Analyzer || k == d.Category {
					return true
				}
			}
		}
	}
	return false
}

// scopeMatch reports whether a package import path falls under pattern.
// Patterns are path fragments matched on segment boundaries: "internal/sim"
// matches "lunasolar/internal/sim" and "lunasolar/internal/sim/runtime" but
// not "lunasolar/internal/simnet". A trailing '*' widens the last segment
// to a prefix: "internal/sim*" matches simnet too.
func scopeMatch(path, pattern string) bool {
	if strings.HasSuffix(pattern, "*") {
		stem := strings.TrimSuffix(pattern, "*")
		for i := 0; i+len(stem) <= len(path); i++ {
			if (i == 0 || path[i-1] == '/') && path[i:i+len(stem)] == stem {
				return true
			}
		}
		return false
	}
	if path == pattern || strings.HasPrefix(path, pattern+"/") {
		return true
	}
	if strings.HasSuffix(path, "/"+pattern) || strings.Contains(path, "/"+pattern+"/") {
		return true
	}
	return false
}

// inScope reports whether the package matches any of the patterns.
func inScope(path string, patterns []string) bool {
	for _, pat := range patterns {
		if scopeMatch(path, pat) {
			return true
		}
	}
	return false
}
