package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lunasolar/internal/lint"
)

// The loader feeds everything downstream — analyzers, facts, suppression
// scanning — so its contract is pinned here: test files parse comment-only,
// dependencies arrive DepOnly, file-less packages are skipped, and load
// failures surface as errors instead of silently analyzing less code.

func TestLoadFixtureModule(t *testing.T) {
	pkgs, err := lint.Load("testdata/src", []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := map[string]*lint.Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if p.Fset != pkgs[0].Fset {
			t.Errorf("%s: packages from one Load must share a FileSet", p.ImportPath)
		}
	}
	hd := byPath["lintdata/ebs/hatchdata"]
	if hd == nil {
		t.Fatalf("lintdata/ebs/hatchdata not loaded; got %d packages", len(pkgs))
	}
	if hd.DepOnly {
		t.Errorf("hatchdata matched the pattern; must not be DepOnly")
	}
	if hd.Types == nil || hd.TypesInfo == nil {
		t.Errorf("hatchdata loaded without type information")
	}
	// The gate markers live in hatchdata_test.go: the loader must parse it
	// (comments included) even though tests are never type-checked.
	if len(hd.TestFiles) == 0 {
		t.Fatalf("hatchdata has a _test.go file; TestFiles is empty")
	}
	var sawGate bool
	for _, f := range hd.TestFiles {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//lint:gate ") {
					sawGate = true
				}
			}
		}
	}
	if !sawGate {
		t.Errorf("no //lint:gate comment visible in hatchdata's TestFiles; comment parsing regressed")
	}
}

func TestLoadDepsAreDepOnly(t *testing.T) {
	pkgs, err := lint.Load("testdata/src", []string{"lintdata/ebs/partdata"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	depOnly := map[string]bool{}
	for _, p := range pkgs {
		depOnly[p.ImportPath] = p.DepOnly
	}
	if got, ok := depOnly["lintdata/ebs/partdata"]; !ok || got {
		t.Errorf("partdata: want loaded with DepOnly=false, got ok=%v DepOnly=%v", ok, got)
	}
	// partdata imports the marked stand-ins; they must load as DepOnly so
	// fact collection sees the //lint:partowned markers without analyzing
	// (or re-reporting on) dependency code.
	for _, dep := range []string{"lintdata/sim", "lintdata/simnet", "lintdata/trace"} {
		if got, ok := depOnly[dep]; !ok || !got {
			t.Errorf("%s: want loaded with DepOnly=true, got ok=%v DepOnly=%v", dep, ok, got)
		}
	}
}

func TestLoadBadDir(t *testing.T) {
	if _, err := lint.Load(filepath.Join("testdata", "no-such-dir"), []string{"./..."}); err == nil {
		t.Fatalf("Load from a missing directory: want error, got nil")
	}
}

func TestLoadBrokenSource(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "go.mod", "module broken\n\ngo 1.22\n")
	writeFile(t, dir, "broken.go", "package broken\n\nfunc f() { this is not go\n")
	if _, err := lint.Load(dir, []string{"./..."}); err == nil {
		t.Fatalf("Load of a package with a syntax error: want error, got nil")
	}
}

func TestLoadSkipsTestOnlyPackages(t *testing.T) {
	// The repo root holds only benchmarks; a pattern matching such a
	// package must skip it, not fail the whole load.
	dir := t.TempDir()
	writeFile(t, dir, "go.mod", "module testonly\n\ngo 1.22\n")
	writeFile(t, dir, "only_test.go", "package testonly\n\nimport \"testing\"\n\nfunc TestNothing(t *testing.T) {}\n")
	writeFile(t, filepath.Join(dir, "real"), "real.go", "package real\n\nfunc Real() int { return 1 }\n")
	pkgs, err := lint.Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if p.ImportPath == "testonly" {
			t.Errorf("test-only root package was loaded; it has no GoFiles to analyze")
		}
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "testonly/real" {
		t.Errorf("want exactly the real subpackage, got %d packages", len(pkgs))
	}
}

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
