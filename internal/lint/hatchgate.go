package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// HatchGate enforces the hatch↔gate pairing rule: every differential
// escape hatch (-no-wheel, -copy-path, telemetry, -cc, -fidelity, any
// future ebs.Config hatch field) must ship with a registered differential
// gate — the byte-identity test that proves the fast path and the hatch
// path agree. A hatch without a gate is an untested divergence waiting to
// happen; a gate without a hatch is a test of nothing.
//
// Pairing is declared with markers that Collect exports as facts:
//
//	//lint:hatch <key>  — on the declaration implementing the hatch
//	                      (the enable flag, the Config field)
//	//lint:gate <key>   — on the differential test (or gate registration)
//	                      that locks the hatch; lives in _test.go files,
//	                      which Collect scans too
//
// Finish pairs the two fact sets across the whole suite: a hatch key with
// no gate is a finding at the hatch site, and a gate key with no hatch is
// a finding at the gate site (stale gate — its hatch was removed).
//
// Two local checks catch hatches that dodge the marker: reading a
// LUNASOLAR_* environment variable in a non-test file with no hatch
// marker in that file, and a package-level declaration whose doc comment
// calls itself a hatch without carrying the marker.
var HatchGate = &Analyzer{
	Name: "hatchgate",
	Doc: "every differential hatch (//lint:hatch <key>) must pair with a " +
		"registered differential gate (//lint:gate <key>), and vice versa",
	Run:     runHatchGate,
	Collect: collectHatchGate,
	Finish:  finishHatchGate,
}

// HatchPackages is where hatches live: the simulation core, the network
// model, and the EBS layer with its Config.
var HatchPackages = []string{"internal/sim*", "ebs"}

const (
	hatchMarker = "//lint:hatch"
	gateMarker  = "//lint:gate"
)

// markerKey extracts the key from a "//lint:hatch <key>" or
// "//lint:gate <key>" comment; ok is false if c is not that marker, and
// key is "" for a malformed bare marker. The key is the first word after
// the marker — trailing prose (or a fixture's // want tail) is ignored.
func markerKey(c *ast.Comment, marker string) (key string, ok bool) {
	if !strings.HasPrefix(c.Text, marker) {
		return "", false
	}
	rest := strings.TrimPrefix(c.Text, marker)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // longer word, e.g. //lint:hatchling
	}
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", true
	}
	return fields[0], true
}

// collectHatchGate exports hatch and gate facts from every file,
// including _test.go files — gates are tests.
func collectHatchGate(pass *Pass) error {
	files := append(append([]*ast.File{}, pass.Files...), pass.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if key, ok := markerKey(c, hatchMarker); ok && key != "" {
					pass.ExportFact("hatch", key, "", c.Pos())
				}
				if key, ok := markerKey(c, gateMarker); ok && key != "" {
					pass.ExportFact("gate", key, "", c.Pos())
				}
			}
		}
	}
	return nil
}

func runHatchGate(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), HatchPackages) {
		return nil
	}
	for _, f := range pass.Files {
		fileHasHatch := false
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, marker := range []string{hatchMarker, gateMarker} {
					if key, ok := markerKey(c, marker); ok {
						if key == "" {
							pass.Reportf(c.Pos(), "marker",
								"bare %s marker: a key naming the hatch is required (e.g. %s no-wheel)", marker, marker)
						} else if marker == hatchMarker {
							fileHasHatch = true
						}
					}
				}
			}
		}
		checkEnvHatches(pass, f, fileHasHatch)
		checkDocHatches(pass, f)
	}
	return nil
}

// checkEnvHatches flags LUNASOLAR_* environment reads in files that
// declare no hatch marker: every runtime escape hatch in this repo is
// switched by such a variable, so an unmarked read is an unmarked hatch.
func checkEnvHatches(pass *Pass, f *ast.File, fileHasHatch bool) {
	if fileHasHatch {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Getenv" && sel.Sel.Name != "LookupEnv") {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "os" {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || !strings.Contains(lit.Value, "LUNASOLAR_") {
			return true
		}
		pass.Reportf(call.Pos(), "unmarked",
			"reading %s switches a differential hatch but this file declares no //lint:hatch marker: mark the hatch and register its gate", lit.Value)
		return true
	})
}

// checkDocHatches flags package-level declarations (including struct
// fields) whose doc comment calls them a hatch without a marker.
func checkDocHatches(pass *Pass, f *ast.File) {
	check := func(cg *ast.CommentGroup, pos ast.Node, what string) {
		if cg == nil {
			return
		}
		marked := false
		hatchWord := false
		for _, c := range cg.List {
			if _, ok := markerKey(c, hatchMarker); ok {
				marked = true
			}
			if strings.Contains(strings.ToLower(c.Text), "hatch") {
				hatchWord = true
			}
		}
		if hatchWord && !marked {
			pass.Reportf(pos.Pos(), "unmarked",
				"%s documents itself as a hatch but carries no //lint:hatch marker: mark it and register its gate", what)
		}
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		check(gd.Doc, gd, "declaration")
		for _, spec := range gd.Specs {
			switch spec := spec.(type) {
			case *ast.ValueSpec:
				check(spec.Doc, spec, "declaration")
			case *ast.TypeSpec:
				check(spec.Doc, spec, "declaration")
				if st, ok := spec.Type.(*ast.StructType); ok {
					for _, fld := range st.Fields.List {
						check(fld.Doc, fld, "field")
					}
				}
			}
		}
	}
}

// finishHatchGate pairs the suite-wide hatch and gate facts.
func finishHatchGate(fs *FactSet) []Diagnostic {
	hatches := map[string]Fact{}
	gates := map[string]Fact{}
	for _, f := range fs.Kind("hatchgate", "hatch") {
		if _, dup := hatches[f.Name]; !dup {
			hatches[f.Name] = f
		}
	}
	for _, f := range fs.Kind("hatchgate", "gate") {
		if _, dup := gates[f.Name]; !dup {
			gates[f.Name] = f
		}
	}
	var diags []Diagnostic
	for _, key := range sortedKeys(hatches) {
		if _, ok := gates[key]; !ok {
			diags = append(diags, Diagnostic{
				Position: hatches[key].position(),
				Analyzer: "hatchgate",
				Category: "ungated",
				Message: "hatch " + key + " has no registered differential gate (//lint:gate " + key +
					"): a hatch must never ship without its byte-identity test",
			})
		}
	}
	for _, key := range sortedKeys(gates) {
		if _, ok := hatches[key]; !ok {
			diags = append(diags, Diagnostic{
				Position: gates[key].position(),
				Analyzer: "hatchgate",
				Category: "stale",
				Message: "gate " + key + " pairs with no //lint:hatch " + key +
					" marker: either the hatch was removed (delete the gate) or it is unmarked",
			})
		}
	}
	return diags
}

func sortedKeys(m map[string]Fact) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
