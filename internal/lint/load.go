package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (relative to dir) and
// returns them in `go list` order. It works fully offline: `go list
// -export` has the toolchain compile every dependency and hand back export
// data, which the stdlib gc importer then serves to go/types — the same
// mechanism `go vet` uses, without needing golang.org/x/tools.
//
// Only non-test files are loaded: the invariants lunavet enforces are
// about simulation code, and tests legitimately use wall clocks, global
// rand and unordered iteration.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.DepOnly {
			continue
		}
		if p.Error != nil {
			// A pattern can legitimately match a package with no
			// non-test Go files (the repo root holds only benchmarks);
			// anything else is a real build error the caller must see.
			if len(p.GoFiles) == 0 {
				continue
			}
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		targets = append(targets, p)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		var files []*ast.File
		for _, gf := range p.GoFiles {
			name := gf
			if !filepath.IsAbs(name) {
				name = filepath.Join(p.Dir, gf)
			}
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}
