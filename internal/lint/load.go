package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
// TestFiles are the package's _test.go files, parsed without type
// information: analyzers never check test code, but fact markers
// (//lint:gate on a differential test) and suppression directives in
// tests must still be visible.
type Package struct {
	ImportPath string
	Dir        string
	DepOnly    bool // loaded only because a target imports it; collect facts, skip checks
	Fset       *token.FileSet
	Files      []*ast.File
	TestFiles  []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
	Error        *struct{ Err string }
}

// Load type-checks the packages matching patterns (relative to dir) and
// returns them in `go list` order. It works fully offline: `go list
// -export` has the toolchain compile every dependency and hand back export
// data, which the stdlib gc importer then serves to go/types — the same
// mechanism `go vet` uses, without needing golang.org/x/tools.
//
// Non-test files are loaded with full type information; _test.go files
// are parsed comment-only (no type checking), because the invariants
// lunavet enforces are about simulation code — tests legitimately use
// wall clocks, global rand and unordered iteration — but fact markers
// such as //lint:gate live on test functions. Dependencies of the
// matched patterns load too, flagged DepOnly: fact collection covers
// them, diagnostics never target them.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,Standard,DepOnly,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard {
			continue
		}
		if p.Error != nil {
			// A pattern can legitimately match a package with no
			// non-test Go files (the repo root holds only benchmarks);
			// anything else is a real build error the caller must see.
			if len(p.GoFiles) == 0 {
				continue
			}
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		targets = append(targets, p)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		parse := func(list []string) ([]*ast.File, error) {
			var out []*ast.File
			for _, gf := range list {
				name := gf
				if !filepath.IsAbs(name) {
					name = filepath.Join(p.Dir, gf)
				}
				f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
				if err != nil {
					return nil, fmt.Errorf("parsing %s: %v", name, err)
				}
				out = append(out, f)
			}
			return out, nil
		}
		files, err := parse(p.GoFiles)
		if err != nil {
			return nil, err
		}
		testFiles, err := parse(append(append([]string{}, p.TestGoFiles...), p.XTestGoFiles...))
		if err != nil {
			return nil, err
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			DepOnly:    p.DepOnly,
			Fset:       fset,
			Files:      files,
			TestFiles:  testFiles,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}
