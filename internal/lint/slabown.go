package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SlabOwn enforces the pool ownership discipline from DESIGN.md ("Payload
// ownership"): every reference obtained from PacketPool.Get / GetBuf /
// GetSlab / WrapSlab / Slab.Retain must be given up exactly once —
// released back to the pool (Release / PutBuf) or handed to another
// partition's inbox (Handoff) — and never touched afterwards.
//
// The analysis is intra-procedural and deliberately forgiving: passing a
// tracked value to another function, storing it anywhere, returning it or
// capturing it in a closure transfers ownership and ends tracking (the
// run-time leak gate still covers those flows). What remains is exactly
// the set of shapes that bit us in PR 3 and that no test can prove absent:
//
//   - a return (or scope exit, or loop iteration end) reached while a
//     locally-acquired reference is still held — a leak on that path;
//   - any use of a reference after its Release — including Retain-after-
//     Release (a retransmit sharing an already-released frag) and double
//     Release (the replica fan-out releasing one reference twice);
//   - the cross-partition analogues: use after a Handoff, and a Handoff
//     combined with any second Handoff or Release of the same reference
//     (the receiving partition owns it the moment Handoff returns).
var SlabOwn = &Analyzer{
	Name: "slabown",
	Doc: "pair PacketPool.Get/GetBuf/GetSlab/WrapSlab/Retain with exactly one " +
		"Release/PutBuf/Handoff/Flush on every path, and forbid uses afterwards",
	Run: runSlabOwn,
}

// ownState is the per-variable tracking state.
type ownState struct {
	status     int // stLive, stReleased, stDone
	kind       string
	relVerb    string // "Release" or "Handoff": how the reference was given up
	acquiredAt token.Pos
	releasedAt token.Pos
}

const (
	stLive = iota // reference held, release still owed
	stReleased
	stDone // escaped / satisfied / already reported — stop tracking
)

type stateMap map[*types.Var]ownState

func cloneState(st stateMap) stateMap {
	c := make(stateMap, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

type slabTracker struct {
	pass *Pass
}

func runSlabOwn(pass *Pass) error {
	t := &slabTracker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			t.walkStmt(fd.Body, stateMap{})
		}
	}
	return nil
}

func (t *slabTracker) line(pos token.Pos) int { return t.pass.Fset.Position(pos).Line }

// acquireKind classifies a call that hands out a pool reference.
// Matching is by receiver type name, not import path, so any package
// exposing the PacketPool/Slab ownership protocol — including test
// fixtures — is checked the same way.
func (t *slabTracker) acquireKind(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := t.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	switch recvTypeName(sig) {
	case "PacketPool":
		switch fn.Name() {
		case "Get":
			return "packet", true
		case "GetBuf":
			return "buffer", true
		case "GetSlab", "WrapSlab":
			return "slab", true
		}
	case "Slab":
		if fn.Name() == "Retain" {
			return "slab reference", true
		}
	}
	return "", false
}

// releaseTarget resolves a statement-level call that gives a reference
// up: v.Release(), pool.PutBuf(v), or inbox.Handoff(v, ...) — the
// cross-partition transfer, matched by method name so the real
// crossInbox and test fixtures are checked alike. Returns the tracked
// variable and the verb used in diagnostics ("Release", "Handoff" or
// "Flush"), or ok=false when the call gives up no plain tracked local.
func (t *slabTracker) releaseTarget(call *ast.CallExpr, st stateMap) (*types.Var, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn, ok := t.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, "", false
	}
	switch fn.Name() {
	case "Release":
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return nil, "", false
		}
		if v, ok := t.pass.TypesInfo.Uses[id].(*types.Var); ok {
			if _, tracked := st[v]; tracked {
				return v, "Release", true
			}
		}
	case "PutBuf":
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil || recvTypeName(sig) != "PacketPool" {
			return nil, "", false
		}
		if len(call.Args) != 1 {
			return nil, "", false
		}
		if v, ok := t.trackedArg(call.Args[0], st); ok {
			return v, "Release", true
		}
	case "Handoff":
		// Ownership rides in the first argument; the rest (delivery time,
		// source partition, ingress port) carry no references.
		if len(call.Args) == 0 {
			return nil, "", false
		}
		if v, ok := t.trackedArg(call.Args[0], st); ok {
			return v, "Handoff", true
		}
	case "Flush":
		// Fluid demotion flush (FlowTable.Flush and kin): the flushed
		// packet re-enters pool ownership, so the caller's reference is
		// gone — using it afterwards, flushing twice, or flushing after a
		// Handoff are all ownership bugs. Matched like Handoff: by method
		// name, ownership in the first argument.
		if len(call.Args) == 0 {
			return nil, "", false
		}
		if v, ok := t.trackedArg(call.Args[0], st); ok {
			return v, "Flush", true
		}
	}
	return nil, "", false
}

// trackedArg resolves an argument expression to a tracked local, if it
// is a plain identifier for one.
func (t *slabTracker) trackedArg(arg ast.Expr, st stateMap) (*types.Var, bool) {
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil, false
	}
	if v, ok := t.pass.TypesInfo.Uses[id].(*types.Var); ok {
		if _, tracked := st[v]; tracked {
			return v, true
		}
	}
	return nil, false
}

// useIdent records one appearance of an identifier. An access (v.field,
// v.method()) keeps tracking; any other appearance — argument, operand,
// return value, &v, alias — escapes the reference and ends tracking.
// Either way, touching a released reference is reported.
func (t *slabTracker) useIdent(id *ast.Ident, st stateMap, escaping bool) {
	v, ok := t.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return
	}
	s, tracked := st[v]
	if !tracked {
		return
	}
	switch s.status {
	case stReleased:
		t.pass.Reportf(id.Pos(), "slabown",
			"use of %s after its %s on line %d", v.Name(), s.relVerb, t.line(s.releasedAt))
		s.status = stDone
		st[v] = s
	case stLive:
		if escaping {
			s.status = stDone
			st[v] = s
		}
	}
}

// scanExpr walks an expression recording uses and escapes.
func (t *slabTracker) scanExpr(e ast.Expr, st stateMap) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		t.useIdent(e, st, true)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			t.useIdent(id, st, false)
		} else {
			t.scanExpr(e.X, st)
		}
	case *ast.CallExpr:
		t.scanExpr(e.Fun, st)
		for _, a := range e.Args {
			t.scanExpr(a, st)
		}
	case *ast.ParenExpr:
		t.scanExpr(e.X, st)
	case *ast.UnaryExpr:
		t.scanExpr(e.X, st)
	case *ast.StarExpr:
		t.scanExpr(e.X, st)
	case *ast.BinaryExpr:
		t.scanExpr(e.X, st)
		t.scanExpr(e.Y, st)
	case *ast.IndexExpr:
		// b[i] on a tracked buffer reads or writes through the
		// reference — an access, not an escape.
		if id, ok := e.X.(*ast.Ident); ok {
			t.useIdent(id, st, false)
		} else {
			t.scanExpr(e.X, st)
		}
		t.scanExpr(e.Index, st)
	case *ast.IndexListExpr:
		t.scanExpr(e.X, st)
		for _, i := range e.Indices {
			t.scanExpr(i, st)
		}
	case *ast.SliceExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			t.useIdent(id, st, false)
		} else {
			t.scanExpr(e.X, st)
		}
		t.scanExpr(e.Low, st)
		t.scanExpr(e.High, st)
		t.scanExpr(e.Max, st)
	case *ast.TypeAssertExpr:
		t.scanExpr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			t.scanExpr(el, st)
		}
	case *ast.KeyValueExpr:
		t.scanExpr(e.Key, st)
		t.scanExpr(e.Value, st)
	case *ast.FuncLit:
		// A closure capturing the reference may run at any time: escape.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				t.useIdent(id, st, true)
			}
			return true
		})
	}
}

// walkStmt processes one statement, mutating st, and reports whether
// control flow terminates (return, panic, break/continue/goto).
func (t *slabTracker) walkStmt(s ast.Stmt, st stateMap) bool {
	switch s := s.(type) {
	case nil:
		return false

	case *ast.BlockStmt:
		term := t.walkList(s.List, st)
		if !term {
			t.scopeEnd(s, st)
		}
		return term

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if v, verb, ok := t.releaseTarget(call, st); ok {
				t.release(v, call.Pos(), verb, st)
				if verb == "Handoff" {
					// The remaining arguments are ordinary expressions and
					// may touch other tracked references.
					for _, a := range call.Args[1:] {
						t.scanExpr(a, st)
					}
				}
				return false
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				for _, a := range call.Args {
					t.scanExpr(a, st)
				}
				return true
			}
		}
		t.scanExpr(s.X, st)
		return false

	case *ast.AssignStmt:
		t.walkAssign(s, st)
		return false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					if call, ok := val.(*ast.CallExpr); ok && i < len(vs.Names) {
						if kind, ok := t.acquireKind(call); ok {
							t.scanExpr(call, st)
							t.acquire(vs.Names[i], kind, call.Pos(), st)
							continue
						}
					}
					t.scanExpr(val, st)
				}
			}
		}
		return false

	case *ast.DeferStmt:
		if v, _, ok := t.releaseTarget(s.Call, st); ok {
			// defer v.Release() satisfies the obligation for the whole
			// function; later uses stay valid until return.
			if e := st[v]; e.status == stLive {
				e.status = stDone
				st[v] = e
			}
			return false
		}
		t.scanExpr(s.Call, st)
		return false

	case *ast.GoStmt:
		t.scanExpr(s.Call, st)
		return false

	case *ast.SendStmt:
		t.scanExpr(s.Chan, st)
		t.scanExpr(s.Value, st)
		return false

	case *ast.IncDecStmt:
		t.scanExpr(s.X, st)
		return false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			t.scanExpr(r, st)
		}
		for v, e := range st {
			if e.status == stLive {
				t.pass.Reportf(s.Pos(), "slabown",
					"return with %s still held (%s acquired on line %d): missing Release on this path",
					v.Name(), e.kind, t.line(e.acquiredAt))
				e.status = stDone
				st[v] = e
			}
		}
		return true

	case *ast.BranchStmt:
		return true

	case *ast.LabeledStmt:
		return t.walkStmt(s.Stmt, st)

	case *ast.IfStmt:
		t.walkStmt(s.Init, st)
		t.scanExpr(s.Cond, st)
		a := cloneState(st)
		termA := t.walkStmt(s.Body, a)
		b := cloneState(st)
		termB := false
		if s.Else != nil {
			termB = t.walkStmt(s.Else, b)
		}
		switch {
		case termA && termB:
			return true
		case termA:
			replaceState(st, b)
		case termB:
			replaceState(st, a)
		default:
			mergeState(st, a, b)
		}
		return false

	case *ast.ForStmt:
		t.walkStmt(s.Init, st)
		t.scanExpr(s.Cond, st)
		body := cloneState(st)
		t.walkStmt(s.Body, body)
		t.walkStmt(s.Post, body)
		mergeState(st, st, body)
		return false

	case *ast.RangeStmt:
		t.scanExpr(s.X, st)
		body := cloneState(st)
		t.walkStmt(s.Body, body)
		mergeState(st, st, body)
		return false

	case *ast.SwitchStmt:
		t.walkStmt(s.Init, st)
		t.scanExpr(s.Tag, st)
		return t.walkCases(s.Body, st, hasDefault(s.Body))

	case *ast.TypeSwitchStmt:
		t.walkStmt(s.Init, st)
		t.walkStmt(s.Assign, st)
		return t.walkCases(s.Body, st, hasDefault(s.Body))

	case *ast.SelectStmt:
		return t.walkCases(s.Body, st, true)

	default:
		return false
	}
}

func (t *slabTracker) walkList(list []ast.Stmt, st stateMap) bool {
	for _, s := range list {
		if t.walkStmt(s, st) {
			return true
		}
	}
	return false
}

// walkCases analyzes each case body from a copy of the incoming state and
// merges the fall-out states (plus the no-case-taken path when the switch
// has no default).
func (t *slabTracker) walkCases(body *ast.BlockStmt, st stateMap, exhaustive bool) bool {
	var ends []stateMap
	for _, cc := range body.List {
		var caseBody []ast.Stmt
		switch cc := cc.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				t.scanExpr(e, st)
			}
			caseBody = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				t.walkStmt(cc.Comm, cloneState(st))
			}
			caseBody = cc.Body
		}
		c := cloneState(st)
		if !t.walkList(caseBody, c) {
			ends = append(ends, c)
		}
	}
	if !exhaustive {
		ends = append(ends, cloneState(st))
	}
	if len(ends) == 0 {
		return true
	}
	acc := ends[0]
	for _, e := range ends[1:] {
		mergeState(acc, acc, e)
	}
	replaceState(st, acc)
	return false
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cc := range body.List {
		if c, ok := cc.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

func (t *slabTracker) walkAssign(s *ast.AssignStmt, st stateMap) {
	handled := make([]bool, len(s.Rhs))
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			kind, ok := t.acquireKind(call)
			if !ok {
				continue
			}
			id, ok := s.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			t.scanExpr(call, st) // receiver/args first: s.Retain() is a use of s
			t.acquire(id, kind, call.Pos(), st)
			handled[i] = true
		}
	}
	for i, rhs := range s.Rhs {
		if !handled[i] {
			t.scanExpr(rhs, st)
		}
	}
	for i, lhs := range s.Lhs {
		if i < len(handled) && handled[i] {
			continue
		}
		if id, ok := lhs.(*ast.Ident); ok {
			// Overwriting a tracked handle loses it; stop tracking
			// rather than guess (the leak gate still has it covered).
			if v, ok := t.pass.TypesInfo.Uses[id].(*types.Var); ok {
				if e, tracked := st[v]; tracked && s.Tok == token.ASSIGN {
					e.status = stDone
					st[v] = e
				}
			}
			continue
		}
		t.scanExpr(lhs, st)
	}
}

func (t *slabTracker) acquire(id *ast.Ident, kind string, at token.Pos, st stateMap) {
	var v *types.Var
	if obj, ok := t.pass.TypesInfo.Defs[id].(*types.Var); ok {
		v = obj
	} else if obj, ok := t.pass.TypesInfo.Uses[id].(*types.Var); ok {
		v = obj
	}
	if v == nil {
		return
	}
	st[v] = ownState{status: stLive, kind: kind, acquiredAt: at}
}

func (t *slabTracker) release(v *types.Var, at token.Pos, verb string, st stateMap) {
	e := st[v]
	switch e.status {
	case stLive:
		e.status = stReleased
		e.relVerb = verb
		e.releasedAt = at
		st[v] = e
	case stReleased:
		t.pass.Reportf(at, "slabown",
			"%s released twice (first %s on line %d)", v.Name(), e.relVerb, t.line(e.releasedAt))
		e.status = stDone
		st[v] = e
	}
}

// scopeEnd reports references that a block's end strands: acquired inside
// the block, still live, and now out of scope — nothing can release them.
// This is also what catches a leak per loop iteration.
func (t *slabTracker) scopeEnd(b *ast.BlockStmt, st stateMap) {
	for v, e := range st {
		if e.status == stLive && v.Pos() >= b.Pos() && v.Pos() <= b.End() {
			t.pass.Reportf(e.acquiredAt, "slabown",
				"%s acquired here (%s) goes out of scope without Release", v.Name(), e.kind)
			e.status = stDone
			st[v] = e
		}
	}
}

// replaceState overwrites dst with src in place.
func replaceState(dst, src stateMap) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// mergeState joins two branch-end states into dst: agreeing entries are
// kept, disagreeing ones (released on one path only, escaped on one path
// only) stop being tracked — conservative, never a false positive.
func mergeState(dst, a, b stateMap) {
	out := stateMap{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if va.status == vb.status {
				out[k] = va
			} else {
				va.status = stDone
				out[k] = va
			}
		}
	}
	replaceState(dst, out)
}
