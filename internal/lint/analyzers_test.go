package lint_test

import (
	"testing"

	"lunasolar/internal/lint"
	"lunasolar/internal/lint/linttest"
)

// Each analyzer runs against golden fixtures that prove both directions:
// it fires on every violation shape (the // want comments) and stays
// silent on the allowed patterns (fixture lines with no want).

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{lint.Determinism},
		"lintdata/internal/sim/determ", // in scope: every violation fires
		"lintdata/bench",               // out of scope: same calls, no findings
	)
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{lint.MapOrder}, "lintdata/maporder")
}

func TestSlabOwn(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{lint.SlabOwn}, "lintdata/slabown")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{lint.HotAlloc}, "lintdata/hotalloc")
}

// TestPartOwn's golden fixture replays the PR 8 VDisk.Write race (a dead
// cross-partition Eng.Now() read) plus the indexed, tainted-local,
// range-value, field-write and argument forms — and proves the sanctioned
// shapes (Mailbox, Handoff, //lint:barrier, accessors, receiver-rooted
// access) stay silent. The marked types live in the sim/simnet/trace
// stand-ins, so the cross-package fact path is exercised too.
func TestPartOwn(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{lint.PartOwn}, "lintdata/ebs/partdata")
}

func TestFluidDet(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{lint.FluidDet}, "lintdata/internal/simnet/fluiddata")
}

// TestHatchGate covers the suite-level pairing (ungated hatch, stale
// gate — diagnostics from the Finish hook, with the gate marker living in
// a _test.go fixture file) and the local rules (bare marker, unmarked
// env-var hatch, unmarked doc-word hatch).
func TestHatchGate(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{lint.HatchGate}, "lintdata/ebs/hatchdata")
}

// The full suite over the real repo must be clean: every diagnostic the
// seven analyzers would raise is either fixed or carries a justified
// //lint:allow. This runs the same RunSuite pipeline as lunavet — facts,
// per-package checks, suite-level Finish — so an ungated hatch or a
// cross-partition access anywhere in the tree fails this test.
func TestSuiteOverRepo(t *testing.T) {
	pkgs, err := lint.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the whole repo, got %d packages", len(pkgs))
	}
	res, err := lint.RunSuite(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var allows, used int
	for _, pr := range res.Pkgs {
		for _, d := range pr.Kept {
			t.Errorf("%s: [%s] %s", pr.Pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		for _, a := range pr.Allows {
			allows++
			if a.Used > 0 {
				used++
			}
		}
	}
	for _, d := range res.Finish {
		t.Errorf("%s:%d: [%s] %s", d.Position.Filename, d.Position.Line, d.Analyzer, d.Message)
	}
	// The suppression inventory is part of the contract: the audited
	// wall-time allows (and the fluid edge-detect allows) must be present,
	// and every directive must actually absorb a diagnostic — an unused
	// allow is drift the inventory exists to expose.
	if allows == 0 {
		t.Fatalf("no //lint:allow directives found; the audited suppressions should appear in the inventory")
	}
	if used != allows {
		for _, pr := range res.Pkgs {
			for _, a := range pr.Allows {
				if a.Used == 0 {
					t.Errorf("%s:%d: unused //lint:allow %v (%s)", a.File, a.Line, a.Keys, a.Justification)
				}
			}
		}
	}
	// The five shipped hatches must all be marked and gated: their facts
	// are how hatchgate sees them, so losing a marker silently would
	// disable the check.
	for _, key := range []string{"no-wheel", "copy-path", "telemetry", "cc", "fidelity"} {
		if !res.Facts.Has("hatchgate", "hatch", key) {
			t.Errorf("hatch fact %q missing: is the //lint:hatch marker still present?", key)
		}
		if !res.Facts.Has("hatchgate", "gate", key) {
			t.Errorf("gate fact %q missing: is the //lint:gate marker still present?", key)
		}
	}
	// The partition-owned core types must stay marked for the same reason.
	for _, name := range []string{"sim.Engine", "simnet.PacketPool", "trace.Collector"} {
		if !res.Facts.Has("partown", "partowned", name) {
			t.Errorf("partowned fact %q missing: is the //lint:partowned marker still present?", name)
		}
	}
}
