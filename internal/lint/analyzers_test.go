package lint_test

import (
	"testing"

	"lunasolar/internal/lint"
	"lunasolar/internal/lint/linttest"
)

// Each analyzer runs against golden fixtures that prove both directions:
// it fires on every violation shape (the // want comments) and stays
// silent on the allowed patterns (fixture lines with no want).

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{lint.Determinism},
		"lintdata/internal/sim/determ", // in scope: every violation fires
		"lintdata/bench",               // out of scope: same calls, no findings
	)
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{lint.MapOrder}, "lintdata/maporder")
}

func TestSlabOwn(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{lint.SlabOwn}, "lintdata/slabown")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{lint.HotAlloc}, "lintdata/hotalloc")
}

// The full suite over every fixture package must agree with the union of
// wants — analyzers do not interfere with each other.
func TestSuiteOverRepo(t *testing.T) {
	pkgs, err := lint.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the whole repo, got %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		kept, _, err := lint.Run(pkg, lint.All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, d := range kept {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("%s: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
}
