package lint

import "testing"

func TestParseAllow(t *testing.T) {
	cases := []struct {
		in        string
		keys      []string
		justified bool
	}{
		{" wallclock — bench layer measures wall time", []string{"wallclock"}, true},
		{" wallclock, select — two keys, one reason", []string{"wallclock", "select"}, true},
		{" slabown: colon separator works too", []string{"slabown"}, true},
		{" hotalloc plain words count as justification", []string{"hotalloc"}, true},
		{" wallclock", []string{"wallclock"}, false},
		{" wallclock —", []string{"wallclock"}, false},
		{"", nil, false},
	}
	for _, c := range cases {
		keys, justified := parseAllow(c.in)
		if justified != c.justified {
			t.Errorf("parseAllow(%q): justified = %v, want %v", c.in, justified, c.justified)
		}
		if len(keys) != len(c.keys) {
			t.Errorf("parseAllow(%q): keys = %v, want %v", c.in, keys, c.keys)
			continue
		}
		for i := range keys {
			if keys[i] != c.keys[i] {
				t.Errorf("parseAllow(%q): keys = %v, want %v", c.in, keys, c.keys)
				break
			}
		}
	}
}

func TestScopeMatch(t *testing.T) {
	cases := []struct {
		path, pat string
		want      bool
	}{
		{"lunasolar/internal/sim", "internal/sim", true},
		{"lunasolar/internal/sim/runtime", "internal/sim", true},
		{"lunasolar/internal/simnet", "internal/sim", false},
		{"lunasolar/internal/simnet", "internal/sim*", true},
		{"lunasolar/internal/sim/runtime", "internal/sim*", true},
		{"lunasolar/internal/core", "internal/core", true},
		{"lunasolar/internal/coreutils", "internal/core", false},
		{"lintdata/internal/sim/determ", "internal/sim*", true},
		{"lintdata/bench", "internal/sim*", false},
	}
	for _, c := range cases {
		if got := scopeMatch(c.path, c.pat); got != c.want {
			t.Errorf("scopeMatch(%q, %q) = %v, want %v", c.path, c.pat, got, c.want)
		}
	}
}

// A directive without a justification must not suppress, and must be
// reported itself. This is unit-tested here because the golden fixtures
// cannot put a want comment on a line that is itself a line comment.
func TestAllowRequiresJustification(t *testing.T) {
	keys, justified := parseAllow(" wallclock")
	if justified {
		t.Fatalf("bare key parsed as justified")
	}
	if len(keys) != 1 || keys[0] != "wallclock" {
		t.Fatalf("keys = %v", keys)
	}
}
