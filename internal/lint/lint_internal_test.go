package lint

import (
	"go/token"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		in            string
		keys          []string
		justification string
	}{
		{" wallclock — bench layer measures wall time", []string{"wallclock"}, "bench layer measures wall time"},
		{" wallclock, select — two keys, one reason", []string{"wallclock", "select"}, "two keys, one reason"},
		{" slabown: colon separator works too", []string{"slabown"}, "colon separator works too"},
		{" hotalloc plain words count as justification", []string{"hotalloc"}, "plain words count as justification"},
		{" maporder -- double-dash separator", []string{"maporder"}, "double-dash separator"},
		{" wallclock", []string{"wallclock"}, ""},
		{" wallclock —", []string{"wallclock"}, ""},
		{" wallclock,select,fluiddet — no spaces between keys", []string{"wallclock", "select", "fluiddet"}, "no spaces between keys"},
		{"", nil, ""},
		{" — justification with no key", nil, "justification with no key"},
	}
	for _, c := range cases {
		keys, justification := parseAllow(c.in)
		if justification != c.justification {
			t.Errorf("parseAllow(%q): justification = %q, want %q", c.in, justification, c.justification)
		}
		if len(keys) != len(c.keys) {
			t.Errorf("parseAllow(%q): keys = %v, want %v", c.in, keys, c.keys)
			continue
		}
		for i := range keys {
			if keys[i] != c.keys[i] {
				t.Errorf("parseAllow(%q): keys = %v, want %v", c.in, keys, c.keys)
				break
			}
		}
	}
}

func TestScopeMatch(t *testing.T) {
	cases := []struct {
		path, pat string
		want      bool
	}{
		{"lunasolar/internal/sim", "internal/sim", true},
		{"lunasolar/internal/sim/runtime", "internal/sim", true},
		{"lunasolar/internal/simnet", "internal/sim", false},
		{"lunasolar/internal/simnet", "internal/sim*", true},
		{"lunasolar/internal/sim/runtime", "internal/sim*", true},
		{"lunasolar/internal/core", "internal/core", true},
		{"lunasolar/internal/coreutils", "internal/core", false},
		{"lintdata/internal/sim/determ", "internal/sim*", true},
		{"lintdata/bench", "internal/sim*", false},
		{"lintdata/internal/simnet/fluiddata", "internal/simnet", true},
		{"lintdata/ebs/partdata", "ebs", true},
		{"lunasolar/ebs", "ebs", true},
		{"lunasolar/ebsx", "ebs", false},
	}
	for _, c := range cases {
		if got := scopeMatch(c.path, c.pat); got != c.want {
			t.Errorf("scopeMatch(%q, %q) = %v, want %v", c.path, c.pat, got, c.want)
		}
	}
}

// A directive without a justification must not suppress, and must be
// reported itself. This is unit-tested here because the golden fixtures
// cannot put a want comment on a line that is itself a line comment.
func TestAllowRequiresJustification(t *testing.T) {
	keys, justification := parseAllow(" wallclock")
	if justification != "" {
		t.Fatalf("bare key parsed with justification %q", justification)
	}
	if len(keys) != 1 || keys[0] != "wallclock" {
		t.Fatalf("keys = %v", keys)
	}
}

// covers must bump the matching directive's usage count — the inventory's
// drift signal — and match on analyzer name or category, same line or the
// line above, but never further away.
func TestAllowCoverageAndUsage(t *testing.T) {
	dir := &allowDirective{
		keys:          []string{"wallclock"},
		justification: "test",
		file:          "a.go",
		line:          10,
		used:          new(int),
	}
	set := allowSet{"a.go": {10: []*allowDirective{dir}}}

	diag := Diagnostic{Analyzer: "determinism", Category: "wallclock"}
	if !set.covers(token.Position{Filename: "a.go", Line: 10}, diag) {
		t.Errorf("same-line directive did not cover")
	}
	if !set.covers(token.Position{Filename: "a.go", Line: 11}, diag) {
		t.Errorf("line-above directive did not cover")
	}
	if set.covers(token.Position{Filename: "a.go", Line: 12}, diag) {
		t.Errorf("directive two lines up covered")
	}
	if set.covers(token.Position{Filename: "b.go", Line: 10}, diag) {
		t.Errorf("directive in another file covered")
	}
	if set.covers(token.Position{Filename: "a.go", Line: 10}, Diagnostic{Analyzer: "slabown", Category: "slabown"}) {
		t.Errorf("unrelated key covered")
	}
	if *dir.used != 2 {
		t.Errorf("used = %d, want 2", *dir.used)
	}

	inv := set.inventory()
	if len(inv) != 1 {
		t.Fatalf("inventory size = %d, want 1", len(inv))
	}
	if inv[0].used() != 2 {
		t.Errorf("inventory used() = %d, want 2", inv[0].used())
	}
	// The counter is live: later covers show up in used().
	set.covers(token.Position{Filename: "a.go", Line: 10}, diag)
	if inv[0].used() != 3 {
		t.Errorf("inventory used() after extra cover = %d, want 3", inv[0].used())
	}
}
