// Package linttest is a stdlib-only stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads fixture packages
// from a testdata module, runs analyzers over them, and checks the
// reported diagnostics against // want comments in the fixture source.
//
// Conventions (same as analysistest):
//
//	x := time.Now() // want `time\.Now`
//
// Every diagnostic on a line must be matched by one of the line's want
// regexes, and every want regex must be matched by a diagnostic; either
// leftover fails the test. A fixture line with an //lint:allow directive
// and no want comment is the standard way to prove suppression works.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"lunasolar/internal/lint"
)

// expectation is one want regex awaiting a diagnostic.
type expectation struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the packages matching patterns from the module rooted at dir
// (conventionally "testdata/src") and checks analyzer output against the
// fixtures' want comments. The whole suite pipeline runs — Collect over
// every loaded package (dependencies included), per-package checks, then
// Finish — so cross-package facts and suite-level diagnostics are
// exercised exactly as lunavet runs them. Want comments in _test.go
// fixture files count too (suite-level diagnostics may land on a gate
// marker in a test); packages loaded only as dependencies contribute
// facts but their want comments are not checked.
func Run(t *testing.T, dir string, analyzers []*lint.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := lint.Load(dir, patterns)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v under %s", patterns, dir)
	}
	res, err := lint.RunSuite(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	// One want map across every checked (non-dependency) package: all
	// fixture files share the suite's FileSet, and suite-level (Finish)
	// diagnostics can land in any of them.
	var files []*ast.File
	fset := pkgs[0].Fset
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		files = append(files, pkg.Files...)
		files = append(files, pkg.TestFiles...)
	}
	wants := collectWants(t, fset, files)
	for _, pr := range res.Pkgs {
		for _, d := range pr.Kept {
			pos := fset.Position(d.Pos)
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			if !matchWant(wants[key], d.Message) {
				t.Errorf("%s: unexpected diagnostic [%s] %s", key, d.Analyzer, d.Message)
			}
		}
	}
	for _, d := range res.Finish {
		key := fmt.Sprintf("%s:%d", d.Position.Filename, d.Position.Line)
		if !matchWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected suite diagnostic [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	reportUnmatched(t, wants)
}

// matchWant marks and reports the first unmatched expectation whose regex
// matches the message.
func matchWant(exps []*expectation, message string) bool {
	for _, e := range exps {
		if !e.matched && e.rx.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

func reportUnmatched(t *testing.T, wants map[string][]*expectation) {
	t.Helper()
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.raw)
			}
		}
	}
}

// collectWants parses `// want "rx" "rx"` comments, keyed by file:line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, raw := range splitQuoted(t, c.Text[i+len("want "):], key) {
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx, raw: raw})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the double- or backtick-quoted strings from a want
// comment's tail.
func splitQuoted(t *testing.T, s, key string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", key, s)
			}
			un, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", key, s[:end+1], err)
			}
			out = append(out, un)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", key, s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}
