package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc reports allocation sites in functions annotated with
//
//	//lint:hotpath
//
// in their doc comment. These are the per-packet functions the runtime
// AllocsPerRun gates hold at zero allocations (forwarding, the Solar probe
// loop, the 4 KiB write path); the analyzer catches a regression at
// review time instead of at the gate, and names the exact expression.
//
// Reported shapes: slice/map/chan composite literals and &T{} (heap
// escape candidates), new/make, append (may grow the backing array —
// reslice a pooled buffer instead), string<->[]byte/[]rune conversions,
// string concatenation, closures that capture variables, and fmt calls
// (interface boxing of every argument). Plain struct value literals,
// reslicing, arithmetic and method calls stay silent.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "report heap-allocation sites (composite literals, append growth, " +
		"string/byte conversions, closures, fmt) inside //lint:hotpath functions",
	Run: runHotAlloc,
}

const hotpathMarker = "//lint:hotpath"

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathMarker) {
			rest := strings.TrimPrefix(c.Text, hotpathMarker)
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case nil:
			return true
		case *ast.FuncLit:
			if capt := captures(pass, n); capt != "" {
				pass.Reportf(n.Pos(), "hotalloc",
					"closure captures %s: allocates per call on a hot path", capt)
			}

		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "hotalloc", "slice literal allocates on a hot path; reuse a pooled buffer")
			case *types.Map:
				pass.Reportf(n.Pos(), "hotalloc", "map literal allocates on a hot path")
			}

		case *ast.UnaryExpr:
			// &T{} — the address-of forces the literal onto the heap
			// whenever it escapes; on a hot path, assume it does.
			if cl, ok := unparen(n.X).(*ast.CompositeLit); ok && n.Op.String() == "&" {
				if _, isStruct := pass.TypesInfo.TypeOf(cl).Underlying().(*types.Struct); isStruct {
					pass.Reportf(n.Pos(), "hotalloc", "&composite literal may escape to the heap on a hot path; use a pooled object")
				}
			}

		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isNonConstString(pass, n) {
				pass.Reportf(n.Pos(), "hotalloc", "string concatenation allocates on a hot path")
			}

		case *ast.CallExpr:
			checkHotCall(pass, n)
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	// Conversions: string(b), []byte(s), []rune(s) copy their operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if pass.TypesInfo.Types[call.Args[0]].Value != nil {
			return // constant-folded
		}
		to := tv.Type.Underlying()
		from := pass.TypesInfo.TypeOf(call.Args[0])
		if from == nil {
			return
		}
		if isString(to) && isByteOrRuneSlice(from.Underlying()) {
			pass.Reportf(call.Pos(), "hotalloc", "string(...) conversion copies the bytes on a hot path")
		}
		if isByteOrRuneSlice(to) && isString(from.Underlying()) {
			pass.Reportf(call.Pos(), "hotalloc", "[]byte/[]rune(...) conversion copies the string on a hot path")
		}
		return
	}

	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch fun.Name {
			case "append":
				pass.Reportf(call.Pos(), "hotalloc",
					"append may grow the backing array on a hot path; reslice a preallocated buffer")
			case "new":
				pass.Reportf(call.Pos(), "hotalloc", "new(...) allocates on a hot path; use a pool")
			case "make":
				pass.Reportf(call.Pos(), "hotalloc", "make(...) allocates on a hot path; use a pool")
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "hotalloc",
				"fmt.%s boxes every argument into an interface on a hot path", fn.Name())
		}
	}
}

// captures names one variable a func literal closes over (empty when the
// literal is self-contained and therefore a static, allocation-free func
// value).
func captures(pass *Pass, fl *ast.FuncLit) string {
	var name string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures; anything declared
		// outside the literal but inside some function is.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			name = v.Name()
		}
		return true
	})
	return name
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isNonConstString(pass *Pass, b *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[b]
	if !ok || tv.Value != nil { // constant concatenation folds at compile time
		return false
	}
	return tv.Type != nil && isString(tv.Type.Underlying())
}
