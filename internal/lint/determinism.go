package lint

import (
	"go/ast"
	"go/types"
)

// VirtualTimePackages are the packages whose code must be a pure function
// of (config, seed): everything that runs under the discrete-event engine.
// The bench/runtime layer inside them may measure wall time, but only
// behind an explicit //lint:allow wallclock with a justification.
var VirtualTimePackages = []string{
	"internal/sim*", // sim, sim/runtime, simnet
	"internal/core",
	"internal/tcpstack",
	"internal/rdma",
	"internal/transport",
}

// Determinism forbids the three ways nondeterminism leaks into virtual
// time: the wall clock (time.Now and friends — simulated time comes from
// the engine), the process-global math/rand source (models draw from the
// cluster's seeded *sim.Rand), and select statements (runtime-random case
// choice; engine code is single-threaded per shard and has no business
// multiplexing channels).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand and select in virtual-time packages " +
		"so experiment output stays a pure function of (config, seed)",
	Run: runDeterminism,
}

// wallclockFuncs are the time package entry points that read or wait on
// the wall clock. Pure-value API (Duration arithmetic, Unix conversions)
// stays allowed.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// globalRandOK are the math/rand package-level functions that merely build
// seeded generators; everything else at package level draws from (or
// reseeds) the shared global source.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), VirtualTimePackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select",
					"select in a virtual-time package: case choice is runtime-random; schedule events on the engine instead")
			case *ast.SelectorExpr:
				obj, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods (e.g. (*rand.Rand).Intn) are fine
				}
				switch obj.Pkg().Path() {
				case "time":
					if wallclockFuncs[obj.Name()] {
						pass.Reportf(n.Pos(), "wallclock",
							"time.%s in a virtual-time package: read the engine clock (sim.Engine.Now) instead", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					if !globalRandOK[obj.Name()] {
						pass.Reportf(n.Pos(), "globalrand",
							"global rand.%s in a virtual-time package: draw from the cluster's seeded *sim.Rand instead", obj.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}
