package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FluidDet enforces determinism in the flow-level (fluid) model. The fast
// forward layer computes per-flow float64 rates (FlowTable.feasible's
// water-filling pass) and feeds them into event times and admission
// decisions; two sources of nondeterminism would silently break the
// byte-identity gates:
//
//   - float equality: comparing computed rates or event times with == / !=
//     makes admission order depend on rounding, which differs across
//     summation orders. The repo's own idiom is an epsilon band
//     (alloc[i] >= pace*(1-eps)) — exact comparison in fluid code is a
//     bug, not a style choice.
//   - map-range float accumulation: summing float rates while ranging
//     over a map picks up Go's randomized iteration order, and float
//     addition is not associative. Rate folds must iterate slices or
//     sorted keys (maporder's collect-then-sort idiom).
//
// Scope is the fluid model's home package (internal/simnet — FlowTable,
// BulkService and any future fluid code lands there); maporder's generic
// float-op-assign rule already covers the rest of the tree.
var FluidDet = &Analyzer{
	Name: "fluiddet",
	Doc: "flag float equality and map-range float accumulation in the " +
		"flow-level model: fluid rate math must be order-independent",
	Run: runFluidDet,
}

// FluidPackages is where the flow-level model lives.
var FluidPackages = []string{"internal/simnet"}

func runFluidDet(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), FluidPackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkFloatEq(pass, n)
			case *ast.RangeStmt:
				checkFluidRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkFloatEq flags == and != between float operands. Comparisons
// against an untyped constant are still flagged: `rate == 0` looks safe
// but admission on it is order-dependent the moment rate is a sum.
func checkFloatEq(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !isFloat(pass.TypesInfo.TypeOf(be.X)) && !isFloat(pass.TypesInfo.TypeOf(be.Y)) {
		return
	}
	pass.Reportf(be.OpPos, "floateq",
		"float equality (%s) in fluid code: rounding makes it order-dependent; compare against an epsilon band", be.Op)
}

// checkFluidRange flags float accumulation into an outer variable inside
// a range over a map: both the op-assign form (sum += r) and the plain
// rebinding form (sum = sum + r), which maporder's generic rule misses.
func checkFluidRange(pass *Pass, rs *ast.RangeStmt) {
	xt := pass.TypesInfo.TypeOf(rs.X)
	if xt == nil {
		return
	}
	if _, ok := xt.Underlying().(*types.Map); !ok {
		return
	}
	// Variables declared inside the range body are per-iteration and
	// cannot carry order dependence out of the loop.
	local := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if as.Tok == token.DEFINE {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						local[obj] = true
					}
				}
			}
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || local[obj] || !isFloat(obj.Type()) {
				continue
			}
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				pass.Reportf(as.Pos(), "mapfloat",
					"float accumulation into %s while ranging over a map: iteration order is random and float math is not associative; iterate sorted keys", id.Name)
			case token.ASSIGN:
				// sum = sum + r: the RHS must mention the accumulator.
				if i < len(as.Rhs) && mentionsObj(pass, as.Rhs[i], obj) {
					pass.Reportf(as.Pos(), "mapfloat",
						"float accumulation into %s while ranging over a map: iteration order is random and float math is not associative; iterate sorted keys", id.Name)
				}
			}
		}
		return true
	})
}

func mentionsObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
