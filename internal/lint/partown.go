package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PartOwn enforces the coupled-fabric ownership rule from DESIGN.md: in
// partitioned execution every engine, packet pool, trace collector, rand
// stream and link-state snapshot belongs to exactly one partition, and
// only that partition's window may touch it. The sanctioned crossings are
// the mailbox (sim.Mailbox / crossInbox.Handoff — thread-safe transfer of
// ownership) and barrier-time code, which runs on the coordinator while
// no window is active.
//
// The analysis is annotation-driven. Type declarations carry markers that
// Collect exports as cross-package facts:
//
//	//lint:partowned  — per-partition state (sim.Engine, sim.Rand,
//	                    simnet.PacketPool, simnet.Port, simnet.fabricPart,
//	                    trace.Collector)
//	//lint:spanning   — structures holding every partition's state
//	                    (simnet.Fabric, ebs.Cluster)
//	//lint:crossing   — the sanctioned crossing (sim.Mailbox); its methods
//	                    and any method named Handoff are always allowed
//
// In partition-scope packages (internal/simnet, ebs) the analyzer flags
// code that reaches partition-owned state through a spanning structure —
// a foreign access, since nothing ties the caller to that partition's
// window:
//
//   - method calls on a foreign partowned value (v.cluster.Eng.Now() —
//     the PR 8 VDisk.Write race — or pool/collector/rand methods reached
//     via fab.parts[i] or a range over them);
//   - writes to a foreign partowned value's fields (publishing link state,
//     resetting fluid notes);
//   - passing a foreign partowned value to any call (handing another
//     partition's collector or pool to code that will touch it).
//
// Receiver-rooted access (a fabricPart method touching its own pool) and
// values obtained from method calls (c.Collector().E2E(...) — accessor
// methods vouch for what they return) stay silent. Functions whose doc
// comment carries //lint:barrier are exempt: they declare (and document)
// that they run only while no window is active, which is exactly the
// contract DrainInboxes, PublishCutState and the Cluster drivers already
// state in prose.
var PartOwn = &Analyzer{
	Name: "partown",
	Doc: "flag reads/writes of partition-owned state (engines, pools, collectors, " +
		"link state) reached through a spanning structure outside //lint:barrier code; " +
		"Mailbox/Handoff is the only sanctioned crossing",
	Run:     runPartOwn,
	Collect: collectPartOwn,
}

// PartitionPackages is where partitioned execution lives: the fabric and
// the cluster wiring above it. The experiment drivers sit above Cluster's
// barrier-annotated API and are not re-checked.
var PartitionPackages = []string{"internal/simnet", "ebs"}

const (
	partownedMarker = "//lint:partowned"
	spanningMarker  = "//lint:spanning"
	crossingMarker  = "//lint:crossing"
	barrierMarker   = "//lint:barrier"
)

// collectPartOwn exports one fact per marked type declaration. Types are
// named package-name.TypeName (not import path), so fixture stand-ins
// exercise the analyzer exactly like the real packages.
func collectPartOwn(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, marker := range []string{partownedMarker, spanningMarker, crossingMarker} {
					if hasMarker(gd.Doc, marker) || hasMarker(ts.Doc, marker) || hasMarker(ts.Comment, marker) {
						kind := strings.TrimPrefix(marker, "//lint:")
						pass.ExportFact(kind, pass.Pkg.Name()+"."+ts.Name.Name, "", ts.Pos())
					}
				}
			}
		}
	}
	return nil
}

// hasMarker reports whether a comment group contains the given //lint:
// marker as a whole directive (an exact match or followed by a space).
func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if !strings.HasPrefix(c.Text, marker) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, marker)
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
			return true
		}
	}
	return false
}

// partTracker is one package's view of the marked-type facts.
type partTracker struct {
	pass      *Pass
	partowned map[string]bool
	spanning  map[string]bool
	crossing  map[string]bool
	tainted   map[*types.Var]bool // locals bound to foreign partition state
}

func runPartOwn(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), PartitionPackages) {
		return nil
	}
	t := &partTracker{
		pass:      pass,
		partowned: map[string]bool{},
		spanning:  map[string]bool{},
		crossing:  map[string]bool{},
	}
	for _, f := range pass.Facts.Kind("partown", "partowned") {
		t.partowned[f.Name] = true
	}
	for _, f := range pass.Facts.Kind("partown", "spanning") {
		t.spanning[f.Name] = true
	}
	for _, f := range pass.Facts.Kind("partown", "crossing") {
		t.crossing[f.Name] = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hasMarker(fd.Doc, barrierMarker) {
				continue
			}
			t.checkFunc(fd)
		}
	}
	return nil
}

// typeName resolves a type to its package-qualified named form ("sim.Engine"),
// dereferencing one pointer level; "" for unnamed types.
func typeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

func (t *partTracker) isPartowned(tt types.Type) bool { return t.partowned[typeName(tt)] }
func (t *partTracker) isSpanning(tt types.Type) bool  { return t.spanning[typeName(tt)] }
func (t *partTracker) isCrossing(tt types.Type) bool  { return t.crossing[typeName(tt)] }

// elemPartowned reports whether tt is a container (slice, array, map)
// whose elements are partition-owned.
func (t *partTracker) elemPartowned(tt types.Type) bool {
	if tt == nil {
		return false
	}
	switch u := tt.Underlying().(type) {
	case *types.Slice:
		return t.isPartowned(u.Elem())
	case *types.Array:
		return t.isPartowned(u.Elem())
	case *types.Map:
		return t.isPartowned(u.Elem())
	case *types.Pointer:
		return t.elemPartowned(u.Elem())
	}
	return false
}

// foreign reports whether e denotes another partition's state: a selector
// chain that steps from a spanning value into partition-owned state, an
// index into (or a local bound from) such a chain. Method-call results
// terminate the chain — accessors vouch for what they return.
func (t *partTracker) foreign(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := t.pass.TypesInfo.Uses[e].(*types.Var); ok {
			return t.tainted[v]
		}
	case *ast.SelectorExpr:
		if t.foreign(e.X) {
			return true
		}
		xt := t.pass.TypesInfo.TypeOf(e.X)
		et := t.pass.TypesInfo.TypeOf(e)
		return t.isSpanning(xt) && (t.isPartowned(et) || t.elemPartowned(et))
	case *ast.IndexExpr:
		return t.foreign(e.X)
	case *ast.ParenExpr:
		return t.foreign(e.X)
	case *ast.StarExpr:
		return t.foreign(e.X)
	case *ast.UnaryExpr:
		return t.foreign(e.X)
	}
	return false
}

// foreignContainer reports whether e is a collection of partition-owned
// values reached through a spanning structure (f.parts, c.engines, the
// cut-port list) — ranging or indexing it yields foreign state.
func (t *partTracker) foreignContainer(e ast.Expr) bool {
	if !t.elemPartowned(t.pass.TypesInfo.TypeOf(e)) {
		return false
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return t.foreign(e.X) || t.isSpanning(t.pass.TypesInfo.TypeOf(e.X))
	case *ast.Ident:
		if v, ok := t.pass.TypesInfo.Uses[e].(*types.Var); ok {
			return t.tainted[v]
		}
	}
	return false
}

// checkFunc analyzes one function: a flow-insensitive taint pass binding
// locals to foreign state, then the access checks.
func (t *partTracker) checkFunc(fd *ast.FuncDecl) {
	t.tainted = map[*types.Var]bool{}
	// Taint to fixpoint: a local bound from a foreign expression (or a
	// range over a foreign container) is foreign wherever it appears.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if t.foreign(rhs) || t.foreignContainer(rhs) {
						changed = t.taint(n.Lhs[i]) || changed
					}
				}
			case *ast.RangeStmt:
				if t.foreignContainer(n.X) || t.foreign(n.X) {
					changed = t.taint(n.Value) || changed
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			t.checkCall(n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				t.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			t.checkWrite(n.X)
		}
		return true
	})
}

func (t *partTracker) taint(lhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	v, _ := t.pass.TypesInfo.Defs[id].(*types.Var)
	if v == nil {
		v, _ = t.pass.TypesInfo.Uses[id].(*types.Var)
	}
	if v == nil || t.tainted[v] {
		return false
	}
	tt := v.Type()
	if !t.isPartowned(tt) && !t.elemPartowned(tt) {
		return false
	}
	t.tainted[v] = true
	return true
}

// checkCall flags method calls on foreign partowned values and foreign
// partowned values passed as arguments. The check keys on the type the
// method is called through (not the declared receiver), so promoted
// methods from embedded fields are caught too.
func (t *partTracker) checkCall(call *ast.CallExpr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		xt := t.pass.TypesInfo.TypeOf(sel.X)
		switch {
		case t.isCrossing(xt) || sel.Sel.Name == "Handoff":
			// The sanctioned crossing: ownership transfers through the
			// mailbox. Arguments are the transfer itself.
			return
		case t.isPartowned(xt) && t.foreign(sel.X):
			t.pass.Reportf(call.Pos(), "partown",
				"call to %s.%s on another partition's state: only its own window may touch it; cross via Mailbox/Handoff or run at a barrier (//lint:barrier)",
				typeName(xt), sel.Sel.Name)
		}
	}
	for _, arg := range call.Args {
		at := t.pass.TypesInfo.TypeOf(arg)
		if t.isPartowned(at) && t.foreign(arg) {
			t.pass.Reportf(arg.Pos(), "partown",
				"another partition's %s passed as an argument: only its own window may touch it; cross via Mailbox/Handoff or run at a barrier (//lint:barrier)",
				typeName(at))
		}
	}
}

// checkWrite flags stores into fields of foreign partowned values.
func (t *partTracker) checkWrite(lhs ast.Expr) {
	// Unwrap element stores (ps.fluidTrigN[i]++) down to the selector.
	for {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			lhs = ix.X
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	xt := t.pass.TypesInfo.TypeOf(sel.X)
	if t.isPartowned(xt) && t.foreign(sel.X) {
		t.pass.Reportf(sel.Pos(), "partown",
			"write to %s.%s of another partition's state: only its own window may touch it; cross via Mailbox/Handoff or run at a barrier (//lint:barrier)",
			typeName(xt), sel.Sel.Name)
	}
}
