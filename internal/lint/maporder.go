package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range-over-map loops whose body feeds an output-affecting
// sink. Go randomizes map iteration order per run, so anything
// order-sensitive downstream of such a loop — scheduled events (their
// sequence numbers break ties in the event queue), trace/stats emission,
// printed output, a slice built by append, a float accumulator — destroys
// the bit-identical-output guarantee the differential tests enforce.
//
// The accepted fix is the one the diagnostic suggests: collect the keys,
// sort them, and iterate the sorted slice. A loop that only builds a key
// slice which is sorted later in the same block is recognized and allowed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map whose body reaches output-affecting sinks " +
		"(event queues, trace/stats, printing, appends, float accumulation) without sorting",
	Run: runMapOrder,
}

// mapSinkMethods are order-sensitive methods on the simulator's output
// paths; they count as sinks when declared in one of mapSinkPkgs.
var mapSinkMethods = map[string]bool{
	"Schedule": true, "ScheduleAt": true, "ScheduleArg": true,
	"ScheduleCoarse": true, "ScheduleCoarseArg": true,
	"Push": true, "Record": true, "Emit": true,
	"Add": true, "Inc": true, "Observe": true, "MarkWindow": true,
}

// mapSinkPkgs are the packages (by name) owning the event queue, the trace
// collector and the stats aggregates.
var mapSinkPkgs = map[string]bool{"sim": true, "trace": true, "stats": true}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		walkStmtLists(f, func(list []ast.Stmt) {
			for i, st := range list {
				rs, ok := st.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
		})
	}
	return nil
}

// walkStmtLists invokes fn on every statement list in n (blocks, case and
// comm clause bodies), so callers see each statement with its in-block
// successors.
func walkStmtLists(n ast.Node, fn func(list []ast.Stmt)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, tail []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := sinkCall(pass, n); ok {
				pass.Reportf(n.Pos(), "maporder",
					"%s inside range over a map: map order is random per run; iterate sorted keys", name)
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, n, tail)
		}
		return true
	})
}

// sinkCall reports whether call is an output-affecting sink and names it.
func sinkCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		// Package-level function: printing is the order-sensitive one.
		if obj.Pkg().Name() == "fmt" && printingFunc(obj.Name()) {
			return "fmt." + obj.Name(), true
		}
		return "", false
	}
	if mapSinkMethods[obj.Name()] && mapSinkPkgs[obj.Pkg().Name()] {
		return obj.Pkg().Name() + "." + recvTypeName(sig) + "." + obj.Name(), true
	}
	return "", false
}

func printingFunc(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// checkMapRangeAssign flags two order-fixing assignment shapes in a map
// loop body: append into a variable declared outside the loop (unless that
// variable is sorted later in the enclosing block — the canonical
// collect-then-sort idiom), and op-assign accumulation into an outer
// floating-point variable (float addition is not associative, so the sum
// depends on iteration order).
func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, tail []ast.Stmt) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			obj := outerVar(pass, rs, as.Lhs[i])
			if obj == nil || sortedInTail(pass, tail, obj) {
				continue
			}
			pass.Reportf(as.Pos(), "maporder",
				"append to %s inside range over a map fixes random iteration order into the slice; sort it afterwards or iterate sorted keys", obj.Name())
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) != 1 {
			return
		}
		obj := outerVar(pass, rs, as.Lhs[0])
		if obj == nil {
			return
		}
		if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			pass.Reportf(as.Pos(), "maporder",
				"floating-point accumulation into %s depends on map iteration order (float addition is not associative); iterate sorted keys", obj.Name())
		}
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// outerVar resolves lhs to a variable declared outside the range statement
// (nil when lhs is not a plain ident or the variable is loop-local).
func outerVar(pass *Pass, rs *ast.RangeStmt, lhs ast.Expr) *types.Var {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	obj, _ := pass.TypesInfo.Uses[id].(*types.Var)
	if obj == nil {
		obj, _ = pass.TypesInfo.Defs[id].(*types.Var)
	}
	if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
		return nil
	}
	return obj
}

// sortedInTail reports whether any statement after the loop (in the same
// block) passes obj to a sort/slices function.
func sortedInTail(pass *Pass, tail []ast.Stmt, obj *types.Var) bool {
	for _, st := range tail {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if name := fn.Pkg().Name(); name != "sort" && name != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
