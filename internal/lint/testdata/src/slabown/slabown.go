// Package slabown exercises the ownership-pairing analyzer, including the
// two regression shapes from the zero-copy PR: a retransmit touching a
// released frag, and one Release too many after a replica fan-out.
package slabown

import "lintdata/simnet"

// --- allowed patterns -------------------------------------------------

func okGetRelease(pp *simnet.PacketPool) {
	p := pp.Get(64)
	p.Payload[0] = 1
	p.Release()
}

func okDeferRelease(pp *simnet.PacketPool) byte {
	s := pp.GetSlab(64)
	defer s.Release()
	return s.Bytes()[0]
}

func okHandoff(pp *simnet.PacketPool, send func(*simnet.Packet)) {
	p := pp.Get(64)
	send(p) // ownership transferred to the fabric
}

func okReturned(pp *simnet.PacketPool) *simnet.Slab {
	s := pp.GetSlab(64)
	return s // caller owns the reference now
}

func okBranchBothRelease(pp *simnet.PacketPool, cond bool) {
	p := pp.Get(64)
	if cond {
		p.Release()
		return
	}
	p.Release()
}

// Cross-partition transfer: Handoff gives up the reference exactly like a
// Release does, so a handoff on every path is lint-clean with no allow.
func okCrossHandoff(pp *simnet.PacketPool, ib *simnet.Inbox, cut bool) {
	p := pp.Get(64)
	if cut {
		ib.Handoff(p, 10)
		return
	}
	p.Release()
}

func okBufPair(pp *simnet.PacketPool) {
	b := pp.GetBuf(128)
	b[0] = 1
	pp.PutBuf(b)
}

func okStored(pp *simnet.PacketPool, frames *[]*simnet.Slab) {
	s := pp.GetSlab(64)
	*frames = append(*frames, s) // stored: holder releases later
}

// --- violations -------------------------------------------------------

func leakEarlyReturn(pp *simnet.PacketPool, cond bool) {
	p := pp.Get(64)
	if cond {
		return // want `return with p still held \(packet acquired on line \d+\): missing Release on this path`
	}
	p.Release()
}

func useAfterRelease(pp *simnet.PacketPool) byte {
	s := pp.GetSlab(64)
	s.Release()
	return s.Bytes()[0] // want `use of s after its Release on line \d+`
}

// PR 3 regression shape: the retransmit path re-arming a frame whose frag
// was already given back to the pool.
func retransmitReleasedFrag(pp *simnet.PacketPool, resend func(*simnet.Slab)) {
	frag := pp.GetSlab(4096)
	frag.Release()
	resend(frag.Retain()) // want `use of frag after its Release on line \d+`
}

// PR 3 regression shape: the 3-replica fan-out shares one slab; the owner
// releases its own reference once, not twice.
func doubleReleaseFanout(pp *simnet.PacketPool, send func(*simnet.Slab)) {
	s := pp.GetSlab(4096)
	for i := 0; i < 3; i++ {
		send(s.Retain())
	}
	s.Release()
	s.Release() // want `s released twice \(first Release on line \d+\)`
}

func leakPerIteration(pp *simnet.PacketPool, use func(byte)) {
	for i := 0; i < 3; i++ {
		s := pp.GetSlab(64) // want `s acquired here \(slab\) goes out of scope without Release`
		use(s.Bytes()[0])
	}
}

func bufUseAfterPut(pp *simnet.PacketPool) byte {
	b := pp.GetBuf(128)
	pp.PutBuf(b)
	return b[0] // want `use of b after its Release on line \d+`
}

// PR 6 regression shapes: once a packet crosses the partition boundary the
// receiving partition owns it — the sender must neither touch it again nor
// give it up a second time, by either verb.
func useAfterHandoff(pp *simnet.PacketPool, ib *simnet.Inbox) byte {
	p := pp.Get(64)
	ib.Handoff(p, 10)
	return p.Payload[0] // want `use of p after its Handoff on line \d+`
}

func doubleHandoff(pp *simnet.PacketPool, a, b *simnet.Inbox) {
	p := pp.Get(64)
	a.Handoff(p, 10)
	b.Handoff(p, 20) // want `p released twice \(first Handoff on line \d+\)`
}

func handoffThenRelease(pp *simnet.PacketPool, ib *simnet.Inbox) {
	p := pp.Get(64)
	ib.Handoff(p, 10)
	p.Release() // want `p released twice \(first Handoff on line \d+\)`
}

func retainLeak(pp *simnet.PacketPool, cond bool) {
	s := pp.GetSlab(64)
	defer s.Release()
	if cond {
		extra := s.Retain() // want `extra acquired here \(slab reference\) goes out of scope without Release`
		_ = extra.Bytes()
	}
}

// --- suppression ------------------------------------------------------

func suppressedLeak(pp *simnet.PacketPool, cond bool) {
	p := pp.Get(64)
	if cond {
		//lint:allow slabown — fixture: models a path where the fabric already owns the packet
		return
	}
	p.Release()
}
