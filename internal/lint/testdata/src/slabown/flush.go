// The fluid fast-forward layer's demotion flush: FlowTable.Flush
// rematerializes an analytic flow's packet back into pool ownership, so
// it spends the caller's reference exactly like Release and Handoff do.
package slabown

import "lintdata/simnet"

// A flush on every path is lint-clean: the packet re-entered pool
// ownership and nothing touches it afterwards.
func okDemotionFlush(pp *simnet.PacketPool, ft *simnet.FlowTable, demote bool) {
	p := pp.Get(64)
	if demote {
		ft.Flush(p)
		return
	}
	p.Release()
}

// Touching the packet after its flush races the pool's next Get.
func badUseAfterFlush(pp *simnet.PacketPool, ft *simnet.FlowTable) {
	p := pp.Get(64)
	ft.Flush(p)
	p.Payload[0] = 1 // want `use of p after its Flush on line 22`
}

// Flushing twice re-pools one reference two times.
func badDoubleFlush(pp *simnet.PacketPool, ft *simnet.FlowTable) {
	p := pp.Get(64)
	ft.Flush(p)
	ft.Flush(p) // want `p released twice \(first Flush on line 29\)`
}

// A flush after the handoff flushes a packet another partition now owns.
func badFlushAfterHandoff(pp *simnet.PacketPool, ft *simnet.FlowTable, ib *simnet.Inbox) {
	p := pp.Get(64)
	ib.Handoff(p, 10)
	ft.Flush(p) // want `p released twice \(first Handoff on line 36\)`
}

// A release after the flush is the symmetric double-spend.
func badReleaseAfterFlush(pp *simnet.PacketPool, ft *simnet.FlowTable) {
	p := pp.Get(64)
	ft.Flush(p)
	p.Release() // want `p released twice \(first Flush on line 43\)`
}
