// Package bench sits outside the virtual-time scope: identical wall-clock
// and global-rand calls must produce no determinism diagnostics here.
package bench

import (
	"math/rand"
	"time"
)

func Measure(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}

func Jitter() int {
	return rand.Intn(100)
}

func Either(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
