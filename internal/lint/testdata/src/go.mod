module lintdata

go 1.22
