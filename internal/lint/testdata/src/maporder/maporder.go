// Package maporder exercises the map-iteration-order analyzer.
package maporder

import (
	"fmt"
	"sort"

	"lintdata/sim"
	"lintdata/stats"
)

func schedules(e *sim.Engine, m map[int]int64) {
	for _, d := range m {
		e.Schedule(d, nil) // want `sim\.Engine\.Schedule inside range over a map`
	}
}

func prints(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println inside range over a map`
	}
}

func records(h *stats.Histogram, m map[int]int64) {
	for _, v := range m {
		h.Record(v) // want `stats\.Histogram\.Record inside range over a map`
	}
}

func appendsUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over a map`
	}
	return keys
}

// The canonical fix: collect keys, sort, iterate the slice.
func appendsSorted(e *sim.Engine, m map[string]int64) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Schedule(m[k], nil)
	}
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum`
	}
	return sum
}

// Integer addition commutes: summing counters from a map is fine.
func intSum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// Slices iterate in index order; sinks inside are fine.
func sliceRange(e *sim.Engine, ds []int64) {
	for _, d := range ds {
		e.Schedule(d, nil)
	}
}

// A justified allow keeps a genuinely order-insensitive site quiet.
func suppressed(m map[string]int) {
	for k, v := range m {
		//lint:allow maporder — diagnostic output only, never parsed or diffed
		fmt.Println(k, v)
	}
}
