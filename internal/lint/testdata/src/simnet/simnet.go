// Package simnet is a fixture stand-in for the real packet pool: the
// slabown analyzer matches the ownership protocol by receiver type name
// (PacketPool, Slab), and the partown analyzer keys ownership on
// package-qualified type names, so these shapes drive both exactly like
// the real package.
package simnet

// PacketPool is one partition's packet allocator.
//
//lint:partowned
type PacketPool struct{ outstanding int }

type Packet struct{ Payload []byte }

type Slab struct{ buf []byte }

// Port is one partition's link endpoint state.
//
//lint:partowned
type Port struct {
	Up    bool
	Depth int
}

func (pt *Port) Enqueue(p *Packet) { pt.Depth++ }

func (pp *PacketPool) Get(n int) *Packet { pp.outstanding++; return &Packet{Payload: make([]byte, n)} }

func (pp *PacketPool) GetBuf(n int) []byte { pp.outstanding++; return make([]byte, n) }

func (pp *PacketPool) PutBuf(b []byte) { pp.outstanding-- }

func (pp *PacketPool) GetSlab(n int) *Slab { pp.outstanding++; return &Slab{buf: make([]byte, n)} }

func (pp *PacketPool) WrapSlab(b []byte) *Slab { pp.outstanding++; return &Slab{buf: b} }

func (s *Slab) Retain() *Slab { return s }

func (s *Slab) Release() {}

func (s *Slab) Bytes() []byte { return s.buf }

func (p *Packet) Release() {}

// Inbox models the cross-partition mailbox: Handoff transfers ownership
// of its first argument to the receiving partition. The analyzer matches
// the method by name, as it does the pool protocol by receiver type.
type Inbox struct{ pending int }

func (ib *Inbox) Handoff(p *Packet, at int64) { ib.pending++ }

// FlowTable models the fluid fast-forward layer's demotion flush: Flush
// rematerializes an analytic flow's packet back into pool ownership, so
// the caller's reference is spent — the same contract as Release and
// Handoff, matched by method name.
type FlowTable struct{ flushed int }

func (t *FlowTable) Flush(p *Packet) { t.flushed++ }
