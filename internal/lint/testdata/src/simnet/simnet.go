// Package simnet is a fixture stand-in for the real packet pool: the
// slabown analyzer matches the ownership protocol by receiver type name
// (PacketPool, Slab), so these shapes drive it exactly like the real one.
package simnet

type PacketPool struct{ outstanding int }

type Packet struct{ Payload []byte }

type Slab struct{ buf []byte }

func (pp *PacketPool) Get(n int) *Packet { pp.outstanding++; return &Packet{Payload: make([]byte, n)} }

func (pp *PacketPool) GetBuf(n int) []byte { pp.outstanding++; return make([]byte, n) }

func (pp *PacketPool) PutBuf(b []byte) { pp.outstanding-- }

func (pp *PacketPool) GetSlab(n int) *Slab { pp.outstanding++; return &Slab{buf: make([]byte, n)} }

func (pp *PacketPool) WrapSlab(b []byte) *Slab { pp.outstanding++; return &Slab{buf: b} }

func (s *Slab) Retain() *Slab { return s }

func (s *Slab) Release() {}

func (s *Slab) Bytes() []byte { return s.buf }

func (p *Packet) Release() {}

// Inbox models the cross-partition mailbox: Handoff transfers ownership
// of its first argument to the receiving partition. The analyzer matches
// the method by name, as it does the pool protocol by receiver type.
type Inbox struct{ pending int }

func (ib *Inbox) Handoff(p *Packet, at int64) { ib.pending++ }
