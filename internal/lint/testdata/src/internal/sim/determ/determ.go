// Package determ exercises the determinism analyzer inside its scope: the
// fixture's import path contains internal/sim, so it is a virtual-time
// package.
package determ

import (
	"math/rand"
	"time"
)

func wallclock() time.Duration {
	t0 := time.Now()             // want `time\.Now in a virtual-time package`
	time.Sleep(time.Millisecond) // want `time\.Sleep in a virtual-time package`
	return time.Since(t0)        // want `time\.Since in a virtual-time package`
}

func timers(fn func()) {
	timer := time.NewTimer(time.Second) // want `time\.NewTimer in a virtual-time package`
	_ = timer
	time.AfterFunc(time.Second, fn) // want `time\.AfterFunc in a virtual-time package`
}

func globalRand(xs []int) int {
	n := rand.Intn(10) // want `global rand\.Intn in a virtual-time package`
	rand.Shuffle(len(xs), func(i, j int) { // want `global rand\.Shuffle in a virtual-time package`
		xs[i], xs[j] = xs[j], xs[i]
	})
	return n
}

// seeded draws are the approved pattern: determinism comes from the seed.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Pure time arithmetic never touches the wall clock.
func durations(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}

func selects(a, b chan int) int {
	select { // want `select in a virtual-time package`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// A justified allow suppresses the diagnostic.
func allowed() time.Time {
	//lint:allow wallclock — fixture for the bench-layer escape: measures wall time, never feeds virtual time
	return time.Now()
}

// An allow for a different key suppresses nothing.
func wrongKey() time.Time {
	//lint:allow globalrand — wrong key on purpose; does not cover wallclock
	return time.Now() // want `time\.Now in a virtual-time package`
}
