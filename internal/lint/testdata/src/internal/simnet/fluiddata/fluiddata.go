// Package fluiddata exercises fluiddet: float-rate math in the
// flow-level model must be order-independent, so float equality and
// map-range float accumulation are diagnostics, while the epsilon-band
// and sorted-keys idioms stay silent.
package fluiddata

import "sort"

const eps = 1e-9

// admitEq decides admission on exact float equality — order-dependent
// the moment pace is a sum.
func admitEq(rates map[int]float64, pace float64) bool {
	for _, r := range rates {
		if r == pace { // want `float equality \(==\) in fluid code`
			return true
		}
	}
	return false
}

// eventTimeNeq compares computed event times exactly.
func eventTimeNeq(a, b float64) bool {
	return a != b // want `float equality \(!=\) in fluid code`
}

// foldRates accumulates float rates in map order: both the op-assign and
// the plain rebinding form.
func foldRates(rates map[int]float64) (float64, float64) {
	var sum, total float64
	for _, r := range rates {
		sum += r // want `float accumulation into sum while ranging over a map`
	}
	for _, r := range rates {
		total = total + r // want `float accumulation into total while ranging over a map`
	}
	return sum, total
}

// foldSorted is the sanctioned idiom: collect keys, sort, then fold in
// deterministic order.
func foldSorted(rates map[int]float64) float64 {
	keys := make([]int, 0, len(rates))
	for k := range rates {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += rates[k]
	}
	return sum
}

// epsilonBand is the repo's comparison idiom: a tolerance band instead of
// exact equality.
func epsilonBand(alloc, pace float64) bool {
	return alloc >= pace*(1-eps)
}

// intFold is silent: integer accumulation commutes, so map order cannot
// change the result.
func intFold(counts map[int]int) int {
	var n int
	for _, c := range counts {
		n += c
	}
	return n
}

// perIterLocal is silent: a float declared inside the loop body is
// per-iteration and carries nothing across the random order.
func perIterLocal(rates map[int]float64) int {
	n := 0
	for _, r := range rates {
		scaled := r * 2
		scaled += 1
		if scaled > 3 {
			n++
		}
	}
	return n
}
