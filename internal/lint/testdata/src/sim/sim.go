// Package sim is a fixture stand-in for the real event engine: the
// maporder analyzer keys sinks on (package name, method name), so these
// shapes are what it matches against.
package sim

type Engine struct{ seq uint64 }

func (e *Engine) Schedule(after int64, fn func()) { e.seq++ }

func (e *Engine) ScheduleAt(at int64, fn func()) { e.seq++ }
