// Package sim is a fixture stand-in for the real event engine: the
// maporder analyzer keys sinks on (package name, method name), and the
// partown analyzer keys ownership on package-qualified type names, so
// these shapes drive both exactly like the real package.
package sim

// Engine is one partition's event loop and clock.
//
//lint:partowned
type Engine struct{ seq uint64 }

func (e *Engine) Schedule(after int64, fn func()) { e.seq++ }

func (e *Engine) ScheduleAt(at int64, fn func()) { e.seq++ }

func (e *Engine) Now() int64 { return int64(e.seq) }

// Rand is one partition's deterministic random stream.
//
//lint:partowned
type Rand struct{ state uint64 }

func (r *Rand) Uint32() uint32 { r.state++; return uint32(r.state) }

// Mailbox is the sanctioned cross-partition crossing: Post is safe from
// any partition's window.
//
//lint:crossing
type Mailbox struct{ pending int }

func (m *Mailbox) Post(v any) { m.pending++ }
