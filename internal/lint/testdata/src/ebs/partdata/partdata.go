// Package partdata replays the coupled-fabric ownership races the
// partown analyzer closes, headlined by the PR 8 VDisk.Write shape:
// reading a dead cross-partition engine clock from partitioned code.
package partdata

import (
	"lintdata/sim"
	"lintdata/simnet"
	"lintdata/trace"
)

// PartState is one partition's mutable link-and-trigger state.
//
//lint:partowned
type PartState struct {
	PeerUp bool
	Trig   [4]int
	eng    *sim.Engine
}

// Cluster spans every partition: reaching engines, pools, collectors or
// partition state through it crosses ownership.
//
//lint:spanning
type Cluster struct {
	Eng        *sim.Engine
	engines    []*sim.Engine
	parts      []*PartState
	pools      []*simnet.PacketPool
	collectors []*trace.Collector
	rand       *sim.Rand
	mail       *sim.Mailbox
	inbox      *simnet.Inbox
}

// VDisk is a partitioned write path: it runs inside one partition's
// window but holds a reference to the whole cluster.
type VDisk struct {
	cluster *Cluster
	seq     uint64
}

// Write replays the PR 8 race verbatim: stamping a write with the
// cluster-level clock reads another partition's engine mid-window.
func (v *VDisk) Write(n int) int64 {
	v.seq++
	return v.cluster.Eng.Now() // want `call to sim\.Engine\.Now on another partition's state`
}

// indexedClock reads a specific partition's clock through the spanning
// container — same race, indexed form.
func (v *VDisk) indexedClock(i int) int64 {
	return v.cluster.engines[i].Now() // want `call to sim\.Engine\.Now on another partition's state`
}

// viaLocal shows the taint pass: binding the foreign engine to a local
// does not launder it.
func (v *VDisk) viaLocal() int64 {
	eng := v.cluster.Eng
	return eng.Now() // want `call to sim\.Engine\.Now on another partition's state`
}

// rangeClocks shows range-value taint over a foreign container.
func (c *Cluster) rangeClocks() int64 {
	var sum int64
	for _, eng := range c.engines {
		sum += eng.Now() // want `call to sim\.Engine\.Now on another partition's state`
	}
	return sum
}

// publish writes link state into every partition from outside any
// window — the unprotected form of a cut-state publish.
func (c *Cluster) publish() {
	for _, ps := range c.parts {
		ps.PeerUp = true // want `write to partdata\.PartState\.PeerUp of another partition's state`
	}
	c.parts[0].Trig[1]++ // want `write to partdata\.PartState\.Trig of another partition's state`
}

// gather hands another partition's collector to a merge — the argument
// form of the crossing.
func (c *Cluster) gather(dst *trace.Collector) {
	for _, col := range c.collectors {
		dst.Merge(col) // want `another partition's trace\.Collector passed as an argument`
	}
}

// salt draws from a partition's random stream through the spanning
// struct, perturbing that partition's deterministic sequence.
func (c *Cluster) salt() uint32 {
	return c.rand.Uint32() // want `call to sim\.Rand\.Uint32 on another partition's state`
}

// BarrierPublish is the sanctioned form of publish: barrier-marked code
// runs only while no window is active, so cross-partition access is safe.
//
//lint:barrier
func (c *Cluster) BarrierPublish() {
	for _, ps := range c.parts {
		ps.PeerUp = true
	}
	_ = c.Eng.Now()
}

// PartEngine is an accessor: partown never taints method results, so
// callers of accessors stay silent (the accessor vouches for the value).
func (c *Cluster) PartEngine(i int) *sim.Engine { return c.engines[i] }

// accessorUse is silent: the engine came out of a method call.
func (c *Cluster) accessorUse() int64 {
	return c.PartEngine(0).Now()
}

// post crosses through the mailbox — the sanctioned crossing type — and
// through a Handoff call, both silent by design.
func (c *Cluster) post(p *simnet.Packet) {
	c.mail.Post(c.parts[0])
	c.inbox.Handoff(p, 0)
}

// bump is receiver-rooted own-partition access: a partition's own method
// touching its own state is the normal case and stays silent.
func (ps *PartState) bump() {
	ps.Trig[1]++
	_ = ps.eng.Now()
}
