package hatchdata

import "testing"

// TestGoodKnobDifferential is good-knob's registered gate: on and off
// must produce byte-identical output.
//
//lint:gate good-knob
func TestGoodKnobDifferential(t *testing.T) {
	if goodEnabled {
		t.Skip("fixture")
	}
}

// TestGhostKnobDifferential gates a knob that no longer exists.
//
//lint:gate ghost-knob // want `gate ghost-knob pairs with no //lint:hatch`
func TestGhostKnobDifferential(t *testing.T) {}
