// Package hatchdata exercises hatchgate: every marked hatch must pair
// with a registered gate, unmarked hatches are caught by the env-var and
// doc-word rules, and bare markers are malformed.
package hatchdata

import "os"

// goodEnabled is the fixture's gated escape switch; its gate lives in
// hatchdata_test.go.
//
//lint:hatch good-knob
var goodEnabled = os.Getenv("LUNASOLAR_GOOD_KNOB") != ""

// orphanEnabled's marker pairs with no gate anywhere in the suite.
//
//lint:hatch orphan-knob // want `hatch orphan-knob has no registered differential gate`
var orphanEnabled = false

// brokenEnabled carries a marker with no key.
//
//lint:hatch // want `bare //lint:hatch marker`
var brokenEnabled = false
