package hatchdata

// Knobs configures the fixture's runtime switches.
type Knobs struct {
	// CopyPath is the deep-copy escape hatch for the data path.
	CopyPath bool // want `field documents itself as a hatch`
}

// wordEnabled is the escape hatch for the fixture's doc-word rule.
var wordEnabled = false // want `declaration documents itself as a hatch`
