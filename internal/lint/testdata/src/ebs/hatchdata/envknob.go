package hatchdata

import "os"

// envEnabled switches behavior straight off the environment with no
// marker anywhere in this file.
var envEnabled = os.Getenv("LUNASOLAR_ENV_KNOB") != "" // want `reading "LUNASOLAR_ENV_KNOB" switches a differential hatch`
