// Package trace is a fixture stand-in for the real trace collectors:
// each Collector belongs to one partition, so handing one across
// partitions is an ownership violation the partown analyzer flags.
package trace

// Collector accumulates one partition's samples.
//
//lint:partowned
type Collector struct{ n int }

func (c *Collector) Record(v int64) { c.n++ }

func (c *Collector) Merge(o *Collector) { c.n += o.n }
