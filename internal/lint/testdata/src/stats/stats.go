// Package stats is a fixture stand-in for the real stats aggregates.
package stats

type Histogram struct{ n uint64 }

func (h *Histogram) Record(v int64) { h.n++ }
