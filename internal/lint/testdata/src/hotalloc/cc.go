package hotalloc

// The congestion-controller shape: a per-ack update that keeps per-hop
// history. The map version allocates on the first ack after a reset and
// hashes on every lookup; the fixed-array twin (the shape internal/cc's
// HPCC actually uses) is allocation-free and stays silent.

type hopSample struct {
	id      uint16
	valid   bool
	txBytes uint64
	ts      uint64
}

type mapCC struct {
	hist map[uint16]hopSample
}

//lint:hotpath
func (c *mapCC) onAckBad(id uint16, tx, ts uint64) float64 {
	if c.hist == nil {
		c.hist = map[uint16]hopSample{} // want `map literal allocates`
	}
	prev := c.hist[id]
	u := 0.0
	if prev.valid && ts > prev.ts {
		u = float64(tx-prev.txBytes) / float64(ts-prev.ts)
	}
	c.hist[id] = hopSample{id: id, valid: true, txBytes: tx, ts: ts}
	return u
}

const maxHops = 8

type arrayCC struct {
	hist [maxHops]hopSample
}

// The fixed-slot rewrite: positional lookup with a stored-ID check, value
// struct writes, no allocation anywhere.
//
//lint:hotpath
func (c *arrayCC) onAckClean(slot int, id uint16, tx, ts uint64) float64 {
	s := &c.hist[slot]
	u := 0.0
	if s.valid && s.id == id && ts > s.ts {
		u = float64(tx-s.txBytes) / float64(ts-s.ts)
	}
	s.id, s.valid = id, true
	s.txBytes, s.ts = tx, ts
	return u
}
