// Package hotalloc exercises the hot-path allocation analyzer: annotated
// functions report every allocation shape, unannotated twins stay silent.
package hotalloc

import "fmt"

type frame struct {
	buf []byte
	n   int
}

//lint:hotpath
func forwardBad(f *frame, data []byte) string {
	f.buf = append(f.buf, data...) // want `append may grow the backing array`
	tmp := make([]byte, 16)        // want `make\(\.\.\.\) allocates`
	_ = tmp
	m := map[int]int{} // want `map literal allocates`
	_ = m
	s := []int{1, 2} // want `slice literal allocates`
	_ = s
	p := &frame{} // want `&composite literal may escape`
	_ = p
	q := new(frame) // want `new\(\.\.\.\) allocates`
	_ = q
	str := string(data) // want `string\(\.\.\.\) conversion copies`
	b := []byte(str)    // want `\[\]byte/\[\]rune\(\.\.\.\) conversion copies`
	_ = b
	fmt.Println(f.n) // want `fmt\.Println boxes every argument`
	n := f.n
	cb := func() int { return n } // want `closure captures n`
	_ = cb
	return "x" + str // want `string concatenation allocates`
}

// The allocation-free idioms the hot paths actually use: reslicing pooled
// buffers, value struct literals, static func values, plain arithmetic.
//
//lint:hotpath
func forwardClean(f *frame, data []byte) int {
	f.buf = f.buf[:0]
	for i := range data {
		f.buf = f.buf[:i]
	}
	f.n += len(data)
	v := frame{n: f.n}
	f.n = v.n
	g := func() {}
	g()
	return f.n
}

// Identical code without the annotation: no diagnostics.
func coldPath(f *frame, data []byte) string {
	f.buf = append(f.buf, data...)
	fmt.Println(f.n)
	return "x" + string(data)
}

// A justified allow documents a site proven safe by the alloc gates.
//
//lint:hotpath
func suppressedAppend(f *frame, data []byte) {
	//lint:allow hotalloc — buf is preallocated to the max frame size; append can never grow it
	f.buf = append(f.buf, data...)
}
