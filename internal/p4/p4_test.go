package p4

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"lunasolar/internal/crc"
	"lunasolar/internal/sa"
	"lunasolar/internal/wire"
)

// encodeSolarPacket builds real wire bytes: RPC + EBS + payload.
func encodeSolarPacket(rpc wire.RPC, ebs wire.EBS, payload []byte) []byte {
	buf := make([]byte, wire.RPCSize+wire.EBSSize+len(payload))
	if err := rpc.Encode(buf); err != nil {
		panic(err)
	}
	if err := ebs.Encode(buf[wire.RPCSize:]); err != nil {
		panic(err)
	}
	copy(buf[wire.RPCSize+wire.EBSSize:], payload)
	return buf
}

func TestHeaderLayoutsMatchWire(t *testing.T) {
	if got := RPCHeader.SizeBytes(); got != wire.RPCSize {
		t.Fatalf("rpc header %dB, wire %dB", got, wire.RPCSize)
	}
	if got := EBSHeader.SizeBytes(); got != wire.EBSSize {
		t.Fatalf("ebs header %dB, wire %dB", got, wire.EBSSize)
	}
}

// Differential parse: the P4 parser must extract exactly what the wire
// package encoded, for arbitrary field values.
func TestParserMatchesWireDecode(t *testing.T) {
	parser := &Parser{Sequence: []*HeaderType{RPCHeader, EBSHeader}}
	f := func(id uint64, pkt, num uint16, mt, fl uint8, salt uint16,
		op, flags uint8, vd uint32, seg, lba uint64, blen, bcrc, gen uint32) bool {
		rpc := wire.RPC{RPCID: id, PktID: pkt, NumPkts: num, MsgType: mt, Flags: fl, ConnSalt: salt}
		ebs := wire.EBS{Version: wire.EBSVersion, Op: op, Flags: flags, VDisk: vd,
			SegmentID: seg, LBA: lba, BlockLen: blen, BlockCRC: bcrc, Gen: gen}
		raw := encodeSolarPacket(rpc, ebs, []byte{1, 2, 3})
		ctx, err := parser.Parse(raw)
		if err != nil {
			return false
		}
		r, e := ctx.Header("rpc"), ctx.Header("ebs")
		return r.Get("rpc_id") == id &&
			r.Get("pkt_id") == uint64(pkt) &&
			r.Get("num_pkts") == uint64(num) &&
			r.Get("msg_type") == uint64(mt) &&
			r.Get("conn_salt") == uint64(salt) &&
			e.Get("op") == uint64(op) &&
			e.Get("vdisk") == uint64(vd) &&
			e.Get("segment_id") == seg &&
			e.Get("lba") == lba &&
			e.Get("block_len") == uint64(blen) &&
			e.Get("block_crc") == uint64(bcrc) &&
			e.Get("gen") == uint64(gen) &&
			len(ctx.Payload) == 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Differential deparse: parse ∘ deparse is the identity on real packets.
func TestDeparseRoundTrip(t *testing.T) {
	parser := &Parser{Sequence: []*HeaderType{RPCHeader, EBSHeader}}
	f := func(id uint64, vd uint32, lba uint64, payload []byte) bool {
		rpc := wire.RPC{RPCID: id, MsgType: wire.RPCWriteReq, NumPkts: 1}
		ebs := wire.EBS{Version: wire.EBSVersion, Op: wire.OpWrite, VDisk: vd, LBA: lba,
			BlockLen: uint32(len(payload))}
		raw := encodeSolarPacket(rpc, ebs, payload)
		ctx, err := parser.Parse(raw)
		if err != nil {
			return false
		}
		return bytes.Equal(parser.Deparse(ctx), raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The write pipeline's Block table must translate exactly like the
// imperative segment table, for every segment of a provisioned disk.
func TestWritePipelineMatchesSegmentTable(t *testing.T) {
	segs := sa.NewSegmentTable()
	const size = 32 << 20
	if err := segs.Provision(7, size, []uint32{0xA1, 0xA2, 0xA3}); err != nil {
		t.Fatal(err)
	}
	sp := NewSolarWritePipeline()
	sp.AdmitDisk(7)
	sp.LoadSegmentTable(segs, 7, size)

	payload := []byte("block payload for the pipeline")
	for lba := uint64(0); lba < size; lba += 1 << 20 { // step half a segment
		rpc := wire.RPC{RPCID: 9, MsgType: wire.RPCWriteReq, NumPkts: 1}
		ebs := wire.EBS{Version: wire.EBSVersion, Op: wire.OpWrite, VDisk: 7, LBA: lba,
			BlockLen: uint32(len(payload))}
		out, ctx, err := sp.Program.Run(encodeSolarPacket(rpc, ebs, payload))
		if err != nil {
			t.Fatal(err)
		}
		if ctx.Dropped {
			t.Fatalf("provisioned write dropped at lba %#x", lba)
		}
		ref, _ := segs.Lookup(7, lba)
		var outEBS wire.EBS
		if err := outEBS.Decode(out[wire.RPCSize:]); err != nil {
			t.Fatal(err)
		}
		if outEBS.SegmentID != ref.SegmentID {
			t.Fatalf("lba %#x: pipeline segment %d, table %d", lba, outEBS.SegmentID, ref.SegmentID)
		}
		if ctx.Meta["server"] != uint64(ref.Server) {
			t.Fatalf("lba %#x: pipeline server %x, table %x", lba, ctx.Meta["server"], ref.Server)
		}
		// The CRC engine stamped the real checksum into the header.
		if outEBS.BlockCRC != crc.Raw(payload) {
			t.Fatalf("pipeline CRC %08x != %08x", outEBS.BlockCRC, crc.Raw(payload))
		}
	}
}

func TestWritePipelineDropsUnprovisioned(t *testing.T) {
	sp := NewSolarWritePipeline()
	sp.AdmitDisk(1)
	rpc := wire.RPC{RPCID: 1, MsgType: wire.RPCWriteReq}

	// Unknown disk → QoS drop.
	ebs := wire.EBS{Version: wire.EBSVersion, VDisk: 99}
	out, ctx, err := sp.Program.Run(encodeSolarPacket(rpc, ebs, nil))
	if err != nil || out != nil || !ctx.Dropped {
		t.Fatalf("unknown disk not dropped: %v %v", out, err)
	}
	if !strings.Contains(strings.Join(ctx.Trace, " "), "qos:miss") {
		t.Fatalf("trace %v", ctx.Trace)
	}

	// Known disk, unmapped segment → Block drop.
	ebs = wire.EBS{Version: wire.EBSVersion, VDisk: 1, LBA: 1 << 30}
	_, ctx, err = sp.Program.Run(encodeSolarPacket(rpc, ebs, nil))
	if err != nil || !ctx.Dropped {
		t.Fatal("unmapped segment not dropped")
	}
	if !strings.Contains(strings.Join(ctx.Trace, " "), "block:miss") {
		t.Fatalf("trace %v", ctx.Trace)
	}
}

func TestReadPipelineAddrTable(t *testing.T) {
	sp := NewSolarReadPipeline()
	sp.ExpectBlock(42, 3, 0xDEAD0000)

	payload := bytes.Repeat([]byte{5}, 256)
	mk := func(rpcID uint64, pktID uint16, goodCRC bool) []byte {
		sum := crc.Raw(payload)
		if !goodCRC {
			sum ^= 1
		}
		rpc := wire.RPC{RPCID: rpcID, PktID: pktID, MsgType: wire.RPCReadResp, NumPkts: 1}
		ebs := wire.EBS{Version: wire.EBSVersion, Op: wire.OpRead,
			BlockLen: uint32(len(payload)), BlockCRC: sum}
		return encodeSolarPacket(rpc, ebs, payload)
	}

	// Expected block: matched, DMA address bound, CRC ok.
	_, ctx, err := sp.Program.Run(mk(42, 3, true))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Dropped {
		t.Fatal("expected block dropped")
	}
	if ctx.Meta["dma_addr"] != 0xDEAD0000 {
		t.Fatalf("dma = %#x", ctx.Meta["dma_addr"])
	}
	if ctx.Meta["crc_ok"] != 1 {
		t.Fatal("crc check failed on good block")
	}

	// Corrupted block: CRC flagged.
	_, ctx, _ = sp.Program.Run(mk(42, 3, false))
	if ctx.Meta["crc_ok"] != 0 {
		t.Fatal("corrupted block passed CRC")
	}

	// Unknown (rpc, pkt) → dropped without CPU involvement.
	_, ctx, _ = sp.Program.Run(mk(42, 4, true))
	if !ctx.Dropped {
		t.Fatal("unknown packet not dropped")
	}

	// Released entries stop matching (one-shot Addr semantics).
	sp.Release(42, 3)
	_, ctx, _ = sp.Program.Run(mk(42, 3, true))
	if !ctx.Dropped {
		t.Fatal("released entry still matches")
	}
}

func TestTableStatsAndEntries(t *testing.T) {
	tb := NewTable("t", "meta.k")
	act := &Action{Name: "a", Ops: []Op{{Kind: OpSetImm, Dst: "meta.out", Imm: 7}}}
	tb.Insert([]uint64{1}, act)
	tb.Insert([]uint64{2}, act)
	if tb.Len() != 2 {
		t.Fatalf("len = %d", tb.Len())
	}
	ctx := &Context{headers: map[string]*Header{}, Meta: map[string]uint64{"k": 1}}
	tb.Apply(ctx)
	if ctx.Meta["out"] != 7 {
		t.Fatal("action not applied")
	}
	ctx.Meta["k"] = 9
	tb.Apply(ctx)
	h, m := tb.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats %d/%d", h, m)
	}
	if got := tb.EntryKeys(); len(got) != 2 || got[0] != "1" {
		t.Fatalf("keys %v", got)
	}
}

func TestActionPrimitives(t *testing.T) {
	ctx := &Context{headers: map[string]*Header{}, Meta: map[string]uint64{}}
	a := &Action{Ops: []Op{
		{Kind: OpSetImm, Dst: "meta.x", Imm: 40},
		{Kind: OpAddImm, Dst: "meta.x", Imm: 2},
		{Kind: OpCopy, Dst: "meta.y", Src: "meta.x"},
		{Kind: OpAdd, Dst: "meta.y", Src: "meta.x"},
		{Kind: OpSub, Dst: "meta.y", Src: "meta.x"},
		{Kind: OpShrImm, Dst: "meta.x", Imm: 1},
	}}
	a.apply(ctx, nil)
	if ctx.Meta["x"] != 21 || ctx.Meta["y"] != 42 {
		t.Fatalf("x=%d y=%d", ctx.Meta["x"], ctx.Meta["y"])
	}
}

func TestFieldWidthMasking(t *testing.T) {
	h := &Header{Type: RPCHeader, fields: map[string]uint64{}}
	h.Set("pkt_id", 0x12345)
	if h.Get("pkt_id") != 0x2345 {
		t.Fatalf("16-bit field not masked: %x", h.Get("pkt_id"))
	}
}

func TestParseUnderrun(t *testing.T) {
	parser := &Parser{Sequence: []*HeaderType{RPCHeader, EBSHeader}}
	if _, err := parser.Parse(make([]byte, 10)); err == nil {
		t.Fatal("short packet parsed")
	}
}

func TestDescribe(t *testing.T) {
	sp := NewSolarWritePipeline()
	out := sp.Program.Describe()
	for _, want := range []string{"program solar_write", "table qos", "table block", "extern crc", "rpc(16B)", "ebs(48B)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("describe missing %q:\n%s", want, out)
		}
	}
}
