package p4

import (
	"lunasolar/internal/crc"
	"lunasolar/internal/sa"
)

// Bit-exact header declarations for the Solar wire formats (they mirror
// wire.RPC and wire.EBS field for field; the differential tests prove it).

// RPCHeader is the 16-byte RPC header.
var RPCHeader = &HeaderType{
	Name: "rpc",
	Fields: []FieldSpec{
		{"rpc_id", 64}, {"pkt_id", 16}, {"num_pkts", 16},
		{"msg_type", 8}, {"flags", 8}, {"conn_salt", 16},
	},
}

// EBSHeader is the 48-byte EBS header.
var EBSHeader = &HeaderType{
	Name: "ebs",
	Fields: []FieldSpec{
		{"version", 8}, {"op", 8}, {"flags", 8}, {"pad", 8},
		{"vdisk", 32}, {"segment_id", 64}, {"lba", 64},
		{"block_len", 32}, {"block_crc", 32}, {"gen", 32},
		{"reserved", 32}, {"server_ns", 32}, {"ssd_ns", 32},
	},
}

// segmentShift is log2 of the segment size (2 MiB).
const segmentShift = 21

// SolarWritePipeline is the §4.6 claim made executable: the storage agent's
// WRITE data path — QoS admission, Block-table virtual-to-physical
// translation, CRC engine — as a P4 program over the real packet bytes.
// Unprovisioned disks and unmapped segments drop, exactly as the imperative
// agent errors.
type SolarWritePipeline struct {
	Program *Program
	QoS     *Table
	Block   *Table
}

// NewSolarWritePipeline builds the program with empty tables.
func NewSolarWritePipeline() *SolarWritePipeline {
	drop := &Action{Name: "drop", Ops: []Op{{Kind: OpDrop}}}

	qos := NewTable("qos", "ebs.vdisk")
	qos.Default = &Entry{Action: drop}
	// Admitted disks pass through (metering state lives in an extern
	// register on real hardware): admission here is provisioned-or-drop.

	// segidx = lba >> 21 (which segment of the virtual disk).
	segIdx := &Action{Name: "seg_idx", Ops: []Op{
		{Kind: OpCopy, Dst: "meta.segidx", Src: "ebs.lba"},
		{Kind: OpShrImm, Dst: "meta.segidx", Imm: segmentShift},
	}}

	// Block-table entries use a set_segment(segment_id, server) action —
	// installed per entry by LoadSegmentTable (Fig. 12's Block step).
	block := NewTable("block", "ebs.vdisk", "meta.segidx")
	block.Default = &Entry{Action: drop}

	crcEngine := &Extern{Name: "crc", Fn: func(ctx *Context) {
		n := int(ctx.Header("ebs").Get("block_len"))
		if n > len(ctx.Payload) {
			n = len(ctx.Payload)
		}
		ctx.Header("ebs").Set("block_crc", uint64(crc.Raw(ctx.Payload[:n])))
	}}

	p := &Program{
		Name:   "solar_write",
		Parser: &Parser{Sequence: []*HeaderType{RPCHeader, EBSHeader}},
		Pipeline: []Stage{
			qos,
			&Extern{Name: "seg_idx", Fn: func(ctx *Context) { segIdx.apply(ctx, nil) }},
			block,
			crcEngine,
		},
	}
	return &SolarWritePipeline{Program: p, QoS: qos, Block: block}
}

// AdmitDisk installs a QoS pass-through entry for a virtual disk.
func (sp *SolarWritePipeline) AdmitDisk(vdisk uint32) {
	sp.QoS.Insert([]uint64{uint64(vdisk)}, &Action{Name: "allow"})
}

// LoadSegmentTable mirrors the management plane populating the hardware
// Block table from the agent's segment table.
func (sp *SolarWritePipeline) LoadSegmentTable(t *sa.SegmentTable, vdisk uint32, sizeBytes uint64) {
	for lba := uint64(0); lba < sizeBytes; lba += sa.SegmentBytes {
		ref, ok := t.Lookup(vdisk, lba)
		if !ok {
			continue
		}
		sp.Block.Insert(
			[]uint64{uint64(vdisk), lba >> segmentShift},
			&Action{Name: "set_segment", Ops: []Op{
				{Kind: OpCopy, Dst: "ebs.segment_id", Src: "meta.arg0"},
				{Kind: OpCopy, Dst: "meta.server", Src: "meta.arg1"},
			}},
			ref.SegmentID, uint64(ref.Server),
		)
	}
}

// SolarReadPipeline is the client-side READ-response path of Fig. 13: the
// Addr table maps (RPC, packet) to the guest memory destination; unknown
// packets drop without touching the CPU; the CRC engine checks the block.
type SolarReadPipeline struct {
	Program *Program
	Addr    *Table
}

// NewSolarReadPipeline builds the program with an empty Addr table.
func NewSolarReadPipeline() *SolarReadPipeline {
	drop := &Action{Name: "drop", Ops: []Op{{Kind: OpDrop}}}
	addr := NewTable("addr", "rpc.rpc_id", "rpc.pkt_id")
	addr.Default = &Entry{Action: drop}

	verify := &Extern{Name: "crc_check", Fn: func(ctx *Context) {
		ebs := ctx.Header("ebs")
		n := int(ebs.Get("block_len"))
		if n > len(ctx.Payload) {
			n = len(ctx.Payload)
		}
		if uint64(crc.Raw(ctx.Payload[:n])) == ebs.Get("block_crc") {
			ctx.Meta["crc_ok"] = 1
		} else {
			ctx.Meta["crc_ok"] = 0
		}
	}}

	p := &Program{
		Name:   "solar_read_resp",
		Parser: &Parser{Sequence: []*HeaderType{RPCHeader, EBSHeader}},
		Pipeline: []Stage{
			addr,
			verify,
		},
	}
	return &SolarReadPipeline{Program: p, Addr: addr}
}

// ExpectBlock installs an Addr-table entry: the DMA destination for one
// outstanding (rpc, pkt).
func (sp *SolarReadPipeline) ExpectBlock(rpcID uint64, pktID uint16, guestAddr uint64) {
	sp.Addr.Insert(
		[]uint64{rpcID, uint64(pktID)},
		&Action{Name: "set_dma", Ops: []Op{
			{Kind: OpCopy, Dst: "meta.dma_addr", Src: "meta.arg0"},
		}},
		guestAddr,
	)
}

// Release removes the entry after the block lands (the one-shot semantics
// of Fig. 13).
func (sp *SolarReadPipeline) Release(rpcID uint64, pktID uint16) {
	sp.Addr.Delete([]uint64{rpcID, uint64(pktID)})
}
