// Package p4 is a small P4-style abstract packet-processing machine: typed
// headers parsed bit-by-bit from real packet bytes, match-action tables
// with exact-match keys, a constrained action language (set/copy/add/drop/
// meter), and a deparser that re-emits the packet.
//
// It exists to make §4.6 of the paper concrete: "the data path of SA can be
// expressed with the P4 language and executed on the P4-compatible
// pipeline." SolarWriteProgram and SolarReadProgram express the storage
// agent's data path — QoS admission, Block-table address translation, Addr-
// table matching — as programs for this machine, and the package's tests
// differentially validate them against the imperative implementations in
// the wire and sa packages: same bytes in, same bytes out.
package p4

import (
	"fmt"
	"sort"
	"strings"
)

// FieldSpec declares one header field and its width in bits (≤ 64).
type FieldSpec struct {
	Name string
	Bits int
}

// HeaderType declares a fixed-layout header.
type HeaderType struct {
	Name   string
	Fields []FieldSpec
}

// SizeBits returns the header's total width.
func (h *HeaderType) SizeBits() int {
	n := 0
	for _, f := range h.Fields {
		n += f.Bits
	}
	return n
}

// SizeBytes returns the header's width in bytes (must be byte-aligned).
func (h *HeaderType) SizeBytes() int { return h.SizeBits() / 8 }

// Header is a parsed instance: field values by name.
type Header struct {
	Type   *HeaderType
	Valid  bool
	fields map[string]uint64
}

// Get returns a field value (0 for unknown names, like an uninitialized
// P4 metadata read).
func (h *Header) Get(field string) uint64 { return h.fields[field] }

// Set writes a field value, masked to the field's declared width.
func (h *Header) Set(field string, v uint64) {
	for _, f := range h.Type.Fields {
		if f.Name == field {
			if f.Bits < 64 {
				v &= (1 << uint(f.Bits)) - 1
			}
			h.fields[field] = v
			return
		}
	}
	panic(fmt.Sprintf("p4: header %s has no field %s", h.Type.Name, field))
}

// Context is the per-packet execution state: parsed headers, metadata
// registers, the unparsed payload, and the verdict.
type Context struct {
	headers map[string]*Header
	Meta    map[string]uint64
	Payload []byte
	Dropped bool
	// Trace records table hits for debugging/verification.
	Trace []string
}

// Header returns the named parsed header, or nil.
func (c *Context) Header(name string) *Header { return c.headers[name] }

// bitReader pulls big-endian bit fields off a byte slice.
type bitReader struct {
	data []byte
	pos  int // in bits
}

func (r *bitReader) read(bits int) (uint64, error) {
	var v uint64
	for i := 0; i < bits; i++ {
		byteIdx := r.pos >> 3
		if byteIdx >= len(r.data) {
			return 0, fmt.Errorf("p4: parse underrun at bit %d", r.pos)
		}
		bit := (r.data[byteIdx] >> uint(7-(r.pos&7))) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// bitWriter appends big-endian bit fields.
type bitWriter struct {
	data []byte
	pos  int
}

func (w *bitWriter) write(v uint64, bits int) {
	for i := bits - 1; i >= 0; i-- {
		if w.pos&7 == 0 {
			w.data = append(w.data, 0)
		}
		bit := byte(v>>uint(i)) & 1
		w.data[w.pos>>3] |= bit << uint(7-(w.pos&7))
		w.pos++
	}
}

// Parser extracts a fixed sequence of headers from packet bytes (the
// storage pipeline has no branching parse graph: RPC then EBS).
type Parser struct {
	Sequence []*HeaderType
}

// Parse consumes headers from pkt, leaving the rest as payload.
func (p *Parser) Parse(pkt []byte) (*Context, error) {
	ctx := &Context{headers: map[string]*Header{}, Meta: map[string]uint64{}}
	r := &bitReader{data: pkt}
	for _, ht := range p.Sequence {
		h := &Header{Type: ht, Valid: true, fields: map[string]uint64{}}
		for _, f := range ht.Fields {
			v, err := r.read(f.Bits)
			if err != nil {
				return nil, err
			}
			h.fields[f.Name] = v
		}
		ctx.headers[ht.Name] = h
	}
	ctx.Payload = pkt[r.pos/8:]
	return ctx, nil
}

// Deparse re-emits the headers in parse order followed by the payload.
func (p *Parser) Deparse(ctx *Context) []byte {
	w := &bitWriter{}
	for _, ht := range p.Sequence {
		h := ctx.headers[ht.Name]
		for _, f := range ht.Fields {
			w.write(h.fields[f.Name], f.Bits)
		}
	}
	return append(w.data, ctx.Payload...)
}

// Ref names a value source/destination: "hdr.field" or "meta.key".
type Ref string

func (r Ref) resolve(ctx *Context) (hdr string, field string, meta bool) {
	s := string(r)
	i := strings.IndexByte(s, '.')
	if i < 0 {
		return "", s, true
	}
	if s[:i] == "meta" {
		return "", s[i+1:], true
	}
	return s[:i], s[i+1:], false
}

// Load reads the referenced value.
func (r Ref) Load(ctx *Context) uint64 {
	hdr, field, meta := r.resolve(ctx)
	if meta {
		return ctx.Meta[field]
	}
	h := ctx.headers[hdr]
	if h == nil {
		return 0
	}
	return h.Get(field)
}

// Store writes the referenced value.
func (r Ref) Store(ctx *Context, v uint64) {
	hdr, field, meta := r.resolve(ctx)
	if meta {
		ctx.Meta[field] = v
		return
	}
	h := ctx.headers[hdr]
	if h == nil {
		panic(fmt.Sprintf("p4: store to missing header %s", hdr))
	}
	h.Set(field, v)
}

// Op is one primitive in the constrained action language.
type Op struct {
	Kind OpKind
	Dst  Ref
	Src  Ref    // for Copy/Add
	Imm  uint64 // for SetImm/AddImm
}

// OpKind enumerates the primitives — the subset of P4 actions the storage
// pipeline needs.
type OpKind int

// Action primitives.
const (
	OpSetImm OpKind = iota // dst = imm
	OpCopy                 // dst = src
	OpAdd                  // dst = dst + src
	OpAddImm               // dst = dst + imm
	OpSub                  // dst = dst - src
	OpShrImm               // dst = dst >> imm
	OpDrop                 // drop the packet
)

// Action is a named sequence of primitives, optionally parameterized by
// table-entry action data (bound to meta.arg0..argN before the ops run).
type Action struct {
	Name string
	Ops  []Op
}

func (a *Action) apply(ctx *Context, args []uint64) {
	for i, v := range args {
		ctx.Meta[fmt.Sprintf("arg%d", i)] = v
	}
	for _, op := range a.Ops {
		switch op.Kind {
		case OpSetImm:
			op.Dst.Store(ctx, op.Imm)
		case OpCopy:
			op.Dst.Store(ctx, op.Src.Load(ctx))
		case OpAdd:
			op.Dst.Store(ctx, op.Dst.Load(ctx)+op.Src.Load(ctx))
		case OpAddImm:
			op.Dst.Store(ctx, op.Dst.Load(ctx)+op.Imm)
		case OpSub:
			op.Dst.Store(ctx, op.Dst.Load(ctx)-op.Src.Load(ctx))
		case OpShrImm:
			op.Dst.Store(ctx, op.Dst.Load(ctx)>>uint(op.Imm))
		case OpDrop:
			ctx.Dropped = true
		}
	}
}

// Entry is one table row: matched action plus its action data.
type Entry struct {
	Action *Action
	Args   []uint64
}

// Table is an exact-match match-action table.
type Table struct {
	Name    string
	Keys    []Ref
	entries map[string]Entry
	Default *Entry // nil → no-op miss
	hits    uint64
	misses  uint64
}

// NewTable creates an empty table.
func NewTable(name string, keys ...Ref) *Table {
	return &Table{Name: name, Keys: keys, entries: map[string]Entry{}}
}

func keyString(vals []uint64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%x", v)
	}
	return strings.Join(parts, "/")
}

// Insert adds (or replaces) an entry for the exact key values.
func (t *Table) Insert(keyVals []uint64, action *Action, args ...uint64) {
	if len(keyVals) != len(t.Keys) {
		panic(fmt.Sprintf("p4: table %s wants %d keys", t.Name, len(t.Keys)))
	}
	t.entries[keyString(keyVals)] = Entry{Action: action, Args: args}
}

// Delete removes an entry.
func (t *Table) Delete(keyVals []uint64) {
	delete(t.entries, keyString(keyVals))
}

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// Stats returns hit and miss counts.
func (t *Table) Stats() (hits, misses uint64) { return t.hits, t.misses }

// Apply looks up the key from ctx and runs the matched (or default) action.
func (t *Table) Apply(ctx *Context) {
	vals := make([]uint64, len(t.Keys))
	for i, k := range t.Keys {
		vals[i] = k.Load(ctx)
	}
	e, ok := t.entries[keyString(vals)]
	if ok {
		t.hits++
		ctx.Trace = append(ctx.Trace, t.Name+":hit")
		e.Action.apply(ctx, e.Args)
		return
	}
	t.misses++
	ctx.Trace = append(ctx.Trace, t.Name+":miss")
	if t.Default != nil {
		t.Default.Action.apply(ctx, t.Default.Args)
	}
}

// Stage is one pipeline element: a table or a fixed function (externs like
// the CRC engine live outside the match-action pipeline, as on real DPUs).
type Stage interface {
	Apply(ctx *Context)
	stageName() string
}

func (t *Table) stageName() string { return t.Name }

// Extern is a fixed-function stage (CRC, crypto, DMA) — opaque to the
// pipeline, named for traces.
type Extern struct {
	Name string
	Fn   func(ctx *Context)
}

// Apply runs the extern.
func (e *Extern) Apply(ctx *Context) {
	ctx.Trace = append(ctx.Trace, "extern:"+e.Name)
	e.Fn(ctx)
}

func (e *Extern) stageName() string { return e.Name }

// Program is a parser plus an ordered pipeline of stages.
type Program struct {
	Name     string
	Parser   *Parser
	Pipeline []Stage
}

// Run parses pkt, applies every stage, and deparses. A dropped packet
// returns (nil, ctx, nil).
func (p *Program) Run(pkt []byte) ([]byte, *Context, error) {
	ctx, err := p.Parser.Parse(pkt)
	if err != nil {
		return nil, nil, err
	}
	for _, st := range p.Pipeline {
		st.Apply(ctx)
		if ctx.Dropped {
			return nil, ctx, nil
		}
	}
	return p.Parser.Deparse(ctx), ctx, nil
}

// Describe renders the program structure (the "P4 source view").
func (p *Program) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	fmt.Fprintf(&b, "  parser:")
	for _, h := range p.Parser.Sequence {
		fmt.Fprintf(&b, " %s(%dB)", h.Name, h.SizeBytes())
	}
	b.WriteByte('\n')
	for _, st := range p.Pipeline {
		switch s := st.(type) {
		case *Table:
			keys := make([]string, len(s.Keys))
			for i, k := range s.Keys {
				keys[i] = string(k)
			}
			fmt.Fprintf(&b, "  table %s { key = %s; entries = %d }\n",
				s.Name, strings.Join(keys, ", "), len(s.entries))
		case *Extern:
			fmt.Fprintf(&b, "  extern %s\n", s.Name)
		}
	}
	return b.String()
}

// Entries lists a table's installed keys (sorted, for tests).
func (t *Table) EntryKeys() []string {
	out := make([]string, 0, len(t.entries))
	for k := range t.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
